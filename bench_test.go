// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact), plus micro-benchmarks of the core algorithms.
// The table/figure benches report the headline metrics of each experiment
// (polls, fidelity) alongside the usual ns/op, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction run.
package broadway_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"broadway"

	"broadway/internal/core"
	"broadway/internal/experiments"
	"broadway/internal/sched"
	"broadway/internal/simtime"
	"broadway/internal/tracegen"
)

// benchResult asserts the experiment succeeded and surfaces a couple of
// its numbers as benchmark metrics.
func reportSeries(b *testing.B, res *experiments.Result, chart int, series string, metric string) {
	b.Helper()
	if chart >= len(res.Charts) {
		return
	}
	for _, s := range res.Charts[chart].Series {
		if s.Name == series && len(s.Y) > 0 {
			b.ReportMetric(s.Y[0], metric)
			return
		}
	}
}

func BenchmarkTable2_TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tr := range tracegen.NewsPresets() {
			if tr.NumUpdates() == 0 {
				b.Fatal("empty preset")
			}
		}
	}
}

func BenchmarkTable3_TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tr := range tracegen.StockPresets() {
			if tr.NumUpdates() == 0 {
				b.Fatal("empty preset")
			}
		}
	}
}

func BenchmarkFigure3_LIMDvsBaseline(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res, 0, "LIMD", "limd_polls_d1m")
	reportSeries(b, res, 0, "Baseline", "base_polls_d1m")
	reportSeries(b, res, 1, "LIMD", "limd_fidelity_d1m")
}

func BenchmarkFigure4_LIMDAdaptivity(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Charts) > 1 && len(res.Charts[1].Series) > 0 {
		ys := res.Charts[1].Series[0].Y
		max := 0.0
		for _, v := range ys {
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max, "max_ttr_min")
	}
}

func BenchmarkFigure5_MutualTemporal(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res, 1, "LIMD with triggered polls", "triggered_fidelity")
	reportSeries(b, res, 1, "LIMD with heuristic", "heuristic_fidelity")
	reportSeries(b, res, 1, "Baseline LIMD", "baseline_fidelity")
}

func BenchmarkFigure6_HeuristicAdaptivity(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Charts) > 1 && len(res.Charts[1].Series) > 0 {
		total := 0.0
		for _, v := range res.Charts[1].Series[0].Y {
			total += v
		}
		b.ReportMetric(total, "extra_polls_total")
	}
}

func BenchmarkFigure7_MutualValue(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, res, 0, "Adaptive TTR Approach", "adaptive_polls_d025")
	reportSeries(b, res, 0, "Partitioned Approach", "partitioned_polls_d025")
}

func BenchmarkFigure8_Tracking(b *testing.B) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Tables) == 1 && len(res.Tables[0].Rows) == 2 {
		var ad, part float64
		if _, err := sscan(res.Tables[0].Rows[0][1], &ad); err == nil {
			b.ReportMetric(ad, "adaptive_drift_$")
		}
		if _, err := sscan(res.Tables[0].Rows[1][1], &part); err == nil {
			b.ReportMetric(part, "partitioned_drift_$")
		}
	}
}

// --- Micro-benchmarks of the core state machines. ---

func BenchmarkLIMDNextTTR(b *testing.B) {
	l := core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})
	now := simtime.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := now
		now = now.Add(10 * time.Minute)
		o := core.PollOutcome{Now: now, Prev: prev}
		if i%3 == 0 {
			o.Modified = true
			o.LastModified = now.Add(-time.Minute)
			o.HasLastModified = true
		}
		l.NextTTR(o)
	}
}

func BenchmarkAdaptiveTTRNextTTR(b *testing.B) {
	a := core.NewAdaptiveTTR(core.AdaptiveTTRConfig{Delta: 0.5})
	now := simtime.Epoch
	val := 100.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := now
		prevVal := val
		now = now.Add(30 * time.Second)
		val += float64(i%7-3) / 10
		a.NextTTR(core.PollOutcome{
			Now: now, Prev: prev, HasValue: true, Value: val, PrevValue: prevVal,
		})
	}
}

func BenchmarkMutualValueAdaptiveNextTTR(b *testing.B) {
	m := core.NewMutualValueAdaptive(core.MutualValueConfig{Delta: 0.6})
	now := simtime.Epoch
	va, vb := 165.0, 36.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := now
		pa, pb := va, vb
		now = now.Add(15 * time.Second)
		va += float64(i%9-4) / 20
		vb += float64(i%3-1) / 100
		m.NextTTR(core.PairOutcome{
			Now: now, Prev: prev,
			ValueA: va, ValueB: vb, PrevValueA: pa, PrevValueB: pb,
		})
	}
}

func BenchmarkTemporalScenarioEndToEnd(b *testing.B) {
	tr := broadway.TraceCNNFN()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := broadway.RunTemporal(broadway.TemporalScenario{
			Trace: tr, Delta: 10 * time.Minute,
			Policy: func() broadway.Policy {
				return broadway.NewLIMD(broadway.LIMDConfig{Delta: 10 * time.Minute})
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTMLExtractEmbedded(b *testing.B) {
	const page = `<html><head><link rel="stylesheet" href="/s.css"><script src="/a.js"></script></head>
<body><img src="/1.png"><img src="/2.png"><video src="/v.mp4"></video></body></html>`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := broadway.ExtractEmbedded(page); len(got) != 5 {
			b.Fatalf("extracted %d", len(got))
		}
	}
}

// --- Live proxy benchmarks. ---

// newBenchProxy wires a warmed live proxy over an httptest origin with
// TTRs long enough that no refresh runs during the measurement.
func newBenchProxy(b *testing.B, paths []string) *broadway.WebProxy {
	b.Helper()
	origin := broadway.NewWebOrigin()
	for i, p := range paths {
		origin.Set(p, []byte(fmt.Sprintf("body of object %d, long enough to be realistic", i)), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	b.Cleanup(originSrv.Close)
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		b.Fatal(err)
	}
	px, err := broadway.NewWebProxy(broadway.WebProxyConfig{
		Origin:       u,
		DefaultDelta: time.Hour,
		Bounds:       core.TTRBounds{Min: time.Hour, Max: 2 * time.Hour},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(px.Close)
	for _, p := range paths {
		rec := httptest.NewRecorder()
		px.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warm %s: %d", p, rec.Code)
		}
	}
	return px
}

// nopResponseWriter discards the response; it keeps the benchmarks
// measuring the proxy's hit path rather than httptest recorder churn.
type nopResponseWriter struct {
	h    http.Header
	code int
}

func (w *nopResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *nopResponseWriter) WriteHeader(code int)        { w.code = code }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkProxyHitParallel measures hit-path throughput under
// GOMAXPROCS-way parallelism across the sharded store. With the global
// mutex gone, requests for different objects touch only their own shard
// and entry, so ns/op holds (and on real multicore hardware falls) as
// -cpu rises instead of serializing.
func BenchmarkProxyHitParallel(b *testing.B) {
	const objects = 64
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = fmt.Sprintf("/obj/%d", i)
	}
	px := newBenchProxy(b, paths)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		reqs := make([]*http.Request, objects)
		for i, p := range paths {
			reqs[i] = httptest.NewRequest(http.MethodGet, p, nil)
		}
		w := &nopResponseWriter{}
		i := 0
		for pb.Next() {
			w.h, w.code = nil, 0
			px.ServeHTTP(w, reqs[i%objects])
			if w.code != http.StatusOK {
				b.Errorf("status %d", w.code)
				return
			}
			i++
		}
	})
}

// BenchmarkProxyHitSingleObject is the worst case for sharding: every
// request lands on one shard and one entry, so it isolates the cost of
// the per-shard read lock and the shared-body hit path.
func BenchmarkProxyHitSingleObject(b *testing.B) {
	px := newBenchProxy(b, []string{"/hot"})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "/hot", nil)
		w := &nopResponseWriter{}
		for pb.Next() {
			w.h, w.code = nil, 0
			px.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				b.Errorf("status %d", w.code)
				return
			}
		}
	})
}

// BenchmarkProxyChurnParallel measures the miss/evict/admit cycle: a
// key space four times the MaxObjects cap guarantees essentially every
// request misses, runs the CLOCK victim scan, unwinds the victim from
// the refresh schedule, and admits the newcomer — the proxy's worst
// case, dominated by the origin round trip plus replacement overhead.
// Compare BenchmarkProxyHitParallel for the (unchanged) hit path.
func BenchmarkProxyChurnParallel(b *testing.B) {
	const capacity = 128
	const keySpace = 4 * capacity
	paths := make([]string, keySpace)
	for i := range paths {
		paths[i] = fmt.Sprintf("/churn/%d", i)
	}
	origin := broadway.NewWebOrigin()
	for i, p := range paths {
		origin.Set(p, []byte(fmt.Sprintf("churn body %d", i)), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	b.Cleanup(originSrv.Close)
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		b.Fatal(err)
	}
	px, err := broadway.NewWebProxy(broadway.WebProxyConfig{
		Origin:       u,
		DefaultDelta: time.Hour,
		Bounds:       core.TTRBounds{Min: time.Hour, Max: 2 * time.Hour},
		MaxObjects:   capacity,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(px.Close)
	b.ReportAllocs()
	b.ResetTimer()
	var n atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		w := &nopResponseWriter{}
		for pb.Next() {
			// A private stride per iteration keeps goroutines spread
			// over the key space, sustaining the miss/evict/admit churn.
			i := n.Add(1)
			req := httptest.NewRequest(http.MethodGet, paths[int(i*31)%keySpace], nil)
			w.h, w.code = nil, 0
			px.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				b.Errorf("status %d", w.code)
				return
			}
		}
	})
	b.StopTimer()
	stats := px.CacheStats()
	if b.N > keySpace && stats.Evictions == 0 {
		b.Fatal("churn benchmark recorded no evictions")
	}
	b.ReportMetric(float64(stats.Evictions)/float64(b.N), "evictions/op")
}

// BenchmarkRefreshSchedulerThroughput measures the min-heap refresh
// schedule on a pop-due/re-push cycle over 10k live objects — the
// operation the dispatcher performs per poll, formerly an O(n) scan.
func BenchmarkRefreshSchedulerThroughput(b *testing.B) {
	const objects = 10_000
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var s sched.Heap
	for i := 0; i < objects; i++ {
		s.Push(epoch.Add(time.Duration(i)*time.Millisecond), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Pop()
		s.Push(it.At.Add(objects*time.Millisecond), it.Payload)
	}
}

// sscan parses a float out of a table cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
