package broadway_test

import (
	"bytes"
	"testing"
	"time"

	"broadway"
)

// These tests exercise the repository exclusively through the public
// facade, the way a downstream user would.

func TestFacadePresets(t *testing.T) {
	presets := map[string]*broadway.Trace{
		"cnn-fn":      broadway.TraceCNNFN(),
		"nyt-ap":      broadway.TraceNYTAP(),
		"nyt-reuters": broadway.TraceNYTReuters(),
		"guardian":    broadway.TraceGuardian(),
		"att":         broadway.TraceATT(),
		"yahoo":       broadway.TraceYahoo(),
	}
	for name, tr := range presets {
		if tr.Name != name {
			t.Errorf("preset %s has name %s", name, tr.Name)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		byName, err := broadway.TraceByName(name)
		if err != nil {
			t.Errorf("TraceByName(%s): %v", name, err)
			continue
		}
		if byName.NumUpdates() != tr.NumUpdates() {
			t.Errorf("TraceByName(%s) differs from the direct constructor", name)
		}
	}
}

func TestFacadeGenerateAndSerialize(t *testing.T) {
	tr, err := broadway.GenerateNews(broadway.NewsConfig{
		Name: "t", Seed: 1, Duration: 24 * time.Hour, Updates: 50, StartHour: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := broadway.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := broadway.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUpdates() != 50 {
		t.Errorf("round trip lost updates: %d", back.NumUpdates())
	}

	stock, err := broadway.GenerateStock(broadway.StockConfig{
		Name: "s", Seed: 2, Duration: time.Hour, Ticks: 100,
		Initial: 10, Min: 9, Max: 11, Volatility: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stock.NumUpdates() != 100 {
		t.Errorf("stock ticks = %d", stock.NumUpdates())
	}
}

func TestFacadeTemporalScenario(t *testing.T) {
	const delta = 10 * time.Minute
	res, err := broadway.RunTemporal(broadway.TemporalScenario{
		Trace: broadway.TraceCNNFN(),
		Delta: delta,
		Policy: func() broadway.Policy {
			return broadway.NewLIMD(broadway.LIMDConfig{Delta: delta})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Polls == 0 {
		t.Error("no polls recorded")
	}
	if f := res.Report.FidelityByViolations; f < 0.5 || f > 1 {
		t.Errorf("fidelity = %v", f)
	}
	if len(res.Log) != res.Report.Polls {
		t.Errorf("log length %d != polls %d", len(res.Log), res.Report.Polls)
	}
}

func TestFacadeMutualTemporalScenario(t *testing.T) {
	res, err := broadway.RunMutualTemporal(broadway.MutualTemporalScenario{
		TraceA:          broadway.TraceCNNFN(),
		TraceB:          broadway.TraceNYTAP(),
		DeltaIndividual: 10 * time.Minute,
		DeltaMutual:     5 * time.Minute,
		Mode:            broadway.TriggerAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.FidelityBySync != 1 {
		t.Errorf("triggered mode fidelity = %v, want 1", res.Report.FidelityBySync)
	}
	if res.Report.TriggeredPolls == 0 {
		t.Error("no triggered polls recorded")
	}
}

func TestFacadeMutualValueScenario(t *testing.T) {
	for _, approach := range []broadway.ValueApproach{
		broadway.ApproachAdaptive, broadway.ApproachPartitioned,
	} {
		res, err := broadway.RunMutualValue(broadway.MutualValueScenario{
			TraceA:      broadway.TraceYahoo(),
			TraceB:      broadway.TraceATT(),
			DeltaMutual: 1.0,
			Approach:    approach,
		})
		if err != nil {
			t.Fatalf("%v: %v", approach, err)
		}
		if res.Report.Polls == 0 {
			t.Errorf("%v: no polls", approach)
		}
		if res.Report.FidelityByViolations < 0.8 {
			t.Errorf("%v: fidelity = %v", approach, res.Report.FidelityByViolations)
		}
	}
}

func TestFacadeDependencyGraph(t *testing.T) {
	g := broadway.NewDependencyGraph()
	urls := g.RelateDocument("/page.html",
		`<html><img src="/a.png"><script src="/b.js"></script></html>`)
	if len(urls) != 2 {
		t.Fatalf("urls = %v", urls)
	}
	group := g.GroupOf("/page.html")
	if len(group) != 3 {
		t.Errorf("group = %v", group)
	}
	if got := broadway.ExtractEmbedded(`<img src="/x.png">`); len(got) != 1 {
		t.Errorf("ExtractEmbedded = %v", got)
	}
}

func TestFacadePolicies(t *testing.T) {
	limd := broadway.NewLIMD(broadway.LIMDConfig{Delta: time.Minute})
	if limd.InitialTTR() != time.Minute {
		t.Error("LIMD initial TTR")
	}
	ttr := broadway.NewAdaptiveTTR(broadway.AdaptiveTTRConfig{Delta: 0.5})
	if ttr.Name() != "adaptive-ttr" {
		t.Error("AdaptiveTTR name")
	}
	per := broadway.NewPeriodic(time.Minute)
	if per.InitialTTR() != time.Minute {
		t.Error("Periodic initial TTR")
	}
	ctrl := broadway.NewMutualTimeController(broadway.MutualTimeConfig{
		Delta: time.Minute, Mode: broadway.TriggerFaster,
	})
	if ctrl.Mode() != broadway.TriggerFaster {
		t.Error("controller mode")
	}
	adaptive := broadway.NewMutualValueAdaptive(broadway.MutualValueConfig{Delta: 1})
	if adaptive.Gamma() != 1 {
		t.Error("adaptive gamma")
	}
	part := broadway.NewMutualValuePartitioned(broadway.MutualValueConfig{Delta: 1})
	if a, b := part.Deltas(); a+b != 1 {
		t.Error("partitioned split")
	}
}
