package broadway_test

import (
	"fmt"
	"time"

	"broadway"
)

// ExampleRunTemporal maintains Δt-consistency for one news page with the
// LIMD algorithm and reports the poll cost and fidelity.
func ExampleRunTemporal() {
	const delta = 10 * time.Minute
	res, err := broadway.RunTemporal(broadway.TemporalScenario{
		Trace: broadway.TraceCNNFN(),
		Delta: delta,
		Policy: func() broadway.Policy {
			return broadway.NewLIMD(broadway.LIMDConfig{Delta: delta})
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("polls=%d fidelity=%.3f\n", res.Report.Polls, res.Report.FidelityByViolations)
	// Output: polls=152 fidelity=0.816
}

// ExampleRunMutualTemporal keeps two related news feeds mutually
// consistent with triggered polls; the mutual fidelity is 1 by
// construction.
func ExampleRunMutualTemporal() {
	res, err := broadway.RunMutualTemporal(broadway.MutualTemporalScenario{
		TraceA:          broadway.TraceCNNFN(),
		TraceB:          broadway.TraceNYTAP(),
		DeltaIndividual: 10 * time.Minute,
		DeltaMutual:     5 * time.Minute,
		Mode:            broadway.TriggerAll,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mutual fidelity=%.1f\n", res.Report.FidelityBySync)
	// Output: mutual fidelity=1.0
}

// ExampleNewLIMD shows the LIMD state machine reacting to a quiet poll
// (case 1: linear increase).
func ExampleNewLIMD() {
	limd := broadway.NewLIMD(broadway.LIMDConfig{Delta: 10 * time.Minute})
	fmt.Println("initial TTR:", limd.InitialTTR())

	next := limd.NextTTR(broadway.PollOutcome{
		// No modification observed between two polls 10 minutes apart.
		Prev: 0, Now: 10 * 60 * 1e9,
	})
	fmt.Println("after a quiet poll:", next)
	// Output:
	// initial TTR: 10m0s
	// after a quiet poll: 12m0s
}

// ExampleExtractEmbedded discovers the objects a news page embeds — the
// related-object group that must stay mutually consistent.
func ExampleExtractEmbedded() {
	urls := broadway.ExtractEmbedded(
		`<html><body><img src="/chart.png"><script src="/ticker.js"></script></body></html>`)
	for _, u := range urls {
		fmt.Println(u)
	}
	// Output:
	// /chart.png
	// /ticker.js
}

// ExampleNewMutualValuePartitioned shows the tolerance split reacting to
// the pair's observed rates: the faster-moving object receives the
// tighter share.
func ExampleNewMutualValuePartitioned() {
	pair := broadway.NewMutualValuePartitioned(broadway.MutualValueConfig{Delta: 1.0})
	a, b := pair.Deltas()
	fmt.Printf("initial split: %.2f / %.2f\n", a, b)

	// Object A moved 1.0 in 100s, object B only 0.1.
	pair.PolicyA().NextTTR(broadway.PollOutcome{
		Prev: 0, Now: 100 * 1e9, HasValue: true, PrevValue: 10, Value: 11,
	})
	pair.PolicyB().NextTTR(broadway.PollOutcome{
		Prev: 0, Now: 100 * 1e9, HasValue: true, PrevValue: 50, Value: 50.1,
	})
	a, b = pair.Deltas()
	fmt.Printf("after observing rates: %.2f / %.2f\n", a, b)
	// Output:
	// initial split: 0.50 / 0.50
	// after observing rates: 0.09 / 0.91
}
