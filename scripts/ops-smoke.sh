#!/bin/sh
# Boots mcproxy -demo with the operational surface on its own listener,
# waits for /healthz to report ok (the push channel connects in well
# under a second), validates the /metrics exposition with the strict
# in-repo parser (cmd/opscheck), exercises the serve path once, and
# re-scrapes. Fails on any non-200 probe or unparseable exposition.
set -eu
cd "$(dirname "$0")/.."

LISTEN="${LISTEN:-127.0.0.1:18089}"
OPS="${OPS:-127.0.0.1:19089}"

go build -o /tmp/mcproxy-ops-smoke ./cmd/mcproxy
go build -o /tmp/opscheck-ops-smoke ./cmd/opscheck

/tmp/mcproxy-ops-smoke -demo -push -push-values -relay-events \
  -listen "$LISTEN" -ops-listen "$OPS" -run-for 60s &
PROXY_PID=$!
trap 'kill "$PROXY_PID" 2>/dev/null || true' EXIT INT TERM

# /healthz is 503 until the push subscription connects; poll briefly.
i=0
until curl -fsS "http://$OPS/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "ops-smoke: /healthz never reported ok" >&2
    curl -sS "http://$OPS/healthz" >&2 || true
    exit 1
  fi
  sleep 0.1
done
echo "ops-smoke: /healthz ok"

curl -fsS "http://$OPS/metrics" | /tmp/opscheck-ops-smoke

# Drive the serve path once and confirm the scrape still validates (and
# the traffic is visible in it).
curl -fsS "http://$LISTEN/news/story.html" >/dev/null
curl -fsS -I "http://$LISTEN/news/story.html" >/dev/null  # HEAD conformance
curl -fsS "http://$OPS/metrics" | /tmp/opscheck-ops-smoke
curl -fsS "http://$OPS/metrics" | grep -q '^broadway_cache_misses_total [1-9]' || {
  echo "ops-smoke: proxied traffic not visible in the scrape" >&2
  exit 1
}
echo "ops-smoke: pass"
