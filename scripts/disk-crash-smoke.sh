#!/bin/sh
# Crash-consistency smoke for the persistent disk tier: boots mcproxy
# with -disk-dir, drives traffic through it while the write-behind
# worker is active, SIGKILLs the process mid-flight (no drain, no
# journal close), verifies the surviving directory with the strict
# read-only checker (cmd/diskcheck: journal parses, every live record's
# blob matches size and digest — a torn tail is tolerated, a partial
# entry serve is not), then restarts over the same directory and
# confirms the proxy comes back serving the cached objects.
set -eu
cd "$(dirname "$0")/.."

LISTEN="${LISTEN:-127.0.0.1:18090}"
DISK="$(mktemp -d /tmp/mcproxy-disk-smoke.XXXXXX)"
trap 'kill "$PROXY_PID" 2>/dev/null || true; rm -rf "$DISK"' EXIT INT TERM
PROXY_PID=""

go build -o /tmp/mcproxy-disk-smoke ./cmd/mcproxy
go build -o /tmp/diskcheck-disk-smoke ./cmd/diskcheck

boot() {
  /tmp/mcproxy-disk-smoke -demo -listen "$LISTEN" \
    -disk-dir "$DISK" -run-for 60s &
  PROXY_PID=$!
  i=0
  until curl -fsS "http://$LISTEN/news/story.html" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "disk-crash-smoke: proxy never came up" >&2
      exit 1
    fi
    sleep 0.1
  done
}

boot
# Populate the cache — and therefore the write-behind queue — with
# every demo object, repeatedly, so the SIGKILL lands with disk writes
# plausibly in flight.
for pass in 1 2 3; do
  for obj in /news/story.html /news/photo.jpg /news/score.js /quote/acme; do
    curl -fsS "http://$LISTEN$obj" >/dev/null
  done
done

# The crash: no signal handler runs, no drain, no journal close.
kill -9 "$PROXY_PID"
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""

# The directory must verify: whatever the kill tore off the journal
# tail, every record that IS live must have its exact blob.
/tmp/diskcheck-disk-smoke "$DISK"

# Restart over the crashed directory: the proxy must boot (rehydrating
# what survived) and serve — no partial entry, no refusal to open.
boot
for obj in /news/story.html /quote/acme; do
  curl -fsS "$(printf 'http://%s%s' "$LISTEN" "$obj")" >/dev/null
done
echo "disk-crash-smoke: survived SIGKILL, directory verified, restart serves"
kill "$PROXY_PID" 2>/dev/null || true
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""
