#!/bin/sh
# Runs the hot-path benchmark suite (hit path, refresh scheduler, store
# replacement and eviction churn, push fan-out with and without
# payloads, value-push apply) with enough repetitions for benchgate's
# significance test, printing go test -bench output to stdout.
#
# Usage: scripts/bench-hotpath.sh [count]
set -eu
cd "$(dirname "$0")/.."
COUNT="${1:-6}"

go test -run '^$' -count "$COUNT" -benchtime 200ms \
    -bench 'BenchmarkProxyHitParallel$|BenchmarkProxyHitSingleObject$|BenchmarkProxyChurnParallel$|BenchmarkRefreshSchedulerThroughput$' .
go test -run '^$' -count "$COUNT" -benchtime 200ms \
    -bench 'BenchmarkStoreEvictScan$|BenchmarkStoreHitMark$|BenchmarkValuePushApply$' ./internal/webproxy
# -benchmem so benchgate's alloc gate (-alloc-filter) can hold the
# publish path to its allocation budget, not just its latency.
go test -run '^$' -count "$COUNT" -benchtime 200ms -benchmem \
    -bench 'BenchmarkHubPublishFanout$|BenchmarkHubPublishFanoutFiltered$|BenchmarkHubPublishFanoutPayload$|BenchmarkHubPublishFanoutDelta$|BenchmarkHubPublishContended$|BenchmarkHubReplayPartitioned$|BenchmarkEventRender$|BenchmarkDeltaApply$' ./internal/push
