#!/bin/sh
# Regenerates the committed hot-path benchmark baseline
# (bench/baseline.txt). Run it on a quiet machine after a deliberate
# performance-affecting change, and commit the result alongside it.
#
# The committed baseline is for LOCAL tracking (scripts/benchgate.sh):
# numbers are machine-specific, which is why CI gates PRs by benching
# the base and head commits on the same runner instead of against this
# file.
set -eu
cd "$(dirname "$0")/.."
mkdir -p bench
{
    echo "# Hot-path benchmark baseline. Regenerate with scripts/bench-baseline.sh"
    echo "# on a quiet machine; compare with scripts/benchgate.sh."
    echo "# environment: $(go env GOOS)/$(go env GOARCH), $(go version | cut -d' ' -f3)"
    scripts/bench-hotpath.sh "${1:-6}"
} > bench/baseline.txt
echo "wrote bench/baseline.txt"
