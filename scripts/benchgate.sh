#!/bin/sh
# Runs the hot-path benchmarks and compares them against the committed
# baseline (bench/baseline.txt) with benchgate. The threshold is
# deliberately loose (+50% median) because the baseline was recorded on
# a different machine than yours; for a tight same-machine comparison
# use two bench-hotpath.sh runs and cmd/benchgate directly.
set -eu
cd "$(dirname "$0")/.."
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
scripts/bench-hotpath.sh "${1:-6}" > "$tmp"
go run ./cmd/benchgate -old bench/baseline.txt -new "$tmp" -threshold 0.5 -alloc-filter 'BenchmarkHubPublish'
