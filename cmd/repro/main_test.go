package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing %s in -list output", id)
		}
	}
}

func TestSingleExperimentWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-only", "fig4", "-out", dir, "-ascii=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4_a.csv", "fig4_b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "series,") {
			t.Errorf("%s: missing CSV header", name)
		}
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("missing title in report")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "fig99", "-out", t.TempDir()}, &buf); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestTableExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "table2", "-out", t.TempDir()}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cnn-fn") || !strings.Contains(out, "113") {
		t.Errorf("table2 output incomplete:\n%s", out)
	}
}

func TestAblationRunnable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "ablation-push", "-out", t.TempDir(), "-ascii=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guardian") {
		t.Error("ablation-push output incomplete")
	}
}

func TestASCIIChartsRendered(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "fig4", "-out", t.TempDir(), "-ascii=true"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x: time (hours)") {
		t.Error("ASCII chart axes missing")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag must fail")
	}
}
