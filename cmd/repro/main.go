// Command repro regenerates every table and figure of the paper's
// evaluation from the synthetic workloads and writes the results as CSV
// files plus a human-readable report.
//
// Usage:
//
//	repro [-out dir] [-only id] [-ascii] [-list]
//
// Experiment IDs: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"broadway/internal/experiments"
	"broadway/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	outDir := fs.String("out", "results", "directory for CSV output")
	only := fs.String("only", "", "run a single experiment (e.g. fig3)")
	ascii := fs.Bool("ascii", true, "render ASCII charts to stdout")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	ablations := fs.Bool("ablations", false, "also run the extension/ablation studies")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := experiments.AllRunners()
	if *ablations || *only != "" {
		runners = append(runners, experiments.AblationRunners()...)
	}
	if *list {
		for _, r := range runners {
			fmt.Fprintln(out, r.ID)
		}
		return nil
	}

	if *only != "" {
		var filtered []experiments.Runner
		for _, r := range runners {
			if r.ID == *only {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown experiment %q (use -list)", *only)
		}
		runners = filtered
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output dir: %w", err)
	}

	for _, r := range runners {
		res, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if err := report(out, res, *outDir, *ascii); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\nCSV series written to %s/\n", *outDir)
	return nil
}

func report(out io.Writer, res *experiments.Result, outDir string, ascii bool) error {
	fmt.Fprintf(out, "\n================================================================\n")
	fmt.Fprintf(out, "%s\n", res.Title)
	fmt.Fprintf(out, "================================================================\n")

	for _, tbl := range res.Tables {
		fmt.Fprintln(out)
		fmt.Fprint(out, plot.Table(tbl.Headers, tbl.Rows))
	}
	for i, chart := range res.Charts {
		name := fmt.Sprintf("%s_%c.csv", res.ID, 'a'+i)
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := chart.WriteCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if ascii {
			fmt.Fprintln(out)
			fmt.Fprint(out, chart.RenderASCII(72, 16))
		}
	}
	if len(res.Notes) > 0 {
		fmt.Fprintln(out)
		for _, n := range res.Notes {
			fmt.Fprintf(out, "  • %s\n", wrapNote(n))
		}
	}
	return nil
}

// wrapNote keeps notes on one logical bullet (terminal wrapping is fine).
func wrapNote(n string) string { return strings.TrimSpace(n) }
