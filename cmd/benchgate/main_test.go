package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line      string
		name      string
		ns        float64
		allocs    float64
		hasAllocs bool
		ok        bool
	}{
		{"BenchmarkProxyHitParallel-8   \t 1000000\t      1052 ns/op\t     288 B/op\t       5 allocs/op", "BenchmarkProxyHitParallel-8", 1052, 5, true, true},
		{"BenchmarkStoreHitMark-8   \t32071566\t        37.02 ns/op", "BenchmarkStoreHitMark-8", 37.02, 0, false, true},
		{"PASS", "", 0, 0, false, false},
		{"ok  \tbroadway\t1.2s", "", 0, 0, false, false},
		{"BenchmarkBroken but not a result", "", 0, 0, false, false},
		{"goos: linux", "", 0, 0, false, false},
	}
	for _, c := range cases {
		name, ns, allocs, hasAllocs, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns || allocs != c.allocs || hasAllocs != c.hasAllocs {
			t.Errorf("parseBenchLine(%q) = %q %v %v %v %v, want %q %v %v %v %v",
				c.line, name, ns, allocs, hasAllocs, ok, c.name, c.ns, c.allocs, c.hasAllocs, c.ok)
		}
	}
}

func TestMannWhitneySeparatedSamplesAreSignificant(t *testing.T) {
	old := []float64{100, 101, 99, 102, 100, 101, 98, 103}
	slow := []float64{150, 151, 149, 152, 150, 151, 148, 153}
	if p := mannWhitneyP(old, slow); p >= 0.01 {
		t.Errorf("cleanly separated samples: p = %v, want < 0.01", p)
	}
	// Symmetric: order of arguments must not change the verdict.
	if p1, p2 := mannWhitneyP(old, slow), mannWhitneyP(slow, old); math.Abs(p1-p2) > 1e-12 {
		t.Errorf("asymmetric p: %v vs %v", p1, p2)
	}
	// All-tied samples: no evidence, p = 1.
	tied := []float64{5, 5, 5, 5}
	if p := mannWhitneyP(tied, tied); p != 1 {
		t.Errorf("all-tied p = %v, want 1", p)
	}
}

func TestMannWhitneyOverlappingNoiseIsNotSignificant(t *testing.T) {
	a := []float64{100, 110, 95, 105, 102, 98, 107, 101}
	b := []float64{101, 108, 96, 106, 103, 99, 104, 100}
	if p := mannWhitneyP(a, b); p < 0.3 {
		t.Errorf("overlapping noise: p = %v, want large", p)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

// writeBench renders samples per benchmark into a file shaped like go
// test -bench output.
func writeBench(t *testing.T, dir, name string, samples map[string][]float64) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: broadway\n")
	for bench, vals := range samples {
		for _, v := range vals {
			fmt.Fprintf(&sb, "%s\t1000\t%g ns/op\n", bench, v)
		}
	}
	sb.WriteString("PASS\n")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldVals := map[string][]float64{
		"BenchmarkHit-8":    {100, 101, 99, 102, 100, 98},
		"BenchmarkSched-8":  {50, 51, 49, 52, 50, 48},
		"BenchmarkNoisy-8":  {200, 250, 180, 230, 210, 190},
		"BenchmarkOrphan-8": {10, 10, 10, 10, 10, 10},
	}
	samePlusNoise := map[string][]float64{
		"BenchmarkHit-8":   {101, 100, 99, 103, 100, 99},
		"BenchmarkSched-8": {49, 52, 50, 51, 48, 50},
		"BenchmarkNoisy-8": {210, 240, 185, 225, 205, 195},
		"BenchmarkNew-8":   {7, 7, 7, 7, 7, 7},
	}
	regressed := map[string][]float64{
		"BenchmarkHit-8":   {160, 161, 159, 162, 158, 163}, // +60%, clean
		"BenchmarkSched-8": {50, 51, 49, 52, 50, 48},
		"BenchmarkNoisy-8": {210, 240, 185, 225, 205, 195},
	}

	oldPath := writeBench(t, dir, "old.txt", oldVals)
	okPath := writeBench(t, dir, "ok.txt", samePlusNoise)
	badPath := writeBench(t, dir, "bad.txt", regressed)

	if code := run([]string{"-old", oldPath, "-new", okPath}, os.Stdout); code != 0 {
		t.Errorf("unchanged run gated: exit %d", code)
	}
	if code := run([]string{"-old", oldPath, "-new", badPath}, os.Stdout); code != 1 {
		t.Errorf("regressed run passed: exit %d", code)
	}
	// With the regressed benchmark filtered out of gating, it passes.
	if code := run([]string{"-old", oldPath, "-new", badPath, "-filter", "Sched"}, os.Stdout); code != 0 {
		t.Errorf("filtered run gated: exit %d", code)
	}
	// Too few samples never gate.
	tiny := writeBench(t, dir, "tiny.txt", map[string][]float64{"BenchmarkHit-8": {500, 510}})
	if code := run([]string{"-old", oldPath, "-new", tiny}, os.Stdout); code != 0 {
		t.Errorf("two-sample run gated: exit %d", code)
	}
	// Disjoint benchmark sets (e.g. a PR renaming its benchmarks) must
	// not fail the gate: one-sided benchmarks are reported, never gated.
	renamed := writeBench(t, dir, "renamed.txt", map[string][]float64{
		"BenchmarkHitV2-8": {500, 501, 499, 502, 500, 498},
	})
	if code := run([]string{"-old", oldPath, "-new", renamed}, os.Stdout); code != 0 {
		t.Errorf("disjoint benchmark sets gated: exit %d", code)
	}
	// Usage errors.
	if code := run([]string{"-old", oldPath}, os.Stdout); code != 2 {
		t.Errorf("missing -new: exit %d", code)
	}
	if code := run([]string{"-old", filepath.Join(dir, "nope.txt"), "-new", okPath}, os.Stdout); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run([]string{"-old", oldPath, "-new", okPath, "-alloc-filter", "("}, os.Stdout); code != 2 {
		t.Errorf("bad -alloc-filter regexp: exit %d", code)
	}
}

// writeBenchMem is writeBench with -benchmem columns: each sample is a
// (ns/op, allocs/op) pair.
func writeBenchMem(t *testing.T, dir, name string, samples map[string][][2]float64) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: broadway\n")
	for bench, vals := range samples {
		for _, v := range vals {
			fmt.Fprintf(&sb, "%s\t1000\t%g ns/op\t%g B/op\t%g allocs/op\n", bench, v[0], 64*v[1], v[1])
		}
	}
	sb.WriteString("PASS\n")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchMem(t, dir, "old.txt", map[string][][2]float64{
		"BenchmarkHubPublishFanout-8": {{900, 4}, {905, 4}, {898, 4}, {910, 4}, {902, 4}, {899, 4}},
	})
	// Latency unchanged, one extra allocation per op.
	moreAllocs := writeBenchMem(t, dir, "alloc.txt", map[string][][2]float64{
		"BenchmarkHubPublishFanout-8": {{901, 5}, {904, 5}, {899, 5}, {909, 5}, {903, 5}, {900, 5}},
	})
	// Same allocs, slightly faster: must pass.
	same := writeBenchMem(t, dir, "same.txt", map[string][][2]float64{
		"BenchmarkHubPublishFanout-8": {{880, 4}, {885, 4}, {878, 4}, {890, 4}, {882, 4}, {879, 4}},
	})

	if code := run([]string{"-old", oldPath, "-new", moreAllocs}, os.Stdout); code != 0 {
		t.Errorf("without -alloc-filter an alloc increase gated: exit %d", code)
	}
	if code := run([]string{"-old", oldPath, "-new", moreAllocs, "-alloc-filter", "BenchmarkHubPublish"}, os.Stdout); code != 1 {
		t.Errorf("alloc increase passed the alloc gate: exit %d", code)
	}
	if code := run([]string{"-old", oldPath, "-new", moreAllocs, "-alloc-filter", "BenchmarkSomethingElse"}, os.Stdout); code != 0 {
		t.Errorf("non-matching -alloc-filter gated: exit %d", code)
	}
	if code := run([]string{"-old", oldPath, "-new", same, "-alloc-filter", "BenchmarkHubPublish"}, os.Stdout); code != 0 {
		t.Errorf("unchanged allocs gated: exit %d", code)
	}
	// A baseline recorded without -benchmem has no allocs/op samples:
	// the alloc gate must skip silently, not fail.
	noMem := writeBench(t, dir, "nomem.txt", map[string][]float64{
		"BenchmarkHubPublishFanout-8": {900, 905, 898, 910, 902, 899},
	})
	if code := run([]string{"-old", noMem, "-new", moreAllocs, "-alloc-filter", "BenchmarkHubPublish"}, os.Stdout); code != 0 {
		t.Errorf("benchmem-less baseline gated on allocs: exit %d", code)
	}
}
