// Command benchgate compares two `go test -bench` outputs and fails on
// statistically significant regressions, in the spirit of
// golang.org/x/perf/cmd/benchstat but dependency-free so it can gate CI
// from inside the repository.
//
// Feed it multiple samples per benchmark (-count=6 or more) so the
// significance test has power:
//
//	go test -run '^$' -bench 'BenchmarkProxyHit' -count 8 . > old.txt
//	# ... apply the change ...
//	go test -run '^$' -bench 'BenchmarkProxyHit' -count 8 . > new.txt
//	go run ./cmd/benchgate -old old.txt -new new.txt
//
// A benchmark regresses when BOTH hold:
//
//   - a two-sided Mann–Whitney U test over the ns/op samples rejects
//     "same distribution" at -alpha (default 0.05), and
//   - the median slowed down by more than -threshold (default +15%).
//
// Requiring both keeps the gate quiet on noisy-but-unchanged
// benchmarks (significance without magnitude) and on large-looking
// deltas produced by a single outlier run (magnitude without
// significance). Benchmarks present in only one input, or with fewer
// than -min-samples runs on either side, are reported but never gate.
//
// Benchmarks matching -alloc-filter additionally gate on allocs/op
// (requires -benchmem output on both sides): allocation counts are
// deterministic, so ANY median increase is a regression — no
// significance test, no threshold. Inputs without allocs/op columns
// skip the alloc gate silently, so the flag is safe against baselines
// recorded before -benchmem was added.
//
// Exit status: 0 when no benchmark regresses, 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline `file` of go test -bench output (required)")
	newPath := fs.String("new", "", "candidate `file` of go test -bench output (required)")
	alpha := fs.Float64("alpha", 0.05, "significance level of the Mann-Whitney test")
	threshold := fs.Float64("threshold", 0.15, "minimum relative median slowdown to gate on (0.15 = +15%)")
	minSamples := fs.Int("min-samples", 4, "samples required on both sides before a benchmark can gate")
	filter := fs.String("filter", "", "gate only benchmarks matching this `regexp` (others are reported)")
	allocFilter := fs.String("alloc-filter", "", "benchmarks matching this `regexp` also gate on any allocs/op median increase (needs -benchmem output)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		fs.Usage()
		return 2
	}
	var gateRE *regexp.Regexp
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad -filter: %v\n", err)
			return 2
		}
		gateRE = re
	}
	var allocRE *regexp.Regexp
	if *allocFilter != "" {
		re, err := regexp.Compile(*allocFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad -alloc-filter: %v\n", err)
			return 2
		}
		allocRE = re
	}

	oldSamples, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	newSamples, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}

	common := make([]string, 0, len(oldSamples))
	var onlyOld, onlyNew []string
	for name := range oldSamples {
		if _, ok := newSamples[name]; ok {
			common = append(common, name)
		} else {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range newSamples {
		if _, ok := oldSamples[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(common)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	fmt.Fprintf(out, "%-44s %14s %14s %8s %8s  %s\n",
		"benchmark", "old median", "new median", "delta", "p", "verdict")
	regressed := 0
	for _, name := range common {
		o, n := oldSamples[name], newSamples[name]
		om, nm := median(o.ns), median(n.ns)
		delta := (nm - om) / om
		p := mannWhitneyP(o.ns, n.ns)
		verdict := "ok"
		switch {
		case len(o.ns) < *minSamples || len(n.ns) < *minSamples:
			verdict = "skip (too few samples)"
		case gateRE != nil && !gateRE.MatchString(name):
			verdict = "info (not gated)"
		case p < *alpha && delta > *threshold:
			verdict = "REGRESSION"
			regressed++
		case p < *alpha && delta < -*threshold:
			verdict = "improved"
		case p < *alpha:
			verdict = "shifted (within threshold)"
		}
		// The alloc gate is absolute: allocation counts are deterministic,
		// so a median increase needs no significance test. It never fires
		// on inputs without -benchmem columns (old baselines).
		if verdict != "REGRESSION" && allocRE != nil && allocRE.MatchString(name) &&
			len(o.allocs) >= *minSamples && len(n.allocs) >= *minSamples {
			if oa, na := median(o.allocs), median(n.allocs); na > oa {
				verdict = fmt.Sprintf("REGRESSION (allocs/op %.1f -> %.1f)", oa, na)
				regressed++
			}
		}
		fmt.Fprintf(out, "%-44s %12.1fns %12.1fns %+7.1f%% %8.3f  %s\n",
			name, om, nm, delta*100, p, verdict)
	}
	// One-sided benchmarks are reported but never gate: a rename or an
	// added/removed benchmark is not a regression.
	for _, name := range onlyOld {
		fmt.Fprintf(out, "%-44s %12.1fns %14s %8s %8s  only in -old\n",
			name, median(oldSamples[name].ns), "-", "-", "-")
	}
	for _, name := range onlyNew {
		fmt.Fprintf(out, "%-44s %14s %12.1fns %8s %8s  only in -new\n",
			name, "-", median(newSamples[name].ns), "-", "-")
	}
	if len(common) == 0 {
		fmt.Fprintln(out, "\nno benchmarks common to both inputs; nothing to gate")
		return 0
	}
	if regressed > 0 {
		fmt.Fprintf(out, "\n%d benchmark(s) regressed significantly\n", regressed)
		return 1
	}
	fmt.Fprintln(out, "\nno significant regressions")
	return 0
}

// benchSamples holds one benchmark's per-run measurements: ns/op
// always, allocs/op when the input was produced with -benchmem.
type benchSamples struct {
	ns     []float64
	allocs []float64
}

// parseFile extracts ns/op (and, with -benchmem input, allocs/op)
// samples per benchmark name from go test -bench output. The trailing
// -N GOMAXPROCS suffix stays part of the name (different parallelism is
// a different benchmark).
func parseFile(path string) (map[string]*benchSamples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := make(map[string]*benchSamples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		name, nsPerOp, allocs, hasAllocs, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s := samples[name]
		if s == nil {
			s = &benchSamples{}
			samples[name] = s
		}
		s.ns = append(s.ns, nsPerOp)
		if hasAllocs {
			s.allocs = append(s.allocs, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s contains no benchmark result lines", path)
	}
	return samples, nil
}

// parseBenchLine parses one "BenchmarkName-8  1234  5678 ns/op 80 B/op
// 4 allocs/op" result line (the B/op and allocs/op columns appear only
// under -benchmem).
func parseBenchLine(line string) (name string, nsPerOp, allocs float64, hasAllocs, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, 0, false, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, 0, false, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", 0, 0, false, false // not an iteration count: a status line
	}
	ok = false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			nsPerOp, ok = v, true
		case "allocs/op":
			allocs, hasAllocs = v, true
		}
	}
	if !ok {
		return "", 0, 0, false, false
	}
	return fields[0], nsPerOp, allocs, hasAllocs, true
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann–Whitney U test
// for samples a and b, using the normal approximation with tie
// correction and continuity correction. For the sample counts benchgate
// sees (a handful per side) the approximation tracks the exact
// distribution closely enough for gating; callers additionally require
// a magnitude threshold, so borderline p-values never decide alone.
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie accounting.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	ra := 0.0
	for i, o := range all {
		if o.fromA {
			ra += ranks[i]
		}
	}
	u := ra - n1*(n1+1)/2
	mu := n1 * n2 / 2
	nTot := n1 + n2
	sigma2 := n1 * n2 / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		return 1 // all values tied: no evidence of difference
	}
	z := u - mu
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	return 2 * (1 - stdNormalCDF(math.Abs(z)))
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
