// Command opscheck validates a Prometheus text exposition read from
// stdin: it must parse under the strict rules of ops.ParseExposition
// (every sample typed, no duplicate series) and contain at least one
// sample. CI pipes `curl /metrics` through it so an exposition that a
// real scraper would reject fails the build.
//
//	curl -fsS http://127.0.0.1:9090/metrics | opscheck
//
// On success it prints the series count; on failure it prints the parse
// error and exits nonzero.
package main

import (
	"fmt"
	"io"
	"os"

	"broadway/internal/ops"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "opscheck:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	scrape, err := ops.ParseExposition(in)
	if err != nil {
		return err
	}
	if len(scrape.Values) == 0 {
		return fmt.Errorf("exposition parsed but contains no samples")
	}
	fmt.Fprintf(out, "ok: %d series across %d families\n", len(scrape.Values), len(scrape.Types))
	return nil
}
