package main

import (
	"strings"
	"testing"
)

func TestRunAcceptsValidExposition(t *testing.T) {
	in := strings.NewReader(`# HELP broadway_cache_hits_total Cache hits.
# TYPE broadway_cache_hits_total counter
broadway_cache_hits_total 42
# TYPE broadway_hub_max_lag gauge
broadway_hub_max_lag{hub="relay"} 3
`)
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "ok: 2 series") {
		t.Fatalf("unexpected output %q", out.String())
	}
}

func TestRunRejectsUntypedSample(t *testing.T) {
	if err := run(strings.NewReader("mystery_metric 1\n"), &strings.Builder{}); err == nil {
		t.Fatal("untyped sample accepted")
	}
}

func TestRunRejectsEmptyExposition(t *testing.T) {
	if err := run(strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("empty exposition accepted")
	}
}
