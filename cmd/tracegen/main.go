// Command tracegen generates synthetic workload traces and writes them in
// the repository's trace file format.
//
// Usage:
//
//	tracegen -preset cnn-fn -o cnn-fn.trace
//	tracegen -news -name mysite -duration 48h -updates 200 -start-hour 9 -seed 7 -o my.trace
//	tracegen -stock -name mystock -duration 3h -ticks 1000 -initial 50 -min 48 -max 52 -o my.trace
//	tracegen -summarize my.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	preset := fs.String("preset", "", "generate a paper preset (cnn-fn, nyt-ap, nyt-reuters, guardian, att, yahoo)")
	news := fs.Bool("news", false, "generate a custom news trace")
	stock := fs.Bool("stock", false, "generate a custom stock trace")
	summarize := fs.String("summarize", "", "summarize an existing trace file and exit")
	out := fs.String("o", "", "output file (default stdout)")

	name := fs.String("name", "custom", "trace name")
	seed := fs.Int64("seed", 1, "random seed")
	duration := fs.Duration("duration", 48*3600e9, "observation window")
	updates := fs.Int("updates", 200, "news: number of updates")
	startHour := fs.Float64("start-hour", 13, "news: hour of day at trace start")
	burst := fs.Float64("burst", 0.15, "news: burst fraction")
	jitter := fs.Float64("jitter", 0.4, "news: hourly intensity jitter")
	ticks := fs.Int("ticks", 1000, "stock: number of ticks")
	initial := fs.Float64("initial", 100, "stock: initial price")
	minP := fs.Float64("min", 95, "stock: price floor")
	maxP := fs.Float64("max", 105, "stock: price cap")
	vol := fs.Float64("vol", 0.1, "stock: per-tick volatility ($)")
	reversion := fs.Float64("reversion", 0.02, "stock: mean reversion strength")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, tr.Summarize())
		return nil
	}

	var (
		tr  *trace.Trace
		err error
	)
	switch {
	case *preset != "":
		tr, err = tracegen.ByName(*preset)
	case *news:
		tr, err = tracegen.News(tracegen.NewsConfig{
			Name: *name, Seed: *seed, Duration: *duration, Updates: *updates,
			StartHour: *startHour, BurstFraction: *burst, ProfileJitter: *jitter,
		})
	case *stock:
		tr, err = tracegen.Stock(tracegen.StockConfig{
			Name: *name, Seed: *seed, Duration: *duration, Ticks: *ticks,
			Initial: *initial, Min: *minP, Max: *maxP,
			Volatility: *vol, Reversion: *reversion,
		})
	default:
		return fmt.Errorf("one of -preset, -news, -stock, or -summarize is required")
	}
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, tr.Summarize())
	return nil
}
