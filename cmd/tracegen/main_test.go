package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"broadway/internal/trace"
)

func TestPresetToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "att.trace")
	var buf bytes.Buffer
	if err := run([]string{"-preset", "att", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "att" || tr.NumUpdates() != 653 {
		t.Errorf("trace = %s/%d", tr.Name, tr.NumUpdates())
	}
}

func TestPresetToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "cnn-fn"}, &buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumUpdates() != 113 {
		t.Errorf("updates = %d", tr.NumUpdates())
	}
}

func TestCustomNews(t *testing.T) {
	path := filepath.Join(t.TempDir(), "n.trace")
	var buf bytes.Buffer
	err := run([]string{"-news", "-name", "mysite", "-duration", "24h",
		"-updates", "42", "-start-hour", "8", "-o", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mysite" || tr.NumUpdates() != 42 {
		t.Errorf("trace = %s/%d", tr.Name, tr.NumUpdates())
	}
}

func TestCustomStock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.trace")
	var buf bytes.Buffer
	err := run([]string{"-stock", "-name", "mystock", "-duration", "1h",
		"-ticks", "99", "-initial", "50", "-min", "48", "-max", "52", "-o", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumUpdates() != 99 {
		t.Errorf("ticks = %d", tr.NumUpdates())
	}
}

func TestSummarize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "y.trace")
	var buf bytes.Buffer
	if err := run([]string{"-preset", "yahoo", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-summarize", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2204 updates") {
		t.Errorf("summary = %q", buf.String())
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{},                      // no action
		{"-preset", "bogus"},    // unknown preset
		{"-summarize", "/nope"}, // unreadable file
		{"-news", "-updates", "-5"},
		{"-stock", "-min", "10", "-max", "5", "-initial", "7"},
		{"-bad-flag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) must fail", args)
		}
	}
}
