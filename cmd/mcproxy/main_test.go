package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDemoOriginServesAndUpdates(t *testing.T) {
	url, stop, err := startDemoOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get(url + "/news/story.html")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Breaking news") {
		t.Errorf("body = %q", body)
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Error("demo origin must set Last-Modified")
	}
	// The group tolerances are advertised.
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "x-mc-group=frontpage") {
		t.Errorf("Cache-Control = %q", cc)
	}
}

func TestDemoOriginStopIsClean(t *testing.T) {
	url, stop, err := startDemoOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if _, err := http.Get(url + "/news/story.html"); err == nil {
		t.Error("origin must be unreachable after stop")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Reserve a port for the proxy.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr,
			"-delta", "1s", "-mdelta", "1s", "-run-for", "2s"})
	}()

	// Wait for the proxy to come up, then fetch through it.
	var resp *http.Response
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = http.Get(fmt.Sprintf("http://%s/news/story.html", addr))
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("proxy never came up: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Breaking news") {
		t.Errorf("body through proxy = %q", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{},                          // neither -origin nor -demo
		{"-mode", "bogus", "-demo"}, // bad mode
		{"-demo", "-origin", "http://x"},
		{"-origin", "://bad"},
		{"-bad-flag"},
		{"-demo", "-eviction", "lru"}, // unknown eviction policy
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) must fail", args)
		}
	}
}
