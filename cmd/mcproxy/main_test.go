package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/ops"
)

func TestDemoOriginServesAndUpdates(t *testing.T) {
	_, url, stop, err := startDemoOrigin("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get(url + "/news/story.html")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Breaking news") {
		t.Errorf("body = %q", body)
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Error("demo origin must set Last-Modified")
	}
	// The group tolerances are advertised.
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "x-mc-group=frontpage") {
		t.Errorf("Cache-Control = %q", cc)
	}
}

func TestDemoOriginStopIsClean(t *testing.T) {
	_, url, stop, err := startDemoOrigin("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if _, err := http.Get(url + "/news/story.html"); err == nil {
		t.Error("origin must be unreachable after stop")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Reserve a port for the proxy.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr,
			"-delta", "1s", "-mdelta", "1s", "-run-for", "2s"})
	}()

	// Wait for the proxy to come up, then fetch through it.
	var resp *http.Response
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = http.Get(fmt.Sprintf("http://%s/news/story.html", addr))
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("proxy never came up: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Breaking news") {
		t.Errorf("body through proxy = %q", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunWithPushEndToEnd runs the demo origin with -push and checks a
// story update reaches the cache via the invalidation channel well
// before the 30s Δ could have polled for it: the demo origin rewrites
// the story every 7s, the policy's first regular poll is 30s out, so a
// revision advance observed on a cache HIT inside the test window can
// only have been delivered by push.
func TestRunWithPushEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr, "-push",
			"-delta", "30s", "-ttr-max", "5m", "-run-for", "13s"})
	}()

	get := func() (body, cache string, ok bool) {
		resp, err := http.Get(fmt.Sprintf("http://%s/news/story.html", addr))
		if err != nil {
			return "", "", false
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", "", false
		}
		return string(b), resp.Header.Get("X-Cache"), resp.StatusCode == http.StatusOK
	}
	var first string
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if body, _, ok := get(); ok {
			first = body
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(first, "Breaking news") {
		t.Fatalf("proxy never served the story (last body %q)", first)
	}

	// Wait out one origin rewrite (7s): the cached story must advance
	// revision while still serving HITs, with the regular poll schedule
	// nowhere near due.
	advanced := false
	deadline = time.Now().Add(11 * time.Second)
	for time.Now().Before(deadline) {
		body, cache, ok := get()
		if ok && body != first {
			if cache != "HIT" {
				t.Errorf("revision advanced on X-Cache=%q, want a background (push) refresh serving HIT", cache)
			}
			advanced = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !advanced {
		t.Error("story revision never advanced within 11s; the push channel did not deliver")
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunWithRelayServesEventStream: -relay-events must expose the
// proxy's own invalidation stream at -events-path, speaking the same
// SSE protocol the origin does (hello first), so a child mcproxy can
// point -push at this one.
func TestRunWithRelayServesEventStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr, "-push", "-relay-events",
			"-events-path", "/fleet-events", "-run-for", "4s"})
	}()

	deadline := time.Now().Add(3 * time.Second)
	var frame string
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/fleet-events", addr))
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		frame = string(buf[:n])
		break
	}
	// The first frame of a relayed stream is the hub's hello ("data: v1
	// 1 ..." — kind 1), exactly as the origin's endpoint speaks it.
	if !strings.Contains(frame, "data: v1 1 ") {
		t.Fatalf("relay endpoint did not speak the event protocol: %q", frame)
	}
	// The relay path must not shadow proxied objects.
	resp, err := http.Get(fmt.Sprintf("http://%s/news/story.html", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("story through relay-enabled proxy: %d", resp.StatusCode)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunWithPushValuesServesPayloadStream: with -push-values the whole
// chain speaks protocol v2 — the demo origin publishes bodies, and a
// relay-enabled proxy's own stream negotiates payload delivery
// (?maxpayload=) and answers with a v2 hello carrying the agreed cap.
func TestRunWithPushValuesServesPayloadStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr, "-push", "-push-values",
			"-relay-events", "-run-for", "4s"})
	}()

	deadline := time.Now().Add(3 * time.Second)
	var frame string
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/events?maxpayload=65536", addr))
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		frame = string(buf[:n])
		break
	}
	// A payload-negotiated stream's hello is a v2 frame (kind 1) whose
	// cap field is the negotiated payload size.
	if !strings.Contains(frame, "data: v2 1 ") || !strings.Contains(frame, " 65536 ") {
		t.Fatalf("relay did not negotiate payload delivery: %q", frame)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunWithOpsListenServesOperationalSurface: -ops-listen must expose
// /metrics (parseable Prometheus text, covering the proxy AND the demo
// origin), /healthz (200 once the push channel is up), and the
// token-gated /admin API, all on a separate listener so scrapes never
// share a port with cached content.
func TestRunWithOpsListenServesOperationalSurface(t *testing.T) {
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	addr, opsAddr := reserve(), reserve()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-demo", "-listen", addr, "-push", "-relay-events",
			"-ops-listen", opsAddr, "-ops-token", "sesame", "-run-for", "6s"})
	}()

	// Warm the cache through the proxy so the scrape has traffic behind it.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/news/story.html", addr))
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// /healthz turns 200 once the push subscription connects.
	var health *http.Response
	var err error
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		health, err = http.Get(fmt.Sprintf("http://%s/healthz", opsAddr))
		if err == nil && health.StatusCode == http.StatusOK {
			break
		}
		if err == nil {
			health.Body.Close()
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("ops listener never came up: %v", err)
	}
	healthBody, _ := io.ReadAll(health.Body)
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, body %s", health.StatusCode, healthBody)
	}
	if !strings.Contains(string(healthBody), `"status": "ok"`) {
		t.Errorf("/healthz body = %s", healthBody)
	}

	// /metrics parses under the strict exposition rules and covers the
	// proxy's cache, the relay hub, and the demo origin's hub.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", opsAddr))
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := ops.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	for _, name := range []string{
		ops.SeriesKey("broadway_cache_hits_total"),
		ops.SeriesKey("broadway_hub_seq", ops.Label{Name: "hub", Value: ops.HubRelay}),
		ops.SeriesKey("broadway_hub_seq", ops.Label{Name: "hub", Value: ops.HubOrigin}),
		ops.SeriesKey("broadway_origin_polls_total"),
	} {
		if _, ok := scrape.Values[name]; !ok {
			t.Errorf("scrape is missing %s", name)
		}
	}

	// The admin API honors the token: no credentials 401, wrong 403,
	// right one evicts.
	resp, err = http.Post(fmt.Sprintf("http://%s/admin/evict?key=/news/story.html", opsAddr), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless admin call = %d, want 401", resp.StatusCode)
	}
	adminReq := func(token string) int {
		req, err := http.NewRequest(http.MethodPost,
			fmt.Sprintf("http://%s/admin/evict?key=/news/story.html", opsAddr), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := adminReq("wrong"); code != http.StatusForbidden {
		t.Errorf("wrong-token admin call = %d, want 403", code)
	}
	if code := adminReq("sesame"); code != http.StatusOK {
		t.Errorf("authorized admin call = %d, want 200", code)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestShutdownDrainsInflightRequests reproduces the srv.Close() teardown
// bug: a request still streaming when -run-for expires must complete
// instead of being reset mid-body.
func TestShutdownDrainsInflightRequests(t *testing.T) {
	// A deliberately slow origin: the response body arrives in two
	// installments 700ms apart.
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Last-Modified", time.Now().UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		time.Sleep(700 * time.Millisecond)
		io.WriteString(w, "slow body done")
	})
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	originSrv := &http.Server{Handler: slow}
	go originSrv.Serve(originLn)
	defer originSrv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-origin", "http://" + originLn.Addr().String(),
			"-listen", addr, "-drain", "5s"})
	}()

	// Deterministic sequencing instead of racing a -run-for timer: wait
	// until the proxy answers (POST → 405 without touching the slow
	// upstream), put the slow request in flight, then deliver the same
	// SIGINT a real operator would.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(fmt.Sprintf("http://%s/up", addr), "text/plain", nil)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never came up")
		}
		time.Sleep(25 * time.Millisecond)
	}

	type result struct {
		body []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/slow", addr))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		resCh <- result{body: body, err: err}
	}()
	time.Sleep(150 * time.Millisecond) // the GET is now held open by the slow origin
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("in-flight request was cut off mid-body: %v", res.err)
		}
		if string(res.body) != "slow body done" {
			t.Fatalf("drained body = %q, want the full slow response", res.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned after the drain")
	}
}

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{},                          // neither -origin nor -demo
		{"-mode", "bogus", "-demo"}, // bad mode
		{"-demo", "-origin", "http://x"},
		{"-origin", "://bad"},
		{"-bad-flag"},
		{"-demo", "-eviction", "lru"},             // unknown eviction policy
		{"-demo", "-max-bytes", "-1"},             // negative budget is not "unlimited"
		{"-demo", "-poll-workers", "-2"},          // negative workers is not GOMAXPROCS
		{"-demo", "-push", "-push-stretch", "-1"}, // only 0 and >=1 are documented
		{"-demo", "-push-stretch", "-0.5"},        // rejected even without -push
		{"-demo", "-shards", "0"},
		{"-demo", "-disk-max-bytes", "-1"},
		{"-demo", "-disk-max-bytes", "4096"},        // budget without -disk-dir
		{"-demo", "-subscriber-buffer", "-1"},       // negative allowance
		{"-demo", "-subscriber-buffer", "64"},       // allowance without -relay-events
		{"-demo", "-mutex-profile-fraction", "-1"},  // negative sampling rate
		{"-demo", "-mutex-profile-fraction", "100"}, // profile without -ops-listen to serve it
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) must fail", args)
		}
	}
	// The documented zero values stay valid: they must get past flag
	// validation (the run then fails later only for the missing origin,
	// proving validation did not reject them).
	for _, args := range [][]string{
		{"-poll-workers", "0"},
		{"-push-stretch", "0"},
		{"-max-bytes", "0"},
		{"-subscriber-buffer", "0"},
		{"-mutex-profile-fraction", "0"},
	} {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), "either -origin or -demo") {
			t.Errorf("run(%v) = %v, want only the missing-origin error", args, err)
		}
	}
}

// TestRunDiskTierSurvivesRestart is the command-level restart story: one
// mcproxy run against a static origin populates -disk-dir; a second run
// over the same directory must serve the object warm — from the cache,
// without refetching the body from a now-dead origin.
func TestRunDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	// A origin that counts full-body fetches and can validate (304).
	var fetches atomic.Int64
	lastMod := time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat)
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-Modified-Since") == lastMod {
			w.Header().Set("Last-Modified", lastMod)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		fetches.Add(1)
		w.Header().Set("Last-Modified", lastMod)
		io.WriteString(w, "durable payload")
	})
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	originSrv := &http.Server{Handler: origin}
	go originSrv.Serve(originLn)
	defer originSrv.Close()
	originURL := "http://" + originLn.Addr().String()

	runOnce := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-origin", originURL, "-listen", addr,
				"-disk-dir", dir, "-run-for", "3s"})
		}()
		var body string
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("http://%s/obj", addr))
			if err == nil {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				body = string(b)
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err := <-done; err != nil {
			t.Fatalf("run: %v", err)
		}
		return body
	}

	if body := runOnce(); body != "durable payload" {
		t.Fatalf("first run served %q", body)
	}
	first := fetches.Load()
	if first == 0 {
		t.Fatal("first run never fetched from the origin")
	}
	if body := runOnce(); body != "durable payload" {
		t.Fatalf("second run served %q", body)
	}
	// The second run may re-validate (304), but must not need the body
	// again: full fetches stay where the first run left them.
	if got := fetches.Load(); got != first {
		t.Errorf("second run refetched the body: %d full fetches, want %d", got, first)
	}
}
