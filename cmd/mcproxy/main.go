// Command mcproxy runs the live consistency-maintaining caching proxy,
// optionally together with a demo origin whose objects update themselves
// (a miniature "breaking news" site), so the whole system can be
// exercised with any HTTP client:
//
//	# Terminal 1: demo origin + proxy
//	mcproxy -demo -listen :8089
//
//	# Terminal 2:
//	curl -i http://localhost:8089/news/story.html
//
// Against a real upstream:
//
//	mcproxy -origin https://example.com -listen :8089 -delta 30s
//
// Cache residency is bounded by -max-objects and -max-bytes (approximate
// resident memory for keys, bodies, and per-object overhead). The
// -eviction flag selects what happens beyond those budgets:
//
//	-eviction clock   (default) group-aware CLOCK replacement: new
//	                  objects are admitted and cold residents evicted,
//	                  with mutual-consistency group members penalized
//	                  as victims so groups are not silently broken
//	-eviction refuse  legacy behavior: at capacity new objects are
//	                  served uncached (X-Cache: BYPASS), never admitted
//
//	mcproxy -demo -max-objects 10000 -max-bytes 67108864 -eviction clock
//
// A -disk-dir adds a persistent tier under the memory cache:
// replacement victims are demoted to disk instead of lost, and a
// restart rehydrates the cache warm, with every rehydrated object
// re-validated against the origin (served as X-Cache: GRACE until it
// is) so the Δt guarantee holds across the restart:
//
//	mcproxy -demo -disk-dir /var/cache/mcproxy -disk-max-bytes 268435456
//
// Hybrid push–pull consistency: when the origin streams invalidation
// events (the webserver's /events endpoint; the demo origin does), -push
// subscribes the proxy to them. Updates then reach the cache the moment
// the origin announces them, regular TTR polls stretch toward the upper
// bound (-push-stretch) while the channel is healthy, and a channel
// failure falls back to the paper's pure polling with a staleness-bounded
// catch-up sweep:
//
//	mcproxy -demo -push
//	mcproxy -origin http://origin:8080 -push -push-path /events
//
// Value-carrying push (wire protocol v2): -push-values negotiates
// payload delivery on the event stream, so an update's new body rides
// the event itself and is installed directly — digest-verified, charged
// against the byte budget — with no confirmation poll at all. Events
// whose payload cannot be installed (digest mismatch, body over the
// negotiated cap, byte-budget refusal) degrade to the pushed poll;
// value push → invalidation push → pure pull is the full ladder:
//
//	mcproxy -demo -push -push-values
//
// Proxy hierarchy: -relay-events gives the proxy a downstream face — it
// republishes every upstream invalidation (and every update its own
// polls confirm) on its own event stream at -events-path, so child
// proxies subscribe to it exactly as it subscribes to the origin, and
// one origin stream serves a whole edge fleet:
//
//	# parent: subscribes to the origin, relays downstream
//	mcproxy -demo -push -relay-events -listen :8089
//	# leaves: origin AND event stream are the parent
//	mcproxy -origin http://parent:8089 -push -listen :8090
//
// On SIGINT the proxy drains in-flight requests for up to -drain before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/ops"
	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcproxy", flag.ContinueOnError)
	listen := fs.String("listen", ":8089", "proxy listen address")
	originURL := fs.String("origin", "", "upstream origin base URL")
	demo := fs.Bool("demo", false, "run a self-updating demo origin and proxy it")
	demoListen := fs.String("demo-listen", "127.0.0.1:0", "demo origin listen address")
	delta := fs.Duration("delta", 30*time.Second, "default Δt tolerance")
	groupDelta := fs.Duration("mdelta", 10*time.Second, "default mutual δ tolerance")
	mode := fs.String("mode", "triggered", "mutual mode: baseline | triggered | heuristic")
	ttrMax := fs.Duration("ttr-max", 10*time.Minute, "TTR upper bound")
	shards := fs.Int("shards", 64, "object-store shards (rounded up to a power of two)")
	pollWorkers := fs.Int("poll-workers", 0, "concurrent origin poll workers (0 = GOMAXPROCS)")
	maxObjects := fs.Int("max-objects", 0, "cached-object cap (0 = default 65536, negative = unlimited)")
	maxBytes := fs.Int64("max-bytes", 0, "resident-memory budget in bytes for cached objects (0 = unlimited)")
	eviction := fs.String("eviction", "clock", "replacement beyond -max-objects/-max-bytes: clock | refuse")
	pushEnabled := fs.Bool("push", false, "subscribe to the origin's invalidation event stream (hybrid push-pull)")
	pushPath := fs.String("push-path", "/events", "path of the origin's event-stream endpoint")
	pushStretch := fs.Float64("push-stretch", 4, "TTR stretch factor while the push channel is healthy, clamped to -ttr-max (values <= 1 disable stretching)")
	pushValues := fs.Bool("push-values", false, "value-carrying push (protocol v2): negotiate payload delivery on the event stream and install pushed bodies directly, with no confirmation poll; with -relay-events the relayed stream carries payloads too, and with -demo the demo origin publishes them")
	relayEvents := fs.Bool("relay-events", false, "republish invalidation events downstream: serve this proxy's own event stream so child proxies can subscribe to it (proxy hierarchy)")
	eventsPath := fs.String("events-path", "/events", "path the relayed event stream is served at (with -relay-events)")
	subscriberBuffer := fs.Int("subscriber-buffer", 0, "relayed-stream slow-consumer allowance in events: a child stream falling this far behind the head is terminated and must resume (0 = default 256; with -relay-events)")
	mutexProfileFraction := fs.Int("mutex-profile-fraction", 0, "runtime mutex-contention sampling rate for /admin/pprof/mutex on -ops-listen (0 = off, n samples 1/n of contention events)")
	opsListen := fs.String("ops-listen", "", "operational-surface listen address serving /metrics, /healthz, and /admin (empty = disabled); kept off the proxy's own listener so scrapes and admin calls never share a port with cached content")
	opsToken := fs.String("ops-token", "", "bearer token gating the /admin API on -ops-listen (empty = open)")
	diskDir := fs.String("disk-dir", "", "directory for the persistent disk tier (empty = memory only); survives restarts, rehydrating cached objects with their learned TTR state")
	diskMaxBytes := fs.Int64("disk-max-bytes", 0, "byte budget for the disk tier's blobs (0 = unlimited); oldest-validated records are dropped beyond it")
	drain := fs.Duration("drain", 5*time.Second, "in-flight request drain timeout on shutdown")
	runFor := fs.Duration("run-for", 0, "exit after this long (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Nonsensical values used to fall silently through to defaults (a
	// negative -max-bytes behaved like "unlimited", a negative
	// -poll-workers like GOMAXPROCS); fail loudly instead so a typo in a
	// unit file is caught at startup, not discovered as an unbounded
	// cache in production. Zero stays valid where the help text gives it
	// a meaning (-poll-workers 0, -push-stretch 0, -max-bytes 0).
	switch {
	case *maxBytes < 0:
		return fmt.Errorf("-max-bytes must be >= 0 (0 = unlimited), got %d", *maxBytes)
	case *pollWorkers < 0:
		return fmt.Errorf("-poll-workers must be >= 0 (0 = GOMAXPROCS), got %d", *pollWorkers)
	case *pushStretch < 0:
		return fmt.Errorf("-push-stretch must be >= 0 (0 and 1 disable stretching), got %v", *pushStretch)
	case *shards < 1:
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	case *diskMaxBytes < 0:
		return fmt.Errorf("-disk-max-bytes must be >= 0 (0 = unlimited), got %d", *diskMaxBytes)
	case *diskMaxBytes > 0 && *diskDir == "":
		return fmt.Errorf("-disk-max-bytes needs -disk-dir")
	case *subscriberBuffer < 0:
		return fmt.Errorf("-subscriber-buffer must be >= 0 (0 = default), got %d", *subscriberBuffer)
	case *subscriberBuffer > 0 && !*relayEvents:
		return fmt.Errorf("-subscriber-buffer needs -relay-events")
	case *mutexProfileFraction < 0:
		return fmt.Errorf("-mutex-profile-fraction must be >= 0 (0 = off), got %d", *mutexProfileFraction)
	case *mutexProfileFraction > 0 && *opsListen == "":
		return fmt.Errorf("-mutex-profile-fraction needs -ops-listen (the profile is served at /admin/pprof/mutex)")
	}
	if *mutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexProfileFraction)
	}

	evictionPolicy, err := webproxy.ParseEvictionPolicy(*eviction)
	if err != nil {
		return err
	}

	var triggerMode core.TriggerMode
	switch *mode {
	case "baseline":
		triggerMode = core.TriggerNone
	case "triggered":
		triggerMode = core.TriggerAll
	case "heuristic":
		triggerMode = core.TriggerFaster
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	var stopDemo func()
	var demoOrigin *webserver.Origin
	if *demo {
		if *originURL != "" {
			return fmt.Errorf("-demo and -origin are mutually exclusive")
		}
		o, u, stop, err := startDemoOrigin(*demoListen, *pushValues)
		if err != nil {
			return err
		}
		demoOrigin = o
		stopDemo = stop
		defer stopDemo()
		*originURL = u
		fmt.Printf("demo origin listening on %s\n", u)
	}
	if *originURL == "" {
		return fmt.Errorf("either -origin or -demo is required")
	}
	origin, err := url.Parse(*originURL)
	if err != nil {
		return fmt.Errorf("parsing origin URL: %w", err)
	}

	proxyCfg := webproxy.Config{
		Origin:                origin,
		DefaultDelta:          *delta,
		DefaultGroupDelta:     *groupDelta,
		Mode:                  triggerMode,
		Bounds:                core.TTRBounds{Min: *delta, Max: *ttrMax},
		Shards:                *shards,
		PollWorkers:           *pollWorkers,
		MaxObjects:            *maxObjects,
		MaxBytes:              *maxBytes,
		Eviction:              evictionPolicy,
		RelayEvents:           *relayEvents,
		RelayPath:             *eventsPath,
		RelaySubscriberBuffer: *subscriberBuffer,
		PushValues:            *pushValues,
		DiskDir:               *diskDir,
		DiskMaxBytes:          *diskMaxBytes,
	}
	if *pushEnabled {
		pushURL, err := origin.Parse(*pushPath)
		if err != nil {
			return fmt.Errorf("building push URL from %q: %w", *pushPath, err)
		}
		proxyCfg.PushURL = pushURL
		proxyCfg.PushStretch = *pushStretch
		if proxyCfg.PushStretch <= 0 {
			// The flag promises "<= 1 disables"; zero must not fall
			// through to the config's unset-means-default-4 rule.
			proxyCfg.PushStretch = 1
		}
	}
	px, err := webproxy.New(proxyCfg)
	if err != nil {
		return err
	}
	px.Start()
	defer px.Close()

	srv := &http.Server{Addr: *listen, Handler: px}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	fmt.Printf("mcproxy listening on %s (origin %s, Δ=%v, δ=%v, mode %s, eviction %s, push %v, values %v, relay %v)\n",
		*listen, origin, *delta, *groupDelta, *mode, evictionPolicy, *pushEnabled, *pushValues, *relayEvents)

	var opsSrv *http.Server
	if *opsListen != "" {
		opsHandler, err := ops.NewHandler(ops.Config{
			Proxy:  px,
			Origin: demoOrigin,
			Token:  *opsToken,
		})
		if err != nil {
			return err
		}
		// net.Listen before Serve so ":0" resolves and the printed
		// address is curlable (tests depend on this).
		opsLn, err := net.Listen("tcp", *opsListen)
		if err != nil {
			return fmt.Errorf("ops listener: %w", err)
		}
		opsSrv = &http.Server{Handler: opsHandler}
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errCh <- fmt.Errorf("ops server: %w", err)
			}
		}()
		fmt.Printf("ops surface listening on %s (/metrics /healthz /admin)\n", opsLn.Addr())
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)
	var timeout <-chan time.Time
	if *runFor > 0 {
		timeout = time.After(*runFor)
	}
	select {
	case err := <-errCh:
		return err
	case <-interrupt:
	case <-timeout:
	}
	// Graceful teardown: stop accepting, then drain in-flight requests
	// for up to -drain before abandoning them. srv.Close() here would
	// reset active connections and clients would see truncated bodies.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if opsSrv != nil {
		// The ops surface carries no client payloads; close it hard so
		// the drain window belongs entirely to content requests.
		opsSrv.Close()
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The drain window expired with requests still running: tear
		// the rest down hard, and say so — clients saw truncated
		// responses, which must not look like a clean exit.
		return fmt.Errorf("drain timed out, connections reset: %w", errors.Join(err, srv.Close()))
	}
	return nil
}

// startDemoOrigin launches a self-updating origin: a news story page plus
// two embedded objects forming one consistency group, and a stock quote
// (numeric body with a Δv tolerance) updating every few seconds. The
// origin also streams invalidation events at /events so the proxy can be
// run with -push; with values it attaches each update's new body to the
// event (value-carrying push), so a -push-values proxy installs updates
// with zero confirmation polls. The *Origin is returned alongside the
// URL so -ops-listen can export its stats too.
func startDemoOrigin(addr string, values bool) (*webserver.Origin, string, func(), error) {
	opts := []webserver.Option{
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(5 * time.Second),
	}
	if values {
		opts = append(opts, webserver.WithPushValues(0))
	}
	origin := webserver.NewOrigin(opts...)

	const group = "frontpage"
	set := func(rev int) {
		origin.Set("/news/story.html", []byte(fmt.Sprintf(
			`<html><body><h1>Breaking news, revision %d</h1>`+
				`<img src="/news/photo.jpg"><script src="/news/score.js"></script></body></html>`, rev)),
			"text/html")
		origin.Set("/news/photo.jpg", []byte(fmt.Sprintf("photo bytes rev %d", rev)), "image/jpeg")
		origin.Set("/news/score.js", []byte(fmt.Sprintf("var score=%d;", rev*7)), "application/javascript")
		// A drifting quote: the proxy maintains Δv-consistency for it.
		origin.Set("/quote/acme", []byte(fmt.Sprintf("%.2f", 100.0+float64(rev%40)*0.15)), "text/plain")
	}
	set(1)
	for _, p := range []string{"/news/story.html", "/news/photo.jpg", "/news/score.js"} {
		origin.SetTolerances(p, httpx.Tolerances{Group: group, GroupDelta: 5 * time.Second})
	}
	origin.SetTolerances("/quote/acme", httpx.Tolerances{ValueDelta: 0.25})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, err
	}
	srv := &http.Server{Handler: origin}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ln) // returns on Close
	}()

	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(7 * time.Second)
		defer ticker.Stop()
		rev := 1
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				rev++
				set(rev)
			}
		}
	}()

	stop := func() {
		close(done)
		srv.Close()
		wg.Wait()
	}
	return origin, "http://" + ln.Addr().String(), stop, nil
}
