package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"broadway/internal/diskstore"
)

func TestRunVerifiesAndCountsRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := diskstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(diskstore.Record{Key: "/a", ValidatedAt: time.Unix(1_700_000_000, 0)}, []byte("body a"))
	st.Put(diskstore.Record{Key: "/b", ValidatedAt: time.Unix(1_700_000_000, 0)}, []byte("body b"))
	st.Close()

	if err := run([]string{dir}, os.Stdout); err != nil {
		t.Fatalf("run on a consistent store: %v", err)
	}

	// Corrupt one blob (truncate it): the size check must trip.
	var blob string
	filepath.Walk(filepath.Join(dir, "blobs"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			blob = path
		}
		return nil
	})
	if blob == "" {
		t.Fatal("no blob written")
	}
	if err := os.Truncate(blob, 1); err != nil {
		t.Fatal(err)
	}
	err = run([]string{dir}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "blob size") {
		t.Errorf("run on a truncated blob = %v, want a size mismatch", err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("run with no args must fail")
	}
	if err := run([]string{"/does/not/exist"}, os.Stdout); err == nil {
		t.Error("run on a missing directory must fail")
	}
}
