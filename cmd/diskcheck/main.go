// Command diskcheck validates a persistent disk tier directory
// (mcproxy -disk-dir) without opening it for writing: the metadata
// journal must parse — a torn tail from a crash mid-append is
// tolerated, anything else is corruption — and every live record's blob
// must exist with the recorded size and content digest. The
// crash-consistency smoke (scripts/disk-crash-smoke.sh) runs it against
// a SIGKILLed proxy's directory before restarting over it.
//
//	diskcheck /var/cache/mcproxy
//
// On success it prints the live record count; on failure it prints what
// disagrees and exits nonzero.
package main

import (
	"fmt"
	"os"

	"broadway/internal/diskstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "diskcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: diskcheck <disk-dir>")
	}
	dir := args[0]
	if _, err := os.Stat(dir); err != nil {
		return err
	}
	n, err := diskstore.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ok: %d records, index and blobs agree\n", n)
	return nil
}
