package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

func TestTemporalScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scenario", "temporal", "-trace", "cnn-fn", "-delta", "10m", "-policy", "limd"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cnn-fn") || !strings.Contains(out, "polls=") {
		t.Errorf("output = %q", out)
	}
}

func TestMutualTemporalScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scenario", "mutual-temporal", "-trace", "cnn-fn",
		"-trace2", "nyt-ap", "-mode", "heuristic"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fSync=") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestMutualValueScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scenario", "mutual-value", "-trace", "yahoo",
		"-trace2", "att", "-vdelta", "1.0", "-approach", "partitioned"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "partitioned") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestTraceFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tracegen.CNNFN()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-scenario", "temporal", "-trace", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cnn-fn") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-scenario", "bogus"},
		{"-scenario", "temporal", "-trace", "no-such-trace"},
		{"-scenario", "temporal", "-policy", "bogus"},
		{"-scenario", "mutual-temporal", "-mode", "bogus"},
		{"-scenario", "mutual-value", "-trace", "yahoo", "-trace2", "att", "-approach", "bogus"},
		{"-not-a-flag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) must fail", args)
		}
	}
}
