// Command mcsim runs a single consistency simulation and prints the
// evaluation report. It is the interactive counterpart of cmd/repro: one
// scenario, fully parameterized from flags.
//
// Usage:
//
//	# Individual temporal consistency: LIMD vs baseline on a preset trace
//	mcsim -scenario temporal -trace cnn-fn -delta 10m -policy limd
//	mcsim -scenario temporal -trace cnn-fn -delta 10m -policy periodic
//
//	# Mutual temporal consistency on a pair
//	mcsim -scenario mutual-temporal -trace cnn-fn -trace2 nyt-ap \
//	      -delta 10m -mdelta 5m -mode heuristic
//
//	# Mutual value consistency on the stock pair
//	mcsim -scenario mutual-value -trace yahoo -trace2 att \
//	      -vdelta 0.6 -approach partitioned
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"broadway/internal/core"
	"broadway/internal/experiments"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcsim", flag.ContinueOnError)
	scenario := fs.String("scenario", "temporal", "temporal | mutual-temporal | mutual-value")
	traceName := fs.String("trace", "cnn-fn", "trace preset or trace file path")
	trace2Name := fs.String("trace2", "nyt-ap", "second trace for mutual scenarios")
	policy := fs.String("policy", "limd", "temporal: limd | periodic")
	delta := fs.Duration("delta", 10*time.Minute, "Δt tolerance")
	mdelta := fs.Duration("mdelta", 5*time.Minute, "mutual δ tolerance (temporal)")
	vdelta := fs.Float64("vdelta", 0.6, "mutual δ tolerance (value, $)")
	mode := fs.String("mode", "triggered", "mutual-temporal: baseline | triggered | heuristic")
	approach := fs.String("approach", "adaptive", "mutual-value: adaptive | partitioned")
	withHistory := fs.Bool("history", false, "enable the modification-history extension")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *scenario {
	case "temporal":
		tr, err := loadTrace(*traceName)
		if err != nil {
			return err
		}
		mk, err := policyFactory(*policy, *delta)
		if err != nil {
			return err
		}
		res, err := experiments.RunTemporal(experiments.TemporalScenario{
			Trace: tr, Delta: *delta, Policy: mk, WithHistory: *withHistory,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trace %s, Δ=%v, policy %s\n", tr.Name, *delta, *policy)
		fmt.Fprintln(out, res.Report)
		return nil

	case "mutual-temporal":
		trA, err := loadTrace(*traceName)
		if err != nil {
			return err
		}
		trB, err := loadTrace(*trace2Name)
		if err != nil {
			return err
		}
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		res, err := experiments.RunMutualTemporal(experiments.MutualTemporalScenario{
			TraceA: trA, TraceB: trB,
			DeltaIndividual: *delta, DeltaMutual: *mdelta,
			Mode: m, WithHistory: *withHistory,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pair %s + %s, Δ=%v, δ=%v, mode %s\n", trA.Name, trB.Name, *delta, *mdelta, m)
		fmt.Fprintln(out, res.Report)
		return nil

	case "mutual-value":
		trA, err := loadTrace(*traceName)
		if err != nil {
			return err
		}
		trB, err := loadTrace(*trace2Name)
		if err != nil {
			return err
		}
		ap, err := parseApproach(*approach)
		if err != nil {
			return err
		}
		res, err := experiments.RunMutualValue(experiments.MutualValueScenario{
			TraceA: trA, TraceB: trB,
			DeltaMutual: *vdelta, Approach: ap,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pair %s + %s, δ=$%.2f, approach %s\n", trA.Name, trB.Name, *vdelta, ap)
		fmt.Fprintln(out, res.Report)
		return nil

	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}

// loadTrace resolves a preset name or reads a trace file.
func loadTrace(name string) (*trace.Trace, error) {
	if tr, err := tracegen.ByName(name); err == nil {
		return tr, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a preset nor a readable file: %w", name, err)
	}
	defer f.Close()
	return trace.Read(f)
}

func policyFactory(name string, delta time.Duration) (func() core.Policy, error) {
	switch name {
	case "limd":
		return func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) }, nil
	case "periodic":
		return func() core.Policy { return core.NewPeriodic(delta) }, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func parseMode(s string) (core.TriggerMode, error) {
	switch s {
	case "baseline":
		return core.TriggerNone, nil
	case "triggered":
		return core.TriggerAll, nil
	case "heuristic":
		return core.TriggerFaster, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseApproach(s string) (experiments.ValueApproach, error) {
	switch s {
	case "adaptive":
		return experiments.ApproachAdaptive, nil
	case "partitioned":
		return experiments.ApproachPartitioned, nil
	default:
		return 0, fmt.Errorf("unknown approach %q", s)
	}
}
