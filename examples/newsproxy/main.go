// Newsproxy: keep a breaking-news page and its sibling feed mutually
// consistent — the paper's motivating scenario (§1). The example first
// discovers the related-object group by scanning the page's HTML for
// embedded objects (§5.2), then compares the three mutual-consistency
// approaches of §3.2 on a pair of real-rate news workloads.
//
// Run with:
//
//	go run ./examples/newsproxy
package main

import (
	"fmt"
	"log"
	"time"

	"broadway"
)

const storyHTML = `<html>
<head><link rel="stylesheet" href="/news/style.css"></head>
<body>
  <h1>Breaking: markets move</h1>
  <img src="/news/chart.png">
  <img src="/news/floor-photo.jpg">
  <script src="/news/live-score.js"></script>
</body>
</html>`

func main() {
	// Step 1: deduce the syntactic relationships. The page and its
	// embedded objects form one consistency group.
	graph := broadway.NewDependencyGraph()
	urls := graph.RelateDocument("/news/story.html", storyHTML)
	fmt.Println("embedded objects discovered in /news/story.html:")
	for _, u := range urls {
		fmt.Println("  ", u)
	}
	group := graph.GroupOf("/news/story.html")
	fmt.Printf("consistency group (%d objects): %v\n\n", len(group), group)

	// Step 2: evaluate the mutual-consistency approaches on a pair of
	// feeds with different update rates (the AP and Reuters stand-ins:
	// one changes every ~12 minutes, the other every ~20).
	trA, trB := broadway.TraceNYTAP(), broadway.TraceNYTReuters()
	fmt.Println("workload A:", trA.Summarize())
	fmt.Println("workload B:", trB.Summarize())

	const (
		delta  = 10 * time.Minute // per-object Δt
		mdelta = 5 * time.Minute  // mutual δ
	)
	fmt.Printf("\nΔ=%v per object, mutual δ=%v\n", delta, mdelta)
	fmt.Printf("\n%-28s %8s %10s %14s %14s\n",
		"approach", "polls", "triggered", "mutual fid.", "interval fid.")

	for _, mode := range []broadway.TriggerMode{
		broadway.TriggerNone, broadway.TriggerAll, broadway.TriggerFaster,
	} {
		res, err := broadway.RunMutualTemporal(broadway.MutualTemporalScenario{
			TraceA:          trA,
			TraceB:          trB,
			DeltaIndividual: delta,
			DeltaMutual:     mdelta,
			Mode:            mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-28s %8d %10d %14.3f %14.3f\n",
			mode, rep.Polls, rep.TriggeredPolls, rep.FidelityBySync, rep.FidelityByViolations)
	}

	fmt.Println(`
Reading the table: triggered polls guarantee mutual fidelity 1.0 but poll
the most; the heuristic skips slower-changing siblings and lands between
the baseline and the triggered approach on both axes — the paper's
incremental-cost result.`)
}
