// Liveproxy: the whole system over real HTTP. A self-updating origin
// serves a news story with two embedded objects (one consistency group,
// advertised via the paper's cache-control extensions) — the proxy caches
// them, refreshes each on its LIMD schedule, consumes the
// X-Modification-History extension, and triggers group polls when the
// story changes. The example drives a few client requests, injects
// updates, and prints what the proxy did.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/liveproxy
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"broadway"

	"broadway/internal/core"
)

func main() {
	// --- Origin: a miniature news site with the history extension. ---
	origin := broadway.NewWebOrigin(broadway.WithHistoryExtension(true))
	publish := func(rev int) {
		origin.Set("/story.html", []byte(fmt.Sprintf(
			`<html><body><h1>Rev %d</h1><img src="/photo.jpg"></body></html>`, rev)),
			"text/html")
		origin.Set("/photo.jpg", []byte(fmt.Sprintf("photo-rev-%d", rev)), "image/jpeg")
	}
	publish(1)
	for _, p := range []string{"/story.html", "/photo.jpg"} {
		origin.SetTolerances(p, broadway.Tolerances{Group: "front", GroupDelta: time.Second})
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// --- Proxy: millisecond-scale TTRs so the demo runs fast. ---
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := broadway.NewWebProxy(broadway.WebProxyConfig{
		Origin:       originURL,
		DefaultDelta: 50 * time.Millisecond,
		Mode:         broadway.TriggerAll,
		Bounds:       core.TTRBounds{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	proxy.Start()
	defer proxy.Close()
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(proxySrv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		return string(body), resp.Header.Get("X-Cache")
	}

	// --- Act 1: admission. ---
	_, cache1 := get("/story.html")
	_, cache2 := get("/story.html")
	fmt.Printf("first request:  X-Cache=%s (admitted + refresher registered)\n", cache1)
	fmt.Printf("second request: X-Cache=%s (served from cache)\n", cache2)
	get("/photo.jpg")

	// --- Act 2: the origin publishes updates; the proxy's background
	// LIMD refresher picks them up without any client request. ---
	fmt.Println("\npublishing revisions 2..4 at the origin...")
	for rev := 2; rev <= 4; rev++ {
		publish(rev)
		time.Sleep(250 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if body, _ := proxy.CachedBody("/story.html"); len(body) > 0 &&
			string(body) != "" && containsRev(string(body), 4) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	body, cache := get("/story.html")
	fmt.Printf("client now sees: %q (X-Cache=%s)\n", trim(body, 48), cache)

	// --- Act 3: what the proxy did. ---
	story := proxy.ObjectStats("/story.html")
	photo := proxy.ObjectStats("/photo.jpg")
	fmt.Printf("\nproxy activity:\n")
	fmt.Printf("  /story.html  polls=%d triggered=%d hits=%d\n", story.Polls, story.Triggered, story.Hits)
	fmt.Printf("  /photo.jpg   polls=%d triggered=%d hits=%d\n", photo.Polls, photo.Triggered, photo.Hits)
	fmt.Printf("  origin served %d polls, %d of them 304 Not Modified\n",
		origin.Polls(), origin.NotModified())
	fmt.Println("\nClients always hit the cache; freshness is maintained entirely by")
	fmt.Println("background LIMD polls plus group-triggered refreshes — the paper's")
	fmt.Println("architecture, speaking real HTTP.")
}

func containsRev(body string, rev int) bool {
	return len(body) > 0 && body != "" &&
		// the story body embeds "Rev N"
		(func() bool {
			needle := fmt.Sprintf("Rev %d", rev)
			for i := 0; i+len(needle) <= len(body); i++ {
				if body[i:i+len(needle)] == needle {
					return true
				}
			}
			return false
		})()
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
