// Restartproxy: the persistent disk tier surviving a proxy restart. A
// first proxy admits a handful of objects from a live origin and shuts
// down; a second proxy opens the same -disk-dir and comes back warm —
// every object resident before its first request, learned TTR state
// intact, served as X-Cache: GRACE until one rate-limited validation
// poll per object re-confirms it against the origin, and as plain HITs
// after. The origin counts full-body fetches to show the restart cost:
// revalidation 304s, not re-downloads.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/restartproxy
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"time"

	"broadway"

	"broadway/internal/core"
)

func main() {
	// --- Origin: a few static objects behind a live server. ---
	origin := broadway.NewWebOrigin()
	paths := []string{"/front.html", "/style.css", "/logo.png", "/quote/acme"}
	for i, p := range paths {
		origin.Set(p, []byte(fmt.Sprintf("contents of %s (object %d)", p, i)), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "restartproxy-disk")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := broadway.WebProxyConfig{
		Origin:       originURL,
		DefaultDelta: 200 * time.Millisecond,
		Bounds:       core.TTRBounds{Min: 200 * time.Millisecond, Max: 2 * time.Second},
		DiskDir:      dir, // the persistent tier: mcproxy's -disk-dir
	}

	// --- Life 1: admit everything, let the TTRs learn, shut down. ---
	proxy1, err := broadway.NewWebProxy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	proxy1.Start()
	srv1 := httptest.NewServer(proxy1)
	for _, p := range paths {
		get(srv1.URL + p)
	}
	time.Sleep(700 * time.Millisecond) // a few refresh rounds grow the TTRs
	srv1.Close()
	proxy1.Close() // drains the write-behind queue; the journal is complete
	polls1 := origin.Stats().Polls
	fmt.Printf("life 1: admitted %d objects, origin saw %d requests, state persisted to %s\n",
		len(paths), polls1, dir)

	// --- Life 2: a new proxy over the same directory. ---
	proxy2, err := broadway.NewWebProxy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Warm before Start: every object is already resident, suspect, and
	// served under the explicit grace label.
	srv2 := httptest.NewServer(proxy2)
	defer srv2.Close()
	fmt.Printf("life 2: %d objects resident before the first request\n", proxy2.Len())
	_, label := get(srv2.URL + paths[0])
	fmt.Printf("life 2: pre-validation serve of %s: X-Cache=%s (bounded-staleness grace mode)\n",
		paths[0], label)

	// Start dispatches one validation poll per object through the
	// worker pool; once they confirm, serves are ordinary HITs.
	proxy2.Start()
	defer proxy2.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, label = get(srv2.URL + paths[0]); label == "HIT" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, p := range paths[1:] {
		get(srv2.URL + p)
	}
	ds := proxy2.DiskStats()
	fmt.Printf("life 2: post-validation serve: X-Cache=%s\n", label)
	fmt.Printf("life 2: rehydrated=%d grace_serves=%d disk_records=%d\n",
		ds.Rehydrated, ds.GraceServes, ds.Records)
	fmt.Printf("restart cost: %d origin requests (revalidation polls, not re-downloads)\n",
		origin.Stats().Polls-polls1)
}

func get(u string) (string, string) {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body), resp.Header.Get("X-Cache")
}
