// Stockticker: keep the *difference* of two cached stock quotes within a
// dollar tolerance of the difference at the server — M_v-consistency
// (§4.2). A user watching whether Yahoo outperforms AT&T by more than δ
// needs the pair to be mutually consistent, not merely each quote
// individually fresh.
//
// The example compares the paper's two approaches — the adaptive
// virtual-object technique and the partitioned-tolerance reduction — over
// a sweep of δ, then zooms into one configuration to show how the
// partitioned split reacts to the two stocks' different volatilities.
//
// Run with:
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"

	"broadway"
)

func main() {
	yahoo, att := broadway.TraceYahoo(), broadway.TraceATT()
	fmt.Println("workload A:", yahoo.Summarize())
	fmt.Println("workload B:", att.Summarize())

	fmt.Printf("\n%-8s | %-24s | %-24s\n", "", "adaptive (virtual object)", "partitioned (δa+δb=δ)")
	fmt.Printf("%-8s | %8s %13s | %8s %13s\n", "δ ($)", "polls", "fidelity", "polls", "fidelity")
	for _, delta := range []float64{0.25, 0.6, 1.0, 2.0, 5.0} {
		var row [2]broadway.MutualValueReport
		for i, approach := range []broadway.ValueApproach{
			broadway.ApproachAdaptive, broadway.ApproachPartitioned,
		} {
			res, err := broadway.RunMutualValue(broadway.MutualValueScenario{
				TraceA:      yahoo,
				TraceB:      att,
				DeltaMutual: delta,
				Approach:    approach,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.Report
		}
		fmt.Printf("%-8.2f | %8d %13.3f | %8d %13.3f\n",
			delta,
			row[0].Polls, row[0].FidelityByViolations,
			row[1].Polls, row[1].FidelityByViolations)
	}

	// Zoom: how the partitioned controller splits δ between the two
	// stocks. Yahoo moves ~10x faster, so it receives the (much)
	// smaller tolerance share — and therefore the tighter polling.
	const delta = 0.6
	part := broadway.NewMutualValuePartitioned(broadway.MutualValueConfig{Delta: delta})
	dYahoo, dATT := part.Deltas()
	fmt.Printf("\npartitioned split before any polls: δ_yahoo=$%.3f δ_att=$%.3f (even)\n", dYahoo, dATT)

	res, err := broadway.RunMutualValue(broadway.MutualValueScenario{
		TraceA:      yahoo,
		TraceB:      att,
		DeltaMutual: delta,
		Approach:    broadway.ApproachPartitioned,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the run: yahoo polled %d times, att %d times (δ=$%.2f)\n",
		len(res.LogA), len(res.LogB), delta)
	fmt.Println(`
The faster-moving stock receives the tighter tolerance share and most of
the polls; the quiet stock coasts. That asymmetry is what lets the
partitioned approach track the pair more faithfully than polling both at
the virtual object's single rate.`)
}
