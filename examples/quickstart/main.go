// Quickstart: maintain Δt-consistency for one cached news page with the
// paper's adaptive LIMD algorithm, and compare it against the
// poll-every-Δ baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"broadway"
)

func main() {
	// The synthetic stand-in for the paper's CNN Financial News trace:
	// 113 updates over ~49.5 hours with a strong day/night pattern.
	tr := broadway.TraceCNNFN()
	fmt.Println("workload:", tr.Summarize())

	// The user's consistency requirement: the cached page may lag the
	// server by at most Δ = 10 minutes.
	const delta = 10 * time.Minute

	limd, err := broadway.RunTemporal(broadway.TemporalScenario{
		Trace: tr,
		Delta: delta,
		Policy: func() broadway.Policy {
			return broadway.NewLIMD(broadway.LIMDConfig{Delta: delta})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := broadway.RunTemporal(broadway.TemporalScenario{
		Trace: tr,
		Delta: delta,
		Policy: func() broadway.Policy {
			return broadway.NewPeriodic(delta)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %8s %12s %10s %10s\n", "policy", "polls", "violations", "fidelity", "out-sync")
	for _, row := range []struct {
		name string
		rep  broadway.TemporalReport
	}{
		{"LIMD (adaptive)", limd.Report},
		{"baseline (every Δ)", baseline.Report},
	} {
		fmt.Printf("%-22s %8d %12d %10.3f %10v\n",
			row.name, row.rep.Polls, row.rep.Violations,
			row.rep.FidelityByViolations, row.rep.OutOfSync.Round(time.Second))
	}

	saved := 1 - float64(limd.Report.Polls)/float64(baseline.Report.Polls)
	fmt.Printf("\nLIMD used %.0f%% fewer polls at fidelity %.3f.\n",
		saved*100, limd.Report.FidelityByViolations)
}
