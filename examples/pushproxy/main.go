// Pushproxy: poll volume collapsing under hybrid push–pull consistency
// while freshness holds. One churning origin streams invalidation
// events; two proxies cache the same objects under identical Δt
// tolerances — one polling pure paper-mode, one subscribed to the
// channel with stretched TTRs. After a few seconds of churn the example
// prints the origin poll counts both proxies generated and the
// freshness each one ended with.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/pushproxy
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"broadway"

	"broadway/internal/core"
)

// The regime where push pays off is the paper's news-feed workload:
// updates arrive much less often than the Δt tolerance forces a pure
// puller to poll. Here Δ = 100ms (so pull polls several times a second)
// while each object updates only every couple of seconds; the hybrid
// proxy polls on push events plus a stretched safety-net schedule.
// (Invert the ratio — churn faster than Δ — and push degenerates into
// one poll per update, costing more than pull: the channel is a
// bandwidth optimization for update-sparse objects, not a universal
// win.)
const (
	objects     = 6
	delta       = 100 * time.Millisecond
	ttrMax      = 2 * time.Second
	updateEvery = 2 * time.Second
	churnFor    = 6 * time.Second
)

func main() {
	// --- Origin: a handful of objects updating continuously, streaming
	// invalidation events at /events. ---
	origin := broadway.NewWebOrigin(
		broadway.WithHistoryExtension(true),
		broadway.WithPushHeartbeat(500*time.Millisecond),
	)
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = fmt.Sprintf("/feed/%d", i)
		origin.Set(paths[i], []byte("rev 0"), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		log.Fatal(err)
	}
	pushURL, _ := url.Parse(originSrv.URL + "/events")

	// --- Two proxies, identical tolerances; only the channel differs. ---
	mkProxy := func(push bool) *broadway.WebProxy {
		cfg := broadway.WebProxyConfig{
			Origin:       originURL,
			DefaultDelta: delta,
			Bounds:       core.TTRBounds{Min: delta, Max: ttrMax},
		}
		if push {
			cfg.PushURL = pushURL
			cfg.PushStretch = 10
			cfg.PushBackoffMin = 20 * time.Millisecond
			cfg.PushHeartbeatTimeout = 2 * time.Second
		}
		px, err := broadway.NewWebProxy(cfg)
		if err != nil {
			log.Fatal(err)
		}
		px.Start()
		return px
	}
	pullProxy, pushProxy := mkProxy(false), mkProxy(true)
	defer pullProxy.Close()
	defer pushProxy.Close()

	// Admit every object into both caches.
	warm := func(px *broadway.WebProxy) {
		srv := httptest.NewServer(px)
		defer srv.Close()
		for _, p := range paths {
			resp, err := http.Get(srv.URL + p)
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	warm(pullProxy)
	warm(pushProxy)

	// --- Churn: every object updates every couple of seconds. ---
	fmt.Printf("churning %d objects for %v (Δ=%v, TTR ∈ [%v, %v], update every %v, push stretch 10x)...\n",
		objects, churnFor, delta, delta, ttrMax, updateEvery)
	stop := make(chan struct{})
	go func() {
		rev := 0
		ticker := time.NewTicker(updateEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				rev++
				for _, p := range paths {
					origin.Set(p, []byte(fmt.Sprintf("rev %d", rev)), "text/plain")
				}
			}
		}
	}()
	time.Sleep(churnFor)
	close(stop)

	// Both proxies share the one origin, so attribute traffic through
	// each proxy's own per-object poll counters.
	var pullPolls, pushPolls, pushPushed uint64
	for _, p := range paths {
		pullPolls += pullProxy.ObjectStats(p).Polls
		st := pushProxy.ObjectStats(p).Polls
		pushPolls += st
		pushPushed += pushProxy.ObjectStats(p).Pushed
	}

	fmt.Printf("\n%-28s %10s %10s\n", "", "pull-only", "hybrid")
	fmt.Printf("%-28s %10d %10d\n", "origin polls", pullPolls, pushPolls)
	fmt.Printf("%-28s %10s %10d\n", "  of which pushed", "-", pushPushed)
	if pushPolls > 0 {
		fmt.Printf("%-28s %9.1fx\n", "poll reduction", float64(pullPolls)/float64(pushPolls))
	}
	ps := pushProxy.PushStats()
	fmt.Printf("\npush channel: connected=%v events=%d pushedPolls=%d fallbacks=%d\n",
		ps.Connected, ps.Events, ps.Polls, ps.Fallbacks)

	// Freshness check: both caches must hold the latest revision within
	// one Δ of the final update.
	time.Sleep(2 * delta)
	for _, px := range []*broadway.WebProxy{pullProxy, pushProxy} {
		body, _ := px.CachedBody(paths[0])
		fmt.Printf("final cached %s: %q\n", paths[0], body)
	}
}
