// Edgefleet: one origin stream serving a whole fleet through a
// THREE-hop, interest-filtered proxy hierarchy. A churning origin
// publishes invalidation events; one root proxy subscribes to it and
// relays on its own /events stream; two mid proxies subscribe to the
// root, each declaring only its half of the key space; four leaf
// proxies subscribe to — and fetch through — their mid, each declaring
// a single shard prefix. Every hub renders each event once and skips
// the frames a subscriber never asked for, so the origin pays for a
// single subscription and a single poller no matter how wide (or how
// narrow-interested) the edge is.
//
// Three phases:
//
//  1. Healthy churn across every shard — each leaf receives exactly its
//     own shard's events; the root and mid hubs report how many frames
//     interest filtering skipped.
//  2. The origin's event endpoint is killed and revived: the root falls
//     back to paper-mode polling and the blindness propagates as
//     mid-stream hello/Resets through BOTH relay tiers to every leaf.
//  3. Leaf 0 fetches an object outside every static declaration: the
//     admission bounces its subscription — and the mid's, and the
//     root's — widening the declared interest chain-wide until the
//     origin's updates for it reach the edge.
//
// Every node — origin, root, mids, leaves — also mounts the operational
// surface (broadway.NewOpsHandler) on its own listener, so the whole
// hierarchy is scrapeable: the run finishes by probing each node's
// /healthz and cross-checking a /metrics scrape with the strict parser.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/edgefleet
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"broadway"

	"broadway/internal/core"
)

const (
	shards      = 4
	perShard    = 2
	delta       = 100 * time.Millisecond
	ttrMax      = 2 * time.Second
	updateEvery = 400 * time.Millisecond
	phaseFor    = 2 * time.Second
)

func main() {
	// --- Origin: churning sharded objects + invalidation stream. ---
	origin := broadway.NewWebOrigin(
		broadway.WithHistoryExtension(true),
		broadway.WithPushHeartbeat(250*time.Millisecond),
		broadway.WithPushValues(0),
	)
	var paths []string
	for s := 0; s < shards; s++ {
		for o := 0; o < perShard; o++ {
			paths = append(paths, fmt.Sprintf("/edge/%d/obj%d", s, o))
		}
	}
	for _, p := range paths {
		origin.Set(p, []byte("rev 0"), "text/plain")
	}
	origin.Set("/extra/hot", []byte("rev 0"), "text/plain")
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// Every node gets its own ops listener: name → /metrics + /healthz +
	// /admin, exactly what a scrape config would target per instance.
	type opsNode struct {
		name string
		srv  *httptest.Server
	}
	var opsNodes []opsNode
	mountOps := func(name string, px *broadway.WebProxy, o *broadway.WebOrigin) {
		h, err := broadway.NewOpsHandler(broadway.OpsConfig{Proxy: px, Origin: o})
		if err != nil {
			log.Fatal(err)
		}
		srv := httptest.NewServer(h)
		opsNodes = append(opsNodes, opsNode{name, srv})
	}
	defer func() {
		for _, n := range opsNodes {
			n.srv.Close()
		}
	}()
	mountOps("origin", nil, origin)

	newNode := func(upstream string, relay bool, prefixes []string) (*broadway.WebProxy, *httptest.Server) {
		up, err := url.Parse(upstream)
		if err != nil {
			log.Fatal(err)
		}
		push, _ := url.Parse(upstream + "/events")
		p, err := broadway.NewWebProxy(broadway.WebProxyConfig{
			Origin:               up,
			DefaultDelta:         delta,
			Bounds:               core.TTRBounds{Min: delta, Max: ttrMax},
			PushURL:              push,
			PushStretch:          10,
			PushValues:           true,
			PushInterest:         true,
			PushPrefixes:         prefixes,
			PushBackoffMin:       20 * time.Millisecond,
			PushBackoffMax:       200 * time.Millisecond,
			PushHeartbeatTimeout: time.Second,
			RelayEvents:          relay,
			RelayHeartbeat:       250 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		p.Start()
		var srv *httptest.Server
		if relay {
			srv = httptest.NewServer(p)
		}
		return p, srv
	}

	// --- Root: subscribes to the origin, declares every shard. ---
	root, rootSrv := newNode(originSrv.URL, true,
		[]string{"/edge/0/", "/edge/1/", "/edge/2/", "/edge/3/"})
	defer root.Close()
	defer rootSrv.Close()
	mountOps("root", root, nil)

	// --- Mids: each declares half the shards to the root. ---
	mids := make([]*broadway.WebProxy, 2)
	midSrvs := make([]*httptest.Server, 2)
	for j := range mids {
		mids[j], midSrvs[j] = newNode(rootSrv.URL, true,
			[]string{fmt.Sprintf("/edge/%d/", 2*j), fmt.Sprintf("/edge/%d/", 2*j+1)})
		defer mids[j].Close()
		defer midSrvs[j].Close()
		mountOps(fmt.Sprintf("mid%d", j), mids[j], nil)
	}

	// --- Leaves: one shard each, fetched through their mid. ---
	fleet := make([]*broadway.WebProxy, shards)
	fleetSrvs := make([]*httptest.Server, shards)
	for i := range fleet {
		leaf, _ := newNode(midSrvs[i/2].URL, false, []string{fmt.Sprintf("/edge/%d/", i)})
		defer leaf.Close()
		fleet[i] = leaf
		fleetSrvs[i] = httptest.NewServer(leaf)
		defer fleetSrvs[i].Close()
		mountOps(fmt.Sprintf("leaf%d", i), leaf, nil)
	}

	// Warm each leaf with ITS shard only (which warms the chain once).
	get := func(srv *httptest.Server, p string) {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	for i, srv := range fleetSrvs {
		for o := 0; o < perShard; o++ {
			get(srv, fmt.Sprintf("/edge/%d/obj%d", i, o))
		}
	}

	// --- Churn: every shard plus the undeclared extra. ---
	stop := make(chan struct{})
	go func() {
		rev := 0
		ticker := time.NewTicker(updateEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				rev++
				body := []byte(fmt.Sprintf("rev %d", rev))
				for _, p := range paths {
					origin.Set(p, body, "text/plain")
				}
				origin.Set("/extra/hot", body, "text/plain")
			}
		}
	}()

	fmt.Printf("edge fleet: origin → 1 root → 2 mids → %d leaves (1 shard each), %d objects, update every %v\n\n",
		shards, len(paths)+1, updateEvery)

	fmt.Printf("phase 1: healthy filtered fan-out for %v...\n", phaseFor)
	time.Sleep(phaseFor)
	report(origin, root, mids, fleet)

	fmt.Printf("\nphase 2: killing the origin's event endpoint for %v (root blind, Resets relay through both tiers)...\n", phaseFor)
	origin.SetPushAvailable(false)
	time.Sleep(phaseFor)
	origin.SetPushAvailable(true)
	fmt.Printf("         ...revived; letting the chain re-arm for %v...\n", phaseFor/2)
	time.Sleep(phaseFor / 2)
	report(origin, root, mids, fleet)

	fmt.Printf("\nphase 3: leaf 0 admits /extra/hot — outside every static declaration...\n")
	get(fleetSrvs[0], "/extra/hot")
	time.Sleep(phaseFor)
	close(stop)
	report(origin, root, mids, fleet)
	fmt.Printf("  widening bounces: root=%d mid0=%d leaf0=%d (each hop re-declared a wider interest)\n",
		root.PushStats().Bounces, mids[0].PushStats().Bounces, fleet[0].PushStats().Bounces)

	// --- Operational sweep: probe every node the way monitoring would. ---
	fmt.Printf("\nops sweep: %d scrape targets (one per node)\n", len(opsNodes))
	for _, n := range opsNodes {
		resp, err := http.Get(n.srv.URL + "/healthz")
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		health := "ok"
		if resp.StatusCode != http.StatusOK {
			health = fmt.Sprintf("degraded (%d)", resp.StatusCode)
		}
		m, err := http.Get(n.srv.URL + "/metrics")
		if err != nil {
			log.Fatal(err)
		}
		scrape, err := broadway.ParseOpsExposition(m.Body)
		m.Body.Close()
		if err != nil {
			log.Fatalf("%s: /metrics failed strict parse: %v", n.name, err)
		}
		switch n.name {
		case "origin":
			seq, _ := scrape.Value("broadway_hub_seq", broadway.OpsLabel{Name: "hub", Value: "origin"})
			fmt.Printf("  %-7s healthz=%s  %d series  hub seq %.0f\n", n.name, health, len(scrape.Values), seq)
		default:
			events, _ := scrape.Value("broadway_push_events_total")
			filtered, _ := scrape.Value("broadway_hub_filtered_total", broadway.OpsLabel{Name: "hub", Value: "relay"})
			fmt.Printf("  %-7s healthz=%s  %d series  events %.0f  relay-filtered %.0f\n",
				n.name, health, len(scrape.Values), events, filtered)
		}
	}

	fmt.Println("\nThe origin carried ONE subscriber and ONE poller's load for the whole fleet;")
	fmt.Println("every hub rendered each event once and skipped it for subscribers that never")
	fmt.Println("declared it, and one out-of-set fetch re-negotiated interest up the whole chain.")
	fmt.Println("Every node exposed /metrics and /healthz, and every scrape passed strict parsing.")
}

func report(origin *broadway.WebOrigin, root *broadway.WebProxy, mids, fleet []*broadway.WebProxy) {
	hub := origin.PushHubStats()
	rrs := root.RelayStats()
	rps := root.PushStats()
	fmt.Printf("  origin: %d polls served, %d subscribers, seq %d\n",
		origin.Polls(), hub.Subscribers, hub.Seq)
	fmt.Printf("  root:   connected=%v fallbacks=%d | relay seq %d → %d subs, filtered %d, resets %d\n",
		rps.Connected, rps.Fallbacks, rrs.Hub.Seq, rrs.Hub.Subscribers, rrs.Hub.Filtered, rrs.Hub.Resets)
	for j, m := range mids {
		ms := m.PushStats()
		mrs := m.RelayStats()
		fmt.Printf("  mid %d:  connected=%v events=%d midStreamResets=%d | relay seq %d → %d subs, filtered %d\n",
			j, ms.Connected, ms.Events, ms.Resets, mrs.Hub.Seq, mrs.Hub.Subscribers, mrs.Hub.Filtered)
	}
	for i, leaf := range fleet {
		ls := leaf.PushStats()
		fmt.Printf("  leaf %d: connected=%v connects=%d midStreamResets=%d applied=%d events=%d\n",
			i, ls.Connected, ls.Connects, ls.Resets, ls.ValueApplied, ls.Events)
	}
}
