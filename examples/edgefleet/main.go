// Edgefleet: one origin stream serving a whole fleet through a proxy
// hierarchy. A churning origin publishes invalidation events; ONE
// parent proxy subscribes to it and relays every event (and every
// update its own polls confirm) on its own /events stream; N leaf
// proxies subscribe to — and fetch through — the parent. The origin
// pays for a single subscription and a single poller no matter how wide
// the edge is.
//
// Halfway through, the origin's event endpoint is killed and revived:
// the parent falls back to paper-mode polling and propagates a
// mid-stream hello/Reset to every leaf (driving their fallback sweeps
// over live connections), and the whole fleet keeps serving content
// whose staleness stays inside the pure-polling bound.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/edgefleet
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"broadway"

	"broadway/internal/core"
)

const (
	leaves      = 4
	objects     = 5
	delta       = 100 * time.Millisecond
	ttrMax      = 2 * time.Second
	updateEvery = 400 * time.Millisecond
	phaseFor    = 2 * time.Second
)

func main() {
	// --- Origin: churning objects + invalidation stream. ---
	origin := broadway.NewWebOrigin(
		broadway.WithHistoryExtension(true),
		broadway.WithPushHeartbeat(250*time.Millisecond),
	)
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = fmt.Sprintf("/edge/%d", i)
		origin.Set(paths[i], []byte("rev 0"), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		log.Fatal(err)
	}
	originPush, _ := url.Parse(originSrv.URL + "/events")

	// --- Parent: subscribes upstream, relays downstream. ---
	parent, err := broadway.NewWebProxy(broadway.WebProxyConfig{
		Origin:               originURL,
		DefaultDelta:         delta,
		Bounds:               core.TTRBounds{Min: delta, Max: ttrMax},
		PushURL:              originPush,
		PushStretch:          10,
		PushBackoffMin:       20 * time.Millisecond,
		PushHeartbeatTimeout: time.Second,
		RelayEvents:          true,
		RelayHeartbeat:       250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	parent.Start()
	defer parent.Close()
	parentSrv := httptest.NewServer(parent)
	defer parentSrv.Close()
	parentURL, _ := url.Parse(parentSrv.URL)
	parentPush, _ := url.Parse(parentSrv.URL + "/events")

	// --- Leaves: origin AND event stream are the parent. ---
	fleet := make([]*broadway.WebProxy, leaves)
	fleetSrvs := make([]*httptest.Server, leaves)
	for i := range fleet {
		leaf, err := broadway.NewWebProxy(broadway.WebProxyConfig{
			Origin:               parentURL,
			DefaultDelta:         delta,
			Bounds:               core.TTRBounds{Min: delta, Max: ttrMax},
			PushURL:              parentPush,
			PushStretch:          10,
			PushBackoffMin:       20 * time.Millisecond,
			PushHeartbeatTimeout: time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		leaf.Start()
		defer leaf.Close()
		fleet[i] = leaf
		fleetSrvs[i] = httptest.NewServer(leaf)
		defer fleetSrvs[i].Close()
	}

	// Warm every leaf cache (which warms the parent once).
	for _, srv := range fleetSrvs {
		for _, p := range paths {
			resp, err := http.Get(srv.URL + p)
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	// --- Churn. ---
	stop := make(chan struct{})
	go func() {
		rev := 0
		ticker := time.NewTicker(updateEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				rev++
				for _, p := range paths {
					origin.Set(p, []byte(fmt.Sprintf("rev %d", rev)), "text/plain")
				}
			}
		}
	}()

	fmt.Printf("edge fleet: origin → 1 parent (relay) → %d leaves, %d objects, update every %v\n\n",
		leaves, objects, updateEvery)

	fmt.Printf("phase 1: healthy chain for %v...\n", phaseFor)
	time.Sleep(phaseFor)
	report(origin, parent, fleet)

	fmt.Printf("\nphase 2: killing the origin's event endpoint for %v (parent blind, leaves on live streams)...\n", phaseFor)
	origin.SetPushAvailable(false)
	time.Sleep(phaseFor)
	report(origin, parent, fleet)

	fmt.Printf("\nphase 3: reviving the endpoint for %v...\n", phaseFor)
	origin.SetPushAvailable(true)
	time.Sleep(phaseFor)
	close(stop)
	report(origin, parent, fleet)

	fmt.Println("\nThe origin carried ONE subscriber and ONE poller's load for the whole fleet;")
	fmt.Println("the kill surfaced as a parent fallback plus one mid-stream Reset per leaf —")
	fmt.Println("their connections to the parent never dropped.")
}

func report(origin *broadway.WebOrigin, parent *broadway.WebProxy, fleet []*broadway.WebProxy) {
	hub := origin.PushHubStats()
	rs := parent.RelayStats()
	ps := parent.PushStats()
	fmt.Printf("  origin:  %d polls served, %d event-stream subscribers, seq %d\n",
		origin.Polls(), hub.Subscribers, hub.Seq)
	fmt.Printf("  parent:  connected=%v fallbacks=%d pushedPolls=%d | relay seq %d → %d subscribers (maxLag %d, resets %d)\n",
		ps.Connected, ps.Fallbacks, ps.Polls, rs.Hub.Seq, rs.Hub.Subscribers, rs.Hub.MaxLag, rs.Hub.Resets)
	for i, leaf := range fleet {
		ls := leaf.PushStats()
		fmt.Printf("  leaf %d:  connected=%v connects=%d midStreamResets=%d pushedPolls=%d events=%d\n",
			i, ls.Connected, ls.Connects, ls.Resets, ls.Polls, ls.Events)
	}
}
