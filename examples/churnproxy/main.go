// Churnproxy: consistency-aware cache replacement under adversarial
// churn. A proxy capped at 64 objects (and a small byte budget) serves
// a workload that enumerates a 1,000-key space — the attack that froze
// the pre-eviction cache solid — while a small hot set and a
// mutual-consistency group are re-requested continuously. The CLOCK
// replacement keeps the hot set and the group resident, churns the cold
// tail through, and the example prints the resulting hit ratios and
// proxy-wide cache counters.
//
// Everything runs in-process on loopback and finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/churnproxy
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"broadway"

	"broadway/internal/core"
	"broadway/internal/httpx"
)

func main() {
	// --- Origin: a hot front page, a grouped story bundle, and a long
	// tail of one-hit-wonder objects. ---
	origin := broadway.NewWebOrigin()
	for i := 0; i < 8; i++ {
		origin.Set(fmt.Sprintf("/hot/%d", i), []byte(fmt.Sprintf("hot object %d", i)), "text/plain")
	}
	groupPaths := []string{"/bundle/story.html", "/bundle/photo.jpg", "/bundle/score.js"}
	for _, p := range groupPaths {
		origin.Set(p, []byte("bundle member "+p), "text/plain")
		origin.SetTolerances(p, httpx.Tolerances{Group: "bundle"})
	}
	for i := 0; i < 1000; i++ {
		origin.Set(fmt.Sprintf("/tail/%d", i), []byte(fmt.Sprintf("cold tail object %d", i)), "text/plain")
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		log.Fatal(err)
	}

	// --- Proxy: tiny residency budgets, CLOCK replacement (default). ---
	px, err := broadway.NewWebProxy(broadway.WebProxyConfig{
		Origin:       originURL,
		DefaultDelta: time.Minute,
		Bounds:       core.TTRBounds{Min: time.Minute, Max: 10 * time.Minute},
		MaxObjects:   64,
		MaxBytes:     64 << 10, // 64 KiB resident budget
		Eviction:     broadway.EvictClock,
	})
	if err != nil {
		log.Fatal(err)
	}
	px.Start()
	defer px.Close()
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	get := func(path string) string {
		resp, err := http.Get(proxySrv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Cache")
	}

	// Warm the hot set and the group.
	for i := 0; i < 8; i++ {
		get(fmt.Sprintf("/hot/%d", i))
	}
	for _, p := range groupPaths {
		get(p)
	}

	// --- The churn: enumerate 1,000 cold keys (16x capacity) while the
	// hot set and the bundle keep getting traffic. ---
	hotHits, hotReqs := 0, 0
	groupHits, groupReqs := 0, 0
	for i := 0; i < 3000; i++ {
		get(fmt.Sprintf("/tail/%d", i%1000))
		hotReqs++
		if get(fmt.Sprintf("/hot/%d", i%8)) == "HIT" {
			hotHits++
		}
		if i%2 == 0 {
			groupReqs++
			if get(groupPaths[(i/2)%len(groupPaths)]) == "HIT" {
				groupHits++
			}
		}
	}

	cs := px.CacheStats()
	fmt.Printf("after 3000 churn rounds over a 1000-key space (64-object cap):\n")
	fmt.Printf("  hot set hit ratio:      %5.1f%%  (%d/%d)\n", 100*float64(hotHits)/float64(hotReqs), hotHits, hotReqs)
	fmt.Printf("  group member hit ratio: %5.1f%%  (%d/%d)\n", 100*float64(groupHits)/float64(groupReqs), groupHits, groupReqs)
	fmt.Printf("  resident objects:       %d (bytes %d of budget %d)\n", cs.ResidentObjects, cs.ResidentBytes, int64(64<<10))
	fmt.Printf("  misses: %d   evictions: %d   capped: %d\n", cs.Misses, cs.Evictions, cs.Capped)

	for _, p := range groupPaths {
		st := px.ObjectStats(p)
		fmt.Printf("  %-20s cached=%-5v grouped=%v bytes=%d\n", p, st.Cached, st.Grouped, st.Bytes)
	}

	// --- Admin eviction + singleflight re-admission. ---
	px.Evict("/hot/0")
	first := get("/hot/0")  // refetched from the origin
	second := get("/hot/0") // resident again
	fmt.Printf("after Evict(/hot/0): next request %s, then %s\n", first, second)
}
