module broadway

go 1.24
