// Package broadway is a from-scratch reproduction of "Maintaining Mutual
// Consistency for Cached Web Objects" (Urgaonkar, Ninan, Raunak, Shenoy,
// Ramamritham — ICDCS 2001): adaptive cache-consistency mechanisms for
// individual web objects (LIMD in the temporal domain, adaptive TTR in
// the value domain) and mutual-consistency mechanisms for groups of
// related objects, together with the event-driven proxy/origin simulator
// and synthetic workloads used to reproduce the paper's evaluation, and a
// live net/http caching proxy running the same algorithms.
//
// This package is the public facade: it re-exports the types a downstream
// user needs and provides the high-level entry points. The subsystems
// live in internal/ packages:
//
//	internal/core         consistency policies (the paper's contribution)
//	internal/sim          deterministic discrete-event engine
//	internal/origin       simulated origin server
//	internal/proxy        simulated caching proxy
//	internal/metrics      fidelity evaluation (Eq. 13/14, mutual semantics)
//	internal/trace        workload model and trace files
//	internal/tracegen     synthetic workload generators (Tables 2 and 3)
//	internal/experiments  reproduction of every table and figure
//	internal/depgraph     related-object discovery (§5.2)
//	internal/httpx        proposed HTTP/1.1 extensions (§5.1)
//	internal/webserver    live HTTP origin
//	internal/webproxy     live HTTP caching proxy (the Squid future work)
//	internal/push         origin-driven invalidation channel (hybrid push–pull)
//	internal/ops          operational surface (/metrics, /healthz, admin API)
//	internal/sched        wall-clock min-heap refresh schedule
//	internal/singleflight duplicate-suppressed cache admission
//
// # Live proxy architecture
//
// The live proxy (WebProxy) is built for concurrent operation at scale.
// Cached objects live in a sharded store (2^k shards selected by FNV
// hash, per-shard RWMutex), so hits on different objects never contend
// on a global lock and the response body is shared rather than copied.
// Refreshes are ordered by a min-heap schedule keyed on each object's
// next poll instant and executed by a bounded pool of poll workers
// (WebProxyConfig.PollWorkers), routed so that all objects of one
// consistency group serialize on the same worker — which keeps the
// mutual-consistency controllers single-threaded per group while
// unrelated objects refresh in parallel, and confines a slow origin to
// the single worker its hash routes to rather than stalling the whole
// proxy. Concurrent first requests for one object are
// collapsed into a single origin fetch by a singleflight group, and
// upstream failures retry under capped exponential backoff without
// disturbing the policy's learned TTR state.
//
// Cache residency is bounded by WebProxyConfig.MaxObjects and the
// WebProxyConfig.MaxBytes memory budget, enforced by consistency-aware
// replacement (EvictClock, the default): each shard doubles as a CLOCK
// (second-chance) ring, hits mark an access bit with a lock-free atomic
// operation so the hit path gains no lock, and members of
// mutual-consistency groups carry extra second chances in the victim
// scan — evicting one member would silently weaken the whole group's
// mutual guarantee, so the policy prefers ungrouped victims of equal
// heat. An evicted object is fully unwound: descheduled from the
// refresh heap (it never polls the origin again), detached from its
// group controller, and safe against concurrent re-admission through
// the singleflight group. The legacy EvictRefuse policy instead serves
// over-budget objects uncached (X-Cache: BYPASS). Proxy-wide counters
// (hits, misses, evictions, capped admissions, resident bytes) are
// exposed through WebProxy.CacheStats.
//
// The paper's machinery is pure pull; the live stack can layer an
// origin-driven invalidation channel on top of it (hybrid push–pull): a
// push-enabled WebOrigin streams per-object update events over an
// SSE-style /events endpoint (wire protocol in internal/push), the
// proxy converts each event into an immediate poll through the same
// group-affinity workers, and regular TTR polls stretch toward the
// upper bound while the channel is healthy — so consistency traffic
// follows the origin's churn instead of the poll schedule. With
// value-carrying push (WithPushValues on the origin,
// WebProxyConfig.PushValues on the proxy) the events carry the new body
// itself — digest-verified, size-negotiated per stream — and the proxy
// installs it with no confirmation poll at all: one message per update,
// fleet-wide through relays. The channel is an optimization, never a
// correctness dependency: a disconnect falls back to pure paper-mode
// polling with a staleness-bounded catch-up sweep, so the Δt guarantee
// never silently widens.
//
// # Quick start
//
//	tr := broadway.TraceCNNFN()
//	res, err := broadway.RunTemporal(broadway.TemporalScenario{
//		Trace: tr,
//		Delta: 10 * time.Minute,
//		Policy: func() broadway.Policy {
//			return broadway.NewLIMD(broadway.LIMDConfig{Delta: 10 * time.Minute})
//		},
//	})
//	fmt.Println(res.Report) // polls, violations, fidelity
package broadway

import (
	"io"
	"time"

	"broadway/internal/core"
	"broadway/internal/depgraph"
	"broadway/internal/experiments"
	"broadway/internal/httpx"
	"broadway/internal/metrics"
	"broadway/internal/ops"
	"broadway/internal/push"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// Core consistency types (see internal/core for full documentation).
type (
	// ObjectID identifies a cached web object (typically its URL).
	ObjectID = core.ObjectID
	// Policy computes an object's TTR sequence from poll outcomes.
	Policy = core.Policy
	// PollOutcome is the protocol-visible result of one poll.
	PollOutcome = core.PollOutcome
	// TTRBounds clamp computed TTRs to [Min, Max].
	TTRBounds = core.TTRBounds
	// LIMDConfig parameterizes the linear-increase/multiplicative-
	// decrease Δt policy (paper §3.1).
	LIMDConfig = core.LIMDConfig
	// LIMD is the adaptive Δt-consistency policy.
	LIMD = core.LIMD
	// AdaptiveTTRConfig parameterizes the Δv policy (paper §4.1).
	AdaptiveTTRConfig = core.AdaptiveTTRConfig
	// AdaptiveTTR is the adaptive Δv-consistency policy.
	AdaptiveTTR = core.AdaptiveTTR
	// Periodic is the poll-every-Δ baseline.
	Periodic = core.Periodic
	// TriggerMode selects the mutual temporal approach (§3.2).
	TriggerMode = core.TriggerMode
	// MutualTimeConfig parameterizes the mutual temporal controller.
	MutualTimeConfig = core.MutualTimeConfig
	// MutualTimeController coordinates triggered polls within a group.
	MutualTimeController = core.MutualTimeController
	// MutualValueConfig parameterizes the mutual value policies (§4.2).
	MutualValueConfig = core.MutualValueConfig
	// MutualValueAdaptive tracks f(a,b) as a virtual object.
	MutualValueAdaptive = core.MutualValueAdaptive
	// MutualValuePartitioned splits δ across the pair.
	MutualValuePartitioned = core.MutualValuePartitioned
	// Func is the tracked function f over two object values.
	Func = core.Func
	// DifferenceFunc is f(a,b) = a − b.
	DifferenceFunc = core.DifferenceFunc
	// ViolationInference estimates violations hidden by plain HTTP.
	ViolationInference = core.ViolationInference
)

// Trigger modes for mutual temporal consistency.
const (
	// TriggerNone leaves related objects on their own schedules.
	TriggerNone = core.TriggerNone
	// TriggerAll polls all related objects on any detected update.
	TriggerAll = core.TriggerAll
	// TriggerFaster polls only related objects changing at least as
	// fast (the paper's heuristic).
	TriggerFaster = core.TriggerFaster
)

// NewLIMD returns the paper's adaptive Δt-consistency policy.
func NewLIMD(cfg LIMDConfig) *LIMD { return core.NewLIMD(cfg) }

// NewAdaptiveTTR returns the paper's adaptive Δv-consistency policy.
func NewAdaptiveTTR(cfg AdaptiveTTRConfig) *AdaptiveTTR { return core.NewAdaptiveTTR(cfg) }

// NewPeriodic returns the poll-every-period baseline policy.
func NewPeriodic(period time.Duration) *Periodic { return core.NewPeriodic(period) }

// NewMutualTimeController returns a controller for one group of related
// objects.
func NewMutualTimeController(cfg MutualTimeConfig) *MutualTimeController {
	return core.NewMutualTimeController(cfg)
}

// NewMutualValueAdaptive returns the virtual-object pair policy.
func NewMutualValueAdaptive(cfg MutualValueConfig) *MutualValueAdaptive {
	return core.NewMutualValueAdaptive(cfg)
}

// NewMutualValuePartitioned returns the partitioned pair controller.
func NewMutualValuePartitioned(cfg MutualValueConfig) *MutualValuePartitioned {
	return core.NewMutualValuePartitioned(cfg)
}

// Workload types.
type (
	// Trace is an object's timestamped update history.
	Trace = trace.Trace
	// Update is one modification in a trace.
	Update = trace.Update
	// NewsConfig parameterizes the synthetic news-trace generator.
	NewsConfig = tracegen.NewsConfig
	// StockConfig parameterizes the synthetic stock-trace generator.
	StockConfig = tracegen.StockConfig
)

// GenerateNews generates a diurnal news-update trace.
func GenerateNews(cfg NewsConfig) (*Trace, error) { return tracegen.News(cfg) }

// GenerateStock generates a bounded random-walk stock trace.
func GenerateStock(cfg StockConfig) (*Trace, error) { return tracegen.Stock(cfg) }

// Preset traces matched to the paper's Tables 2 and 3.
func TraceCNNFN() *Trace      { return tracegen.CNNFN() }
func TraceNYTAP() *Trace      { return tracegen.NYTAP() }
func TraceNYTReuters() *Trace { return tracegen.NYTReuters() }
func TraceGuardian() *Trace   { return tracegen.Guardian() }
func TraceATT() *Trace        { return tracegen.ATT() }
func TraceYahoo() *Trace      { return tracegen.Yahoo() }

// TraceByName returns a preset trace by its name (cnn-fn, nyt-ap,
// nyt-reuters, guardian, att, yahoo).
func TraceByName(name string) (*Trace, error) { return tracegen.ByName(name) }

// ReadTrace parses a trace file written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// Scenario runners (simulation + evaluation in one call).
type (
	// TemporalScenario is an individual Δt-consistency simulation.
	TemporalScenario = experiments.TemporalScenario
	// TemporalRunResult couples the report with the refresh log.
	TemporalRunResult = experiments.TemporalRunResult
	// MutualTemporalScenario is a two-object M_t simulation.
	MutualTemporalScenario = experiments.MutualTemporalScenario
	// MutualTemporalRunResult couples the pair report with the logs.
	MutualTemporalRunResult = experiments.MutualTemporalRunResult
	// MutualValueScenario is a two-object M_v simulation.
	MutualValueScenario = experiments.MutualValueScenario
	// MutualValueRunResult couples the pair report with the logs.
	MutualValueRunResult = experiments.MutualValueRunResult
	// ValueApproach selects adaptive vs partitioned for M_v.
	ValueApproach = experiments.ValueApproach
	// TemporalReport carries Δt fidelity metrics (Eq. 13/14).
	TemporalReport = metrics.TemporalReport
	// MutualTemporalReport carries M_t fidelity metrics.
	MutualTemporalReport = metrics.MutualTemporalReport
	// MutualValueReport carries M_v fidelity metrics.
	MutualValueReport = metrics.MutualValueReport
)

// Value-domain approaches.
const (
	// ApproachAdaptive is the virtual-object technique (Eq. 11–12).
	ApproachAdaptive = experiments.ApproachAdaptive
	// ApproachPartitioned splits δ across the pair.
	ApproachPartitioned = experiments.ApproachPartitioned
)

// RunTemporal simulates one object under a Δt policy and evaluates it.
func RunTemporal(sc TemporalScenario) (TemporalRunResult, error) {
	return experiments.RunTemporal(sc)
}

// RunMutualTemporal simulates a related pair under LIMD plus a mutual
// trigger mode and evaluates it.
func RunMutualTemporal(sc MutualTemporalScenario) (MutualTemporalRunResult, error) {
	return experiments.RunMutualTemporal(sc)
}

// RunMutualValue simulates a value pair under the chosen M_v approach and
// evaluates it.
func RunMutualValue(sc MutualValueScenario) (MutualValueRunResult, error) {
	return experiments.RunMutualValue(sc)
}

// Related-object discovery (§5.2).
type (
	// DependencyGraph records which objects are related; its connected
	// components are consistency groups.
	DependencyGraph = depgraph.Graph
)

// NewDependencyGraph returns an empty dependency graph.
func NewDependencyGraph() *DependencyGraph { return depgraph.New() }

// ExtractEmbedded scans HTML for embedded object URLs (syntactic
// relationships).
func ExtractEmbedded(html string) []string { return depgraph.ExtractEmbedded(html) }

// HTTP extension types (§5.1).
type (
	// Tolerances carries Δ/group/δ as cache-control directives.
	Tolerances = httpx.Tolerances
)

// Live HTTP components (the paper's future work, in Go).
type (
	// WebOrigin is a live HTTP origin server with IMS validation and
	// the proposed protocol extensions.
	WebOrigin = webserver.Origin
	// WebOriginOption customizes a WebOrigin.
	WebOriginOption = webserver.Option
	// WebProxy is a live caching proxy running the core policies.
	WebProxy = webproxy.Proxy
	// WebProxyConfig parameterizes a WebProxy.
	WebProxyConfig = webproxy.Config
	// WebProxyEviction selects the proxy's replacement policy.
	WebProxyEviction = webproxy.EvictionPolicy
	// WebProxyCacheStats aggregates proxy-wide cache counters.
	WebProxyCacheStats = webproxy.CacheStats
	// WebProxyObjectStats reports cache activity for one object.
	WebProxyObjectStats = webproxy.Stats
	// WebProxyPushStats reports the invalidation channel's state.
	WebProxyPushStats = webproxy.PushStats
	// WebProxyRelayStats reports the downstream event relay's state
	// (WebProxyConfig.RelayEvents): a relay-enabled proxy serves its own
	// invalidation stream so child proxies subscribe to it exactly as it
	// subscribes to its origin.
	WebProxyRelayStats = webproxy.RelayStats
	// WebProxyDiskStats reports the persistent disk tier's state
	// (WebProxyConfig.DiskDir): restarts rehydrate the cache warm and
	// replacement victims demote to disk instead of being lost.
	WebProxyDiskStats = webproxy.DiskStats
	// PushEvent is one frame of the origin-driven invalidation stream.
	PushEvent = push.Event
	// PushHubStats is an event hub's backpressure snapshot: replay-ring
	// occupancy and per-subscriber lag, visible on both the origin
	// (WebOrigin.PushHubStats) and every relay (WebProxy.RelayStats).
	PushHubStats = push.HubStats
	// WebProxyUpstreamStatus reports a proxy's upstream reachability:
	// failed-fetch count, last error detail, and last success instant.
	// The detail lives here (and on /healthz) — never on a client-facing
	// 502 body.
	WebProxyUpstreamStatus = webproxy.UpstreamStatus
	// WebOriginStats aggregates an origin's serving counters and its
	// event hub's state.
	WebOriginStats = webserver.OriginStats
)

// Operational surface: /metrics (Prometheus text format), /healthz, and
// a token-gated admin API over any combination of a WebProxy and a
// WebOrigin. Mount an OpsHandler on its own listener; see
// cmd/mcproxy's -ops-listen flag and examples/edgefleet.
type (
	// OpsHandler serves /metrics, /healthz, and /admin/*.
	OpsHandler = ops.Handler
	// OpsConfig parameterizes an OpsHandler.
	OpsConfig = ops.Config
	// OpsHealth is the /healthz response body.
	OpsHealth = ops.Health
	// OpsScrape is a parsed Prometheus exposition (see ParseOpsExposition).
	OpsScrape = ops.Scrape
	// OpsLabel is one label pair on a scraped series.
	OpsLabel = ops.Label
)

// NewOpsHandler returns the operational-surface handler for a node. At
// least one of cfg.Proxy and cfg.Origin must be set.
func NewOpsHandler(cfg OpsConfig) (*OpsHandler, error) { return ops.NewHandler(cfg) }

// ParseOpsExposition parses and strictly validates a Prometheus text
// exposition (such as an OpsHandler /metrics response body): every
// sample must be typed, series must be unique, label syntax must be
// legal. Monitoring integration tests and cmd/opscheck are built on it.
func ParseOpsExposition(r io.Reader) (*OpsScrape, error) { return ops.ParseExposition(r) }

// Replacement policies for the live proxy.
const (
	// EvictClock is group-aware CLOCK (second-chance) replacement.
	EvictClock = webproxy.EvictClock
	// EvictRefuse refuses admission at capacity (legacy behavior).
	EvictRefuse = webproxy.EvictRefuse
)

// NewWebOrigin returns a live HTTP origin server.
func NewWebOrigin(opts ...WebOriginOption) *WebOrigin { return webserver.NewOrigin(opts...) }

// WithHistoryExtension enables the X-Modification-History header on a
// WebOrigin.
func WithHistoryExtension(enabled bool) WebOriginOption {
	return webserver.WithHistoryExtension(enabled)
}

// WithPushEvents enables the origin-driven invalidation stream on a
// WebOrigin at the given path ("" selects /events). Point
// WebProxyConfig.PushURL at it for hybrid push–pull consistency.
func WithPushEvents(path string) WebOriginOption {
	return webserver.WithPushEvents(path)
}

// WithPushHeartbeat sets the invalidation stream's keepalive interval
// (implies WithPushEvents at the default path).
func WithPushHeartbeat(interval time.Duration) WebOriginOption {
	return webserver.WithPushHeartbeat(interval)
}

// WithPushValues makes the origin's update events carry the object's
// new body (value-carrying push, wire protocol v2): a proxy running
// with WebProxyConfig.PushValues installs the pushed body directly —
// digest-verified — with no confirmation poll. cap bounds the carried
// body size in bytes (<= 0 selects the default cap); larger bodies
// degrade to invalidation-only events. Implies WithPushEvents at the
// default path.
func WithPushValues(cap int) WebOriginOption {
	return webserver.WithPushValues(cap)
}

// NewWebProxy returns a live caching proxy; call Start to launch its
// refresher and Close to stop it.
func NewWebProxy(cfg WebProxyConfig) (*WebProxy, error) { return webproxy.New(cfg) }
