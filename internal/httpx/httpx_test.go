package httpx

import (
	"net/http"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistoryRoundTrip(t *testing.T) {
	times := []time.Time{
		time.Date(2001, 8, 7, 13, 4, 0, 0, time.UTC),
		time.Date(2001, 8, 7, 13, 30, 12, 0, time.UTC),
		time.Date(2001, 8, 7, 14, 2, 59, 0, time.UTC),
	}
	got, err := ParseHistory(FormatHistory(times))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("len = %d, want %d", len(got), len(times))
	}
	for i := range times {
		if !got[i].Equal(times[i]) {
			t.Errorf("time %d = %v, want %v", i, got[i], times[i])
		}
	}
}

func TestHistoryEmpty(t *testing.T) {
	if FormatHistory(nil) != "" {
		t.Error("empty history must format to empty string")
	}
	got, err := ParseHistory("")
	if err != nil || got != nil {
		t.Errorf("ParseHistory(\"\") = %v, %v", got, err)
	}
}

func TestHistoryTruncation(t *testing.T) {
	base := time.Date(2001, 8, 7, 0, 0, 0, 0, time.UTC)
	var times []time.Time
	for i := 0; i < MaxHistoryEntries+10; i++ {
		times = append(times, base.Add(time.Duration(i)*time.Minute))
	}
	got, err := ParseHistory(FormatHistory(times))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxHistoryEntries {
		t.Fatalf("len = %d, want %d", len(got), MaxHistoryEntries)
	}
	// The newest entries survive.
	if !got[len(got)-1].Equal(times[len(times)-1]) {
		t.Error("truncation must keep the most recent entries")
	}
}

func TestParseHistoryErrors(t *testing.T) {
	for _, bad := range []string{
		"not a date",
		"Mon, 99 Jan 2001 00:00:00 GMT",
		"Tue, 07 Aug 2001 13:04:00 GMT, garbage",
	} {
		if _, err := ParseHistory(bad); err == nil {
			t.Errorf("ParseHistory(%q) must fail", bad)
		}
	}
}

func TestHistoryHeaderHelpers(t *testing.T) {
	h := http.Header{}
	times := []time.Time{time.Date(2001, 8, 7, 13, 4, 0, 0, time.UTC)}
	SetHistory(h, times)
	got, err := HistoryFrom(h)
	if err != nil || len(got) != 1 || !got[0].Equal(times[0]) {
		t.Errorf("HistoryFrom = %v, %v", got, err)
	}
	SetHistory(h, nil)
	if h.Get(HeaderModificationHistory) != "" {
		t.Error("SetHistory(nil) must remove the header")
	}
}

func TestPropertyHistoryRoundTrip(t *testing.T) {
	f := func(offsets []uint32) bool {
		base := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
		var times []time.Time
		for _, off := range offsets {
			times = append(times, base.Add(time.Duration(off)*time.Second))
		}
		if len(times) > MaxHistoryEntries {
			times = times[len(times)-MaxHistoryEntries:]
		}
		got, err := ParseHistory(FormatHistory(times))
		if err != nil || len(got) != len(times) {
			return false
		}
		for i := range times {
			if !got[i].Equal(times[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTolerancesFormat(t *testing.T) {
	tol := Tolerances{
		Delta:      30 * time.Second,
		Group:      "news-front",
		GroupDelta: time.Minute,
	}
	got := tol.FormatCacheControl()
	want := "x-cc-delta=30, x-mc-group=news-front, x-mc-delta=60"
	if got != want {
		t.Errorf("FormatCacheControl = %q, want %q", got, want)
	}
}

func TestTolerancesRoundTrip(t *testing.T) {
	tol := Tolerances{Delta: 5 * time.Second, Group: "g", GroupDelta: 10 * time.Second}
	got, err := ParseCacheControl(tol.FormatCacheControl())
	if err != nil {
		t.Fatal(err)
	}
	if got != tol {
		t.Errorf("round trip = %+v, want %+v", got, tol)
	}
}

func TestParseCacheControlIgnoresStandardDirectives(t *testing.T) {
	got, err := ParseCacheControl(`max-age=300, no-transform, x-cc-delta=15, private="set-cookie"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta != 15*time.Second || got.Group != "" || got.GroupDelta != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestParseCacheControlQuotedGroup(t *testing.T) {
	got, err := ParseCacheControl(`x-mc-group="breaking news"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != "breaking news" {
		t.Errorf("Group = %q", got.Group)
	}
}

func TestParseCacheControlErrors(t *testing.T) {
	for _, bad := range []string{
		"x-cc-delta",      // missing value
		"x-cc-delta=abc",  // non-numeric
		"x-cc-delta=-5",   // negative
		"x-mc-group=",     // empty group
		"x-mc-delta=12.5", // non-integer
	} {
		if _, err := ParseCacheControl(bad); err == nil {
			t.Errorf("ParseCacheControl(%q) must fail", bad)
		}
	}
}

func TestParseCacheControlEmpty(t *testing.T) {
	got, err := ParseCacheControl("")
	if err != nil || !got.IsZero() {
		t.Errorf("empty parse = %+v, %v", got, err)
	}
}

func TestSetCacheControl(t *testing.T) {
	h := http.Header{}
	SetCacheControl(h, Tolerances{Delta: 30 * time.Second})
	if got := h.Get("Cache-Control"); got != "x-cc-delta=30" {
		t.Errorf("Cache-Control = %q", got)
	}
	// Appends to an existing value.
	h = http.Header{}
	h.Set("Cache-Control", "max-age=60")
	SetCacheControl(h, Tolerances{Group: "g"})
	got := h.Get("Cache-Control")
	if !strings.HasPrefix(got, "max-age=60, ") || !strings.Contains(got, "x-mc-group=g") {
		t.Errorf("Cache-Control = %q", got)
	}
	// No-op for zero tolerances.
	h = http.Header{}
	SetCacheControl(h, Tolerances{})
	if h.Get("Cache-Control") != "" {
		t.Error("zero tolerances must not set a header")
	}
}

func TestTolerancesFrom(t *testing.T) {
	h := http.Header{}
	h.Set("Cache-Control", "x-cc-delta=7, x-mc-group=sports, x-mc-delta=14")
	got, err := TolerancesFrom(h)
	if err != nil {
		t.Fatal(err)
	}
	want := Tolerances{Delta: 7 * time.Second, Group: "sports", GroupDelta: 14 * time.Second}
	if got != want {
		t.Errorf("TolerancesFrom = %+v, want %+v", got, want)
	}
}

func TestValueDeltaDirective(t *testing.T) {
	tol := Tolerances{ValueDelta: 0.25}
	got := tol.FormatCacheControl()
	if got != "x-cc-vdelta=250" {
		t.Errorf("FormatCacheControl = %q", got)
	}
	back, err := ParseCacheControl(got)
	if err != nil {
		t.Fatal(err)
	}
	if back.ValueDelta != 0.25 {
		t.Errorf("ValueDelta = %v", back.ValueDelta)
	}
	// Combined with other directives.
	tol = Tolerances{Delta: 30 * time.Second, ValueDelta: 1.5, Group: "g"}
	back, err = ParseCacheControl(tol.FormatCacheControl())
	if err != nil {
		t.Fatal(err)
	}
	if back != tol {
		t.Errorf("round trip = %+v, want %+v", back, tol)
	}
}

func TestValueDeltaDirectiveErrors(t *testing.T) {
	for _, bad := range []string{"x-cc-vdelta", "x-cc-vdelta=abc", "x-cc-vdelta=-3"} {
		if _, err := ParseCacheControl(bad); err == nil {
			t.Errorf("ParseCacheControl(%q) must fail", bad)
		}
	}
}
