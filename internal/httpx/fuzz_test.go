package httpx

import "testing"

// Fuzz targets: the parsers face attacker-controlled header bytes in the
// live proxy, so they must never panic, whatever the input.

func FuzzParseHistory(f *testing.F) {
	f.Add("")
	f.Add("Tue, 07 Aug 2001 13:04:00 GMT")
	f.Add("Tue, 07 Aug 2001 13:04:00 GMT, Wed, 08 Aug 2001 09:00:00 GMT")
	f.Add("GMT,GMT,GMT")
	f.Add("garbage GMT trailing")
	f.Fuzz(func(t *testing.T, value string) {
		times, err := ParseHistory(value)
		if err == nil {
			// Whatever parses must re-serialize and re-parse cleanly.
			back, err2 := ParseHistory(FormatHistory(times))
			if err2 != nil {
				t.Fatalf("round trip failed: %v", err2)
			}
			if len(back) != len(times) {
				t.Fatalf("round trip length %d != %d", len(back), len(times))
			}
		}
	})
}

func FuzzParseCacheControl(f *testing.F) {
	f.Add("")
	f.Add("max-age=300, x-cc-delta=15")
	f.Add(`x-mc-group="a,b", x-mc-delta=9`)
	f.Add("x-cc-vdelta=250,,,=,x=,=y")
	f.Fuzz(func(t *testing.T, value string) {
		tol, err := ParseCacheControl(value)
		if err == nil && !tol.IsZero() {
			if _, err2 := ParseCacheControl(tol.FormatCacheControl()); err2 != nil {
				t.Fatalf("round trip failed: %v", err2)
			}
		}
	})
}
