// Package httpx defines the paper's proposed HTTP/1.1 extensions (§5.1)
// with a concrete wire syntax, used end-to-end by the live origin server
// and caching proxy in this repository:
//
//   - X-Modification-History: a comma-separated list of the object's most
//     recent modification times (HTTP-date format, oldest first). It lets
//     a proxy detect violations that plain Last-Modified conceals when an
//     object changed several times between polls (paper Fig. 1(b)).
//
//   - Cache-Control extension directives carrying the consistency
//     tolerances a client requests:
//     x-cc-delta=<seconds>       Δ for individual consistency
//     x-mc-group=<token>         the related-object group name
//     x-mc-delta=<seconds>       δ for mutual consistency within the group
//
// The paper proposes these extensions without fixing a syntax (deferring
// to its technical report); this package picks an explicit, parseable
// encoding via HTTP's user-defined header and cache-control extension
// mechanisms.
package httpx

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Header and directive names.
const (
	// HeaderModificationHistory carries recent modification times.
	HeaderModificationHistory = "X-Modification-History"
	// DirectiveDelta is the cache-control extension for Δ (seconds).
	DirectiveDelta = "x-cc-delta"
	// DirectiveValueDelta is the cache-control extension for the Δv
	// value-domain tolerance, in thousandths of a value unit (e.g.
	// x-cc-vdelta=250 means Δv = 0.25).
	DirectiveValueDelta = "x-cc-vdelta"
	// DirectiveGroup is the cache-control extension naming the
	// related-object group.
	DirectiveGroup = "x-mc-group"
	// DirectiveGroupDelta is the cache-control extension for δ
	// (seconds).
	DirectiveGroupDelta = "x-mc-delta"
)

// MaxHistoryEntries bounds the modification history a server emits; the
// proxy only ever needs the updates since the previous poll, and an
// unbounded header would grow with object churn.
const MaxHistoryEntries = 32

// FormatHistory renders modification times as the header value, oldest
// first. Only the most recent MaxHistoryEntries survive. Times are
// rendered in the canonical HTTP date format (GMT, second resolution).
func FormatHistory(times []time.Time) string {
	if len(times) > MaxHistoryEntries {
		times = times[len(times)-MaxHistoryEntries:]
	}
	parts := make([]string, len(times))
	for i, t := range times {
		parts[i] = t.UTC().Format(http.TimeFormat)
	}
	return strings.Join(parts, ", ")
}

// ParseHistory parses a header value produced by FormatHistory. It
// returns the times oldest first. An empty value yields nil. Malformed
// entries produce an error identifying the offending element.
func ParseHistory(value string) ([]time.Time, error) {
	value = strings.TrimSpace(value)
	if value == "" {
		return nil, nil
	}
	// HTTP dates contain commas ("Mon, 02 Jan ..."), so entries cannot
	// be split on bare commas. Split on the comma that follows "GMT".
	var out []time.Time
	rest := value
	for rest != "" {
		idx := strings.Index(rest, "GMT")
		if idx < 0 {
			return nil, fmt.Errorf("httpx: malformed history element %q", rest)
		}
		elem := strings.TrimSpace(rest[:idx+3])
		rest = strings.TrimLeft(rest[idx+3:], " ,")
		t, err := http.ParseTime(elem)
		if err != nil {
			return nil, fmt.Errorf("httpx: bad history time %q: %w", elem, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// SetHistory writes the modification history header on h. An empty list
// removes the header.
func SetHistory(h http.Header, times []time.Time) {
	if len(times) == 0 {
		h.Del(HeaderModificationHistory)
		return
	}
	h.Set(HeaderModificationHistory, FormatHistory(times))
}

// HistoryFrom reads and parses the modification history header from h.
func HistoryFrom(h http.Header) ([]time.Time, error) {
	return ParseHistory(h.Get(HeaderModificationHistory))
}

// Tolerances carries the consistency requirements a client attaches to a
// request (or a server advertises for an object).
type Tolerances struct {
	// Delta is the Δ tolerance for individual consistency; zero means
	// unspecified.
	Delta time.Duration
	// ValueDelta is the Δv value-domain tolerance (the object's body is
	// a numeric value, e.g. a stock quote); zero means temporal
	// consistency.
	ValueDelta float64
	// Group names the related-object group; empty means ungrouped.
	Group string
	// GroupDelta is the δ tolerance for mutual consistency within
	// Group; zero means unspecified.
	GroupDelta time.Duration
}

// IsZero reports whether no tolerance information is present.
func (t Tolerances) IsZero() bool {
	return t.Delta == 0 && t.ValueDelta == 0 && t.Group == "" && t.GroupDelta == 0
}

// FormatCacheControl renders the tolerances as cache-control directives,
// e.g. "x-cc-delta=30, x-mc-group=news, x-mc-delta=60".
func (t Tolerances) FormatCacheControl() string {
	var parts []string
	if t.Delta > 0 {
		parts = append(parts, fmt.Sprintf("%s=%d", DirectiveDelta, int64(t.Delta.Seconds())))
	}
	if t.ValueDelta > 0 {
		parts = append(parts, fmt.Sprintf("%s=%d", DirectiveValueDelta, int64(t.ValueDelta*1000+0.5)))
	}
	if t.Group != "" {
		parts = append(parts, fmt.Sprintf("%s=%s", DirectiveGroup, t.Group))
	}
	if t.GroupDelta > 0 {
		parts = append(parts, fmt.Sprintf("%s=%d", DirectiveGroupDelta, int64(t.GroupDelta.Seconds())))
	}
	return strings.Join(parts, ", ")
}

// ParseCacheControl extracts the extension tolerances from a
// cache-control header value, ignoring unknown directives (per HTTP/1.1,
// unrecognized cache-control extensions must be ignored).
func ParseCacheControl(value string) (Tolerances, error) {
	var t Tolerances
	for _, part := range strings.Split(value, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.Trim(strings.TrimSpace(val), `"`)
		switch key {
		case DirectiveDelta, DirectiveGroupDelta:
			if !hasVal {
				return t, fmt.Errorf("httpx: directive %s requires a value", key)
			}
			secs, err := strconv.ParseInt(val, 10, 64)
			if err != nil || secs < 0 {
				return t, fmt.Errorf("httpx: bad %s value %q", key, val)
			}
			d := time.Duration(secs) * time.Second
			if key == DirectiveDelta {
				t.Delta = d
			} else {
				t.GroupDelta = d
			}
		case DirectiveValueDelta:
			if !hasVal {
				return t, fmt.Errorf("httpx: directive %s requires a value", key)
			}
			milli, err := strconv.ParseInt(val, 10, 64)
			if err != nil || milli < 0 {
				return t, fmt.Errorf("httpx: bad %s value %q", key, val)
			}
			t.ValueDelta = float64(milli) / 1000
		case DirectiveGroup:
			if !hasVal || val == "" {
				return t, fmt.Errorf("httpx: directive %s requires a value", key)
			}
			t.Group = val
		}
	}
	return t, nil
}

// SetCacheControl appends the tolerance directives to any existing
// cache-control value on h.
func SetCacheControl(h http.Header, t Tolerances) {
	directives := t.FormatCacheControl()
	if directives == "" {
		return
	}
	if existing := h.Get("Cache-Control"); existing != "" {
		h.Set("Cache-Control", existing+", "+directives)
	} else {
		h.Set("Cache-Control", directives)
	}
}

// TolerancesFrom parses the tolerance directives from h's cache-control
// header.
func TolerancesFrom(h http.Header) (Tolerances, error) {
	return ParseCacheControl(h.Get("Cache-Control"))
}
