package experiments

import (
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

// randomNewsPair generates a workload pair from a seed, with differing
// rates and phases.
func randomNewsPair(t *testing.T, seed int64) (*trace.Trace, *trace.Trace) {
	t.Helper()
	trA, err := tracegen.News(tracegen.NewsConfig{
		Name: "a", Seed: seed, Duration: 30 * time.Hour,
		Updates: 120 + int(seed%7)*30, StartHour: float64(seed % 24),
		ProfileJitter: 0.4, BurstFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	trB, err := tracegen.News(tracegen.NewsConfig{
		Name: "b", Seed: seed + 1000, Duration: 30 * time.Hour,
		Updates: 60 + int(seed%5)*40, StartHour: float64((seed + 7) % 24),
		ProfileJitter: 0.4, BurstFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trA, trB
}

// TestPropertyTriggeredFidelityAlwaysOne is the paper's "by definition"
// claim as an executable invariant: with triggered polls, the mutual
// sync fidelity is exactly 1 on any workload and any δ.
func TestPropertyTriggeredFidelityAlwaysOne(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		trA, trB := randomNewsPair(t, seed)
		for _, mdelta := range []time.Duration{time.Minute, 5 * time.Minute, 20 * time.Minute} {
			run, err := RunMutualTemporal(MutualTemporalScenario{
				TraceA: trA, TraceB: trB,
				DeltaIndividual: 10 * time.Minute,
				DeltaMutual:     mdelta,
				Mode:            core.TriggerAll,
			})
			if err != nil {
				t.Fatal(err)
			}
			if run.Report.FidelityBySync != 1 {
				t.Errorf("seed=%d δ=%v: triggered fidelity = %v, want exactly 1",
					seed, mdelta, run.Report.FidelityBySync)
			}
		}
	}
}

// TestPropertyHeuristicBetweenBaselineAndTriggered: across random
// workloads, the heuristic's fidelity must never fall below the
// baseline's.
func TestPropertyHeuristicBetweenBaselineAndTriggered(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		trA, trB := randomNewsPair(t, seed)
		fid := map[core.TriggerMode]float64{}
		for _, mode := range []core.TriggerMode{core.TriggerNone, core.TriggerFaster} {
			run, err := RunMutualTemporal(MutualTemporalScenario{
				TraceA: trA, TraceB: trB,
				DeltaIndividual: 10 * time.Minute,
				DeltaMutual:     5 * time.Minute,
				Mode:            mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			fid[mode] = run.Report.FidelityBySync
		}
		if fid[core.TriggerFaster] < fid[core.TriggerNone]-1e-9 {
			t.Errorf("seed=%d: heuristic %v below baseline %v",
				seed, fid[core.TriggerFaster], fid[core.TriggerNone])
		}
	}
}

// TestPropertyBaselinePeriodicAlwaysPerfect: the poll-every-Δ baseline
// must report fidelity 1 on any workload (its defining property).
func TestPropertyBaselinePeriodicAlwaysPerfect(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tr, _ := randomNewsPair(t, seed)
		for _, delta := range []time.Duration{2 * time.Minute, 15 * time.Minute} {
			delta := delta
			run, err := RunTemporal(TemporalScenario{
				Trace: tr, Delta: delta,
				Policy: func() core.Policy { return core.NewPeriodic(delta) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if run.Report.Violations != 0 || run.Report.OutOfSync != 0 {
				t.Errorf("seed=%d Δ=%v: baseline violated: %+v", seed, delta, run.Report)
			}
		}
	}
}

// TestPropertyPartitionedMutualFromIndividual checks the paper's
// triangle-inequality reduction end to end on random stock pairs: under
// the partitioned approach, whenever both objects individually satisfy
// their δ shares at poll instants, the mutual condition holds. Because
// per-object compliance between polls is only statistical, the test
// verifies the implication, not perfection: the mutual out-of-sync time
// is bounded by the sum of the members' individual out-of-sync times.
func TestPropertyPartitionedMutualBounded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		trA, err := tracegen.Stock(tracegen.StockConfig{
			Name: "a", Seed: seed, Duration: 2 * time.Hour, Ticks: 800,
			Initial: 100, Min: 95, Max: 105, Volatility: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		trB, err := tracegen.Stock(tracegen.StockConfig{
			Name: "b", Seed: seed + 99, Duration: 2 * time.Hour, Ticks: 300,
			Initial: 50, Min: 48, Max: 52, Volatility: 0.04,
		})
		if err != nil {
			t.Fatal(err)
		}
		const delta = 0.8
		run, err := RunMutualValue(MutualValueScenario{
			TraceA: trA, TraceB: trB, DeltaMutual: delta,
			Approach: ApproachPartitioned,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Individual out-of-sync times at the (dynamic) share level are
		// not directly observable post-hoc, so bound with the whole δ:
		// a mutual violation requires at least one member to be out by
		// its share, hence mutual out-of-sync ≤ Σ individual(δ/2… δ).
		// Conservatively: each member evaluated at the full δ must be
		// in-sync almost always, and the mutual metric must not exceed
		// the sum of per-member out-of-sync at δ/2 by more than noise.
		horizon := 2 * time.Hour
		indA := metrics.EvaluateValue(trA, run.LogA, delta/2, horizon)
		indB := metrics.EvaluateValue(trB, run.LogB, delta/2, horizon)
		mutual := run.Report.OutOfSync
		bound := indA.OutOfSync + indB.OutOfSync
		if mutual > bound {
			t.Errorf("seed=%d: mutual out-of-sync %v exceeds individual bound %v",
				seed, mutual, bound)
		}
	}
}

// TestPropertyPollCountsMonotoneInDelta: for LIMD, a looser Δ must never
// require more polls (TTRmin = Δ rises, everything else adapts upward).
func TestPropertyPollCountsMonotoneInDelta(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr, _ := randomNewsPair(t, seed)
		prev := 1 << 30
		for _, delta := range []time.Duration{
			time.Minute, 5 * time.Minute, 15 * time.Minute, 45 * time.Minute,
		} {
			delta := delta
			run, err := RunTemporal(TemporalScenario{
				Trace: tr, Delta: delta,
				Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if run.Report.Polls > prev {
				t.Errorf("seed=%d: polls rose from %d to %d at Δ=%v",
					seed, prev, run.Report.Polls, delta)
			}
			prev = run.Report.Polls
		}
	}
}
