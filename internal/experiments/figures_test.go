package experiments

import (
	"fmt"
	"strings"
	"testing"

	"broadway/internal/tracegen"
)

// These tests assert the *shape* of each reproduced figure against the
// paper's qualitative claims: who wins, in which direction curves move,
// and where the crossovers lie. Absolute values are workload-dependent
// and are recorded in EXPERIMENTS.md instead.

func runFigure(t *testing.T, f func() (*Result, error)) *Result {
	t.Helper()
	res, err := f()
	if err != nil {
		t.Fatalf("figure: %v", err)
	}
	for _, c := range res.Charts {
		if err := c.Validate(); err != nil {
			t.Fatalf("chart %q: %v", c.Title, err)
		}
	}
	return res
}

func seriesByName(t *testing.T, res *Result, chartIdx int, name string) []float64 {
	t.Helper()
	if chartIdx >= len(res.Charts) {
		t.Fatalf("chart %d missing", chartIdx)
	}
	for _, s := range res.Charts[chartIdx].Series {
		if strings.Contains(s.Name, name) {
			return s.Y
		}
	}
	t.Fatalf("series %q not found in chart %d", name, chartIdx)
	return nil
}

func TestFigure3Shape(t *testing.T) {
	res := runFigure(t, Figure3)

	limdPolls := seriesByName(t, res, 0, "LIMD")
	basePolls := seriesByName(t, res, 0, "Baseline")
	limdF13 := seriesByName(t, res, 1, "LIMD")
	baseF13 := seriesByName(t, res, 1, "Baseline")
	limdF14 := seriesByName(t, res, 2, "LIMD")

	// Claim 1: at tight Δ, LIMD polls far less than the baseline (paper:
	// ~6x at Δ=1m) at a bounded fidelity cost (paper: ~20% loss).
	if ratio := basePolls[0] / limdPolls[0]; ratio < 3 {
		t.Errorf("poll reduction at Δ=1m = %.1fx, want ≥ 3x", ratio)
	}
	if limdF13[0] < 0.7 || limdF13[0] >= 1 {
		t.Errorf("LIMD fidelity at Δ=1m = %.3f, want lossy but usable", limdF13[0])
	}

	// Claim 2: the baseline has perfect fidelity by definition.
	for i, f := range baseF13 {
		if f != 1 {
			t.Errorf("baseline fidelity[%d] = %v, want 1", i, f)
		}
	}

	// Claim 3: at loose Δ, LIMD converges to the baseline (poll counts
	// comparable, fidelity → 1).
	last := len(limdPolls) - 1
	if limdPolls[last] > basePolls[last]*1.5 {
		t.Errorf("LIMD polls at Δ=60m = %v vs baseline %v, want comparable",
			limdPolls[last], basePolls[last])
	}
	if limdF13[last] < 0.95 {
		t.Errorf("LIMD fidelity at Δ=60m = %.3f, want ≈1", limdF13[last])
	}

	// Claim 4: both fidelity measures tell the same story (paper: "both
	// measures demonstrate a similar behavior").
	for i := range limdF13 {
		if diff := limdF13[i] - limdF14[i]; diff > 0.25 || diff < -0.25 {
			t.Errorf("fidelity measures diverge at point %d: f13=%.3f f14=%.3f",
				i, limdF13[i], limdF14[i])
		}
	}

	// Claim 5: LIMD polls decrease monotonically with Δ.
	for i := 1; i < len(limdPolls); i++ {
		if limdPolls[i] > limdPolls[i-1] {
			t.Errorf("LIMD polls increased from Δ point %d to %d: %v → %v",
				i-1, i, limdPolls[i-1], limdPolls[i])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res := runFigure(t, Figure4)

	updates := seriesByName(t, res, 0, "updates")
	ttrs := seriesByName(t, res, 1, "TTR")

	// Claim 1: the workload has quiet windows (overnight).
	minUpd := updates[0]
	for _, u := range updates {
		if u < minUpd {
			minUpd = u
		}
	}
	if minUpd > 1 {
		t.Errorf("quietest 2h window has %v updates, want ≈0", minUpd)
	}

	// Claim 2: the TTR spans the full adaptive range: it reaches TTRmax
	// (60m) during quiet periods and returns to TTRmin (=Δ=10m).
	maxTTR, minTTR := ttrs[0], ttrs[0]
	for _, v := range ttrs {
		if v > maxTTR {
			maxTTR = v
		}
		if v < minTTR {
			minTTR = v
		}
	}
	if maxTTR < 59 {
		t.Errorf("max TTR = %.1fm, want to reach TTRmax 60m", maxTTR)
	}
	if minTTR > 10.5 {
		t.Errorf("min TTR = %.1fm, want to return to TTRmin 10m", minTTR)
	}

	// Claim 3: the sawtooth repeats — the TTR climbs high (≥50m) on both
	// nights the trace spans and collapses in between.
	peaks := 0
	inPeak := false
	for _, v := range ttrs {
		if v >= 50 && !inPeak {
			peaks++
			inPeak = true
		} else if v < 30 {
			inPeak = false
		}
	}
	if peaks < 2 {
		t.Errorf("TTR peaks = %d, want ≥ 2 (one per night)", peaks)
	}
}

func TestFigure5Shape(t *testing.T) {
	res := runFigure(t, Figure5)

	basePolls := seriesByName(t, res, 0, "Baseline")
	trigPolls := seriesByName(t, res, 0, "triggered")
	heurPolls := seriesByName(t, res, 0, "heuristic")
	baseF := seriesByName(t, res, 1, "Baseline")
	trigF := seriesByName(t, res, 1, "triggered")
	heurF := seriesByName(t, res, 1, "heuristic")

	var trigTotal, heurTotal float64
	for i := range basePolls {
		trigTotal += trigPolls[i]
		heurTotal += heurPolls[i]
		// Claim 1: triggered ≥ heuristic ≥ baseline in polls (the
		// heuristic triggers selectively). Per-point comparisons allow
		// a few polls of slack: extra refreshes perturb the LIMD
		// trajectories, so the modes' schedules are not nested
		// poll-for-poll.
		if trigPolls[i] < heurPolls[i]-3 {
			t.Errorf("point %d: triggered polls %v < heuristic %v", i, trigPolls[i], heurPolls[i])
		}
		if heurPolls[i] < basePolls[i]-3 {
			t.Errorf("point %d: heuristic polls %v < baseline %v", i, heurPolls[i], basePolls[i])
		}
		// Claim 2: triggered fidelity is 1 by definition.
		if trigF[i] != 1 {
			t.Errorf("point %d: triggered fidelity = %v, want exactly 1", i, trigF[i])
		}
		// Claim 3: heuristic fidelity between baseline and triggered.
		if heurF[i] < baseF[i]-1e-9 {
			t.Errorf("point %d: heuristic fidelity %v below baseline %v", i, heurF[i], baseF[i])
		}
	}

	// Claim 1 (aggregate): over the whole sweep, triggered polls the
	// most and the heuristic sits between it and the baseline.
	if trigTotal < heurTotal {
		t.Errorf("aggregate: triggered %v < heuristic %v", trigTotal, heurTotal)
	}

	// Claim 4: the incremental cost of mutual consistency is modest and
	// shrinks with δ (paper: heuristic < 20% extra polls).
	overheadAtTightest := (heurPolls[0] - basePolls[0]) / basePolls[0]
	if overheadAtTightest > 0.25 {
		t.Errorf("heuristic overhead at δ=1m = %.0f%%, want < 25%%", 100*overheadAtTightest)
	}
	last := len(basePolls) - 1
	overheadAtLoosest := (heurPolls[last] - basePolls[last]) / basePolls[last]
	if overheadAtLoosest > overheadAtTightest {
		t.Errorf("overhead grew with δ: %.2f → %.2f", overheadAtTightest, overheadAtLoosest)
	}

	// Claim 5: baseline fidelity improves with δ (more tolerance, fewer
	// violations) and is the worst of the three.
	if baseF[0] >= baseF[len(baseF)-1] {
		t.Errorf("baseline fidelity did not improve with δ: %v → %v",
			baseF[0], baseF[len(baseF)-1])
	}
	if baseF[0] > heurF[0] || baseF[0] > trigF[0] {
		t.Error("baseline must offer the worst fidelity at tight δ")
	}
}

func TestFigure6Shape(t *testing.T) {
	res := runFigure(t, Figure6)

	ratios := seriesByName(t, res, 0, "ratio")
	extras := seriesByName(t, res, 1, "extra")

	// Claim 1: the rate ratio between the two feeds varies over time
	// (that variation is what the heuristic adapts to).
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("rate ratio varies only %.2f–%.2f, want ≥1.5x spread", lo, hi)
	}

	// Claim 2: the heuristic triggers extra polls, unevenly over time
	// (selectivity: some windows quiet, some busy).
	total := 0.0
	quiet := 0
	for _, e := range extras {
		total += e
		if e == 0 {
			quiet++
		}
	}
	if total < 10 {
		t.Errorf("total extra polls = %v, want a visible triggering level", total)
	}
	if quiet == 0 {
		t.Error("extra polls in every window: heuristic not selective")
	}
}

func TestFigure7Shape(t *testing.T) {
	res := runFigure(t, Figure7)

	adPolls := seriesByName(t, res, 0, "Adaptive")
	partPolls := seriesByName(t, res, 0, "Partitioned")
	adF := seriesByName(t, res, 1, "Adaptive")
	partF := seriesByName(t, res, 1, "Partitioned")

	// Claim 1: the partitioned approach polls more than the adaptive
	// approach (it buys fidelity with polls).
	for i := range adPolls {
		if partPolls[i] < adPolls[i] {
			t.Errorf("point %d: partitioned polls %v < adaptive %v", i, partPolls[i], adPolls[i])
		}
	}

	// Claim 2: the partitioned approach offers higher fidelity across
	// the mid-range of the sweep (paper: "the partitioned approach can
	// offer higher fidelities").
	better := 0
	for i := 1; i < len(adF); i++ {
		if partF[i] >= adF[i] {
			better++
		}
	}
	if better < (len(adF)-1)*3/4 {
		t.Errorf("partitioned fidelity ≥ adaptive at only %d/%d points", better, len(adF)-1)
	}

	// Claim 3: both approaches poll less at looser δ.
	last := len(adPolls) - 1
	if adPolls[last] >= adPolls[0] || partPolls[last] >= partPolls[0] {
		t.Error("poll counts must fall as δ grows")
	}

	// Claim 4: both fidelities improve toward 1 at loose δ.
	if adF[last] < 0.95 || partF[last] < 0.95 {
		t.Errorf("fidelity at δ=$5: adaptive %.3f partitioned %.3f, want ≈1", adF[last], partF[last])
	}
}

func TestFigure8Shape(t *testing.T) {
	res := runFigure(t, Figure8)
	if len(res.Charts) != 2 {
		t.Fatalf("charts = %d, want 2", len(res.Charts))
	}
	for i, c := range res.Charts {
		for _, s := range c.Series {
			if len(s.X) == 0 {
				t.Errorf("chart %d series %q empty", i, s.Name)
			}
		}
	}

	// The partitioned proxy must track the server's f more tightly than
	// the adaptive proxy: compare the time-weighted mean absolute drift
	// the figure reports.
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatal("fig8 must report the tracking-error table")
	}
	var adaptiveDev, partitionedDev float64
	if _, err := fmt.Sscanf(res.Tables[0].Rows[0][1], "%f", &adaptiveDev); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(res.Tables[0].Rows[1][1], "%f", &partitionedDev); err != nil {
		t.Fatal(err)
	}
	if partitionedDev >= adaptiveDev {
		t.Errorf("partitioned drift %.4f >= adaptive %.4f: tracking order inverted",
			partitionedDev, adaptiveDev)
	}
}

func TestTables(t *testing.T) {
	for _, f := range []func() (*Result, error){Table1, Table2, Table3} {
		res, err := f()
		if err != nil {
			t.Fatalf("%v", err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no tables", res.ID)
		}
		for _, tbl := range res.Tables {
			if len(tbl.Rows) == 0 {
				t.Errorf("%s/%s: empty table", res.ID, tbl.Name)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Errorf("%s/%s: row width %d != headers %d",
						res.ID, tbl.Name, len(row), len(tbl.Headers))
				}
			}
		}
	}
}

func TestAllRunnersSucceed(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction is slow")
	}
	seen := map[string]bool{}
	for _, r := range AllRunners() {
		res, err := r.Run()
		if err != nil {
			t.Errorf("%s: %v", r.ID, err)
			continue
		}
		if res.ID != r.ID {
			t.Errorf("runner %s produced result %s", r.ID, res.ID)
		}
		if seen[res.ID] {
			t.Errorf("duplicate result id %s", res.ID)
		}
		seen[res.ID] = true
		if len(res.Charts) == 0 && len(res.Tables) == 0 {
			t.Errorf("%s: result carries no data", res.ID)
		}
	}
}

func TestValueApproachString(t *testing.T) {
	if ApproachAdaptive.String() != "adaptive" || ApproachPartitioned.String() != "partitioned" {
		t.Error("approach names wrong")
	}
	if ValueApproach(9).String() == "" {
		t.Error("unknown approach must format")
	}
}

func TestRunTemporalRejectsBadTrace(t *testing.T) {
	bad := tracegen.CNNFN()
	bad.Name = ""
	_, err := RunTemporal(TemporalScenario{
		Trace: bad, Delta: Fig4Delta,
		Policy: nil,
	})
	if err == nil {
		t.Error("invalid trace must fail")
	}
}

func TestCharacteristicsHelper(t *testing.T) {
	c := characteristicsOf(tracegen.ATT())
	if c.NumUpdates != 653 {
		t.Errorf("NumUpdates = %d", c.NumUpdates)
	}
}
