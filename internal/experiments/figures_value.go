package experiments

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/plot"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

// Fig7Deltas is the δ sweep of Figure 7 (the paper varies δ from $0.25 to
// $5).
var Fig7Deltas = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 5}

// Figure7 reproduces Fig. 7: mutual consistency in the value domain on
// the Yahoo + AT&T pair — (a) number of polls and (b) fidelity versus the
// mutual tolerance δ, for the adaptive (virtual-object) and partitioned
// approaches. f is the difference of the two prices.
func Figure7() (*Result, error) {
	// The paper plots the difference of the two prices (~$130); Yahoo is
	// the first operand.
	trA, trB := tracegen.Yahoo(), tracegen.ATT()

	approaches := []ValueApproach{ApproachAdaptive, ApproachPartitioned}
	names := map[ValueApproach]string{
		ApproachAdaptive:    "Adaptive TTR Approach",
		ApproachPartitioned: "Partitioned Approach",
	}
	polls := map[ValueApproach][]float64{}
	fids := map[ValueApproach][]float64{}
	var xs []float64

	for _, delta := range Fig7Deltas {
		xs = append(xs, delta)
		for _, ap := range approaches {
			run, err := RunMutualValue(MutualValueScenario{
				TraceA: trA, TraceB: trB,
				DeltaMutual: delta,
				Approach:    ap,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7: %v δ=%v: %w", ap, delta, err)
			}
			polls[ap] = append(polls[ap], float64(run.Report.Polls))
			fids[ap] = append(fids[ap], run.Report.FidelityByViolations)
		}
	}

	mkSeries := func(data map[ValueApproach][]float64) []plot.Series {
		var out []plot.Series
		for _, ap := range approaches {
			out = append(out, plot.Series{Name: names[ap], X: xs, Y: data[ap]})
		}
		return out
	}
	res := &Result{
		ID:    "fig7",
		Title: "Figure 7: Mutual consistency approaches, value domain (Yahoo + AT&T)",
		Charts: []*plot.Chart{
			{
				Title:  "Fig 7(a): Number of polls vs mutual δ",
				XLabel: "mutual consistency constraint ($)",
				YLabel: "number of polls",
				Series: mkSeries(polls),
			},
			{
				Title:  "Fig 7(b): Fidelity vs mutual δ",
				XLabel: "mutual consistency constraint ($)",
				YLabel: "fidelity (Eq. 13)",
				Series: mkSeries(fids),
			},
		},
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("At δ=$0.25: partitioned %d polls / fidelity %.3f vs adaptive %d / %.3f — paper: partitioned polls more and tracks better.",
			int(polls[ApproachPartitioned][0]), fids[ApproachPartitioned][0],
			int(polls[ApproachAdaptive][0]), fids[ApproachAdaptive][0]),
		"Both approaches poll less and achieve higher fidelity as δ grows (paper: same monotone trends).",
	)
	return res, nil
}

// Fig8Delta is the mutual tolerance of Figure 8 ($0.6 in the paper).
const Fig8Delta = 0.6

// Fig8Window is the time slice the paper's Fig. 8 displays (2500–5000 s).
var Fig8Window = [2]time.Duration{2500 * time.Second, 5000 * time.Second}

// Figure8 reproduces Fig. 8: the value of f = Yahoo − AT&T at the server
// and at the proxy over time, under the adaptive and the partitioned
// approach (δ = $0.6). The tightness of the proxy curve around the server
// curve visualizes the fidelity difference quantified in Fig. 7.
func Figure8() (*Result, error) {
	trA, trB := tracegen.Yahoo(), tracegen.ATT()

	charts := make([]*plot.Chart, 0, 2)
	titles := map[ValueApproach]string{
		ApproachAdaptive:    "Fig 8(a): Adaptive TTR approach, δ=$0.6",
		ApproachPartitioned: "Fig 8(b): Partitioned approach, δ=$0.6",
	}
	horizon := trA.Duration
	if trB.Duration < horizon {
		horizon = trB.Duration
	}
	drift := map[ValueApproach]float64{}
	for _, ap := range []ValueApproach{ApproachAdaptive, ApproachPartitioned} {
		run, err := RunMutualValue(MutualValueScenario{
			TraceA: trA, TraceB: trB,
			DeltaMutual: Fig8Delta,
			Approach:    ap,
		})
		if err != nil {
			return nil, fmt.Errorf("fig8: %v: %w", ap, err)
		}
		drift[ap] = metrics.MeanAbsoluteDrift(trA, trB, run.LogA, run.LogB,
			core.DifferenceFunc{}, horizon)
		sx, sy := serverDifferenceSeries(trA, trB, Fig8Window)
		px, py := proxyDifferenceSeries(run.LogA, run.LogB, Fig8Window)
		charts = append(charts, &plot.Chart{
			Title:  titles[ap],
			XLabel: "time (sec)",
			YLabel: "difference in stock prices ($)",
			Series: []plot.Series{
				{Name: "Server", X: sx, Y: sy},
				{Name: "Proxy", X: px, Y: py},
			},
		})
	}

	return &Result{
		ID:     "fig8",
		Title:  "Figure 8: Variation in f at the proxy and the server (Yahoo − AT&T)",
		Charts: charts,
		Tables: []TableResult{{
			Name:    "tracking error",
			Headers: []string{"Approach", "Time-weighted mean |drift| ($)"},
			Rows: [][]string{
				{"Adaptive TTR", fmt.Sprintf("%.4f", drift[ApproachAdaptive])},
				{"Partitioned", fmt.Sprintf("%.4f", drift[ApproachPartitioned])},
			},
		}},
		Notes: []string{
			fmt.Sprintf("Mean |drift|: partitioned $%.4f vs adaptive $%.4f — the partitioned proxy hugs the server curve more tightly (paper: same visual).",
				drift[ApproachPartitioned], drift[ApproachAdaptive]),
		},
	}, nil
}

// serverDifferenceSeries samples f = A − B at the server at every update
// instant inside the window.
func serverDifferenceSeries(trA, trB *trace.Trace, window [2]time.Duration) ([]float64, []float64) {
	var xs, ys []float64
	emit := func(at time.Duration) {
		xs = append(xs, at.Seconds())
		ys = append(ys, trA.ValueAt(at)-trB.ValueAt(at))
	}
	emit(window[0])
	for _, u := range trA.Updates {
		if u.At > window[0] && u.At <= window[1] {
			emit(u.At)
		}
	}
	for _, u := range trB.Updates {
		if u.At > window[0] && u.At <= window[1] {
			emit(u.At)
		}
	}
	// Merge sort order: emit produced A-updates then B-updates; sort by x.
	sortPairs(xs, ys)
	return xs, ys
}

// proxyDifferenceSeries reconstructs the cached f = A − B over time from
// the two refresh logs, sampled at every refresh inside the window.
func proxyDifferenceSeries(logA, logB []metrics.Refresh, window [2]time.Duration) ([]float64, []float64) {
	type ev struct {
		at time.Duration
		a  bool
		v  float64
	}
	var evs []ev
	for _, r := range logA {
		evs = append(evs, ev{at: r.At.Duration(), a: true, v: r.Value})
	}
	for _, r := range logB {
		evs = append(evs, ev{at: r.At.Duration(), a: false, v: r.Value})
	}
	sortEvents := func() {
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && evs[j].at < evs[j-1].at; j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
	}
	sortEvents()

	var xs, ys []float64
	var va, vb float64
	var haveA, haveB bool
	for _, e := range evs {
		if e.a {
			va, haveA = e.v, true
		} else {
			vb, haveB = e.v, true
		}
		if !haveA || !haveB {
			continue
		}
		if e.at >= window[0] && e.at <= window[1] {
			xs = append(xs, e.at.Seconds())
			ys = append(ys, va-vb)
		}
	}
	return xs, ys
}

// sortPairs sorts parallel x/y slices by x (insertion sort; series are
// small and nearly sorted).
func sortPairs(xs, ys []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
			ys[j], ys[j-1] = ys[j-1], ys[j]
		}
	}
}
