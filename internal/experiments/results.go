package experiments

import "broadway/internal/plot"

// TableResult is one reproduced table.
type TableResult struct {
	Name    string
	Headers []string
	Rows    [][]string
}

// Result is the reproduction of one paper table or figure: charts for
// figures, tables for tables, plus free-form notes comparing against the
// paper's reported behavior.
type Result struct {
	// ID is the experiment identifier, e.g. "fig3" or "table2".
	ID string
	// Title describes the experiment.
	Title string
	// Charts hold the figure's data series (one chart per sub-figure).
	Charts []*plot.Chart
	// Tables hold reproduced table rows.
	Tables []TableResult
	// Notes record headline observations (who wins, by what factor).
	Notes []string
}

// Runner produces one experiment result.
type Runner struct {
	ID  string
	Run func() (*Result, error)
}

// AllRunners lists every reproduction in paper order.
func AllRunners() []Runner {
	return []Runner{
		{ID: "table1", Run: Table1},
		{ID: "table2", Run: Table2},
		{ID: "table3", Run: Table3},
		{ID: "fig3", Run: Figure3},
		{ID: "fig4", Run: Figure4},
		{ID: "fig5", Run: Figure5},
		{ID: "fig6", Run: Figure6},
		{ID: "fig7", Run: Figure7},
		{ID: "fig8", Run: Figure8},
	}
}
