package experiments

import "testing"

// TestProbeNumbers logs headline numbers for manual inspection during
// development. It never fails; the shape assertions live in
// figures_test.go.
func TestProbeNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	for _, r := range AllRunners() {
		res, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		t.Logf("=== %s: %s", res.ID, res.Title)
		for _, n := range res.Notes {
			t.Logf("  note: %s", n)
		}
		for _, c := range res.Charts {
			for _, s := range c.Series {
				if len(s.Y) > 0 {
					t.Logf("  %s / %s: first=%.3f last=%.3f n=%d", c.Title, s.Name, s.Y[0], s.Y[len(s.Y)-1], len(s.Y))
				}
			}
		}
	}
}
