package experiments

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

// The paper twice defers breadth to its technical report (TR 00-47):
// Fig. 3 shows only the CNN/FN trace ("similar results were obtained for
// other traces"), and Fig. 5 shows only one object pair ("these
// observations hold irrespective of the difference in the rate of change
// of objects"). These two studies reproduce the deferred breadth:
// TRFigure3AllTraces runs the LIMD-vs-baseline comparison on every news
// trace, and TRFigure5AllPairs runs the three mutual-consistency
// approaches on every pair of news traces. cmd/repro runs them with
// -ablations.

// TRFigure3AllTraces reproduces the Fig. 3 comparison on all four news
// traces at two representative Δ values.
func TRFigure3AllTraces() (*Result, error) {
	res := &Result{
		ID:    "tr-fig3-all-traces",
		Title: "TR: LIMD vs baseline across all news traces",
	}
	tbl := TableResult{
		Name: "limd vs baseline",
		Headers: []string{"Trace", "Δ", "LIMD polls", "LIMD fidelity",
			"Baseline polls", "Poll reduction"},
	}
	for _, tr := range tracegen.NewsPresets() {
		for _, delta := range []time.Duration{1 * time.Minute, 10 * time.Minute} {
			delta := delta
			limd, err := RunTemporal(TemporalScenario{
				Trace: tr, Delta: delta,
				Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) },
			})
			if err != nil {
				return nil, fmt.Errorf("tr-fig3: %s Δ=%v: %w", tr.Name, delta, err)
			}
			base, err := RunTemporal(TemporalScenario{
				Trace: tr, Delta: delta,
				Policy: func() core.Policy { return core.NewPeriodic(delta) },
			})
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{
				tr.Name,
				delta.String(),
				fmt.Sprintf("%d", limd.Report.Polls),
				fmt.Sprintf("%.3f", limd.Report.FidelityByViolations),
				fmt.Sprintf("%d", base.Report.Polls),
				fmt.Sprintf("%.1fx", float64(base.Report.Polls)/float64(limd.Report.Polls)),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"The Fig. 3 shape holds on every trace: large poll reductions at tight Δ, shrinking as Δ approaches the trace's update period (paper: \"similar results were obtained for other traces\").")
	return res, nil
}

// TRFigure5AllPairs reproduces the Fig. 5 comparison on every pair of
// news traces at one δ, covering rate ratios from ≈1.7:1 (AP:Reuters) to
// ≈5.3:1 (Guardian:CNN).
func TRFigure5AllPairs() (*Result, error) {
	presets := tracegen.NewsPresets()
	res := &Result{
		ID:    "tr-fig5-all-pairs",
		Title: "TR: mutual-consistency approaches across all trace pairs (Δ=10m, δ=5m)",
	}
	tbl := TableResult{
		Name: "all pairs",
		Headers: []string{"Pair", "Baseline fid.", "Heuristic fid.", "Triggered fid.",
			"Heuristic extra polls"},
	}
	const (
		delta  = 10 * time.Minute
		mdelta = 5 * time.Minute
	)
	for i := 0; i < len(presets); i++ {
		for j := i + 1; j < len(presets); j++ {
			trA, trB := presets[i], presets[j]
			fids := map[core.TriggerMode]float64{}
			var heuristicExtra int
			var baselinePolls int
			for _, mode := range []core.TriggerMode{core.TriggerNone, core.TriggerFaster, core.TriggerAll} {
				run, err := RunMutualTemporal(MutualTemporalScenario{
					TraceA: trA, TraceB: trB,
					DeltaIndividual: delta, DeltaMutual: mdelta,
					Mode: mode,
				})
				if err != nil {
					return nil, fmt.Errorf("tr-fig5: %s+%s %v: %w", trA.Name, trB.Name, mode, err)
				}
				fids[mode] = run.Report.FidelityBySync
				switch mode {
				case core.TriggerNone:
					baselinePolls = run.Report.Polls
				case core.TriggerFaster:
					heuristicExtra = run.Report.Polls - baselinePolls
				}
			}
			tbl.Rows = append(tbl.Rows, []string{
				pairName(trA, trB),
				fmt.Sprintf("%.3f", fids[core.TriggerNone]),
				fmt.Sprintf("%.3f", fids[core.TriggerFaster]),
				fmt.Sprintf("%.3f", fids[core.TriggerAll]),
				fmt.Sprintf("%d", heuristicExtra),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"On every pair — regardless of the rate gap — the ordering holds: triggered = 1.0 exactly, heuristic in between, baseline worst (paper TR: \"irrespective of the difference in the rate of change\").")
	return res, nil
}

func pairName(a, b *trace.Trace) string {
	return a.Name + " + " + b.Name
}
