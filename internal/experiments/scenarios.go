// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each FigureN/TableN function runs the corresponding
// simulations on the synthetic stand-in workloads and returns the series
// or rows the paper reports; cmd/repro renders them to CSV and ASCII
// charts, and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/origin"
	"broadway/internal/proxy"
	"broadway/internal/sim"
	"broadway/internal/simtime"
	"broadway/internal/trace"
)

// TemporalScenario describes one individual-consistency simulation in the
// temporal domain.
type TemporalScenario struct {
	// Trace drives the object.
	Trace *trace.Trace
	// Delta is the Δt tolerance.
	Delta time.Duration
	// Policy builds the consistency policy (called once per run).
	Policy func() core.Policy
	// WithHistory enables the modification-history extension at the
	// origin.
	WithHistory bool
	// Latency is the fixed one-way network latency between proxy and
	// origin (§6.1.1; default zero).
	Latency time.Duration
}

// TemporalRunResult couples the fidelity report with the refresh log for
// callers that also need the raw schedule (Fig. 4 plots TTR over time).
type TemporalRunResult struct {
	Report metrics.TemporalReport
	Log    []metrics.Refresh
}

// RunTemporal executes the scenario to the trace horizon and evaluates it.
func RunTemporal(sc TemporalScenario) (TemporalRunResult, error) {
	engine := sim.New(sc.Latency)
	org := origin.New()
	const id core.ObjectID = "obj"
	if err := org.Host(id, sc.Trace, sc.WithHistory); err != nil {
		return TemporalRunResult{}, err
	}
	px := proxy.New(engine, org)
	if err := px.RegisterObject(id, sc.Policy()); err != nil {
		return TemporalRunResult{}, err
	}
	if err := engine.Run(simtime.At(sc.Trace.Duration)); err != nil {
		return TemporalRunResult{}, err
	}
	log := px.Log(id)
	return TemporalRunResult{
		Report: metrics.EvaluateTemporal(sc.Trace, log, sc.Delta, sc.Trace.Duration),
		Log:    log,
	}, nil
}

// MutualTemporalScenario describes one mutual-consistency simulation in
// the temporal domain: two related objects, each under its own LIMD
// policy, coordinated by a trigger controller.
type MutualTemporalScenario struct {
	TraceA, TraceB *trace.Trace
	// DeltaIndividual is the Δt tolerance of each object's own LIMD.
	DeltaIndividual time.Duration
	// DeltaMutual is the mutual tolerance δ.
	DeltaMutual time.Duration
	// Mode selects baseline / triggered / heuristic.
	Mode core.TriggerMode
	// RateTolerance overrides the heuristic's "approximately the same
	// rate" factor (0 keeps the default of 0.8).
	RateTolerance float64
	// WithHistory enables the history extension for both objects.
	WithHistory bool
}

// MutualTemporalRunResult carries the pair evaluation plus per-object
// logs.
type MutualTemporalRunResult struct {
	Report     metrics.MutualTemporalReport
	LogA, LogB []metrics.Refresh
}

// RunMutualTemporal executes the scenario until the shorter trace ends.
func RunMutualTemporal(sc MutualTemporalScenario) (MutualTemporalRunResult, error) {
	engine := sim.New(0)
	org := origin.New()
	const idA, idB core.ObjectID = "a", "b"
	if err := org.Host(idA, sc.TraceA, sc.WithHistory); err != nil {
		return MutualTemporalRunResult{}, err
	}
	if err := org.Host(idB, sc.TraceB, sc.WithHistory); err != nil {
		return MutualTemporalRunResult{}, err
	}
	px := proxy.New(engine, org)
	mkPolicy := func() core.Policy {
		return core.NewLIMD(core.LIMDConfig{Delta: sc.DeltaIndividual})
	}
	if err := px.RegisterObject(idA, mkPolicy()); err != nil {
		return MutualTemporalRunResult{}, err
	}
	if err := px.RegisterObject(idB, mkPolicy()); err != nil {
		return MutualTemporalRunResult{}, err
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{
		Delta:         sc.DeltaMutual,
		Mode:          sc.Mode,
		RateTolerance: sc.RateTolerance,
	})
	if err := px.RegisterGroup([]core.ObjectID{idA, idB}, ctrl); err != nil {
		return MutualTemporalRunResult{}, err
	}
	horizon := sc.TraceA.Duration
	if sc.TraceB.Duration < horizon {
		horizon = sc.TraceB.Duration
	}
	if err := engine.Run(simtime.At(horizon)); err != nil {
		return MutualTemporalRunResult{}, err
	}
	logA, logB := px.Log(idA), px.Log(idB)
	return MutualTemporalRunResult{
		Report: metrics.EvaluateMutualTemporal(sc.TraceA, sc.TraceB, logA, logB,
			sc.DeltaMutual, horizon),
		LogA: logA,
		LogB: logB,
	}, nil
}

// GroupTemporalScenario generalizes MutualTemporalScenario to n related
// objects (the paper notes its definitions extend from pairs to n
// objects; §2).
type GroupTemporalScenario struct {
	Traces          []*trace.Trace
	DeltaIndividual time.Duration
	DeltaMutual     time.Duration
	Mode            core.TriggerMode
	WithHistory     bool
}

// GroupTemporalRunResult carries the group evaluation plus per-object
// logs.
type GroupTemporalRunResult struct {
	Report metrics.GroupTemporalReport
	Logs   [][]metrics.Refresh
}

// RunMutualTemporalGroup executes the n-object scenario until the
// shortest trace ends.
func RunMutualTemporalGroup(sc GroupTemporalScenario) (GroupTemporalRunResult, error) {
	if len(sc.Traces) < 2 {
		return GroupTemporalRunResult{}, fmt.Errorf("experiments: group needs at least 2 traces")
	}
	engine := sim.New(0)
	org := origin.New()
	px := proxy.New(engine, org)
	ids := make([]core.ObjectID, len(sc.Traces))
	horizon := sc.Traces[0].Duration
	for i, tr := range sc.Traces {
		ids[i] = core.ObjectID(fmt.Sprintf("obj-%d", i))
		if err := org.Host(ids[i], tr, sc.WithHistory); err != nil {
			return GroupTemporalRunResult{}, err
		}
		if err := px.RegisterObject(ids[i], core.NewLIMD(core.LIMDConfig{Delta: sc.DeltaIndividual})); err != nil {
			return GroupTemporalRunResult{}, err
		}
		if tr.Duration < horizon {
			horizon = tr.Duration
		}
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{
		Delta: sc.DeltaMutual,
		Mode:  sc.Mode,
	})
	if err := px.RegisterGroup(ids, ctrl); err != nil {
		return GroupTemporalRunResult{}, err
	}
	if err := engine.Run(simtime.At(horizon)); err != nil {
		return GroupTemporalRunResult{}, err
	}
	logs := make([][]metrics.Refresh, len(ids))
	for i, id := range ids {
		logs[i] = px.Log(id)
	}
	return GroupTemporalRunResult{
		Report: metrics.EvaluateMutualTemporalGroup(sc.Traces, logs, sc.DeltaMutual, horizon),
		Logs:   logs,
	}, nil
}

// ValueApproach selects the value-domain mutual-consistency mechanism.
type ValueApproach int

const (
	// ApproachAdaptive is the virtual-object technique (Eq. 11–12).
	ApproachAdaptive ValueApproach = iota + 1
	// ApproachPartitioned splits δ across the objects (difference f).
	ApproachPartitioned
)

// String returns the approach name used in reports.
func (a ValueApproach) String() string {
	switch a {
	case ApproachAdaptive:
		return "adaptive"
	case ApproachPartitioned:
		return "partitioned"
	default:
		return fmt.Sprintf("ValueApproach(%d)", int(a))
	}
}

// MutualValueScenario describes one mutual-consistency simulation in the
// value domain.
type MutualValueScenario struct {
	TraceA, TraceB *trace.Trace
	// DeltaMutual is the mutual tolerance δ on the difference function.
	DeltaMutual float64
	// Approach selects adaptive vs partitioned.
	Approach ValueApproach
	// Bounds clamp the TTRs; the zero value selects the experiment
	// defaults (2 s floor, 5 min cap — quote traces tick every few
	// seconds).
	Bounds core.TTRBounds
}

// DefaultValueBounds are the TTR bounds used in the value-domain
// experiments.
var DefaultValueBounds = core.TTRBounds{Min: 2 * time.Second, Max: 5 * time.Minute}

// MutualValueRunResult carries the pair evaluation plus per-object logs.
type MutualValueRunResult struct {
	Report     metrics.MutualValueReport
	LogA, LogB []metrics.Refresh
}

// RunMutualValue executes the scenario until the shorter trace ends.
func RunMutualValue(sc MutualValueScenario) (MutualValueRunResult, error) {
	engine := sim.New(0)
	org := origin.New()
	const idA, idB core.ObjectID = "a", "b"
	if err := org.Host(idA, sc.TraceA, false); err != nil {
		return MutualValueRunResult{}, err
	}
	if err := org.Host(idB, sc.TraceB, false); err != nil {
		return MutualValueRunResult{}, err
	}
	bounds := sc.Bounds
	if bounds.Min == 0 && bounds.Max == 0 {
		bounds = DefaultValueBounds
	}
	px := proxy.New(engine, org)
	cfg := core.MutualValueConfig{
		Delta:  sc.DeltaMutual,
		Bounds: bounds,
	}
	switch sc.Approach {
	case ApproachAdaptive:
		if err := px.RegisterPair(idA, idB, core.NewMutualValueAdaptive(cfg)); err != nil {
			return MutualValueRunResult{}, err
		}
	case ApproachPartitioned:
		part := core.NewMutualValuePartitioned(cfg)
		if err := px.RegisterObject(idA, part.PolicyA()); err != nil {
			return MutualValueRunResult{}, err
		}
		if err := px.RegisterObject(idB, part.PolicyB()); err != nil {
			return MutualValueRunResult{}, err
		}
	default:
		return MutualValueRunResult{}, fmt.Errorf("experiments: unknown approach %v", sc.Approach)
	}
	horizon := sc.TraceA.Duration
	if sc.TraceB.Duration < horizon {
		horizon = sc.TraceB.Duration
	}
	if err := engine.Run(simtime.At(horizon)); err != nil {
		return MutualValueRunResult{}, err
	}
	logA, logB := px.Log(idA), px.Log(idB)
	return MutualValueRunResult{
		Report: metrics.EvaluateMutualValue(sc.TraceA, sc.TraceB, logA, logB,
			core.DifferenceFunc{}, sc.DeltaMutual, horizon),
		LogA: logA,
		LogB: logB,
	}, nil
}
