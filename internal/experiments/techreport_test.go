package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTRFigure3AllTraces(t *testing.T) {
	res, err := TRFigure3AllTraces()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 8 { // 4 traces × 2 Δ
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		limdPolls, _ := strconv.Atoi(row[2])
		basePolls, _ := strconv.Atoi(row[4])
		// LIMD must never poll more than the baseline.
		if limdPolls > basePolls {
			t.Errorf("%s Δ=%s: LIMD %d > baseline %d", row[0], row[1], limdPolls, basePolls)
		}
		// At Δ=1m every trace must show a substantial reduction (the
		// paper's "similar results" claim).
		if row[1] == "1m0s" {
			red, _ := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
			if red < 2 {
				t.Errorf("%s: reduction %.1fx at Δ=1m too small", row[0], red)
			}
		}
	}
}

func TestTRFigure5AllPairs(t *testing.T) {
	res, err := TRFigure5AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 6 { // C(4,2) pairs
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		base, _ := strconv.ParseFloat(row[1], 64)
		heur, _ := strconv.ParseFloat(row[2], 64)
		trig, _ := strconv.ParseFloat(row[3], 64)
		if trig != 1 {
			t.Errorf("%s: triggered fidelity %v, want exactly 1", row[0], trig)
		}
		if heur < base-1e-9 {
			t.Errorf("%s: heuristic %v below baseline %v", row[0], heur, base)
		}
		if base > trig {
			t.Errorf("%s: baseline above triggered", row[0])
		}
	}
}
