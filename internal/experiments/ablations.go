package experiments

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/origin"
	"broadway/internal/plot"
	"broadway/internal/proxy"
	"broadway/internal/sim"
	"broadway/internal/simtime"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/workload"
)

// The ablation studies quantify the design choices the paper discusses
// qualitatively: the LIMD tunables (§3.1 "the approach can be made
// optimistic … or conservative"), the value of the modification-history
// extension versus probabilistic inference (§3.1/§5), the heuristic's
// rate-tolerance knob (§3.2), server push as the strong-consistency
// reference (Eq. 1, footnote 1), and the n-object generalization (§2).
// They are not paper figures; cmd/repro runs them with -ablations.

// AblationRunners lists the extension studies.
func AblationRunners() []Runner {
	return []Runner{
		{ID: "ablation-limd-params", Run: AblationLIMDParameters},
		{ID: "ablation-history", Run: AblationHistoryExtension},
		{ID: "ablation-heuristic", Run: AblationHeuristicTolerance},
		{ID: "ablation-push", Run: AblationPushVsPoll},
		{ID: "ablation-group-size", Run: AblationGroupSize},
		{ID: "ablation-client-workload", Run: AblationClientWorkload},
		{ID: "ablation-individual-value", Run: AblationIndividualValue},
		{ID: "ablation-latency", Run: AblationLatency},
		{ID: "tr-fig3-all-traces", Run: TRFigure3AllTraces},
		{ID: "tr-fig5-all-pairs", Run: TRFigure5AllPairs},
	}
}

// AblationIndividualValue reproduces the foundation the paper's §4 builds
// on (the adaptive-TTR Δv experiments of Srinivasan et al. [8]):
// individual value-domain consistency on the two stock traces across a Δv
// sweep, against a periodic baseline polling at the TTR floor.
func AblationIndividualValue() (*Result, error) {
	res := &Result{
		ID:    "ablation-individual-value",
		Title: "Ablation: individual Δv-consistency (adaptive TTR vs periodic floor)",
	}
	tbl := TableResult{
		Name: "adaptive ttr",
		Headers: []string{"Stock", "Δv ($)", "Adaptive polls", "Adaptive fidelity",
			"Periodic polls", "Periodic fidelity"},
	}
	bounds := DefaultValueBounds
	for _, tr := range tracegen.StockPresets() {
		for _, dv := range []float64{0.1, 0.25, 0.5, 1.0} {
			adaptive, err := runIndividualValue(tr, core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
				Delta: dv, Bounds: bounds,
			}), dv)
			if err != nil {
				return nil, err
			}
			periodic, err := runIndividualValue(tr, core.NewPeriodic(bounds.Min), dv)
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{
				tr.Name,
				fmt.Sprintf("%.2f", dv),
				fmt.Sprintf("%d", adaptive.Polls),
				fmt.Sprintf("%.3f", adaptive.FidelityByViolations),
				fmt.Sprintf("%d", periodic.Polls),
				fmt.Sprintf("%.3f", periodic.FidelityByViolations),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"The adaptive TTR polls a small fraction of the 2s-floor poller. Fidelity is workload-dependent: the quiet AT&T trace tracks near-perfectly, while the random-walk Yahoo trace extrapolates imperfectly at loose Δv — exactly the temporal-locality caveat of §4.1 (mitigate with a smaller α).")
	return res, nil
}

// runIndividualValue simulates one valued object under a policy and
// evaluates Δv fidelity.
func runIndividualValue(tr *trace.Trace, policy core.Policy, delta float64) (metrics.ValueReport, error) {
	engine := sim.New(0)
	org := origin.New()
	if err := org.Host("s", tr, false); err != nil {
		return metrics.ValueReport{}, err
	}
	px := proxy.New(engine, org)
	if err := px.RegisterObject("s", policy); err != nil {
		return metrics.ValueReport{}, err
	}
	if err := engine.Run(simtime.At(tr.Duration)); err != nil {
		return metrics.ValueReport{}, err
	}
	return metrics.EvaluateValue(tr, px.Log("s"), delta, tr.Duration), nil
}

// AblationLatency verifies the paper's fixed-latency simplification
// (§6.1.1): the network latency shifts when refreshes land but barely
// moves poll counts or fidelity, which is why the paper holds it
// constant.
func AblationLatency() (*Result, error) {
	tr := tracegen.CNNFN()
	const delta = 10 * time.Minute
	res := &Result{
		ID:    "ablation-latency",
		Title: "Ablation: network latency sensitivity (CNN/FN, LIMD, Δ=10m)",
	}
	tbl := TableResult{
		Name:    "latency",
		Headers: []string{"One-way latency", "Polls", "Fidelity (Eq. 13)", "Fidelity (Eq. 14)"},
	}
	for _, lat := range []time.Duration{0, 100 * time.Millisecond, time.Second, 10 * time.Second} {
		run, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta, Latency: lat,
			Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) },
		})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			lat.String(),
			fmt.Sprintf("%d", run.Report.Polls),
			fmt.Sprintf("%.3f", run.Report.FidelityByViolations),
			fmt.Sprintf("%.3f", run.Report.FidelityByTime),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Realistic latencies are orders of magnitude below Δ; results are latency-insensitive, justifying the paper's fixed-latency assumption.")
	return res, nil
}

// AblationLIMDParameters sweeps the linear-increase factor l and
// contrasts the paper's adaptive multiplicative factor (m = Δ/out-of-sync
// time) with fixed settings, on the CNN/FN trace at Δ=10 m.
func AblationLIMDParameters() (*Result, error) {
	tr := tracegen.CNNFN()
	const delta = 10 * time.Minute

	res := &Result{
		ID:    "ablation-limd-params",
		Title: "Ablation: LIMD tunables (CNN/FN, Δ=10m)",
	}
	tbl := TableResult{
		Name:    "limd parameters",
		Headers: []string{"l (linear)", "m (mult.)", "Polls", "Fidelity (Eq. 13)", "Out-of-sync"},
	}
	type cfg struct {
		l    float64
		m    float64 // 0 = adaptive
		name string
	}
	var cfgs []cfg
	for _, l := range []float64{0.1, 0.2, 0.4, 0.8} {
		cfgs = append(cfgs, cfg{l: l, m: 0, name: "adaptive"})
	}
	for _, m := range []float64{0.3, 0.5, 0.7} {
		cfgs = append(cfgs, cfg{l: 0.2, m: m, name: fmt.Sprintf("%.1f", m)})
	}
	for _, c := range cfgs {
		c := c
		run, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta,
			Policy: func() core.Policy {
				return core.NewLIMD(core.LIMDConfig{
					Delta: delta, LinearFactor: c.l, MultiplicativeFactor: c.m,
				})
			},
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-limd: l=%v m=%v: %w", c.l, c.m, err)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f", c.l),
			c.name,
			fmt.Sprintf("%d", run.Report.Polls),
			fmt.Sprintf("%.3f", run.Report.FidelityByViolations),
			run.Report.OutOfSync.Round(time.Minute).String(),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Larger l (optimistic) trades polls for fidelity; the adaptive m backs off in proportion to the observed miss, as in the paper's experiments.")
	return res, nil
}

// AblationHistoryExtension quantifies §5.1/§3.1: how much the proposed
// modification-history extension (exact hidden-violation detection) and
// the probabilistic inference fallback help on a fast-changing object
// polled with plain HTTP. Guardian updates every ~4.9 m; with Δ=10 m,
// multiple updates per poll window are common — exactly the Fig. 1(b)
// blind spot.
func AblationHistoryExtension() (*Result, error) {
	tr := tracegen.Guardian()
	const delta = 10 * time.Minute

	res := &Result{
		ID:    "ablation-history",
		Title: "Ablation: modification-history extension vs inference (Guardian, Δ=10m)",
	}
	tbl := TableResult{
		Name:    "violation detection",
		Headers: []string{"Detection", "Polls", "Fidelity (Eq. 13)", "Fidelity (Eq. 14)"},
	}
	type variant struct {
		name        string
		withHistory bool
		inference   bool
	}
	for _, v := range []variant{
		{"plain HTTP/1.1", false, false},
		{"plain + inference (§5)", false, true},
		{"history extension (§5.1)", true, false},
	} {
		v := v
		run, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta, WithHistory: v.withHistory,
			Policy: func() core.Policy {
				cfg := core.LIMDConfig{Delta: delta}
				if v.inference {
					cfg.Inference = core.NewViolationInference(0.5)
				}
				return core.NewLIMD(cfg)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-history: %s: %w", v.name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{
			v.name,
			fmt.Sprintf("%d", run.Report.Polls),
			fmt.Sprintf("%.3f", run.Report.FidelityByViolations),
			fmt.Sprintf("%.3f", run.Report.FidelityByTime),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Hidden violations make plain HTTP overestimate its own health; the history extension detects them exactly, inference approximates it without protocol changes.")
	return res, nil
}

// AblationHeuristicTolerance sweeps the TriggerFaster rate-tolerance
// factor: 1.0 triggers only strictly-faster siblings, smaller values
// trigger "approximately the same rate" ever more loosely, interpolating
// toward TriggerAll.
func AblationHeuristicTolerance() (*Result, error) {
	trA, trB := tracegen.CNNFN(), tracegen.NYTAP()
	const (
		delta  = 10 * time.Minute
		mdelta = 5 * time.Minute
	)
	res := &Result{
		ID:    "ablation-heuristic",
		Title: "Ablation: heuristic rate tolerance (CNN/FN + NYT/AP, Δ=10m, δ=5m)",
	}
	var xs, polls, fids []float64
	for _, tol := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		run, err := RunMutualTemporal(MutualTemporalScenario{
			TraceA: trA, TraceB: trB,
			DeltaIndividual: delta, DeltaMutual: mdelta,
			Mode: core.TriggerFaster, RateTolerance: tol,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-heuristic: tol=%v: %w", tol, err)
		}
		xs = append(xs, tol)
		polls = append(polls, float64(run.Report.Polls))
		fids = append(fids, run.Report.FidelityBySync)
	}
	res.Charts = append(res.Charts,
		&plot.Chart{
			Title: "Heuristic polls vs rate tolerance", XLabel: "rate tolerance", YLabel: "polls",
			Series: []plot.Series{{Name: "heuristic", X: xs, Y: polls}},
		},
		&plot.Chart{
			Title: "Heuristic fidelity vs rate tolerance", XLabel: "rate tolerance", YLabel: "mutual fidelity",
			Series: []plot.Series{{Name: "heuristic", X: xs, Y: fids}},
		})
	res.Notes = append(res.Notes,
		"Lower tolerance → more triggering → more polls and higher fidelity; the knob interpolates between TriggerAll and strict faster-only.")
	return res, nil
}

// AblationPushVsPoll contrasts server-push strong consistency (Eq. 1,
// footnote 1) with the proxy-driven mechanisms: messages exchanged and
// resulting fidelity, per news trace at Δ=10 m.
func AblationPushVsPoll() (*Result, error) {
	const delta = 10 * time.Minute
	res := &Result{
		ID:    "ablation-push",
		Title: "Ablation: server push (strong consistency) vs proxy polling (Δ=10m)",
	}
	tbl := TableResult{
		Name:    "push vs poll",
		Headers: []string{"Trace", "Push msgs", "LIMD polls", "LIMD fidelity", "Periodic polls"},
	}
	for _, tr := range tracegen.NewsPresets() {
		tr := tr
		// Server push via the simulator.
		engine := sim.New(0)
		org := origin.New()
		if err := org.Host("o", tr, false); err != nil {
			return nil, err
		}
		px := proxy.New(engine, org)
		if err := px.RegisterPushObject("o"); err != nil {
			return nil, err
		}
		if err := engine.Run(simtime.At(tr.Duration)); err != nil {
			return nil, err
		}
		pushRep := metrics.EvaluateTemporal(tr, px.Log("o"), delta, tr.Duration)
		if pushRep.Violations != 0 {
			return nil, fmt.Errorf("ablation-push: push must be violation-free, got %d", pushRep.Violations)
		}

		limd, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta,
			Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) },
		})
		if err != nil {
			return nil, err
		}
		periodic, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta,
			Policy: func() core.Policy { return core.NewPeriodic(delta) },
		})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			tr.Name,
			fmt.Sprintf("%d", pushRep.Polls),
			fmt.Sprintf("%d", limd.Report.Polls),
			fmt.Sprintf("%.3f", limd.Report.FidelityByViolations),
			fmt.Sprintf("%d", periodic.Report.Polls),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Push sends exactly one message per update with perfect fidelity — cheap for slow objects, wasteful when the proxy needs less than every update; the paper's Δ-mechanisms occupy the space between.")
	return res, nil
}

// AblationClientWorkload drives the proxy with a Zipf/Poisson client
// request stream over the news catalog (the paper's usage model: "a proxy
// cache that receives requests from several clients"): objects are
// admitted on their first miss and kept fresh by LIMD thereafter, so all
// subsequent requests hit.
func AblationClientWorkload() (*Result, error) {
	const delta = 10 * time.Minute
	catalog := tracegen.NewsPresets()

	engine := sim.New(0)
	org := origin.New()
	var ids []core.ObjectID
	horizon := catalog[0].Duration
	for _, tr := range catalog {
		id := core.ObjectID(tr.Name)
		if err := org.Host(id, tr, false); err != nil {
			return nil, err
		}
		ids = append(ids, id)
		if tr.Duration < horizon {
			horizon = tr.Duration
		}
	}
	px := proxy.New(engine, org)

	reqs, err := workload.Generate(workload.Config{
		Seed: 42, Duration: horizon, RatePerMinute: 2, Objects: ids, ZipfS: 1.3,
	})
	if err != nil {
		return nil, err
	}
	mk := func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) }
	for _, r := range reqs {
		r := r
		engine.ScheduleAt(simtime.At(r.At), sim.EventFunc(func(*sim.Engine) {
			if _, err := px.HandleRequest(r.Object, mk); err != nil {
				panic(err) // catalog objects are always hosted
			}
		}))
	}
	if err := engine.Run(simtime.At(horizon)); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "ablation-client-workload",
		Title: "Ablation: client-driven admission (Zipf requests, Δ=10m)",
	}
	tbl := TableResult{
		Name:    "per-object activity",
		Headers: []string{"Object", "Requests", "Refresh polls", "Fidelity (Eq. 13)"},
	}
	counts := workload.PopularityCounts(ids, reqs)
	for i, id := range ids {
		log := px.Log(id)
		rep := metrics.EvaluateTemporal(catalog[i], log, delta, horizon)
		fid := "—"
		if len(log) > 0 {
			fid = fmt.Sprintf("%.3f", rep.FidelityByViolations)
		}
		tbl.Rows = append(tbl.Rows, []string{
			string(id),
			fmt.Sprintf("%d", counts[i]),
			fmt.Sprintf("%d", len(log)),
			fid,
		})
	}
	res.Tables = append(res.Tables, tbl)
	hitRatio := float64(px.Hits()) / float64(px.Hits()+px.Misses())
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d requests, hit ratio %.3f (one miss per object admits it; LIMD keeps it fresh thereafter).",
		len(reqs), hitRatio))
	return res, nil
}

// AblationGroupSize evaluates the mutual-consistency approaches on
// growing groups (2–4 news objects): the paper's definitions generalize
// to n objects, and the cost of triggering grows with group size while
// the heuristic stays selective.
func AblationGroupSize() (*Result, error) {
	all := tracegen.NewsPresets()
	const (
		delta  = 10 * time.Minute
		mdelta = 5 * time.Minute
	)
	res := &Result{
		ID:    "ablation-group-size",
		Title: "Ablation: n-object groups (Δ=10m, δ=5m)",
	}
	tbl := TableResult{
		Name:    "group size",
		Headers: []string{"n", "Mode", "Polls", "Triggered", "Mutual fidelity (sync)"},
	}
	for n := 2; n <= len(all); n++ {
		for _, mode := range []core.TriggerMode{core.TriggerNone, core.TriggerAll, core.TriggerFaster} {
			run, err := RunMutualTemporalGroup(GroupTemporalScenario{
				Traces:          all[:n],
				DeltaIndividual: delta,
				DeltaMutual:     mdelta,
				Mode:            mode,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-group: n=%d %v: %w", n, mode, err)
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", n),
				mode.String(),
				fmt.Sprintf("%d", run.Report.Polls),
				fmt.Sprintf("%d", run.Report.TriggeredPolls),
				fmt.Sprintf("%.3f", run.Report.FidelityBySync),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Triggered polls scale with group size (every detection fans out to n−1 siblings); the heuristic's selectivity keeps the overhead sublinear.")
	return res, nil
}
