package experiments

import (
	"fmt"
	"time"

	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

// Table1 reproduces the taxonomy of consistency semantics. It is
// documentation rather than measurement, included so cmd/repro covers
// every numbered table of the paper.
func Table1() (*Result, error) {
	return &Result{
		ID:    "table1",
		Title: "Table 1: Taxonomy of cache consistency semantics",
		Tables: []TableResult{{
			Name:    "taxonomy",
			Headers: []string{"Semantics", "Domain", "Type", "Example"},
			Rows: [][]string{
				{"Δt", "temporal", "individual", "object a is always within 5 time units of its server copy"},
				{"Mt", "temporal", "mutual", "objects a and b are never out-of-sync by more than 5 time units"},
				{"Δv", "value", "individual", "value of object a is within 2.5 of its server copy"},
				{"Mv", "value", "mutual", "difference in values of a and b is within 2.5 of the difference at the server"},
			},
		}},
	}, nil
}

// Table2 reproduces the temporal-domain workload characteristics: the
// synthetic news traces are generated and summarized exactly the way the
// paper's Table 2 reports its collected traces.
func Table2() (*Result, error) {
	paper := map[string]struct {
		updates int
		gap     string
	}{
		"cnn-fn":      {113, "26m"},
		"nyt-ap":      {233, "11.6m"},
		"nyt-reuters": {133, "20.3m"},
		"guardian":    {902, "4.9m"},
	}
	res := &Result{
		ID:    "table2",
		Title: "Table 2: Characteristics of trace workloads, temporal domain",
	}
	tbl := TableResult{
		Name:    "traces",
		Headers: []string{"Trace", "Duration", "Num. Updates (paper)", "Avg Update Gap (paper)"},
	}
	for _, tr := range tracegen.NewsPresets() {
		c := tr.Summarize()
		p := paper[tr.Name]
		tbl.Rows = append(tbl.Rows, []string{
			tr.Name,
			c.Duration.String(),
			fmt.Sprintf("%d (%d)", c.NumUpdates, p.updates),
			fmt.Sprintf("%s (%s)", formatMinutes(c.MeanGap), p.gap),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Synthetic stand-ins: update counts match the paper exactly by construction; mean gaps within a few percent.")
	return res, nil
}

// Table3 reproduces the value-domain workload characteristics (stock
// traces), mirroring the paper's Table 3.
func Table3() (*Result, error) {
	paper := map[string]struct {
		ticks    int
		min, max float64
	}{
		"att":   {653, 35.8, 36.5},
		"yahoo": {2204, 160.2, 171.2},
	}
	res := &Result{
		ID:    "table3",
		Title: "Table 3: Characteristics of trace workloads, value domain",
	}
	tbl := TableResult{
		Name:    "traces",
		Headers: []string{"Stock", "Duration", "Num. Updates (paper)", "Min Value (paper)", "Max Value (paper)"},
	}
	for _, tr := range tracegen.StockPresets() {
		c := tr.Summarize()
		p := paper[tr.Name]
		tbl.Rows = append(tbl.Rows, []string{
			tr.Name,
			c.Duration.String(),
			fmt.Sprintf("%d (%d)", c.NumUpdates, p.ticks),
			fmt.Sprintf("$%.2f ($%.1f)", c.MinValue, p.min),
			fmt.Sprintf("$%.2f ($%.1f)", c.MaxValue, p.max),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"Synthetic stand-ins: tick counts match exactly; prices confined to the paper's observed ranges.")
	return res, nil
}

func formatMinutes(d time.Duration) string {
	return fmt.Sprintf("%.1fm", d.Minutes())
}

// characteristicsOf is a small helper for tests.
func characteristicsOf(tr *trace.Trace) trace.Characteristics { return tr.Summarize() }
