package experiments

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/plot"
	"broadway/internal/stats"
	"broadway/internal/tracegen"
)

// Fig3Deltas is the Δ sweep of Figure 3 (the paper varies Δ from 1 to 60
// minutes).
var Fig3Deltas = []time.Duration{
	1 * time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
	15 * time.Minute, 20 * time.Minute, 30 * time.Minute, 40 * time.Minute,
	50 * time.Minute, 60 * time.Minute,
}

// Figure3 reproduces Fig. 3: LIMD vs the poll-every-Δ baseline on the
// CNN/FN trace — (a) number of polls, (b) fidelity by violations (Eq. 13),
// (c) fidelity by out-of-sync time (Eq. 14), each as a function of Δ.
func Figure3() (*Result, error) {
	tr := tracegen.CNNFN()

	var xs, limdPolls, basePolls, limdF13, baseF13, limdF14, baseF14 []float64
	for _, delta := range Fig3Deltas {
		delta := delta
		limd, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta,
			Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: delta}) },
		})
		if err != nil {
			return nil, fmt.Errorf("fig3: limd Δ=%v: %w", delta, err)
		}
		base, err := RunTemporal(TemporalScenario{
			Trace: tr, Delta: delta,
			Policy: func() core.Policy { return core.NewPeriodic(delta) },
		})
		if err != nil {
			return nil, fmt.Errorf("fig3: baseline Δ=%v: %w", delta, err)
		}
		xs = append(xs, delta.Minutes())
		limdPolls = append(limdPolls, float64(limd.Report.Polls))
		basePolls = append(basePolls, float64(base.Report.Polls))
		limdF13 = append(limdF13, limd.Report.FidelityByViolations)
		baseF13 = append(baseF13, base.Report.FidelityByViolations)
		limdF14 = append(limdF14, limd.Report.FidelityByTime)
		baseF14 = append(baseF14, base.Report.FidelityByTime)
	}

	res := &Result{
		ID:    "fig3",
		Title: "Figure 3: Efficacy of the LIMD algorithm (CNN/FN trace)",
		Charts: []*plot.Chart{
			{
				Title:  "Fig 3(a): Number of polls vs Δ",
				XLabel: "delta-consistency constraint (min)",
				YLabel: "number of polls",
				Series: []plot.Series{
					{Name: "LIMD", X: xs, Y: limdPolls},
					{Name: "Baseline", X: xs, Y: basePolls},
				},
			},
			{
				Title:  "Fig 3(b): Fidelity (violations) vs Δ",
				XLabel: "delta-consistency constraint (min)",
				YLabel: "fidelity (Eq. 13)",
				Series: []plot.Series{
					{Name: "LIMD", X: xs, Y: limdF13},
					{Name: "Baseline", X: xs, Y: baseF13},
				},
			},
			{
				Title:  "Fig 3(c): Fidelity (out-of-sync time) vs Δ",
				XLabel: "delta-consistency constraint (min)",
				YLabel: "fidelity (Eq. 14)",
				Series: []plot.Series{
					{Name: "LIMD", X: xs, Y: limdF14},
					{Name: "Baseline", X: xs, Y: baseF14},
				},
			},
		},
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("At Δ=1m: LIMD %d polls vs baseline %d (%.1fx reduction) at fidelity %.2f (paper: ~6x at ~0.8).",
			int(limdPolls[0]), int(basePolls[0]), basePolls[0]/limdPolls[0], limdF13[0]),
		fmt.Sprintf("At Δ=60m: LIMD fidelity %.2f approaches baseline 1.0 (paper: converges).", limdF13[len(limdF13)-1]),
	)
	return res, nil
}

// Fig4Delta is the Δt setting of Figure 4 (the paper uses 10 minutes).
const Fig4Delta = 10 * time.Minute

// Figure4 reproduces Fig. 4: the adaptive behavior of LIMD on the CNN/FN
// trace — (a) updates per two-hour window over time, (b) the TTR the
// algorithm computes over time (Δ = 10 min). The TTR series is recovered
// from the poll schedule itself: the gap between successive polls is the
// TTR in force.
func Figure4() (*Result, error) {
	tr := tracegen.CNNFN()

	// (a) Update frequency per two-hour window.
	counter := stats.NewWindowCounter(2 * time.Hour)
	for _, u := range tr.Updates {
		counter.Observe(u.At)
	}
	wTimes, wCounts := counter.Series()
	var ux, uy []float64
	for i := range wTimes {
		ux = append(ux, wTimes[i].Hours())
		uy = append(uy, float64(wCounts[i]))
	}

	// (b) TTR over time under LIMD.
	run, err := RunTemporal(TemporalScenario{
		Trace: tr, Delta: Fig4Delta,
		Policy: func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: Fig4Delta}) },
	})
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	var tx, ty []float64
	for i := 1; i < len(run.Log); i++ {
		ttr := run.Log[i].At.Sub(run.Log[i-1].At)
		tx = append(tx, run.Log[i].At.Duration().Hours())
		ty = append(ty, ttr.Minutes())
	}

	res := &Result{
		ID:    "fig4",
		Title: "Figure 4: Adaptive behavior of the LIMD approach (CNN/FN, Δ=10m)",
		Charts: []*plot.Chart{
			{
				Title:  "Fig 4(a): Updates per 2 hours",
				XLabel: "time (hours)",
				YLabel: "updates per 2h window",
				Series: []plot.Series{{Name: "updates", X: ux, Y: uy}},
			},
			{
				Title:  "Fig 4(b): Computed TTR over time",
				XLabel: "time (hours)",
				YLabel: "TTR (min)",
				Series: []plot.Series{{Name: "TTR", X: tx, Y: ty}},
			},
		},
	}

	maxTTR := 0.0
	for _, v := range ty {
		if v > maxTTR {
			maxTTR = v
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("TTR ramps to %.0fm (TTRmax=60m) during overnight quiet periods and collapses each morning (paper: same sawtooth).", maxTTR))
	return res, nil
}

// Fig5DeltasMutual is the δ sweep of Figure 5 (1 to 30 minutes).
var Fig5DeltasMutual = []time.Duration{
	1 * time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
	15 * time.Minute, 20 * time.Minute, 25 * time.Minute, 30 * time.Minute,
}

// Fig5DeltaIndividual is the per-object Δt of Figure 5 (10 minutes).
const Fig5DeltaIndividual = 10 * time.Minute

// Figure5 reproduces Fig. 5: mutual consistency in the temporal domain on
// the CNN/FN + NYT/AP pair — (a) number of polls and (b) fidelity versus
// the mutual tolerance δ, for the three approaches (baseline LIMD,
// triggered polls, rate heuristic).
func Figure5() (*Result, error) {
	trA, trB := tracegen.CNNFN(), tracegen.NYTAP()

	modes := []core.TriggerMode{core.TriggerNone, core.TriggerAll, core.TriggerFaster}
	names := map[core.TriggerMode]string{
		core.TriggerNone:   "Baseline LIMD",
		core.TriggerAll:    "LIMD with triggered polls",
		core.TriggerFaster: "LIMD with heuristic",
	}
	polls := map[core.TriggerMode][]float64{}
	fids := map[core.TriggerMode][]float64{}
	var xs []float64

	for _, deltaM := range Fig5DeltasMutual {
		xs = append(xs, deltaM.Minutes())
		for _, mode := range modes {
			run, err := RunMutualTemporal(MutualTemporalScenario{
				TraceA: trA, TraceB: trB,
				DeltaIndividual: Fig5DeltaIndividual,
				DeltaMutual:     deltaM,
				Mode:            mode,
			})
			if err != nil {
				return nil, fmt.Errorf("fig5: %v δ=%v: %w", mode, deltaM, err)
			}
			polls[mode] = append(polls[mode], float64(run.Report.Polls))
			fids[mode] = append(fids[mode], run.Report.FidelityBySync)
		}
	}

	mkSeries := func(data map[core.TriggerMode][]float64) []plot.Series {
		var out []plot.Series
		for _, mode := range modes {
			out = append(out, plot.Series{Name: names[mode], X: xs, Y: data[mode]})
		}
		return out
	}
	res := &Result{
		ID:    "fig5",
		Title: "Figure 5: Mutual consistency approaches, temporal domain (CNN/FN + NYT/AP, Δ=10m)",
		Charts: []*plot.Chart{
			{
				Title:  "Fig 5(a): Number of polls vs mutual δ",
				XLabel: "mutual consistency constraint (min)",
				YLabel: "number of polls",
				Series: mkSeries(polls),
			},
			{
				Title:  "Fig 5(b): Fidelity vs mutual δ",
				XLabel: "mutual consistency constraint (min)",
				YLabel: "fidelity (Eq. 13)",
				Series: mkSeries(fids),
			},
		},
	}

	// Headline comparisons at the tightest δ.
	base, trig, heur := polls[core.TriggerNone][0], polls[core.TriggerAll][0], polls[core.TriggerFaster][0]
	res.Notes = append(res.Notes,
		fmt.Sprintf("δ=1m polls: baseline %d, heuristic %d (+%.0f%%), triggered %d (+%.0f%%) — paper: heuristic <20%% over baseline.",
			int(base), int(heur), 100*(heur-base)/base, int(trig), 100*(trig-base)/base),
		fmt.Sprintf("Fidelity: triggered %.3f (paper: 1.0), heuristic %.3f (paper: 0.87–1), baseline %.3f (worst).",
			fids[core.TriggerAll][0], fids[core.TriggerFaster][0], fids[core.TriggerNone][0]),
	)
	return res, nil
}

// Fig6Delta and Fig6DeltaMutual parameterize Figure 6. The mutual
// tolerance is tight so the heuristic's triggering activity is clearly
// visible over time.
const (
	Fig6Delta       = 10 * time.Minute
	Fig6DeltaMutual = 1 * time.Minute
)

// Figure6 reproduces Fig. 6: the adaptivity of the heuristic on the
// NYT/AP + NYT/Reuters pair — (a) the ratio of the two objects' update
// frequencies per two-hour window, (b) the number of extra (triggered)
// polls per two-hour window.
func Figure6() (*Result, error) {
	trA, trB := tracegen.NYTAP(), tracegen.NYTReuters()

	run, err := RunMutualTemporal(MutualTemporalScenario{
		TraceA: trA, TraceB: trB,
		DeltaIndividual: Fig6Delta,
		DeltaMutual:     Fig6DeltaMutual,
		Mode:            core.TriggerFaster,
	})
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}

	horizon := trA.Duration
	if trB.Duration < horizon {
		horizon = trB.Duration
	}
	const window = 2 * time.Hour

	// (a) Ground-truth ratio of update frequencies per window.
	var rx, ry []float64
	for start := time.Duration(0); start+window <= horizon; start += window {
		a := len(trA.UpdatesIn(start, start+window))
		b := len(trB.UpdatesIn(start, start+window))
		if b == 0 {
			continue // ratio undefined in silent windows
		}
		rx = append(rx, (start + window/2).Hours())
		ry = append(ry, float64(a)/float64(b))
	}

	// (b) Extra (triggered) polls per window.
	counter := stats.NewWindowCounter(window)
	triggered := append(triggeredInstants(run.LogA), triggeredInstants(run.LogB)...)
	for _, at := range triggered {
		counter.Observe(at)
	}
	var ex, ey []float64
	if len(triggered) > 0 {
		ts, cs := counter.Series()
		for i := range ts {
			ex = append(ex, (ts[i] + window/2).Hours())
			ey = append(ey, float64(cs[i]))
		}
	}

	res := &Result{
		ID:    "fig6",
		Title: "Figure 6: Adaptive behavior of the mutual-consistency heuristic (NYT/AP + NYT/Reuters)",
		Charts: []*plot.Chart{
			{
				Title:  "Fig 6(a): Ratio of update frequencies over time",
				XLabel: "time (hours)",
				YLabel: "AP updates / Reuters updates (2h windows)",
				Series: []plot.Series{{Name: "ratio", X: rx, Y: ry}},
			},
			{
				Title:  "Fig 6(b): Extra (triggered) polls over time",
				XLabel: "time (hours)",
				YLabel: "triggered polls per 2h window",
				Series: []plot.Series{{Name: "extra polls", X: ex, Y: ey}},
			},
		},
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("Heuristic triggered %d extra polls over the run; triggering concentrates in windows where the rate ratio is near or above 1 (paper: same selectivity).",
			run.Report.TriggeredPolls))
	return res, nil
}

// triggeredInstants extracts the instants of controller-triggered polls
// from a refresh log.
func triggeredInstants(log []metrics.Refresh) []time.Duration {
	var out []time.Duration
	for _, r := range log {
		if r.Triggered {
			out = append(out, r.At.Duration())
		}
	}
	return out
}
