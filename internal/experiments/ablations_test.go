package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
)

func TestAblationLIMDParameters(t *testing.T) {
	res, err := AblationLIMDParameters()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The l sweep (rows 0..3, adaptive m): polls must fall and fidelity
	// must not rise as l grows (optimistic = fewer polls, lower
	// fidelity).
	prevPolls := 1 << 30
	prevFid := 2.0
	for i := 0; i < 4; i++ {
		polls, _ := strconv.Atoi(rows[i][2])
		fid, _ := strconv.ParseFloat(rows[i][3], 64)
		if polls > prevPolls {
			t.Errorf("row %d: polls %d rose with l", i, polls)
		}
		if fid > prevFid+1e-9 {
			t.Errorf("row %d: fidelity %v rose with l", i, fid)
		}
		prevPolls, prevFid = polls, fid
	}
}

func TestAblationHistoryExtension(t *testing.T) {
	res, err := AblationHistoryExtension()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	plain, _ := strconv.ParseFloat(rows[0][2], 64)
	inferred, _ := strconv.ParseFloat(rows[1][2], 64)
	history, _ := strconv.ParseFloat(rows[2][2], 64)
	// §5.1's claim: more violation visibility → better fidelity.
	if !(plain <= inferred && inferred <= history) {
		t.Errorf("fidelity ordering violated: plain=%v inferred=%v history=%v",
			plain, inferred, history)
	}
	if history <= plain {
		t.Error("the history extension must measurably improve fidelity")
	}
}

func TestAblationHeuristicTolerance(t *testing.T) {
	res, err := AblationHeuristicTolerance()
	if err != nil {
		t.Fatal(err)
	}
	fids := res.Charts[1].Series[0].Y
	// Looser tolerance (more triggering) must not reduce fidelity.
	for i := 1; i < len(fids); i++ {
		if fids[i] > fids[i-1]+1e-9 {
			t.Errorf("fidelity rose from tolerance point %d to %d: %v → %v",
				i-1, i, fids[i-1], fids[i])
		}
	}
	if fids[0] <= fids[len(fids)-1] {
		t.Error("the tolerance knob must have a measurable effect")
	}
}

func TestAblationPushVsPoll(t *testing.T) {
	res, err := AblationPushVsPoll()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		pushMsgs, _ := strconv.Atoi(row[1])
		tr, err := tracegen.ByName(row[0])
		if err != nil {
			t.Fatal(err)
		}
		// Push = exactly one message per update plus the initial
		// transfer.
		if pushMsgs != tr.NumUpdates()+1 {
			t.Errorf("%s: push msgs = %d, want %d", row[0], pushMsgs, tr.NumUpdates()+1)
		}
	}
	// For the fast Guardian trace, push must cost more messages than
	// the periodic poller — the paper's motivation for relaxing strong
	// consistency.
	guardian := rows[3]
	pushMsgs, _ := strconv.Atoi(guardian[1])
	periodic, _ := strconv.Atoi(guardian[4])
	if pushMsgs <= periodic {
		t.Errorf("guardian: push %d should exceed periodic %d", pushMsgs, periodic)
	}
}

func TestAblationGroupSize(t *testing.T) {
	res, err := AblationGroupSize()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 9 { // n ∈ {2,3,4} × 3 modes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row[1] != "triggered" {
			continue
		}
		fid, _ := strconv.ParseFloat(row[4], 64)
		if fid != 1 {
			t.Errorf("n=%s: triggered fidelity = %v, want exactly 1", row[0], fid)
		}
	}
	// Triggered polls grow with group size.
	var trig []int
	for _, row := range rows {
		if row[1] == "triggered" {
			v, _ := strconv.Atoi(row[3])
			trig = append(trig, v)
		}
	}
	for i := 1; i < len(trig); i++ {
		if trig[i] <= trig[i-1] {
			t.Errorf("triggered polls did not grow with n: %v", trig)
		}
	}
}

func TestRunMutualTemporalGroupValidation(t *testing.T) {
	if _, err := RunMutualTemporalGroup(GroupTemporalScenario{}); err == nil {
		t.Error("group of zero traces must fail")
	}
	if _, err := RunMutualTemporalGroup(GroupTemporalScenario{
		Traces: []*trace.Trace{tracegen.CNNFN()},
	}); err == nil {
		t.Error("group of one trace must fail")
	}
}

func TestGroupRunnerMatchesPairRunner(t *testing.T) {
	trA, trB := tracegen.CNNFN(), tracegen.NYTAP()
	pair, err := RunMutualTemporal(MutualTemporalScenario{
		TraceA: trA, TraceB: trB,
		DeltaIndividual: 10 * time.Minute,
		DeltaMutual:     5 * time.Minute,
		Mode:            core.TriggerAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	group, err := RunMutualTemporalGroup(GroupTemporalScenario{
		Traces:          []*trace.Trace{trA, trB},
		DeltaIndividual: 10 * time.Minute,
		DeltaMutual:     5 * time.Minute,
		Mode:            core.TriggerAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if group.Report.Polls != pair.Report.Polls {
		t.Errorf("polls: group %d pair %d", group.Report.Polls, pair.Report.Polls)
	}
	if group.Report.FidelityBySync != pair.Report.FidelityBySync {
		t.Errorf("fidelity: group %v pair %v",
			group.Report.FidelityBySync, pair.Report.FidelityBySync)
	}
}

func TestAblationClientWorkload(t *testing.T) {
	res, err := AblationClientWorkload()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Zipf skew: the first catalog object must receive the most requests.
	first, _ := strconv.Atoi(rows[0][1])
	last, _ := strconv.Atoi(rows[3][1])
	if first <= last {
		t.Errorf("popularity skew missing: first=%d last=%d", first, last)
	}
	// Every requested object must have been admitted and refreshed.
	for _, row := range rows {
		reqs, _ := strconv.Atoi(row[1])
		polls, _ := strconv.Atoi(row[2])
		if reqs > 0 && polls == 0 {
			t.Errorf("%s requested %d times but never polled", row[0], reqs)
		}
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "hit ratio") {
		t.Error("missing hit-ratio note")
	}
}

func TestAblationIndividualValue(t *testing.T) {
	res, err := AblationIndividualValue()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 8 { // 2 stocks × 4 Δv points
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		adPolls, _ := strconv.Atoi(row[2])
		adFid, _ := strconv.ParseFloat(row[3], 64)
		perPolls, _ := strconv.Atoi(row[4])
		perFid, _ := strconv.ParseFloat(row[5], 64)
		// The adaptive policy must poll less than the floor poller.
		if adPolls >= perPolls {
			t.Errorf("%s Δv=%s: adaptive %d >= periodic %d", row[0], row[1], adPolls, perPolls)
		}
		// The floor poller tracks at least as faithfully as the
		// adaptive policy at the same Δv. (It is not perfect: a single
		// tick can exceed a tight Δv and violate until the next poll.)
		if perFid < adFid-0.02 {
			t.Errorf("%s Δv=%s: periodic fidelity %v below adaptive %v", row[0], row[1], perFid, adFid)
		}
	}
	// Looser Δv must cost the adaptive policy fewer polls (per stock).
	for _, stockRows := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		prev := 1 << 30
		for _, i := range stockRows {
			polls, _ := strconv.Atoi(rows[i][2])
			if polls > prev {
				t.Errorf("row %d: adaptive polls rose with Δv", i)
			}
			prev = polls
		}
	}
}

func TestAblationLatency(t *testing.T) {
	res, err := AblationLatency()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, _ := strconv.Atoi(rows[0][2])
	for _, row := range rows {
		polls, _ := strconv.Atoi(row[2])
		if polls < base*9/10 || polls > base*11/10 {
			t.Errorf("latency %s: polls %d deviates >10%% from baseline %d", row[0], polls, base)
		}
		fid, _ := strconv.ParseFloat(row[3], 64)
		baseFid, _ := strconv.ParseFloat(rows[0][3], 64)
		if fid < baseFid-0.05 {
			t.Errorf("latency %s: fidelity %v dropped vs %v", row[0], fid, baseFid)
		}
	}
}
