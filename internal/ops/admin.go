package ops

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// EvictResult is the /admin/evict response body.
type EvictResult struct {
	Key     string `json:"key"`
	Evicted bool   `json:"evicted"`
}

// KillStreamsResult is the /admin/kill-streams response body, reporting
// which stream sets the call could reach on this node.
type KillStreamsResult struct {
	RelayKilled  bool `json:"relay_killed"`
	OriginKilled bool `json:"origin_killed"`
}

// StatsDump is the /admin/stats response body: every stats struct the
// node exposes, verbatim JSON. Sections for absent components are
// omitted.
type StatsDump struct {
	Cache    *webproxy.CacheStats     `json:"cache,omitempty"`
	Upstream *webproxy.UpstreamStatus `json:"upstream,omitempty"`
	Push     *webproxy.PushStats      `json:"push,omitempty"`
	Relay    *webproxy.RelayStats     `json:"relay,omitempty"`
	Origin   *webserver.OriginStats   `json:"origin,omitempty"`
}

// serveAdmin routes the (already authorized) admin API.
func (h *Handler) serveAdmin(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/admin/pprof" || strings.HasPrefix(r.URL.Path, "/admin/pprof/") {
		h.adminPprof(w, r)
		return
	}
	switch r.URL.Path {
	case "/admin/evict":
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		h.adminEvict(w, r)
	case "/admin/kill-streams":
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		h.adminKillStreams(w, r)
	case "/admin/tolerance":
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		h.adminTolerance(w, r)
	case "/admin/stats":
		if !allowReadMethods(w, r) {
			return
		}
		h.adminStats(w, r)
	default:
		http.NotFound(w, r)
	}
}

// requireMethod admits exactly one method, answering everything else
// with a conformant 405.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// adminPprof serves the runtime profiles under /admin/pprof/ — behind
// the same bearer token as the rest of the admin API and deliberately
// OFF the unauthenticated scrape paths (/metrics, /healthz), so the
// contention and allocation claims the hub benchmarks make are
// verifiable against a production process without exposing goroutine
// dumps to anything that can scrape it. The handlers come from
// net/http/pprof but are routed here explicitly; nothing in the process
// serves http.DefaultServeMux, so the import's side-effect
// registrations are inert.
func (h *Handler) adminPprof(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/admin/pprof")
	name = strings.TrimPrefix(name, "/")
	switch name {
	case "":
		// pprof.Index resolves profile names against the /debug/pprof/
		// prefix it was written for; hand it the path shape it expects.
		// Its index links are relative, so they resolve under this
		// prefix too.
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/debug/pprof/"
		pprof.Index(w, r2)
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Handler(name).ServeHTTP(w, r)
	}
}

// adminEvict drops one cached object by key, mirroring Proxy.Evict: the
// next request re-fetches from upstream. A key resident in neither tier
// answers 404 (still JSON), so an operator can tell a typo from a real
// eviction.
func (h *Handler) adminEvict(w http.ResponseWriter, r *http.Request) {
	p := h.cfg.Proxy
	if p == nil {
		http.Error(w, "no proxy on this node", http.StatusUnprocessableEntity)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	code := http.StatusOK
	evicted := p.Evict(key)
	if !evicted {
		code = http.StatusNotFound
	}
	writeJSON(w, code, EvictResult{Key: key, Evicted: evicted})
}

// adminTolerance applies a runtime Δ/Δv override to one resident
// object: POST /admin/tolerance?key=<key>&dt=<duration>&dv=<float>.
// dt is the time tolerance (Go duration syntax, e.g. 30s); dv the
// value tolerance; either may be omitted to leave that bound alone,
// but at least one must be supplied. The override is journaled through
// the disk tier (a restart rehydrates it) and the next origin response
// carrying tolerance directives supersedes it.
func (h *Handler) adminTolerance(w http.ResponseWriter, r *http.Request) {
	p := h.cfg.Proxy
	if p == nil {
		http.Error(w, "no proxy on this node", http.StatusUnprocessableEntity)
		return
	}
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	var dt time.Duration
	if s := q.Get("dt"); s != "" {
		v, err := time.ParseDuration(s)
		if err != nil || v <= 0 {
			http.Error(w, "dt must be a positive duration", http.StatusBadRequest)
			return
		}
		dt = v
	}
	var dv float64
	if s := q.Get("dv"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			http.Error(w, "dv must be a positive number", http.StatusBadRequest)
			return
		}
		dv = v
	}
	if dt == 0 && dv == 0 {
		http.Error(w, "supply dt and/or dv", http.StatusBadRequest)
		return
	}
	res, ok := p.OverrideTolerance(key, dt, dv)
	if !ok {
		writeJSON(w, http.StatusNotFound, webproxy.ToleranceOverride{Key: key})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// adminKillStreams severs every push stream this node owns — the relay
// hub's downstream subscribers and/or the origin hub's — without
// disabling the endpoints, so clients reconnect and resume. It is the
// operational form of the chaos tests' transient network cut.
func (h *Handler) adminKillStreams(w http.ResponseWriter, r *http.Request) {
	res := KillStreamsResult{}
	if p := h.cfg.Proxy; p != nil && p.RelayStats().Enabled {
		p.KillRelayStreams()
		res.RelayKilled = true
	}
	if o := h.cfg.Origin; o != nil && o.Stats().PushEnabled {
		o.KillPushStreams()
		res.OriginKilled = true
	}
	writeJSON(w, http.StatusOK, res)
}

// adminStats dumps every stats struct as JSON — the machine-readable
// sibling of /metrics, with nothing flattened away.
func (h *Handler) adminStats(w http.ResponseWriter, r *http.Request) {
	dump := StatsDump{}
	if p := h.cfg.Proxy; p != nil {
		cs, us, ps, rs := p.CacheStats(), p.UpstreamStatus(), p.PushStats(), p.RelayStats()
		dump.Cache = &cs
		dump.Upstream = &us
		dump.Push = &ps
		dump.Relay = &rs
	}
	if o := h.cfg.Origin; o != nil {
		os := o.Stats()
		dump.Origin = &os
	}
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		return
	}
	writeJSON(w, http.StatusOK, dump)
}

// writeJSON renders v as indented JSON with the right headers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
