package ops

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/push"
	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// This file holds the PR's acceptance criterion: EVERY field of
// CacheStats, UpstreamStatus, PushStats, RelayStats, OriginStats, and
// HubStats must be exported on /metrics under a stable name. The
// expectation tables below are the name contract; the reflection walk
// in crossCheckStruct fails the test the moment a stats struct grows a
// field that has no table entry, so the exposition can never silently
// fall behind the structs.

// seriesCheck is one scrape assertion derived from a struct field.
type seriesCheck struct {
	series string
	want   float64
}

// fieldExpectation maps one struct field to its scrape assertions.
// Nested holds a sub-struct's own table (HubStats inside RelayStats and
// OriginStats).
type fieldExpectation struct {
	checks []seriesCheck
	nested map[string]fieldExpectation
}

func one(name string, want float64, labels ...Label) fieldExpectation {
	return fieldExpectation{checks: []seriesCheck{{SeriesKey(name, labels...), want}}}
}

// crossCheckStruct walks v's exported fields: each must have a table
// entry, and each entry's assertions must hold in the scrape.
func crossCheckStruct(t *testing.T, sc *Scrape, structName string, v any, exp map[string]fieldExpectation) {
	t.Helper()
	rv := reflect.ValueOf(v)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		fe, ok := exp[name]
		if !ok {
			t.Errorf("%s.%s has no /metrics mapping — new stats fields must be exported (see internal/ops/metrics.go)", structName, name)
			continue
		}
		if fe.nested != nil {
			crossCheckStruct(t, sc, structName+"."+name, rv.Field(i).Interface(), fe.nested)
			continue
		}
		for _, c := range fe.checks {
			got, present := sc.Values[c.series]
			if !present {
				t.Errorf("%s.%s: series %s missing from scrape", structName, name, c.series)
				continue
			}
			if got != c.want {
				t.Errorf("%s.%s: %s = %v, scrape disagrees with struct value %v", structName, name, c.series, got, c.want)
			}
		}
	}
}

func hubExpectations(hs push.HubStats, which string) map[string]fieldExpectation {
	l := Label{"hub", which}
	var lagSum float64
	for _, v := range hs.Lags {
		lagSum += float64(v)
	}
	// Every resident partition must surface its byte share under its own
	// partition label, alongside the partition-count gauge.
	partChecks := []seriesCheck{
		{SeriesKey("broadway_hub_ring_partitions", l), float64(len(hs.Partitions))},
	}
	for _, p := range hs.Partitions {
		partChecks = append(partChecks, seriesCheck{
			SeriesKey("broadway_hub_ring_bytes", l, Label{"partition", p.Name}), float64(p.Bytes)})
	}
	return map[string]fieldExpectation{
		"Seq":           one("broadway_hub_seq", float64(hs.Seq), l),
		"Subscribers":   one("broadway_hub_subscribers", float64(hs.Subscribers), l),
		"ActiveStreams": one("broadway_hub_active_streams", float64(hs.ActiveStreams), l),
		"ReplayLen":     one("broadway_hub_replay_events", float64(hs.ReplayLen), l),
		"ReplayCap":     one("broadway_hub_replay_events_cap", float64(hs.ReplayCap), l),
		"ReplayBytes":   one("broadway_hub_replay_bytes", float64(hs.ReplayBytes), l),
		"ReplayByteCap": one("broadway_hub_replay_bytes_cap", float64(hs.ReplayByteCap), l),
		"Partitions":    {checks: partChecks},
		"PublishWait":   one("broadway_hub_publish_wait_seconds", hs.PublishWait.Seconds(), l),
		"Oversized":     one("broadway_hub_oversized_total", float64(hs.Oversized), l),
		"Degraded":      one("broadway_hub_degraded_total", float64(hs.Degraded), l),
		"Resets":        one("broadway_hub_resets_total", float64(hs.Resets), l),
		"ResumeHoles":   one("broadway_hub_resume_holes_total", float64(hs.ResumeHoles), l),
		"SlowKills":     one("broadway_hub_slow_kills_total", float64(hs.SlowKills), l),
		"Filtered":      one("broadway_hub_filtered_total", float64(hs.Filtered), l),
		"DeltaFrames":   one("broadway_hub_delta_frames_total", float64(hs.DeltaFrames), l),
		"ChunkFrames":   one("broadway_hub_chunk_frames_total", float64(hs.ChunkFrames), l),
		"Available":     one("broadway_hub_available", boolVal(hs.Available), l),
		"MaxLag":        one("broadway_hub_max_lag", float64(hs.MaxLag), l),
		"Lags": {checks: []seriesCheck{
			{SeriesKey("broadway_hub_subscriber_lag_count", l), float64(len(hs.Lags))},
			{SeriesKey("broadway_hub_subscriber_lag_sum", l), lagSum},
		}},
	}
}

func proxyExpectations(cs webproxy.CacheStats, us webproxy.UpstreamStatus, ps webproxy.PushStats, rs webproxy.RelayStats) (cache, upstream, pushExp, relay map[string]fieldExpectation) {
	cache = map[string]fieldExpectation{
		"Hits":            one("broadway_cache_hits_total", float64(cs.Hits)),
		"Misses":          one("broadway_cache_misses_total", float64(cs.Misses)),
		"Evictions":       one("broadway_cache_evictions_total", float64(cs.Evictions)),
		"Capped":          one("broadway_cache_capped_total", float64(cs.Capped)),
		"ResidentObjects": one("broadway_cache_resident_objects", float64(cs.ResidentObjects)),
		"ResidentBytes":   one("broadway_cache_resident_bytes", float64(cs.ResidentBytes)),
		"UpstreamErrors":  one("broadway_upstream_errors_total", float64(cs.UpstreamErrors)),
		// The CacheStats.Push* fields read the same atomics as PushStats;
		// they share one series each rather than being exported twice.
		"PushConnected": one("broadway_push_connected", boolVal(cs.PushConnected)),
		"PushEvents":    one("broadway_push_events_total", float64(cs.PushEvents)),
		"PushPolls":     one("broadway_push_polls_total", float64(cs.PushPolls)),
		"PushFallbacks": one("broadway_push_fallbacks_total", float64(cs.PushFallbacks)),

		"ToleranceOverrides": one("broadway_cache_tolerance_overrides_total", float64(cs.ToleranceOverrides)),
	}
	upstream = map[string]fieldExpectation{
		"Errors": one("broadway_upstream_errors_total", float64(us.Errors)),
		// The error string is operator detail for /healthz and
		// /admin/stats; a metric label would explode cardinality.
		"LastError":   {checks: nil},
		"LastErrorAt": one("broadway_upstream_last_error_timestamp_seconds", timestampSeconds(us.LastErrorAt)),
		"LastOKAt":    one("broadway_upstream_last_ok_timestamp_seconds", timestampSeconds(us.LastOKAt)),
	}
	pushExp = map[string]fieldExpectation{
		"Enabled":          one("broadway_push_enabled", boolVal(ps.Enabled)),
		"Connected":        one("broadway_push_connected", boolVal(ps.Connected)),
		"Events":           one("broadway_push_events_total", float64(ps.Events)),
		"Polls":            one("broadway_push_polls_total", float64(ps.Polls)),
		"Dropped":          one("broadway_push_dropped_total", float64(ps.Dropped)),
		"ValueApplied":     one("broadway_push_value_applied_total", float64(ps.ValueApplied)),
		"ValueFallbacks":   one("broadway_push_value_fallbacks_total", float64(ps.ValueFallbacks)),
		"DeltaApplied":     one("broadway_push_delta_applied_total", float64(ps.DeltaApplied)),
		"DeltaBaseMisses":  one("broadway_push_delta_base_misses_total", float64(ps.DeltaBaseMisses)),
		"DeltaRebased":     one("broadway_push_delta_rebased_total", float64(ps.DeltaRebased)),
		"DiskApplied":      one("broadway_push_disk_applied_total", float64(ps.DiskApplied)),
		"ChunksAssembled":  one("broadway_push_chunks_assembled_total", float64(ps.ChunksAssembled)),
		"ChunksBroken":     one("broadway_push_chunks_broken_total", float64(ps.ChunksBroken)),
		"Fallbacks":        one("broadway_push_fallbacks_total", float64(ps.Fallbacks)),
		"Connects":         one("broadway_push_connects_total", float64(ps.Connects)),
		"Bounces":          one("broadway_push_bounces_total", float64(ps.Bounces)),
		"Resets":           one("broadway_push_stream_resets_total", float64(ps.Resets)),
		"SkippedFrames":    one("broadway_push_skipped_frames_total", float64(ps.SkippedFrames)),
		"LastSeq":          one("broadway_push_last_seq", float64(ps.LastSeq)),
		"LastFrameAt":      one("broadway_push_last_frame_timestamp_seconds", timestampSeconds(ps.LastFrameAt)),
		"HeartbeatTimeout": one("broadway_push_heartbeat_timeout_seconds", ps.HeartbeatTimeout.Seconds()),
	}
	relay = map[string]fieldExpectation{
		"Enabled": one("broadway_relay_enabled", boolVal(rs.Enabled)),
		"Path":    one("broadway_relay_info", 1, Label{"path", rs.Path}),
		"Hub":     {nested: hubExpectations(rs.Hub, HubRelay)},
	}
	return cache, upstream, pushExp, relay
}

func diskExpectations(ds webproxy.DiskStats) map[string]fieldExpectation {
	return map[string]fieldExpectation{
		"Enabled":       one("broadway_disk_enabled", boolVal(ds.Enabled)),
		"Records":       one("broadway_disk_records", float64(ds.Records)),
		"Bytes":         one("broadway_disk_bytes", float64(ds.Bytes)),
		"PendingWrites": one("broadway_disk_pending_writes", float64(ds.PendingWrites)),
		"Writes":        one("broadway_disk_writes_total", float64(ds.Writes)),
		"WriteErrors":   one("broadway_disk_write_errors_total", float64(ds.WriteErrors)),
		"Deletes":       one("broadway_disk_deletes_total", float64(ds.Deletes)),
		"Evictions":     one("broadway_disk_evictions_total", float64(ds.Evictions)),
		"Demotions":     one("broadway_disk_demotions_total", float64(ds.Demotions)),
		"Promotions":    one("broadway_disk_promotions_total", float64(ds.Promotions)),
		"Rehydrated":    one("broadway_disk_rehydrated_total", float64(ds.Rehydrated)),
		"GraceServes":   one("broadway_disk_grace_serves_total", float64(ds.GraceServes)),
	}
}

func originExpectations(os webserver.OriginStats) map[string]fieldExpectation {
	return map[string]fieldExpectation{
		"Objects":     one("broadway_origin_objects", float64(os.Objects)),
		"Polls":       one("broadway_origin_polls_total", float64(os.Polls)),
		"NotModified": one("broadway_origin_not_modified_total", float64(os.NotModified)),
		"PushEnabled": one("broadway_origin_push_enabled", boolVal(os.PushEnabled)),
		"Hub":         {nested: hubExpectations(os.Hub, HubOrigin)},
	}
}

// TestMetricsCrossCheckAgainstStructs runs a live origin → root → mid →
// leaf hierarchy through churn, a kill/revive cycle, and more churn,
// then freezes each node (closing leafward-first so upstream hubs
// quiesce) and cross-checks every node's scrape against its in-process
// stats structs, field by field.
func TestMetricsCrossCheckAgainstStructs(t *testing.T) {
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)
	origin.Set("/a", []byte("a1"), "")
	origin.Set("/b", []byte("b1"), "")

	newNode := func(upstream string, relay bool) (*webproxy.Proxy, *httptest.Server) {
		t.Helper()
		up, err := url.Parse(upstream)
		if err != nil {
			t.Fatal(err)
		}
		pushURL, _ := url.Parse(upstream + "/events")
		cfg := webproxy.Config{
			Origin:               up,
			PushURL:              pushURL,
			PushBackoffMin:       5 * time.Millisecond,
			PushBackoffMax:       50 * time.Millisecond,
			PushHeartbeatTimeout: 200 * time.Millisecond,
			Bounds:               core.TTRBounds{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond},
			DefaultDelta:         50 * time.Millisecond,
			RelayEvents:          relay,
			RelayHeartbeat:       25 * time.Millisecond,
		}
		px, err := webproxy.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		px.Start()
		srv := httptest.NewServer(px)
		t.Cleanup(srv.Close)
		return px, srv
	}
	root, rootSrv := newNode(originSrv.URL, true)
	mid, midSrv := newNode(rootSrv.URL, true)
	leaf, leafSrv := newNode(midSrv.URL, false)
	for _, px := range []*webproxy.Proxy{root, mid, leaf} {
		if !waitFor(t, 3*time.Second, func() bool { return px.PushStats().Connected }) {
			t.Fatal("hierarchy never connected")
		}
	}

	get := func(srv *httptest.Server, path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Phase 1: warm the whole chain and churn so events flow end to end.
	get(leafSrv, "/a")
	get(leafSrv, "/b")
	get(leafSrv, "/a") // a leaf hit
	origin.Set("/a", []byte("a2"), "")
	waitFor(t, 3*time.Second, func() bool { return leaf.PushStats().Events >= 1 })

	// Phase 2: kill and revive the origin's event endpoint; the outage
	// cascades down and every node reconnects on revival.
	origin.SetPushAvailable(false)
	waitFor(t, 3*time.Second, func() bool { return !root.PushStats().Connected })
	origin.SetPushAvailable(true)
	for _, px := range []*webproxy.Proxy{root, mid, leaf} {
		if !waitFor(t, 5*time.Second, func() bool { return px.PushStats().Connected }) {
			t.Fatal("hierarchy never reconnected after revive")
		}
	}
	origin.Set("/b", []byte("b2"), "")
	waitFor(t, 3*time.Second, func() bool { return leaf.PushStats().Events >= 2 })

	// Freeze leafward-first: closing a node ends its upstream stream, so
	// by the time a node is scraped nothing is mutating its stats. (A
	// live node's heartbeats advance LastFrameAt between the struct
	// snapshot and the scrape; frozen nodes make the comparison exact.)
	leaf.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		hs := mid.RelayStats().Hub
		return hs.Subscribers == 0 && hs.ActiveStreams == 0
	}) {
		t.Fatal("mid relay hub never quiesced after leaf close")
	}
	mid.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		hs := root.RelayStats().Hub
		return hs.Subscribers == 0 && hs.ActiveStreams == 0
	}) {
		t.Fatal("root relay hub never quiesced after mid close")
	}
	root.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		hs := origin.Stats().Hub
		return hs.Subscribers == 0 && hs.ActiveStreams == 0
	}) {
		t.Fatal("origin hub never quiesced after root close")
	}

	scrapeHandler := func(h *Handler) *Scrape {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics = %d", rec.Code)
		}
		sc, err := ParseExposition(rec.Body)
		if err != nil {
			t.Fatalf("scrape unparseable: %v", err)
		}
		return sc
	}

	for _, node := range []struct {
		name string
		px   *webproxy.Proxy
	}{{"root", root}, {"mid", mid}, {"leaf", leaf}} {
		h, err := NewHandler(Config{Proxy: node.px})
		if err != nil {
			t.Fatal(err)
		}
		cs, us, ps, rs := node.px.CacheStats(), node.px.UpstreamStatus(), node.px.PushStats(), node.px.RelayStats()
		ds := node.px.DiskStats()
		sc := scrapeHandler(h)
		cacheExp, upExp, pushExp, relayExp := proxyExpectations(cs, us, ps, rs)
		crossCheckStruct(t, sc, node.name+".CacheStats", cs, cacheExp)
		crossCheckStruct(t, sc, node.name+".UpstreamStatus", us, upExp)
		crossCheckStruct(t, sc, node.name+".PushStats", ps, pushExp)
		crossCheckStruct(t, sc, node.name+".RelayStats", rs, relayExp)
		crossCheckStruct(t, sc, node.name+".DiskStats", ds, diskExpectations(ds))
	}

	oh, err := NewHandler(Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	os := origin.Stats()
	sc := scrapeHandler(oh)
	crossCheckStruct(t, sc, "origin.OriginStats", os, originExpectations(os))

	// The run must actually have exercised the interesting paths, or the
	// cross-check proves less than it claims.
	// The root is the node that lost its upstream and fell back; the
	// leaf's own stream (to mid) stayed up, so it sees the outage as
	// relayed events, not a disconnect.
	if leaf.PushStats().Events < 2 || root.PushStats().Fallbacks < 1 {
		t.Errorf("leaf Events=%d root Fallbacks=%d; the kill/revive run did not exercise the chain",
			leaf.PushStats().Events, root.PushStats().Fallbacks)
	}
	if root.CacheStats().Misses == 0 || root.CacheStats().UpstreamErrors != 0 {
		t.Errorf("root stats %+v look untouched", root.CacheStats())
	}
}
