package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// waitFor polls cond every few milliseconds until it holds or the
// timeout expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// opsSetup is an origin → proxy pair with an ops handler over both,
// wired like a single edge node.
type opsSetup struct {
	origin    *webserver.Origin
	originSrv *httptest.Server
	proxy     *webproxy.Proxy
	proxySrv  *httptest.Server
	handler   *Handler
}

func newOpsSetup(t *testing.T, cfg webproxy.Config, push bool, token string) *opsSetup {
	t.Helper()
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Origin = originURL
	if push {
		pushURL, _ := url.Parse(originSrv.URL + "/events")
		cfg.PushURL = pushURL
	}
	if cfg.PushBackoffMin == 0 {
		cfg.PushBackoffMin = 5 * time.Millisecond
	}
	if cfg.PushBackoffMax == 0 {
		cfg.PushBackoffMax = 50 * time.Millisecond
	}
	if cfg.PushHeartbeatTimeout == 0 {
		cfg.PushHeartbeatTimeout = 200 * time.Millisecond
	}
	if cfg.Bounds == (core.TTRBounds{}) {
		cfg.Bounds = core.TTRBounds{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond}
	}
	if cfg.DefaultDelta == 0 {
		cfg.DefaultDelta = 50 * time.Millisecond
	}
	px, err := webproxy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	t.Cleanup(px.Close)
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)

	h, err := NewHandler(Config{Proxy: px, Origin: origin, Token: token})
	if err != nil {
		t.Fatal(err)
	}
	s := &opsSetup{origin: origin, originSrv: originSrv, proxy: px, proxySrv: proxySrv, handler: h}
	if push && !waitFor(t, 3*time.Second, func() bool { return px.PushStats().Connected }) {
		t.Fatal("push channel never connected")
	}
	return s
}

func (s *opsSetup) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(s.proxySrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s (%s)", path, resp.Status, body)
	}
	return string(body)
}

// do drives the ops handler directly (no listener needed).
func (s *opsSetup) do(method, target string, header http.Header) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, nil)
	for k, vs := range header {
		req.Header[k] = vs
	}
	rec := httptest.NewRecorder()
	s.handler.ServeHTTP(rec, req)
	return rec
}

func (s *opsSetup) scrape(t *testing.T) *Scrape {
	t.Helper()
	rec := s.do(http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	sc, err := ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	return sc
}

// TestMetricsMonotoneAcrossKillRevive is satellite coverage for the
// scrape itself: every scrape across a kill/revive cycle parses under
// the strict rules, and no counter-typed series ever decreases.
func TestMetricsMonotoneAcrossKillRevive(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, true, "")
	s.origin.Set("/a", []byte("a1"), "")
	s.origin.Set("/b", []byte("b1"), "")
	s.get(t, "/a")
	s.get(t, "/b")

	prev := s.scrape(t)
	step := func(name string) {
		t.Helper()
		cur := s.scrape(t)
		for key, was := range prev.Values {
			family := key
			if i := strings.IndexByte(key, '{'); i >= 0 {
				family = key[:i]
			}
			if cur.Types[family] != "counter" {
				continue
			}
			now, ok := cur.Values[key]
			if !ok {
				t.Errorf("%s: counter series %s disappeared", name, key)
				continue
			}
			if now < was {
				t.Errorf("%s: counter %s went backwards: %v -> %v", name, key, was, now)
			}
		}
		prev = cur
	}

	s.origin.Set("/a", []byte("a2"), "")
	waitFor(t, 2*time.Second, func() bool { return s.proxy.PushStats().Events >= 1 })
	step("after churn")

	s.origin.SetPushAvailable(false)
	waitFor(t, 2*time.Second, func() bool { return !s.proxy.PushStats().Connected })
	step("after kill")

	s.origin.SetPushAvailable(true)
	waitFor(t, 2*time.Second, func() bool { return s.proxy.PushStats().Connected })
	s.origin.Set("/b", []byte("b2"), "")
	waitFor(t, 2*time.Second, func() bool { return s.proxy.PushStats().Events >= 2 })
	step("after revive")

	// The cycle must be visible in the scrape: at least one fallback and
	// at least two connects.
	if v, _ := prev.Value("broadway_push_fallbacks_total"); v < 1 {
		t.Errorf("fallbacks after kill = %v, want >= 1", v)
	}
	if v, _ := prev.Value("broadway_push_connects_total"); v < 2 {
		t.Errorf("connects after revive = %v, want >= 2", v)
	}
}

// TestHealthzFlipsDegradedOnPushLoss: /healthz reports ok while the
// channel is healthy and flips to 503/degraded as soon as the origin
// withdraws the event endpoint — within one heartbeat, not one TTR.
func TestHealthzFlipsDegradedOnPushLoss(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, true, "")
	s.origin.Set("/a", []byte("a1"), "")
	s.get(t, "/a")

	rec := s.do(http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d (%s)", rec.Code, rec.Body)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Status != StatusOK || h.Push == nil || h.Push.Status != StatusOK {
		t.Fatalf("healthy state = %+v", h)
	}

	// The overall status may degrade first via the origin-hub check (the
	// endpoint is withdrawn immediately); the proxy's own push check must
	// follow as soon as its stream dies.
	s.origin.SetPushAvailable(false)
	flipped := waitFor(t, 2*time.Second, func() bool {
		rec := s.do(http.MethodGet, "/healthz", nil)
		if rec.Code != http.StatusServiceUnavailable {
			return false
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			return false
		}
		return h.Status == StatusDegraded && h.Push != nil &&
			h.Push.Status == StatusDegraded && !h.Push.Connected
	})
	if !flipped {
		t.Fatalf("push check never degraded after SetPushAvailable(false); last state %+v", h)
	}

	s.origin.SetPushAvailable(true)
	recovered := waitFor(t, 2*time.Second, func() bool {
		return s.do(http.MethodGet, "/healthz", nil).Code == http.StatusOK
	})
	if !recovered {
		t.Fatal("/healthz never recovered after revive")
	}
}

// TestHealthzReportsUpstreamDegraded: a failing upstream turns the
// upstream check degraded, and the error detail lives here (the
// operator surface), with a recovery flipping it back.
func TestHealthzReportsUpstreamDegraded(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "")
	s.origin.Set("/a", []byte("a1"), "")
	s.get(t, "/a")
	if rec := s.do(http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz with healthy upstream = %d", rec.Code)
	}

	// Kill the origin listener: the next miss fails its upstream fetch.
	s.originSrv.CloseClientConnections()
	s.originSrv.Close()
	resp, err := http.Get(s.proxySrv.URL + "/never-cached")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("miss against dead origin = %d", resp.StatusCode)
	}
	// Satellite 2: the client body stays generic; the detail is internal.
	if strings.Contains(string(body), "connection refused") {
		t.Errorf("502 body leaks upstream error detail: %q", body)
	}

	rec := s.do(http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after upstream failure = %d (%s)", rec.Code, rec.Body)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Upstream == nil || h.Upstream.Status != StatusDegraded {
		t.Fatalf("upstream check = %+v", h.Upstream)
	}
	if h.Upstream.Errors == 0 || h.Upstream.LastError == "" {
		t.Errorf("upstream detail missing from operator surface: %+v", h.Upstream)
	}
}

// TestAdminEvictMirrorsProxyEvict is the satellite-4 evict battery: an
// admin evict behaves exactly like Proxy.Evict — the re-request after it
// costs exactly one origin fetch.
func TestAdminEvictMirrorsProxyEvict(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "")
	s.origin.Set("/obj", []byte("v1"), "")
	s.get(t, "/obj") // admit: one origin poll
	s.get(t, "/obj") // hit: zero polls
	base := s.origin.Polls()

	rec := s.do(http.MethodPost, "/admin/evict?key=/obj", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/admin/evict = %d (%s)", rec.Code, rec.Body)
	}
	var res EvictResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Evicted || res.Key != "/obj" {
		t.Fatalf("evict result = %+v", res)
	}

	s.get(t, "/obj")
	if polls := s.origin.Polls(); polls != base+1 {
		t.Errorf("re-request after evict cost %d origin fetches, want exactly 1", polls-base)
	}

	// Evicting a non-resident key reports false rather than erroring.
	rec = s.do(http.MethodPost, "/admin/evict?key=/obj", nil)
	// The re-request above re-admitted /obj, so evict again first.
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || !res.Evicted {
		t.Fatalf("second evict = %v %+v", err, res)
	}
	rec = s.do(http.MethodPost, "/admin/evict?key=/obj", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("evict of non-resident key = %d, want 404 so operators can tell a typo from an evict", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Evicted || res.Key != "/obj" {
		t.Fatalf("evict of non-resident key: body = %q (err %v), want JSON EvictResult", rec.Body, err)
	}

	if rec := s.do(http.MethodPost, "/admin/evict", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("evict without key = %d, want 400", rec.Code)
	}
}

// TestAdminAuth is the satellite-4 auth battery: tokenless and
// wrong-token admin calls are refused with 401 and 403, while /metrics
// and /healthz stay open.
func TestAdminAuth(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "open-sesame")

	if rec := s.do(http.MethodGet, "/metrics", nil); rec.Code != http.StatusOK {
		t.Errorf("tokenless /metrics = %d, must never be gated", rec.Code)
	}
	if rec := s.do(http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("tokenless /healthz = %d, must never be gated", rec.Code)
	}

	rec := s.do(http.MethodGet, "/admin/stats", nil)
	if rec.Code != http.StatusUnauthorized {
		t.Errorf("tokenless admin = %d, want 401", rec.Code)
	}
	if rec.Header().Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate challenge")
	}
	rec = s.do(http.MethodGet, "/admin/stats", http.Header{"Authorization": {"Basic abc"}})
	if rec.Code != http.StatusUnauthorized {
		t.Errorf("non-bearer admin = %d, want 401", rec.Code)
	}
	rec = s.do(http.MethodGet, "/admin/stats", http.Header{"Authorization": {"Bearer wrong"}})
	if rec.Code != http.StatusForbidden {
		t.Errorf("wrong-token admin = %d, want 403", rec.Code)
	}

	rec = s.do(http.MethodGet, "/admin/stats", http.Header{"Authorization": {"Bearer open-sesame"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("authorized admin = %d (%s)", rec.Code, rec.Body)
	}
	var dump StatsDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("stats dump JSON: %v", err)
	}
	if dump.Cache == nil || dump.Origin == nil || dump.Upstream == nil {
		t.Errorf("stats dump missing sections: %+v", dump)
	}
}

// TestAdminPprof: the runtime profiles ride the admin bearer gate —
// tokenless requests bounce, authorized ones get real profile data —
// and are never reachable through the open scrape paths.
func TestAdminPprof(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "open-sesame")

	if rec := s.do(http.MethodGet, "/admin/pprof/", nil); rec.Code != http.StatusUnauthorized {
		t.Errorf("tokenless pprof index = %d, want 401", rec.Code)
	}
	auth := http.Header{"Authorization": {"Bearer open-sesame"}}
	rec := s.do(http.MethodGet, "/admin/pprof/", auth)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index = %d, body does not list profiles", rec.Code)
	}
	rec = s.do(http.MethodGet, "/admin/pprof/goroutine?debug=1", auth)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("goroutine profile = %d (%.80q)", rec.Code, rec.Body.String())
	}
	// The mutex profile serves (empty) even before any
	// -mutex-profile-fraction opt-in; contention inspection must not
	// require a restart to at least reach the endpoint.
	if rec = s.do(http.MethodGet, "/admin/pprof/mutex?debug=1", auth); rec.Code != http.StatusOK {
		t.Errorf("mutex profile = %d", rec.Code)
	}
	// Neither the conventional /debug/pprof/ mount nor the scrape paths
	// expose profiles without credentials.
	if rec = s.do(http.MethodGet, "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ = %d, want 404 — profiles ride the admin gate only", rec.Code)
	}
}

// TestAdminKillStreams: the kill-streams action severs the origin hub's
// connected streams, and the subscriber reconnects on its own — a
// transient cut, not an outage.
func TestAdminKillStreams(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{RelayEvents: true}, true, "")
	before := s.proxy.PushStats().Connects

	rec := s.do(http.MethodPost, "/admin/kill-streams", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/admin/kill-streams = %d (%s)", rec.Code, rec.Body)
	}
	var res KillStreamsResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.OriginKilled || !res.RelayKilled {
		t.Fatalf("kill-streams result = %+v, want both stream sets killed", res)
	}
	if !waitFor(t, 3*time.Second, func() bool {
		ps := s.proxy.PushStats()
		return ps.Connected && ps.Connects > before
	}) {
		t.Fatal("subscriber never reconnected after kill-streams")
	}
}

// TestOpsRoutingAndMethods: unknown paths 404, wrong methods get
// conformant 405s with Allow set, HEAD works on the read endpoints.
func TestOpsRoutingAndMethods(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "")

	rec := s.do(http.MethodDelete, "/metrics", nil)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET, HEAD" {
		t.Errorf("DELETE /metrics = %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
	rec = s.do(http.MethodGet, "/admin/evict?key=/x", nil)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Errorf("GET /admin/evict = %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
	if rec := s.do(http.MethodGet, "/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d", rec.Code)
	}
	if rec := s.do(http.MethodGet, "/admin/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET /admin/nope = %d", rec.Code)
	}

	rec = s.do(http.MethodHead, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("HEAD /metrics = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("HEAD /metrics carried %d body bytes", rec.Body.Len())
	}
	if rec.Header().Get("Content-Length") == "" {
		t.Error("HEAD /metrics without Content-Length")
	}
	rec = s.do(http.MethodHead, "/healthz", nil)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("HEAD /healthz = %d with %d body bytes", rec.Code, rec.Body.Len())
	}
}

// TestNewHandlerValidation: a handler with nothing to export is a
// configuration error.
func TestNewHandlerValidation(t *testing.T) {
	if _, err := NewHandler(Config{}); err == nil {
		t.Fatal("NewHandler with neither Proxy nor Origin must fail")
	}
	if _, err := NewHandler(Config{Origin: webserver.NewOrigin()}); err != nil {
		t.Fatalf("origin-only handler: %v", err)
	}
}

// TestOriginOnlyHandler: an origin node exports its own families and
// health without a proxy, and proxy-only admin actions say so.
func TestOriginOnlyHandler(t *testing.T) {
	origin := webserver.NewOrigin(webserver.WithPushHeartbeat(25 * time.Millisecond))
	origin.Set("/a", []byte("a"), "")
	h, err := NewHandler(Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	sc, err := ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("origin-only /metrics unparseable: %v", err)
	}
	if v, ok := sc.Value("broadway_origin_objects"); !ok || v != 1 {
		t.Errorf("broadway_origin_objects = %v (present %v), want 1", v, ok)
	}
	if _, ok := sc.Value("broadway_cache_hits_total"); ok {
		t.Error("origin-only scrape exports proxy families")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/evict?key=/a", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("evict on origin-only node = %d, want 422", rec.Code)
	}
}

// TestSlowKillsDeltaSequential pins the cursor semantics the health
// probe depends on: each kill is reported exactly once, repeats report
// zero, and a stale total (snapshotted before a racing probe advanced
// the cursor) reports zero instead of underflowing the unsigned delta.
func TestSlowKillsDeltaSequential(t *testing.T) {
	h := &Handler{}
	for _, step := range []struct {
		total, want uint64
	}{
		{0, 0},
		{5, 5},  // first probe claims all five kills
		{5, 0},  // repeat probe: nothing new
		{7, 2},  // two more kills
		{6, 0},  // stale snapshot: must not underflow to 2^64-1
		{7, 0},  // cursor held at 7 through the stale probe
		{10, 3}, // and keeps attributing correctly afterwards
	} {
		if got := h.slowKillsDelta(step.total); got != step.want {
			t.Fatalf("slowKillsDelta(%d) = %d, want %d", step.total, got, step.want)
		}
	}
}

// TestSlowKillsDeltaConcurrentProbes is the regression for the shared
// probe state race: two (here, many) scrapers hammering /healthz while
// kills accumulate must collectively report every kill exactly once —
// the old lock-free read-modify-write could both double-count a kill
// and regress the cursor into an unsigned underflow.
func TestSlowKillsDeltaConcurrentProbes(t *testing.T) {
	h := &Handler{}
	var total atomic.Uint64
	const (
		scrapers   = 8
		perScraper = 5000
	)
	var sum atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perScraper; j++ {
				// Half the scrapers also produce kills, so snapshots
				// interleave with advancing totals.
				if j%2 == 0 {
					total.Add(1)
				}
				snap := total.Load()
				d := h.slowKillsDelta(snap)
				if d > snap {
					t.Errorf("delta %d exceeds total %d (underflow)", d, snap)
					return
				}
				sum.Add(d)
			}
		}()
	}
	wg.Wait()
	// Any kills left unclaimed by racing snapshots surface on the next
	// quiet probe; after it the books must balance exactly.
	sum.Add(h.slowKillsDelta(total.Load()))
	if sum.Load() != total.Load() {
		t.Fatalf("probes reported %d kills in total, hub recorded %d — kills were missed or double-counted",
			sum.Load(), total.Load())
	}
}
