package ops

import (
	"encoding/json"
	"net/http"
)

// Health states. A node is "ok" when every applicable check is; any
// degraded check degrades the whole response (and turns it into a 503,
// so plain HTTP probes and load balancers need no JSON parsing).
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusDisabled = "disabled"
)

// Health is the /healthz response body. Checks for components the node
// does not run are omitted.
type Health struct {
	Status string `json:"status"` // ok | degraded

	// Upstream reports origin reachability: degraded while the most
	// recent upstream fetch failed (LastErrorAt after LastOKAt).
	Upstream *UpstreamHealth `json:"upstream,omitempty"`
	// Push reports invalidation-channel liveness: degraded when the
	// channel is enabled but disconnected (paper-mode fallback in
	// effect), or connected yet silent past its heartbeat timeout.
	Push *PushHealth `json:"push,omitempty"`
	// Relay reports downstream backpressure: degraded when a
	// subscriber's lag reaches the replay ring's capacity (the next
	// reconnect Resets) or subscribers were slow-killed since the
	// previous probe.
	Relay *RelayHealth `json:"relay,omitempty"`
	// OriginHub reports the origin's event endpoint availability.
	OriginHub *OriginHubHealth `json:"origin_hub,omitempty"`
}

// UpstreamHealth is the origin-reachability check of a proxy node.
type UpstreamHealth struct {
	Status string `json:"status"`
	// Errors is the all-time failed-fetch count; LastError the most
	// recent failure's detail (operator-facing — this is the data the
	// client-facing 502 deliberately omits).
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// LastErrorAgeSeconds and LastOKAgeSeconds are the ages of the most
	// recent failed and successful fetches; -1 before any.
	LastErrorAgeSeconds float64 `json:"last_error_age_seconds"`
	LastOKAgeSeconds    float64 `json:"last_ok_age_seconds"`
}

// PushHealth is the invalidation-channel liveness check of a proxy node.
type PushHealth struct {
	Status    string `json:"status"` // ok | degraded | disabled
	Connected bool   `json:"connected"`
	// SinceLastFrameSeconds is the time since any stream frame arrived
	// (-1 before the first); HeartbeatTimeoutSeconds is the watchdog
	// interval it is judged against.
	SinceLastFrameSeconds   float64 `json:"since_last_frame_seconds"`
	HeartbeatTimeoutSeconds float64 `json:"heartbeat_timeout_seconds"`
	// Fallbacks counts healthy-to-disconnected transitions to date.
	Fallbacks uint64 `json:"fallbacks"`
}

// RelayHealth is the downstream-backpressure check of a relaying node.
type RelayHealth struct {
	Status      string `json:"status"` // ok | degraded | disabled
	Subscribers int    `json:"subscribers"`
	MaxLag      uint64 `json:"max_lag"`
	ReplayCap   int    `json:"replay_cap"`
	// SlowKillsDelta is the subscribers slow-killed since the previous
	// /healthz probe (the first probe reports the all-time count).
	SlowKillsDelta uint64 `json:"slow_kills_delta"`
	Resets         uint64 `json:"resets"`
}

// OriginHubHealth is the event-endpoint check of an origin node.
type OriginHubHealth struct {
	Status      string `json:"status"` // ok | degraded | disabled
	Available   bool   `json:"available"`
	Subscribers int    `json:"subscribers"`
}

// serveHealthz evaluates every applicable check and answers 200 for ok,
// 503 for degraded, with the Health JSON either way.
func (h *Handler) serveHealthz(w http.ResponseWriter, r *http.Request) {
	health := h.checkHealth()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	code := http.StatusOK
	if health.Status != StatusOK {
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	if r.Method != http.MethodHead {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(health)
	}
}

// checkHealth builds the Health snapshot for the configured components.
func (h *Handler) checkHealth() Health {
	now := h.cfg.Now()
	out := Health{Status: StatusOK}
	degrade := func(s string) {
		if s == StatusDegraded {
			out.Status = StatusDegraded
		}
	}

	if p := h.cfg.Proxy; p != nil {
		us := p.UpstreamStatus()
		up := &UpstreamHealth{
			Status:              StatusOK,
			Errors:              us.Errors,
			LastError:           us.LastError,
			LastErrorAgeSeconds: -1,
			LastOKAgeSeconds:    -1,
		}
		if !us.LastErrorAt.IsZero() {
			up.LastErrorAgeSeconds = now.Sub(us.LastErrorAt).Seconds()
		}
		if !us.LastOKAt.IsZero() {
			up.LastOKAgeSeconds = now.Sub(us.LastOKAt).Seconds()
		}
		// Degraded while the most recent contact failed. No contact at
		// all is ok: an idle proxy with an empty cache has nothing to
		// prove reachability against.
		if !us.LastErrorAt.IsZero() && us.LastErrorAt.After(us.LastOKAt) {
			up.Status = StatusDegraded
		}
		out.Upstream = up
		degrade(up.Status)

		ps := p.PushStats()
		ph := &PushHealth{
			Status:                  StatusDisabled,
			Connected:               ps.Connected,
			SinceLastFrameSeconds:   -1,
			HeartbeatTimeoutSeconds: ps.HeartbeatTimeout.Seconds(),
			Fallbacks:               ps.Fallbacks,
		}
		if !ps.LastFrameAt.IsZero() {
			ph.SinceLastFrameSeconds = now.Sub(ps.LastFrameAt).Seconds()
		}
		if ps.Enabled {
			switch {
			case !ps.Connected:
				// The subscriber flips Connected the instant its stream
				// dies, so a SetPushAvailable(false) upstream reflects
				// here within one heartbeat — long before the fallback
				// sweep's effects are visible in poll traffic.
				ph.Status = StatusDegraded
			case ps.HeartbeatTimeout > 0 && !ps.LastFrameAt.IsZero() &&
				now.Sub(ps.LastFrameAt) > ps.HeartbeatTimeout:
				// Connected but silent past the watchdog: the stream is
				// about to be declared dead; surface it now.
				ph.Status = StatusDegraded
			default:
				ph.Status = StatusOK
			}
		}
		out.Push = ph
		degrade(ph.Status)

		rs := p.RelayStats()
		rh := &RelayHealth{
			Status:      StatusDisabled,
			Subscribers: rs.Hub.Subscribers,
			MaxLag:      rs.Hub.MaxLag,
			ReplayCap:   rs.Hub.ReplayCap,
			Resets:      rs.Hub.Resets,
		}
		if rs.Enabled {
			rh.SlowKillsDelta = h.slowKillsDelta(rs.Hub.SlowKills)
			rh.Status = StatusOK
			if rh.SlowKillsDelta > 0 {
				rh.Status = StatusDegraded
			}
			if rs.Hub.ReplayCap > 0 && rs.Hub.MaxLag >= uint64(rs.Hub.ReplayCap) {
				// A subscriber this far behind cannot be replayed to:
				// its next reconnect is a Reset and a fallback sweep.
				rh.Status = StatusDegraded
			}
		}
		out.Relay = rh
		degrade(rh.Status)
	}

	if o := h.cfg.Origin; o != nil {
		os := o.Stats()
		oh := &OriginHubHealth{
			Status:      StatusDisabled,
			Available:   os.Hub.Available,
			Subscribers: os.Hub.Subscribers,
		}
		if os.PushEnabled {
			oh.Status = StatusOK
			if !os.Hub.Available {
				oh.Status = StatusDegraded
			}
		}
		out.OriginHub = oh
		degrade(oh.Status)
	}
	return out
}
