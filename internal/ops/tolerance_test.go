package ops

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"broadway/internal/webproxy"
)

// TestAdminToleranceEndpoint drives POST /admin/tolerance end to end:
// parameter validation, the non-resident 404 (JSON, so a typo is
// distinguishable from a landed override), the applied override's
// echo, and its visibility in both /metrics and /admin/stats.
func TestAdminToleranceEndpoint(t *testing.T) {
	s := newOpsSetup(t, webproxy.Config{}, false, "")
	s.origin.Set("/obj", []byte("object body v1"), "")
	s.get(t, "/obj")

	// Method and parameter validation.
	if rec := s.do(http.MethodGet, "/admin/tolerance?key=/obj&dt=30s", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/tolerance = %d", rec.Code)
	}
	bad := []string{
		"/admin/tolerance",                 // missing key
		"/admin/tolerance?dt=30s",          // missing key, dt present
		"/admin/tolerance?key=/obj",        // neither dt nor dv
		"/admin/tolerance?key=/obj&dt=x",   // unparseable duration
		"/admin/tolerance?key=/obj&dt=-5s", // non-positive duration
		"/admin/tolerance?key=/obj&dv=0",   // non-positive value tolerance
		"/admin/tolerance?key=/obj&dv=NaN",
	}
	for _, target := range bad {
		if rec := s.do(http.MethodPost, target, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", target, rec.Code)
		}
	}
	if got := s.proxy.ToleranceOverrides(); got != 0 {
		t.Fatalf("rejected requests applied overrides: %d", got)
	}

	// Non-resident key: 404, still JSON-shaped.
	rec := s.do(http.MethodPost, "/admin/tolerance?key=/nope&dt=30s", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("non-resident override = %d (%s)", rec.Code, rec.Body)
	}
	var missed webproxy.ToleranceOverride
	if err := json.Unmarshal(rec.Body.Bytes(), &missed); err != nil {
		t.Fatal(err)
	}
	if missed.Key != "/nope" || missed.Delta != 0 {
		t.Fatalf("non-resident result = %+v", missed)
	}

	// A resident key takes the override and echoes the landed bounds.
	rec = s.do(http.MethodPost, "/admin/tolerance?key=/obj&dt=45s", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("override = %d (%s)", rec.Code, rec.Body)
	}
	var res webproxy.ToleranceOverride
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Key != "/obj" || res.Delta != 45*time.Second {
		t.Fatalf("override result = %+v", res)
	}

	// The application is visible on every surface: the counter, the
	// flattened metric, and the verbatim stats dump.
	if got := s.proxy.ToleranceOverrides(); got != 1 {
		t.Fatalf("ToleranceOverrides = %d", got)
	}
	if v, ok := s.scrape(t).Value("broadway_cache_tolerance_overrides_total"); !ok || v != 1 {
		t.Errorf("broadway_cache_tolerance_overrides_total = %v (ok=%v)", v, ok)
	}
	srec := s.do(http.MethodGet, "/admin/stats", nil)
	if srec.Code != http.StatusOK {
		t.Fatalf("/admin/stats = %d", srec.Code)
	}
	var dump StatsDump
	if err := json.Unmarshal(srec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Cache == nil || dump.Cache.ToleranceOverrides != 1 {
		t.Errorf("stats dump tolerance overrides: %+v", dump.Cache)
	}
}
