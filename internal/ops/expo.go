package ops

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the hand-rolled Prometheus text exposition layer: a
// builder the /metrics handler renders through, and a strict parser the
// tests and the CI smoke checker (cmd/opscheck) validate scrapes with.
// No dependency on a metrics library, by design — like cmd/benchgate,
// the format is small enough to own outright, and owning the parser
// means "unparseable exposition" is a checkable CI failure rather than
// a hope.

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

type sample struct {
	labels []Label
	value  float64
}

type family struct {
	name    string
	typ     string // "counter", "gauge", or "histogram"
	help    string
	samples []sample
}

// exposition accumulates metric families in emission order and renders
// them as Prometheus text format (version 0.0.4).
type exposition struct {
	families []*family
	byName   map[string]*family
}

func newExposition() *exposition {
	return &exposition{byName: make(map[string]*family)}
}

// familyFor returns the named family, creating it on first use. A
// family emitted from two subsystems (e.g. hub metrics for both the
// relay and origin hubs, distinguished by label) merges its samples.
func (e *exposition) familyFor(name, typ, help string) *family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &family{name: name, typ: typ, help: help}
	e.families = append(e.families, f)
	e.byName[name] = f
	return f
}

// counter adds a counter sample. v is a monotone total.
func (e *exposition) counter(name, help string, v float64, labels ...Label) {
	f := e.familyFor(name, "counter", help)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// gauge adds a gauge sample.
func (e *exposition) gauge(name, help string, v float64, labels ...Label) {
	f := e.familyFor(name, "gauge", help)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// histogramBuckets are the lag buckets used for per-subscriber hub lag:
// small fixed bounds, since lag is an event count bounded by the replay
// ring (defaults 1024).
var histogramBuckets = []float64{0, 1, 8, 64, 256, 1024, 4096}

// histogram adds a full histogram (cumulative buckets, +Inf, _sum,
// _count) over the given observations.
func (e *exposition) histogram(name, help string, observations []float64, labels ...Label) {
	f := e.familyFor(name, "histogram", help)
	var sum float64
	for _, v := range observations {
		sum += v
	}
	for _, le := range histogramBuckets {
		n := 0
		for _, v := range observations {
			if v <= le {
				n++
			}
		}
		bl := append(append([]Label(nil), labels...), Label{"le", formatFloat(le)})
		f.samples = append(f.samples, sample{labels: bl, value: float64(n)})
	}
	infl := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	f.samples = append(f.samples,
		sample{labels: infl, value: float64(len(observations))})
	f.samples = append(f.samples, sample{
		labels: append(append([]Label(nil), labels...), Label{"__suffix", "sum"}),
		value:  sum,
	})
	f.samples = append(f.samples, sample{
		labels: append(append([]Label(nil), labels...), Label{"__suffix", "count"}),
		value:  float64(len(observations)),
	})
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// render writes the accumulated families as exposition text.
func (e *exposition) render(w io.Writer) {
	for _, f := range e.families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			name := f.name
			var parts []string
			for _, l := range s.labels {
				if l.Name == "__suffix" {
					// Histogram _sum/_count ride the sample's label list as a
					// pseudo-label so the family keeps one sample slice.
					name = f.name + "_" + l.Value
					continue
				}
				// Manual quoting, not %q: Go would escape the escapes.
				parts = append(parts, l.Name+`="`+escapeLabelValue(l.Value)+`"`)
			}
			if f.typ == "histogram" && name == f.name {
				name = f.name + "_bucket"
			}
			if len(parts) > 0 {
				fmt.Fprintf(w, "%s{%s} %s\n", name, strings.Join(parts, ","), formatFloat(s.value))
			} else {
				fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.value))
			}
		}
	}
}

// Scrape is a parsed exposition: one value per series, keyed by
// "name" or `name{k="v",...}` with labels sorted by name, plus the
// declared type of each metric family.
type Scrape struct {
	Values map[string]float64
	Types  map[string]string
}

// Value returns the sample for the metric name with the given labels
// (order-insensitive), and whether it was present in the scrape.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	v, ok := s.Values[SeriesKey(name, labels...)]
	return v, ok
}

// SeriesKey builds the canonical series key used by Scrape.Values.
func SeriesKey(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + `="` + escapeLabelValue(l.Value) + `"`
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses and validates Prometheus text format: every
// sample line must parse, metric and label names must be legal, each
// sample's family must have been declared by a preceding # TYPE line
// (histogram/summary component suffixes included), and no series may
// appear twice. It returns the parsed scrape or the first violation.
func ParseExposition(r io.Reader) (*Scrape, error) {
	sc := &Scrape{
		Values: make(map[string]float64),
		Types:  make(map[string]string),
	}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, name)
				}
				if !validTypes[typ] {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := sc.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				sc.Types[name] = typ
			}
			continue // HELP and other comments
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := familyOf(name, sc.Types); !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		key := SeriesKey(name, labels...)
		if _, dup := sc.Values[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		sc.Values[key] = value
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or — for histogram/summary component samples — the base name
// with the _bucket/_sum/_count suffix stripped.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			if suffix == "_bucket" && t == "summary" {
				continue
			}
			return base, true
		}
	}
	return "", false
}

// parseSampleLine parses `name{labels} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 { // optional timestamp
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		var val strings.Builder
		j := 1
		closed := false
		for ; j < len(s); j++ {
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				j++
				switch s[j] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[j])
				default:
					return nil, fmt.Errorf("bad escape in label %q", name)
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = strings.TrimSpace(s[j+1:])
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("missing comma after label %q", name)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return out, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
