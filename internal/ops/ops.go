// Package ops is the operational surface of the live stack: a
// dependency-free Prometheus-text /metrics endpoint flattening the
// in-process stats (CacheStats, PushStats, RelayStats, OriginStats,
// and both hubs' HubStats), a /healthz endpoint reporting upstream
// reachability, push-channel liveness, and relay backpressure, and a
// small admin API (evict, kill-streams, stats dump) gated by an
// optional bearer token.
//
// One Handler serves any combination of a proxy and an origin — a leaf
// proxy exports its cache and subscription, a relaying mid adds its hub,
// an origin node exports its serving counters and event hub, and a
// single-process demo (mcproxy -demo) exports both at once. Mount it on
// its own listener (mcproxy -ops-listen) so operational traffic never
// shares a port with cached content.
package ops

import (
	"crypto/subtle"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// Config parameterizes a Handler. At least one of Proxy and Origin must
// be set.
type Config struct {
	// Proxy, when set, exports the proxy's cache/push/relay metrics,
	// health checks, and admin actions.
	Proxy *webproxy.Proxy
	// Origin, when set, exports the origin's serving counters and event
	// hub (an origin node, or the in-process demo origin).
	Origin *webserver.Origin
	// Token, when non-empty, gates every /admin/* route behind
	// "Authorization: Bearer <Token>": requests without credentials get
	// 401, requests with wrong credentials get 403. Empty leaves the
	// admin API open (trusted-network deployments); /metrics and
	// /healthz are never gated.
	Token string
	// Now substitutes the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Handler serves /metrics, /healthz, and the /admin API.
type Handler struct {
	cfg Config

	// lastSlowKills backs the health probe's SlowKills delta: each
	// /healthz call reports the kills since the previous one, so a
	// single historic kill does not latch the node degraded forever.
	// Advanced by a monotonic compare-and-swap (see slowKillsDelta) so
	// concurrent scrapers neither double-count a kill nor regress the
	// cursor and miss one.
	lastSlowKills atomic.Uint64
}

// slowKillsDelta advances the SlowKills cursor to total and returns the
// distance covered. Concurrent probes race benignly: each kill is
// attributed to exactly one probe (the one whose CAS claims it), a
// probe that loses every race reports zero, and a probe holding a stale
// total (snapshotted before a racing probe's newer one) reports zero
// rather than underflowing.
func (h *Handler) slowKillsDelta(total uint64) uint64 {
	for {
		last := h.lastSlowKills.Load()
		if total <= last {
			return 0
		}
		if h.lastSlowKills.CompareAndSwap(last, total) {
			return total - last
		}
	}
}

var _ http.Handler = (*Handler)(nil)

// NewHandler validates cfg and returns the ops handler.
func NewHandler(cfg Config) (*Handler, error) {
	if cfg.Proxy == nil && cfg.Origin == nil {
		return nil, errors.New("ops: Config needs a Proxy or an Origin (or both)")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Handler{cfg: cfg}, nil
}

// ServeHTTP routes the operational endpoints. Unknown paths 404 so the
// handler can share a mux prefix without swallowing anything else.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/metrics":
		if !allowReadMethods(w, r) {
			return
		}
		h.serveMetrics(w, r)
	case r.URL.Path == "/healthz":
		if !allowReadMethods(w, r) {
			return
		}
		h.serveHealthz(w, r)
	case strings.HasPrefix(r.URL.Path, "/admin/"):
		if !h.authorize(w, r) {
			return
		}
		h.serveAdmin(w, r)
	default:
		http.NotFound(w, r)
	}
}

// allowReadMethods admits GET and HEAD, answering anything else with a
// conformant 405 (Allow header set).
func allowReadMethods(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// authorize enforces the bearer token on /admin/* routes: 401 for
// absent or malformed credentials, 403 for wrong ones. Comparison is
// constant-time so the token cannot be recovered byte by byte.
func (h *Handler) authorize(w http.ResponseWriter, r *http.Request) bool {
	if h.cfg.Token == "" {
		return true
	}
	auth := r.Header.Get("Authorization")
	got, ok := strings.CutPrefix(auth, "Bearer ")
	if !ok || got == "" {
		w.Header().Set("WWW-Authenticate", `Bearer realm="broadway-ops"`)
		http.Error(w, "authorization required", http.StatusUnauthorized)
		return false
	}
	if subtle.ConstantTimeCompare([]byte(got), []byte(h.cfg.Token)) != 1 {
		http.Error(w, "forbidden", http.StatusForbidden)
		return false
	}
	return true
}
