package ops

import (
	"bytes"
	"net/http"
	"strconv"
	"time"

	"broadway/internal/push"
	"broadway/internal/webproxy"
	"broadway/internal/webserver"
)

// This file flattens the in-process stats structs — CacheStats,
// PushStats, RelayStats, OriginStats, and both hubs' HubStats — into
// the /metrics exposition. The names below are STABLE: dashboards and
// alerts hang off them, and TestMetricsCrossCheckAgainstStructs walks
// every struct field against this mapping, so adding a stats field
// without exporting it (or renaming a metric) fails the build's tests.

// Hub label values: the same HubStats shape is exported for a proxy's
// downstream relay hub and an origin's event hub, distinguished by the
// hub label.
const (
	HubRelay  = "relay"
	HubOrigin = "origin"
)

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// timestampSeconds renders a time as a unix-seconds gauge, 0 when unset
// (the Prometheus convention for *_timestamp_seconds).
func timestampSeconds(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

// writeProxyMetrics emits the proxy's cache, upstream, push-channel,
// and relay families.
func writeProxyMetrics(e *exposition, p *webproxy.Proxy) {
	cs := p.CacheStats()
	e.counter("broadway_cache_hits_total", "Cache hits on resident objects.", float64(cs.Hits))
	e.counter("broadway_cache_misses_total", "Requests that entered the admission path.", float64(cs.Misses))
	e.counter("broadway_cache_evictions_total", "Objects displaced by replacement or admin eviction.", float64(cs.Evictions))
	e.counter("broadway_cache_capped_total", "Admissions refused residency at capacity.", float64(cs.Capped))
	e.gauge("broadway_cache_resident_objects", "Currently cached objects.", float64(cs.ResidentObjects))
	e.gauge("broadway_cache_resident_bytes", "Approximate resident bytes of cached objects.", float64(cs.ResidentBytes))
	e.counter("broadway_cache_tolerance_overrides_total", "Runtime tolerance overrides applied via /admin/tolerance.", float64(cs.ToleranceOverrides))

	us := p.UpstreamStatus()
	e.counter("broadway_upstream_errors_total", "Failed upstream fetches (all refresh and admission paths).", float64(us.Errors))
	e.gauge("broadway_upstream_last_error_timestamp_seconds", "Unix time of the most recent failed upstream fetch (0 before any).", timestampSeconds(us.LastErrorAt))
	e.gauge("broadway_upstream_last_ok_timestamp_seconds", "Unix time of the most recent successful upstream fetch (0 before any).", timestampSeconds(us.LastOKAt))

	ps := p.PushStats()
	e.gauge("broadway_push_enabled", "1 when the proxy subscribes to an invalidation channel.", boolVal(ps.Enabled))
	e.gauge("broadway_push_connected", "1 while the invalidation channel is healthy (also CacheStats.PushConnected).", boolVal(ps.Connected))
	e.counter("broadway_push_events_total", "Update notifications received on the channel (also CacheStats.PushEvents).", float64(ps.Events))
	e.counter("broadway_push_polls_total", "Pushed jobs enqueued from events (also CacheStats.PushPolls).", float64(ps.Polls))
	e.counter("broadway_push_dropped_total", "Events dropped for non-resident objects.", float64(ps.Dropped))
	e.counter("broadway_push_value_applied_total", "Pushed payloads installed directly, zero origin polls.", float64(ps.ValueApplied))
	e.counter("broadway_push_value_fallbacks_total", "Pushed jobs degraded to a confirmation poll.", float64(ps.ValueFallbacks))
	e.counter("broadway_push_delta_applied_total", "Pushed delta frames reconstructed, verified, and installed.", float64(ps.DeltaApplied))
	e.counter("broadway_push_delta_base_misses_total", "Pushed deltas refused for a base digest mismatch, degraded down the ladder.", float64(ps.DeltaBaseMisses))
	e.counter("broadway_push_delta_rebased_total", "Relay publications carrying a delta form for this proxy's downstream.", float64(ps.DeltaRebased))
	e.counter("broadway_push_disk_applied_total", "Pushed payloads landed on demoted objects' disk records.", float64(ps.DiskApplied))
	e.counter("broadway_push_chunks_assembled_total", "Chunked bodies reassembled and delivered whole.", float64(ps.ChunksAssembled))
	e.counter("broadway_push_chunks_broken_total", "Chunk sets abandoned and degraded to a confirmation poll.", float64(ps.ChunksBroken))
	e.counter("broadway_push_fallbacks_total", "Healthy-to-disconnected transitions, each running a catch-up sweep (also CacheStats.PushFallbacks).", float64(ps.Fallbacks))
	e.counter("broadway_push_connects_total", "Successful stream establishments.", float64(ps.Connects))
	e.counter("broadway_push_bounces_total", "Deliberate stream drops forcing interest renegotiation.", float64(ps.Bounces))
	e.counter("broadway_push_stream_resets_total", "Mid-stream hello/Reset frames received.", float64(ps.Resets))
	e.counter("broadway_push_skipped_frames_total", "Oversized or undecodable stream lines dropped in place.", float64(ps.SkippedFrames))
	e.gauge("broadway_push_last_seq", "Last fully processed stream position.", float64(ps.LastSeq))
	e.gauge("broadway_push_last_frame_timestamp_seconds", "Unix time of the last stream frame of any kind (0 before any).", timestampSeconds(ps.LastFrameAt))
	e.gauge("broadway_push_heartbeat_timeout_seconds", "Watchdog interval declaring the stream dead without frames.", ps.HeartbeatTimeout.Seconds())

	rs := p.RelayStats()
	e.gauge("broadway_relay_enabled", "1 when the proxy relays events downstream.", boolVal(rs.Enabled))
	e.gauge("broadway_relay_info", "Constant 1; the path label names the relayed stream's endpoint.", 1, Label{"path", rs.Path})
	writeHubMetrics(e, rs.Hub, HubRelay)

	ds := p.DiskStats()
	e.gauge("broadway_disk_enabled", "1 when the persistent disk tier is configured.", boolVal(ds.Enabled))
	e.gauge("broadway_disk_records", "Records in the durable metadata index.", float64(ds.Records))
	e.gauge("broadway_disk_bytes", "Blob bytes accounted by the durable index.", float64(ds.Bytes))
	e.gauge("broadway_disk_pending_writes", "Write-behind queue depth in coalesced keys.", float64(ds.PendingWrites))
	e.counter("broadway_disk_writes_total", "Persist operations applied by the write-behind worker.", float64(ds.Writes))
	e.counter("broadway_disk_write_errors_total", "Persist operations that failed at the filesystem.", float64(ds.WriteErrors))
	e.counter("broadway_disk_deletes_total", "Durable records purged (admin eviction).", float64(ds.Deletes))
	e.counter("broadway_disk_evictions_total", "Durable records dropped by the disk byte budget.", float64(ds.Evictions))
	e.counter("broadway_disk_demotions_total", "Replacement victims retained on disk instead of lost.", float64(ds.Demotions))
	e.counter("broadway_disk_promotions_total", "Disk records re-admitted through a validating fetch.", float64(ds.Promotions))
	e.counter("broadway_disk_rehydrated_total", "Entries restored warm from disk at startup.", float64(ds.Rehydrated))
	e.counter("broadway_disk_grace_serves_total", "Hits served as X-Cache: GRACE before re-validation.", float64(ds.GraceServes))
}

// writeHubMetrics emits one hub's HubStats under the given hub label.
func writeHubMetrics(e *exposition, hs push.HubStats, which string) {
	l := Label{"hub", which}
	e.gauge("broadway_hub_seq", "Last assigned sequence number.", float64(hs.Seq), l)
	e.gauge("broadway_hub_subscribers", "Registered streams.", float64(hs.Subscribers), l)
	e.gauge("broadway_hub_active_streams", "Stream handler goroutines (surplus over subscribers is unwinding handlers).", float64(hs.ActiveStreams), l)
	e.gauge("broadway_hub_replay_events", "Replay ring occupancy in events.", float64(hs.ReplayLen), l)
	e.gauge("broadway_hub_replay_events_cap", "Replay ring capacity in events.", float64(hs.ReplayCap), l)
	e.gauge("broadway_hub_replay_bytes", "Replay ring resident wire bytes.", float64(hs.ReplayBytes), l)
	e.gauge("broadway_hub_replay_bytes_cap", "Replay ring byte budget (-1 unbounded).", float64(hs.ReplayByteCap), l)
	e.gauge("broadway_hub_ring_partitions", "Prefix partitions currently resident in the replay ring.", float64(len(hs.Partitions)), l)
	for _, p := range hs.Partitions {
		e.gauge("broadway_hub_ring_bytes", "Replay ring resident wire bytes per prefix partition (empty partition label is the catch-all).", float64(p.Bytes), l, Label{"partition", p.Name})
	}
	e.counter("broadway_hub_publish_wait_seconds", "Cumulative time publishers waited to acquire the ring lock.", hs.PublishWait.Seconds(), l)
	e.counter("broadway_hub_oversized_total", "Update events dropped for exceeding the wire envelope limit.", float64(hs.Oversized), l)
	e.counter("broadway_hub_degraded_total", "Payloads stripped at publish for exceeding the hub cap.", float64(hs.Degraded), l)
	e.counter("broadway_hub_resets_total", "Hole announcements (mid-stream Resets) made.", float64(hs.Resets), l)
	e.counter("broadway_hub_resume_holes_total", "Reset hellos served to resuming subscribers.", float64(hs.ResumeHoles), l)
	e.counter("broadway_hub_slow_kills_total", "Subscribers terminated for not draining their stream.", float64(hs.SlowKills), l)
	e.counter("broadway_hub_filtered_total", "Update frames skipped by interest filtering.", float64(hs.Filtered), l)
	e.counter("broadway_hub_delta_frames_total", "Update frames delivered on the delta rung (base matched a held digest).", float64(hs.DeltaFrames), l)
	e.counter("broadway_hub_chunk_frames_total", "Chunk frames written for bodies over a stream's payload cap.", float64(hs.ChunkFrames), l)
	e.gauge("broadway_hub_available", "1 while the endpoint accepts streams.", boolVal(hs.Available), l)
	e.gauge("broadway_hub_max_lag", "Largest per-subscriber lag behind the stream head.", float64(hs.MaxLag), l)
	lags := make([]float64, len(hs.Lags))
	for i, v := range hs.Lags {
		lags[i] = float64(v)
	}
	e.histogram("broadway_hub_subscriber_lag", "Per-subscriber lag behind the stream head, one observation per subscriber per scrape.", lags, l)
}

// writeOriginMetrics emits the origin's serving counters and its event
// hub under hub="origin".
func writeOriginMetrics(e *exposition, o *webserver.Origin) {
	os := o.Stats()
	e.gauge("broadway_origin_objects", "Hosted resources.", float64(os.Objects))
	e.counter("broadway_origin_polls_total", "Conditional or plain GETs served for hosted objects.", float64(os.Polls))
	e.counter("broadway_origin_not_modified_total", "304 responses served.", float64(os.NotModified))
	e.gauge("broadway_origin_push_enabled", "1 when the origin streams invalidation events.", boolVal(os.PushEnabled))
	writeHubMetrics(e, os.Hub, HubOrigin)
}

// serveMetrics renders the exposition for the configured components.
func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	e := newExposition()
	if h.cfg.Proxy != nil {
		writeProxyMetrics(e, h.cfg.Proxy)
	}
	if h.cfg.Origin != nil {
		writeOriginMetrics(e, h.cfg.Origin)
	}
	var buf bytes.Buffer
	e.render(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(buf.Bytes())
	}
}
