package ops

import (
	"bytes"
	"strings"
	"testing"
)

// TestExpositionRoundTrip renders a builder-produced exposition and
// parses it back with the strict parser: every series survives with its
// value, type, and labels intact.
func TestExpositionRoundTrip(t *testing.T) {
	e := newExposition()
	e.counter("requests_total", "Requests served.", 42)
	e.gauge("resident_bytes", "Resident bytes.", 1.5e6)
	e.counter("hub_events_total", "Events.", 7, Label{"hub", "relay"})
	e.counter("hub_events_total", "Events.", 9, Label{"hub", "origin"})
	e.histogram("lag", "Subscriber lag.", []float64{0, 3, 700}, Label{"hub", "relay"})

	var buf bytes.Buffer
	e.render(&buf)
	sc, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("parse of rendered exposition: %v\n%s", err, buf.String())
	}

	checks := []struct {
		key  string
		want float64
	}{
		{SeriesKey("requests_total"), 42},
		{SeriesKey("resident_bytes"), 1.5e6},
		{SeriesKey("hub_events_total", Label{"hub", "relay"}), 7},
		{SeriesKey("hub_events_total", Label{"hub", "origin"}), 9},
		// Buckets are cumulative: le=0 holds one observation, le=8 two,
		// le=1024 all three, +Inf all three.
		{SeriesKey("lag_bucket", Label{"hub", "relay"}, Label{"le", "0"}), 1},
		{SeriesKey("lag_bucket", Label{"hub", "relay"}, Label{"le", "8"}), 2},
		{SeriesKey("lag_bucket", Label{"hub", "relay"}, Label{"le", "1024"}), 3},
		{SeriesKey("lag_bucket", Label{"hub", "relay"}, Label{"le", "+Inf"}), 3},
		{SeriesKey("lag_sum", Label{"hub", "relay"}), 703},
		{SeriesKey("lag_count", Label{"hub", "relay"}), 3},
	}
	for _, c := range checks {
		got, ok := sc.Values[c.key]
		if !ok {
			t.Errorf("series %s missing from parsed scrape", c.key)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.key, got, c.want)
		}
	}
	if sc.Types["lag"] != "histogram" {
		t.Errorf("lag type = %q, want histogram", sc.Types["lag"])
	}
	if sc.Types["requests_total"] != "counter" {
		t.Errorf("requests_total type = %q, want counter", sc.Types["requests_total"])
	}
}

// TestExpositionEscapesLabelValues: values with quotes, backslashes, and
// newlines must render escaped and parse back verbatim.
func TestExpositionEscapesLabelValues(t *testing.T) {
	hostile := "a\"b\\c\nd"
	e := newExposition()
	e.gauge("info", "Info.", 1, Label{"path", hostile})
	var buf bytes.Buffer
	e.render(&buf)
	sc, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if _, ok := sc.Value("info", Label{"path", hostile}); !ok {
		t.Fatalf("hostile label value did not round-trip; scrape has %v", sc.Values)
	}
}

// TestSeriesKeyOrderInsensitive: label order must not change the key.
func TestSeriesKeyOrderInsensitive(t *testing.T) {
	a := SeriesKey("m", Label{"x", "1"}, Label{"a", "2"})
	b := SeriesKey("m", Label{"a", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatalf("SeriesKey depends on label order: %q vs %q", a, b)
	}
}

// TestParseExpositionRejections: each violation a real scraper would
// reject must fail the strict parser.
func TestParseExpositionRejections(t *testing.T) {
	cases := map[string]string{
		"untyped sample":           "mystery 1\n",
		"malformed TYPE":           "# TYPE only_three\nonly_three 1\n",
		"unknown type":             "# TYPE m widget\nm 1\n",
		"duplicate TYPE":           "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate series":         "# TYPE m counter\nm 1\nm 2\n",
		"bad metric name":          "# TYPE 9bad counter\n9bad 1\n",
		"bad label name":           "# TYPE m counter\nm{9x=\"v\"} 1\n",
		"unterminated label value": "# TYPE m counter\nm{x=\"v} 1\n",
		"unquoted label value":     "# TYPE m counter\nm{x=v} 1\n",
		"bad value":                "# TYPE m counter\nm pickles\n",
		"missing value":            "# TYPE m counter\nm\n",
		"bucket without histogram": "# TYPE m counter\nm_bucket{le=\"1\"} 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

// TestParseExpositionAcceptsTimestampsAndComments: optional timestamps
// and HELP/arbitrary comments are part of the format.
func TestParseExpositionAcceptsTimestampsAndComments(t *testing.T) {
	in := "# HELP m Something.\n# a free comment\n# TYPE m gauge\nm{x=\"y\"} 3.5 1700000000000\n"
	sc, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := sc.Value("m", Label{"x", "y"}); !ok || v != 3.5 {
		t.Fatalf("m = %v (present %v), want 3.5", v, ok)
	}
}
