package metrics

import (
	"math"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/simtime"
	"broadway/internal/trace"
)

func at(d time.Duration) simtime.Time { return simtime.At(d) }

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func tempTrace() *trace.Trace {
	return &trace.Trace{
		Name: "t", Kind: trace.Temporal, Duration: time.Hour,
		Updates: []trace.Update{
			{At: 10 * time.Minute}, {At: 20 * time.Minute}, {At: 45 * time.Minute},
		},
	}
}

// TestEvaluateTemporalHandComputed checks every number of a fully
// hand-computed scenario: updates at 10/20/45m, polls at 0/12/30/50m,
// Δ = 5m.
func TestEvaluateTemporalHandComputed(t *testing.T) {
	log := []Refresh{
		{At: at(0)},
		{At: at(12 * time.Minute), Modified: true, Version: 1},
		{At: at(30 * time.Minute), Modified: true, Version: 2},
		{At: at(50 * time.Minute), Modified: true, Version: 3},
	}
	rep := EvaluateTemporal(tempTrace(), log, 5*time.Minute, time.Hour)

	if rep.Polls != 4 {
		t.Errorf("Polls = %d, want 4", rep.Polls)
	}
	// Only the 12m→30m interval violates: first update after 12m is at
	// 20m, and 30−20 = 10m > Δ. (0→12: 12−10 = 2m ok; 30→50: 50−45 = 5m
	// = Δ, not >.)
	if rep.Violations != 1 {
		t.Errorf("Violations = %d, want 1", rep.Violations)
	}
	if !almostEqual(rep.FidelityByViolations, 0.75) {
		t.Errorf("f13 = %v, want 0.75", rep.FidelityByViolations)
	}
	// Out-of-sync: only within [12m,30m): stale from 20m, out of
	// tolerance from 25m to the 30m refresh = 5m.
	if rep.OutOfSync != 5*time.Minute {
		t.Errorf("OutOfSync = %v, want 5m", rep.OutOfSync)
	}
	if !almostEqual(rep.FidelityByTime, 1-5.0/60.0) {
		t.Errorf("f14 = %v", rep.FidelityByTime)
	}
}

func TestEvaluateTemporalPerfectPolling(t *testing.T) {
	// Polling every Δ = 5m: the baseline's fidelity must be exactly 1.
	var log []Refresh
	for at0 := time.Duration(0); at0 <= time.Hour; at0 += 5 * time.Minute {
		log = append(log, Refresh{At: at(at0)})
	}
	rep := EvaluateTemporal(tempTrace(), log, 5*time.Minute, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("baseline: violations=%d outSync=%v, want 0/0", rep.Violations, rep.OutOfSync)
	}
	if rep.FidelityByViolations != 1 || rep.FidelityByTime != 1 {
		t.Error("baseline fidelity must be 1")
	}
}

func TestEvaluateTemporalNeverPolledAgain(t *testing.T) {
	// One initial fetch, never refreshed: out of sync from firstUpdate+Δ
	// to the horizon.
	log := []Refresh{{At: at(0)}}
	rep := EvaluateTemporal(tempTrace(), log, 5*time.Minute, time.Hour)
	if rep.Violations != 0 { // violations are only observed at polls
		t.Errorf("Violations = %d", rep.Violations)
	}
	want := time.Hour - 15*time.Minute
	if rep.OutOfSync != want {
		t.Errorf("OutOfSync = %v, want %v", rep.OutOfSync, want)
	}
}

func TestEvaluateTemporalEmptyLog(t *testing.T) {
	rep := EvaluateTemporal(tempTrace(), nil, 5*time.Minute, time.Hour)
	if rep.FidelityByViolations != 1 || rep.FidelityByTime != 0 {
		t.Errorf("empty log: f13=%v f14=%v", rep.FidelityByViolations, rep.FidelityByTime)
	}
}

func TestEvaluateTemporalStaticObject(t *testing.T) {
	static := &trace.Trace{Name: "s", Kind: trace.Temporal, Duration: time.Hour}
	log := []Refresh{{At: at(0)}, {At: at(30 * time.Minute)}}
	rep := EvaluateTemporal(static, log, 5*time.Minute, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Error("static object can never be out of sync")
	}
}

func valTrace() *trace.Trace {
	return &trace.Trace{
		Name: "v", Kind: trace.Value, Duration: time.Hour, InitialValue: 100,
		Updates: []trace.Update{
			{At: 10 * time.Minute, Value: 101},
			{At: 20 * time.Minute, Value: 99.5},
		},
	}
}

// TestEvaluateValueHandComputed: initial 100, updates 10m→101, 20m→99.5;
// polls at 0/15/30m; Δv = 1.0.
func TestEvaluateValueHandComputed(t *testing.T) {
	log := []Refresh{
		{At: at(0), Value: 100},
		{At: at(15 * time.Minute), Modified: true, Version: 1, Value: 101},
		{At: at(30 * time.Minute), Modified: true, Version: 2, Value: 99.5},
	}
	rep := EvaluateValue(valTrace(), log, 1.0, time.Hour)
	if rep.Polls != 3 {
		t.Errorf("Polls = %d", rep.Polls)
	}
	// Poll@15: |101−100| = 1 ≥ 1 → violation. Poll@30: |99.5−101| = 1.5
	// → violation.
	if rep.Violations != 2 {
		t.Errorf("Violations = %d, want 2", rep.Violations)
	}
	// Out of sync over [10m,15m) and [20m,30m) → 15m total.
	if rep.OutOfSync != 15*time.Minute {
		t.Errorf("OutOfSync = %v, want 15m", rep.OutOfSync)
	}
	if !almostEqual(rep.FidelityByViolations, 1.0/3.0) {
		t.Errorf("f13 = %v", rep.FidelityByViolations)
	}
	if !almostEqual(rep.FidelityByTime, 0.75) {
		t.Errorf("f14 = %v", rep.FidelityByTime)
	}
}

func TestEvaluateValueWithinTolerance(t *testing.T) {
	// Δv = 2: the same scenario never drifts by 2.
	log := []Refresh{
		{At: at(0), Value: 100},
		{At: at(15 * time.Minute), Modified: true, Value: 101},
		{At: at(30 * time.Minute), Modified: true, Value: 99.5},
	}
	rep := EvaluateValue(valTrace(), log, 2.0, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("violations=%d outSync=%v, want clean", rep.Violations, rep.OutOfSync)
	}
}

func mutualTraces() (*trace.Trace, *trace.Trace) {
	trA := &trace.Trace{
		Name: "a", Kind: trace.Temporal, Duration: time.Hour,
		Updates: []trace.Update{{At: 10 * time.Minute}, {At: 40 * time.Minute}},
	}
	trB := &trace.Trace{
		Name: "b", Kind: trace.Temporal, Duration: time.Hour,
		Updates: []trace.Update{{At: 12 * time.Minute}, {At: 30 * time.Minute}},
	}
	return trA, trB
}

// TestEvaluateMutualTemporalHandComputed: A updates 10/40m, B updates
// 12/30m; A polled 0/15/50m, B polled 0/13m; δ = 5m.
func TestEvaluateMutualTemporalHandComputed(t *testing.T) {
	trA, trB := mutualTraces()
	logA := []Refresh{{At: at(0)}, {At: at(15 * time.Minute)}, {At: at(50 * time.Minute)}}
	logB := []Refresh{{At: at(0)}, {At: at(13 * time.Minute), Triggered: true}}
	rep := EvaluateMutualTemporal(trA, trB, logA, logB, 5*time.Minute, time.Hour)

	if rep.Polls != 5 {
		t.Errorf("Polls = %d, want 5", rep.Polls)
	}
	if rep.TriggeredPolls != 1 {
		t.Errorf("TriggeredPolls = %d, want 1", rep.TriggeredPolls)
	}
	// Only the refresh of A at 50m creates a violation: A's cached
	// version is then valid [40m,∞) while B's is [12m,30m) → distance
	// 10m > δ. All earlier states overlap or are within 5m.
	if rep.Violations != 1 {
		t.Errorf("Violations = %d, want 1", rep.Violations)
	}
	if rep.OutOfSync != 10*time.Minute { // from 50m to the 60m horizon
		t.Errorf("OutOfSync = %v, want 10m", rep.OutOfSync)
	}
	if !almostEqual(rep.FidelityByViolations, 0.8) {
		t.Errorf("f13 = %v, want 0.8", rep.FidelityByViolations)
	}
	if !almostEqual(rep.FidelityByTime, 1-10.0/60.0) {
		t.Errorf("f14 = %v", rep.FidelityByTime)
	}
}

func TestEvaluateMutualTemporalSynchronizedPollsPerfect(t *testing.T) {
	trA, trB := mutualTraces()
	// Both polled together frequently: intervals always overlap within δ.
	var logA, logB []Refresh
	for at0 := time.Duration(0); at0 <= time.Hour; at0 += 2 * time.Minute {
		logA = append(logA, Refresh{At: at(at0)})
		logB = append(logB, Refresh{At: at(at0)})
	}
	rep := EvaluateMutualTemporal(trA, trB, logA, logB, 5*time.Minute, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("synchronized polling must be perfectly consistent: %+v", rep)
	}
}

func TestEvaluateMutualTemporalZeroDelta(t *testing.T) {
	// δ = 0 demands the versions coexisted: A's [40,∞) vs B's [12,30)
	// never coexists; even A's [10,40) vs B's [0,12) only touches at
	// t=12 via distance 0? No: [10,40) and [0,12) overlap over [10,12).
	trA, trB := mutualTraces()
	logA := []Refresh{{At: at(0)}, {At: at(15 * time.Minute)}}
	logB := []Refresh{{At: at(0)}}
	rep := EvaluateMutualTemporal(trA, trB, logA, logB, 0, time.Hour)
	// After A@15m: ivA=[10,40) ivB=[0,12): overlap → distance 0 ≤ 0: in
	// sync. No violations despite δ=0.
	if rep.Violations != 0 {
		t.Errorf("Violations = %d, want 0", rep.Violations)
	}
}

func TestEvaluateMutualTemporalEmptyLog(t *testing.T) {
	trA, trB := mutualTraces()
	rep := EvaluateMutualTemporal(trA, trB, nil, nil, time.Minute, time.Hour)
	if rep.FidelityByViolations != 1 || rep.FidelityByTime != 0 {
		t.Errorf("empty logs: %+v", rep)
	}
}

func mutualValueTraces() (*trace.Trace, *trace.Trace) {
	trA := &trace.Trace{
		Name: "a", Kind: trace.Value, Duration: time.Hour, InitialValue: 10,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 12}},
	}
	trB := &trace.Trace{
		Name: "b", Kind: trace.Value, Duration: time.Hour, InitialValue: 5,
		Updates: []trace.Update{{At: 30 * time.Minute, Value: 9}},
	}
	return trA, trB
}

// TestEvaluateMutualValueHandComputed: A initial 10 → 12@10m; B initial
// 5 → 9@30m; A polled 0/20m, B polled 0/40m; f = difference, δ = 1.5.
func TestEvaluateMutualValueHandComputed(t *testing.T) {
	trA, trB := mutualValueTraces()
	logA := []Refresh{{At: at(0), Value: 10}, {At: at(20 * time.Minute), Value: 12}}
	logB := []Refresh{{At: at(0), Value: 5}, {At: at(40 * time.Minute), Value: 9}}
	rep := EvaluateMutualValue(trA, trB, logA, logB, core.DifferenceFunc{}, 1.5, time.Hour)

	if rep.Polls != 4 {
		t.Errorf("Polls = %d, want 4", rep.Polls)
	}
	// Server f: 5 on [0,10), 7 on [10,30), 3 on [30,60]. Proxy f: 5 on
	// [0,20), 7 on [20,40), 3 from 40. Drift ≥ 1.5 over [10,20) and
	// [30,40). Each ends at a refresh that sees the drift → 2
	// violations.
	if rep.Violations != 2 {
		t.Errorf("Violations = %d, want 2", rep.Violations)
	}
	if rep.OutOfSync != 20*time.Minute {
		t.Errorf("OutOfSync = %v, want 20m", rep.OutOfSync)
	}
	if !almostEqual(rep.FidelityByViolations, 0.5) {
		t.Errorf("f13 = %v, want 0.5", rep.FidelityByViolations)
	}
	if !almostEqual(rep.FidelityByTime, 1-20.0/60.0) {
		t.Errorf("f14 = %v", rep.FidelityByTime)
	}
}

func TestEvaluateMutualValueCommonModeIgnored(t *testing.T) {
	// Both values jump by +100 at 10m; the difference never moves.
	trA := &trace.Trace{Name: "a", Kind: trace.Value, Duration: time.Hour, InitialValue: 10,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 110}}}
	trB := &trace.Trace{Name: "b", Kind: trace.Value, Duration: time.Hour, InitialValue: 5,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 105}}}
	logA := []Refresh{{At: at(0), Value: 10}}
	logB := []Refresh{{At: at(0), Value: 5}}
	rep := EvaluateMutualValue(trA, trB, logA, logB, core.DifferenceFunc{}, 1.0, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("common-mode movement must not violate M_v: %+v", rep)
	}
}

func TestEvaluateMutualValueOtherFuncs(t *testing.T) {
	// With SumFunc the same common-mode scenario drifts by 200.
	trA := &trace.Trace{Name: "a", Kind: trace.Value, Duration: time.Hour, InitialValue: 10,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 110}}}
	trB := &trace.Trace{Name: "b", Kind: trace.Value, Duration: time.Hour, InitialValue: 5,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 105}}}
	logA := []Refresh{{At: at(0), Value: 10}}
	logB := []Refresh{{At: at(0), Value: 5}}
	rep := EvaluateMutualValue(trA, trB, logA, logB, core.SumFunc{}, 1.0, time.Hour)
	if rep.OutOfSync != 50*time.Minute {
		t.Errorf("OutOfSync = %v, want 50m (drift from 10m to horizon)", rep.OutOfSync)
	}
}

func TestEvaluateMutualValuePairPollSingleViolation(t *testing.T) {
	// A pair poll refreshes both objects at the same instant; the
	// violation at that instant must be counted once, not twice.
	trA, trB := mutualValueTraces()
	logA := []Refresh{{At: at(0), Value: 10}, {At: at(20 * time.Minute), Value: 12}}
	logB := []Refresh{{At: at(0), Value: 5}, {At: at(20 * time.Minute), Value: 5}}
	rep := EvaluateMutualValue(trA, trB, logA, logB, core.DifferenceFunc{}, 1.5, time.Hour)
	// Drift over [10,20) is 2 ≥ 1.5 → exactly one violation at 20m.
	// From 30m (B's update) drift is 4 with no further poll → out to
	// horizon.
	if rep.Violations != 1 {
		t.Errorf("Violations = %d, want 1 (deduplicated)", rep.Violations)
	}
}

func TestFidelityClamps(t *testing.T) {
	if fidelityRatio(10, 5) != 0 {
		t.Error("fidelity must clamp at 0")
	}
	if fidelityRatio(0, 0) != 1 {
		t.Error("no polls → fidelity 1")
	}
	if fidelityTime(2*time.Hour, time.Hour) != 0 {
		t.Error("time fidelity must clamp at 0")
	}
	if fidelityTime(0, 0) != 1 {
		t.Error("zero horizon → fidelity 1")
	}
}

func TestReportStrings(t *testing.T) {
	if (TemporalReport{}).String() == "" ||
		(MutualTemporalReport{}).String() == "" ||
		(MutualValueReport{}).String() == "" {
		t.Error("report strings must not be empty")
	}
}

func TestMeanAbsoluteDriftHandComputed(t *testing.T) {
	// A: 10 → 12 @10m. B: constant 5. Proxy refreshes A at 0 (10) and
	// 30m (12); B at 0 (5). f = A − B.
	trA := &trace.Trace{Name: "a", Kind: trace.Value, Duration: time.Hour, InitialValue: 10,
		Updates: []trace.Update{{At: 10 * time.Minute, Value: 12}}}
	trB := &trace.Trace{Name: "b", Kind: trace.Value, Duration: time.Hour, InitialValue: 5}
	logA := []Refresh{{At: at(0), Value: 10}, {At: at(30 * time.Minute), Value: 12}}
	logB := []Refresh{{At: at(0), Value: 5}}
	got := MeanAbsoluteDrift(trA, trB, logA, logB, core.DifferenceFunc{}, time.Hour)
	// Drift: 0 over [0,10m), 2 over [10m,30m), 0 after → integral = 40m·$ /
	// 60m = $0.666…
	want := 2.0 * 20 / 60
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanAbsoluteDrift = %v, want %v", got, want)
	}
}

func TestMeanAbsoluteDriftDegenerate(t *testing.T) {
	trA, trB := mutualValueTraces()
	if MeanAbsoluteDrift(trA, trB, nil, nil, core.DifferenceFunc{}, time.Hour) != 0 {
		t.Error("empty logs must yield 0")
	}
	logA := []Refresh{{At: at(0), Value: 10}}
	if MeanAbsoluteDrift(trA, trB, logA, logA, core.DifferenceFunc{}, 0) != 0 {
		t.Error("zero horizon must yield 0")
	}
}

func TestMeanAbsoluteDriftPerfectTracking(t *testing.T) {
	// Proxy refreshes at every server update instant: drift is zero
	// except exactly at instants (measure-zero) → 0.
	trA, trB := mutualValueTraces()
	logA := []Refresh{{At: at(0), Value: 10}, {At: at(10 * time.Minute), Value: 12}}
	logB := []Refresh{{At: at(0), Value: 5}, {At: at(30 * time.Minute), Value: 9}}
	if got := MeanAbsoluteDrift(trA, trB, logA, logB, core.DifferenceFunc{}, time.Hour); got != 0 {
		t.Errorf("perfect tracking drift = %v, want 0", got)
	}
}

func TestEvaluateValueEmptyAndStatic(t *testing.T) {
	rep := EvaluateValue(valTrace(), nil, 1.0, time.Hour)
	if rep.FidelityByViolations != 1 || rep.FidelityByTime != 0 {
		t.Errorf("empty log: %+v", rep)
	}
	static := &trace.Trace{Name: "s", Kind: trace.Value, Duration: time.Hour, InitialValue: 100}
	log := []Refresh{{At: at(0), Value: 100}}
	rep = EvaluateValue(static, log, 0.5, time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("static value object: %+v", rep)
	}
}

func TestEvaluateMutualValueEmptyLogs(t *testing.T) {
	trA, trB := mutualValueTraces()
	rep := EvaluateMutualValue(trA, trB, nil, nil, core.DifferenceFunc{}, 1.0, time.Hour)
	if rep.FidelityByViolations != 1 || rep.FidelityByTime != 0 {
		t.Errorf("empty logs: %+v", rep)
	}
}
