package metrics

import (
	"testing"
	"time"

	"broadway/internal/trace"
)

func groupTraces() []*trace.Trace {
	return []*trace.Trace{
		{Name: "a", Kind: trace.Temporal, Duration: time.Hour,
			Updates: []trace.Update{{At: 10 * time.Minute}, {At: 40 * time.Minute}}},
		{Name: "b", Kind: trace.Temporal, Duration: time.Hour,
			Updates: []trace.Update{{At: 12 * time.Minute}, {At: 30 * time.Minute}}},
		{Name: "c", Kind: trace.Temporal, Duration: time.Hour,
			Updates: []trace.Update{{At: 11 * time.Minute}}},
	}
}

// TestGroupMatchesPairForTwoMembers: for n=2 the group evaluator must
// agree exactly with the pairwise evaluator.
func TestGroupMatchesPairForTwoMembers(t *testing.T) {
	trs := groupTraces()[:2]
	logA := []Refresh{{At: at(0)}, {At: at(15 * time.Minute), Modified: true}, {At: at(50 * time.Minute), Modified: true}}
	logB := []Refresh{{At: at(0)}, {At: at(13 * time.Minute), Modified: true, Triggered: true}}

	pair := EvaluateMutualTemporal(trs[0], trs[1], logA, logB, 5*time.Minute, time.Hour)
	group := EvaluateMutualTemporalGroup(trs, [][]Refresh{logA, logB}, 5*time.Minute, time.Hour)

	if group.Polls != pair.Polls {
		t.Errorf("Polls: group %d pair %d", group.Polls, pair.Polls)
	}
	if group.TriggeredPolls != pair.TriggeredPolls {
		t.Errorf("Triggered: group %d pair %d", group.TriggeredPolls, pair.TriggeredPolls)
	}
	if group.Violations != pair.Violations {
		t.Errorf("Violations: group %d pair %d", group.Violations, pair.Violations)
	}
	if group.SyncViolations != pair.SyncViolations {
		t.Errorf("SyncViolations: group %d pair %d", group.SyncViolations, pair.SyncViolations)
	}
	if group.OutOfSync != pair.OutOfSync {
		t.Errorf("OutOfSync: group %v pair %v", group.OutOfSync, pair.OutOfSync)
	}
}

// TestGroupThreeMembers: a hand-checked 3-object scenario. The third
// member is never refreshed after its initial fetch; once the others move
// on, the group goes out of sync.
func TestGroupThreeMembers(t *testing.T) {
	trs := groupTraces()
	logs := [][]Refresh{
		{{At: at(0)}, {At: at(15 * time.Minute), Modified: true}, {At: at(45 * time.Minute), Modified: true}},
		{{At: at(0)}, {At: at(15 * time.Minute), Modified: true}},
		{{At: at(0)}}, // c: initial fetch only; its cached copy dies at 11m
	}
	rep := EvaluateMutualTemporalGroup(trs, logs, 5*time.Minute, time.Hour)

	if rep.Members != 3 || rep.Polls != 6 {
		t.Errorf("members/polls = %d/%d", rep.Members, rep.Polls)
	}
	// At 15m: a=[10,40) b=[12,30) c=[0,11). Max pairwise distance:
	// a-c = 0 gap? a starts 10, c ends 11 → overlap... [10,40) vs
	// [0,11): overlap [10,11) → 0. b-c: [12,30) vs [0,11) → 1m ≤ 5m.
	// In sync. At 45m: a=[40,∞) b=[12,30) c=[0,11): a-c distance 29m →
	// violated.
	if rep.Violations != 1 {
		t.Errorf("Violations = %d, want 1", rep.Violations)
	}
	if rep.OutOfSync != 15*time.Minute { // from 45m to horizon
		t.Errorf("OutOfSync = %v, want 15m", rep.OutOfSync)
	}
	// Sync semantics: detection polls are a@15m, a@45m, b@15m. c has
	// polls only at 0 → all three lack a c-poll within 5m → 3.
	if rep.SyncViolations != 3 {
		t.Errorf("SyncViolations = %d, want 3", rep.SyncViolations)
	}
}

func TestGroupSynchronizedPerfect(t *testing.T) {
	trs := groupTraces()
	var logs [][]Refresh
	for range trs {
		var log []Refresh
		for at0 := time.Duration(0); at0 <= time.Hour; at0 += 2 * time.Minute {
			log = append(log, Refresh{At: at(at0), Modified: true})
		}
		logs = append(logs, log)
	}
	rep := EvaluateMutualTemporalGroup(trs, logs, 5*time.Minute, time.Hour)
	if rep.SyncViolations != 0 || rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("synchronized group must be perfect: %+v", rep)
	}
	if rep.FidelityBySync != 1 || rep.FidelityByViolations != 1 || rep.FidelityByTime != 1 {
		t.Errorf("fidelities = %v/%v/%v", rep.FidelityBySync, rep.FidelityByViolations, rep.FidelityByTime)
	}
}

func TestGroupDegenerateInputs(t *testing.T) {
	trs := groupTraces()
	// Mismatched lengths.
	rep := EvaluateMutualTemporalGroup(trs, [][]Refresh{{}}, time.Minute, time.Hour)
	if rep.FidelityBySync != 1 {
		t.Error("degenerate input must return neutral report")
	}
	// One empty log.
	rep = EvaluateMutualTemporalGroup(trs[:2], [][]Refresh{{{At: at(0)}}, {}}, time.Minute, time.Hour)
	if rep.FidelityByTime != 0 {
		t.Error("empty member log: group never evaluable, fully out of sync")
	}
	// Single member.
	rep = EvaluateMutualTemporalGroup(trs[:1], [][]Refresh{{{At: at(0)}}}, time.Minute, time.Hour)
	if rep.FidelityByViolations != 1 {
		t.Error("single member is trivially consistent")
	}
}
