package metrics

import (
	"sort"
	"time"

	"broadway/internal/simtime"
	"broadway/internal/stats"
	"broadway/internal/trace"
)

// GroupTemporalReport summarizes M_t-consistency metrics for a group of
// n ≥ 2 related objects. The paper defines mutual consistency for two
// objects and notes the definitions generalize to n (§2); the natural
// generalization used here requires *every pair* in the group to satisfy
// Eq. 4 — equivalently, the maximum pairwise validity-interval distance
// must stay within δ.
type GroupTemporalReport struct {
	// Members is the group size.
	Members int
	// Polls counts polls across all members.
	Polls int
	// TriggeredPolls counts controller-triggered polls.
	TriggeredPolls int
	// SyncViolations counts update-detecting polls for which some
	// member had no poll within δ (poll-phase semantics, generalized).
	SyncViolations int
	// Violations counts refresh instants after which some pair of
	// cached versions was more than δ apart (interval semantics).
	Violations int
	// OutOfSync is the total time the group spent mutually
	// inconsistent under the interval semantics.
	OutOfSync time.Duration
	// Horizon is the evaluation window length.
	Horizon time.Duration
	// FidelityBySync is Eq. 13 with SyncViolations.
	FidelityBySync float64
	// FidelityByViolations is Eq. 13 with interval-semantics Violations.
	FidelityByViolations float64
	// FidelityByTime is Eq. 14 under the interval semantics.
	FidelityByTime float64
}

// EvaluateMutualTemporalGroup computes M_t metrics for a group of n
// objects given their traces and refresh logs (parallel slices). All
// logs must be sorted by time.
func EvaluateMutualTemporalGroup(traces []*trace.Trace, logs [][]Refresh, delta, horizon time.Duration) GroupTemporalReport {
	n := len(traces)
	rep := GroupTemporalReport{Members: n, Horizon: horizon}
	if n != len(logs) || n < 2 {
		rep.FidelityBySync = 1
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 1
		return rep
	}
	empty := false
	for i := range logs {
		rep.Polls += len(logs[i])
		for _, r := range logs[i] {
			if r.Triggered {
				rep.TriggeredPolls++
			}
		}
		if len(logs[i]) == 0 {
			empty = true
		}
	}
	if empty {
		rep.FidelityBySync = 1
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 0
		rep.OutOfSync = horizon
		return rep
	}

	// Poll-phase semantics: an update-detecting poll of member i
	// violates if any other member lacks a poll within δ of it.
	sortedTimes := make([][]time.Duration, n)
	for i := range logs {
		ts := make([]time.Duration, len(logs[i]))
		for j := range logs[i] {
			ts[j] = logs[i][j].At.Duration()
		}
		sortedTimes[i] = ts
	}
	for i := range logs {
		for j := 1; j < len(logs[i]); j++ {
			r := logs[i][j]
			if !r.Modified || r.At.Duration() > horizon {
				continue
			}
			for k := range logs {
				if k == i {
					continue
				}
				if !hasPollWithin(sortedTimes[k], r.At.Duration(), delta) {
					rep.SyncViolations++
					break
				}
			}
		}
	}

	// Interval semantics: sweep all refresh events; the group is
	// violated when the maximum pairwise distance exceeds δ. Events at
	// the same instant apply atomically.
	type event struct {
		at     time.Duration
		member int
		idx    int
	}
	var events []event
	for i := range logs {
		for j := range logs[i] {
			events = append(events, event{at: logs[i][j].At.Duration(), member: i, idx: j})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].at < events[b].at })

	validity := func(tr *trace.Trace, at time.Duration) simtime.Interval {
		s, e := tr.ValidityInterval(at)
		end := simtime.MaxTime
		if e != time.Duration(1<<63-1) {
			end = simtime.At(e)
		}
		return simtime.Interval{Start: simtime.At(s), End: end}
	}

	intervals := make([]simtime.Interval, n)
	have := make([]bool, n)
	tl := stats.NewBoolTimeline(events[0].at, false)
	for idx := 0; idx < len(events); idx++ {
		ev := events[idx]
		if ev.at > horizon {
			continue
		}
		intervals[ev.member] = validity(traces[ev.member], logs[ev.member][ev.idx].At.Duration())
		have[ev.member] = true
		if idx+1 < len(events) && events[idx+1].at == ev.at {
			continue
		}
		all := true
		for i := range have {
			if !have[i] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		violated := false
		for i := 0; i < n && !violated; i++ {
			for j := i + 1; j < n; j++ {
				if intervals[i].Distance(intervals[j]) > delta {
					violated = true
					break
				}
			}
		}
		if violated {
			rep.Violations++
		}
		tl.Set(ev.at, violated)
	}
	rep.OutOfSync = tl.TrueTotal(horizon)
	rep.FidelityBySync = fidelityRatio(rep.SyncViolations, rep.Polls)
	rep.FidelityByViolations = fidelityRatio(rep.Violations, rep.Polls)
	rep.FidelityByTime = fidelityTime(rep.OutOfSync, horizon)
	return rep
}
