// Package metrics computes the paper's evaluation metrics exactly, as a
// post-hoc pass over (a) the refresh log the proxy records and (b) the
// ground-truth workload trace. The paper's two fidelity definitions are
// both implemented:
//
//	Eq. 13: f = 1 − violations/polls          (per-poll fidelity)
//	Eq. 14: f = 1 − outOfSyncTime/duration    (time-weighted fidelity)
//
// Because the cached copy changes only at refresh instants and the server
// copy only at trace updates, every metric here is an exact sweep over
// those events — no sampling error.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"broadway/internal/core"
	"broadway/internal/simtime"
	"broadway/internal/stats"
	"broadway/internal/trace"
)

// Refresh is one entry of a proxy's refresh log: the protocol-visible
// result of one poll, as recorded by the proxy.
type Refresh struct {
	// At is the server-side instant the poll observed (the instant the
	// refreshed copy is consistent with).
	At simtime.Time
	// Modified reports whether the poll found a new version.
	Modified bool
	// Version is the version obtained.
	Version int
	// Value is the value obtained (value traces).
	Value float64
	// Triggered marks polls requested by a mutual-consistency
	// controller rather than the object's own schedule.
	Triggered bool
}

// TemporalReport summarizes Δt-consistency metrics for one object.
type TemporalReport struct {
	// Polls is the number of polls in the log.
	Polls int
	// Violations is the number of polls that found the guarantee had
	// been violated since the previous poll (Eq. 13 numerator).
	Violations int
	// OutOfSync is the total time the cached copy was more than Δ
	// behind the server (Eq. 14 numerator).
	OutOfSync time.Duration
	// Horizon is the evaluation window length.
	Horizon time.Duration
	// FidelityByViolations is Eq. 13.
	FidelityByViolations float64
	// FidelityByTime is Eq. 14.
	FidelityByTime float64
}

// EvaluateTemporal computes the Δt report for one object from its trace
// and refresh log. delta is the Δt tolerance; horizon the evaluation
// window end (typically the trace duration). The log must be sorted by
// time (proxies record it in order); the first entry is the initial fetch.
func EvaluateTemporal(tr *trace.Trace, log []Refresh, delta, horizon time.Duration) TemporalReport {
	rep := TemporalReport{Polls: len(log), Horizon: horizon}
	if len(log) == 0 {
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 0
		rep.OutOfSync = horizon
		return rep
	}

	// Violations at polls: for each consecutive pair of polls, the
	// guarantee was violated iff the first update after the earlier
	// poll happened more than Δ before the later poll (paper Fig. 1).
	for i := 1; i < len(log); i++ {
		prev, cur := log[i-1].At.Duration(), log[i].At.Duration()
		if first, ok := tr.NextUpdateAfter(prev); ok && first <= cur && cur-first > delta {
			rep.Violations++
		}
	}

	// Out-of-sync time: after a poll at p obtaining the version whose
	// validity ends at e, the copy goes stale at e and out of
	// Δ-tolerance at e+Δ; it stays out of sync until the next poll.
	for i := 0; i < len(log); i++ {
		p := log[i].At.Duration()
		windowEnd := horizon
		if i+1 < len(log) {
			windowEnd = log[i+1].At.Duration()
		}
		if e, ok := tr.NextUpdateAfter(p); ok {
			outFrom := e + delta
			if outFrom < windowEnd {
				rep.OutOfSync += windowEnd - outFrom
			}
		}
	}

	rep.FidelityByViolations = fidelityRatio(rep.Violations, rep.Polls)
	rep.FidelityByTime = fidelityTime(rep.OutOfSync, horizon)
	return rep
}

// ValueReport summarizes Δv-consistency metrics for one object.
type ValueReport struct {
	Polls                int
	Violations           int
	OutOfSync            time.Duration
	Horizon              time.Duration
	FidelityByViolations float64
	FidelityByTime       float64
}

// EvaluateValue computes the Δv report for one object: the cached value
// must stay within delta of the server's.
func EvaluateValue(tr *trace.Trace, log []Refresh, delta float64, horizon time.Duration) ValueReport {
	rep := ValueReport{Polls: len(log), Horizon: horizon}
	if len(log) == 0 {
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 0
		rep.OutOfSync = horizon
		return rep
	}

	// Violations at polls: the poll reveals the server value; compare
	// with the cached value just before the refresh.
	for i := 1; i < len(log); i++ {
		cachedBefore := log[i-1].Value
		serverNow := tr.ValueAt(log[i].At.Duration())
		if abs(serverNow-cachedBefore) >= delta {
			rep.Violations++
		}
	}

	// Out-of-sync time: sweep server updates and proxy refreshes.
	rep.OutOfSync = valueOutOfSync(tr, log, delta, horizon,
		func(sv, pv float64) bool { return abs(sv-pv) >= delta })

	rep.FidelityByViolations = fidelityRatio(rep.Violations, rep.Polls)
	rep.FidelityByTime = fidelityTime(rep.OutOfSync, horizon)
	return rep
}

// valueOutOfSync integrates the time a predicate over (serverValue,
// proxyValue) holds, for one object.
func valueOutOfSync(tr *trace.Trace, log []Refresh, delta float64, horizon time.Duration, out func(sv, pv float64) bool) time.Duration {
	type event struct {
		at      time.Duration
		refresh int // index into log, or -1 for a server update
	}
	var events []event
	for _, u := range tr.Updates {
		if u.At <= horizon {
			events = append(events, event{at: u.At, refresh: -1})
		}
	}
	for i := range log {
		events = append(events, event{at: log[i].At.Duration(), refresh: i})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Before the first refresh the proxy holds nothing; evaluation
	// starts at the initial fetch.
	if len(log) == 0 {
		return horizon
	}
	start := log[0].At.Duration()
	proxyVal := log[0].Value
	tl := stats.NewBoolTimeline(start, false)
	for _, ev := range events {
		if ev.at < start || ev.at > horizon {
			continue
		}
		if ev.refresh >= 0 {
			proxyVal = log[ev.refresh].Value
		}
		serverVal := tr.ValueAt(ev.at)
		tl.Set(ev.at, out(serverVal, proxyVal))
	}
	return tl.TrueTotal(horizon)
}

// MutualTemporalReport summarizes M_t-consistency metrics for a pair.
//
// Two violation semantics are reported side by side:
//
//   - Sync (poll-phase) semantics — the counting the paper's §3.2
//     mechanism is built around: when a poll detects an update to one
//     object, the pair is considered violated unless the sibling has a
//     poll within δ of that instant ("an additional poll is triggered for
//     an object only if its next/previous poll instant is more than δ
//     time units away"). Under this metric the triggered-polls approach
//     has fidelity 1 by construction, exactly as the paper states.
//   - Interval semantics — the literal reading of Eq. 4: the cached
//     versions' server-validity intervals must come within δ of each
//     other. This is a weaker requirement at measurement time (a cached
//     copy that is still current never violates it) and is reported as a
//     stricter ground-truth cross-check.
type MutualTemporalReport struct {
	// Polls counts polls of both objects combined.
	Polls int
	// TriggeredPolls counts the subset requested by the mutual
	// controller.
	TriggeredPolls int
	// SyncViolations counts update-detecting polls with no sibling poll
	// within δ (poll-phase semantics).
	SyncViolations int
	// Violations counts refresh instants after which the pair's cached
	// versions' validity intervals were more than δ apart (interval
	// semantics).
	Violations int
	// OutOfSync is the total time the pair spent mutually inconsistent
	// under the interval semantics.
	OutOfSync time.Duration
	// Horizon is the evaluation window length.
	Horizon time.Duration
	// FidelityBySync is Eq. 13 with SyncViolations — the figure the
	// paper's Fig. 5(b) reports.
	FidelityBySync float64
	// FidelityByViolations is Eq. 13 with interval-semantics Violations.
	FidelityByViolations float64
	// FidelityByTime is Eq. 14 under the interval semantics.
	FidelityByTime float64
}

// EvaluateMutualTemporal computes M_t metrics for a pair of objects per
// Eq. 4: the cached versions are mutually consistent iff the distance
// between their server-validity intervals is at most δ.
func EvaluateMutualTemporal(trA, trB *trace.Trace, logA, logB []Refresh, delta, horizon time.Duration) MutualTemporalReport {
	rep := MutualTemporalReport{
		Polls:   len(logA) + len(logB),
		Horizon: horizon,
	}
	for _, r := range logA {
		if r.Triggered {
			rep.TriggeredPolls++
		}
	}
	for _, r := range logB {
		if r.Triggered {
			rep.TriggeredPolls++
		}
	}
	if len(logA) == 0 || len(logB) == 0 {
		rep.FidelityBySync = 1
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 0
		rep.OutOfSync = horizon
		return rep
	}

	rep.SyncViolations = syncViolations(logA, logB, delta, horizon) +
		syncViolations(logB, logA, delta, horizon)

	type event struct {
		at time.Duration
		a  bool // refresh of A (else B)
		i  int  // log index
	}
	var events []event
	for i := range logA {
		events = append(events, event{at: logA[i].At.Duration(), a: true, i: i})
	}
	for i := range logB {
		events = append(events, event{at: logB[i].At.Duration(), a: false, i: i})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	validity := func(tr *trace.Trace, at time.Duration) simtime.Interval {
		s, e := tr.ValidityInterval(at)
		end := simtime.MaxTime
		if e != time.Duration(1<<63-1) {
			end = simtime.At(e)
		}
		return simtime.Interval{Start: simtime.At(s), End: end}
	}

	start := simtime.Max(simtime.At(events[0].at), 0)
	ivA := validity(trA, logA[0].At.Duration())
	ivB := validity(trB, logB[0].At.Duration())
	haveA, haveB := false, false
	tl := stats.NewBoolTimeline(start.Duration(), false)
	// Refreshes at the same instant (a triggered poll synchronizing the
	// sibling) apply atomically: the state is evaluated once per
	// distinct instant, after all refreshes at it.
	for idx := 0; idx < len(events); idx++ {
		ev := events[idx]
		if ev.at > horizon {
			continue
		}
		if ev.a {
			ivA = validity(trA, logA[ev.i].At.Duration())
			haveA = true
		} else {
			ivB = validity(trB, logB[ev.i].At.Duration())
			haveB = true
		}
		if idx+1 < len(events) && events[idx+1].at == ev.at {
			continue // more refreshes at this instant
		}
		if !haveA || !haveB {
			continue
		}
		violated := ivA.Distance(ivB) > delta
		if violated {
			rep.Violations++
		}
		tl.Set(ev.at, violated)
	}
	rep.OutOfSync = tl.TrueTotal(horizon)
	rep.FidelityBySync = fidelityRatio(rep.SyncViolations, rep.Polls)
	rep.FidelityByViolations = fidelityRatio(rep.Violations, rep.Polls)
	rep.FidelityByTime = fidelityTime(rep.OutOfSync, horizon)
	return rep
}

// syncViolations counts the update-detecting polls of logX (beyond the
// initial fetch) that have no logY poll within delta (poll-phase
// semantics of §3.2). Both logs must be sorted by time.
func syncViolations(logX, logY []Refresh, delta, horizon time.Duration) int {
	yTimes := make([]time.Duration, len(logY))
	for i := range logY {
		yTimes[i] = logY[i].At.Duration()
	}
	count := 0
	for i := 1; i < len(logX); i++ {
		if !logX[i].Modified || logX[i].At.Duration() > horizon {
			continue
		}
		if !hasPollWithin(yTimes, logX[i].At.Duration(), delta) {
			count++
		}
	}
	return count
}

// hasPollWithin reports whether sorted contains an instant within delta
// of at.
func hasPollWithin(sorted []time.Duration, at, delta time.Duration) bool {
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= at })
	if idx < len(sorted) && sorted[idx]-at <= delta {
		return true
	}
	if idx > 0 && at-sorted[idx-1] <= delta {
		return true
	}
	return false
}

// MutualValueReport summarizes M_v-consistency metrics for a pair.
type MutualValueReport struct {
	Polls                int
	Violations           int
	OutOfSync            time.Duration
	Horizon              time.Duration
	FidelityByViolations float64
	FidelityByTime       float64
}

// EvaluateMutualValue computes M_v metrics for a pair per Eq. 5: the
// drift |f(S_a,S_b) − f(P_a,P_b)| must stay below δ. Violations are
// counted once per refresh instant (comparing the server's f against the
// cached f just before the refresh applies); polls count each server poll
// individually, so a pair poll contributes two.
func EvaluateMutualValue(trA, trB *trace.Trace, logA, logB []Refresh, f core.Func, delta float64, horizon time.Duration) MutualValueReport {
	rep := MutualValueReport{
		Polls:   len(logA) + len(logB),
		Horizon: horizon,
	}
	if len(logA) == 0 || len(logB) == 0 {
		rep.FidelityByViolations = 1
		rep.FidelityByTime = 0
		rep.OutOfSync = horizon
		return rep
	}

	const (
		evUpdate  = iota // server-side update (either object)
		evRefresh        // proxy refresh
	)
	type event struct {
		at   time.Duration
		kind int
		a    bool
		i    int
	}
	var events []event
	for _, u := range trA.Updates {
		if u.At <= horizon {
			events = append(events, event{at: u.At, kind: evUpdate})
		}
	}
	for _, u := range trB.Updates {
		if u.At <= horizon {
			events = append(events, event{at: u.At, kind: evUpdate})
		}
	}
	for i := range logA {
		events = append(events, event{at: logA[i].At.Duration(), kind: evRefresh, a: true, i: i})
	}
	for i := range logB {
		events = append(events, event{at: logB[i].At.Duration(), kind: evRefresh, a: false, i: i})
	}
	// Refreshes at the same instant as updates must apply after them:
	// the poll observes the post-update server state.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].kind < events[j].kind
	})

	start := minDuration(logA[0].At.Duration(), logB[0].At.Duration())
	pA, pB := logA[0].Value, logB[0].Value
	// Before its first refresh, treat each cached value as the server's
	// value at the evaluation start (the initial fetch fills it).
	tl := stats.NewBoolTimeline(start, false)
	lastViolationAt := time.Duration(-1)
	for _, ev := range events {
		if ev.at < start || ev.at > horizon {
			continue
		}
		if ev.kind == evRefresh {
			// Count a violation once per refresh instant, against the
			// pre-refresh cached pair.
			drift := abs(f.Eval(trA.ValueAt(ev.at), trB.ValueAt(ev.at)) - f.Eval(pA, pB))
			if drift >= delta && ev.at != lastViolationAt {
				rep.Violations++
				lastViolationAt = ev.at
			}
			if ev.a {
				pA = logA[ev.i].Value
			} else {
				pB = logB[ev.i].Value
			}
		}
		drift := abs(f.Eval(trA.ValueAt(ev.at), trB.ValueAt(ev.at)) - f.Eval(pA, pB))
		tl.Set(ev.at, drift >= delta)
	}
	rep.OutOfSync = tl.TrueTotal(horizon)
	rep.FidelityByViolations = fidelityRatio(rep.Violations, rep.Polls)
	rep.FidelityByTime = fidelityTime(rep.OutOfSync, horizon)
	return rep
}

// MeanAbsoluteDrift integrates |f(S_a,S_b) − f(P_a,P_b)| over time and
// divides by the window length: the time-weighted average tracking error
// of the cached pair. Fig. 8 of the paper visualizes exactly this
// quantity; the scalar makes the visual comparison quantitative.
func MeanAbsoluteDrift(trA, trB *trace.Trace, logA, logB []Refresh, f core.Func, horizon time.Duration) float64 {
	if len(logA) == 0 || len(logB) == 0 || horizon <= 0 {
		return 0
	}
	type event struct {
		at   time.Duration
		kind int // 0 = update, 1 = refresh
		a    bool
		i    int
	}
	var events []event
	for _, u := range trA.Updates {
		if u.At <= horizon {
			events = append(events, event{at: u.At})
		}
	}
	for _, u := range trB.Updates {
		if u.At <= horizon {
			events = append(events, event{at: u.At})
		}
	}
	for i := range logA {
		events = append(events, event{at: logA[i].At.Duration(), kind: 1, a: true, i: i})
	}
	for i := range logB {
		events = append(events, event{at: logB[i].At.Duration(), kind: 1, a: false, i: i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].kind < events[j].kind
	})

	start := minDuration(logA[0].At.Duration(), logB[0].At.Duration())
	pA, pB := logA[0].Value, logB[0].Value
	prevAt := start
	drift := 0.0
	var integral float64
	for _, ev := range events {
		if ev.at < start || ev.at > horizon {
			continue
		}
		integral += drift * float64(ev.at-prevAt)
		prevAt = ev.at
		if ev.kind == 1 {
			if ev.a {
				pA = logA[ev.i].Value
			} else {
				pB = logB[ev.i].Value
			}
		}
		drift = abs(f.Eval(trA.ValueAt(ev.at), trB.ValueAt(ev.at)) - f.Eval(pA, pB))
	}
	integral += drift * float64(horizon-prevAt)
	return integral / float64(horizon-start)
}

// fidelityRatio is Eq. 13, clamped into [0, 1].
func fidelityRatio(violations, polls int) float64 {
	if polls == 0 {
		return 1
	}
	return stats.Clamp(1-float64(violations)/float64(polls), 0, 1)
}

// fidelityTime is Eq. 14, clamped into [0, 1].
func fidelityTime(outOfSync, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 1
	}
	return stats.Clamp(1-float64(outOfSync)/float64(horizon), 0, 1)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// String renders a compact single-line summary.
func (r TemporalReport) String() string {
	return fmt.Sprintf("polls=%d violations=%d f13=%.3f f14=%.3f outSync=%v",
		r.Polls, r.Violations, r.FidelityByViolations, r.FidelityByTime, r.OutOfSync)
}

// String renders a compact single-line summary.
func (r MutualTemporalReport) String() string {
	return fmt.Sprintf("polls=%d triggered=%d fSync=%.3f f13=%.3f f14=%.3f",
		r.Polls, r.TriggeredPolls, r.FidelityBySync, r.FidelityByViolations, r.FidelityByTime)
}

// String renders a compact single-line summary.
func (r MutualValueReport) String() string {
	return fmt.Sprintf("polls=%d violations=%d f13=%.3f f14=%.3f",
		r.Polls, r.Violations, r.FidelityByViolations, r.FidelityByTime)
}
