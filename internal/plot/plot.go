// Package plot renders experiment results as CSV files (for external
// tooling) and ASCII line charts (for terminal inspection). The paper's
// figures are gnuplot line charts; the ASCII renderer reproduces their
// shape well enough to eyeball crossovers and trends directly in a
// terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a titled collection of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Validate checks that every series has matching X/Y lengths.
func (c *Chart) Validate() error {
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
	}
	return nil
}

// WriteCSV emits the chart as CSV: one x column per distinct x set is
// avoided by emitting long form (series, x, y), which loads cleanly into
// any plotting tool.
func (c *Chart) WriteCSV(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(c.XLabel), csvEscape(c.YLabel)); err != nil {
		return err
	}
	for _, s := range c.Series {
		for i := range s.X {
			_, err := fmt.Fprintf(w, "%s,%s,%s\n",
				csvEscape(s.Name),
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// markers assigns a distinct glyph to each series, in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderASCII draws the chart into a width×height character grid with
// simple axes and a legend. Series are overlaid with distinct markers;
// later series win collisions (drawn last, like painter's order).
func (c *Chart) RenderASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	if err := c.Validate(); err != nil {
		return "plot: " + err.Error()
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes are not drawn on the frame.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	scaleX := func(x float64) int {
		return int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
	}
	scaleY := func(y float64) int {
		// Row 0 is the top.
		return height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
	}

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with interpolated steps so sparse
		// series still read as lines.
		for i := 0; i < len(s.X); i++ {
			col, row := scaleX(s.X[i]), scaleY(s.Y[i])
			grid[clampInt(row, 0, height-1)][clampInt(col, 0, width-1)] = mark
			if i == 0 {
				continue
			}
			pc, pr := scaleX(s.X[i-1]), scaleY(s.Y[i-1])
			steps := maxInt(absInt(col-pc), absInt(row-pr))
			for st := 1; st < steps; st++ {
				fr := pr + (row-pr)*st/steps
				fc := pc + (col-pc)*st/steps
				cell := &grid[clampInt(fr, 0, height-1)][clampInt(fc, 0, width-1)]
				if *cell == ' ' {
					*cell = '.'
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelW := maxInt(len(yTop), len(yBot))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(fmt.Sprintf("%.4g", xmax)),
		fmt.Sprintf("%.4g", xmin), fmt.Sprintf("%.4g", xmax))
	fmt.Fprintf(&b, "x: %s   y: %s\n", c.XLabel, c.YLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Table renders rows as a fixed-width Markdown-style table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	b.WriteByte('|')
	for i := range widths {
		fmt.Fprintf(&b, "%s|", strings.Repeat("-", widths[i]+2))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
