package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
}

func TestValidate(t *testing.T) {
	c := sampleChart()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Series[0].Y = c.Series[0].Y[:2]
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched lengths must fail validation")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+8 {
		t.Errorf("lines = %d, want 9", len(lines))
	}
	if lines[1] != "up,0,0" {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	c := &Chart{
		Title: "t", XLabel: `x,label`, YLabel: `y"label`,
		Series: []Series{{Name: "a,b", X: []float64{1}, Y: []float64{2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,label"`) || !strings.Contains(out, `"y""label"`) {
		t.Errorf("labels not escaped: %q", out)
	}
	if !strings.Contains(out, `"a,b",1,2`) {
		t.Errorf("series name not escaped: %q", out)
	}
}

func TestWriteCSVInvalidChart(t *testing.T) {
	c := sampleChart()
	c.Series[0].Y = nil
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err == nil {
		t.Fatal("invalid chart must not serialize")
	}
}

func TestRenderASCII(t *testing.T) {
	out := sampleChart().RenderASCII(40, 10)
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data markers")
	}
	// Frame present.
	if !strings.Contains(out, "+---") {
		t.Error("missing x axis")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.RenderASCII(40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("out = %q", out)
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	c := &Chart{
		Title:  "flat",
		Series: []Series{{Name: "c", X: []float64{0, 1}, Y: []float64{5, 5}}},
	}
	out := c.RenderASCII(30, 8)
	if !strings.Contains(out, "*") {
		t.Error("flat series must still render")
	}
}

func TestRenderASCIITinyDimensionsClamped(t *testing.T) {
	out := sampleChart().RenderASCII(1, 1)
	if len(out) == 0 {
		t.Error("render with tiny dimensions must still produce output")
	}
}

func TestRenderASCIISinglePoint(t *testing.T) {
	c := &Chart{
		Title:  "dot",
		Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{1}}},
	}
	if out := c.RenderASCII(30, 8); !strings.Contains(out, "*") {
		t.Errorf("single point must render: %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table(
		[]string{"name", "value"},
		[][]string{{"alpha", "1"}, {"beta-longer", "2"}},
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "| name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "beta-longer") {
		t.Errorf("row = %q", lines[3])
	}
	// All rows must be the same width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Error("rows not aligned")
	}
}

func TestTableShortRow(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Error("short rows must render")
	}
}
