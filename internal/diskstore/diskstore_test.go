package diskstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	rec := Record{
		Key:         "/news/front",
		Group:       "news",
		ContentType: "text/html",
		LastMod:     t0,
		HasLastMod:  true,
		ValidatedAt: t0.Add(3 * time.Second),
		Delta:       40 * time.Second,
		GroupDelta:  10 * time.Second,
		TTR:         90 * time.Second,
	}
	body := []byte("front page body")
	s.Put(rec, body)

	// Read-your-writes: visible before the worker necessarily ran.
	got, gotBody, ok := s.Get("/news/front")
	if !ok || string(gotBody) != string(body) || got.TTR != rec.TTR {
		t.Fatalf("pre-flush Get = %+v, %q, %v", got, gotBody, ok)
	}

	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	got, gotBody, ok = s2.Get("/news/front")
	if !ok {
		t.Fatal("record lost across reopen")
	}
	if string(gotBody) != string(body) {
		t.Fatalf("body = %q, want %q", gotBody, body)
	}
	if got.Group != "news" || got.TTR != 90*time.Second || !got.LastMod.Equal(t0) ||
		!got.HasLastMod || got.Delta != 40*time.Second || got.GroupDelta != 10*time.Second ||
		!got.ValidatedAt.Equal(t0.Add(3*time.Second)) {
		t.Fatalf("metadata mangled across reopen: %+v", got)
	}
}

func TestCoalescingKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put(Record{Key: "/hot", ValidatedAt: t0.Add(time.Duration(i) * time.Second)},
			[]byte(fmt.Sprintf("v%d", i)))
	}
	s.Flush()
	rec, body, ok := s.Get("/hot")
	if !ok || string(body) != "v49" {
		t.Fatalf("Get = %q, %v; want v49", body, ok)
	}
	if !rec.ValidatedAt.Equal(t0.Add(49 * time.Second)) {
		t.Fatalf("ValidatedAt = %v, want latest", rec.ValidatedAt)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestDeleteRemovesDurablyAndReportsPresence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put(Record{Key: "/a", ValidatedAt: t0}, []byte("aaa"))
	s.Flush()
	if !s.Delete("/a") {
		t.Fatal("Delete of present key = false")
	}
	if s.Delete("/a") {
		t.Fatal("Delete of absent key = true")
	}
	if _, _, ok := s.Get("/a"); ok {
		t.Fatal("Get after Delete = ok")
	}
	s.Flush()
	s.Close()
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, _, ok := s2.Get("/a"); ok {
		t.Fatal("deleted record resurrected after reopen")
	}
	// The blob should be gone too.
	sum := sha256.Sum256([]byte("aaa"))
	digest := hex.EncodeToString(sum[:])
	if _, err := os.Stat(filepath.Join(dir, "blobs", digest[:2], digest)); err == nil {
		t.Fatal("blob survived delete")
	}
}

func TestTornJournalTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put(Record{Key: "/ok", ValidatedAt: t0}, []byte("good"))
	s.Flush()
	s.Close()

	// Simulate a crash mid-append: garbage half-line at the tail.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"/torn","digest":"deadbeef","si`)
	f.Close()

	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify on torn tail: %v", err)
	}
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, _, ok := s2.Get("/ok"); !ok {
		t.Fatal("good record lost to torn tail")
	}
	if _, _, ok := s2.Get("/torn"); ok {
		t.Fatal("torn record served")
	}
}

func TestRecordWithoutBlobPrunedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put(Record{Key: "/x", ValidatedAt: t0}, []byte("xxxx"))
	s.Flush()
	s.Close()

	// Corrupt: remove the blob behind the record.
	sum := sha256.Sum256([]byte("xxxx"))
	digest := hex.EncodeToString(sum[:])
	if err := os.Remove(filepath.Join(dir, "blobs", digest[:2], digest)); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify passed with missing blob")
	}
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, _, ok := s2.Get("/x"); ok {
		t.Fatal("record without blob served")
	}
	// Open pruned and compacted, so the directory verifies clean again.
	s2.Close()
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify after pruning reopen: %v", err)
	}
}

func TestCorruptBlobReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put(Record{Key: "/y", ValidatedAt: t0}, []byte("yyyy"))
	s.Flush()

	sum := sha256.Sum256([]byte("yyyy"))
	digest := hex.EncodeToString(sum[:])
	// Same size, different bytes: stat-validation passes, digest check must not.
	if err := os.WriteFile(filepath.Join(dir, "blobs", digest[:2], digest), []byte("YYYY"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("/y"); ok {
		t.Fatal("digest-mismatched blob served")
	}
	s.Close()
}

func TestBudgetEvictsOldestValidated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 30) // room for three 10-byte bodies
	for i := 0; i < 5; i++ {
		s.Put(Record{
			Key:         fmt.Sprintf("/obj/%d", i),
			ValidatedAt: t0.Add(time.Duration(i) * time.Minute),
		}, []byte(fmt.Sprintf("body-%05d", i)))
		s.Flush()
	}
	st := s.Stats()
	if st.Bytes > 30 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// Oldest-validated go first: 0 and 1 out, 4 (newest) must remain.
	if _, _, ok := s.Get("/obj/0"); ok {
		t.Fatal("oldest record survived budget")
	}
	if _, _, ok := s.Get("/obj/4"); !ok {
		t.Fatal("newest record evicted")
	}
	s.Close()
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify after budget eviction: %v", err)
	}
}

func TestOrphanBlobSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Close()
	orphanDir := filepath.Join(dir, "blobs", "ab")
	os.MkdirAll(orphanDir, 0o755)
	orphan := filepath.Join(orphanDir, "ab"+"cd")
	os.WriteFile(orphan, []byte("stray"), 0o644)
	tmp := filepath.Join(orphanDir, "abcd.123.tmp")
	os.WriteFile(tmp, []byte("half"), 0o644)

	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify with orphan blob: %v", err)
	}
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, err := os.Stat(orphan); err == nil {
		t.Fatal("orphan blob not swept")
	}
	if _, err := os.Stat(tmp); err == nil {
		t.Fatal("temp file not swept")
	}
}

func TestSharedDigestRefcount(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	body := []byte("shared body")
	s.Put(Record{Key: "/one", ValidatedAt: t0}, body)
	s.Put(Record{Key: "/two", ValidatedAt: t0}, body)
	s.Flush()
	if !s.Delete("/one") {
		t.Fatal("Delete /one = false")
	}
	s.Flush()
	// /two still reads fine: the shared blob must survive /one's delete.
	if _, got, ok := s.Get("/two"); !ok || string(got) != string(body) {
		t.Fatalf("shared blob lost: %q %v", got, ok)
	}
}

func TestJournalCompactionBoundsGrowth(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 1200; i++ {
		s.Put(Record{Key: "/churn", ValidatedAt: t0.Add(time.Duration(i) * time.Second)},
			[]byte(fmt.Sprintf("v%d", i)))
		s.Flush() // force a distinct journal append past coalescing
	}
	s.Close()
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// 1200 distinct appends of ~150 bytes would be ~180k uncompacted; the
	// compaction threshold keeps the tail bounded well below that.
	if fi.Size() > 64<<10 {
		t.Fatalf("journal grew to %d bytes; compaction not firing", fi.Size())
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify after churn: %v", err)
	}
}
