// Package diskstore is the persistent tier behind the proxy's sharded
// in-memory store: content-addressed blob files plus a compact
// append-only metadata journal. It is deliberately ignorant of HTTP and
// of the consistency machinery — callers hand it Records (metadata) and
// bodies (bytes) and get both back after a restart.
//
// Layout on disk:
//
//	<dir>/index.log          append-only JSONL journal of Records
//	<dir>/blobs/<2-hex>/<64-hex>   body bytes, named by SHA-256
//
// Writes are asynchronous (single write-behind worker, per-key
// coalescing so only the latest state of a hot key hits disk) and
// ordered blob-before-journal: a crash can strand an orphan blob
// (garbage, collected at next Open) but never a journal record whose
// blob is missing or truncated — such records are pruned at Open, so a
// torn write degrades to a cache miss, never a partial serve.
package diskstore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record is the durable metadata for one cached object. Body bytes live
// in the blob identified by Digest; everything the proxy needs to
// rehydrate an entry without re-learning it rides here.
type Record struct {
	Key          string        `json:"key"`
	Group        string        `json:"group,omitempty"`
	ContentType  string        `json:"ct,omitempty"`
	CacheControl string        `json:"cc,omitempty"`
	LastMod      time.Time     `json:"lm,omitempty"`
	HasLastMod   bool          `json:"hlm,omitempty"`
	ValidatedAt  time.Time     `json:"va"`
	Delta        time.Duration `json:"delta,omitempty"`
	GroupDelta   time.Duration `json:"gdelta,omitempty"`
	ValueDelta   float64       `json:"vdelta,omitempty"`
	// TTR is the learned refresh interval at persist time; zero means
	// "unknown, re-learn from InitialTTR" (e.g. value-paired entries
	// whose schedule belongs to the partner).
	TTR    time.Duration `json:"ttr,omitempty"`
	Digest string        `json:"digest"`
	Size   int64         `json:"size"`
	// Del marks a journal tombstone; never set on live records.
	Del bool `json:"del,omitempty"`
}

// Stats is a point-in-time snapshot of the store's state and lifetime
// counters.
type Stats struct {
	Records       int
	Bytes         int64
	PendingWrites int
	Writes        uint64
	WriteErrors   uint64
	Deletes       uint64
	Evictions     uint64
}

type pendingOp struct {
	rec  Record
	body []byte
	del  bool
}

// Store is a content-addressed blob store with a journaled metadata
// index and a single asynchronous write-behind worker.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	records  map[string]Record
	refs     map[string]int // digest -> live record count
	bytes    int64
	pending  map[string]pendingOp
	order    []string // FIFO of keys with pending ops (coalesced)
	inFlight int
	idle     *sync.Cond

	journal    *os.File
	journalLen int // records appended since last compaction

	closed bool
	wake   chan struct{}
	done   chan struct{}

	writes    atomic.Uint64
	writeErrs atomic.Uint64
	deletes   atomic.Uint64
	evictions atomic.Uint64
}

const journalName = "index.log"

// Open loads (or creates) a disk store rooted at dir. maxBytes <= 0
// means unbounded. The journal is replayed tolerantly: undecodable
// lines (torn tail from a crash) are skipped, records whose blob is
// missing or mismatched in size are pruned, orphan blobs and temp
// files are removed, and the journal is compacted to one line per live
// record before the write-behind worker starts.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		records:  make(map[string]Record),
		refs:     make(map[string]int),
		pending:  make(map[string]pendingOp),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	if err := s.load(); err != nil {
		return nil, err
	}
	s.enforceBudgetLocked("")
	if err := s.compact(); err != nil {
		return nil, err
	}
	go s.worker()
	return s, nil
}

// load replays the journal into memory, pruning records whose blob
// does not check out and sweeping orphan blobs.
func (s *Store) load() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail or garbage: tolerate and skip.
			continue
		}
		if rec.Del {
			s.dropLocked(rec.Key)
			continue
		}
		if rec.Key == "" || rec.Digest == "" {
			continue
		}
		s.dropLocked(rec.Key) // replace any earlier version
		s.records[rec.Key] = rec
		s.refs[rec.Digest]++
		s.bytes += rec.Size
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("diskstore: %w", err)
	}
	// Validate blobs: a record is only as good as its bytes.
	for key, rec := range s.records {
		fi, err := os.Stat(s.blobPath(rec.Digest))
		if err != nil || fi.Size() != rec.Size {
			s.dropLocked(key)
		}
	}
	// Sweep orphan blobs and stranded temp files.
	blobRoot := filepath.Join(s.dir, "blobs")
	subs, _ := os.ReadDir(blobRoot)
	for _, sub := range subs {
		if !sub.IsDir() {
			os.Remove(filepath.Join(blobRoot, sub.Name()))
			continue
		}
		files, _ := os.ReadDir(filepath.Join(blobRoot, sub.Name()))
		for _, bf := range files {
			name := bf.Name()
			if strings.HasSuffix(name, ".tmp") || s.refs[name] == 0 {
				os.Remove(filepath.Join(blobRoot, sub.Name(), name))
			}
		}
	}
	return nil
}

// dropLocked removes a record from the in-memory index and releases its
// blob reference (the blob file itself is deleted lazily by callers).
func (s *Store) dropLocked(key string) (Record, bool) {
	rec, ok := s.records[key]
	if !ok {
		return Record{}, false
	}
	delete(s.records, key)
	s.bytes -= rec.Size
	if s.refs[rec.Digest]--; s.refs[rec.Digest] <= 0 {
		delete(s.refs, rec.Digest)
	}
	return rec, true
}

func (s *Store) blobPath(digest string) string {
	prefix := "00"
	if len(digest) >= 2 {
		prefix = digest[:2]
	}
	return filepath.Join(s.dir, "blobs", prefix, digest)
}

// Put persists rec with body asynchronously. The record's Digest and
// Size are computed here; callers fill the metadata. Repeated Puts for
// the same key before the worker runs coalesce to the latest value.
func (s *Store) Put(rec Record, body []byte) {
	sum := sha256.Sum256(body)
	rec.Digest = hex.EncodeToString(sum[:])
	rec.Size = int64(len(body))
	rec.Del = false
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, queued := s.pending[rec.Key]; !queued {
		s.order = append(s.order, rec.Key)
	}
	s.pending[rec.Key] = pendingOp{rec: rec, body: body}
	s.signal()
}

// Delete removes key from the store (pending queue and durable index).
// It reports whether the key was present in either.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, inRecords := s.records[key]
	op, inPending := s.pending[key]
	// Pending state wins: a queued delete means the key is already gone
	// from the caller's perspective, a queued put means it is present.
	live := inRecords
	if inPending {
		live = !op.del
	}
	if !live {
		return false
	}
	if s.closed {
		return false
	}
	if !inPending {
		s.order = append(s.order, key)
	}
	s.pending[key] = pendingOp{rec: Record{Key: key, Del: true}, del: true}
	s.signal()
	return true
}

// Get returns the record and body for key, or ok=false. Pending writes
// are visible immediately (read-your-writes); durable bodies are
// re-verified against their digest so a corrupt blob reads as a miss.
func (s *Store) Get(key string) (Record, []byte, bool) {
	s.mu.Lock()
	if op, ok := s.pending[key]; ok {
		s.mu.Unlock()
		if op.del {
			return Record{}, nil, false
		}
		return op.rec, op.body, true
	}
	rec, ok := s.records[key]
	s.mu.Unlock()
	if !ok {
		return Record{}, nil, false
	}
	body, err := os.ReadFile(s.blobPath(rec.Digest))
	if err != nil || int64(len(body)) != rec.Size {
		return Record{}, nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != rec.Digest {
		return Record{}, nil, false
	}
	return rec, body, true
}

// Meta returns the durable-or-pending record for key without reading
// the body.
func (s *Store) Meta(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op, ok := s.pending[key]; ok {
		if op.del {
			return Record{}, false
		}
		return op.rec, true
	}
	rec, ok := s.records[key]
	return rec, ok
}

// Keys returns the keys of all live records (durable plus pending
// puts, minus pending deletes), in no particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.records)+len(s.pending))
	seen := make(map[string]bool, len(s.records))
	for key, op := range s.pending {
		seen[key] = true
		if !op.del {
			keys = append(keys, key)
		}
	}
	for key := range s.records {
		if !seen[key] {
			keys = append(keys, key)
		}
	}
	return keys
}

// Len reports the number of live records (pending-aware).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.records)
	for key, op := range s.pending {
		_, durable := s.records[key]
		if op.del && durable {
			n--
		} else if !op.del && !durable {
			n++
		}
	}
	return n
}

// Stats snapshots counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records, bytes, pend := len(s.records), s.bytes, len(s.order)
	s.mu.Unlock()
	return Stats{
		Records:       records,
		Bytes:         bytes,
		PendingWrites: pend,
		Writes:        s.writes.Load(),
		WriteErrors:   s.writeErrs.Load(),
		Deletes:       s.deletes.Load(),
		Evictions:     s.evictions.Load(),
	}
}

// Flush blocks until the write-behind queue is drained.
func (s *Store) Flush() {
	s.mu.Lock()
	for len(s.order) > 0 || s.inFlight > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Close drains the queue, stops the worker, and closes the journal.
// The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.signal()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

func (s *Store) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// worker is the single write-behind goroutine: it pops coalesced ops in
// FIFO order and applies them until Close drains the queue.
func (s *Store) worker() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.order) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.idle.Broadcast()
			s.mu.Unlock()
			<-s.wake
			s.mu.Lock()
		}
		key := s.order[0]
		s.order = s.order[1:]
		op, ok := s.pending[key]
		if !ok {
			s.mu.Unlock()
			continue
		}
		delete(s.pending, key)
		s.inFlight++
		s.mu.Unlock()

		if op.del {
			s.applyDelete(key)
		} else {
			s.applyPut(op.rec, op.body)
		}

		s.mu.Lock()
		s.inFlight--
		if len(s.order) == 0 && s.inFlight == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// applyPut writes the blob (if not already referenced), appends the
// journal record, updates the index, and enforces the byte budget.
// Blob-before-journal: a crash between the two strands an orphan blob,
// never a record without bytes.
func (s *Store) applyPut(rec Record, body []byte) {
	s.mu.Lock()
	haveBlob := s.refs[rec.Digest] > 0
	s.mu.Unlock()
	if !haveBlob {
		if err := s.writeBlob(rec.Digest, body); err != nil {
			s.writeErrs.Add(1)
			return
		}
	}
	s.mu.Lock()
	if err := s.appendLocked(rec); err != nil {
		s.mu.Unlock()
		s.writeErrs.Add(1)
		return
	}
	old, hadOld := s.dropLocked(rec.Key)
	s.records[rec.Key] = rec
	s.refs[rec.Digest]++
	s.bytes += rec.Size
	var stale []string
	if hadOld && old.Digest != rec.Digest && s.refs[old.Digest] == 0 {
		stale = append(stale, old.Digest)
	}
	stale = append(stale, s.enforceBudgetLocked(rec.Key)...)
	s.maybeCompactLocked()
	s.mu.Unlock()
	for _, d := range stale {
		os.Remove(s.blobPath(d))
	}
	s.writes.Add(1)
}

func (s *Store) applyDelete(key string) {
	s.mu.Lock()
	old, had := s.dropLocked(key)
	if !had {
		s.mu.Unlock()
		return
	}
	if err := s.appendLocked(Record{Key: key, Del: true}); err != nil {
		s.writeErrs.Add(1)
	}
	removeBlob := s.refs[old.Digest] == 0
	s.maybeCompactLocked()
	s.mu.Unlock()
	if removeBlob {
		os.Remove(s.blobPath(old.Digest))
	}
	s.deletes.Add(1)
}

// writeBlob writes body to its content-addressed path via temp+rename
// so a crash never leaves a half-written blob under the final name.
func (s *Store) writeBlob(digest string, body []byte) error {
	path := s.blobPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), digest+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// appendLocked appends one journal line. Called with s.mu held.
func (s *Store) appendLocked(rec Record) error {
	if s.journal == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, journalName),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.journal = f
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.journal.Write(line); err != nil {
		return err
	}
	s.journalLen++
	return nil
}

// enforceBudgetLocked evicts oldest-validated records until bytes fit
// the budget, sparing protect (the key just written). Returns digests
// whose blobs should be removed by the caller after unlocking.
func (s *Store) enforceBudgetLocked(protect string) []string {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return nil
	}
	type aged struct {
		key string
		at  time.Time
	}
	victims := make([]aged, 0, len(s.records))
	for key, rec := range s.records {
		if key == protect {
			continue
		}
		victims = append(victims, aged{key, rec.ValidatedAt})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].at.Before(victims[j].at) })
	var stale []string
	for _, v := range victims {
		if s.bytes <= s.maxBytes {
			break
		}
		old, had := s.dropLocked(v.key)
		if !had {
			continue
		}
		if err := s.appendLocked(Record{Key: v.key, Del: true}); err != nil {
			s.writeErrs.Add(1)
		}
		if s.refs[old.Digest] == 0 {
			stale = append(stale, old.Digest)
		}
		s.evictions.Add(1)
	}
	return stale
}

// maybeCompactLocked rewrites the journal when it has grown well past
// the live record count. Called with s.mu held.
func (s *Store) maybeCompactLocked() {
	if s.journalLen > 1024 && s.journalLen > 4*len(s.records) {
		if err := s.compactLocked(); err != nil {
			s.writeErrs.Add(1)
		}
	}
}

// compact rewrites the journal to one line per live record.
func (s *Store) compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp, err := os.CreateTemp(s.dir, journalName+".*.tmp")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	w := bufio.NewWriter(tmp)
	keys := make([]string, 0, len(s.records))
	for key := range s.records {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		line, err := json.Marshal(s.records[key])
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("diskstore: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("diskstore: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, journalName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	s.journalLen = len(s.records)
	return nil
}

// Verify is a read-only consistency check over a store directory: the
// journal must parse (torn tails tolerated), and every live record's
// blob must exist with matching size and digest. Orphan blobs are fine
// (they are garbage, not corruption). It returns the live record count.
// Used by cmd/diskcheck and the crash-consistency smoke test.
func Verify(dir string) (int, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // empty store is consistent
		}
		return 0, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	live := make(map[string]Record)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail
		}
		if rec.Del {
			delete(live, rec.Key)
			continue
		}
		if rec.Key != "" && rec.Digest != "" {
			live[rec.Key] = rec
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return 0, fmt.Errorf("diskstore: %w", err)
	}
	for key, rec := range live {
		prefix := "00"
		if len(rec.Digest) >= 2 {
			prefix = rec.Digest[:2]
		}
		path := filepath.Join(dir, "blobs", prefix, rec.Digest)
		body, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("diskstore: record %q: blob missing: %w", key, err)
		}
		if int64(len(body)) != rec.Size {
			return 0, fmt.Errorf("diskstore: record %q: blob size %d, index says %d", key, len(body), rec.Size)
		}
		sum := sha256.Sum256(body)
		if got := hex.EncodeToString(sum[:]); got != rec.Digest {
			return 0, fmt.Errorf("diskstore: record %q: blob digest mismatch", key)
		}
	}
	return len(live), nil
}
