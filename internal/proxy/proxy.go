// Package proxy implements the simulated caching proxy: cache entries,
// the TTR-driven refresh scheduler, and the wiring between per-object
// consistency policies and the mutual-consistency controllers. It mirrors
// the paper's simulation methodology (§6.1.1): an infinitely large cache,
// fixed network latency, and tolerances known to the proxy.
//
// Every poll is recorded in a per-object refresh log; the fidelity
// evaluator (internal/metrics) computes the paper's metrics post-hoc from
// those logs, so the proxy itself stays measurement-free.
package proxy

import (
	"fmt"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/origin"
	"broadway/internal/sim"
	"broadway/internal/simtime"
)

// Proxy is a simulated caching proxy attached to a simulation engine and
// an origin server.
type Proxy struct {
	engine *sim.Engine
	origin *origin.Server

	entries map[core.ObjectID]*entry
	pairs   []*pairEntry
	groups  []*group

	failedPolls uint64
	hits        uint64
	misses      uint64
}

// entry is one individually scheduled cached object.
type entry struct {
	id     core.ObjectID
	policy core.Policy

	// serverSync is the server instant the cached copy reflects (the
	// If-Modified-Since timestamp of the next poll).
	serverSync simtime.Time
	version    int
	value      float64
	hasValue   bool
	fetched    bool

	nextAt     simtime.Time
	nextHandle sim.Handle
	inFlight   bool

	log      []metrics.Refresh
	grp      *group
	polls    uint64
	trigged  uint64
	failures uint64
}

// group couples related entries with a mutual-consistency controller.
type group struct {
	members    []*entry
	controller *core.MutualTimeController
}

// pairEntry drives two value objects polled jointly under a pair policy
// (the adaptive virtual-object approach of §4.2).
type pairEntry struct {
	a, b       *entry
	policy     *core.MutualValueAdaptive
	nextAt     simtime.Time
	nextHandle sim.Handle
}

// New returns a proxy bound to the engine and origin.
func New(engine *sim.Engine, org *origin.Server) *Proxy {
	return &Proxy{
		engine:  engine,
		origin:  org,
		entries: make(map[core.ObjectID]*entry),
	}
}

// RegisterOption customizes object registration.
type RegisterOption func(*entry)

// RegisterObject places the object in the cache and schedules its refresh
// loop: an initial fetch at the current instant, then polls on the
// policy's TTR sequence.
func (p *Proxy) RegisterObject(id core.ObjectID, policy core.Policy, opts ...RegisterOption) error {
	if _, dup := p.entries[id]; dup {
		return fmt.Errorf("proxy: object %q already registered", id)
	}
	if policy == nil {
		return fmt.Errorf("proxy: object %q registered without a policy", id)
	}
	e := &entry{id: id, policy: policy}
	for _, opt := range opts {
		opt(e)
	}
	p.entries[id] = e
	// The initial fetch is a poll like any other; it primes the cache.
	e.nextAt = p.engine.Now()
	e.nextHandle = p.engine.ScheduleAt(e.nextAt, sim.EventFunc(func(*sim.Engine) {
		p.poll(e)
	}))
	return nil
}

// RegisterGroup attaches a mutual-consistency controller to a set of
// already-registered objects. Each object may belong to at most one
// group.
func (p *Proxy) RegisterGroup(ids []core.ObjectID, controller *core.MutualTimeController) error {
	if len(ids) < 2 {
		return fmt.Errorf("proxy: a group needs at least two members")
	}
	g := &group{controller: controller}
	for _, id := range ids {
		e, ok := p.entries[id]
		if !ok {
			return fmt.Errorf("proxy: group member %q not registered", id)
		}
		if e.grp != nil {
			return fmt.Errorf("proxy: object %q already grouped", id)
		}
		g.members = append(g.members, e)
	}
	for _, e := range g.members {
		e.grp = g
	}
	p.groups = append(p.groups, g)
	return nil
}

// RegisterPair places two value objects under a joint pair policy: both
// are polled together on the pair policy's TTR sequence (the adaptive
// virtual-object approach). The objects must not also be individually
// registered.
func (p *Proxy) RegisterPair(idA, idB core.ObjectID, policy *core.MutualValueAdaptive) error {
	if idA == idB {
		return fmt.Errorf("proxy: pair needs two distinct objects")
	}
	for _, id := range []core.ObjectID{idA, idB} {
		if _, dup := p.entries[id]; dup {
			return fmt.Errorf("proxy: object %q already registered", id)
		}
	}
	pe := &pairEntry{
		a:      &entry{id: idA},
		b:      &entry{id: idB},
		policy: policy,
	}
	p.entries[idA] = pe.a
	p.entries[idB] = pe.b
	p.pairs = append(p.pairs, pe)
	p.schedulePair(pe, 0)
	return nil
}

// schedulePair books the pair's next joint poll ttr from now.
func (p *Proxy) schedulePair(pe *pairEntry, ttr time.Duration) {
	pe.nextAt = p.engine.Now().Add(ttr)
	pe.nextHandle = p.engine.ScheduleAt(pe.nextAt, sim.EventFunc(func(*sim.Engine) {
		p.pollPair(pe)
	}))
}

// RegisterPushObject places the object under server-push strong
// consistency (paper Eq. 1 and footnote 1): instead of the proxy polling,
// the origin pushes every update as it happens, so the cached copy is
// always current. This is the reference point the paper's Δ-consistency
// mechanisms relax; it costs one message per update regardless of
// interest in the object.
func (p *Proxy) RegisterPushObject(id core.ObjectID) error {
	if _, dup := p.entries[id]; dup {
		return fmt.Errorf("proxy: object %q already registered", id)
	}
	tr, ok := p.origin.Trace(id)
	if !ok {
		return fmt.Errorf("proxy: origin does not host %q", id)
	}
	e := &entry{id: id}
	p.entries[id] = e

	push := func(e *entry) {
		now := p.engine.Now()
		resp, err := p.origin.Poll(e.id, now, e.serverSync)
		if err != nil {
			e.failures++
			p.failedPolls++
			return
		}
		e.polls++ // each push is one message, counted like a poll
		e.fetched = true
		e.serverSync = now
		e.version = resp.Version
		if resp.HasValue {
			e.value = resp.Value
			e.hasValue = true
		}
		e.log = append(e.log, metrics.Refresh{
			At: now, Modified: resp.Modified, Version: resp.Version, Value: resp.Value,
		})
	}
	// Initial transfer now, then one push per server update.
	p.engine.ScheduleAt(p.engine.Now(), sim.EventFunc(func(*sim.Engine) { push(e) }))
	for _, u := range tr.Updates {
		at := simtime.At(u.At)
		if at.Before(p.engine.Now()) {
			continue
		}
		p.engine.ScheduleAt(at, sim.EventFunc(func(*sim.Engine) { push(e) }))
	}
	return nil
}

// poll initiates a refresh of the entry's object: the request crosses the
// network (one-way latency), the origin evaluates it, and the response
// crosses back before it is applied. With the default zero latency the
// whole exchange completes at the current instant (events fire in FIFO
// order), matching the paper's fixed-latency simplification (§6.1.1).
func (p *Proxy) poll(e *entry) {
	e.inFlight = true
	p.engine.AfterLatency(sim.EventFunc(func(eng *sim.Engine) {
		serverTime := eng.Now()
		resp, err := p.origin.Poll(e.id, serverTime, e.serverSync)
		p.engine.AfterLatency(sim.EventFunc(func(*sim.Engine) {
			p.applyPoll(e, resp, err, serverTime)
		}))
	}))
}

// applyPoll applies the poll response once it has arrived back at the
// proxy, consults the policy for the next TTR, and lets the group
// controller trigger polls of related objects.
func (p *Proxy) applyPoll(e *entry, resp origin.Response, err error, serverTime simtime.Time) {
	if err != nil {
		// Origin down: count the failure and retry after the policy's
		// floor interval, without feeding the policy a fake outcome.
		e.failures++
		p.failedPolls++
		e.inFlight = false
		p.schedule(e, e.policy.InitialTTR())
		return
	}
	e.polls++

	outcome := core.PollOutcome{
		Now:             serverTime,
		Prev:            e.serverSync,
		Modified:        resp.Modified,
		LastModified:    resp.LastModified,
		HasLastModified: resp.HasLastModified,
		History:         resp.History,
		HasValue:        resp.HasValue,
		Value:           resp.Value,
		PrevValue:       e.value,
	}

	first := !e.fetched
	e.fetched = true
	e.serverSync = serverTime
	e.version = resp.Version
	if resp.HasValue {
		e.value = resp.Value
		e.hasValue = true
	}
	e.log = append(e.log, metrics.Refresh{
		At:       serverTime,
		Modified: resp.Modified,
		Version:  resp.Version,
		Value:    resp.Value,
	})

	var ttr time.Duration
	if first {
		// The initial fetch precedes any meaningful interval; start at
		// the policy's initial TTR.
		ttr = e.policy.InitialTTR()
	} else {
		ttr = e.policy.NextTTR(outcome)
	}
	e.inFlight = false
	p.schedule(e, ttr)

	if e.grp != nil {
		e.grp.controller.ObserveOutcome(e.id, outcome)
		if resp.Modified && !first {
			p.triggerRelated(e, p.engine.Now())
		}
	}
}

// schedule books the entry's next poll ttr from now.
func (p *Proxy) schedule(e *entry, ttr time.Duration) {
	e.nextAt = p.engine.Now().Add(ttr)
	e.nextHandle = p.engine.ScheduleAt(e.nextAt, sim.EventFunc(func(*sim.Engine) {
		p.poll(e)
	}))
}

// triggerRelated asks the group controller which related objects need an
// immediate extra poll after e was observed to change. Triggered polls are
// layered on top of the objects' own LIMD schedules (paper §3.2: "an
// additional poll is triggered"): they refresh the cache and advance the
// validation timestamp but neither feed the object's policy nor disturb
// its regular schedule.
func (p *Proxy) triggerRelated(e *entry, now simtime.Time) {
	for _, other := range e.grp.members {
		if other == e || other.inFlight {
			continue
		}
		if !e.grp.controller.ShouldTrigger(e.id, other.id, now, other.serverSync, other.nextAt) {
			continue
		}
		other := other
		p.engine.ScheduleAt(now, sim.EventFunc(func(*sim.Engine) {
			p.pollTriggered(other)
		}))
	}
}

// pollTriggered performs a controller-triggered extra poll: it refreshes
// the cached copy and records the poll, leaving the object's own TTR
// schedule untouched.
func (p *Proxy) pollTriggered(e *entry) {
	p.engine.AfterLatency(sim.EventFunc(func(eng *sim.Engine) {
		serverTime := eng.Now()
		resp, err := p.origin.Poll(e.id, serverTime, e.serverSync)
		p.engine.AfterLatency(sim.EventFunc(func(*sim.Engine) {
			p.applyTriggered(e, resp, err, serverTime)
		}))
	}))
}

// applyTriggered applies a triggered poll's response.
func (p *Proxy) applyTriggered(e *entry, resp origin.Response, err error, now simtime.Time) {
	if err != nil {
		e.failures++
		p.failedPolls++
		return // the regular schedule will retry
	}
	e.polls++
	e.trigged++

	outcome := core.PollOutcome{
		Now:             now,
		Prev:            e.serverSync,
		Modified:        resp.Modified,
		LastModified:    resp.LastModified,
		HasLastModified: resp.HasLastModified,
		History:         resp.History,
		HasValue:        resp.HasValue,
		Value:           resp.Value,
		PrevValue:       e.value,
	}
	e.fetched = true
	e.serverSync = now
	e.version = resp.Version
	if resp.HasValue {
		e.value = resp.Value
		e.hasValue = true
	}
	e.log = append(e.log, metrics.Refresh{
		At:        now,
		Modified:  resp.Modified,
		Version:   resp.Version,
		Value:     resp.Value,
		Triggered: true,
	})
	// The controller still learns from what the extra poll revealed.
	if e.grp != nil {
		e.grp.controller.ObserveOutcome(e.id, outcome)
	}
}

// pollPair fetches both members of a pair (two polls over the network)
// and consults the pair policy.
func (p *Proxy) pollPair(pe *pairEntry) {
	p.engine.AfterLatency(sim.EventFunc(func(eng *sim.Engine) {
		serverTime := eng.Now()
		respA, errA := p.origin.Poll(pe.a.id, serverTime, pe.a.serverSync)
		respB, errB := p.origin.Poll(pe.b.id, serverTime, pe.b.serverSync)
		p.engine.AfterLatency(sim.EventFunc(func(*sim.Engine) {
			p.applyPair(pe, respA, respB, errA, errB, serverTime)
		}))
	}))
}

// applyPair applies a joint pair-poll response.
func (p *Proxy) applyPair(pe *pairEntry, respA, respB origin.Response, errA, errB error, now simtime.Time) {
	if errA != nil || errB != nil {
		p.failedPolls++
		p.schedulePair(pe, pe.policy.InitialTTR())
		return
	}
	pe.a.polls++
	pe.b.polls++

	outcome := core.PairOutcome{
		Now:        now,
		Prev:       pe.a.serverSync,
		ValueA:     respA.Value,
		ValueB:     respB.Value,
		PrevValueA: pe.a.value,
		PrevValueB: pe.b.value,
	}
	first := !pe.a.fetched

	apply := func(e *entry, resp origin.Response) {
		e.fetched = true
		e.serverSync = now
		e.version = resp.Version
		e.value = resp.Value
		e.hasValue = resp.HasValue
		e.log = append(e.log, metrics.Refresh{
			At: now, Modified: resp.Modified, Version: resp.Version, Value: resp.Value,
		})
	}
	apply(pe.a, respA)
	apply(pe.b, respB)

	var ttr time.Duration
	if first {
		ttr = pe.policy.InitialTTR()
	} else {
		ttr = pe.policy.NextTTR(outcome)
	}
	p.schedulePair(pe, ttr)
}

// CachedCopy is the proxy's view of one object, served to clients on
// cache hits.
type CachedCopy struct {
	Version  int
	Value    float64
	HasValue bool
	// AsOf is the server instant the copy reflects.
	AsOf simtime.Time
}

// Lookup serves a client request from the cache. ok is false when the
// object is unknown or its initial fetch has not completed yet.
func (p *Proxy) Lookup(id core.ObjectID) (CachedCopy, bool) {
	e, found := p.entries[id]
	if !found || !e.fetched {
		return CachedCopy{}, false
	}
	return CachedCopy{
		Version:  e.version,
		Value:    e.value,
		HasValue: e.hasValue,
		AsOf:     e.serverSync,
	}, true
}

// HandleRequest serves a client request at the current simulated instant.
// A request for a cached object is a hit, served locally (paper §2:
// "cache hits are serviced using locally cached data"). A request for an
// unknown object is a miss: the object is fetched from the origin and
// admitted under a policy built by mkPolicy, mirroring miss-driven
// admission in a real proxy.
func (p *Proxy) HandleRequest(id core.ObjectID, mkPolicy func() core.Policy) (hit bool, err error) {
	if e, ok := p.entries[id]; ok && e.fetched {
		p.hits++
		return true, nil
	}
	if _, ok := p.entries[id]; ok {
		// Registered but the initial fetch has not fired yet (same
		// instant): a miss served by the in-flight fetch.
		p.misses++
		return false, nil
	}
	p.misses++
	if err := p.RegisterObject(id, mkPolicy()); err != nil {
		return false, err
	}
	return false, nil
}

// Hits returns the number of client requests served from the cache.
func (p *Proxy) Hits() uint64 { return p.hits }

// Misses returns the number of client requests that required a fetch.
func (p *Proxy) Misses() uint64 { return p.misses }

// Log returns the refresh log recorded for the object. The returned slice
// is a copy.
func (p *Proxy) Log(id core.ObjectID) []metrics.Refresh {
	e, ok := p.entries[id]
	if !ok {
		return nil
	}
	out := make([]metrics.Refresh, len(e.log))
	copy(out, e.log)
	return out
}

// Polls returns the number of successful polls performed for the object.
func (p *Proxy) Polls(id core.ObjectID) uint64 {
	if e, ok := p.entries[id]; ok {
		return e.polls
	}
	return 0
}

// TriggeredPolls returns the number of controller-triggered polls
// performed for the object.
func (p *Proxy) TriggeredPolls(id core.ObjectID) uint64 {
	if e, ok := p.entries[id]; ok {
		return e.trigged
	}
	return 0
}

// TotalPolls returns the number of successful polls across all objects.
func (p *Proxy) TotalPolls() uint64 {
	var total uint64
	for _, e := range p.entries {
		total += e.polls
	}
	return total
}

// FailedPolls returns the number of polls that failed because the origin
// was unavailable.
func (p *Proxy) FailedPolls() uint64 { return p.failedPolls }

// Recover models the proxy restarting after a failure (paper §3.1):
// every policy resets to its initial TTR — the paper's one-line recovery
// story — and every object is revalidated immediately, since cached state
// may be arbitrarily stale after the outage. Refresh logs survive (they
// model external measurement, not proxy state).
func (p *Proxy) Recover() {
	for _, e := range p.entries {
		if e.policy == nil {
			continue // pair members recover through their pairEntry
		}
		e.policy.Reset()
		p.engine.Cancel(e.nextHandle)
		p.schedule(e, 0)
	}
	for _, pe := range p.pairs {
		pe.policy.Reset()
		p.engine.Cancel(pe.nextHandle)
		p.schedulePair(pe, 0)
	}
	for _, g := range p.groups {
		g.controller.Reset()
	}
}
