package proxy

import (
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/metrics"
	"broadway/internal/origin"
	"broadway/internal/sim"
	"broadway/internal/simtime"
	"broadway/internal/trace"
)

func newsTrace() *trace.Trace {
	return &trace.Trace{
		Name: "news", Kind: trace.Temporal, Duration: 2 * time.Hour,
		Updates: []trace.Update{
			{At: 10 * time.Minute}, {At: 20 * time.Minute}, {At: 45 * time.Minute},
			{At: 80 * time.Minute},
		},
	}
}

func stockTrace(name string, vals ...float64) *trace.Trace {
	tr := &trace.Trace{Name: name, Kind: trace.Value, Duration: 2 * time.Hour, InitialValue: vals[0]}
	for i, v := range vals[1:] {
		tr.Updates = append(tr.Updates, trace.Update{
			At: time.Duration(i+1) * 10 * time.Minute, Value: v,
		})
	}
	return tr
}

func setup(t *testing.T) (*sim.Engine, *origin.Server, *Proxy) {
	t.Helper()
	engine := sim.New(0)
	org := origin.New()
	return engine, org, New(engine, org)
}

func TestPeriodicPollingSchedule(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewPeriodic(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Initial fetch at 0 plus polls every 10m through 120m inclusive.
	if got := px.Polls("n"); got != 13 {
		t.Errorf("Polls = %d, want 13", got)
	}
	log := px.Log("n")
	if len(log) != 13 {
		t.Fatalf("log length = %d", len(log))
	}
	for i, r := range log {
		want := simtime.At(time.Duration(i) * 10 * time.Minute)
		if r.At != want {
			t.Errorf("poll %d at %v, want %v", i, r.At, want)
		}
	}
	// The 10m poll must see the 10m update: version 1, modified.
	if !log[1].Modified || log[1].Version != 1 {
		t.Errorf("poll@10m = %+v", log[1])
	}
	// The 30m poll sees version 2 (from 20m).
	if log[3].Version != 2 {
		t.Errorf("poll@30m version = %d", log[3].Version)
	}
}

func TestVersionsMonotoneAtProxy(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewLIMD(core.LIMDConfig{Delta: 5 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	prev := -1
	for i, r := range px.Log("n") {
		if r.Version < prev {
			t.Fatalf("version regressed at poll %d: %d < %d", i, r.Version, prev)
		}
		prev = r.Version
	}
}

func TestLIMDBacksOffOnQuietObject(t *testing.T) {
	engine, org, px := setup(t)
	static := &trace.Trace{Name: "s", Kind: trace.Temporal, Duration: 12 * time.Hour}
	if err := org.Host("s", static, false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("s", core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(12 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	limdPolls := px.Polls("s")
	// A periodic poller would poll 73 times; LIMD must back off toward
	// TTRmax = 60m, i.e. well under half of that.
	if limdPolls > 30 {
		t.Errorf("LIMD polled a static object %d times", limdPolls)
	}
}

func TestRegistrationErrors(t *testing.T) {
	_, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewPeriodic(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewPeriodic(time.Minute)); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := px.RegisterObject("m", nil); err == nil {
		t.Error("nil policy must fail")
	}
}

func TestGroupRegistrationErrors(t *testing.T) {
	_, org, px := setup(t)
	if err := org.Host("a", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("a", core.NewPeriodic(time.Minute)); err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{
		Delta: time.Minute, Mode: core.TriggerAll,
	})
	if err := px.RegisterGroup([]core.ObjectID{"a"}, ctrl); err == nil {
		t.Error("single-member group must fail")
	}
	if err := px.RegisterGroup([]core.ObjectID{"a", "missing"}, ctrl); err == nil {
		t.Error("unregistered member must fail")
	}
}

func TestTriggeredPollsSynchronizeGroup(t *testing.T) {
	engine, org, px := setup(t)
	// A changes at 30m; B never changes. With TriggerAll, the update to
	// A must trigger a poll of B even though B's own LIMD schedule has
	// backed off.
	trA := &trace.Trace{Name: "a", Kind: trace.Temporal, Duration: 4 * time.Hour,
		Updates: []trace.Update{{At: 150 * time.Minute}}}
	trB := &trace.Trace{Name: "b", Kind: trace.Temporal, Duration: 4 * time.Hour}
	if err := org.Host("a", trA, false); err != nil {
		t.Fatal(err)
	}
	if err := org.Host("b", trB, false); err != nil {
		t.Fatal(err)
	}
	// Different Δs desynchronize the two LIMD schedules; an in-phase
	// pair would (correctly) never need triggering.
	if err := px.RegisterObject("a", core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("b", core.NewLIMD(core.LIMDConfig{Delta: 7 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{
		Delta: 5 * time.Minute, Mode: core.TriggerAll,
	})
	if err := px.RegisterGroup([]core.ObjectID{"a", "b"}, ctrl); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(4 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if px.TriggeredPolls("b") == 0 {
		t.Error("update to a must have triggered a poll of b")
	}
	// Triggered polls are flagged in the log.
	found := false
	for _, r := range px.Log("b") {
		if r.Triggered {
			found = true
			break
		}
	}
	if !found {
		t.Error("no triggered refresh recorded in b's log")
	}
	if ctrl.Triggered() == 0 {
		t.Error("controller must count its triggers")
	}
}

func TestBaselineModeNeverTriggers(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("a", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := org.Host("b", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("a", core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("b", core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{
		Delta: 5 * time.Minute, Mode: core.TriggerNone,
	})
	if err := px.RegisterGroup([]core.ObjectID{"a", "b"}, ctrl); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if px.TriggeredPolls("a")+px.TriggeredPolls("b") != 0 {
		t.Error("baseline mode must never trigger")
	}
}

func TestPairPolling(t *testing.T) {
	engine, org, px := setup(t)
	trA := stockTrace("a", 100, 101, 102, 103)
	trB := stockTrace("b", 50, 50.5, 51, 51.5)
	if err := org.Host("a", trA, false); err != nil {
		t.Fatal(err)
	}
	if err := org.Host("b", trB, false); err != nil {
		t.Fatal(err)
	}
	pol := core.NewMutualValueAdaptive(core.MutualValueConfig{
		Delta:  0.5,
		Bounds: core.TTRBounds{Min: time.Minute, Max: 30 * time.Minute},
	})
	if err := px.RegisterPair("a", "b", pol); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Pair polls happen jointly: equal counts, aligned instants.
	if px.Polls("a") != px.Polls("b") {
		t.Errorf("pair polls diverged: %d vs %d", px.Polls("a"), px.Polls("b"))
	}
	logA, logB := px.Log("a"), px.Log("b")
	for i := range logA {
		if logA[i].At != logB[i].At {
			t.Fatalf("pair poll %d not aligned: %v vs %v", i, logA[i].At, logB[i].At)
		}
	}
	if px.Polls("a") < 2 {
		t.Error("pair must poll repeatedly")
	}
}

func TestPairRegistrationErrors(t *testing.T) {
	_, org, px := setup(t)
	if err := org.Host("a", stockTrace("a", 1, 2), false); err != nil {
		t.Fatal(err)
	}
	pol := core.NewMutualValueAdaptive(core.MutualValueConfig{Delta: 1})
	if err := px.RegisterPair("a", "a", pol); err == nil {
		t.Error("identical pair members must fail")
	}
	if err := px.RegisterObject("a", core.NewPeriodic(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterPair("a", "b", pol); err == nil {
		t.Error("already-registered member must fail")
	}
}

func TestLookup(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("s", stockTrace("s", 100, 105), false); err != nil {
		t.Fatal(err)
	}
	if _, ok := px.Lookup("s"); ok {
		t.Error("lookup before registration must miss")
	}
	if err := px.RegisterObject("s", core.NewPeriodic(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	copy, ok := px.Lookup("s")
	if !ok {
		t.Fatal("lookup after initial fetch must hit")
	}
	if !copy.HasValue || copy.Value != 105 || copy.Version != 1 {
		t.Errorf("cached copy = %+v", copy)
	}
	if copy.AsOf != simtime.At(30*time.Minute) {
		t.Errorf("AsOf = %v", copy.AsOf)
	}
}

func TestOriginFailureAndRecovery(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	pollsBefore := px.Polls("n")

	// Origin goes down for 30 minutes: polls fail but retries continue.
	org.SetAvailable(false)
	if err := engine.Run(simtime.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if px.FailedPolls() == 0 {
		t.Error("downtime must produce failed polls")
	}
	if px.Polls("n") != pollsBefore {
		t.Error("failed polls must not count as successes")
	}

	// Origin recovers: polling resumes.
	org.SetAvailable(true)
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if px.Polls("n") <= pollsBefore {
		t.Error("polling must resume after recovery")
	}
}

func TestProxyRecoverResetsPolicies(t *testing.T) {
	engine, org, px := setup(t)
	static := &trace.Trace{Name: "s", Kind: trace.Temporal, Duration: 12 * time.Hour}
	if err := org.Host("s", static, false); err != nil {
		t.Fatal(err)
	}
	limd := core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute})
	if err := px.RegisterObject("s", limd); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(6 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if limd.TTR() != 60*time.Minute {
		t.Fatalf("setup: TTR = %v, want TTRmax", limd.TTR())
	}
	px.Recover()
	if limd.TTR() != limd.InitialTTR() {
		t.Errorf("TTR after Recover = %v, want initial", limd.TTR())
	}
	// The proxy must poll immediately after recovery, not wait for the
	// stale 60m schedule.
	now := engine.Now()
	if err := engine.Run(now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	log := px.Log("s")
	if log[len(log)-1].At != now {
		t.Errorf("no immediate revalidation after Recover: last poll at %v, want %v",
			log[len(log)-1].At, now)
	}
}

func TestStatsForUnknownObject(t *testing.T) {
	_, _, px := setup(t)
	if px.Polls("x") != 0 || px.TriggeredPolls("x") != 0 || px.Log("x") != nil {
		t.Error("unknown object stats must be zero")
	}
}

func TestLogIsACopy(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewPeriodic(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	log := px.Log("n")
	log[0].Version = 999
	if px.Log("n")[0].Version == 999 {
		t.Error("Log must return a copy")
	}
}

func TestPushObjectStrongConsistency(t *testing.T) {
	engine, org, px := setup(t)
	tr := newsTrace()
	if err := org.Host("n", tr, false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterPushObject("n"); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterPushObject("n"); err == nil {
		t.Fatal("duplicate push registration must fail")
	}
	if err := px.RegisterPushObject("missing"); err == nil {
		t.Fatal("unknown object must fail")
	}
	if err := engine.Run(simtime.At(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	// One initial transfer + one push per update.
	if got := px.Polls("n"); got != uint64(1+tr.NumUpdates()) {
		t.Errorf("messages = %d, want %d", got, 1+tr.NumUpdates())
	}
	// The cached copy is always the current version: zero violations
	// and zero out-of-sync time for any Δ.
	rep := metrics.EvaluateTemporal(tr, px.Log("n"), time.Nanosecond, 2*time.Hour)
	if rep.Violations != 0 || rep.OutOfSync != 0 {
		t.Errorf("push must give strong consistency: %+v", rep)
	}
	copy, ok := px.Lookup("n")
	if !ok || copy.Version != tr.NumUpdates() {
		t.Errorf("cached copy = %+v", copy)
	}
}

func TestHandleRequestHitsAndMisses(t *testing.T) {
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	mk := func() core.Policy { return core.NewLIMD(core.LIMDConfig{Delta: 10 * time.Minute}) }

	// First request: miss, admits the object.
	hit, err := px.HandleRequest("n", mk)
	if err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v, want miss", hit, err)
	}
	// Same-instant request: still a miss (initial fetch pending).
	hit, err = px.HandleRequest("n", mk)
	if err != nil || hit {
		t.Fatalf("second request: hit=%v err=%v, want miss", hit, err)
	}
	if err := engine.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// After the fetch: hit.
	hit, err = px.HandleRequest("n", mk)
	if err != nil || !hit {
		t.Fatalf("third request: hit=%v err=%v, want hit", hit, err)
	}
	if px.Hits() != 1 || px.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", px.Hits(), px.Misses())
	}
	// The admitted object is refreshed like any registered object.
	if err := engine.Run(simtime.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if px.Polls("n") < 2 {
		t.Errorf("admitted object not refreshed: polls=%d", px.Polls("n"))
	}
}

func TestNetworkLatencyDelaysRefresh(t *testing.T) {
	// With a one-way latency L, a poll initiated at t observes the
	// server at t+L and is applied at t+2L.
	engine := sim.New(30 * time.Second)
	org := origin.New()
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	px := New(engine, org)
	if err := px.RegisterObject("n", core.NewPeriodic(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	log := px.Log("n")
	if len(log) == 0 {
		t.Fatal("no polls")
	}
	// The initial fetch was scheduled at t=0; its server observation is
	// at t=30s (one-way latency).
	if log[0].At != simtime.At(30*time.Second) {
		t.Errorf("first observation at %v, want 30s", log[0].At)
	}
	// The second poll departs at apply time (60s) + TTR (10m).
	if len(log) > 1 && log[1].At != simtime.At(time.Minute+10*time.Minute+30*time.Second) {
		t.Errorf("second observation at %v", log[1].At)
	}
}

func TestZeroLatencyMatchesLegacyBehavior(t *testing.T) {
	// With zero latency the whole poll exchange completes at the poll
	// instant — the configuration used by all paper experiments.
	engine, org, px := setup(t)
	if err := org.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := px.RegisterObject("n", core.NewPeriodic(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(simtime.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	log := px.Log("n")
	for i, r := range log {
		if want := simtime.At(time.Duration(i) * 10 * time.Minute); r.At != want {
			t.Fatalf("poll %d at %v, want %v", i, r.At, want)
		}
	}
}
