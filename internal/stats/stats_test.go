package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.3)
	e.Observe(10)
	if !almostEqual(e.Value(), 10) {
		t.Errorf("Value = %v, want 10", e.Value())
	}
	if e.Samples() != 1 {
		t.Errorf("Samples = %d", e.Samples())
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(20)
	if !almostEqual(e.Value(), 15) {
		t.Errorf("Value = %v, want 15", e.Value())
	}
	e.Observe(30)
	if !almostEqual(e.Value(), 22.5) {
		t.Errorf("Value = %v, want 22.5", e.Value())
	}
}

func TestEWMAAlphaOneTracksLatest(t *testing.T) {
	e := NewEWMA(1)
	for _, v := range []float64{3, 7, -2} {
		e.Observe(v)
		if !almostEqual(e.Value(), v) {
			t.Errorf("alpha=1 Value = %v, want %v", e.Value(), v)
		}
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(5)
	e.Reset()
	if e.Value() != 0 || e.Samples() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: expected panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range samples {
		w.Observe(v)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty Welford must report zeros")
	}
	w.Observe(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single-sample Welford: mean 42, variance 0")
	}
}

func TestPropertyWelfordMeanMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Observe(float64(v))
			sum += float64(v)
		}
		return math.Abs(w.Mean()-sum/float64(len(raw))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator(1) // alpha=1: exact latest gap
	if r.Known() {
		t.Error("fresh estimator must not be Known")
	}
	r.ObserveEvent(10 * time.Second)
	if r.Known() || r.MeanGap() != 0 || r.Rate() != 0 {
		t.Error("one event is not enough for a rate")
	}
	r.ObserveEvent(30 * time.Second)
	if !r.Known() {
		t.Error("two events must produce a rate")
	}
	if r.MeanGap() != 20*time.Second {
		t.Errorf("MeanGap = %v", r.MeanGap())
	}
	if !almostEqual(r.Rate(), 0.05) {
		t.Errorf("Rate = %v, want 0.05/s", r.Rate())
	}
}

func TestRateEstimatorIgnoresRegression(t *testing.T) {
	r := NewRateEstimator(0.5)
	r.ObserveEvent(10 * time.Second)
	r.ObserveEvent(10 * time.Second) // duplicate: no gap recorded
	r.ObserveEvent(5 * time.Second)  // regression: ignored
	if r.Known() {
		t.Error("duplicates/regressions must not create gaps")
	}
	r.ObserveEvent(20 * time.Second)
	if r.MeanGap() != 10*time.Second {
		t.Errorf("MeanGap = %v, want 10s", r.MeanGap())
	}
}

func TestMinTracker(t *testing.T) {
	var m MinTracker
	if _, ok := m.Value(); ok {
		t.Error("fresh MinTracker must be empty")
	}
	m.Observe(5)
	m.Observe(3)
	m.Observe(8)
	v, ok := m.Value()
	if !ok || v != 3 {
		t.Errorf("Value = %v,%v", v, ok)
	}
	m.Observe(-1)
	if v, _ := m.Value(); v != -1 {
		t.Errorf("Value = %v after negative", v)
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(samples, tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty Quantile must be 0")
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5) {
		t.Errorf("interpolated Quantile = %v, want 2.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
}

func TestClampDuration(t *testing.T) {
	lo, hi := time.Minute, time.Hour
	if ClampDuration(30*time.Minute, lo, hi) != 30*time.Minute {
		t.Error("in-range clamp wrong")
	}
	if ClampDuration(time.Second, lo, hi) != lo {
		t.Error("low clamp wrong")
	}
	if ClampDuration(2*time.Hour, lo, hi) != hi {
		t.Error("high clamp wrong")
	}
}

func TestClampInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	ClampDuration(0, time.Hour, time.Minute)
}

func TestPropertyClampWithinBounds(t *testing.T) {
	f := func(v, a, b int32) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(float64(v), lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
