package stats

import (
	"fmt"
	"time"
)

// BoolTimeline accumulates the total time a boolean condition held, fed by
// state-change notifications. It backs the paper's out-of-sync-time
// fidelity metric (Eq. 14): f = 1 − (total out-of-sync time)/(trace
// duration).
//
// The zero value starts at instant 0 with the condition false; use
// NewBoolTimeline to start elsewhere.
type BoolTimeline struct {
	lastAt    time.Duration
	state     bool
	trueTotal time.Duration
	started   bool
}

// NewBoolTimeline returns a timeline beginning at the given offset with
// the given initial state.
func NewBoolTimeline(start time.Duration, state bool) *BoolTimeline {
	return &BoolTimeline{lastAt: start, state: state, started: true}
}

// Set records that the condition transitioned to state at the given
// offset. Instants must be nondecreasing; Set panics on regression since a
// time-weighted accumulator cannot un-count elapsed time.
func (b *BoolTimeline) Set(at time.Duration, state bool) {
	if !b.started {
		b.lastAt, b.started = at, true
	}
	if at < b.lastAt {
		panic(fmt.Sprintf("stats: BoolTimeline time regression: %v < %v", at, b.lastAt))
	}
	if b.state {
		b.trueTotal += at - b.lastAt
	}
	b.lastAt = at
	b.state = state
}

// TrueTotal returns the accumulated time the condition was true up to the
// given offset (which must be ≥ the last Set instant).
func (b *BoolTimeline) TrueTotal(now time.Duration) time.Duration {
	if !b.started || now < b.lastAt {
		return b.trueTotal
	}
	total := b.trueTotal
	if b.state {
		total += now - b.lastAt
	}
	return total
}

// State returns the current condition value.
func (b *BoolTimeline) State() bool { return b.state }

// StepSeries records a piecewise-constant time series (value changes at
// discrete instants) and can integrate or sample it. It is used to track
// computed TTR values and object values over a run (Figs. 4(b) and 8).
type StepSeries struct {
	times  []time.Duration
	values []float64
}

// Set appends a value change at the given offset. Offsets must be
// nondecreasing; setting at the same offset overwrites the latest value.
func (s *StepSeries) Set(at time.Duration, v float64) {
	n := len(s.times)
	if n > 0 && at < s.times[n-1] {
		panic(fmt.Sprintf("stats: StepSeries time regression: %v < %v", at, s.times[n-1]))
	}
	if n > 0 && at == s.times[n-1] {
		s.values[n-1] = v
		return
	}
	s.times = append(s.times, at)
	s.values = append(s.values, v)
}

// Len returns the number of change points.
func (s *StepSeries) Len() int { return len(s.times) }

// At samples the series at the given offset: the value of the latest
// change point at or before the offset. It returns 0 before the first
// change point.
func (s *StepSeries) At(at time.Duration) float64 {
	// Binary search for the last change point ≤ at.
	lo, hi := 0, len(s.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.times[mid] <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.values[lo-1]
}

// Points returns copies of the change instants and values, suitable for
// plotting. The returned slices are safe for the caller to modify.
func (s *StepSeries) Points() ([]time.Duration, []float64) {
	ts := make([]time.Duration, len(s.times))
	vs := make([]float64, len(s.values))
	copy(ts, s.times)
	copy(vs, s.values)
	return ts, vs
}

// Counter2h buckets event counts into fixed-width windows of simulated
// time. The paper's Fig. 4(a) plots "updates per 2 hours"; the window
// width is configurable.
type Counter2h struct {
	width  time.Duration
	counts map[int]int
	maxIdx int
}

// NewWindowCounter returns a counter with the given positive window width.
func NewWindowCounter(width time.Duration) *Counter2h {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	return &Counter2h{width: width, counts: make(map[int]int), maxIdx: -1}
}

// Observe counts one event at the given offset.
func (c *Counter2h) Observe(at time.Duration) {
	idx := int(at / c.width)
	c.counts[idx]++
	if idx > c.maxIdx {
		c.maxIdx = idx
	}
}

// Series returns one entry per window from 0 through the latest observed
// window: the window start offset and its event count.
func (c *Counter2h) Series() ([]time.Duration, []int) {
	if c.maxIdx < 0 {
		return nil, nil
	}
	times := make([]time.Duration, c.maxIdx+1)
	counts := make([]int, c.maxIdx+1)
	for i := 0; i <= c.maxIdx; i++ {
		times[i] = time.Duration(i) * c.width
		counts[i] = c.counts[i]
	}
	return times, counts
}
