package stats

import (
	"testing"
	"time"
)

func TestBoolTimeline(t *testing.T) {
	b := NewBoolTimeline(0, false)
	b.Set(10*time.Second, true)
	b.Set(25*time.Second, false)
	b.Set(30*time.Second, true)
	if got := b.TrueTotal(40 * time.Second); got != 25*time.Second {
		t.Errorf("TrueTotal = %v, want 25s", got)
	}
	if !b.State() {
		t.Error("final state should be true")
	}
}

func TestBoolTimelineRedundantSet(t *testing.T) {
	b := NewBoolTimeline(0, true)
	b.Set(10*time.Second, true) // no transition, still accumulates
	b.Set(20*time.Second, false)
	if got := b.TrueTotal(100 * time.Second); got != 20*time.Second {
		t.Errorf("TrueTotal = %v, want 20s", got)
	}
}

func TestBoolTimelineZeroValue(t *testing.T) {
	var b BoolTimeline
	b.Set(5*time.Second, true) // first Set anchors the start
	if got := b.TrueTotal(8 * time.Second); got != 3*time.Second {
		t.Errorf("TrueTotal = %v, want 3s", got)
	}
}

func TestBoolTimelineRegressionPanics(t *testing.T) {
	b := NewBoolTimeline(10*time.Second, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	b.Set(5*time.Second, true)
}

func TestBoolTimelineTrueTotalBeforeLast(t *testing.T) {
	b := NewBoolTimeline(0, true)
	b.Set(10*time.Second, false)
	// Querying earlier than the last transition returns the committed total.
	if got := b.TrueTotal(5 * time.Second); got != 10*time.Second {
		t.Errorf("TrueTotal = %v", got)
	}
}

func TestStepSeries(t *testing.T) {
	var s StepSeries
	s.Set(0, 1)
	s.Set(10*time.Second, 2)
	s.Set(20*time.Second, 3)
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1}, {5 * time.Second, 1}, {10 * time.Second, 2},
		{15 * time.Second, 2}, {25 * time.Second, 3},
	}
	for _, tt := range tests {
		if got := s.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStepSeriesBeforeFirstPoint(t *testing.T) {
	var s StepSeries
	s.Set(10*time.Second, 7)
	if got := s.At(5 * time.Second); got != 0 {
		t.Errorf("At before first point = %v, want 0", got)
	}
}

func TestStepSeriesSameInstantOverwrites(t *testing.T) {
	var s StepSeries
	s.Set(10*time.Second, 1)
	s.Set(10*time.Second, 2)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if got := s.At(10 * time.Second); got != 2 {
		t.Errorf("At = %v, want 2", got)
	}
}

func TestStepSeriesRegressionPanics(t *testing.T) {
	var s StepSeries
	s.Set(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	s.Set(5*time.Second, 2)
}

func TestStepSeriesPointsAreCopies(t *testing.T) {
	var s StepSeries
	s.Set(0, 1)
	ts, vs := s.Points()
	ts[0] = time.Hour
	vs[0] = 99
	if s.At(0) != 1 {
		t.Error("Points must return copies")
	}
}

func TestWindowCounter(t *testing.T) {
	c := NewWindowCounter(2 * time.Hour)
	c.Observe(30 * time.Minute)
	c.Observe(90 * time.Minute)
	c.Observe(3 * time.Hour)
	c.Observe(9 * time.Hour)

	times, counts := c.Series()
	if len(times) != 5 {
		t.Fatalf("windows = %d, want 5 (0h..8h)", len(times))
	}
	wantCounts := []int{2, 1, 0, 0, 1}
	for i, want := range wantCounts {
		if counts[i] != want {
			t.Errorf("window %d count = %d, want %d", i, counts[i], want)
		}
		if times[i] != time.Duration(i)*2*time.Hour {
			t.Errorf("window %d start = %v", i, times[i])
		}
	}
}

func TestWindowCounterEmpty(t *testing.T) {
	c := NewWindowCounter(time.Hour)
	times, counts := c.Series()
	if times != nil || counts != nil {
		t.Error("empty counter must return nil series")
	}
}

func TestWindowCounterInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive width")
		}
	}()
	NewWindowCounter(0)
}
