// Package stats provides small statistical estimators shared by the
// consistency policies and the experiment reports: exponentially weighted
// moving averages, running mean/variance (Welford), min/max trackers,
// rate estimators for update processes, and time-weighted accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: larger alpha weighs recent observations more heavily.
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	samples uint64
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average. The first sample
// initializes the average directly.
func (e *EWMA) Observe(v float64) {
	if e.samples == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.samples++
}

// Value returns the current average, or 0 before any samples.
func (e *EWMA) Value() float64 { return e.value }

// Samples returns the number of observations folded in so far.
func (e *EWMA) Samples() uint64 { return e.samples }

// Reset discards all state.
func (e *EWMA) Reset() { e.value, e.samples = 0, 0 }

// Welford accumulates running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds in a sample.
func (w *Welford) Observe(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		w.min = math.Min(w.min, v)
		w.max = math.Max(w.max, v)
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n−1 denominator), or 0
// with fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// RateEstimator estimates the rate of a point process (e.g. object
// updates) from observed event instants using an EWMA over inter-event
// gaps. It is the estimator behind the mutual-consistency heuristic's
// "changes at approximately the same or faster rate" test (paper §3.2).
type RateEstimator struct {
	gaps     *EWMA
	lastSeen time.Duration // most recent event instant as offset; <0 = none
	have     bool
}

// NewRateEstimator returns a rate estimator whose gap average uses the
// given EWMA smoothing factor.
func NewRateEstimator(alpha float64) *RateEstimator {
	return &RateEstimator{gaps: NewEWMA(alpha)}
}

// ObserveEvent records that an event occurred at the given offset from the
// epoch. Offsets must be nondecreasing; an event at or before the previous
// one only updates the anchor.
func (r *RateEstimator) ObserveEvent(at time.Duration) {
	if r.have && at > r.lastSeen {
		r.gaps.Observe(float64(at - r.lastSeen))
	}
	if !r.have || at > r.lastSeen {
		r.lastSeen = at
		r.have = true
	}
}

// MeanGap returns the smoothed mean inter-event gap, or 0 if fewer than
// two events have been observed.
func (r *RateEstimator) MeanGap() time.Duration {
	if r.gaps.Samples() == 0 {
		return 0
	}
	return time.Duration(r.gaps.Value())
}

// Rate returns events per second, or 0 when unknown.
func (r *RateEstimator) Rate() float64 {
	g := r.MeanGap()
	if g <= 0 {
		return 0
	}
	return float64(time.Second) / float64(g)
}

// Known reports whether the estimator has seen enough events (two) to
// produce a rate.
func (r *RateEstimator) Known() bool { return r.gaps.Samples() > 0 }

// MinTracker records the smallest value observed so far. It backs the
// TTR_observed_min term of the adaptive TTR formula (paper Eq. 10). The
// zero value is ready to use.
type MinTracker struct {
	min  float64
	have bool
}

// Observe folds in a value.
func (m *MinTracker) Observe(v float64) {
	if !m.have || v < m.min {
		m.min, m.have = v, true
	}
}

// Value returns the minimum observed value and whether any value has been
// observed.
func (m *MinTracker) Value() (float64, bool) { return m.min, m.have }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples using linear
// interpolation. It returns 0 for an empty slice. The input is not
// modified.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: Clamp bounds inverted: [%v, %v]", lo, hi))
	}
	return math.Max(lo, math.Min(hi, v))
}

// ClampDuration limits d to the closed interval [lo, hi]. It panics if
// lo > hi. This is the TTR = max(TTRmin, min(TTRmax, TTR)) operation the
// paper applies to every computed refresh interval.
func ClampDuration(d, lo, hi time.Duration) time.Duration {
	if lo > hi {
		panic(fmt.Sprintf("stats: ClampDuration bounds inverted: [%v, %v]", lo, hi))
	}
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
