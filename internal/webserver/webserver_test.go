package webserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"broadway/internal/httpx"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2001, 8, 7, 13, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func get(t *testing.T, h http.Handler, path, ims string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if ims != "" {
		req.Header.Set("If-Modified-Since", ims)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServeBasics(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/news", []byte("story v1"), "text/html")

	rec := get(t, o, "/news", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body, _ := io.ReadAll(rec.Body); string(body) != "story v1" {
		t.Errorf("body = %q", body)
	}
	if rec.Header().Get("Last-Modified") == "" {
		t.Error("missing Last-Modified")
	}
	if rec.Header().Get("Content-Type") != "text/html" {
		t.Errorf("content type = %q", rec.Header().Get("Content-Type"))
	}
}

func TestNotFound(t *testing.T) {
	o := NewOrigin()
	if rec := get(t, o, "/missing", ""); rec.Code != http.StatusNotFound {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	o := NewOrigin()
	req := httptest.NewRequest(http.MethodPost, "/x", nil)
	rec := httptest.NewRecorder()
	o.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestIfModifiedSince(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("v1"), "")

	rec := get(t, o, "/obj", "")
	lastMod := rec.Header().Get("Last-Modified")

	// Revalidation with the served Last-Modified: 304.
	rec = get(t, o, "/obj", lastMod)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", rec.Code)
	}
	if o.NotModified() != 1 {
		t.Errorf("NotModified = %d", o.NotModified())
	}

	// Update and revalidate: fresh body.
	clock.Advance(time.Minute)
	o.Set("/obj", []byte("v2"), "")
	rec = get(t, o, "/obj", lastMod)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after update", rec.Code)
	}
	if body, _ := io.ReadAll(rec.Body); string(body) != "v2" {
		t.Errorf("body = %q", body)
	}
}

func TestSameSecondUpdatesRemainOrdered(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("v1"), "")
	o.Set("/obj", []byte("v2"), "") // same clock second
	rec := get(t, o, "/obj", "")
	lm1, err := http.ParseTime(rec.Header().Get("Last-Modified"))
	if err != nil {
		t.Fatal(err)
	}
	o.Set("/obj", []byte("v3"), "")
	rec = get(t, o, "/obj", "")
	lm2, _ := http.ParseTime(rec.Header().Get("Last-Modified"))
	if !lm2.After(lm1) {
		t.Errorf("Last-Modified not strictly increasing: %v then %v", lm1, lm2)
	}
}

func TestHistoryExtension(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now), WithHistoryExtension(true))
	o.Set("/obj", []byte("v1"), "")
	rec := get(t, o, "/obj", "")
	sinceHeader := rec.Header().Get("Last-Modified")

	clock.Advance(time.Minute)
	o.Set("/obj", []byte("v2"), "")
	clock.Advance(time.Minute)
	o.Set("/obj", []byte("v3"), "")

	rec = get(t, o, "/obj", sinceHeader)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	hist, err := httpx.HistoryFrom(rec.Header())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %v, want the 2 updates after since", hist)
	}
	if !hist[0].Before(hist[1]) {
		t.Error("history must be oldest first")
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("v1"), "")
	rec := get(t, o, "/obj", "")
	if rec.Header().Get(httpx.HeaderModificationHistory) != "" {
		t.Error("history header set without the extension enabled")
	}
}

func TestTolerancesAdvertised(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("v1"), "")
	o.SetTolerances("/obj", httpx.Tolerances{
		Delta: 30 * time.Second, Group: "news", GroupDelta: time.Minute,
	})
	rec := get(t, o, "/obj", "")
	tol, err := httpx.TolerancesFrom(rec.Header())
	if err != nil {
		t.Fatal(err)
	}
	if tol.Delta != 30*time.Second || tol.Group != "news" || tol.GroupDelta != time.Minute {
		t.Errorf("tolerances = %+v", tol)
	}
}

func TestPollCounter(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("v1"), "")
	get(t, o, "/obj", "")
	get(t, o, "/obj", "")
	get(t, o, "/missing", "")
	if o.Polls() != 2 {
		t.Errorf("Polls = %d, want 2 (404s don't count)", o.Polls())
	}
}

func TestHeadRequest(t *testing.T) {
	clock := newFakeClock()
	o := NewOrigin(WithClock(clock.Now))
	o.Set("/obj", []byte("payload"), "")
	req := httptest.NewRequest(http.MethodHead, "/obj", nil)
	rec := httptest.NewRecorder()
	o.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body, _ := io.ReadAll(rec.Body); len(body) != 0 {
		t.Errorf("HEAD returned a body: %q", body)
	}
}
