package webserver

import (
	"time"

	"broadway/internal/push"
)

// This file wires the origin onto the push package's broadcast hub: an
// SSE-style endpoint streaming per-object invalidation events to
// downstream proxies. Every Set on a push-enabled origin assigns the
// update a monotonically increasing sequence number, fans it out to
// connected subscribers, and records it in a bounded replay buffer so a
// reconnecting subscriber (?since=<seq>) receives exactly the events it
// missed. When the gap exceeds the buffer, the hello frame carries
// Reset, telling the proxy to fall back to a revalidation sweep.
//
// With WithPushValues the events also carry the object's new body
// (protocol v2/v3): the hub's replay ring is then byte-budgeted as well
// as count-bounded, and each stream's payload cap is negotiated at
// subscribe time (?maxpayload=). Delivery walks the v3 ladder per
// subscriber — delta against an advertised held body, full payload,
// chunked body at the cap, invalidation-only — so an over-cap body
// degrades one rung at a time instead of straight to a poll.
//
// The hub itself (sequence space, replay ring, slow-subscriber
// termination, per-subscriber lag accounting, frame write deadlines,
// payload negotiation) lives in internal/push as push.Hub — the same
// machinery a relaying proxy runs for its own downstream face — so the
// origin side here is only construction and accessors.

// replayBufferLen bounds the events kept for reconnect catch-up.
const replayBufferLen = push.DefaultReplayLen

// defaultHeartbeat is the interval between keepalive frames.
const defaultHeartbeat = push.DefaultHeartbeat

func newEventHub(heartbeat time.Duration, payloadCap int) *push.Hub {
	return push.NewHub(push.HubConfig{
		Heartbeat:  heartbeat,
		ReplayLen:  replayBufferLen,
		PayloadCap: payloadCap,
		// Bodies over a stream's cap are chunked at the cap rather than
		// degraded to invalidations — the large, slowly-mutating objects
		// the payload channel exists for are exactly the over-cap ones.
		ChunkPayload: payloadCap,
	})
}
