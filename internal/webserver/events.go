package webserver

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"broadway/internal/push"
)

// This file implements the origin side of the hybrid push–pull channel:
// an SSE-style endpoint streaming per-object invalidation events to
// downstream proxies. Every Set on a push-enabled origin assigns the
// update a monotonically increasing sequence number, fans it out to
// connected subscribers, and records it in a bounded replay buffer so a
// reconnecting subscriber (?since=<seq>) receives exactly the events it
// missed. When the gap exceeds the buffer, the hello frame carries
// Reset, telling the proxy to fall back to a revalidation sweep.

// replayBufferLen bounds the events kept for reconnect catch-up.
const replayBufferLen = 1024

// defaultHeartbeat is the interval between keepalive frames.
const defaultHeartbeat = 15 * time.Second

// eventHub is the broadcast fan-out attached to a push-enabled Origin.
type eventHub struct {
	heartbeat time.Duration

	mu        sync.Mutex
	seq       uint64       // last assigned sequence number
	buf       []push.Event // ring of the most recent update events
	subs      map[*hubSub]struct{}
	available bool
	oversized uint64 // events dropped because their frame exceeds MaxFrameLen
}

// hubSub is one connected subscriber stream.
type hubSub struct {
	ch   chan push.Event
	done chan struct{} // closed to terminate the stream server-side
	once sync.Once
}

func (s *hubSub) terminate() { s.once.Do(func() { close(s.done) }) }

func newEventHub(heartbeat time.Duration) *eventHub {
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	return &eventHub{
		heartbeat: heartbeat,
		subs:      make(map[*hubSub]struct{}),
		available: true,
	}
}

// publish assigns the next sequence number, buffers the event, and fans
// it out. A subscriber too slow to drain its channel is terminated (it
// reconnects and catches up from the replay buffer) — a stalled consumer
// must never block the origin's write path.
//
// An event whose encoded frame exceeds the wire limit is dropped before
// it can enter the buffer: subscribers reject oversized frames, so one
// poisonous buffered frame would kill every reconnecting stream at the
// same replay position forever. The owning object simply goes
// unannounced (proxies keep pure-polling freshness for it).
func (h *eventHub) publish(ev push.Event) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ev.Oversized() {
		h.oversized++
		return h.seq
	}
	h.seq++
	ev.Seq = h.seq
	h.buf = append(h.buf, ev)
	if len(h.buf) > replayBufferLen {
		h.buf = h.buf[len(h.buf)-replayBufferLen:]
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			s.terminate()
			delete(h.subs, s)
		}
	}
	return h.seq
}

// snapshot returns the hello frame and replay backlog for a subscriber
// resuming from since, and registers its stream.
func (h *eventHub) subscribe(since uint64) (hello push.Event, backlog []push.Event, sub *hubSub, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.available {
		return push.Event{}, nil, nil, false
	}
	hello = push.Event{Kind: push.KindHello, Seq: h.seq}
	if since > 0 && since < h.seq {
		oldest := h.seq - uint64(len(h.buf)) + 1
		if len(h.buf) == 0 || since+1 < oldest {
			// The gap outruns the buffer: the subscriber's view is no
			// longer contiguous.
			hello.Reset = true
		} else {
			backlog = append(backlog, h.buf[since-oldest+1:]...)
		}
	} else if since > h.seq {
		// The subscriber claims a future position (e.g. the origin
		// restarted and its sequence space reset): resync from scratch.
		hello.Reset = true
	}
	sub = &hubSub{ch: make(chan push.Event, 256), done: make(chan struct{})}
	h.subs[sub] = struct{}{}
	return hello, backlog, sub, true
}

func (h *eventHub) unsubscribe(sub *hubSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	sub.terminate()
}

// killAll terminates every connected stream.
func (h *eventHub) killAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		s.terminate()
		delete(h.subs, s)
	}
}

// setAvailable toggles the endpoint; disabling also drops live streams.
func (h *eventHub) setAvailable(up bool) {
	h.mu.Lock()
	h.available = up
	if !up {
		for s := range h.subs {
			s.terminate()
			delete(h.subs, s)
		}
	}
	h.mu.Unlock()
}

func (h *eventHub) lastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

func (h *eventHub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *eventHub) oversizedCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.oversized
}

// serveEvents streams invalidation events over SSE until the client
// disconnects or the hub terminates the stream.
func (o *Origin) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	hello, backlog, sub, ok := o.hub.subscribe(since)
	if !ok {
		http.Error(w, "event stream unavailable", http.StatusServiceUnavailable)
		return
	}
	defer o.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	write := func(ev push.Event) bool {
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, ev.Encode()); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !write(hello) {
		return
	}
	for _, ev := range backlog {
		if !write(ev) {
			return
		}
	}

	ticker := time.NewTicker(o.hub.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.done:
			return
		case ev := <-sub.ch:
			if !write(ev) {
				return
			}
		case <-ticker.C:
			if !write(push.Event{Kind: push.KindHeartbeat, Seq: o.hub.lastSeq()}) {
				return
			}
		}
	}
}
