package webserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"broadway/internal/httpx"
	"broadway/internal/push"
)

// eventSink collects stream callbacks from a subscriber.
type eventSink struct {
	mu      sync.Mutex
	events  []push.Event
	hellos  []push.Event
	resumed []bool
}

func (s *eventSink) onEvent(ev push.Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *eventSink) onConnect(hello push.Event, resumed bool) {
	s.mu.Lock()
	s.hellos = append(s.hellos, hello)
	s.resumed = append(s.resumed, resumed)
	s.mu.Unlock()
}

func (s *eventSink) snapshot() ([]push.Event, []push.Event, []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]push.Event(nil), s.events...),
		append([]push.Event(nil), s.hellos...),
		append([]bool(nil), s.resumed...)
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func startSubscriber(t *testing.T, url string, sink *eventSink) *push.Subscriber {
	t.Helper()
	sub, err := push.NewSubscriber(push.SubscriberConfig{
		URL:        url,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sub.Run(ctx)
	return sub
}

func TestEventsEndpointStreamsUpdates(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	o.Set("/a", []byte("v1"), "")
	ts := httptest.NewServer(o)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	sink := &eventSink{}
	startSubscriber(t, ts.URL+"/events", sink)

	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 1 }) {
		t.Fatal("subscriber never registered")
	}
	o.SetTolerances("/a", httpx.Tolerances{Group: "g"})
	o.Set("/a", []byte("v2"), "")
	o.Set("/b", []byte("b1"), "")

	if !waitUntil(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 2
	}) {
		evs, _, _ := sink.snapshot()
		t.Fatalf("events = %+v", evs)
	}
	evs, hellos, resumed := sink.snapshot()
	// The pre-subscription Set("/a") assigned seq 1; the live events are
	// 2 and 3, in publish order, with the group carried through.
	if evs[0].Key != "/a" || evs[0].Seq != 2 || evs[0].Group != "g" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Key != "/b" || evs[1].Seq != 3 || evs[1].Group != "" {
		t.Errorf("second event = %+v", evs[1])
	}
	if evs[0].ModTime.IsZero() {
		t.Error("update event carries no modification time")
	}
	if len(hellos) != 1 || hellos[0].Reset || resumed[0] {
		t.Errorf("hellos = %+v resumed = %v", hellos, resumed)
	}
	if o.PushSeq() != 3 {
		t.Errorf("PushSeq = %d", o.PushSeq())
	}
}

func TestEventsEndpointReplaysMissedEvents(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	sink := &eventSink{}
	startSubscriber(t, ts.URL+"/events", sink)
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 1 }) {
		t.Fatal("never connected")
	}
	o.Set("/a", []byte("v1"), "")
	if !waitUntil(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("first event never arrived")
	}

	// Cut the stream, publish while disconnected, let it reconnect: the
	// replay buffer must deliver the missed events in order.
	o.KillPushStreams()
	o.Set("/a", []byte("v2"), "")
	o.Set("/a", []byte("v3"), "")
	if !waitUntil(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 3
	}) {
		evs, _, _ := sink.snapshot()
		t.Fatalf("replay failed: events = %+v", evs)
	}
	evs, hellos, resumed := sink.snapshot()
	if evs[1].Seq != 2 || evs[2].Seq != 3 {
		t.Errorf("replayed seqs = %d, %d", evs[1].Seq, evs[2].Seq)
	}
	if len(hellos) != 2 || !resumed[1] || hellos[1].Reset {
		t.Errorf("reconnect hello = %+v resumed = %v", hellos, resumed)
	}
}

func TestEventsEndpointResetWhenGapOutrunsBuffer(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	defer ts.Close()

	// Seed far beyond the replay buffer before the subscriber asks to
	// resume from seq 1.
	for i := 0; i < replayBufferLen+8; i++ {
		o.Set("/a", []byte{byte(i)}, "")
	}
	resp, err := http.Get(ts.URL + "/events?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	frame := string(buf[:n])
	// First frame is the hello; it must carry the reset flag.
	ev := decodeFirstFrame(t, frame)
	if ev.Kind != push.KindHello || !ev.Reset {
		t.Errorf("hello = %+v (raw %q)", ev, frame)
	}
}

func TestEventsEndpointUnavailable(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	o.SetPushAvailable(false)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}

	o.SetPushAvailable(true)
	sink := &eventSink{}
	startSubscriber(t, ts.URL+"/events", sink)
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 1 }) {
		t.Fatal("endpoint did not recover")
	}
}

func TestEventsEndpointBadSince(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOversizedKeyNeverEntersStream(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	sink := &eventSink{}
	startSubscriber(t, ts.URL+"/events", sink)
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 1 }) {
		t.Fatal("never connected")
	}

	// A key whose escaped frame exceeds the wire limit: the update must
	// be dropped at the hub — one poisonous buffered frame would kill
	// every reconnecting stream at the same replay position forever.
	huge := "/" + strings.Repeat("k", push.MaxFrameLen+16)
	o.Set(huge, []byte("v1"), "")
	o.Set("/ok", []byte("v1"), "")
	if !waitUntil(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("the well-formed event never arrived")
	}
	evs, _, _ := sink.snapshot()
	if evs[0].Key != "/ok" || evs[0].Seq != 1 {
		t.Errorf("event = %+v; the oversized update leaked into the stream or consumed a seq", evs[0])
	}
	if o.PushOversized() != 1 {
		t.Errorf("PushOversized = %d, want 1", o.PushOversized())
	}
	// The stream survives: the subscriber was never poisoned.
	if o.PushSubscribers() != 1 {
		t.Error("subscriber lost after the oversized Set")
	}
}

func TestEventsEndpointRejectsNonGET(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	defer ts.Close()
	for _, method := range []string{http.MethodPost, http.MethodHead, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s /events = %d, want 405", method, resp.StatusCode)
		}
	}
	if n := o.PushSubscribers(); n != 0 {
		t.Errorf("%d subscriptions leaked by non-GET requests", n)
	}
}

func TestSlowSubscriberIsTerminatedNotBlocking(t *testing.T) {
	o := NewOrigin(WithPushEvents(""))
	ts := httptest.NewServer(o)
	defer ts.Close()

	// A raw client that connects and never reads.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/events", nil)
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 1 }) {
		t.Fatal("never connected")
	}

	// Publishing far beyond the per-subscriber channel capacity must not
	// block Set, and must eventually drop the stalled stream.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1024; i++ {
			o.Set("/a", []byte{byte(i)}, "")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Set blocked on a stalled subscriber")
	}
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 0 }) {
		t.Error("stalled subscriber was never dropped")
	}
}

// TestPushValuesCarryBodyAndDigest: with WithPushValues every Set
// publishes the new body, content type, and digest; subscribers that
// negotiated payload delivery receive them while plain subscribers get
// the same event degraded to an invalidation frame.
func TestPushValuesCarryBodyAndDigest(t *testing.T) {
	o := NewOrigin(WithPushValues(0))
	ts := httptest.NewServer(o)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	valueSink, plainSink := &eventSink{}, &eventSink{}
	valueSub, err := push.NewSubscriber(push.SubscriberConfig{
		URL:        ts.URL + "/events",
		OnEvent:    valueSink.onEvent,
		OnConnect:  valueSink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		PayloadCap: push.DefaultPayloadCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go valueSub.Run(ctx)
	startSubscriber(t, ts.URL+"/events", plainSink)
	if !waitUntil(t, 2*time.Second, func() bool { return o.PushSubscribers() == 2 }) {
		t.Fatal("subscribers never registered")
	}

	o.Set("/quote", []byte("165.38\n"), "text/plain; charset=utf-8")
	for name, sink := range map[string]*eventSink{"value": valueSink, "plain": plainSink} {
		if !waitUntil(t, 2*time.Second, func() bool {
			evs, _, _ := sink.snapshot()
			return len(evs) == 1
		}) {
			t.Fatalf("%s subscriber never saw the event", name)
		}
	}
	evs, hellos, _ := valueSink.snapshot()
	ev := evs[0]
	if !ev.HasBody || string(ev.Body) != "165.38\n" {
		t.Fatalf("value event carries no body: %+v", ev)
	}
	if ev.Digest != push.DigestOf([]byte("165.38\n")) {
		t.Errorf("digest = %q", ev.Digest)
	}
	if ev.ContentType != "text/plain; charset=utf-8" {
		t.Errorf("content type = %q", ev.ContentType)
	}
	if ev.ModTime.IsZero() {
		t.Error("payload event lost its modification instant")
	}
	if hellos[0].PayloadCap != push.DefaultPayloadCap {
		t.Errorf("negotiated cap = %d", hellos[0].PayloadCap)
	}
	plainEvs, _, _ := plainSink.snapshot()
	if plainEvs[0].HasBody || plainEvs[0].Key != "/quote" {
		t.Errorf("plain subscriber got %+v, want an invalidation-only frame", plainEvs[0])
	}

	// InjectPushEvent is the corruption chaos hook: whatever it carries
	// goes out verbatim (the consumer's digest check is the defense).
	o.InjectPushEvent(push.Event{Kind: push.KindUpdate, Key: "/quote",
		Body: []byte("garbage"), HasBody: true, Digest: "0000000000000000"})
	if !waitUntil(t, 2*time.Second, func() bool {
		evs, _, _ := valueSink.snapshot()
		return len(evs) == 2
	}) {
		t.Fatal("injected event never arrived")
	}
	evs, _, _ = valueSink.snapshot()
	if string(evs[1].Body) != "garbage" || evs[1].Digest != "0000000000000000" {
		t.Errorf("injected event = %+v", evs[1])
	}
}

// decodeFirstFrame extracts and decodes the first data: line of an SSE
// payload.
func decodeFirstFrame(t *testing.T, raw string) push.Event {
	t.Helper()
	for _, line := range strings.Split(raw, "\n") {
		if payload, ok := strings.CutPrefix(line, "data:"); ok {
			ev, err := push.Decode(strings.TrimSpace(payload))
			if err != nil {
				t.Fatalf("decode %q: %v", payload, err)
			}
			return ev
		}
	}
	t.Fatalf("no data frame in %q", raw)
	return push.Event{}
}
