// Package webserver implements a real HTTP origin server for live (non-
// simulated) operation of the consistency algorithms. It serves objects
// with standard Last-Modified / If-Modified-Since validation and
// implements the paper's proposed protocol extensions (§5.1): the
// X-Modification-History header and the cache-control tolerance
// directives, so a downstream proxy can learn Δ, the group name, and δ
// directly from responses.
package webserver

import (
	"net/http"
	"sync"
	"time"

	"broadway/internal/httpx"
	"broadway/internal/push"
)

// object is one hosted resource and its modification history.
type object struct {
	body        []byte
	contentType string
	modTimes    []time.Time // ascending; last entry is Last-Modified
	tolerances  httpx.Tolerances
}

// Origin is an in-memory HTTP origin. It is safe for concurrent use.
type Origin struct {
	mu      sync.RWMutex
	objects map[string]*object
	clock   func() time.Time

	historyEnabled bool
	polls          uint64
	notModified    uint64

	// Push-event channel (see events.go); nil unless WithPushEvents.
	hub           *push.Hub
	eventsPath    string
	pushHeartbeat time.Duration
	// payloadCap, when positive, makes Set attach the object's new body
	// (digest-verified, base64-framed on the wire) to the events it
	// publishes, so subscribers that negotiated payload delivery can
	// install the update without a confirmation poll.
	payloadCap int
}

var _ http.Handler = (*Origin)(nil)

// Option customizes an Origin.
type Option func(*Origin)

// WithClock substitutes the time source (tests use a fake clock).
func WithClock(clock func() time.Time) Option {
	return func(o *Origin) { o.clock = clock }
}

// WithHistoryExtension enables the X-Modification-History response
// header.
func WithHistoryExtension(enabled bool) Option {
	return func(o *Origin) { o.historyEnabled = enabled }
}

// WithPushEvents enables the origin-driven invalidation channel: an
// SSE-style endpoint at path (default "/events") streaming a push.Event
// per object update, with heartbeats and a bounded replay buffer for
// reconnect catch-up. The path shadows any hosted object of the same
// name.
func WithPushEvents(path string) Option {
	if path == "" {
		path = "/events"
	}
	return func(o *Origin) { o.eventsPath = path }
}

// WithPushHeartbeat sets the keepalive interval of the push-event stream
// (default 15s). It implies WithPushEvents with the default path unless
// one was already configured.
func WithPushHeartbeat(interval time.Duration) Option {
	return func(o *Origin) {
		if o.eventsPath == "" {
			o.eventsPath = "/events"
		}
		o.pushHeartbeat = interval
	}
}

// WithPushValues makes every published update event carry the object's
// new body (value-carrying push, protocol v2): subscribers that
// negotiated payload delivery install the update directly — one
// message, zero confirmation polls — while plain subscribers keep
// receiving invalidation-only frames. cap bounds the body size the hub
// will carry (bytes; <= 0 selects push.DefaultPayloadCap); larger
// bodies degrade to invalidation-only events at publish time. It
// implies WithPushEvents at the default path unless one was already
// configured.
func WithPushValues(cap int) Option {
	if cap <= 0 {
		cap = push.DefaultPayloadCap
	}
	return func(o *Origin) {
		if o.eventsPath == "" {
			o.eventsPath = "/events"
		}
		o.payloadCap = cap
	}
}

// NewOrigin returns an empty origin server.
func NewOrigin(opts ...Option) *Origin {
	o := &Origin{
		objects: make(map[string]*object),
		clock:   time.Now,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.eventsPath != "" {
		o.hub = newEventHub(o.pushHeartbeat, o.payloadCap)
	}
	return o
}

// Set creates or updates the object at path. Every call beyond the first
// records a new modification instant. The content type defaults to
// text/html for .html paths and text/plain otherwise.
func (o *Origin) Set(path string, body []byte, contentType string) {
	if contentType == "" {
		contentType = "text/plain; charset=utf-8"
	}
	now := o.clock().Truncate(time.Second) // HTTP dates have second resolution
	o.mu.Lock()
	obj, exists := o.objects[path]
	if !exists {
		obj = &object{}
		o.objects[path] = obj
	}
	prev := obj.body
	obj.body = append([]byte(nil), body...)
	obj.contentType = contentType
	// Guarantee strictly increasing modification times even when two
	// updates land within the same second.
	if n := len(obj.modTimes); n > 0 && !now.After(obj.modTimes[n-1]) {
		now = obj.modTimes[n-1].Add(time.Second)
	}
	obj.modTimes = append(obj.modTimes, now)
	if len(obj.modTimes) > httpx.MaxHistoryEntries {
		obj.modTimes = obj.modTimes[len(obj.modTimes)-httpx.MaxHistoryEntries:]
	}
	group := obj.tolerances.Group
	published := obj.body
	o.mu.Unlock()

	if o.hub != nil {
		ev := push.Event{
			Kind:    push.KindUpdate,
			Key:     path,
			Group:   group,
			ModTime: now,
		}
		if o.payloadCap > 0 {
			// Attach the new body so payload-negotiated subscribers can
			// install it without a confirmation poll. The slice is the
			// stored copy, replaced wholesale on the next Set and never
			// mutated, so sharing it with the hub's replay ring is safe.
			ev.Body = published
			ev.HasBody = true
			ev.ContentType = contentType
			ev.Digest = push.DigestOf(published)
			// Offer the update as a delta against the previous body too:
			// subscribers that advertised holding it get the cheapest rung
			// of the delivery ladder, everyone else still sees the full
			// payload (the hub renders both forms once at Publish).
			if delta, ok := push.MakeDelta(prev, published); ok {
				ev.DeltaBody = delta
				ev.BaseDigest = push.DigestOf(prev)
				ev.DeltaCodec = push.DeltaCodecBlock
			}
		}
		o.hub.Publish(ev)
	}
}

// InjectPushEvent publishes an arbitrary event into the origin's push
// hub, bypassing Set. It is a chaos/test hook: conformance batteries use
// it to inject corrupted payloads (digest mismatches, bodies that
// disagree with the served object) and prove subscribers degrade to a
// confirmation poll instead of installing garbage. A no-op when push is
// disabled.
func (o *Origin) InjectPushEvent(ev push.Event) {
	if o.hub != nil {
		o.hub.Publish(ev)
	}
}

// SetTolerances attaches consistency tolerances advertised with the
// object (rendered as cache-control extension directives).
func (o *Origin) SetTolerances(path string, t httpx.Tolerances) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if obj, ok := o.objects[path]; ok {
		obj.tolerances = t
	}
}

// Polls returns the number of conditional or plain GETs served.
func (o *Origin) Polls() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.polls
}

// NotModified returns the number of 304 responses served.
func (o *Origin) NotModified() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.notModified
}

// PushSeq returns the sequence number of the last published invalidation
// event (0 when push is disabled or nothing was published yet).
func (o *Origin) PushSeq() uint64 {
	if o.hub == nil {
		return 0
	}
	return o.hub.LastSeq()
}

// PushSubscribers returns the number of connected event streams.
func (o *Origin) PushSubscribers() int {
	if o.hub == nil {
		return 0
	}
	return o.hub.Subscribers()
}

// PushOversized returns the number of update events dropped because
// their encoded frame exceeded the wire limit (objects with such keys
// are never announced; proxies poll them pure paper-mode).
func (o *Origin) PushOversized() uint64 {
	if o.hub == nil {
		return 0
	}
	return o.hub.Oversized()
}

// PushHubStats snapshots the event hub's backpressure state: replay
// ring occupancy and per-subscriber lag, so an operator can see a proxy
// falling behind before it hits a Reset. The zero value is returned
// when push is disabled.
func (o *Origin) PushHubStats() push.HubStats {
	if o.hub == nil {
		return push.HubStats{}
	}
	return o.hub.Stats()
}

// OriginStats aggregates the origin's serving and push-channel state
// for the operational surface (/metrics, /admin/stats).
type OriginStats struct {
	// Objects is the number of hosted resources.
	Objects int
	// Polls counts conditional or plain GETs served for hosted objects;
	// NotModified counts the 304 responses among them.
	Polls       uint64
	NotModified uint64
	// PushEnabled reports whether the invalidation channel is
	// configured; Hub is its backpressure snapshot (zero when not).
	PushEnabled bool
	Hub         push.HubStats
}

// Stats returns the origin-wide counters.
func (o *Origin) Stats() OriginStats {
	o.mu.RLock()
	st := OriginStats{
		Objects:     len(o.objects),
		Polls:       o.polls,
		NotModified: o.notModified,
	}
	o.mu.RUnlock()
	if o.hub != nil {
		st.PushEnabled = true
		st.Hub = o.hub.Stats()
	}
	return st
}

// SetPushAvailable toggles the event endpoint. Disabling terminates all
// connected streams and 503s new connections — the failure-injection
// hook for chaos tests; events published while down still enter the
// replay buffer. Re-enabling lets subscribers reconnect and catch up.
func (o *Origin) SetPushAvailable(up bool) {
	if o.hub != nil {
		o.hub.SetAvailable(up)
	}
}

// KillPushStreams terminates every connected event stream without
// disabling the endpoint: subscribers can reconnect immediately. It
// models a transient network cut.
func (o *Origin) KillPushStreams() {
	if o.hub != nil {
		o.hub.KillAll()
	}
}

// ServeHTTP implements http.Handler with If-Modified-Since validation.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.hub != nil && r.URL.Path == o.eventsPath {
		// Streams are GET-only (the hub 405s anything else); a HEAD must
		// not hold a hub subscription it will never read.
		o.hub.ServeHTTP(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	o.mu.Lock()
	obj, ok := o.objects[r.URL.Path]
	if ok {
		o.polls++
	}
	o.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}

	o.mu.RLock()
	body := obj.body
	contentType := obj.contentType
	modTimes := append([]time.Time(nil), obj.modTimes...)
	tol := obj.tolerances
	o.mu.RUnlock()

	lastMod := modTimes[len(modTimes)-1]
	w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	httpx.SetCacheControl(w.Header(), tol)

	ims := r.Header.Get("If-Modified-Since")
	if ims != "" {
		if since, err := http.ParseTime(ims); err == nil {
			if o.historyEnabled {
				httpx.SetHistory(w.Header(), modTimesAfter(modTimes, since))
			}
			if !lastMod.After(since) {
				o.mu.Lock()
				o.notModified++
				o.mu.Unlock()
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			if r.Method == http.MethodGet {
				w.Write(body)
			}
			return
		}
	}
	if o.historyEnabled {
		httpx.SetHistory(w.Header(), modTimes)
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodGet {
		w.Write(body)
	}
}

// modTimesAfter returns the modification times strictly after since.
func modTimesAfter(times []time.Time, since time.Time) []time.Time {
	var out []time.Time
	for _, t := range times {
		if t.After(since) {
			out = append(out, t)
		}
	}
	return out
}
