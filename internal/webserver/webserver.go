// Package webserver implements a real HTTP origin server for live (non-
// simulated) operation of the consistency algorithms. It serves objects
// with standard Last-Modified / If-Modified-Since validation and
// implements the paper's proposed protocol extensions (§5.1): the
// X-Modification-History header and the cache-control tolerance
// directives, so a downstream proxy can learn Δ, the group name, and δ
// directly from responses.
package webserver

import (
	"net/http"
	"sync"
	"time"

	"broadway/internal/httpx"
)

// object is one hosted resource and its modification history.
type object struct {
	body        []byte
	contentType string
	modTimes    []time.Time // ascending; last entry is Last-Modified
	tolerances  httpx.Tolerances
}

// Origin is an in-memory HTTP origin. It is safe for concurrent use.
type Origin struct {
	mu      sync.RWMutex
	objects map[string]*object
	clock   func() time.Time

	historyEnabled bool
	polls          uint64
	notModified    uint64
}

var _ http.Handler = (*Origin)(nil)

// Option customizes an Origin.
type Option func(*Origin)

// WithClock substitutes the time source (tests use a fake clock).
func WithClock(clock func() time.Time) Option {
	return func(o *Origin) { o.clock = clock }
}

// WithHistoryExtension enables the X-Modification-History response
// header.
func WithHistoryExtension(enabled bool) Option {
	return func(o *Origin) { o.historyEnabled = enabled }
}

// NewOrigin returns an empty origin server.
func NewOrigin(opts ...Option) *Origin {
	o := &Origin{
		objects: make(map[string]*object),
		clock:   time.Now,
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Set creates or updates the object at path. Every call beyond the first
// records a new modification instant. The content type defaults to
// text/html for .html paths and text/plain otherwise.
func (o *Origin) Set(path string, body []byte, contentType string) {
	if contentType == "" {
		contentType = "text/plain; charset=utf-8"
	}
	now := o.clock().Truncate(time.Second) // HTTP dates have second resolution
	o.mu.Lock()
	defer o.mu.Unlock()
	obj, exists := o.objects[path]
	if !exists {
		obj = &object{}
		o.objects[path] = obj
	}
	obj.body = append([]byte(nil), body...)
	obj.contentType = contentType
	// Guarantee strictly increasing modification times even when two
	// updates land within the same second.
	if n := len(obj.modTimes); n > 0 && !now.After(obj.modTimes[n-1]) {
		now = obj.modTimes[n-1].Add(time.Second)
	}
	obj.modTimes = append(obj.modTimes, now)
	if len(obj.modTimes) > httpx.MaxHistoryEntries {
		obj.modTimes = obj.modTimes[len(obj.modTimes)-httpx.MaxHistoryEntries:]
	}
}

// SetTolerances attaches consistency tolerances advertised with the
// object (rendered as cache-control extension directives).
func (o *Origin) SetTolerances(path string, t httpx.Tolerances) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if obj, ok := o.objects[path]; ok {
		obj.tolerances = t
	}
}

// Polls returns the number of conditional or plain GETs served.
func (o *Origin) Polls() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.polls
}

// NotModified returns the number of 304 responses served.
func (o *Origin) NotModified() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.notModified
}

// ServeHTTP implements http.Handler with If-Modified-Since validation.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	o.mu.Lock()
	obj, ok := o.objects[r.URL.Path]
	if ok {
		o.polls++
	}
	o.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}

	o.mu.RLock()
	body := obj.body
	contentType := obj.contentType
	modTimes := append([]time.Time(nil), obj.modTimes...)
	tol := obj.tolerances
	o.mu.RUnlock()

	lastMod := modTimes[len(modTimes)-1]
	w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	httpx.SetCacheControl(w.Header(), tol)

	ims := r.Header.Get("If-Modified-Since")
	if ims != "" {
		if since, err := http.ParseTime(ims); err == nil {
			if o.historyEnabled {
				httpx.SetHistory(w.Header(), modTimesAfter(modTimes, since))
			}
			if !lastMod.After(since) {
				o.mu.Lock()
				o.notModified++
				o.mu.Unlock()
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			if r.Method == http.MethodGet {
				w.Write(body)
			}
			return
		}
	}
	if o.historyEnabled {
		httpx.SetHistory(w.Header(), modTimes)
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodGet {
		w.Write(body)
	}
}

// modTimesAfter returns the modification times strictly after since.
func modTimesAfter(times []time.Time, since time.Time) []time.Time {
	var out []time.Time
	for _, t := range times {
		if t.After(since) {
			out = append(out, t)
		}
	}
	return out
}
