// Package origin implements the simulated origin server. Each hosted
// object is driven by a workload trace; the server answers
// If-Modified-Since polls with exactly the information HTTP/1.1 exposes
// (modification status, Last-Modified) and, when enabled per object, with
// the paper's proposed modification-history extension (§5.1).
//
// The server also offers privileged ground-truth accessors used only by
// the fidelity evaluator — consistency policies never see them.
package origin

import (
	"fmt"

	"broadway/internal/core"
	"broadway/internal/simtime"
	"broadway/internal/trace"
)

// Response is what a poll returns: the protocol-visible view of the
// object.
type Response struct {
	// Modified reports whether the object changed after the poll's
	// If-Modified-Since instant.
	Modified bool
	// Version is the object's current version number (the number of
	// updates applied so far; 0 = as created).
	Version int
	// LastModified is the instant of the most recent update, valid when
	// HasLastModified is set (an object never updated carries none).
	LastModified    simtime.Time
	HasLastModified bool
	// HasValue reports whether the object carries a numeric value.
	HasValue bool
	// Value is the object's current value (when HasValue).
	Value float64
	// History lists the update instants after the If-Modified-Since
	// instant, oldest first. Populated only for objects registered with
	// the history extension enabled.
	History []simtime.Time
}

// Errors returned by Poll.
var (
	ErrUnknownObject = fmt.Errorf("origin: unknown object")
	ErrUnavailable   = fmt.Errorf("origin: server unavailable")
)

// hostedObject couples a trace with per-object serving options.
type hostedObject struct {
	tr          *trace.Trace
	withHistory bool
	polls       uint64
}

// Server is a simulated origin. The zero value is not usable; construct
// with New. Server is not safe for concurrent use (the simulator is
// single-threaded).
type Server struct {
	objects   map[core.ObjectID]*hostedObject
	available bool
	polls     uint64
}

// New returns an empty, available origin server.
func New() *Server {
	return &Server{
		objects:   make(map[core.ObjectID]*hostedObject),
		available: true,
	}
}

// Host registers an object driven by the given trace. The trace's offset
// zero coincides with the simulation epoch. withHistory enables the
// modification-history protocol extension for this object.
func (s *Server) Host(id core.ObjectID, tr *trace.Trace, withHistory bool) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("origin: hosting %q: %w", id, err)
	}
	if _, dup := s.objects[id]; dup {
		return fmt.Errorf("origin: object %q already hosted", id)
	}
	s.objects[id] = &hostedObject{tr: tr, withHistory: withHistory}
	return nil
}

// SetAvailable toggles the server up or down. While down, every poll
// fails with ErrUnavailable (used for failure-injection tests).
func (s *Server) SetAvailable(up bool) { s.available = up }

// Poll serves an If-Modified-Since request for the object at simulated
// instant now. since is the client's validation timestamp (the server
// instant its cached copy reflects).
func (s *Server) Poll(id core.ObjectID, now, since simtime.Time) (Response, error) {
	if !s.available {
		return Response{}, ErrUnavailable
	}
	obj, ok := s.objects[id]
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	s.polls++
	obj.polls++

	at := now.Duration()
	resp := Response{
		Version:  obj.tr.VersionAt(at),
		Modified: obj.tr.VersionAt(at) > obj.tr.VersionAt(since.Duration()),
	}
	if lm, ok := obj.tr.LastModifiedAt(at); ok {
		resp.LastModified = simtime.At(lm)
		resp.HasLastModified = true
	}
	if obj.tr.Kind == trace.Value {
		resp.HasValue = true
		resp.Value = obj.tr.ValueAt(at)
	}
	if obj.withHistory && resp.Modified {
		for _, u := range obj.tr.UpdatesIn(since.Duration(), at) {
			resp.History = append(resp.History, simtime.At(u.At))
		}
	}
	return resp, nil
}

// PollCount returns the number of polls served for the object.
func (s *Server) PollCount(id core.ObjectID) uint64 {
	if obj, ok := s.objects[id]; ok {
		return obj.polls
	}
	return 0
}

// TotalPolls returns the number of polls served across all objects.
func (s *Server) TotalPolls() uint64 { return s.polls }

// Trace returns the ground-truth trace for the object. It is privileged
// information for the evaluator; policies must never consult it.
func (s *Server) Trace(id core.ObjectID) (*trace.Trace, bool) {
	obj, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	return obj.tr, true
}

// Objects returns the IDs of all hosted objects (order unspecified).
func (s *Server) Objects() []core.ObjectID {
	ids := make([]core.ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	return ids
}
