package origin

import (
	"errors"
	"testing"
	"time"

	"broadway/internal/simtime"
	"broadway/internal/trace"
)

func at(d time.Duration) simtime.Time { return simtime.At(d) }

func newsTrace() *trace.Trace {
	return &trace.Trace{
		Name: "news", Kind: trace.Temporal, Duration: time.Hour,
		Updates: []trace.Update{
			{At: 10 * time.Minute},
			{At: 20 * time.Minute},
			{At: 45 * time.Minute},
		},
	}
}

func stockTrace() *trace.Trace {
	return &trace.Trace{
		Name: "stock", Kind: trace.Value, Duration: time.Hour, InitialValue: 100,
		Updates: []trace.Update{
			{At: 10 * time.Minute, Value: 101},
			{At: 20 * time.Minute, Value: 99.5},
		},
	}
}

func TestHostRejectsInvalidTrace(t *testing.T) {
	s := New()
	bad := &trace.Trace{Name: "", Kind: trace.Temporal, Duration: time.Hour}
	if err := s.Host("x", bad, false); err == nil {
		t.Fatal("Host must validate the trace")
	}
}

func TestHostRejectsDuplicates(t *testing.T) {
	s := New()
	if err := s.Host("x", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Host("x", newsTrace(), false); err == nil {
		t.Fatal("duplicate Host must fail")
	}
}

func TestPollUnknownObject(t *testing.T) {
	s := New()
	_, err := s.Poll("nope", at(time.Minute), at(0))
	if !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
}

func TestPollModifiedSemantics(t *testing.T) {
	s := New()
	if err := s.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name         string
		now, since   time.Duration
		wantModified bool
		wantVersion  int
	}{
		{"before first update", 5 * time.Minute, 0, false, 0},
		{"first update seen", 15 * time.Minute, 0, true, 1},
		{"no change since", 15 * time.Minute, 12 * time.Minute, false, 1},
		{"exactly at update", 20 * time.Minute, 15 * time.Minute, true, 2},
		{"since at update instant", 15 * time.Minute, 10 * time.Minute, false, 1},
		{"all updates", time.Hour, 0, true, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := s.Poll("n", at(tt.now), at(tt.since))
			if err != nil {
				t.Fatal(err)
			}
			if resp.Modified != tt.wantModified || resp.Version != tt.wantVersion {
				t.Errorf("modified=%v version=%d, want %v/%d",
					resp.Modified, resp.Version, tt.wantModified, tt.wantVersion)
			}
		})
	}
}

func TestPollLastModified(t *testing.T) {
	s := New()
	if err := s.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Poll("n", at(5*time.Minute), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.HasLastModified {
		t.Error("object never updated must carry no Last-Modified")
	}
	resp, err = s.Poll("n", at(25*time.Minute), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.HasLastModified || resp.LastModified != at(20*time.Minute) {
		t.Errorf("LastModified = %v,%v", resp.LastModified, resp.HasLastModified)
	}
}

func TestPollValue(t *testing.T) {
	s := New()
	if err := s.Host("s", stockTrace(), false); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Poll("s", at(15*time.Minute), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.HasValue || resp.Value != 101 {
		t.Errorf("value = %v,%v", resp.Value, resp.HasValue)
	}

	// Temporal objects carry no value.
	if err := s.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Poll("n", at(15*time.Minute), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.HasValue {
		t.Error("temporal object must not carry a value")
	}
}

func TestPollHistoryExtension(t *testing.T) {
	s := New()
	if err := s.Host("with", newsTrace(), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Host("without", newsTrace(), false); err != nil {
		t.Fatal(err)
	}

	resp, err := s.Poll("with", at(25*time.Minute), at(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.History) != 2 ||
		resp.History[0] != at(10*time.Minute) || resp.History[1] != at(20*time.Minute) {
		t.Errorf("History = %v", resp.History)
	}

	resp, err = s.Poll("without", at(25*time.Minute), at(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if resp.History != nil {
		t.Error("history extension disabled but History returned")
	}

	// Unmodified poll: no history either way.
	resp, err = s.Poll("with", at(15*time.Minute), at(12*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Modified || resp.History != nil {
		t.Error("unmodified poll must carry no history")
	}
}

func TestAvailabilityToggle(t *testing.T) {
	s := New()
	if err := s.Host("n", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	s.SetAvailable(false)
	if _, err := s.Poll("n", at(time.Minute), at(0)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	s.SetAvailable(true)
	if _, err := s.Poll("n", at(time.Minute), at(0)); err != nil {
		t.Fatalf("recovered server must serve: %v", err)
	}
	// Failed polls must not be counted.
	if s.TotalPolls() != 1 {
		t.Errorf("TotalPolls = %d, want 1", s.TotalPolls())
	}
}

func TestPollCounters(t *testing.T) {
	s := New()
	if err := s.Host("a", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Host("b", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Poll("a", at(time.Minute), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Poll("b", at(time.Minute), at(0)); err != nil {
		t.Fatal(err)
	}
	if s.PollCount("a") != 3 || s.PollCount("b") != 1 || s.TotalPolls() != 4 {
		t.Errorf("counts = %d/%d/%d", s.PollCount("a"), s.PollCount("b"), s.TotalPolls())
	}
	if s.PollCount("nope") != 0 {
		t.Error("unknown object count must be 0")
	}
}

func TestTraceAccessor(t *testing.T) {
	s := New()
	tr := newsTrace()
	if err := s.Host("n", tr, false); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Trace("n")
	if !ok || got != tr {
		t.Error("Trace accessor wrong")
	}
	if _, ok := s.Trace("nope"); ok {
		t.Error("unknown object must report !ok")
	}
}

func TestObjects(t *testing.T) {
	s := New()
	if err := s.Host("a", newsTrace(), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Host("b", stockTrace(), false); err != nil {
		t.Fatal(err)
	}
	ids := s.Objects()
	if len(ids) != 2 {
		t.Errorf("Objects = %v", ids)
	}
}
