package core

import (
	"time"

	"broadway/internal/simtime"
)

// ObjectID identifies a cached web object (in practice, its URL).
type ObjectID string

// PollOutcome carries everything a proxy learns from one poll of the
// origin server, i.e. only protocol-visible information. Consistency
// policies must base their decisions exclusively on these fields; the
// privileged ground truth lives in the evaluator, never here.
type PollOutcome struct {
	// Now is the instant of this poll.
	Now simtime.Time
	// Prev is the instant of the previous poll of this object.
	Prev simtime.Time
	// Modified reports whether the object changed since Prev (the
	// If-Modified-Since result).
	Modified bool
	// LastModified is the server's most recent modification instant.
	// Valid only when HasLastModified is true (an object that has never
	// been modified carries no Last-Modified header).
	LastModified simtime.Time
	// HasLastModified reports whether LastModified is meaningful.
	HasLastModified bool
	// History holds the modification instants in (Prev, Now], oldest
	// first, when the server supports the paper's proposed
	// modification-history extension (§5.1). Nil when the extension is
	// unavailable; policies then see only LastModified, like plain
	// HTTP/1.1.
	History []simtime.Time
	// HasValue reports whether the object carries a numeric value
	// (value-domain consistency).
	HasValue bool
	// Value is the object's value at Now (when HasValue).
	Value float64
	// PrevValue is the cached value prior to this poll (when HasValue).
	PrevValue float64
}

// FirstUpdateSincePrev returns the instant of the earliest known update in
// (Prev, Now]. With the history extension this is exact; otherwise it
// falls back to LastModified, which HTTP/1.1 provides but which hides any
// earlier updates in the window (the difficulty Fig. 1(b) of the paper
// illustrates). The result is meaningful only when Modified is true.
func (o *PollOutcome) FirstUpdateSincePrev() simtime.Time {
	if len(o.History) > 0 {
		return o.History[0]
	}
	return o.LastModified
}

// Policy computes the time-to-refresh (TTR) sequence for one cached
// object. Implementations are deterministic state machines and are not
// safe for concurrent use; callers serialize access (the simulator is
// single-threaded, the live proxy locks per entry).
type Policy interface {
	// Name returns a short identifier used in reports.
	Name() string
	// InitialTTR returns the TTR to use before the first poll outcome
	// is available.
	InitialTTR() time.Duration
	// NextTTR consumes the latest poll outcome and returns the time to
	// wait before the next poll.
	NextTTR(o PollOutcome) time.Duration
	// Reset discards adaptive state, as a proxy does after recovering
	// from a failure (paper §3.1: recovery simply resets TTRs).
	Reset()
}

// TTRBounds is the [TTRmin, TTRmax] clamp applied to every computed TTR
// (paper §3.1). The zero value is invalid; use NormalizeBounds to apply
// defaults.
type TTRBounds struct {
	Min time.Duration
	Max time.Duration
}

// DefaultTTRMax mirrors the paper's experimental setting of 60 minutes.
const DefaultTTRMax = 60 * time.Minute

// NormalizeBounds fills defaults: Min defaults to fallbackMin (typically
// Δ, "the minimum interval between polls necessary to maintain consistency
// guarantees"), Max to DefaultTTRMax. It panics if the result is invalid,
// which indicates a configuration error.
func NormalizeBounds(b TTRBounds, fallbackMin time.Duration) TTRBounds {
	if b.Min <= 0 {
		b.Min = fallbackMin
	}
	if b.Max <= 0 {
		b.Max = DefaultTTRMax
	}
	if b.Min <= 0 || b.Max < b.Min {
		panic("core: invalid TTR bounds")
	}
	return b
}

// clamp applies the bounds to a computed TTR.
func (b TTRBounds) clamp(d time.Duration) time.Duration {
	if d < b.Min {
		return b.Min
	}
	if d > b.Max {
		return b.Max
	}
	return d
}
