package core

import (
	"fmt"
	"time"

	"broadway/internal/simtime"
	"broadway/internal/stats"
)

// Func is the user-supplied function f over two object values whose drift
// the M_v-consistency semantics bound (Eq. 5): the proxy must keep
// |f(S_a,S_b) − f(P_a,P_b)| < δ.
type Func interface {
	// Name identifies the function in reports.
	Name() string
	// Eval computes f(a, b).
	Eval(a, b float64) float64
}

// DifferenceFunc is f(a,b) = a − b, the function the paper uses throughout
// its value-domain evaluation (comparing two stock prices). It is the
// function for which the partitioned approach applies.
type DifferenceFunc struct{}

// Name implements Func.
func (DifferenceFunc) Name() string { return "difference" }

// Eval implements Func.
func (DifferenceFunc) Eval(a, b float64) float64 { return a - b }

// SumFunc is f(a,b) = a + b (e.g. a two-stock portfolio value).
type SumFunc struct{}

// Name implements Func.
func (SumFunc) Name() string { return "sum" }

// Eval implements Func.
func (SumFunc) Eval(a, b float64) float64 { return a + b }

// RatioFunc is f(a,b) = a/b (e.g. a price ratio); b = 0 evaluates to 0.
type RatioFunc struct{}

// Name implements Func.
func (RatioFunc) Name() string { return "ratio" }

// Eval implements Func.
func (RatioFunc) Eval(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

var (
	_ Func = DifferenceFunc{}
	_ Func = SumFunc{}
	_ Func = RatioFunc{}
)

// PairOutcome carries the protocol-visible result of polling both members
// of a related pair at (approximately) the same instant.
type PairOutcome struct {
	// Now is the poll instant, Prev the previous pair-poll instant.
	Now, Prev simtime.Time
	// ValueA and ValueB are the servers' values at Now.
	ValueA, ValueB float64
	// PrevValueA and PrevValueB are the cached values prior to this
	// poll.
	PrevValueA, PrevValueB float64
}

// MutualValueConfig parameterizes the value-domain mutual-consistency
// mechanisms of paper §4.2.
type MutualValueConfig struct {
	// Delta is the mutual tolerance δ on the drift of f. Required
	// (positive).
	Delta float64
	// F is the tracked function; defaults to DifferenceFunc.
	F Func
	// Bounds clamp computed TTRs; Min defaults to 10 s, Max to 60 min.
	Bounds TTRBounds
	// Weight and Alpha feed the Eq. 10 refinement pipeline, as in
	// AdaptiveTTRConfig. Both default to 0.5.
	Weight, Alpha float64
	// GammaDecrease scales the feedback factor γ down on each observed
	// violation (Eq. 12: TTR = γ·δ/r); must lie in (0,1), default 0.7.
	GammaDecrease float64
	// GammaIncrease scales γ back up (capped at 1) after each clean
	// poll; must be > 1, default 1.05.
	GammaIncrease float64
	// GammaMin floors γ; must lie in (0,1], default 0.1.
	GammaMin float64
	// NoChangeGrowth scales the previous TTR when a pair poll observes
	// no drift of f at all (zero rate carries no information); must be
	// > 1, default 2.
	NoChangeGrowth float64
}

func (c MutualValueConfig) withDefaults() MutualValueConfig {
	if c.Delta <= 0 {
		panic("core: mutual value policy requires a positive Delta")
	}
	if c.F == nil {
		c.F = DifferenceFunc{}
	}
	c.Bounds = NormalizeBounds(c.Bounds, DefaultValueTTRMin)
	if c.Weight == 0 {
		c.Weight = 0.5
	}
	if c.Weight < 0 || c.Weight > 1 {
		panic(fmt.Sprintf("core: mutual value weight %v outside (0,1]", c.Weight))
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		panic(fmt.Sprintf("core: mutual value alpha %v outside (0,1]", c.Alpha))
	}
	if c.GammaDecrease == 0 {
		c.GammaDecrease = 0.7
	}
	if c.GammaDecrease <= 0 || c.GammaDecrease >= 1 {
		panic(fmt.Sprintf("core: gamma decrease %v outside (0,1)", c.GammaDecrease))
	}
	if c.GammaIncrease == 0 {
		c.GammaIncrease = 1.05
	}
	if c.GammaIncrease <= 1 {
		panic(fmt.Sprintf("core: gamma increase %v must exceed 1", c.GammaIncrease))
	}
	if c.GammaMin == 0 {
		c.GammaMin = 0.1
	}
	if c.GammaMin <= 0 || c.GammaMin > 1 {
		panic(fmt.Sprintf("core: gamma min %v outside (0,1]", c.GammaMin))
	}
	if c.NoChangeGrowth == 0 {
		c.NoChangeGrowth = 2
	}
	if c.NoChangeGrowth <= 1 {
		panic(fmt.Sprintf("core: no-change growth %v must exceed 1", c.NoChangeGrowth))
	}
	return c
}

// MutualValueAdaptive is the paper's adaptive approach to M_v-consistency
// (§4.2, Eq. 11–12): it models f(a, b) as the value of a virtual object,
// estimates the rate at which f changes from consecutive pair polls, and
// schedules the next pair poll before f is expected to have drifted by δ.
// A feedback factor γ shrinks the estimates when violations are detected
// and relaxes them during clean stretches.
//
// Both members of the pair are polled together; each pair poll therefore
// costs two server polls.
type MutualValueAdaptive struct {
	cfg   MutualValueConfig
	gamma float64

	prevTTR time.Duration
	obsMin  stats.MinTracker

	violations uint64
	polls      uint64
}

// NewMutualValueAdaptive returns an adaptive virtual-object pair policy.
// It panics on invalid configuration.
func NewMutualValueAdaptive(cfg MutualValueConfig) *MutualValueAdaptive {
	m := &MutualValueAdaptive{cfg: cfg.withDefaults()}
	m.Reset()
	return m
}

// Name returns the identifier used in reports.
func (m *MutualValueAdaptive) Name() string { return "mutual-value-adaptive" }

// Config returns the normalized configuration.
func (m *MutualValueAdaptive) Config() MutualValueConfig { return m.cfg }

// Gamma returns the current feedback factor.
func (m *MutualValueAdaptive) Gamma() float64 { return m.gamma }

// DetectedViolations returns how many pair polls revealed that f had
// drifted by at least δ since the previous poll (the proxy-visible
// violation signal that drives γ).
func (m *MutualValueAdaptive) DetectedViolations() uint64 { return m.violations }

// InitialTTR returns the TTR used before the first pair outcome.
func (m *MutualValueAdaptive) InitialTTR() time.Duration { return m.cfg.Bounds.Min }

// Reset discards adaptive state.
func (m *MutualValueAdaptive) Reset() {
	m.gamma = 1
	m.prevTTR = m.cfg.Bounds.Min
	m.obsMin = stats.MinTracker{}
	m.violations = 0
	m.polls = 0
}

// NextTTR consumes a pair outcome and returns the time until the next
// pair poll.
func (m *MutualValueAdaptive) NextTTR(o PairOutcome) time.Duration {
	m.polls++
	elapsed := o.Now.Sub(o.Prev)
	if elapsed <= 0 {
		return m.prevTTR
	}

	fCur := m.cfg.F.Eval(o.ValueA, o.ValueB)
	fPrev := m.cfg.F.Eval(o.PrevValueA, o.PrevValueB)
	drift := fCur - fPrev
	if drift < 0 {
		drift = -drift
	}

	// Feedback: the poll itself reveals whether the cached f had
	// drifted past δ before we refreshed.
	if drift >= m.cfg.Delta {
		m.violations++
		m.gamma *= m.cfg.GammaDecrease
		if m.gamma < m.cfg.GammaMin {
			m.gamma = m.cfg.GammaMin
		}
	} else {
		m.gamma *= m.cfg.GammaIncrease
		if m.gamma > 1 {
			m.gamma = 1
		}
	}

	// Eq. 11: rate of change of f; Eq. 12: TTR = γ·δ/r.
	var est time.Duration
	if drift == 0 {
		// Zero observed rate carries no information: back off gently.
		est = time.Duration(float64(m.prevTTR) * m.cfg.NoChangeGrowth)
		if est > m.cfg.Bounds.Max || est <= 0 {
			est = m.cfg.Bounds.Max
		}
	} else {
		r := drift / float64(elapsed)
		est = time.Duration(m.gamma * m.cfg.Delta / r)
		if est < 0 {
			est = m.cfg.Bounds.Max
		}
		m.obsMin.Observe(float64(est))
	}

	// Eq. 10 refinement: smoothing, anchoring, clamping.
	smoothed := time.Duration(m.cfg.Weight*float64(est) + (1-m.cfg.Weight)*float64(m.prevTTR))
	final := smoothed
	if min, ok := m.obsMin.Value(); ok {
		final = time.Duration(m.cfg.Alpha*float64(smoothed) + (1-m.cfg.Alpha)*min)
	}
	final = m.cfg.Bounds.clamp(final)
	m.prevTTR = final
	return final
}

// MutualValuePartitioned is the paper's partitioned approach to
// M_v-consistency for the difference function (§4.2): split the mutual
// tolerance δ into per-object tolerances δ_a + δ_b = δ and enforce
// Δv-consistency on each object independently. By the triangle
// inequality, |(S_a−P_a) + (P_b−S_b)| ≤ |S_a−P_a| + |S_b−P_b| < δ_a + δ_b,
// so individual compliance implies mutual compliance.
//
// The split adapts to the objects' observed value-change rates: the
// faster-changing object receives the smaller tolerance
// (δ_a = δ·r_b/(r_a+r_b)), and the split is recomputed after every poll.
type MutualValuePartitioned struct {
	delta float64

	a, b *partitionedMember
}

// partitionedMember is one side of a partitioned pair: an AdaptiveTTR
// policy plus the rate bookkeeping used to re-apportion tolerances.
type partitionedMember struct {
	parent  *MutualValuePartitioned
	sibling *partitionedMember
	policy  *AdaptiveTTR
	rate    float64 // latest observed |dv/dt| in value units per second
}

// NewMutualValuePartitioned returns a partitioned pair controller. Both
// members start with an even δ/2 split. The cfg.F field is ignored: the
// partitioned reduction is valid exactly for the difference function, as
// derived in the paper.
func NewMutualValuePartitioned(cfg MutualValueConfig) *MutualValuePartitioned {
	cfg = cfg.withDefaults()
	mk := func() *AdaptiveTTR {
		return NewAdaptiveTTR(AdaptiveTTRConfig{
			Delta:  cfg.Delta / 2,
			Bounds: cfg.Bounds,
			Weight: cfg.Weight,
			Alpha:  cfg.Alpha,
		})
	}
	p := &MutualValuePartitioned{delta: cfg.Delta}
	p.a = &partitionedMember{parent: p, policy: mk()}
	p.b = &partitionedMember{parent: p, policy: mk()}
	p.a.sibling = p.b
	p.b.sibling = p.a
	return p
}

// Name returns the identifier used in reports.
func (p *MutualValuePartitioned) Name() string { return "mutual-value-partitioned" }

// Delta returns the total mutual tolerance δ.
func (p *MutualValuePartitioned) Delta() float64 { return p.delta }

// Deltas returns the current split (δ_a, δ_b). Their sum is always δ.
func (p *MutualValuePartitioned) Deltas() (float64, float64) {
	return p.a.policy.Delta(), p.b.policy.Delta()
}

// PolicyA returns the per-object policy for the first member. Register it
// with the proxy like any individual Δv policy.
func (p *MutualValuePartitioned) PolicyA() Policy { return p.a }

// PolicyB returns the per-object policy for the second member.
func (p *MutualValuePartitioned) PolicyB() Policy { return p.b }

// Reset discards adaptive state on both members and restores the even
// split.
func (p *MutualValuePartitioned) Reset() {
	p.a.reset()
	p.b.reset()
}

var _ Policy = (*partitionedMember)(nil)

func (m *partitionedMember) Name() string { return "partitioned-member" }

func (m *partitionedMember) InitialTTR() time.Duration { return m.policy.InitialTTR() }

func (m *partitionedMember) reset() {
	m.policy.Reset()
	m.policy.SetDelta(m.parent.delta / 2)
	m.rate = 0
}

func (m *partitionedMember) Reset() { m.parent.Reset() }

// NextTTR records this member's latest value-change rate, re-apportions
// the tolerance split accordingly, and delegates to the member's
// AdaptiveTTR with its fresh δ share.
func (m *partitionedMember) NextTTR(o PollOutcome) time.Duration {
	if elapsed := o.Now.Sub(o.Prev); elapsed > 0 {
		change := o.Value - o.PrevValue
		if change < 0 {
			change = -change
		}
		m.rate = change / elapsed.Seconds()
	}
	m.reapportion()
	return m.policy.NextTTR(o)
}

// reapportion recomputes δ_a and δ_b from the latest rates: the tolerance
// is split in inverse proportion to the rates, so the faster object gets
// the tighter share. With no rate information the split stays even.
func (m *partitionedMember) reapportion() {
	p := m.parent
	ra, rb := p.a.rate, p.b.rate
	total := ra + rb
	if total <= 0 {
		p.a.policy.SetDelta(p.delta / 2)
		p.b.policy.SetDelta(p.delta / 2)
		return
	}
	// Floor each share at 1% of δ so a completely quiescent object
	// cannot starve its sibling's tolerance entirely.
	const minShare = 0.01
	shareA := stats.Clamp(rb/total, minShare, 1-minShare)
	p.a.policy.SetDelta(p.delta * shareA)
	p.b.policy.SetDelta(p.delta * (1 - shareA))
}
