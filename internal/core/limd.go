package core

import (
	"fmt"
	"time"

	"broadway/internal/simtime"
)

// LIMDConfig parameterizes the linear-increase/multiplicative-decrease
// policy of paper §3.1.
type LIMDConfig struct {
	// Delta is the Δt-consistency tolerance: the cached copy must never
	// be more than Delta behind the server. Required.
	Delta time.Duration
	// Bounds clamp every computed TTR. Min defaults to Delta (the
	// paper's TTRmin = Δ), Max to 60 minutes.
	Bounds TTRBounds
	// LinearFactor is l in TTR ← TTR·(1+l) for case 1 (no change since
	// the last poll). Must lie in (0, 1). Defaults to 0.2, the paper's
	// experimental setting.
	LinearFactor float64
	// MultiplicativeFactor is a fixed m in TTR ← TTR·m for case 2
	// (violation). Must lie in (0, 1) when set. When zero, m adapts per
	// poll as Δ divided by the observed out-of-sync time — the setting
	// used in the paper's experiments (§6.2.1) — so deeper violations
	// back off harder.
	MultiplicativeFactor float64
	// Epsilon is ε in TTR ← TTR·(1+ε) for case 3 (change without
	// violation: the poll frequency is approximately right). Must be
	// ≥ 0. Defaults to 0.02, the paper's setting.
	Epsilon float64
	// ColdThreshold is the idle period after which a detected update is
	// treated as case 4 (a cold object turning hot): the TTR resets to
	// TTRmin instead of adapting gradually. Defaults to Bounds.Max.
	ColdThreshold time.Duration
	// Inference, when non-nil, estimates hidden violations on servers
	// that do not supply the modification-history extension (paper §5:
	// the proxy can maintain statistics to infer the probability that
	// the first update in the window occurred more than Δ ago).
	Inference *ViolationInference
}

// withDefaults validates the configuration and fills defaults. It panics
// on invalid settings: configurations are assembled by programmers, not
// end users, so failing loudly at construction is the right behavior.
func (c LIMDConfig) withDefaults() LIMDConfig {
	if c.Delta <= 0 {
		panic("core: LIMD requires a positive Delta")
	}
	c.Bounds = NormalizeBounds(c.Bounds, c.Delta)
	if c.LinearFactor == 0 {
		c.LinearFactor = 0.2
	}
	if c.LinearFactor <= 0 || c.LinearFactor >= 1 {
		panic(fmt.Sprintf("core: LIMD linear factor %v outside (0,1)", c.LinearFactor))
	}
	if c.MultiplicativeFactor < 0 || c.MultiplicativeFactor >= 1 {
		panic(fmt.Sprintf("core: LIMD multiplicative factor %v outside [0,1)", c.MultiplicativeFactor))
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.02
	}
	if c.Epsilon < 0 {
		panic("core: LIMD epsilon must be non-negative")
	}
	if c.ColdThreshold <= 0 {
		c.ColdThreshold = c.Bounds.Max
	}
	return c
}

// LIMD is the paper's adaptive Δt-consistency policy (§3.1). It probes
// the server for the object's rate of change: the TTR grows linearly
// while the object is quiet, shrinks multiplicatively on violations, and
// is fine-tuned when the polling frequency is approximately right. Only
// the two most recent polls inform each decision — the property the paper
// highlights as minimizing proxy state and simplifying failure recovery.
type LIMD struct {
	cfg LIMDConfig

	ttr          time.Duration
	lastKnownMod simtime.Time
	haveMod      bool

	// caseCounts tallies decisions per LIMD case (1..4) for reporting.
	caseCounts [5]uint64
}

var _ Policy = (*LIMD)(nil)

// NewLIMD returns a LIMD policy for the given configuration. It panics on
// invalid configuration.
func NewLIMD(cfg LIMDConfig) *LIMD {
	l := &LIMD{cfg: cfg.withDefaults()}
	l.Reset()
	return l
}

// Name implements Policy.
func (l *LIMD) Name() string { return "limd" }

// Config returns the normalized configuration.
func (l *LIMD) Config() LIMDConfig { return l.cfg }

// InitialTTR implements Policy: the algorithm begins at TTRmin (= Δ).
func (l *LIMD) InitialTTR() time.Duration { return l.cfg.Bounds.Min }

// TTR returns the current TTR value without consuming an outcome.
func (l *LIMD) TTR() time.Duration { return l.ttr }

// RestoreTTR re-seeds the learned TTR from a persisted snapshot (e.g. a
// disk-tier rehydration), clamped to the configured bounds. Non-positive
// values are ignored: the policy keeps its InitialTTR and re-learns.
func (l *LIMD) RestoreTTR(d time.Duration) {
	if d <= 0 {
		return
	}
	l.ttr = l.cfg.Bounds.clamp(d)
}

// CaseCount returns how many poll outcomes were classified as the given
// LIMD case (1–4).
func (l *LIMD) CaseCount(c int) uint64 {
	if c < 1 || c > 4 {
		return 0
	}
	return l.caseCounts[c]
}

// Reset implements Policy: recovery resets the TTR to TTRmin and forgets
// the modification anchor.
func (l *LIMD) Reset() {
	l.ttr = l.cfg.Bounds.Min
	l.lastKnownMod = 0
	l.haveMod = false
	if l.cfg.Inference != nil {
		l.cfg.Inference.Reset()
	}
}

// NextTTR implements Policy, applying the four LIMD cases.
func (l *LIMD) NextTTR(o PollOutcome) time.Duration {
	if l.cfg.Inference != nil {
		l.cfg.Inference.ObservePoll(o)
	}

	if !o.Modified {
		// Case 1: no change between successive polls → linear increase.
		l.caseCounts[1]++
		l.ttr = l.cfg.Bounds.clamp(time.Duration(float64(l.ttr) * (1 + l.cfg.LinearFactor)))
		return l.ttr
	}

	first := o.FirstUpdateSincePrev()
	outSync := o.Now.Sub(first)
	violated := outSync > l.cfg.Delta
	if !violated && o.History == nil && l.cfg.Inference != nil {
		// Plain HTTP hides updates before the most recent one
		// (Fig. 1(b)); consult the inference estimator.
		if est, ok := l.cfg.Inference.InferHiddenViolation(o, l.cfg.Delta); ok {
			violated = true
			outSync = est
		}
	}

	cold := l.haveMod && first.Sub(l.lastKnownMod) > l.cfg.ColdThreshold

	// Anchor the next cold-start decision at the newest known change.
	if o.HasLastModified {
		l.lastKnownMod = o.LastModified
		l.haveMod = true
	}

	switch {
	case cold:
		// Case 4: update after a long quiet period → snap back to
		// TTRmin so a suddenly hot object is tracked immediately.
		l.caseCounts[4]++
		l.ttr = l.cfg.Bounds.Min
	case violated:
		// Case 2: consistency violated → multiplicative decrease.
		l.caseCounts[2]++
		m := l.cfg.MultiplicativeFactor
		if m == 0 {
			// Adaptive m = Δ / out-of-sync time (§6.2.1). A violation
			// implies outSync > Δ, hence m < 1; deeper violations
			// yield smaller m.
			m = float64(l.cfg.Delta) / float64(outSync)
		}
		l.ttr = time.Duration(float64(l.ttr) * m)
	default:
		// Case 3: change detected in time → polling frequency is
		// approximately right; fine-tune upward by ε.
		l.caseCounts[3]++
		l.ttr = time.Duration(float64(l.ttr) * (1 + l.cfg.Epsilon))
	}
	l.ttr = l.cfg.Bounds.clamp(l.ttr)
	return l.ttr
}
