package core

import (
	"math"
	"time"

	"broadway/internal/stats"
)

// ViolationInference estimates whether a poll that observed a modification
// concealed an earlier, violating update. Plain HTTP responses reveal only
// the most recent change; if the object was modified several times since
// the last poll, the first of those updates may have occurred more than Δ
// before the poll without the proxy being able to tell (paper Fig. 1(b)).
// The paper (§3.1, §5) proposes inferring the probability of such hidden
// violations from past statistics; this estimator realizes that proposal.
//
// The model: updates are approximated as a Poisson process whose rate is
// estimated online from the observed modification instants. Conditioned on
// "at least one update in (prev, now]", the probability that the first
// update fell in the violating prefix (prev, now−Δ] is
//
//	p = (1 − e^{−λ(I−Δ)}) / (1 − e^{−λI}),  I = now − prev,
//
// which the estimator compares against Threshold. When it flags a hidden
// violation it also reports the expected out-of-sync time under the same
// model, which LIMD's adaptive multiplicative factor consumes.
type ViolationInference struct {
	// Threshold is the probability above which a hidden violation is
	// assumed. Defaults to 0.5.
	Threshold float64

	rate *stats.RateEstimator
}

// NewViolationInference returns an estimator with the given decision
// threshold (0 selects the default of 0.5).
func NewViolationInference(threshold float64) *ViolationInference {
	if threshold == 0 {
		threshold = 0.5
	}
	if threshold < 0 || threshold > 1 {
		panic("core: inference threshold outside [0,1]")
	}
	return &ViolationInference{
		Threshold: threshold,
		rate:      stats.NewRateEstimator(0.3),
	}
}

// ObservePoll feeds the estimator the modification evidence from a poll.
func (v *ViolationInference) ObservePoll(o PollOutcome) {
	if !o.Modified {
		return
	}
	// With the history extension every update instant is visible; plain
	// HTTP reveals only the most recent one. Either way the estimator
	// learns the process rate from what the protocol exposes.
	if len(o.History) > 0 {
		for _, at := range o.History {
			v.rate.ObserveEvent(at.Duration())
		}
		return
	}
	if o.HasLastModified {
		v.rate.ObserveEvent(o.LastModified.Duration())
	}
}

// InferHiddenViolation decides whether the poll outcome likely concealed a
// violating first update. It returns the estimated out-of-sync time and
// true when the estimated probability exceeds the threshold.
func (v *ViolationInference) InferHiddenViolation(o PollOutcome, delta time.Duration) (time.Duration, bool) {
	if !o.Modified || !v.rate.Known() {
		return 0, false
	}
	interval := o.Now.Sub(o.Prev)
	if interval <= delta {
		// The whole window fits within the tolerance: no instant in it
		// can violate.
		return 0, false
	}
	gap := v.rate.MeanGap()
	if gap <= 0 {
		return 0, false
	}
	lambda := 1 / gap.Seconds()
	iSec := interval.Seconds()
	prefix := (interval - delta).Seconds()

	denom := 1 - math.Exp(-lambda*iSec)
	if denom <= 0 {
		return 0, false
	}
	p := (1 - math.Exp(-lambda*prefix)) / denom
	if p <= v.Threshold {
		return 0, false
	}
	// Expected first-update instant conditioned on falling in the
	// violating prefix: a truncated exponential from prev. out-of-sync
	// time = now − E[first].
	ef := expectedTruncExp(lambda, prefix)
	est := interval - time.Duration(ef*float64(time.Second))
	if est <= delta {
		est = delta + time.Second // flagged as violation: report a positive out-of-sync time
	}
	return est, true
}

// expectedTruncExp returns E[X | X ≤ c] for X ~ Exp(λ), in seconds.
func expectedTruncExp(lambda, c float64) float64 {
	if lambda <= 0 || c <= 0 {
		return 0
	}
	e := math.Exp(-lambda * c)
	den := 1 - e
	if den <= 0 {
		return c / 2
	}
	return 1/lambda - c*e/den
}

// Reset discards learned statistics.
func (v *ViolationInference) Reset() {
	v.rate = stats.NewRateEstimator(0.3)
}
