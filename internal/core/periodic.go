package core

import "time"

// Periodic is the baseline consistency mechanism the paper's evaluation
// compares against: poll the server every Δ time units unconditionally.
// By construction it provides perfect Δt-fidelity — a violation would
// require an update to go undetected for longer than Δ, which a poll every
// Δ rules out — at the cost of polling static objects as often as hot
// ones.
type Periodic struct {
	period time.Duration
}

var _ Policy = (*Periodic)(nil)

// NewPeriodic returns the poll-every-period baseline. It panics if period
// is not positive.
func NewPeriodic(period time.Duration) *Periodic {
	if period <= 0 {
		panic("core: Periodic requires a positive period")
	}
	return &Periodic{period: period}
}

// Name implements Policy.
func (p *Periodic) Name() string { return "periodic" }

// InitialTTR implements Policy.
func (p *Periodic) InitialTTR() time.Duration { return p.period }

// NextTTR implements Policy: the TTR never adapts.
func (p *Periodic) NextTTR(PollOutcome) time.Duration { return p.period }

// Reset implements Policy (stateless).
func (p *Periodic) Reset() {}
