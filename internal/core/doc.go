// Package core implements the paper's cache-consistency algorithms: the
// adaptive mechanisms for maintaining Δ-consistency of individual cached
// objects and the mutual-consistency mechanisms layered on top of them.
//
// # Taxonomy (paper Table 1)
//
//	Semantics  Domain    Type        Example
//	Δt         temporal  individual  object a is always within 5 time units of its server copy
//	Mt         temporal  mutual      objects a and b are never out of sync by more than 5 time units
//	Δv         value     individual  value of a is within 2.5 of its server copy
//	Mv         value     mutual      difference of a and b is within 2.5 of the difference at the server
//
// # Individual consistency
//
// [LIMD] maintains Δt-consistency by adapting the time-to-refresh (TTR)
// with linear increase / multiplicative decrease (paper §3.1).
// [AdaptiveTTR] maintains Δv-consistency by extrapolating the object's
// rate of change (paper §4.1, Eq. 9–10). [Periodic] is the poll-every-Δ
// baseline, which by construction never violates its guarantee.
//
// # Mutual consistency
//
// [MutualTimeController] augments per-object policies with triggered polls
// (paper §3.2): on detecting an update to one member of a group, it
// decides which related objects must be polled immediately so that the
// group stays within the mutual tolerance δ. [MutualValueAdaptive] tracks
// a function f of two object values as a virtual object (paper §4.2,
// Eq. 11–12); [MutualValuePartitioned] splits the tolerance δ across the
// two objects in inverse proportion to their change rates and reduces
// mutual consistency to individual consistency.
//
// Policies are pure single-threaded state machines: they consume only
// protocol-visible poll outcomes ([PollOutcome]) and produce the next TTR.
// This makes the identical implementations usable both inside the
// deterministic simulator (internal/proxy) and inside the live HTTP proxy
// (internal/webproxy).
package core
