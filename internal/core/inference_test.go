package core

import (
	"testing"
	"time"

	"broadway/internal/simtime"
)

func TestInferenceUnknownRateNeverFlags(t *testing.T) {
	v := NewViolationInference(0.5)
	o := modifiedOutcome(0, minutes(30), minutes(29))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); ok {
		t.Error("no rate evidence must mean no inference")
	}
}

func TestInferenceWindowWithinDeltaNeverFlags(t *testing.T) {
	v := NewViolationInference(0.5)
	teachRate(v, time.Minute, 10)
	// Poll window of 5m with Δ=10m: no instant in the window violates.
	o := modifiedOutcome(0, minutes(5), minutes(4))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); ok {
		t.Error("window shorter than Δ cannot contain a violation")
	}
}

// teachRate feeds the estimator updates with the given period.
func teachRate(v *ViolationInference, period time.Duration, n int) {
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += period
		v.ObservePoll(PollOutcome{
			Now: simtime.At(at + time.Second), Prev: simtime.At(at - period),
			Modified: true, HasLastModified: true, LastModified: simtime.At(at),
		})
	}
}

func TestInferenceFastObjectLongWindowFlags(t *testing.T) {
	v := NewViolationInference(0.5)
	// Object updates every minute.
	teachRate(v, time.Minute, 20)
	// A 60-minute window with Δ=10m: almost surely the first update in
	// the window happened within its first minutes, far more than Δ ago.
	o := modifiedOutcome(0, minutes(60), minutes(59))
	est, ok := v.InferHiddenViolation(o, 10*time.Minute)
	if !ok {
		t.Fatal("fast object over a long window must be flagged")
	}
	if est <= 10*time.Minute {
		t.Errorf("estimated out-of-sync %v must exceed Δ", est)
	}
	if est > 60*time.Minute {
		t.Errorf("estimated out-of-sync %v cannot exceed the window", est)
	}
}

func TestInferenceSlowObjectRarelyFlags(t *testing.T) {
	v := NewViolationInference(0.5)
	// Object updates every 10 hours; window barely exceeds Δ.
	teachRate(v, 10*time.Hour, 5)
	o := modifiedOutcome(0, minutes(12), minutes(11))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); ok {
		t.Error("slow object with a barely-exceeding window should not be flagged")
	}
}

func TestInferenceLearnsFromHistory(t *testing.T) {
	v := NewViolationInference(0.5)
	v.ObservePoll(PollOutcome{
		Now: simtime.At(minutes(30)), Prev: simtime.At(0),
		Modified: true, HasLastModified: true, LastModified: simtime.At(minutes(25)),
		History: []simtime.Time{
			simtime.At(minutes(5)), simtime.At(minutes(15)), simtime.At(minutes(25)),
		},
	})
	o := modifiedOutcome(minutes(30), minutes(90), minutes(89))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); !ok {
		t.Error("history-taught estimator should flag a long window")
	}
}

func TestInferenceIgnoresUnmodifiedPolls(t *testing.T) {
	v := NewViolationInference(0.5)
	for i := 1; i <= 10; i++ {
		v.ObservePoll(outcome(time.Duration(i-1)*time.Minute, time.Duration(i)*time.Minute))
	}
	o := modifiedOutcome(0, minutes(60), minutes(59))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); ok {
		t.Error("unmodified polls must not teach a rate")
	}
}

func TestInferenceUnmodifiedOutcomeNeverFlags(t *testing.T) {
	v := NewViolationInference(0.5)
	teachRate(v, time.Minute, 10)
	if _, ok := v.InferHiddenViolation(outcome(0, minutes(60)), 10*time.Minute); ok {
		t.Error("unmodified outcome cannot be a violation")
	}
}

func TestInferenceReset(t *testing.T) {
	v := NewViolationInference(0.5)
	teachRate(v, time.Minute, 10)
	v.Reset()
	o := modifiedOutcome(0, minutes(60), minutes(59))
	if _, ok := v.InferHiddenViolation(o, 10*time.Minute); ok {
		t.Error("Reset must discard rate evidence")
	}
}

func TestInferenceThresholdValidation(t *testing.T) {
	if NewViolationInference(0).Threshold != 0.5 {
		t.Error("zero threshold must default to 0.5")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for threshold > 1")
		}
	}()
	NewViolationInference(1.5)
}

func TestExpectedTruncExp(t *testing.T) {
	// For λ=1 and a very long cutoff, E[X | X ≤ c] → 1/λ = 1.
	if got := expectedTruncExp(1, 100); got < 0.99 || got > 1.01 {
		t.Errorf("expectedTruncExp(1, 100) = %v, want ≈1", got)
	}
	// For a tiny cutoff, the conditional mean approaches c/2.
	if got := expectedTruncExp(1, 0.001); got < 0.0004 || got > 0.0006 {
		t.Errorf("expectedTruncExp(1, 0.001) = %v, want ≈0.0005", got)
	}
	if expectedTruncExp(0, 1) != 0 || expectedTruncExp(1, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestLIMDWithInferenceBacksOffOnProbableViolations(t *testing.T) {
	// End-to-end: a fast-changing object polled over long windows with
	// plain HTTP. Without inference LIMD sees case 3 and drifts the TTR
	// up; with inference it treats probable hidden violations as case 2.
	run := func(withInference bool) time.Duration {
		cfg := LIMDConfig{Delta: 5 * time.Minute,
			Bounds: TTRBounds{Min: 5 * time.Minute, Max: 120 * time.Minute}}
		if withInference {
			cfg.Inference = NewViolationInference(0.5)
		}
		l := NewLIMD(cfg)
		now := time.Duration(0)
		for i := 0; i < 30; i++ {
			prev := now
			now += l.TTR()
			// Object updates every minute: last modification is always
			// a few seconds before the poll (case 3 to plain HTTP).
			l.NextTTR(modifiedOutcome(prev, now, now-30*time.Second))
		}
		return l.TTR()
	}
	plain := run(false)
	inferred := run(true)
	if inferred >= plain {
		t.Errorf("inference must keep the TTR lower: %v >= %v", inferred, plain)
	}
}
