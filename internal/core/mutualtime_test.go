package core

import (
	"testing"
	"time"

	"broadway/internal/simtime"
)

func newController(mode TriggerMode) *MutualTimeController {
	return NewMutualTimeController(MutualTimeConfig{
		Delta: 5 * time.Minute,
		Mode:  mode,
	})
}

// feedRate teaches the controller that id updates with the given period.
func feedRate(c *MutualTimeController, id ObjectID, period time.Duration, n int) {
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += period
		c.ObserveOutcome(id, PollOutcome{
			Now: simtime.At(at + time.Second), Prev: simtime.At(at - period),
			Modified: true, LastModified: simtime.At(at), HasLastModified: true,
		})
	}
}

func TestTriggerModeString(t *testing.T) {
	if TriggerNone.String() != "baseline" || TriggerAll.String() != "triggered" ||
		TriggerFaster.String() != "heuristic" {
		t.Error("mode names wrong")
	}
	if TriggerMode(42).String() == "" {
		t.Error("unknown mode must format")
	}
}

func TestBaselineNeverTriggers(t *testing.T) {
	c := newController(TriggerNone)
	got := c.ShouldTrigger("a", "b",
		simtime.At(time.Hour), simtime.At(0), simtime.At(2*time.Hour))
	if got {
		t.Error("baseline must never trigger")
	}
	if c.Triggered() != 0 {
		t.Error("trigger count must stay 0")
	}
}

func TestTriggerAllTriggersWhenFarFromPolls(t *testing.T) {
	c := newController(TriggerAll)
	// b was polled 30m ago, next poll in 30m: both beyond δ=5m.
	got := c.ShouldTrigger("a", "b",
		simtime.At(time.Hour), simtime.At(30*time.Minute), simtime.At(90*time.Minute))
	if !got {
		t.Error("must trigger when no poll falls within δ")
	}
	if c.Triggered() != 1 {
		t.Errorf("Triggered = %d", c.Triggered())
	}
}

func TestNoTriggerWhenRecentPollWithinDelta(t *testing.T) {
	c := newController(TriggerAll)
	// b polled 3m ago (≤ δ): the recent poll already bounds the lag.
	got := c.ShouldTrigger("a", "b",
		simtime.At(time.Hour), simtime.At(57*time.Minute), simtime.At(2*time.Hour))
	if got {
		t.Error("recent poll within δ must suppress the trigger")
	}
}

func TestNoTriggerWhenNextPollWithinDelta(t *testing.T) {
	c := newController(TriggerAll)
	// b's next scheduled poll is 4m away (≤ δ).
	got := c.ShouldTrigger("a", "b",
		simtime.At(time.Hour), simtime.At(0), simtime.At(64*time.Minute))
	if got {
		t.Error("imminent poll within δ must suppress the trigger")
	}
}

func TestNoSelfTrigger(t *testing.T) {
	c := newController(TriggerAll)
	if c.ShouldTrigger("a", "a", simtime.At(time.Hour), simtime.At(0), simtime.At(2*time.Hour)) {
		t.Error("an object must not trigger itself")
	}
}

func TestHeuristicSkipsSlowerObjects(t *testing.T) {
	c := newController(TriggerFaster)
	feedRate(c, "fast", 2*time.Minute, 10)
	feedRate(c, "slow", 40*time.Minute, 10)

	now := simtime.At(100 * time.Hour)
	farPrev, farNext := simtime.At(99*time.Hour), simtime.At(101*time.Hour)

	// Fast object updated → slow sibling is NOT triggered.
	if c.ShouldTrigger("fast", "slow", now, farPrev, farNext) {
		t.Error("heuristic must skip slower-changing objects")
	}
	// Slow object updated → fast sibling IS triggered.
	if !c.ShouldTrigger("slow", "fast", now, farPrev, farNext) {
		t.Error("heuristic must trigger faster-changing objects")
	}
}

func TestForgetDiscardsOneObjectsState(t *testing.T) {
	c := newController(TriggerFaster)
	feedRate(c, "fast", 2*time.Minute, 10)
	feedRate(c, "slow", 40*time.Minute, 10)

	// Forgetting the slow object (a cache evicted it) returns it to the
	// warm-up behavior: unknown rates err on the side of triggering.
	c.Forget("slow")
	if got := c.EstimatedRate("slow"); got != 0 {
		t.Errorf("EstimatedRate after Forget = %v, want 0", got)
	}
	now := simtime.At(100 * time.Hour)
	farPrev, farNext := simtime.At(99*time.Hour), simtime.At(101*time.Hour)
	if !c.ShouldTrigger("fast", "slow", now, farPrev, farNext) {
		t.Error("forgotten object must be treated as unknown-rate (trigger)")
	}
	// The sibling's learned rate survives.
	if c.EstimatedRate("fast") == 0 {
		t.Error("Forget of one object discarded another's rate")
	}
	// Re-learning starts clean: stale lastMod no longer suppresses the
	// re-admitted object's fresh history.
	feedRate(c, "slow", 40*time.Minute, 10)
	if c.EstimatedRate("slow") == 0 {
		t.Error("forgotten object could not re-learn its rate")
	}
}

func TestHeuristicTriggersComparableRates(t *testing.T) {
	c := newController(TriggerFaster)
	feedRate(c, "a", 10*time.Minute, 10)
	feedRate(c, "b", 11*time.Minute, 10) // ≈9% slower: "approximately the same"

	now := simtime.At(100 * time.Hour)
	if !c.ShouldTrigger("a", "b", now, simtime.At(99*time.Hour), simtime.At(101*time.Hour)) {
		t.Error("comparable rates must trigger")
	}
}

func TestHeuristicUnknownRatesTrigger(t *testing.T) {
	c := newController(TriggerFaster)
	// No rate evidence at all: err on the side of fidelity.
	if !c.ShouldTrigger("a", "b", simtime.At(time.Hour), simtime.At(0), simtime.At(2*time.Hour)) {
		t.Error("unknown rates must trigger")
	}
}

func TestObserveOutcomeDeduplicatesHistory(t *testing.T) {
	c := newController(TriggerFaster)
	// Two polls whose histories overlap: the shared instant must be
	// counted once.
	c.ObserveOutcome("a", PollOutcome{
		Now: simtime.At(20 * time.Minute), Prev: simtime.At(0),
		Modified: true, HasLastModified: true, LastModified: simtime.At(15 * time.Minute),
		History: []simtime.Time{simtime.At(5 * time.Minute), simtime.At(15 * time.Minute)},
	})
	c.ObserveOutcome("a", PollOutcome{
		Now: simtime.At(40 * time.Minute), Prev: simtime.At(20 * time.Minute),
		Modified: true, HasLastModified: true, LastModified: simtime.At(35 * time.Minute),
		History: []simtime.Time{simtime.At(15 * time.Minute), simtime.At(25 * time.Minute), simtime.At(35 * time.Minute)},
	})
	// Gaps observed: 10m (5→15), 10m (15→25), 10m (25→35) → rate 1/600s.
	if got := c.EstimatedRate("a"); got < 1.0/601 || got > 1.0/599 {
		t.Errorf("EstimatedRate = %v, want ≈1/600", got)
	}
}

func TestObserveOutcomeIgnoresUnmodified(t *testing.T) {
	c := newController(TriggerFaster)
	c.ObserveOutcome("a", PollOutcome{Now: simtime.At(time.Hour), Prev: simtime.At(0)})
	if c.EstimatedRate("a") != 0 {
		t.Error("unmodified polls must not create rate evidence")
	}
}

func TestControllerReset(t *testing.T) {
	c := newController(TriggerAll)
	feedRate(c, "a", time.Minute, 5)
	c.ShouldTrigger("a", "b", simtime.At(time.Hour), simtime.At(0), simtime.At(2*time.Hour))
	c.Reset()
	if c.Triggered() != 0 || c.EstimatedRate("a") != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestMutualTimeConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  MutualTimeConfig
	}{
		{"zero delta", MutualTimeConfig{Mode: TriggerAll}},
		{"bad mode", MutualTimeConfig{Delta: time.Minute}},
		{"bad tolerance", MutualTimeConfig{Delta: time.Minute, Mode: TriggerAll, RateTolerance: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewMutualTimeController(tt.cfg)
		})
	}
}
