package core

import (
	"testing"
	"testing/quick"
	"time"

	"broadway/internal/simtime"
)

func valueOutcome(prev, now time.Duration, prevVal, val float64) PollOutcome {
	return PollOutcome{
		Now: simtime.At(now), Prev: simtime.At(prev),
		Modified: val != prevVal, HasValue: true,
		Value: val, PrevValue: prevVal,
	}
}

func TestAdaptiveTTRDefaults(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{Delta: 0.5})
	cfg := a.Config()
	if cfg.Bounds.Min != DefaultValueTTRMin || cfg.Bounds.Max != DefaultTTRMax {
		t.Errorf("bounds = %+v", cfg.Bounds)
	}
	if cfg.Weight != 0.5 || cfg.Alpha != 0.5 {
		t.Errorf("w=%v α=%v", cfg.Weight, cfg.Alpha)
	}
	if a.InitialTTR() != cfg.Bounds.Min {
		t.Errorf("InitialTTR = %v", a.InitialTTR())
	}
	if a.Name() != "adaptive-ttr" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestAdaptiveTTRExtrapolation(t *testing.T) {
	// Δ = 1.0, w = 1, α = 1: the TTR equals the raw extrapolation.
	a := NewAdaptiveTTR(AdaptiveTTRConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	// Value moved 0.5 in 100s → rate 0.005/s → Δ/r = 200s.
	got := a.NextTTR(valueOutcome(0, 100*time.Second, 10, 10.5))
	if got != 200*time.Second {
		t.Errorf("TTR = %v, want 200s", got)
	}
	// Direction must not matter: a drop of 0.5 gives the same TTR.
	a.Reset()
	got = a.NextTTR(valueOutcome(0, 100*time.Second, 10, 9.5))
	if got != 200*time.Second {
		t.Errorf("TTR (falling value) = %v, want 200s", got)
	}
}

func TestAdaptiveTTRNoChangeBacksOffGently(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	// No observed change: the TTR doubles from its previous value
	// (zero rate carries no information) rather than jumping to TTRmax.
	got := a.NextTTR(valueOutcome(0, 100*time.Second, 10, 10))
	if got != 2*time.Second {
		t.Errorf("TTR = %v, want 2s (doubled from the 1s floor)", got)
	}
	// Repeated quiet polls keep doubling until the cap.
	now := 100 * time.Second
	for i := 0; i < 20; i++ {
		prev := now
		now += got
		got = a.NextTTR(valueOutcome(prev, now, 10, 10))
	}
	if got != time.Hour {
		t.Errorf("TTR = %v, want TTRmax after a long quiet stretch", got)
	}
}

func TestAdaptiveTTRFastChangeFloorsAtMin(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{
		Delta:  0.01,
		Bounds: TTRBounds{Min: 10 * time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	// Huge move: extrapolated TTR far below the floor.
	got := a.NextTTR(valueOutcome(0, 10*time.Second, 10, 20))
	if got != 10*time.Second {
		t.Errorf("TTR = %v, want TTRmin floor", got)
	}
}

func TestAdaptiveTTRSmoothing(t *testing.T) {
	// w = 0.5, α = 1: TTR = (est + prevTTR)/2.
	a := NewAdaptiveTTR(AdaptiveTTRConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 0.5, Alpha: 1,
	})
	// First estimate 200s, prev = TTRmin (1s) → 100.5s.
	got := a.NextTTR(valueOutcome(0, 100*time.Second, 10, 10.5))
	if got != 100*time.Second+500*time.Millisecond {
		t.Errorf("TTR = %v, want 100.5s", got)
	}
}

func TestAdaptiveTTRObservedMinAnchors(t *testing.T) {
	// α = 0.5: final mixes the smoothed estimate with the smallest raw
	// estimate so far, biasing toward conservative polling.
	a := NewAdaptiveTTR(AdaptiveTTRConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: 10 * time.Hour},
		Weight: 1, Alpha: 0.5,
	})
	// Burst: est 10s → min 10s. TTR = 0.5·10 + 0.5·10 = 10s.
	a.NextTTR(valueOutcome(0, 10*time.Second, 10, 11))
	// Quiet spell: raw est 1000s; final = 0.5·1000 + 0.5·10 = 505s.
	got := a.NextTTR(valueOutcome(10*time.Second, 20*time.Second, 11, 11.01))
	if got != 505*time.Second {
		t.Errorf("TTR = %v, want 505s (anchored)", got)
	}
}

func TestAdaptiveTTRZeroElapsed(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{Delta: 1.0})
	before := a.InitialTTR()
	got := a.NextTTR(valueOutcome(10*time.Second, 10*time.Second, 10, 11))
	if got != before {
		t.Errorf("zero-elapsed poll changed TTR: %v", got)
	}
}

func TestAdaptiveTTRSetDelta(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{Delta: 1.0})
	a.SetDelta(2.5)
	if a.Delta() != 2.5 {
		t.Errorf("Delta = %v", a.Delta())
	}
	defer func() {
		if recover() == nil {
			t.Error("SetDelta(0) must panic")
		}
	}()
	a.SetDelta(0)
}

func TestAdaptiveTTRReset(t *testing.T) {
	a := NewAdaptiveTTR(AdaptiveTTRConfig{Delta: 1.0, Weight: 1, Alpha: 1})
	// A burst drives the observed-min anchor down to a small estimate.
	a.NextTTR(valueOutcome(0, 10*time.Second, 10, 11))
	a.Reset()
	// After reset the anchor and the previous TTR are gone: a slow
	// drift extrapolates freely, unanchored by the pre-reset burst.
	// Value moved 0.001 in 100s → est = 1.0/(0.001/100s) = 100000s,
	// clamped to TTRmax.
	got := a.NextTTR(valueOutcome(0, 100*time.Second, 10, 10.001))
	if got != a.Config().Bounds.Max {
		t.Errorf("TTR after reset = %v, want TTRmax (anchor cleared)", got)
	}
}

func TestAdaptiveTTRConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  AdaptiveTTRConfig
	}{
		{"zero delta", AdaptiveTTRConfig{}},
		{"negative delta", AdaptiveTTRConfig{Delta: -1}},
		{"weight too big", AdaptiveTTRConfig{Delta: 1, Weight: 1.5}},
		{"alpha too big", AdaptiveTTRConfig{Delta: 1, Alpha: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewAdaptiveTTR(tt.cfg)
		})
	}
}

// TestPropertyAdaptiveTTRWithinBounds drives the policy with arbitrary
// value walks and asserts the clamp invariant of Eq. 10.
func TestPropertyAdaptiveTTRWithinBounds(t *testing.T) {
	f := func(moves []int8) bool {
		a := NewAdaptiveTTR(AdaptiveTTRConfig{Delta: 0.25})
		bounds := a.Config().Bounds
		now := time.Duration(0)
		val := 100.0
		for _, mv := range moves {
			prev := now
			prevVal := val
			now += time.Duration(mv&0x3f)*time.Second + time.Second
			val += float64(mv) / 64
			ttr := a.NextTTR(valueOutcome(prev, now, prevVal, val))
			if ttr < bounds.Min || ttr > bounds.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodicPolicy(t *testing.T) {
	p := NewPeriodic(5 * time.Minute)
	if p.Name() != "periodic" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.InitialTTR() != 5*time.Minute {
		t.Errorf("InitialTTR = %v", p.InitialTTR())
	}
	got := p.NextTTR(modifiedOutcome(0, minutes(5), minutes(3)))
	if got != 5*time.Minute {
		t.Errorf("NextTTR = %v: baseline must never adapt", got)
	}
	p.Reset() // must not panic
	if p.NextTTR(outcome(0, minutes(5))) != 5*time.Minute {
		t.Error("NextTTR after Reset changed")
	}
}

func TestPeriodicRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPeriodic(0)
}
