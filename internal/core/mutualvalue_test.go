package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"broadway/internal/simtime"
)

func pairOutcome(prev, now time.Duration, prevA, prevB, a, b float64) PairOutcome {
	return PairOutcome{
		Now: simtime.At(now), Prev: simtime.At(prev),
		ValueA: a, ValueB: b, PrevValueA: prevA, PrevValueB: prevB,
	}
}

func TestFuncs(t *testing.T) {
	tests := []struct {
		f    Func
		a, b float64
		want float64
		name string
	}{
		{DifferenceFunc{}, 5, 3, 2, "difference"},
		{SumFunc{}, 5, 3, 8, "sum"},
		{RatioFunc{}, 6, 3, 2, "ratio"},
		{RatioFunc{}, 6, 0, 0, "ratio"},
	}
	for _, tt := range tests {
		if got := tt.f.Eval(tt.a, tt.b); got != tt.want {
			t.Errorf("%s(%v,%v) = %v, want %v", tt.f.Name(), tt.a, tt.b, got, tt.want)
		}
		if tt.f.Name() != tt.name {
			t.Errorf("Name = %q, want %q", tt.f.Name(), tt.name)
		}
	}
}

func TestMutualValueAdaptiveDefaults(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{Delta: 0.6})
	cfg := m.Config()
	if cfg.F.Name() != "difference" {
		t.Error("default f must be the difference function")
	}
	if m.Gamma() != 1 {
		t.Errorf("initial γ = %v", m.Gamma())
	}
	if m.InitialTTR() != cfg.Bounds.Min {
		t.Errorf("InitialTTR = %v", m.InitialTTR())
	}
}

func TestMutualValueAdaptiveExtrapolation(t *testing.T) {
	// δ = 1, w = α = 1, γ starts at 1: TTR = δ/r exactly.
	m := NewMutualValueAdaptive(MutualValueConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	// f = a−b drifted from 2 to 2.5 in 100s → r = 0.005/s → TTR = 200s.
	got := m.NextTTR(pairOutcome(0, 100*time.Second, 5, 3, 6, 3.5))
	if got != 200*time.Second {
		t.Errorf("TTR = %v, want 200s", got)
	}
}

func TestMutualValueAdaptiveViolationShrinksGamma(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{
		Delta:  0.5,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
	})
	// Drift of 1.0 ≥ δ=0.5: the poll reveals a violation.
	m.NextTTR(pairOutcome(0, 100*time.Second, 5, 3, 6, 3))
	if m.Gamma() != 0.7 {
		t.Errorf("γ = %v, want 0.7 after violation", m.Gamma())
	}
	if m.DetectedViolations() != 1 {
		t.Errorf("DetectedViolations = %d", m.DetectedViolations())
	}
	// Clean poll: γ recovers by the increase factor.
	m.NextTTR(pairOutcome(100*time.Second, 200*time.Second, 6, 3, 6.1, 3))
	want := 0.7 * 1.05
	if math.Abs(m.Gamma()-want) > 1e-12 {
		t.Errorf("γ = %v, want %v", m.Gamma(), want)
	}
}

func TestMutualValueAdaptiveGammaBounds(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{
		Delta:    0.1,
		GammaMin: 0.2,
	})
	now := time.Duration(0)
	diff := 0.0
	// Repeated violations: γ floors at GammaMin.
	for i := 0; i < 50; i++ {
		prev := now
		now += 100 * time.Second
		prevDiff := diff
		diff += 1.0
		m.NextTTR(pairOutcome(prev, now, prevDiff+3, 3, diff+3, 3))
	}
	if m.Gamma() != 0.2 {
		t.Errorf("γ = %v, want floor 0.2", m.Gamma())
	}
	// Long clean stretch: γ caps at 1.
	for i := 0; i < 200; i++ {
		prev := now
		now += 100 * time.Second
		m.NextTTR(pairOutcome(prev, now, diff+3, 3, diff+3, 3))
	}
	if m.Gamma() != 1 {
		t.Errorf("γ = %v, want cap 1", m.Gamma())
	}
}

func TestMutualValueAdaptiveStaticPairBacksOff(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{
		Delta:  1.0,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	// Static pair: TTR doubles per quiet poll (no-change backoff) and
	// eventually caps at TTRmax.
	got := m.NextTTR(pairOutcome(0, 100*time.Second, 5, 3, 5, 3))
	if got != 2*time.Second {
		t.Errorf("TTR = %v, want 2s (doubled from the 1s floor)", got)
	}
	now := 100 * time.Second
	for i := 0; i < 20; i++ {
		prev := now
		now += got
		got = m.NextTTR(pairOutcome(prev, now, 5, 3, 5, 3))
	}
	if got != time.Hour {
		t.Errorf("TTR = %v, want TTRmax after a long static stretch", got)
	}
}

func TestMutualValueAdaptiveCommonModeCancels(t *testing.T) {
	// Both values rise by the same amount: the difference is unchanged,
	// so no violation is detected and the TTR backs off as if static.
	m := NewMutualValueAdaptive(MutualValueConfig{
		Delta:  0.5,
		Bounds: TTRBounds{Min: time.Second, Max: time.Hour},
		Weight: 1, Alpha: 1,
	})
	got := m.NextTTR(pairOutcome(0, 100*time.Second, 5, 3, 105, 103))
	if got != 2*time.Second {
		t.Errorf("TTR = %v: common-mode movement must not count as drift", got)
	}
	if m.DetectedViolations() != 0 {
		t.Error("common-mode movement flagged as violation")
	}
}

func TestMutualValueAdaptiveZeroElapsed(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{Delta: 1})
	before := m.InitialTTR()
	if got := m.NextTTR(pairOutcome(5*time.Second, 5*time.Second, 1, 2, 3, 4)); got != before {
		t.Errorf("zero-elapsed pair poll changed TTR: %v", got)
	}
}

func TestMutualValueAdaptiveReset(t *testing.T) {
	m := NewMutualValueAdaptive(MutualValueConfig{Delta: 0.1})
	m.NextTTR(pairOutcome(0, 100*time.Second, 5, 3, 7, 3))
	m.Reset()
	if m.Gamma() != 1 || m.DetectedViolations() != 0 {
		t.Error("Reset did not restore initial state")
	}
}

func TestMutualValueConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  MutualValueConfig
	}{
		{"zero delta", MutualValueConfig{}},
		{"weight", MutualValueConfig{Delta: 1, Weight: 2}},
		{"alpha", MutualValueConfig{Delta: 1, Alpha: -1}},
		{"gamma dec", MutualValueConfig{Delta: 1, GammaDecrease: 1}},
		{"gamma inc", MutualValueConfig{Delta: 1, GammaIncrease: 0.5}},
		{"gamma min", MutualValueConfig{Delta: 1, GammaMin: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewMutualValueAdaptive(tt.cfg)
		})
	}
}

func TestPartitionedEvenSplitInitially(t *testing.T) {
	p := NewMutualValuePartitioned(MutualValueConfig{Delta: 1.0})
	da, db := p.Deltas()
	if da != 0.5 || db != 0.5 {
		t.Errorf("initial split = %v/%v, want even", da, db)
	}
	if p.Name() != "mutual-value-partitioned" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPartitionedFasterObjectGetsTighterTolerance(t *testing.T) {
	p := NewMutualValuePartitioned(MutualValueConfig{Delta: 1.0})
	// Object A moves fast (1.0 per 100s), object B slowly (0.1 per 100s).
	p.PolicyA().NextTTR(valueOutcome(0, 100*time.Second, 10, 11))
	p.PolicyB().NextTTR(valueOutcome(0, 100*time.Second, 50, 50.1))
	da, db := p.Deltas()
	if da >= db {
		t.Errorf("δa=%v δb=%v: the faster object must get the tighter share", da, db)
	}
	// Exact shares: δa = δ·rb/(ra+rb) = 0.1/1.1.
	if math.Abs(da-0.1/1.1) > 1e-9 {
		t.Errorf("δa = %v, want %v", da, 0.1/1.1)
	}
}

func TestPartitionedSplitInvariant(t *testing.T) {
	f := func(moves []struct{ A, B int8 }) bool {
		p := NewMutualValuePartitioned(MutualValueConfig{Delta: 2.0})
		now := time.Duration(0)
		va, vb := 100.0, 50.0
		for _, mv := range moves {
			prev := now
			now += 30 * time.Second
			pa, pb := va, vb
			va += float64(mv.A) / 32
			vb += float64(mv.B) / 32
			p.PolicyA().NextTTR(valueOutcome(prev, now, pa, va))
			p.PolicyB().NextTTR(valueOutcome(prev, now, pb, vb))
			da, db := p.Deltas()
			if math.Abs(da+db-2.0) > 1e-9 {
				return false
			}
			if da <= 0 || db <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionedQuiescentPairSplitsEvenly(t *testing.T) {
	p := NewMutualValuePartitioned(MutualValueConfig{Delta: 1.0})
	p.PolicyA().NextTTR(valueOutcome(0, 100*time.Second, 10, 10))
	p.PolicyB().NextTTR(valueOutcome(0, 100*time.Second, 50, 50))
	da, db := p.Deltas()
	if da != 0.5 || db != 0.5 {
		t.Errorf("quiescent split = %v/%v, want even", da, db)
	}
}

func TestPartitionedMinShareFloor(t *testing.T) {
	p := NewMutualValuePartitioned(MutualValueConfig{Delta: 1.0})
	// B completely static, A violently moving: B's rate is 0, so A
	// would get share rb/(ra+rb) = 0 without the floor.
	p.PolicyA().NextTTR(valueOutcome(0, 10*time.Second, 10, 20))
	p.PolicyB().NextTTR(valueOutcome(0, 10*time.Second, 50, 50))
	da, db := p.Deltas()
	if da < 0.01-1e-12 {
		t.Errorf("δa = %v, below the 1%% floor", da)
	}
	if math.Abs(da+db-1.0) > 1e-9 {
		t.Errorf("split sum = %v", da+db)
	}
}

func TestPartitionedReset(t *testing.T) {
	p := NewMutualValuePartitioned(MutualValueConfig{Delta: 1.0})
	p.PolicyA().NextTTR(valueOutcome(0, 100*time.Second, 10, 11))
	p.PolicyB().NextTTR(valueOutcome(0, 100*time.Second, 50, 50.1))
	p.PolicyA().Reset() // resetting either member resets the pair
	da, db := p.Deltas()
	if da != 0.5 || db != 0.5 {
		t.Errorf("split after reset = %v/%v", da, db)
	}
}

// TestPartitionedImpliesMutual verifies the paper's triangle-inequality
// argument end to end: if each member's cached value stays within its δ
// share, the difference function stays within δ.
func TestPartitionedImpliesMutual(t *testing.T) {
	f := func(errA, errB int8, split uint8) bool {
		delta := 1.0
		shareA := 0.01 + 0.98*float64(split)/255 // any split in [0.01, 0.99]
		shareB := delta - shareA
		// Individual errors within tolerance shares.
		ea := (float64(errA) / 129) * shareA // |ea| < shareA
		eb := (float64(errB) / 129) * shareB
		// Mutual drift of the difference function.
		drift := math.Abs(ea - eb)
		return drift < delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
