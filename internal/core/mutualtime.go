package core

import (
	"fmt"
	"time"

	"broadway/internal/simtime"
	"broadway/internal/stats"
)

// TriggerMode selects the temporal-domain mutual-consistency approach of
// paper §3.2.
type TriggerMode int

const (
	// TriggerNone is the baseline: per-object LIMD only, no mutual
	// support. Related objects drift out of phase by up to their poll
	// periods.
	TriggerNone TriggerMode = iota + 1
	// TriggerAll polls every related object whenever an update to one
	// of them is detected (unless a poll of the related object already
	// falls within δ). This guarantees mutual fidelity 1 at the cost of
	// polling every member at the rate of the fastest-changing one.
	TriggerAll
	// TriggerFaster is the paper's heuristic: trigger polls only for
	// related objects that change at approximately the same or a faster
	// rate than the updated object, relying on the slower objects' own
	// LIMD schedules. Cheaper than TriggerAll, with occasional mutual
	// violations when a slow object happens to change together with a
	// fast one.
	TriggerFaster
)

// String returns the mode name used in reports.
func (m TriggerMode) String() string {
	switch m {
	case TriggerNone:
		return "baseline"
	case TriggerAll:
		return "triggered"
	case TriggerFaster:
		return "heuristic"
	default:
		return fmt.Sprintf("TriggerMode(%d)", int(m))
	}
}

// MutualTimeConfig parameterizes a MutualTimeController.
type MutualTimeConfig struct {
	// Delta is the mutual tolerance δ: cached versions of related
	// objects must have coexisted at the server within δ (Eq. 4).
	// Required (positive).
	Delta time.Duration
	// Mode selects the triggering approach. Required.
	Mode TriggerMode
	// RateTolerance is the factor defining "approximately the same
	// rate" for TriggerFaster: the related object is triggered when its
	// estimated update rate is at least RateTolerance times the updated
	// object's rate. Must lie in (0, 1]; defaults to 0.8.
	RateTolerance float64
	// RateAlpha is the EWMA smoothing factor for the per-object update
	// rate estimators. Must lie in (0, 1]; defaults to 0.3.
	RateAlpha float64
}

func (c MutualTimeConfig) withDefaults() MutualTimeConfig {
	if c.Delta <= 0 {
		panic("core: mutual time controller requires a positive Delta")
	}
	switch c.Mode {
	case TriggerNone, TriggerAll, TriggerFaster:
	default:
		panic(fmt.Sprintf("core: invalid trigger mode %d", c.Mode))
	}
	if c.RateTolerance == 0 {
		c.RateTolerance = 0.8
	}
	if c.RateTolerance <= 0 || c.RateTolerance > 1 {
		panic(fmt.Sprintf("core: rate tolerance %v outside (0,1]", c.RateTolerance))
	}
	if c.RateAlpha == 0 {
		c.RateAlpha = 0.3
	}
	return c
}

// MutualTimeController implements the paper's temporal-domain mutual
// consistency mechanisms (§3.2). It is layered on top of per-object
// Δt-consistency policies: the proxy keeps polling each object on its own
// LIMD schedule, and when a poll detects an update the controller decides
// which related objects deserve an immediate extra poll.
//
// The controller learns per-object update rates from the modification
// instants that polls reveal; these rate estimates drive the
// TriggerFaster heuristic.
type MutualTimeController struct {
	cfg MutualTimeConfig

	rates   map[ObjectID]*stats.RateEstimator
	lastMod map[ObjectID]simtime.Time

	triggered uint64
}

// NewMutualTimeController returns a controller for one group of related
// objects. It panics on invalid configuration.
func NewMutualTimeController(cfg MutualTimeConfig) *MutualTimeController {
	return &MutualTimeController{
		cfg:     cfg.withDefaults(),
		rates:   make(map[ObjectID]*stats.RateEstimator),
		lastMod: make(map[ObjectID]simtime.Time),
	}
}

// Config returns the normalized configuration.
func (c *MutualTimeController) Config() MutualTimeConfig { return c.cfg }

// Mode returns the controller's trigger mode.
func (c *MutualTimeController) Mode() TriggerMode { return c.cfg.Mode }

// Triggered returns the number of extra polls the controller has requested
// so far.
func (c *MutualTimeController) Triggered() uint64 { return c.triggered }

// ObserveOutcome feeds the controller the modification evidence from a
// poll of the given object, updating its update-rate estimate. Instants
// already seen are ignored, so feeding overlapping histories is safe.
func (c *MutualTimeController) ObserveOutcome(id ObjectID, o PollOutcome) {
	if !o.Modified {
		return
	}
	instants := o.History
	if len(instants) == 0 && o.HasLastModified {
		instants = []simtime.Time{o.LastModified}
	}
	est := c.rates[id]
	if est == nil {
		est = stats.NewRateEstimator(c.cfg.RateAlpha)
		c.rates[id] = est
	}
	last := c.lastMod[id]
	for _, at := range instants {
		if at.After(last) {
			est.ObserveEvent(at.Duration())
			last = at
		}
	}
	c.lastMod[id] = last
}

// ShouldTrigger decides whether detecting an update to object updated at
// instant now warrants an immediate extra poll of related object other.
// otherPrev is the instant other was last polled; otherNext is its next
// scheduled poll. Per the paper, no extra poll is needed when either
// instant falls within δ of now — the regular schedule already bounds the
// phase lag — and the heuristic mode additionally skips objects estimated
// to change more slowly than the updated object.
func (c *MutualTimeController) ShouldTrigger(updated, other ObjectID, now, otherPrev, otherNext simtime.Time) bool {
	if c.cfg.Mode == TriggerNone || updated == other {
		return false
	}
	if now.Sub(otherPrev) <= c.cfg.Delta || otherNext.Sub(now) <= c.cfg.Delta {
		return false
	}
	if c.cfg.Mode == TriggerFaster && !c.changesAtLeastAsFast(other, updated) {
		return false
	}
	c.triggered++
	return true
}

// changesAtLeastAsFast reports whether candidate's estimated update rate
// is at least RateTolerance times reference's. Unknown rates err on the
// side of triggering: until the controller has evidence that an object is
// slow, it treats it as a peer (protecting fidelity during warm-up).
func (c *MutualTimeController) changesAtLeastAsFast(candidate, reference ObjectID) bool {
	cand, ok1 := c.rates[candidate]
	ref, ok2 := c.rates[reference]
	if !ok1 || !ok2 || !cand.Known() || !ref.Known() {
		return true
	}
	return cand.Rate() >= c.cfg.RateTolerance*ref.Rate()
}

// EstimatedRate returns the controller's current update-rate estimate for
// the object in updates per second (0 when unknown). Exposed for reports
// such as Fig. 6(a).
func (c *MutualTimeController) EstimatedRate(id ObjectID) float64 {
	if est, ok := c.rates[id]; ok {
		return est.Rate()
	}
	return 0
}

// Forget discards the learned state for one object — its update-rate
// estimate and last-seen modification instant — leaving the rest of the
// group intact. Callers use it when a cache evicts a group member, so a
// later re-admission of the same object starts from the warm-up
// behavior (unknown rates err on the side of triggering) instead of a
// stale estimate.
func (c *MutualTimeController) Forget(id ObjectID) {
	delete(c.rates, id)
	delete(c.lastMod, id)
}

// Reset discards all learned state.
func (c *MutualTimeController) Reset() {
	c.rates = make(map[ObjectID]*stats.RateEstimator)
	c.lastMod = make(map[ObjectID]simtime.Time)
	c.triggered = 0
}
