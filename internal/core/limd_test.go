package core

import (
	"testing"
	"testing/quick"
	"time"

	"broadway/internal/simtime"
)

func minutes(m float64) time.Duration { return time.Duration(m * float64(time.Minute)) }

func defaultLIMD() *LIMD {
	return NewLIMD(LIMDConfig{Delta: 10 * time.Minute})
}

// outcome builds an unmodified poll outcome at the given instants.
func outcome(prev, now time.Duration) PollOutcome {
	return PollOutcome{Now: simtime.At(now), Prev: simtime.At(prev)}
}

// modifiedOutcome builds a modified poll outcome whose most recent update
// happened at lastMod.
func modifiedOutcome(prev, now, lastMod time.Duration) PollOutcome {
	return PollOutcome{
		Now: simtime.At(now), Prev: simtime.At(prev),
		Modified: true, LastModified: simtime.At(lastMod), HasLastModified: true,
	}
}

func TestLIMDDefaults(t *testing.T) {
	l := defaultLIMD()
	cfg := l.Config()
	if cfg.Bounds.Min != 10*time.Minute {
		t.Errorf("TTRmin = %v, want Δ", cfg.Bounds.Min)
	}
	if cfg.Bounds.Max != 60*time.Minute {
		t.Errorf("TTRmax = %v, want 60m", cfg.Bounds.Max)
	}
	if cfg.LinearFactor != 0.2 || cfg.Epsilon != 0.02 {
		t.Errorf("l=%v ε=%v, want paper defaults", cfg.LinearFactor, cfg.Epsilon)
	}
	if l.InitialTTR() != 10*time.Minute {
		t.Errorf("InitialTTR = %v, want TTRmin", l.InitialTTR())
	}
	if l.Name() != "limd" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLIMDCase1LinearIncrease(t *testing.T) {
	l := defaultLIMD()
	// No modification: TTR grows by the linear factor each poll.
	got := l.NextTTR(outcome(0, minutes(10)))
	if got != minutes(12) {
		t.Errorf("first increase = %v, want 12m", got)
	}
	got = l.NextTTR(outcome(minutes(10), minutes(22)))
	if got != time.Duration(float64(minutes(12))*1.2) {
		t.Errorf("second increase = %v", got)
	}
	if l.CaseCount(1) != 2 {
		t.Errorf("case-1 count = %d", l.CaseCount(1))
	}
}

func TestLIMDCase1CapsAtTTRMax(t *testing.T) {
	l := defaultLIMD()
	prev := time.Duration(0)
	now := minutes(10)
	for i := 0; i < 50; i++ {
		l.NextTTR(outcome(prev, now))
		prev, now = now, now+l.TTR()
	}
	if l.TTR() != 60*time.Minute {
		t.Errorf("TTR = %v, want TTRmax after long quiet period", l.TTR())
	}
}

func TestLIMDCase2FixedMultiplicativeDecrease(t *testing.T) {
	l := NewLIMD(LIMDConfig{Delta: 10 * time.Minute, MultiplicativeFactor: 0.5})
	// Grow the TTR to TTRmax first so the halving is visible above the
	// TTRmin clamp.
	prev, now := time.Duration(0), minutes(10)
	for i := 0; i < 20; i++ {
		l.NextTTR(outcome(prev, now))
		prev, now = now, now+l.TTR()
	}
	before := l.TTR() // 60m
	// Violation: update 15m before the poll → out of sync by 15m > Δ.
	got := l.NextTTR(modifiedOutcome(now, now+minutes(30), now+minutes(15)))
	if got != before/2 {
		t.Errorf("TTR after violation = %v, want %v", got, before/2)
	}
	if l.CaseCount(2) != 1 {
		t.Errorf("case-2 count = %d", l.CaseCount(2))
	}
}

func TestLIMDCase2AdaptiveM(t *testing.T) {
	l := defaultLIMD() // MultiplicativeFactor 0 → adaptive m = Δ/outSync
	// Grow to TTRmax so the decrease is observable above the TTRmin clamp.
	prev, now := time.Duration(0), minutes(10)
	for i := 0; i < 20; i++ {
		l.NextTTR(outcome(prev, now))
		prev, now = now, now+l.TTR()
	}
	if l.TTR() != 60*time.Minute {
		t.Fatalf("setup: TTR = %v", l.TTR())
	}
	// First update 20m before the poll → outSync = 20m, m = 10/20 = 0.5.
	got := l.NextTTR(modifiedOutcome(now, now+minutes(40), now+minutes(20)))
	if want := 30 * time.Minute; got != want {
		t.Errorf("TTR = %v, want %v (adaptive m)", got, want)
	}
}

func TestLIMDCase2AdaptiveMDeeperViolationBacksOffHarder(t *testing.T) {
	run := func(outSyncMin float64) time.Duration {
		l := defaultLIMD()
		// Grow the TTR toward TTRmax so the decrease is not masked by
		// the TTRmin clamp.
		prev, now := time.Duration(0), minutes(10)
		for i := 0; i < 20; i++ {
			l.NextTTR(outcome(prev, now))
			prev, now = now, now+l.TTR()
		}
		// First update right after the previous poll; poll arrives
		// outSyncMin later.
		return l.NextTTR(modifiedOutcome(now, now+minutes(outSyncMin), now))
	}
	shallow := run(15) // out of sync 15m
	deep := run(45)    // out of sync 45m
	if deep >= shallow {
		t.Errorf("deeper violation must shrink TTR more: deep=%v shallow=%v", deep, shallow)
	}
}

func TestLIMDCase2FloorsAtTTRMin(t *testing.T) {
	l := NewLIMD(LIMDConfig{Delta: 10 * time.Minute, MultiplicativeFactor: 0.1})
	// Repeated violations must never push TTR below TTRmin.
	prev, now := time.Duration(0), minutes(30)
	for i := 0; i < 10; i++ {
		l.NextTTR(modifiedOutcome(prev, now, prev+time.Minute))
		prev, now = now, now+minutes(30)
	}
	if l.TTR() != 10*time.Minute {
		t.Errorf("TTR = %v, want TTRmin floor", l.TTR())
	}
}

func TestLIMDCase3FineTune(t *testing.T) {
	l := defaultLIMD()
	// Update at 24m, poll at 25m: modified, within Δ → case 3.
	before := l.TTR()
	got := l.NextTTR(modifiedOutcome(minutes(15), minutes(25), minutes(24)))
	want := time.Duration(float64(before) * 1.02)
	if got != want {
		t.Errorf("TTR = %v, want %v (ε fine-tune)", got, want)
	}
	if l.CaseCount(3) != 1 {
		t.Errorf("case-3 count = %d", l.CaseCount(3))
	}
}

func TestLIMDCase4ColdObjectResets(t *testing.T) {
	l := defaultLIMD()
	// Establish a modification anchor at 5m.
	l.NextTTR(modifiedOutcome(0, minutes(10), minutes(5)))
	// Let the TTR grow.
	prev, now := minutes(10), minutes(20)
	for i := 0; i < 20; i++ {
		l.NextTTR(outcome(prev, now))
		prev, now = now, now+l.TTR()
	}
	if l.TTR() != 60*time.Minute {
		t.Fatalf("setup: TTR = %v, want TTRmax", l.TTR())
	}
	// A new update more than ColdThreshold (60m) after the last known
	// one: case 4, snap to TTRmin. The update itself is recent (no
	// violation would fire anyway, but case 4 takes priority).
	got := l.NextTTR(modifiedOutcome(prev, now, now-time.Minute))
	if got != 10*time.Minute {
		t.Errorf("TTR = %v, want TTRmin after cold restart", got)
	}
	if l.CaseCount(4) != 1 {
		t.Errorf("case-4 count = %d", l.CaseCount(4))
	}
}

func TestLIMDCase4TakesPriorityOverViolation(t *testing.T) {
	l := NewLIMD(LIMDConfig{Delta: 10 * time.Minute, ColdThreshold: 30 * time.Minute})
	l.NextTTR(modifiedOutcome(0, minutes(10), minutes(5)))
	// Next update at 100m (long after the 30m cold threshold), polled
	// only at 130m → also a violation; cold handling must win and give
	// exactly TTRmin.
	got := l.NextTTR(modifiedOutcome(minutes(10), minutes(130), minutes(100)))
	if got != 10*time.Minute {
		t.Errorf("TTR = %v, want TTRmin (case 4 priority)", got)
	}
	if l.CaseCount(4) != 1 || l.CaseCount(2) != 0 {
		t.Errorf("case counts: 4→%d 2→%d", l.CaseCount(4), l.CaseCount(2))
	}
}

func TestLIMDHistoryRevealsHiddenViolation(t *testing.T) {
	// Fig. 1(b): two updates since the last poll; the most recent is
	// within Δ but the first is not. Plain HTTP misses the violation;
	// the history extension reveals it.
	mk := func(history []simtime.Time) time.Duration {
		l := defaultLIMD()
		l.NextTTR(outcome(0, minutes(10))) // grow a little: TTR=12m
		o := modifiedOutcome(minutes(10), minutes(40), minutes(35))
		o.History = history
		return l.NextTTR(o)
	}
	plain := mk(nil)
	withHistory := mk([]simtime.Time{simtime.At(minutes(12)), simtime.At(minutes(35))})
	if plain != time.Duration(float64(minutes(12))*1.02) {
		t.Errorf("plain HTTP treated as case 3: got %v", plain)
	}
	if withHistory >= plain {
		t.Errorf("history must expose the violation: %v >= %v", withHistory, plain)
	}
}

func TestLIMDReset(t *testing.T) {
	l := defaultLIMD()
	l.NextTTR(outcome(0, minutes(10)))
	if l.TTR() == l.InitialTTR() {
		t.Fatal("setup: TTR unchanged")
	}
	l.Reset()
	if l.TTR() != l.InitialTTR() {
		t.Errorf("Reset did not restore TTRmin")
	}
}

func TestLIMDConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  LIMDConfig
	}{
		{"zero delta", LIMDConfig{}},
		{"l too big", LIMDConfig{Delta: time.Minute, LinearFactor: 1}},
		{"l negative", LIMDConfig{Delta: time.Minute, LinearFactor: -0.5}},
		{"m too big", LIMDConfig{Delta: time.Minute, MultiplicativeFactor: 1}},
		{"m negative", LIMDConfig{Delta: time.Minute, MultiplicativeFactor: -0.5}},
		{"epsilon negative", LIMDConfig{Delta: time.Minute, Epsilon: -0.1}},
		{"bounds inverted", LIMDConfig{Delta: time.Minute,
			Bounds: TTRBounds{Min: time.Hour, Max: time.Minute}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewLIMD(tt.cfg)
		})
	}
}

func TestLIMDCaseCountOutOfRange(t *testing.T) {
	l := defaultLIMD()
	if l.CaseCount(0) != 0 || l.CaseCount(5) != 0 {
		t.Error("out-of-range case counts must be 0")
	}
}

// TestPropertyLIMDTTRWithinBounds drives LIMD with arbitrary poll
// sequences and asserts the paper's clamp invariant: the TTR always stays
// within [TTRmin, TTRmax].
func TestPropertyLIMDTTRWithinBounds(t *testing.T) {
	f := func(steps []struct {
		GapMin   uint16
		Modified bool
		ModAgo   uint16
	}) bool {
		l := defaultLIMD()
		bounds := l.Config().Bounds
		now := time.Duration(0)
		for _, s := range steps {
			prev := now
			now += time.Duration(s.GapMin%300)*time.Minute + time.Minute
			o := PollOutcome{Now: simtime.At(now), Prev: simtime.At(prev)}
			if s.Modified {
				modAt := now - time.Duration(s.ModAgo%200)*time.Minute
				if modAt < prev {
					modAt = prev + time.Second
				}
				o.Modified = true
				o.LastModified = simtime.At(modAt)
				o.HasLastModified = true
			}
			ttr := l.NextTTR(o)
			if ttr < bounds.Min || ttr > bounds.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLIMDTracksUpdateRate is the behavioral heart of §3.1: for an object
// changing much more slowly than Δ, LIMD must settle near the object's
// own period rather than polling every Δ.
func TestLIMDTracksUpdateRate(t *testing.T) {
	l := NewLIMD(LIMDConfig{Delta: time.Minute, Bounds: TTRBounds{Min: time.Minute, Max: time.Hour}})
	// Object updates every 30 minutes; Δ = 1 minute. Simulate polls at
	// the TTR the policy requests.
	updatePeriod := 30 * time.Minute
	now := time.Duration(0)
	polls := 0
	for now < 48*time.Hour {
		prev := now
		now += l.TTR()
		polls++
		lastUpdate := now.Truncate(updatePeriod)
		modified := lastUpdate > prev && lastUpdate > 0
		o := PollOutcome{Now: simtime.At(now), Prev: simtime.At(prev)}
		if modified {
			o.Modified = true
			o.LastModified = simtime.At(lastUpdate)
			o.HasLastModified = true
		}
		l.NextTTR(o)
	}
	// A Δ-periodic poller would poll 2880 times in 48h. LIMD should do
	// far better (paper reports ~6× for CNN/FN at Δ=1m).
	if polls > 2880/3 {
		t.Errorf("polls = %d; LIMD failed to adapt to the 30m update period", polls)
	}
}
