package core

import (
	"fmt"
	"time"

	"broadway/internal/stats"
)

// AdaptiveTTRConfig parameterizes the value-domain Δv-consistency policy
// of paper §4.1 (the adaptive-TTR technique of Srinivasan et al. [8] that
// the paper builds its mutual value-domain mechanisms on).
type AdaptiveTTRConfig struct {
	// Delta is the Δv tolerance: the cached value must stay within
	// Delta of the server's. Required (positive).
	Delta float64
	// Bounds clamp every computed TTR. Min defaults to 10 seconds, Max
	// to 60 minutes.
	Bounds TTRBounds
	// Weight is w in TTR ← w·TTR_est + (1−w)·TTR_prev: the weight given
	// to the newest rate extrapolation versus history. Must lie in
	// (0, 1]; defaults to 0.5.
	Weight float64
	// Alpha is α in Eq. 10: the final TTR is α·TTR + (1−α)·TTR_observed_min.
	// Small α biases toward the most conservative (smallest) TTR ever
	// observed, increasing poll frequency for data with poor temporal
	// locality. Must lie in (0, 1]; defaults to 0.5.
	Alpha float64
	// NoChangeGrowth scales the previous TTR when a poll observes no
	// value change at all. A zero observed rate carries no information
	// about the true rate (the next tick may be imminent), so instead
	// of extrapolating an unbounded TTR the policy backs off gently.
	// Must be > 1; defaults to 2.
	NoChangeGrowth float64
}

// DefaultValueTTRMin is the default lower TTR bound for value-domain
// policies. Stock quotes change every few seconds, so the floor is much
// lower than temporal-domain settings.
const DefaultValueTTRMin = 10 * time.Second

func (c AdaptiveTTRConfig) withDefaults() AdaptiveTTRConfig {
	if c.Delta <= 0 {
		panic("core: AdaptiveTTR requires a positive Delta")
	}
	c.Bounds = NormalizeBounds(c.Bounds, DefaultValueTTRMin)
	if c.Weight == 0 {
		c.Weight = 0.5
	}
	if c.Weight < 0 || c.Weight > 1 {
		panic(fmt.Sprintf("core: AdaptiveTTR weight %v outside (0,1]", c.Weight))
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		panic(fmt.Sprintf("core: AdaptiveTTR alpha %v outside (0,1]", c.Alpha))
	}
	if c.NoChangeGrowth == 0 {
		c.NoChangeGrowth = 2
	}
	if c.NoChangeGrowth <= 1 {
		panic(fmt.Sprintf("core: AdaptiveTTR no-change growth %v must exceed 1", c.NoChangeGrowth))
	}
	return c
}

// AdaptiveTTR maintains Δv-consistency by polling the server roughly every
// time the object's value is expected to have changed by Δ. It estimates
// the value's rate of change from the two most recent polls (Eq. 9),
// smooths the resulting TTR estimate, and anchors it against the smallest
// estimate observed so far (Eq. 10).
type AdaptiveTTR struct {
	cfg AdaptiveTTRConfig

	prevTTR time.Duration
	obsMin  stats.MinTracker
	polls   uint64
}

var _ Policy = (*AdaptiveTTR)(nil)

// NewAdaptiveTTR returns an adaptive value-domain policy. It panics on
// invalid configuration.
func NewAdaptiveTTR(cfg AdaptiveTTRConfig) *AdaptiveTTR {
	a := &AdaptiveTTR{cfg: cfg.withDefaults()}
	a.Reset()
	return a
}

// Name implements Policy.
func (a *AdaptiveTTR) Name() string { return "adaptive-ttr" }

// Config returns the normalized configuration.
func (a *AdaptiveTTR) Config() AdaptiveTTRConfig { return a.cfg }

// Delta returns the current Δv tolerance.
func (a *AdaptiveTTR) Delta() float64 { return a.cfg.Delta }

// SetDelta changes the Δv tolerance. The partitioned mutual-consistency
// controller re-apportions tolerances between polls (paper §4.2), so the
// tolerance must be adjustable at run time.
func (a *AdaptiveTTR) SetDelta(delta float64) {
	if delta <= 0 {
		panic("core: AdaptiveTTR delta must stay positive")
	}
	a.cfg.Delta = delta
}

// InitialTTR implements Policy: polling starts at the floor, the most
// conservative choice before any rate information exists.
func (a *AdaptiveTTR) InitialTTR() time.Duration { return a.cfg.Bounds.Min }

// TTR returns the most recently computed TTR without consuming an
// outcome (the floor until the first poll).
func (a *AdaptiveTTR) TTR() time.Duration {
	if a.prevTTR <= 0 {
		return a.cfg.Bounds.Min
	}
	return a.prevTTR
}

// RestoreTTR re-seeds the learned TTR from a persisted snapshot (e.g. a
// disk-tier rehydration), clamped to the configured bounds. Non-positive
// values are ignored: the policy keeps its InitialTTR and re-learns.
// The observed-rate tracker is NOT restored — the first post-restart
// poll re-seeds it, which only makes the next TTR more conservative.
func (a *AdaptiveTTR) RestoreTTR(d time.Duration) {
	if d <= 0 {
		return
	}
	a.prevTTR = a.cfg.Bounds.clamp(d)
}

// Reset implements Policy.
func (a *AdaptiveTTR) Reset() {
	a.prevTTR = a.cfg.Bounds.Min
	a.obsMin = stats.MinTracker{}
	a.polls = 0
}

// NextTTR implements Policy using the Eq. 9–10 pipeline.
func (a *AdaptiveTTR) NextTTR(o PollOutcome) time.Duration {
	a.polls++
	elapsed := o.Now.Sub(o.Prev)
	if elapsed <= 0 {
		return a.prevTTR
	}

	est := a.estimate(o.Value, o.PrevValue, elapsed)
	if o.Value != o.PrevValue {
		// Only informative estimates anchor the observed minimum;
		// no-change backoffs carry no rate information.
		a.obsMin.Observe(float64(est))
	}

	// Exponential smoothing against the previous TTR.
	smoothed := time.Duration(a.cfg.Weight*float64(est) + (1-a.cfg.Weight)*float64(a.prevTTR))

	// Anchor against the smallest estimate seen so far and clamp.
	final := smoothed
	if min, ok := a.obsMin.Value(); ok {
		final = time.Duration(a.cfg.Alpha*float64(smoothed) + (1-a.cfg.Alpha)*min)
	}
	final = a.cfg.Bounds.clamp(final)
	a.prevTTR = final
	return final
}

// estimate extrapolates how long the value will take to drift by Δ at the
// rate observed over the last polling interval (Eq. 9).
func (a *AdaptiveTTR) estimate(cur, prev float64, elapsed time.Duration) time.Duration {
	change := cur - prev
	if change < 0 {
		change = -change
	}
	if change == 0 {
		// No observed movement: zero rate carries no information, so
		// back off gently from the previous TTR rather than
		// extrapolating an unbounded one.
		est := time.Duration(float64(a.prevTTR) * a.cfg.NoChangeGrowth)
		if est > a.cfg.Bounds.Max || est <= 0 {
			est = a.cfg.Bounds.Max
		}
		return est
	}
	r := change / float64(elapsed) // value units per nanosecond
	est := time.Duration(a.cfg.Delta / r)
	if est < 0 { // overflow of the division result
		return a.cfg.Bounds.Max
	}
	return est
}
