package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	for _, orig := range []*Trace{newsTrace(), stockTrace()} {
		t.Run(orig.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, orig); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			assertTracesEqual(t, orig, got)
		})
	}
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Name != want.Name || got.Kind != want.Kind ||
		got.Duration != want.Duration || got.InitialValue != want.InitialValue {
		t.Fatalf("header mismatch: got %+v, want %+v", got, want)
	}
	if len(got.Updates) != len(want.Updates) {
		t.Fatalf("update count = %d, want %d", len(got.Updates), len(want.Updates))
	}
	for i := range want.Updates {
		if got.Updates[i] != want.Updates[i] {
			t.Fatalf("update %d = %+v, want %+v", i, got.Updates[i], want.Updates[i])
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	tr := newsTrace()
	tr.Name = ""
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Fatal("Write must reject invalid traces")
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad magic", "not a trace\n"},
		{"missing separator", "# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n"},
		{"unknown kind", "# broadway trace v1\nname: x\nkind: weird\nduration: 1h\n---\n"},
		{"unknown header", "# broadway trace v1\nfoo: bar\n---\n"},
		{"bad duration", "# broadway trace v1\nname: x\nkind: temporal\nduration: soon\n---\n"},
		{"bad initial", "# broadway trace v1\nname: x\nkind: value\nduration: 1h\ninitial: abc\n---\n"},
		{"malformed header line", "# broadway trace v1\njunk\n---\n"},
		{"malformed record", "# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n---\n5m\n"},
		{"bad record instant", "# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n---\nxyz,0\n"},
		{"bad record value", "# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n---\n5m,zz\n"},
		{"invalid content", "# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n---\n5m,0\n4m,0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.input)); err == nil {
				t.Error("Read must fail")
			}
		})
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	input := "# broadway trace v1\nname: x\n\nkind: temporal\nduration: 1h\n---\n\n5m,0\n\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tr.NumUpdates() != 1 {
		t.Errorf("NumUpdates = %d", tr.NumUpdates())
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(rawGaps []uint16, centsValues []int16, initial int16) bool {
		tr := &Trace{Name: "prop", Kind: Value, InitialValue: float64(initial) / 100}
		at := time.Duration(0)
		for i, g := range rawGaps {
			at += time.Duration(g)*time.Millisecond + time.Millisecond
			v := 0.0
			if i < len(centsValues) {
				v = float64(centsValues[i]) / 100
			}
			tr.Updates = append(tr.Updates, Update{At: at, Value: v})
		}
		tr.Duration = at + time.Minute

		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumUpdates() != tr.NumUpdates() || got.InitialValue != tr.InitialValue {
			return false
		}
		for i := range tr.Updates {
			if got.Updates[i] != tr.Updates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
