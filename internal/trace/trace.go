// Package trace defines the workload model consumed by the simulator: a
// trace is the timestamped sequence of updates a web object underwent at
// its origin server. Temporal-domain traces carry only update instants
// (all the paper's news traces, Table 2); value-domain traces additionally
// carry the object's value at each update (the stock traces, Table 3).
//
// The package also provides trace-file serialization (a simple CSV
// dialect) so that generated workloads can be inspected, archived, and
// replayed byte-for-byte.
package trace

import (
	"errors"
	"fmt"
	"time"
)

// Kind distinguishes temporal traces (update instants only) from value
// traces (instants plus values).
type Kind int

const (
	// Temporal traces carry update instants only.
	Temporal Kind = iota + 1
	// Value traces carry an object value with every update.
	Value
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Temporal:
		return "temporal"
	case Value:
		return "value"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Update is a single modification of the object at the origin. The first
// update of a trace creates version 1; the cached copy a proxy fetches
// before any update is version 0.
type Update struct {
	// At is the offset of the update from the trace start.
	At time.Duration
	// Value is the object's value immediately after the update. It is
	// meaningful only for Value traces and zero otherwise.
	Value float64
}

// Trace is an immutable record of one object's update history over a
// bounded observation window [0, Duration].
type Trace struct {
	// Name identifies the trace (e.g. "cnn-fn").
	Name string
	// Kind reports whether values are meaningful.
	Kind Kind
	// Duration is the length of the observation window. Updates never
	// lie outside [0, Duration].
	Duration time.Duration
	// InitialValue is the object's value at offset 0, before the first
	// update (Value traces only).
	InitialValue float64
	// Updates holds the update sequence in strictly increasing time
	// order.
	Updates []Update
}

// Validation errors returned by Validate.
var (
	ErrNoName          = errors.New("trace: empty name")
	ErrBadKind         = errors.New("trace: invalid kind")
	ErrBadDuration     = errors.New("trace: non-positive duration")
	ErrUnordered       = errors.New("trace: updates not strictly increasing in time")
	ErrOutOfWindow     = errors.New("trace: update outside [0, duration]")
	ErrNegativeInstant = errors.New("trace: negative update instant")
)

// Validate checks the structural invariants of the trace.
func (tr *Trace) Validate() error {
	if tr.Name == "" {
		return ErrNoName
	}
	if tr.Kind != Temporal && tr.Kind != Value {
		return ErrBadKind
	}
	if tr.Duration <= 0 {
		return ErrBadDuration
	}
	prev := time.Duration(-1)
	for i, u := range tr.Updates {
		if u.At < 0 {
			return fmt.Errorf("%w: update %d at %v", ErrNegativeInstant, i, u.At)
		}
		if u.At > tr.Duration {
			return fmt.Errorf("%w: update %d at %v > %v", ErrOutOfWindow, i, u.At, tr.Duration)
		}
		if u.At <= prev {
			return fmt.Errorf("%w: update %d at %v follows %v", ErrUnordered, i, u.At, prev)
		}
		prev = u.At
	}
	return nil
}

// NumUpdates returns the number of updates in the trace.
func (tr *Trace) NumUpdates() int { return len(tr.Updates) }

// MeanGap returns the average inter-update gap (duration divided by update
// count, matching the paper's "Avg Update Frequency" column), or 0 for an
// empty trace.
func (tr *Trace) MeanGap() time.Duration {
	if len(tr.Updates) == 0 {
		return 0
	}
	return tr.Duration / time.Duration(len(tr.Updates))
}

// VersionAt returns the object's version number at the given offset: the
// number of updates at or before it. Version 0 is the pre-trace object.
func (tr *Trace) VersionAt(at time.Duration) int {
	return tr.searchAfter(at)
}

// searchAfter returns the index of the first update strictly after at,
// which equals the number of updates at or before at.
func (tr *Trace) searchAfter(at time.Duration) int {
	lo, hi := 0, len(tr.Updates)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.Updates[mid].At <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ValueAt returns the object's value at the given offset (Value traces).
// Before the first update it returns InitialValue.
func (tr *Trace) ValueAt(at time.Duration) float64 {
	idx := tr.searchAfter(at)
	if idx == 0 {
		return tr.InitialValue
	}
	return tr.Updates[idx-1].Value
}

// LastModifiedAt returns the instant of the most recent update at or
// before the given offset. The second result is false when no update has
// happened yet (the object is still at version 0, "modified" at offset 0).
func (tr *Trace) LastModifiedAt(at time.Duration) (time.Duration, bool) {
	idx := tr.searchAfter(at)
	if idx == 0 {
		return 0, false
	}
	return tr.Updates[idx-1].At, true
}

// UpdatesIn returns the updates with instants in the half-open window
// (after, upTo]. The returned slice aliases the trace and must not be
// modified.
func (tr *Trace) UpdatesIn(after, upTo time.Duration) []Update {
	lo := tr.searchAfter(after)
	hi := tr.searchAfter(upTo)
	return tr.Updates[lo:hi]
}

// NextUpdateAfter returns the instant of the first update strictly after
// the given offset, or ok=false if none remains.
func (tr *Trace) NextUpdateAfter(at time.Duration) (time.Duration, bool) {
	idx := tr.searchAfter(at)
	if idx >= len(tr.Updates) {
		return 0, false
	}
	return tr.Updates[idx].At, true
}

// ValidityInterval returns the server-side validity window of the version
// current at the given offset: from that version's modification instant
// (0 for the pre-trace version) until the next update, or the end of
// observability (MaxInt64 duration, "still current") if none follows.
// This is the interval the mutual-consistency semantics compare (Eq. 4).
func (tr *Trace) ValidityInterval(at time.Duration) (start, end time.Duration) {
	idx := tr.searchAfter(at)
	if idx == 0 {
		start = 0
	} else {
		start = tr.Updates[idx-1].At
	}
	if idx < len(tr.Updates) {
		end = tr.Updates[idx].At
	} else {
		end = time.Duration(1<<63 - 1)
	}
	return start, end
}

// Characteristics summarizes a trace the way the paper's Tables 2 and 3
// do.
type Characteristics struct {
	Name       string
	Kind       Kind
	Duration   time.Duration
	NumUpdates int
	MeanGap    time.Duration
	MinValue   float64
	MaxValue   float64
}

// Summarize computes the trace's characteristics.
func (tr *Trace) Summarize() Characteristics {
	c := Characteristics{
		Name:       tr.Name,
		Kind:       tr.Kind,
		Duration:   tr.Duration,
		NumUpdates: len(tr.Updates),
		MeanGap:    tr.MeanGap(),
	}
	if tr.Kind == Value {
		c.MinValue, c.MaxValue = tr.InitialValue, tr.InitialValue
		for _, u := range tr.Updates {
			if u.Value < c.MinValue {
				c.MinValue = u.Value
			}
			if u.Value > c.MaxValue {
				c.MaxValue = u.Value
			}
		}
	}
	return c
}

// String renders the characteristics as a single table row.
func (c Characteristics) String() string {
	if c.Kind == Value {
		return fmt.Sprintf("%s: %d updates over %v, min $%.2f max $%.2f",
			c.Name, c.NumUpdates, c.Duration, c.MinValue, c.MaxValue)
	}
	return fmt.Sprintf("%s: %d updates over %v, every %v",
		c.Name, c.NumUpdates, c.Duration, c.MeanGap.Round(time.Second))
}
