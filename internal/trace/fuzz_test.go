package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the trace-file parser with arbitrary bytes: it must
// reject garbage gracefully (error, not panic) and round-trip whatever it
// accepts.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, &Trace{
		Name: "seed", Kind: Value, Duration: 1000, InitialValue: 1,
		Updates: []Update{{At: 1, Value: 2}, {At: 5, Value: 3}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("# broadway trace v1\nname: x\nkind: temporal\nduration: 1h\n---\n")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumUpdates() != tr.NumUpdates() {
			t.Fatal("round trip changed update count")
		}
	})
}
