package trace

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func newsTrace() *Trace {
	return &Trace{
		Name:     "news",
		Kind:     Temporal,
		Duration: time.Hour,
		Updates: []Update{
			{At: 10 * time.Minute},
			{At: 20 * time.Minute},
			{At: 45 * time.Minute},
		},
	}
}

func stockTrace() *Trace {
	return &Trace{
		Name:         "stock",
		Kind:         Value,
		Duration:     time.Hour,
		InitialValue: 100,
		Updates: []Update{
			{At: 10 * time.Minute, Value: 101},
			{At: 20 * time.Minute, Value: 99.5},
			{At: 45 * time.Minute, Value: 103},
		},
	}
}

func TestValidateAcceptsGoodTraces(t *testing.T) {
	for _, tr := range []*Trace{newsTrace(), stockTrace()} {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: Validate = %v", tr.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Trace)
		wantErr error
	}{
		{"empty name", func(tr *Trace) { tr.Name = "" }, ErrNoName},
		{"bad kind", func(tr *Trace) { tr.Kind = 0 }, ErrBadKind},
		{"zero duration", func(tr *Trace) { tr.Duration = 0 }, ErrBadDuration},
		{"unordered", func(tr *Trace) { tr.Updates[1].At = 5 * time.Minute }, ErrUnordered},
		{"duplicate instant", func(tr *Trace) { tr.Updates[1].At = tr.Updates[0].At }, ErrUnordered},
		{"after window", func(tr *Trace) { tr.Updates[2].At = 2 * time.Hour }, ErrOutOfWindow},
		{"negative instant", func(tr *Trace) { tr.Updates[0].At = -time.Minute }, ErrNegativeInstant},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := newsTrace()
			tt.mutate(tr)
			if err := tr.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestVersionAt(t *testing.T) {
	tr := newsTrace()
	tests := []struct {
		at   time.Duration
		want int
	}{
		{0, 0},
		{9 * time.Minute, 0},
		{10 * time.Minute, 1}, // inclusive at the update instant
		{15 * time.Minute, 1},
		{20 * time.Minute, 2},
		{time.Hour, 3},
	}
	for _, tt := range tests {
		if got := tr.VersionAt(tt.at); got != tt.want {
			t.Errorf("VersionAt(%v) = %d, want %d", tt.at, got, tt.want)
		}
	}
}

func TestValueAt(t *testing.T) {
	tr := stockTrace()
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{10 * time.Minute, 101},
		{19 * time.Minute, 101},
		{30 * time.Minute, 99.5},
		{time.Hour, 103},
	}
	for _, tt := range tests {
		if got := tr.ValueAt(tt.at); got != tt.want {
			t.Errorf("ValueAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestLastModifiedAt(t *testing.T) {
	tr := newsTrace()
	if _, ok := tr.LastModifiedAt(5 * time.Minute); ok {
		t.Error("no modification before first update")
	}
	got, ok := tr.LastModifiedAt(25 * time.Minute)
	if !ok || got != 20*time.Minute {
		t.Errorf("LastModifiedAt = %v,%v", got, ok)
	}
}

func TestUpdatesIn(t *testing.T) {
	tr := newsTrace()
	got := tr.UpdatesIn(10*time.Minute, 45*time.Minute)
	if len(got) != 2 {
		t.Fatalf("UpdatesIn half-open window = %d updates, want 2", len(got))
	}
	if got[0].At != 20*time.Minute || got[1].At != 45*time.Minute {
		t.Errorf("wrong updates: %v", got)
	}
	if len(tr.UpdatesIn(45*time.Minute, time.Hour)) != 0 {
		t.Error("window after last update must be empty")
	}
	if len(tr.UpdatesIn(0, time.Hour)) != 3 {
		t.Error("full window must contain all updates")
	}
}

func TestNextUpdateAfter(t *testing.T) {
	tr := newsTrace()
	got, ok := tr.NextUpdateAfter(10 * time.Minute)
	if !ok || got != 20*time.Minute {
		t.Errorf("NextUpdateAfter = %v,%v", got, ok)
	}
	if _, ok := tr.NextUpdateAfter(45 * time.Minute); ok {
		t.Error("no update after the last one")
	}
	got, ok = tr.NextUpdateAfter(0)
	if !ok || got != 10*time.Minute {
		t.Errorf("NextUpdateAfter(0) = %v,%v", got, ok)
	}
}

func TestValidityInterval(t *testing.T) {
	tr := newsTrace()
	start, end := tr.ValidityInterval(15 * time.Minute)
	if start != 10*time.Minute || end != 20*time.Minute {
		t.Errorf("ValidityInterval = [%v,%v)", start, end)
	}
	start, end = tr.ValidityInterval(5 * time.Minute)
	if start != 0 || end != 10*time.Minute {
		t.Errorf("pre-trace interval = [%v,%v)", start, end)
	}
	start, end = tr.ValidityInterval(50 * time.Minute)
	if start != 45*time.Minute || end != time.Duration(math.MaxInt64) {
		t.Errorf("open interval = [%v,%v)", start, end)
	}
}

func TestMeanGapAndSummarize(t *testing.T) {
	tr := newsTrace()
	if got := tr.MeanGap(); got != 20*time.Minute {
		t.Errorf("MeanGap = %v, want 20m", got)
	}
	c := tr.Summarize()
	if c.NumUpdates != 3 || c.Name != "news" || c.Kind != Temporal {
		t.Errorf("Summarize = %+v", c)
	}

	sc := stockTrace().Summarize()
	if sc.MinValue != 99.5 || sc.MaxValue != 103 {
		t.Errorf("stock min/max = %v/%v", sc.MinValue, sc.MaxValue)
	}

	empty := &Trace{Name: "e", Kind: Temporal, Duration: time.Hour}
	if empty.MeanGap() != 0 {
		t.Error("empty trace MeanGap must be 0")
	}
}

func TestCharacteristicsString(t *testing.T) {
	if s := newsTrace().Summarize().String(); s == "" {
		t.Error("empty temporal characteristics string")
	}
	if s := stockTrace().Summarize().String(); s == "" {
		t.Error("empty value characteristics string")
	}
}

func TestKindString(t *testing.T) {
	if Temporal.String() != "temporal" || Value.String() != "value" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}

// buildTrace constructs a valid trace from arbitrary raw gaps, for
// property tests.
func buildTrace(rawGaps []uint16) *Trace {
	tr := &Trace{Name: "prop", Kind: Temporal}
	at := time.Duration(0)
	for _, g := range rawGaps {
		at += time.Duration(g)*time.Second + time.Second
		tr.Updates = append(tr.Updates, Update{At: at})
	}
	tr.Duration = at + time.Hour
	return tr
}

func TestPropertyVersionMonotone(t *testing.T) {
	f := func(rawGaps []uint16, probes []uint32) bool {
		tr := buildTrace(rawGaps)
		if tr.Validate() != nil {
			return false
		}
		ats := make([]time.Duration, len(probes))
		for i, p := range probes {
			ats[i] = time.Duration(p) * time.Millisecond
		}
		sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
		prev := -1
		for _, at := range ats {
			v := tr.VersionAt(at)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyValidityIntervalContainsProbe(t *testing.T) {
	f := func(rawGaps []uint16, probe uint32) bool {
		tr := buildTrace(rawGaps)
		at := time.Duration(probe) * time.Millisecond
		start, end := tr.ValidityInterval(at)
		return start <= at && at < end
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyVersionCountsUpdatesIn(t *testing.T) {
	f := func(rawGaps []uint16, probe uint32) bool {
		tr := buildTrace(rawGaps)
		at := time.Duration(probe) * time.Millisecond
		return tr.VersionAt(at) == len(tr.UpdatesIn(-1, at))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
