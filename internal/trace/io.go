package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// File format: a small line-oriented header followed by one CSV record per
// update. Durations use Go duration syntax; values are decimal.
//
//	# broadway trace v1
//	name: cnn-fn
//	kind: temporal
//	duration: 49h30m0s
//	initial: 0
//	---
//	26m3s,0
//	55m10s,0
//
// The format is deliberately trivial so traces can be generated or audited
// with standard text tools.

const fileMagic = "# broadway trace v1"

// Write serializes the trace. It validates first and refuses to write an
// invalid trace.
func Write(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid trace: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, fileMagic)
	fmt.Fprintf(bw, "name: %s\n", tr.Name)
	fmt.Fprintf(bw, "kind: %s\n", tr.Kind)
	fmt.Fprintf(bw, "duration: %s\n", tr.Duration)
	fmt.Fprintf(bw, "initial: %s\n", strconv.FormatFloat(tr.InitialValue, 'f', -1, 64))
	fmt.Fprintln(bw, "---")
	for _, u := range tr.Updates {
		fmt.Fprintf(bw, "%s,%s\n", u.At, strconv.FormatFloat(u.Value, 'f', -1, 64))
	}
	return bw.Flush()
}

// Read parses a trace previously written by Write and validates it.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if strings.TrimSpace(sc.Text()) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", sc.Text())
	}

	tr := &Trace{}
	inHeader := true
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if inHeader {
			if text == "---" {
				inHeader = false
				continue
			}
			key, val, ok := strings.Cut(text, ":")
			if !ok {
				return nil, fmt.Errorf("trace: line %d: malformed header %q", line, text)
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "name":
				tr.Name = val
			case "kind":
				switch val {
				case "temporal":
					tr.Kind = Temporal
				case "value":
					tr.Kind = Value
				default:
					return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, val)
				}
			case "duration":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: duration: %w", line, err)
				}
				tr.Duration = d
			case "initial":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: initial: %w", line, err)
				}
				tr.InitialValue = v
			default:
				return nil, fmt.Errorf("trace: line %d: unknown header key %q", line, key)
			}
			continue
		}
		atStr, valStr, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: malformed record %q", line, text)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: instant: %w", line, err)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: value: %w", line, err)
		}
		tr.Updates = append(tr.Updates, Update{At: at, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if inHeader {
		return nil, fmt.Errorf("trace: missing --- separator")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
