package sched

import (
	"math/rand"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return epoch.Add(d) }

func TestOrdering(t *testing.T) {
	var s Heap
	s.Push(at(3*time.Second), "c")
	s.Push(at(1*time.Second), "a")
	s.Push(at(2*time.Second), "b")
	for _, want := range []string{"a", "b", "c"} {
		it := s.Pop()
		if it == nil || it.Payload.(string) != want {
			t.Fatalf("Pop = %v, want %q", it, want)
		}
	}
	if s.Pop() != nil {
		t.Error("Pop on empty heap must return nil")
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Heap
	for i := 0; i < 10; i++ {
		s.Push(at(time.Second), i)
	}
	for i := 0; i < 10; i++ {
		if got := s.Pop().Payload.(int); got != i {
			t.Fatalf("tie-break order: got %d, want %d", got, i)
		}
	}
}

func TestPopDue(t *testing.T) {
	var s Heap
	s.Push(at(time.Second), "early")
	s.Push(at(time.Minute), "late")
	if it := s.PopDue(at(0)); it != nil {
		t.Fatalf("PopDue before anything is due = %v", it)
	}
	if it := s.PopDue(at(time.Second)); it == nil || it.Payload != "early" {
		t.Fatalf("PopDue at the due instant = %v", it)
	}
	if it := s.PopDue(at(2 * time.Second)); it != nil {
		t.Fatalf("PopDue must not return the late item: %v", it)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var s Heap
	if s.Peek() != nil {
		t.Error("Peek on empty heap must return nil")
	}
	s.Push(at(time.Second), "x")
	if it := s.Peek(); it == nil || it.Payload != "x" {
		t.Fatalf("Peek = %v", it)
	}
	if s.Len() != 1 {
		t.Errorf("Peek removed the item")
	}
}

func TestRemove(t *testing.T) {
	var s Heap
	a := s.Push(at(time.Second), "a")
	s.Push(at(2*time.Second), "b")
	if !s.Remove(a) {
		t.Fatal("Remove of a pending item must return true")
	}
	if s.Remove(a) {
		t.Error("second Remove must return false")
	}
	if it := s.Pop(); it.Payload != "b" {
		t.Errorf("Pop after Remove = %v", it.Payload)
	}
	if s.Remove(nil) {
		t.Error("Remove(nil) must return false")
	}
}

func TestReschedule(t *testing.T) {
	var s Heap
	a := s.Push(at(time.Second), "a")
	s.Push(at(2*time.Second), "b")
	if !s.Reschedule(a, at(3*time.Second)) {
		t.Fatal("Reschedule of a pending item must return true")
	}
	if it := s.Pop(); it.Payload != "b" {
		t.Fatalf("after Reschedule, Pop = %v", it.Payload)
	}
	popped := s.Pop()
	if popped.Payload != "a" || !popped.At.Equal(at(3*time.Second)) {
		t.Errorf("rescheduled item = %v @ %v", popped.Payload, popped.At)
	}
	if s.Reschedule(popped, at(time.Second)) {
		t.Error("Reschedule of a popped item must return false")
	}
}

func TestRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Heap
	const n = 2000
	times := make([]time.Time, n)
	for i := range times {
		times[i] = at(time.Duration(rng.Intn(1000)) * time.Millisecond)
		s.Push(times[i], i)
	}
	var prev time.Time
	for i := 0; i < n; i++ {
		it := s.Pop()
		if it == nil {
			t.Fatalf("heap exhausted at %d", i)
		}
		if i > 0 && it.At.Before(prev) {
			t.Fatalf("out of order: %v after %v", it.At, prev)
		}
		prev = it.At
	}
}
