// Package sched implements the wall-clock min-heap the live proxy uses
// to order background refreshes. It is the real-time sibling of
// internal/eventq (which orders simulated events): items are keyed by
// the time.Time instant they become due, ties break in insertion order,
// and Peek/PopDue give the dispatcher O(log n) access to the next due
// refresh instead of an O(n) scan over every cached object.
//
// A Heap is not safe for concurrent use; the proxy guards it with its
// scheduler mutex.
package sched

import (
	"container/heap"
	"time"
)

// Item is one scheduled refresh.
type Item struct {
	// At is the instant the item becomes due.
	At time.Time
	// Payload is the caller's data (the proxy stores its cache entry).
	Payload any

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // position in the heap; -1 once removed
}

// Heap is a time-ordered schedule. The zero value is ready to use.
type Heap struct {
	h       itemHeap
	nextSeq uint64
}

// Len returns the number of pending items.
func (s *Heap) Len() int { return len(s.h) }

// Push schedules payload at the given instant and returns a handle that
// can later be passed to Remove or Reschedule.
func (s *Heap) Push(at time.Time, payload any) *Item {
	it := &Item{At: at, Payload: payload, seq: s.nextSeq, index: -1}
	s.nextSeq++
	heap.Push(&s.h, it)
	return it
}

// Peek returns the earliest item without removing it, or nil when empty.
func (s *Heap) Peek() *Item {
	if len(s.h) == 0 {
		return nil
	}
	return s.h[0]
}

// Pop removes and returns the earliest item, or nil when empty.
func (s *Heap) Pop() *Item {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*Item)
}

// PopDue removes and returns the earliest item if it is due at now
// (At <= now); otherwise it returns nil and leaves the heap untouched.
func (s *Heap) PopDue(now time.Time) *Item {
	if len(s.h) == 0 || s.h[0].At.After(now) {
		return nil
	}
	return heap.Pop(&s.h).(*Item)
}

// Remove cancels a previously pushed item. It reports whether the item
// was still pending; removing twice is safe and returns false.
func (s *Heap) Remove(it *Item) bool {
	if it == nil || it.index < 0 || it.index >= len(s.h) || s.h[it.index] != it {
		return false
	}
	heap.Remove(&s.h, it.index)
	return true
}

// Reschedule moves a pending item to a new instant, restoring heap order
// in O(log n). It reports whether the item was still pending.
func (s *Heap) Reschedule(it *Item, at time.Time) bool {
	if it == nil || it.index < 0 || it.index >= len(s.h) || s.h[it.index] != it {
		return false
	}
	it.At = at
	heap.Fix(&s.h, it.index)
	return true
}

// itemHeap implements heap.Interface ordered by (At, seq).
type itemHeap []*Item

var _ heap.Interface = (*itemHeap)(nil)

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if !h[i].At.Equal(h[j].At) {
		return h[i].At.Before(h[j].At)
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}
