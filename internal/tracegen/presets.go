package tracegen

import (
	"fmt"
	"time"

	"broadway/internal/trace"
)

// Preset seeds. Fixed so every experiment in the repository is exactly
// reproducible; change a seed and the workload changes everywhere.
const (
	seedCNNFN      = 1001
	seedNYTAP      = 1002
	seedNYTReuters = 1003
	seedGuardian   = 1004
	seedATT        = 2001
	seedYahoo      = 2002
)

// The preset configurations below mirror the trace characteristics the
// paper reports in Table 2 (news pages, temporal domain) and Table 3
// (stock quotes, value domain). Window lengths and update counts are taken
// directly from the tables; start hours come from the collection
// timestamps (e.g. CNN/FN collection began Aug 7 at 13:04).

// CNNFN returns the synthetic stand-in for the "CNN Financial News
// Briefs" trace: 113 updates over 49.5 hours (one every ≈26 minutes).
func CNNFN() *trace.Trace {
	return mustNews(NewsConfig{
		Name:          "cnn-fn",
		Seed:          seedCNNFN,
		Duration:      49*time.Hour + 30*time.Minute,
		Updates:       113,
		StartHour:     13.07,
		ProfileJitter: 0.4,
		BurstFraction: 0.15,
	})
}

// NYTAP returns the stand-in for "NY Times Breaking News (AP)": 233
// updates over ≈45.3 hours (one every ≈11.6 minutes).
func NYTAP() *trace.Trace {
	return mustNews(NewsConfig{
		Name:          "nyt-ap",
		Seed:          seedNYTAP,
		Duration:      45*time.Hour + 18*time.Minute,
		Updates:       233,
		StartHour:     14.12,
		ProfileJitter: 0.4,
		BurstFraction: 0.2,
	})
}

// NYTReuters returns the stand-in for "NY Times Breaking News (Reuters)":
// 133 updates over ≈45.2 hours (one every ≈20.3 minutes).
func NYTReuters() *trace.Trace {
	return mustNews(NewsConfig{
		Name:          "nyt-reuters",
		Seed:          seedNYTReuters,
		Duration:      45*time.Hour + 13*time.Minute,
		Updates:       133,
		StartHour:     14.2,
		ProfileJitter: 0.4,
		BurstFraction: 0.2,
	})
}

// Guardian returns the stand-in for "Guardian Breaking News": 902 updates
// over ≈73.9 hours (one every ≈4.9 minutes).
func Guardian() *trace.Trace {
	return mustNews(NewsConfig{
		Name:          "guardian",
		Seed:          seedGuardian,
		Duration:      73*time.Hour + 52*time.Minute,
		Updates:       902,
		StartHour:     13.67,
		ProfileJitter: 0.4,
		BurstFraction: 0.25,
	})
}

// ATT returns the stand-in for the AT&T quote trace of Table 3: 653 ticks
// over a three-hour trading window, price confined to $35.8–$36.5
// (infrequent, small moves).
func ATT() *trace.Trace {
	return mustStock(StockConfig{
		Name:       "att",
		Seed:       seedATT,
		Duration:   3 * time.Hour,
		Ticks:      653,
		Initial:    36.15,
		Min:        35.8,
		Max:        36.5,
		Reversion:  0.02,
		Volatility: 0.03,
	})
}

// Yahoo returns the stand-in for the Yahoo quote trace of Table 3: 2204
// ticks over three hours, price ranging $160.2–$171.2 (frequent, large
// moves).
func Yahoo() *trace.Trace {
	return mustStock(StockConfig{
		Name:       "yahoo",
		Seed:       seedYahoo,
		Duration:   3 * time.Hour,
		Ticks:      2204,
		Initial:    165.7,
		Min:        160.2,
		Max:        171.2,
		Reversion:  0.01,
		Volatility: 0.22,
	})
}

// NewsPresets returns the four Table 2 stand-ins in the paper's order.
func NewsPresets() []*trace.Trace {
	return []*trace.Trace{CNNFN(), NYTAP(), NYTReuters(), Guardian()}
}

// StockPresets returns the two Table 3 stand-ins in the paper's order.
func StockPresets() []*trace.Trace {
	return []*trace.Trace{ATT(), Yahoo()}
}

// ByName returns the preset trace with the given name, or an error listing
// the valid names.
func ByName(name string) (*trace.Trace, error) {
	switch name {
	case "cnn-fn":
		return CNNFN(), nil
	case "nyt-ap":
		return NYTAP(), nil
	case "nyt-reuters":
		return NYTReuters(), nil
	case "guardian":
		return Guardian(), nil
	case "att":
		return ATT(), nil
	case "yahoo":
		return Yahoo(), nil
	default:
		return nil, fmt.Errorf("tracegen: unknown preset %q (valid: cnn-fn, nyt-ap, nyt-reuters, guardian, att, yahoo)", name)
	}
}

func mustNews(cfg NewsConfig) *trace.Trace {
	tr, err := News(cfg)
	if err != nil {
		panic(err) // preset configs are compile-time constants; cannot fail
	}
	return tr
}

func mustStock(cfg StockConfig) *trace.Trace {
	tr, err := Stock(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}
