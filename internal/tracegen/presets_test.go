package tracegen

import (
	"math"
	"testing"
	"time"

	"broadway/internal/trace"
)

// TestTable2Characteristics checks that the news presets match the paper's
// Table 2 headline numbers: update counts exactly, mean gaps within 5%.
func TestTable2Characteristics(t *testing.T) {
	tests := []struct {
		tr          *trace.Trace
		wantUpdates int
		wantGap     time.Duration
	}{
		{CNNFN(), 113, 26 * time.Minute},
		{NYTAP(), 233, time.Duration(11.6 * float64(time.Minute))},
		{NYTReuters(), 133, time.Duration(20.3 * float64(time.Minute))},
		{Guardian(), 902, time.Duration(4.9 * float64(time.Minute))},
	}
	for _, tt := range tests {
		t.Run(tt.tr.Name, func(t *testing.T) {
			if err := tt.tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tt.tr.NumUpdates(); got != tt.wantUpdates {
				t.Errorf("updates = %d, want %d", got, tt.wantUpdates)
			}
			gap := tt.tr.MeanGap()
			if ratio := float64(gap) / float64(tt.wantGap); ratio < 0.95 || ratio > 1.05 {
				t.Errorf("mean gap = %v, want ≈%v", gap, tt.wantGap)
			}
		})
	}
}

// TestTable3Characteristics checks the stock presets against Table 3:
// tick counts exactly, price range within the paper's bounds.
func TestTable3Characteristics(t *testing.T) {
	tests := []struct {
		tr         *trace.Trace
		wantTicks  int
		boundLo    float64
		boundHi    float64
		wantSpread float64 // generated range should cover most of the band
	}{
		{ATT(), 653, 35.8, 36.5, 0.4},
		{Yahoo(), 2204, 160.2, 171.2, 6},
	}
	for _, tt := range tests {
		t.Run(tt.tr.Name, func(t *testing.T) {
			if err := tt.tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tt.tr.NumUpdates(); got != tt.wantTicks {
				t.Errorf("ticks = %d, want %d", got, tt.wantTicks)
			}
			c := tt.tr.Summarize()
			if c.MinValue < tt.boundLo-1e-9 || c.MaxValue > tt.boundHi+1e-9 {
				t.Errorf("range [%v, %v] outside paper bounds [%v, %v]",
					c.MinValue, c.MaxValue, tt.boundLo, tt.boundHi)
			}
			if spread := c.MaxValue - c.MinValue; spread < tt.wantSpread {
				t.Errorf("price spread %v too narrow (want ≥ %v)", spread, tt.wantSpread)
			}
			if c.Duration != 3*time.Hour {
				t.Errorf("duration = %v, want 3h", c.Duration)
			}
		})
	}
}

// TestNewsPresetsQuietOvernight verifies the diurnal structure the paper's
// Fig. 4(a) relies on: each news preset has a multi-hour overnight window
// with at most a stray update.
func TestNewsPresetsQuietOvernight(t *testing.T) {
	for _, tr := range NewsPresets() {
		t.Run(tr.Name, func(t *testing.T) {
			// Find the quietest 5-hour window; it should be almost empty.
			quietest := math.MaxInt
			for start := time.Duration(0); start+5*time.Hour <= tr.Duration; start += time.Hour {
				n := len(tr.UpdatesIn(start, start+5*time.Hour))
				if n < quietest {
					quietest = n
				}
			}
			if quietest > 2 {
				t.Errorf("quietest 5h window has %d updates, want ≤ 2", quietest)
			}
		})
	}
}

func TestPresetsAreDeterministic(t *testing.T) {
	a, b := CNNFN(), CNNFN()
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatal("CNNFN preset not deterministic")
		}
	}
	ya, yb := Yahoo(), Yahoo()
	for i := range ya.Updates {
		if ya.Updates[i] != yb.Updates[i] {
			t.Fatal("Yahoo preset not deterministic")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cnn-fn", "nyt-ap", "nyt-reuters", "guardian", "att", "yahoo"} {
		tr, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if tr.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, tr.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown names")
	}
}

// TestRatesDiverge verifies that the AP and Reuters presets change at
// different rates in different hours (the dynamics of Fig. 6(a)): the
// per-hour update-count ratio between them must vary substantially.
func TestRatesDiverge(t *testing.T) {
	ap, reuters := NYTAP(), NYTReuters()
	horizon := ap.Duration
	if reuters.Duration < horizon {
		horizon = reuters.Duration
	}
	var ratios []float64
	for start := time.Duration(0); start+2*time.Hour <= horizon; start += 2 * time.Hour {
		a := len(ap.UpdatesIn(start, start+2*time.Hour))
		r := len(reuters.UpdatesIn(start, start+2*time.Hour))
		if a > 0 && r > 0 {
			ratios = append(ratios, float64(a)/float64(r))
		}
	}
	if len(ratios) < 5 {
		t.Fatalf("too few active windows: %d", len(ratios))
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi/lo < 1.5 {
		t.Errorf("update-rate ratio barely varies: [%v, %v]", lo, hi)
	}
}
