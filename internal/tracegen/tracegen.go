// Package tracegen generates synthetic workload traces that stand in for
// the real-world traces of the paper's evaluation (§6.1.2).
//
// The paper polled live news pages (CNN/FN, NY Times AP and Reuters feeds,
// the Guardian) once a minute for several days and recorded stock quotes
// (AT&T, Yahoo) from quote.yahoo.com. Those recordings are not available,
// so this package produces statistically matched substitutes:
//
//   - News traces are drawn from a nonhomogeneous Poisson-like process
//     with a diurnal intensity profile: activity collapses overnight and
//     peaks during the day, reproducing the on/off dynamics that drive the
//     paper's Fig. 4. Optional burst clustering models breaking-news
//     flurries, and per-hour intensity jitter makes the *ratio* of two
//     traces' rates fluctuate over time (the dynamics behind Fig. 6).
//   - Stock traces place ticks with exponential gaps and evolve the price
//     as a mean-reverting bounded random walk quantized to cents.
//
// Generators use exact-count sampling — the requested number of updates is
// placed according to the intensity profile — so the generated trace
// characteristics match the paper's Tables 2 and 3 headline numbers
// exactly, not merely in expectation. All generators are deterministic
// given their seed.
package tracegen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"broadway/internal/trace"
)

// minSeparation is the minimum gap enforced between consecutive updates.
// The paper's collection program polled once a minute, so sub-second
// resolution is already finer than the original data.
const minSeparation = time.Second

// DefaultNewsProfile is the default diurnal intensity profile: one
// relative weight per hour of day. It models a newsroom that is silent
// between 1am and 6am — the paper observes that the CNN/FN update
// frequency "reduces to zero for a few hours every night" (Fig. 4(a)) —
// and busiest through the working day.
var DefaultNewsProfile = [24]float64{
	0.10, 0.00, 0.00, 0.00, 0.00, 0.00, // 00:00–05:59
	0.20, 0.60, 0.90, 1.00, 1.00, 1.00, // 06:00–11:59
	0.90, 1.00, 1.00, 1.00, 1.00, 0.90, // 12:00–17:59
	0.80, 0.70, 0.60, 0.50, 0.35, 0.25, // 18:00–23:59
}

// NewsConfig parameterizes a synthetic news-update trace.
type NewsConfig struct {
	// Name labels the generated trace.
	Name string
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the observation window length.
	Duration time.Duration
	// Updates is the exact number of updates to place.
	Updates int
	// StartHour is the hour of day (0–24) at trace offset zero. The
	// paper's traces begin mid-afternoon.
	StartHour float64
	// Profile holds 24 relative hourly intensities. The zero value
	// selects DefaultNewsProfile.
	Profile *[24]float64
	// ProfileJitter is the standard deviation of multiplicative
	// lognormal noise applied independently to every *absolute* hour of
	// the window. Zero disables jitter. Jitter makes two traces' update
	// rates diverge hour by hour even though they share a profile.
	ProfileJitter float64
	// BurstFraction is the fraction of updates placed as burst children
	// that follow a parent update closely (breaking-news flurries).
	// Zero disables bursts.
	BurstFraction float64
	// BurstGap is the mean offset of a burst child from its parent
	// (default 3 minutes when bursts are enabled).
	BurstGap time.Duration
}

func (c *NewsConfig) validate() error {
	switch {
	case c.Name == "":
		return errors.New("tracegen: news: empty name")
	case c.Duration <= 0:
		return errors.New("tracegen: news: non-positive duration")
	case c.Updates < 0:
		return errors.New("tracegen: news: negative update count")
	case c.StartHour < 0 || c.StartHour >= 24:
		return fmt.Errorf("tracegen: news: start hour %v outside [0,24)", c.StartHour)
	case c.BurstFraction < 0 || c.BurstFraction >= 1:
		return fmt.Errorf("tracegen: news: burst fraction %v outside [0,1)", c.BurstFraction)
	case c.ProfileJitter < 0:
		return errors.New("tracegen: news: negative profile jitter")
	}
	return nil
}

// News generates a temporal-domain trace according to cfg.
func News(cfg NewsConfig) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	profile := DefaultNewsProfile
	if cfg.Profile != nil {
		profile = *cfg.Profile
	}

	segs := buildSegments(cfg.Duration, cfg.StartHour, profile, cfg.ProfileJitter, rng)

	burstGap := cfg.BurstGap
	if burstGap <= 0 {
		burstGap = 3 * time.Minute
	}
	nChildren := int(float64(cfg.Updates) * cfg.BurstFraction)
	nParents := cfg.Updates - nChildren

	instants := make([]time.Duration, 0, cfg.Updates)
	for i := 0; i < nParents; i++ {
		instants = append(instants, segs.sample(rng))
	}
	parents := append([]time.Duration(nil), instants...)
	for i := 0; i < nChildren; i++ {
		var base time.Duration
		if len(parents) > 0 {
			base = parents[rng.Intn(len(parents))]
		} else {
			base = segs.sample(rng)
		}
		off := time.Duration(rng.ExpFloat64() * float64(burstGap))
		at := base + off
		if at > cfg.Duration {
			at = segs.sample(rng)
		}
		instants = append(instants, at)
	}

	instants = enforceSpacing(instants, cfg.Duration)
	tr := &trace.Trace{
		Name:     cfg.Name,
		Kind:     trace.Temporal,
		Duration: cfg.Duration,
		Updates:  make([]trace.Update, len(instants)),
	}
	for i, at := range instants {
		tr.Updates[i] = trace.Update{At: at}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: news: generated invalid trace: %w", err)
	}
	return tr, nil
}

// segments is a piecewise-constant intensity over the window, used for
// inverse-CDF sampling of update instants.
type segments struct {
	starts  []time.Duration // segment start offsets
	ends    []time.Duration
	weights []float64 // non-negative intensity of each segment
	cum     []float64 // cumulative mass up to segment end
	total   float64
}

// buildSegments slices the window into hour-aligned segments, assigning
// each the profile weight for its hour of day, optionally perturbed by
// lognormal jitter per absolute hour.
func buildSegments(duration time.Duration, startHour float64, profile [24]float64, jitter float64, rng *rand.Rand) *segments {
	s := &segments{}
	phase := time.Duration(startHour * float64(time.Hour))
	at := time.Duration(0)
	for at < duration {
		abs := phase + at
		hourOfDay := int(abs/time.Hour) % 24
		// Segment runs to the next hour boundary or the window end.
		segEnd := abs.Truncate(time.Hour) + time.Hour - phase
		if segEnd > duration {
			segEnd = duration
		}
		w := profile[hourOfDay]
		if jitter > 0 {
			w *= math.Exp(rng.NormFloat64() * jitter)
		}
		mass := w * float64(segEnd-at)
		s.starts = append(s.starts, at)
		s.ends = append(s.ends, segEnd)
		s.weights = append(s.weights, w)
		s.total += mass
		s.cum = append(s.cum, s.total)
		at = segEnd
	}
	return s
}

// sample draws one instant from the density proportional to the segment
// weights via inverse-CDF sampling.
func (s *segments) sample(rng *rand.Rand) time.Duration {
	if s.total <= 0 {
		// Degenerate profile: fall back to uniform over the window.
		last := s.ends[len(s.ends)-1]
		return time.Duration(rng.Int63n(int64(last)))
	}
	u := rng.Float64() * s.total
	idx := sort.SearchFloat64s(s.cum, u)
	if idx >= len(s.cum) {
		idx = len(s.cum) - 1
	}
	prev := 0.0
	if idx > 0 {
		prev = s.cum[idx-1]
	}
	segMass := s.cum[idx] - prev
	frac := 0.5
	if segMass > 0 {
		frac = (u - prev) / segMass
	}
	span := s.ends[idx] - s.starts[idx]
	return s.starts[idx] + time.Duration(frac*float64(span))
}

// weightAt returns the (possibly jittered) intensity in effect at the
// given offset. Exposed for tests.
func (s *segments) weightAt(at time.Duration) float64 {
	for i := range s.starts {
		if at >= s.starts[i] && at < s.ends[i] {
			return s.weights[i]
		}
	}
	return 0
}

// enforceSpacing sorts instants and enforces the minimum separation,
// dropping any updates pushed past the window end.
func enforceSpacing(instants []time.Duration, duration time.Duration) []time.Duration {
	sort.Slice(instants, func(i, j int) bool { return instants[i] < instants[j] })
	out := instants[:0]
	prev := -minSeparation
	for _, at := range instants {
		if at < 0 {
			at = 0
		}
		if at < prev+minSeparation {
			at = prev + minSeparation
		}
		if at > duration {
			break
		}
		out = append(out, at)
		prev = at
	}
	return out
}

// StockConfig parameterizes a synthetic stock-quote trace.
type StockConfig struct {
	// Name labels the generated trace.
	Name string
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the observation window (the paper's quote traces span
	// a three-hour trading window).
	Duration time.Duration
	// Ticks is the exact number of quote updates to place.
	Ticks int
	// Initial is the price at offset zero.
	Initial float64
	// Mean is the level the walk reverts toward (defaults to Initial).
	Mean float64
	// Min and Max bound the price; the walk reflects off them.
	Min, Max float64
	// Reversion in [0,1] is the per-tick pull toward Mean (0 = pure
	// random walk).
	Reversion float64
	// Volatility is the per-tick standard deviation in dollars.
	Volatility float64
}

func (c *StockConfig) validate() error {
	switch {
	case c.Name == "":
		return errors.New("tracegen: stock: empty name")
	case c.Duration <= 0:
		return errors.New("tracegen: stock: non-positive duration")
	case c.Ticks < 0:
		return errors.New("tracegen: stock: negative tick count")
	case c.Min >= c.Max:
		return fmt.Errorf("tracegen: stock: price bounds inverted [%v, %v]", c.Min, c.Max)
	case c.Initial < c.Min || c.Initial > c.Max:
		return fmt.Errorf("tracegen: stock: initial price %v outside [%v, %v]", c.Initial, c.Min, c.Max)
	case c.Reversion < 0 || c.Reversion > 1:
		return fmt.Errorf("tracegen: stock: reversion %v outside [0,1]", c.Reversion)
	case c.Volatility < 0:
		return errors.New("tracegen: stock: negative volatility")
	}
	return nil
}

// Stock generates a value-domain trace according to cfg.
func Stock(cfg StockConfig) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.Mean
	if mean == 0 {
		mean = cfg.Initial
	}

	// Tick instants: exponential gaps renormalized so that exactly
	// cfg.Ticks ticks land inside the window (Poisson-like spacing with
	// an exact count).
	gaps := make([]float64, cfg.Ticks)
	var gapSum float64
	for i := range gaps {
		gaps[i] = rng.ExpFloat64()
		gapSum += gaps[i]
	}
	instants := make([]time.Duration, 0, cfg.Ticks)
	if cfg.Ticks > 0 {
		// Reserve a half-gap tail so the last tick lands inside the window.
		scale := float64(cfg.Duration) / (gapSum + 0.5)
		at := 0.0
		for _, g := range gaps {
			at += g * scale
			instants = append(instants, time.Duration(at))
		}
	}
	instants = enforceSpacing(instants, cfg.Duration)

	tr := &trace.Trace{
		Name:         cfg.Name,
		Kind:         trace.Value,
		Duration:     cfg.Duration,
		InitialValue: roundCents(cfg.Initial),
		Updates:      make([]trace.Update, len(instants)),
	}
	price := cfg.Initial
	for i, at := range instants {
		drift := cfg.Reversion * (mean - price)
		price += drift + rng.NormFloat64()*cfg.Volatility
		price = reflect(price, cfg.Min, cfg.Max)
		tr.Updates[i] = trace.Update{At: at, Value: roundCents(price)}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: stock: generated invalid trace: %w", err)
	}
	return tr, nil
}

// reflect folds v back into [lo, hi] by reflecting off the bounds
// (triangular folding with period 2·(hi−lo)).
func reflect(v, lo, hi float64) float64 {
	span := hi - lo
	x := math.Mod(v-lo, 2*span)
	if x < 0 {
		x += 2 * span
	}
	if x > span {
		x = 2*span - x
	}
	return lo + x
}

// roundCents quantizes a price to whole cents, as quote feeds do.
func roundCents(v float64) float64 { return math.Round(v*100) / 100 }
