package tracegen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"broadway/internal/trace"
)

func TestNewsExactCount(t *testing.T) {
	tr, err := News(NewsConfig{
		Name: "t", Seed: 1, Duration: 48 * time.Hour, Updates: 200, StartHour: 13,
	})
	if err != nil {
		t.Fatalf("News: %v", err)
	}
	if tr.NumUpdates() != 200 {
		t.Errorf("NumUpdates = %d, want 200", tr.NumUpdates())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewsDeterministic(t *testing.T) {
	cfg := NewsConfig{Name: "t", Seed: 7, Duration: 24 * time.Hour, Updates: 100,
		StartHour: 9, BurstFraction: 0.2, ProfileJitter: 0.3}
	a, err := News(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := News(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Updates) != len(b.Updates) {
		t.Fatal("lengths differ")
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatalf("update %d differs: %v vs %v", i, a.Updates[i], b.Updates[i])
		}
	}
}

func TestNewsSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *trace.Trace {
		tr, err := News(NewsConfig{Name: "t", Seed: seed, Duration: 24 * time.Hour,
			Updates: 100, StartHour: 9})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestNewsDiurnalProfile(t *testing.T) {
	// Trace starting at midnight: the first six hours should be far
	// quieter than the working day.
	tr, err := News(NewsConfig{
		Name: "t", Seed: 3, Duration: 24 * time.Hour, Updates: 500, StartHour: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	night := len(tr.UpdatesIn(1*time.Hour, 6*time.Hour)) // 01:00–06:00
	day := len(tr.UpdatesIn(9*time.Hour, 14*time.Hour))  // 09:00–14:00
	if night*10 >= day {
		t.Errorf("diurnal profile too weak: night=%d day=%d", night, day)
	}
}

func TestNewsValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  NewsConfig
	}{
		{"empty name", NewsConfig{Duration: time.Hour, Updates: 1}},
		{"zero duration", NewsConfig{Name: "x", Updates: 1}},
		{"negative updates", NewsConfig{Name: "x", Duration: time.Hour, Updates: -1}},
		{"bad start hour", NewsConfig{Name: "x", Duration: time.Hour, Updates: 1, StartHour: 25}},
		{"bad burst fraction", NewsConfig{Name: "x", Duration: time.Hour, Updates: 1, BurstFraction: 1}},
		{"negative jitter", NewsConfig{Name: "x", Duration: time.Hour, Updates: 1, ProfileJitter: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := News(tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewsZeroUpdates(t *testing.T) {
	tr, err := News(NewsConfig{Name: "t", Seed: 1, Duration: time.Hour, Updates: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumUpdates() != 0 {
		t.Errorf("NumUpdates = %d", tr.NumUpdates())
	}
}

func TestNewsBurstsCluster(t *testing.T) {
	// With heavy bursting, the fraction of short gaps should exceed that
	// of an unbursted trace with the same parameters.
	shortGapFrac := func(burst float64) float64 {
		tr, err := News(NewsConfig{Name: "t", Seed: 11, Duration: 48 * time.Hour,
			Updates: 400, StartHour: 9, BurstFraction: burst, BurstGap: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		short := 0
		for i := 1; i < len(tr.Updates); i++ {
			if tr.Updates[i].At-tr.Updates[i-1].At < 3*time.Minute {
				short++
			}
		}
		return float64(short) / float64(len(tr.Updates)-1)
	}
	if burstFrac, plainFrac := shortGapFrac(0.5), shortGapFrac(0); burstFrac <= plainFrac {
		t.Errorf("bursting did not increase clustering: %v <= %v", burstFrac, plainFrac)
	}
}

func TestStockExactCount(t *testing.T) {
	tr, err := Stock(StockConfig{
		Name: "s", Seed: 5, Duration: 3 * time.Hour, Ticks: 500,
		Initial: 100, Min: 95, Max: 105, Volatility: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumUpdates() != 500 {
		t.Errorf("NumUpdates = %d, want 500", tr.NumUpdates())
	}
	if tr.Kind != trace.Value {
		t.Error("stock trace must be a value trace")
	}
}

func TestStockBounds(t *testing.T) {
	tr, err := Stock(StockConfig{
		Name: "s", Seed: 6, Duration: time.Hour, Ticks: 2000,
		Initial: 100, Min: 99, Max: 101, Volatility: 0.5, // violent walk, tight bounds
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range tr.Updates {
		if u.Value < 99 || u.Value > 101 {
			t.Fatalf("tick %d value %v outside bounds", i, u.Value)
		}
	}
}

func TestStockCentQuantization(t *testing.T) {
	tr, err := Stock(StockConfig{
		Name: "s", Seed: 7, Duration: time.Hour, Ticks: 100,
		Initial: 100, Min: 90, Max: 110, Volatility: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range tr.Updates {
		cents := u.Value * 100
		if math.Abs(cents-math.Round(cents)) > 1e-9 {
			t.Fatalf("tick %d value %v not cent-quantized", i, u.Value)
		}
	}
}

func TestStockValidationErrors(t *testing.T) {
	base := StockConfig{Name: "s", Duration: time.Hour, Ticks: 10,
		Initial: 100, Min: 95, Max: 105, Volatility: 0.1}
	tests := []struct {
		name   string
		mutate func(*StockConfig)
	}{
		{"empty name", func(c *StockConfig) { c.Name = "" }},
		{"zero duration", func(c *StockConfig) { c.Duration = 0 }},
		{"negative ticks", func(c *StockConfig) { c.Ticks = -1 }},
		{"inverted bounds", func(c *StockConfig) { c.Min, c.Max = 105, 95 }},
		{"initial outside", func(c *StockConfig) { c.Initial = 200 }},
		{"bad reversion", func(c *StockConfig) { c.Reversion = 2 }},
		{"negative volatility", func(c *StockConfig) { c.Volatility = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Stock(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestStockMeanReversionKeepsWalkCentered(t *testing.T) {
	tr, err := Stock(StockConfig{
		Name: "s", Seed: 8, Duration: 3 * time.Hour, Ticks: 2000,
		Initial: 100, Mean: 100, Min: 80, Max: 120, Reversion: 0.1, Volatility: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, u := range tr.Updates {
		sum += u.Value
	}
	mean := sum / float64(len(tr.Updates))
	if math.Abs(mean-100) > 2 {
		t.Errorf("walk mean %v drifted from 100", mean)
	}
}

func TestReflect(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-2, 0, 10, 2},
		{12, 0, 10, 8},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
		{-50, 0, 10, 10}, // extreme overshoot folds: -50 ≡ 10 mod 20
		{100, 0, 10, 0},  // extreme overshoot folds: 100 ≡ 0 mod 20
		{25, 0, 10, 5},   // one full period plus 5
	}
	for _, tt := range tests {
		if got := reflect(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("reflect(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestEnforceSpacing(t *testing.T) {
	in := []time.Duration{5 * time.Second, 5 * time.Second, 5 * time.Second, 2 * time.Second}
	out := enforceSpacing(in, time.Minute)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i]-out[i-1] < minSeparation {
			t.Fatalf("spacing violated at %d: %v", i, out)
		}
	}
	// Overflow drops.
	in = []time.Duration{time.Minute, time.Minute}
	out = enforceSpacing(in, time.Minute)
	if len(out) != 1 {
		t.Errorf("overflow not dropped: %v", out)
	}
}

func TestSegmentsWeightAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	profile := [24]float64{}
	for i := range profile {
		profile[i] = 1
	}
	profile[1] = 0 // silence 01:00–02:00
	segs := buildSegments(3*time.Hour, 0, profile, 0, rng)
	if w := segs.weightAt(30 * time.Minute); w != 1 {
		t.Errorf("weight at 00:30 = %v", w)
	}
	if w := segs.weightAt(90 * time.Minute); w != 0 {
		t.Errorf("weight at 01:30 = %v", w)
	}
}

func TestSegmentsPartialHours(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	profile := [24]float64{}
	for i := range profile {
		profile[i] = 1
	}
	// Start at 09:30: first segment must end at the 10:00 boundary.
	segs := buildSegments(2*time.Hour, 9.5, profile, 0, rng)
	if segs.ends[0] != 30*time.Minute {
		t.Errorf("first segment ends at %v, want 30m", segs.ends[0])
	}
	last := segs.ends[len(segs.ends)-1]
	if last != 2*time.Hour {
		t.Errorf("last segment ends at %v, want window end", last)
	}
}

func TestSegmentsZeroTotalFallsBackToUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var profile [24]float64 // all zero
	segs := buildSegments(time.Hour, 0, profile, 0, rng)
	for i := 0; i < 100; i++ {
		at := segs.sample(rng)
		if at < 0 || at >= time.Hour {
			t.Fatalf("sample %v outside window", at)
		}
	}
}
