package push

import (
	"strings"
	"testing"
	"time"
)

// FuzzInvalidationEvent hammers the wire decoder with arbitrary bytes.
// The invariants are the ones the proxy's scheduler depends on:
//
//   - Decode never panics, whatever the input.
//   - An accepted frame re-encodes to a frame that decodes to the same
//     event (the decoder cannot invent state the encoder cannot
//     represent, so a hostile frame cannot smuggle impossible values
//     into the subscription manager).
//   - An accepted update frame always carries a non-empty key and a
//     known kind — the two fields the proxy dispatches on.
func FuzzInvalidationEvent(f *testing.F) {
	f.Add(Event{Kind: KindHello, Seq: 1, Reset: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 2, Key: "/news/story.html", Group: "frontpage",
		ModTime: time.Unix(1700000000, 123)}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 3, Key: "/stock?sym=A&x=%20"}.Encode())
	f.Add(Event{Kind: KindHeartbeat, Seq: 4}.Encode())
	f.Add("v1 2 1 0 - /k -")
	f.Add("v1 2 1 0 - %2D %2D")
	f.Add("v1 2 1 0 r %2Fa%20b grp")
	f.Add("")
	f.Add("data: v1 2 1 0 - /k -")
	f.Add(strings.Repeat(" ", 64))

	f.Fuzz(func(t *testing.T, wire string) {
		ev, err := Decode(wire)
		if err != nil {
			return
		}
		switch ev.Kind {
		case KindHello, KindUpdate, KindHeartbeat:
		default:
			t.Fatalf("Decode(%q) accepted unknown kind %d", wire, ev.Kind)
		}
		if ev.Kind == KindUpdate && ev.Key == "" {
			t.Fatalf("Decode(%q) accepted an update without a key", wire)
		}
		re := ev.Encode()
		ev2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame %q (from %q) failed to decode: %v", re, wire, err)
		}
		if ev2.Kind != ev.Kind || ev2.Seq != ev.Seq || ev2.Key != ev.Key ||
			ev2.Group != ev.Group || ev2.Reset != ev.Reset || !ev2.ModTime.Equal(ev.ModTime) {
			t.Fatalf("round trip diverged: %+v vs %+v (wire %q)", ev, ev2, wire)
		}
	})
}
