package push

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzInvalidationEvent hammers the wire decoder with arbitrary bytes.
// The invariants are the ones the proxy's scheduler depends on:
//
//   - Decode never panics, whatever the input.
//   - An accepted frame re-encodes to a frame that decodes to the same
//     event (the decoder cannot invent state the encoder cannot
//     represent, so a hostile frame cannot smuggle impossible values
//     into the subscription manager) — payload, digest, content type,
//     and negotiated cap included.
//   - An accepted update frame always carries a non-empty key and a
//     known kind — the two fields the proxy dispatches on.
//   - An accepted payload never exceeds MaxPayloadCap, and a frame with
//     a payload always has HasBody set (the apply path branches on it).
func FuzzInvalidationEvent(f *testing.F) {
	f.Add(Event{Kind: KindHello, Seq: 1, Reset: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 2, Key: "/news/story.html", Group: "frontpage",
		ModTime: time.Unix(1700000000, 123)}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 3, Key: "/stock?sym=A&x=%20"}.Encode())
	f.Add(Event{Kind: KindHeartbeat, Seq: 4}.Encode())
	// v2 seeds: payload round trip with digest, hello with a negotiated
	// cap, empty-body payload, payload-free digest (a stripped frame).
	f.Add(Event{Kind: KindUpdate, Seq: 5, Key: "/quote/acme", Body: []byte("165.38\n"),
		HasBody: true, ContentType: "text/plain", Digest: DigestOf([]byte("165.38\n")),
		ModTime: time.Unix(1700000000, 0)}.Encode())
	f.Add(Event{Kind: KindHello, Seq: 6, PayloadCap: DefaultPayloadCap}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 7, Key: "/e", Body: []byte{}, HasBody: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 8, Key: "/s", Digest: "deadbeef00112233"}.Encode())
	f.Add("v1 2 1 0 - /k -")
	f.Add("v1 2 1 0 - %2D %2D")
	f.Add("v1 2 1 0 r %2Fa%20b grp")
	f.Add("v2 2 1 0 p /k - text%2Fplain deadbeef 0 aGVsbG8=")
	f.Add("v2 2 1 0 p /k - - - 0 -")
	f.Add("v2 2 1 0 - /k - - - 0 !!!hostile!!!")
	f.Add("v2 1 9 0 r - - - - 65536 -")
	f.Add("")
	f.Add("data: v1 2 1 0 - /k -")
	f.Add(strings.Repeat(" ", 64))

	f.Fuzz(func(t *testing.T, wire string) {
		ev, err := Decode(wire)
		if err != nil {
			return
		}
		switch ev.Kind {
		case KindHello, KindUpdate, KindHeartbeat:
		default:
			t.Fatalf("Decode(%q) accepted unknown kind %d", wire, ev.Kind)
		}
		if ev.Kind == KindUpdate && ev.Key == "" {
			t.Fatalf("Decode(%q) accepted an update without a key", wire)
		}
		if len(ev.Body) > 0 && !ev.HasBody {
			t.Fatalf("Decode(%q) produced a body without HasBody", wire)
		}
		if len(ev.Body) > MaxPayloadCap {
			t.Fatalf("Decode(%q) accepted a payload of %d bytes", wire, len(ev.Body))
		}
		re := ev.Encode()
		ev2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame (from %q) failed to decode: %v", wire, err)
		}
		if ev2.Kind != ev.Kind || ev2.Seq != ev.Seq || ev2.Key != ev.Key ||
			ev2.Group != ev.Group || ev2.Reset != ev.Reset || !ev2.ModTime.Equal(ev.ModTime) ||
			ev2.HasBody != ev.HasBody || !bytes.Equal(ev2.Body, ev.Body) ||
			ev2.ContentType != ev.ContentType || ev2.Digest != ev.Digest ||
			ev2.PayloadCap != ev.PayloadCap {
			t.Fatalf("round trip diverged: %+v vs %+v (wire %q)", ev, ev2, wire)
		}
		// Stripping is idempotent and always yields an encodable,
		// envelope-bounded-or-oversized frame — the exact degradation the
		// hub performs, so it must hold for every decodable event.
		st := ev.StripPayload()
		if st.HasBody || st.Body != nil || st.Digest != "" || st.ContentType != "" {
			t.Fatalf("StripPayload left payload state: %+v", st)
		}
	})
}
