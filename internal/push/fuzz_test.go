package push

import (
	"bytes"
	"net/url"
	"strings"
	"testing"
	"time"
)

// FuzzInvalidationEvent hammers the wire decoder with arbitrary bytes.
// The invariants are the ones the proxy's scheduler depends on:
//
//   - Decode never panics, whatever the input.
//   - An accepted frame re-encodes to a frame that decodes to the same
//     event (the decoder cannot invent state the encoder cannot
//     represent, so a hostile frame cannot smuggle impossible values
//     into the subscription manager) — payload, digest, content type,
//     and negotiated cap included.
//   - An accepted update frame always carries a non-empty key and a
//     known kind — the two fields the proxy dispatches on.
//   - An accepted payload never exceeds MaxPayloadCap, and a frame with
//     a payload always has HasBody set (the apply path branches on it).
func FuzzInvalidationEvent(f *testing.F) {
	f.Add(Event{Kind: KindHello, Seq: 1, Reset: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 2, Key: "/news/story.html", Group: "frontpage",
		ModTime: time.Unix(1700000000, 123)}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 3, Key: "/stock?sym=A&x=%20"}.Encode())
	f.Add(Event{Kind: KindHeartbeat, Seq: 4}.Encode())
	// v2 seeds: payload round trip with digest, hello with a negotiated
	// cap, empty-body payload, payload-free digest (a stripped frame).
	f.Add(Event{Kind: KindUpdate, Seq: 5, Key: "/quote/acme", Body: []byte("165.38\n"),
		HasBody: true, ContentType: "text/plain", Digest: DigestOf([]byte("165.38\n")),
		ModTime: time.Unix(1700000000, 0)}.Encode())
	f.Add(Event{Kind: KindHello, Seq: 6, PayloadCap: DefaultPayloadCap}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 7, Key: "/e", Body: []byte{}, HasBody: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 8, Key: "/s", Digest: "deadbeef00112233"}.Encode())
	// v3 seeds: a pure delta frame, first/last chunks of a set, and a
	// cap-boundary chunk set (index MaxChunkTotal-1 of MaxChunkTotal).
	f.Add(Event{Kind: KindUpdate, Seq: 9, Key: "/doc", Body: []byte{0x01, 0x02, 'h', 'i'},
		HasBody: true, Digest: DigestOf([]byte("target")),
		BaseDigest: DigestOf([]byte("base")), DeltaCodec: DeltaCodecBlock,
		ModTime: time.Unix(1700000001, 0)}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 10, Key: "/doc", Body: []byte("chunk zero"),
		HasBody: true, Digest: DigestOf([]byte("whole")), ChunkIndex: 0, ChunkTotal: 3}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 11, Key: "/doc", Body: []byte("last"),
		HasBody: true, Digest: DigestOf([]byte("whole")), ChunkIndex: 2, ChunkTotal: 3}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 12, Key: "/doc", Body: []byte("edge"),
		HasBody: true, Digest: DigestOf([]byte("whole")),
		ChunkIndex: MaxChunkTotal - 1, ChunkTotal: MaxChunkTotal}.Encode())
	// Hostile v3 lines the decoder must refuse: a non-hex base digest, a
	// base without its codec (and vice versa), chunk index beyond the
	// total, a total beyond MaxChunkTotal, a delta on a payload-less
	// frame, delta and chunk state on one frame, and ladder state on a
	// hello.
	f.Add("v3 2 12 0 p /k - - deadbeef 0 ZZZZ 1 0 0 aGk=")
	f.Add("v3 2 13 0 p /k - - deadbeef 0 deadbeef 0 0 0 aGk=")
	f.Add("v3 2 14 0 p /k - - deadbeef 0 - 1 0 0 aGk=")
	f.Add("v3 2 15 0 p /k - - deadbeef 0 - 0 5 3 aGk=")
	f.Add("v3 2 16 0 p /k - - deadbeef 0 - 0 0 1025 aGk=")
	f.Add("v3 2 17 0 - /k - - - 0 deadbeef 1 0 0 -")
	f.Add("v3 2 18 0 p /k - - deadbeef 0 deadbeef 1 0 3 aGk=")
	f.Add("v3 1 19 0 r - - - - 65536 deadbeef 1 0 0 -")
	f.Add("v1 2 1 0 - /k -")
	f.Add("v1 2 1 0 - %2D %2D")
	f.Add("v1 2 1 0 r %2Fa%20b grp")
	f.Add("v2 2 1 0 p /k - text%2Fplain deadbeef 0 aGVsbG8=")
	f.Add("v2 2 1 0 p /k - - - 0 -")
	f.Add("v2 2 1 0 - /k - - - 0 !!!hostile!!!")
	f.Add("v2 1 9 0 r - - - - 65536 -")
	f.Add("")
	f.Add("data: v1 2 1 0 - /k -")
	f.Add(strings.Repeat(" ", 64))

	f.Fuzz(func(t *testing.T, wire string) {
		ev, err := Decode(wire)
		if err != nil {
			return
		}
		switch ev.Kind {
		case KindHello, KindUpdate, KindHeartbeat:
		default:
			t.Fatalf("Decode(%q) accepted unknown kind %d", wire, ev.Kind)
		}
		if ev.Kind == KindUpdate && ev.Key == "" {
			t.Fatalf("Decode(%q) accepted an update without a key", wire)
		}
		if len(ev.Body) > 0 && !ev.HasBody {
			t.Fatalf("Decode(%q) produced a body without HasBody", wire)
		}
		if len(ev.Body) > MaxPayloadCap {
			t.Fatalf("Decode(%q) accepted a payload of %d bytes", wire, len(ev.Body))
		}
		// Ladder-state invariants the hub and subscriber dispatch on: a
		// base digest and its codec travel together, a delta is always a
		// payload-carrying update with no chunk state, and chunk
		// positions are always in range of a bounded total.
		if (ev.BaseDigest != "") != (ev.DeltaCodec != 0) {
			t.Fatalf("Decode(%q) split base %q from codec %d", wire, ev.BaseDigest, ev.DeltaCodec)
		}
		if ev.BaseDigest != "" && (!ev.HasBody || ev.Kind != KindUpdate || ev.ChunkTotal != 0) {
			t.Fatalf("Decode(%q) accepted an impossible delta frame: %+v", wire, ev)
		}
		if ev.ChunkTotal > 0 && (!ev.HasBody || ev.Kind != KindUpdate ||
			ev.ChunkIndex >= ev.ChunkTotal || ev.ChunkTotal > MaxChunkTotal) {
			t.Fatalf("Decode(%q) accepted an impossible chunk frame: %+v", wire, ev)
		}
		if ev.ChunkTotal == 0 && ev.ChunkIndex != 0 {
			t.Fatalf("Decode(%q) accepted a chunk index without a total: %+v", wire, ev)
		}
		re := ev.Encode()
		ev2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame (from %q) failed to decode: %v", wire, err)
		}
		if ev2.Kind != ev.Kind || ev2.Seq != ev.Seq || ev2.Key != ev.Key ||
			ev2.Group != ev.Group || ev2.Reset != ev.Reset || !ev2.ModTime.Equal(ev.ModTime) ||
			ev2.HasBody != ev.HasBody || !bytes.Equal(ev2.Body, ev.Body) ||
			ev2.ContentType != ev.ContentType || ev2.Digest != ev.Digest ||
			ev2.PayloadCap != ev.PayloadCap ||
			ev2.BaseDigest != ev.BaseDigest || ev2.DeltaCodec != ev.DeltaCodec ||
			ev2.ChunkIndex != ev.ChunkIndex || ev2.ChunkTotal != ev.ChunkTotal {
			t.Fatalf("round trip diverged: %+v vs %+v (wire %q)", ev, ev2, wire)
		}
		// Stripping is idempotent and always yields an encodable,
		// envelope-bounded-or-oversized frame — the exact degradation the
		// hub performs, so it must hold for every decodable event.
		st := ev.StripPayload()
		if st.HasBody || st.Body != nil || st.Digest != "" || st.ContentType != "" ||
			st.BaseDigest != "" || st.DeltaCodec != 0 || st.ChunkIndex != 0 || st.ChunkTotal != 0 {
			t.Fatalf("StripPayload left payload state: %+v", st)
		}
		// The publish-time render must be byte-identical to the
		// per-subscriber Encode it replaced, for every decodable event
		// and every negotiated cap the write path can see. A decoded
		// delta frame is a PURE delta (its body IS the delta), so its
		// ladder has no full form at all — WireFor degrades every cap to
		// the stripped form, and the delta form re-encodes the frame
		// byte-identically for the hub's delta rung.
		pureDelta := ev.HasBody && ev.BaseDigest != "" && ev.DeltaCodec != 0
		rend := Render(ev)
		if pureDelta {
			if rend.Full() != "" {
				t.Fatalf("pure delta rendered a full form %q (wire %q)", rend.Full(), wire)
			}
			if frame, base := rend.Delta(); frame != re || base != ev.BaseDigest {
				t.Fatalf("pure delta form %q (base %q) != Encode %q (base %q)",
					frame, base, re, ev.BaseDigest)
			}
		} else if rend.Full() != re {
			t.Fatalf("Render full form %q != Encode %q", rend.Full(), re)
		}
		if want := st.Encode(); rend.Stripped() != want {
			t.Fatalf("Render stripped form %q != StripPayload().Encode() %q", rend.Stripped(), want)
		}
		for _, cap := range []int{0, 1, len(ev.Body) - 1, len(ev.Body), len(ev.Body) + 1, MaxPayloadCap} {
			want := re
			if pureDelta || (ev.HasBody && (cap <= 0 || len(ev.Body) > cap)) {
				want = st.Encode()
			}
			if got := rend.WireFor(cap); got != want {
				t.Fatalf("WireFor(%d) = %q, want %q (wire %q)", cap, got, want, wire)
			}
		}
	})
}

// FuzzDeltaApply hammers the delta decoder with arbitrary base and op
// streams. The invariants are the ones install safety rides on:
// ApplyDelta never panics, never returns a body over the size bound,
// and is deterministic; and every delta MakeDelta emits from the fuzzed
// inputs applies back to the exact target (the encoder and decoder
// cannot drift apart, whatever bytes the objects hold).
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte("base body"), []byte{0x01, 0x02, 'h', 'i'}, 0)
	f.Add([]byte(""), []byte{0x02, 0x00, 0x05}, 64)
	f.Add(bytes.Repeat([]byte("block content "), 64), []byte{0x02, 0x00, 0xff, 0x07}, 1<<20)
	f.Add([]byte("b"), []byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 0)
	f.Fuzz(func(t *testing.T, base, delta []byte, maxSize int) {
		out, err := ApplyDelta(DeltaCodecBlock, base, delta, maxSize)
		if err == nil {
			bound := maxSize
			if bound <= 0 {
				bound = MaxAssembledBody
			}
			if len(out) > bound {
				t.Fatalf("ApplyDelta produced %d bytes over the %d bound", len(out), bound)
			}
			out2, err2 := ApplyDelta(DeltaCodecBlock, base, delta, maxSize)
			if err2 != nil || !bytes.Equal(out, out2) {
				t.Fatal("ApplyDelta is not deterministic")
			}
		}
		if _, err := ApplyDelta(0, base, delta, maxSize); err == nil {
			t.Fatal("unknown codec accepted")
		}
		// Round trip: whatever MakeDelta emits for these inputs (base →
		// delta-as-target, and delta-as-target → base) must apply back
		// exactly.
		for _, pair := range [][2][]byte{{base, delta}, {delta, base}} {
			if enc, ok := MakeDelta(pair[0], pair[1]); ok {
				got, err := ApplyDelta(DeltaCodecBlock, pair[0], enc, 0)
				if err != nil || !bytes.Equal(got, pair[1]) {
					t.Fatalf("MakeDelta round trip broke: err=%v got %d bytes want %d",
						err, len(got), len(pair[1]))
				}
			}
		}
	})
}

// FuzzInterestFilter hammers interest-set construction and matching
// with hostile terms and keys (escaped '?', literal '-', over-length
// prefixes). The invariants are the ones delivery correctness rides on:
//
//   - Construction, matching, union, coverage, and query encoding never
//     panic, whatever the terms.
//   - EncodeQuery always re-parses, and the re-parsed set never matches
//     LESS than the original (fail open: a round trip may widen — the
//     empty set encodes as match-all — but must never narrow, because a
//     narrowed declaration filters away updates the subscriber needs).
//   - Covers is sound: when s covers o, everything o matches, s matches.
//   - Union is complete: the union matches whatever either input does.
//   - Match-all matches everything; prefix matching is literal string
//     prefixing on the DECODED key, exactly strings.HasPrefix.
func FuzzInterestFilter(f *testing.F) {
	f.Add("/news/", "frontpage", "/news/a.html", "frontpage")
	f.Add("/stock%3Fsym=A", "", "/stock?sym=A", "")
	f.Add("-", "-", "-key", "-")
	f.Add(strings.Repeat("p", maxInterestTermLen+1), "g", "/k", "g")
	f.Add("", "", "/anything", "grp")
	f.Add("/a\x00b", "g h", "/a\x00bc", "g h")
	f.Fuzz(func(t *testing.T, prefix, group, key, evGroup string) {
		s := NewInterest([]string{prefix, "/fixed/"}, []string{group})
		matched := s.Matches(key, evGroup)
		// Literal prefix semantics on the decoded key.
		if prefix != "" && len(prefix) <= maxInterestTermLen &&
			strings.HasPrefix(key, prefix) && !matched {
			t.Fatalf("declared prefix %q did not match key %q", prefix, key)
		}
		if group != "" && len(group) <= maxInterestTermLen &&
			evGroup == group && !matched {
			t.Fatalf("declared group %q did not match event group %q", group, evGroup)
		}
		if InterestAll().Covers(s) != true || !InterestAll().Matches(key, evGroup) {
			t.Fatal("match-all must cover and match everything")
		}
		// Query round trip never narrows.
		q, err := url.ParseQuery(s.EncodeQuery())
		if err != nil {
			t.Fatalf("EncodeQuery(%v,%v) unparsable: %v", s.Prefixes(), s.Groups(), err)
		}
		s2 := ParseInterest(q)
		if matched && !s2.Matches(key, evGroup) {
			t.Fatalf("query round trip narrowed the set: %q lost (%q,%q)",
				s.EncodeQuery(), key, evGroup)
		}
		// Covers soundness and Union completeness against a second set.
		o := NewInterest([]string{key}, []string{evGroup})
		if s.Covers(o) && !o.IsEmpty() && o.Matches(key, evGroup) && !matched {
			t.Fatalf("Covers unsound: s covers o but o matches (%q,%q) and s does not", key, evGroup)
		}
		u := s.Union(o)
		if (matched || o.Matches(key, evGroup)) && !u.Matches(key, evGroup) {
			t.Fatalf("Union incomplete: inputs match (%q,%q), union does not", key, evGroup)
		}
		if !u.Covers(o) && !o.IsAll() {
			// Union must cover its inputs (conservatism aside, a union
			// containing o's exact terms always covers them).
			t.Fatalf("Union does not cover its input: %v ∪ %v", s.Prefixes(), o.Prefixes())
		}
	})
}
