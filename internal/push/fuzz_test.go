package push

import (
	"bytes"
	"net/url"
	"strings"
	"testing"
	"time"
)

// FuzzInvalidationEvent hammers the wire decoder with arbitrary bytes.
// The invariants are the ones the proxy's scheduler depends on:
//
//   - Decode never panics, whatever the input.
//   - An accepted frame re-encodes to a frame that decodes to the same
//     event (the decoder cannot invent state the encoder cannot
//     represent, so a hostile frame cannot smuggle impossible values
//     into the subscription manager) — payload, digest, content type,
//     and negotiated cap included.
//   - An accepted update frame always carries a non-empty key and a
//     known kind — the two fields the proxy dispatches on.
//   - An accepted payload never exceeds MaxPayloadCap, and a frame with
//     a payload always has HasBody set (the apply path branches on it).
func FuzzInvalidationEvent(f *testing.F) {
	f.Add(Event{Kind: KindHello, Seq: 1, Reset: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 2, Key: "/news/story.html", Group: "frontpage",
		ModTime: time.Unix(1700000000, 123)}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 3, Key: "/stock?sym=A&x=%20"}.Encode())
	f.Add(Event{Kind: KindHeartbeat, Seq: 4}.Encode())
	// v2 seeds: payload round trip with digest, hello with a negotiated
	// cap, empty-body payload, payload-free digest (a stripped frame).
	f.Add(Event{Kind: KindUpdate, Seq: 5, Key: "/quote/acme", Body: []byte("165.38\n"),
		HasBody: true, ContentType: "text/plain", Digest: DigestOf([]byte("165.38\n")),
		ModTime: time.Unix(1700000000, 0)}.Encode())
	f.Add(Event{Kind: KindHello, Seq: 6, PayloadCap: DefaultPayloadCap}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 7, Key: "/e", Body: []byte{}, HasBody: true}.Encode())
	f.Add(Event{Kind: KindUpdate, Seq: 8, Key: "/s", Digest: "deadbeef00112233"}.Encode())
	f.Add("v1 2 1 0 - /k -")
	f.Add("v1 2 1 0 - %2D %2D")
	f.Add("v1 2 1 0 r %2Fa%20b grp")
	f.Add("v2 2 1 0 p /k - text%2Fplain deadbeef 0 aGVsbG8=")
	f.Add("v2 2 1 0 p /k - - - 0 -")
	f.Add("v2 2 1 0 - /k - - - 0 !!!hostile!!!")
	f.Add("v2 1 9 0 r - - - - 65536 -")
	f.Add("")
	f.Add("data: v1 2 1 0 - /k -")
	f.Add(strings.Repeat(" ", 64))

	f.Fuzz(func(t *testing.T, wire string) {
		ev, err := Decode(wire)
		if err != nil {
			return
		}
		switch ev.Kind {
		case KindHello, KindUpdate, KindHeartbeat:
		default:
			t.Fatalf("Decode(%q) accepted unknown kind %d", wire, ev.Kind)
		}
		if ev.Kind == KindUpdate && ev.Key == "" {
			t.Fatalf("Decode(%q) accepted an update without a key", wire)
		}
		if len(ev.Body) > 0 && !ev.HasBody {
			t.Fatalf("Decode(%q) produced a body without HasBody", wire)
		}
		if len(ev.Body) > MaxPayloadCap {
			t.Fatalf("Decode(%q) accepted a payload of %d bytes", wire, len(ev.Body))
		}
		re := ev.Encode()
		ev2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame (from %q) failed to decode: %v", wire, err)
		}
		if ev2.Kind != ev.Kind || ev2.Seq != ev.Seq || ev2.Key != ev.Key ||
			ev2.Group != ev.Group || ev2.Reset != ev.Reset || !ev2.ModTime.Equal(ev.ModTime) ||
			ev2.HasBody != ev.HasBody || !bytes.Equal(ev2.Body, ev.Body) ||
			ev2.ContentType != ev.ContentType || ev2.Digest != ev.Digest ||
			ev2.PayloadCap != ev.PayloadCap {
			t.Fatalf("round trip diverged: %+v vs %+v (wire %q)", ev, ev2, wire)
		}
		// Stripping is idempotent and always yields an encodable,
		// envelope-bounded-or-oversized frame — the exact degradation the
		// hub performs, so it must hold for every decodable event.
		st := ev.StripPayload()
		if st.HasBody || st.Body != nil || st.Digest != "" || st.ContentType != "" {
			t.Fatalf("StripPayload left payload state: %+v", st)
		}
		// The publish-time render must be byte-identical to the
		// per-subscriber Encode it replaced, for every decodable event
		// and every negotiated cap the write path can see.
		rend := Render(ev)
		if rend.Full() != re {
			t.Fatalf("Render full form %q != Encode %q", rend.Full(), re)
		}
		if want := st.Encode(); rend.Stripped() != want {
			t.Fatalf("Render stripped form %q != StripPayload().Encode() %q", rend.Stripped(), want)
		}
		for _, cap := range []int{0, 1, len(ev.Body) - 1, len(ev.Body), len(ev.Body) + 1, MaxPayloadCap} {
			want := re
			if ev.HasBody && (cap <= 0 || len(ev.Body) > cap) {
				want = st.Encode()
			}
			if got := rend.WireFor(cap); got != want {
				t.Fatalf("WireFor(%d) = %q, want %q (wire %q)", cap, got, want, wire)
			}
		}
	})
}

// FuzzInterestFilter hammers interest-set construction and matching
// with hostile terms and keys (escaped '?', literal '-', over-length
// prefixes). The invariants are the ones delivery correctness rides on:
//
//   - Construction, matching, union, coverage, and query encoding never
//     panic, whatever the terms.
//   - EncodeQuery always re-parses, and the re-parsed set never matches
//     LESS than the original (fail open: a round trip may widen — the
//     empty set encodes as match-all — but must never narrow, because a
//     narrowed declaration filters away updates the subscriber needs).
//   - Covers is sound: when s covers o, everything o matches, s matches.
//   - Union is complete: the union matches whatever either input does.
//   - Match-all matches everything; prefix matching is literal string
//     prefixing on the DECODED key, exactly strings.HasPrefix.
func FuzzInterestFilter(f *testing.F) {
	f.Add("/news/", "frontpage", "/news/a.html", "frontpage")
	f.Add("/stock%3Fsym=A", "", "/stock?sym=A", "")
	f.Add("-", "-", "-key", "-")
	f.Add(strings.Repeat("p", maxInterestTermLen+1), "g", "/k", "g")
	f.Add("", "", "/anything", "grp")
	f.Add("/a\x00b", "g h", "/a\x00bc", "g h")
	f.Fuzz(func(t *testing.T, prefix, group, key, evGroup string) {
		s := NewInterest([]string{prefix, "/fixed/"}, []string{group})
		matched := s.Matches(key, evGroup)
		// Literal prefix semantics on the decoded key.
		if prefix != "" && len(prefix) <= maxInterestTermLen &&
			strings.HasPrefix(key, prefix) && !matched {
			t.Fatalf("declared prefix %q did not match key %q", prefix, key)
		}
		if group != "" && len(group) <= maxInterestTermLen &&
			evGroup == group && !matched {
			t.Fatalf("declared group %q did not match event group %q", group, evGroup)
		}
		if InterestAll().Covers(s) != true || !InterestAll().Matches(key, evGroup) {
			t.Fatal("match-all must cover and match everything")
		}
		// Query round trip never narrows.
		q, err := url.ParseQuery(s.EncodeQuery())
		if err != nil {
			t.Fatalf("EncodeQuery(%v,%v) unparsable: %v", s.Prefixes(), s.Groups(), err)
		}
		s2 := ParseInterest(q)
		if matched && !s2.Matches(key, evGroup) {
			t.Fatalf("query round trip narrowed the set: %q lost (%q,%q)",
				s.EncodeQuery(), key, evGroup)
		}
		// Covers soundness and Union completeness against a second set.
		o := NewInterest([]string{key}, []string{evGroup})
		if s.Covers(o) && !o.IsEmpty() && o.Matches(key, evGroup) && !matched {
			t.Fatalf("Covers unsound: s covers o but o matches (%q,%q) and s does not", key, evGroup)
		}
		u := s.Union(o)
		if (matched || o.Matches(key, evGroup)) && !u.Matches(key, evGroup) {
			t.Fatalf("Union incomplete: inputs match (%q,%q), union does not", key, evGroup)
		}
		if !u.Covers(o) && !o.IsAll() {
			// Union must cover its inputs (conservatism aside, a union
			// containing o's exact terms always covers them).
			t.Fatalf("Union does not cover its input: %v ∪ %v", s.Prefixes(), o.Prefixes())
		}
	})
}
