package push

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// hubSink records subscriber callbacks.
type hubSink struct {
	mu      sync.Mutex
	events  []Event
	hellos  []Event
	resumed []bool
}

func (s *hubSink) onEvent(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *hubSink) onConnect(hello Event, resumed bool) {
	s.mu.Lock()
	s.hellos = append(s.hellos, hello)
	s.resumed = append(s.resumed, resumed)
	s.mu.Unlock()
}

func (s *hubSink) snapshot() (events, hellos []Event, resumed []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...),
		append([]Event(nil), s.hellos...),
		append([]bool(nil), s.resumed...)
}

// startHubSubscriber runs a Subscriber against url until test cleanup.
func startHubSubscriber(t *testing.T, url string, sink *hubSink) *Subscriber {
	t.Helper()
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        url,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sub.Run(ctx)
	return sub
}

// TestHubMidStreamResetReachesSubscriber is the regression test for the
// swallowed mid-stream hello: a hub that injects a Reset into a live
// stream (what a relaying proxy does when its own upstream dies) must
// drive the subscriber's OnConnect reconciliation and fast-forward its
// resume point — without the connection dropping.
func TestHubMidStreamResetReachesSubscriber(t *testing.T) {
	h := NewHub(HubConfig{})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	sink := &hubSink{}
	sub := startHubSubscriber(t, ts.URL, sink)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}
	h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("first event never arrived")
	}

	h.Reset()
	if !waitCond(t, 2*time.Second, func() bool { return sub.Resets() == 1 }) {
		t.Fatal("mid-stream Reset was swallowed")
	}
	_, hellos, resumed := sink.snapshot()
	if len(hellos) != 2 {
		t.Fatalf("OnConnect ran %d times, want 2 (connect + mid-stream Reset)", len(hellos))
	}
	if !hellos[1].Reset || !resumed[1] {
		t.Errorf("mid-stream reconciliation: hello=%+v resumed=%v", hellos[1], resumed[1])
	}
	if got := sub.LastSeq(); got != 1 {
		t.Errorf("LastSeq = %d after Reset at seq 1", got)
	}
	// The stream itself must survive: a Reset is an announcement, not a
	// disconnect.
	if c, d := sub.Connects(), sub.Disconnects(); c != 1 || d != 0 {
		t.Errorf("connects=%d disconnects=%d; the Reset dropped the stream", c, d)
	}

	// The stream stays usable after the Reset.
	h.Publish(Event{Kind: KindUpdate, Key: "/b"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 2 && evs[1].Key == "/b"
	}) {
		t.Fatal("stream dead after mid-stream Reset")
	}
}

// TestHubResetBarrierOnResume: a subscriber that was disconnected
// across a Reset cannot be healed by a contiguous replay of the hub's
// own ring — its resume must be answered with a Reset hello.
func TestHubResetBarrierOnResume(t *testing.T) {
	h := NewHub(HubConfig{})
	for i := 0; i < 3; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	}
	h.Reset() // barrier at seq 3

	cases := []struct {
		since     uint64
		wantReset bool
	}{
		{0, false}, // fresh subscriber: nothing to reconcile
		{2, true},  // behind the barrier
		{3, true},  // exactly at the barrier: the hole follows it
	}
	for _, c := range cases {
		hello, backlog, sub, ok := h.subscribe(c.since)
		if !ok {
			t.Fatalf("since=%d: unavailable", c.since)
		}
		if hello.Reset != c.wantReset {
			t.Errorf("since=%d: hello.Reset=%v want %v", c.since, hello.Reset, c.wantReset)
		}
		if hello.Reset && len(backlog) != 0 {
			t.Errorf("since=%d: Reset hello with %d backlog events", c.since, len(backlog))
		}
		h.unsubscribe(sub)
	}

	// Past the barrier normal replay resumes.
	h.Publish(Event{Kind: KindUpdate, Key: "/b"}) // seq 4
	h.Publish(Event{Kind: KindUpdate, Key: "/c"}) // seq 5
	hello, backlog, sub, _ := h.subscribe(4)
	defer h.unsubscribe(sub)
	if hello.Reset || len(backlog) != 1 || backlog[0].Seq != 5 {
		t.Errorf("post-barrier resume: hello=%+v backlog=%+v", hello, backlog)
	}
	if st := h.Stats(); st.Resets != 1 {
		t.Errorf("Stats().Resets = %d, want 1", st.Resets)
	}
}

// TestHubWriteDeadlineUnpinsStalledClient is the regression test for
// the unbounded frame write: a client that connects and never reads
// must not pin its handler goroutine inside the write after the hub
// terminates the subscription — the per-frame deadline bounds it.
func TestHubWriteDeadlineUnpinsStalledClient(t *testing.T) {
	h := NewHub(HubConfig{WriteTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// A raw TCP client that sends the request and never reads a byte,
	// so the response backs up through the kernel socket buffers.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: hub\r\nAccept: text/event-stream\r\n\r\n")
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	// Big frames fill the socket buffers fast; far more than the
	// subscriber channel capacity guarantees the hub terminates the
	// stalled stream while its handler is still trying to write.
	key := "/" + strings.Repeat("k", 2048)
	for i := 0; i < 4096; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: key})
	}
	if h.Subscribers() != 0 {
		t.Fatal("stalled subscriber still registered; Publish should have terminated it")
	}
	// The handler itself must unwind on the write-deadline timescale,
	// not the kernel-buffer one (the client never drains, so without
	// the deadline this would hang until the connection dies).
	if !waitCond(t, 3*time.Second, func() bool { return h.Stats().ActiveStreams == 0 }) {
		t.Fatalf("handler still pinned in the frame write %v after termination",
			3*time.Second)
	}
	if st := h.Stats(); st.SlowKills == 0 {
		t.Errorf("SlowKills = %d, want > 0", st.SlowKills)
	}
}

// TestHubStatsLagAndOccupancy: the backpressure surface an operator
// watches — replay occupancy and per-subscriber lag — must track what
// the hub actually holds.
func TestHubStatsLagAndOccupancy(t *testing.T) {
	h := NewHub(HubConfig{ReplayLen: 8})
	_, _, sub, ok := h.subscribe(0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)

	for i := 0; i < 10; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	}
	st := h.Stats()
	if st.Seq != 10 {
		t.Errorf("Seq = %d", st.Seq)
	}
	if st.ReplayLen != 8 || st.ReplayCap != 8 {
		t.Errorf("replay occupancy %d/%d, want 8/8", st.ReplayLen, st.ReplayCap)
	}
	// No serve loop is draining the subscription, so the subscriber's
	// wire position is still its subscribe-time baseline (seq 0).
	if st.Subscribers != 1 || len(st.Lags) != 1 || st.MaxLag != 10 {
		t.Errorf("lag accounting: %+v", st)
	}

	// An oversized event is dropped, not buffered, not sequenced.
	h.Publish(Event{Kind: KindUpdate, Key: "/" + strings.Repeat("x", MaxFrameLen)})
	if st := h.Stats(); st.Oversized != 1 || st.Seq != 10 {
		t.Errorf("oversized accounting: %+v", st)
	}
}

func TestHubRejectsNonGET(t *testing.T) {
	h := NewHub(HubConfig{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	for _, method := range []string{http.MethodPost, http.MethodHead, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s = %d, want 405", method, resp.StatusCode)
		}
	}
	if n := h.Subscribers(); n != 0 {
		t.Errorf("%d subscriptions leaked by non-GET requests", n)
	}
}

// BenchmarkHubPublishFanout measures the push fan-out hot path: one
// publisher broadcasting to a fleet of draining subscribers.
func BenchmarkHubPublishFanout(b *testing.B) {
	h := NewHub(HubConfig{})
	const fleet = 16
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		_, _, sub, ok := h.subscribe(0)
		if !ok {
			b.Fatal("subscribe failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-sub.ch:
				case <-sub.done:
					return
				}
			}
		}()
		defer h.unsubscribe(sub)
	}
	ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(ev)
	}
	b.StopTimer()
	h.KillAll()
	wg.Wait()
}
