package push

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// hubSink records subscriber callbacks.
type hubSink struct {
	mu      sync.Mutex
	events  []Event
	hellos  []Event
	resumed []bool
}

func (s *hubSink) onEvent(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *hubSink) onConnect(hello Event, resumed bool) {
	s.mu.Lock()
	s.hellos = append(s.hellos, hello)
	s.resumed = append(s.resumed, resumed)
	s.mu.Unlock()
}

func (s *hubSink) snapshot() (events, hellos []Event, resumed []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...),
		append([]Event(nil), s.hellos...),
		append([]bool(nil), s.resumed...)
}

// startHubSubscriber runs a Subscriber against url until test cleanup.
func startHubSubscriber(t *testing.T, url string, sink *hubSink) *Subscriber {
	return startHubSubscriberCap(t, url, sink, 0)
}

// startHubSubscriberCap is startHubSubscriber with payload negotiation.
func startHubSubscriberCap(t *testing.T, url string, sink *hubSink, payloadCap int) *Subscriber {
	t.Helper()
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        url,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		PayloadCap: payloadCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sub.Run(ctx)
	return sub
}

// TestHubMidStreamResetReachesSubscriber is the regression test for the
// swallowed mid-stream hello: a hub that injects a Reset into a live
// stream (what a relaying proxy does when its own upstream dies) must
// drive the subscriber's OnConnect reconciliation and fast-forward its
// resume point — without the connection dropping.
func TestHubMidStreamResetReachesSubscriber(t *testing.T) {
	h := NewHub(HubConfig{})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close) // registered before the subscriber's cancel: LIFO stops the client first

	sink := &hubSink{}
	sub := startHubSubscriber(t, ts.URL, sink)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}
	h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("first event never arrived")
	}

	h.Reset()
	if !waitCond(t, 2*time.Second, func() bool { return sub.Resets() == 1 }) {
		t.Fatal("mid-stream Reset was swallowed")
	}
	_, hellos, resumed := sink.snapshot()
	if len(hellos) != 2 {
		t.Fatalf("OnConnect ran %d times, want 2 (connect + mid-stream Reset)", len(hellos))
	}
	if !hellos[1].Reset || !resumed[1] {
		t.Errorf("mid-stream reconciliation: hello=%+v resumed=%v", hellos[1], resumed[1])
	}
	if got := sub.LastSeq(); got != 1 {
		t.Errorf("LastSeq = %d after Reset at seq 1", got)
	}
	// The stream itself must survive: a Reset is an announcement, not a
	// disconnect.
	if c, d := sub.Connects(), sub.Disconnects(); c != 1 || d != 0 {
		t.Errorf("connects=%d disconnects=%d; the Reset dropped the stream", c, d)
	}

	// The stream stays usable after the Reset.
	h.Publish(Event{Kind: KindUpdate, Key: "/b"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 2 && evs[1].Key == "/b"
	}) {
		t.Fatal("stream dead after mid-stream Reset")
	}
}

// TestHubResetBarrierOnResume: a subscriber that was disconnected
// across a Reset cannot be healed by a contiguous replay of the hub's
// own ring — its resume must be answered with a Reset hello.
func TestHubResetBarrierOnResume(t *testing.T) {
	h := NewHub(HubConfig{})
	for i := 0; i < 3; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	}
	h.Reset() // barrier at seq 3

	cases := []struct {
		since     uint64
		wantReset bool
	}{
		{0, false}, // fresh subscriber: nothing to reconcile
		{2, true},  // behind the barrier
		{3, true},  // exactly at the barrier: the hole follows it
	}
	for _, c := range cases {
		hello, sub, ok := h.subscribe(c.since, 0, InterestAll(), nil)
		if !ok {
			t.Fatalf("since=%d: unavailable", c.since)
		}
		if hello.Reset != c.wantReset {
			t.Errorf("since=%d: hello.Reset=%v want %v", c.since, hello.Reset, c.wantReset)
		}
		if backlog := fetchAll(h, sub); hello.Reset && len(backlog) != 0 {
			t.Errorf("since=%d: Reset hello with %d backlog events", c.since, len(backlog))
		}
		h.unsubscribe(sub)
	}

	// Past the barrier normal replay resumes.
	h.Publish(Event{Kind: KindUpdate, Key: "/b"}) // seq 4
	h.Publish(Event{Kind: KindUpdate, Key: "/c"}) // seq 5
	hello, sub, _ := h.subscribe(4, 0, InterestAll(), nil)
	defer h.unsubscribe(sub)
	backlog := fetchAll(h, sub)
	if hello.Reset || len(backlog) != 1 || backlog[0].Seq != 5 {
		t.Errorf("post-barrier resume: hello=%+v backlog=%+v", hello, backlog)
	}
	if st := h.Stats(); st.Resets != 1 {
		t.Errorf("Stats().Resets = %d, want 1", st.Resets)
	}
}

// TestHubWriteDeadlineUnpinsStalledClient is the regression test for
// the unbounded frame write: a client that connects and never reads
// must not pin its handler goroutine inside the write after the hub
// terminates the subscription — the per-frame deadline bounds it.
func TestHubWriteDeadlineUnpinsStalledClient(t *testing.T) {
	h := NewHub(HubConfig{WriteTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// A raw TCP client that sends the request and never reads a byte,
	// so the response backs up through the kernel socket buffers.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: hub\r\nAccept: text/event-stream\r\n\r\n")
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	// Big frames fill the socket buffers fast; far more than the
	// subscriber channel capacity guarantees the hub terminates the
	// stalled stream while its handler is still trying to write.
	key := "/" + strings.Repeat("k", 2048)
	for i := 0; i < 4096; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: key})
	}
	if h.Subscribers() != 0 {
		t.Fatal("stalled subscriber still registered; Publish should have terminated it")
	}
	// The handler itself must unwind on the write-deadline timescale,
	// not the kernel-buffer one (the client never drains, so without
	// the deadline this would hang until the connection dies).
	if !waitCond(t, 3*time.Second, func() bool { return h.Stats().ActiveStreams == 0 }) {
		t.Fatalf("handler still pinned in the frame write %v after termination",
			3*time.Second)
	}
	if st := h.Stats(); st.SlowKills == 0 {
		t.Errorf("SlowKills = %d, want > 0", st.SlowKills)
	}
}

// TestHubStatsLagAndOccupancy: the backpressure surface an operator
// watches — replay occupancy and per-subscriber lag — must track what
// the hub actually holds.
func TestHubStatsLagAndOccupancy(t *testing.T) {
	h := NewHub(HubConfig{ReplayLen: 8})
	_, sub, ok := h.subscribe(0, 0, InterestAll(), nil)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)

	for i := 0; i < 10; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: "/a"})
	}
	st := h.Stats()
	if st.Seq != 10 {
		t.Errorf("Seq = %d", st.Seq)
	}
	if st.ReplayLen != 8 || st.ReplayCap != 8 {
		t.Errorf("replay occupancy %d/%d, want 8/8", st.ReplayLen, st.ReplayCap)
	}
	// No serve loop is draining the subscription, so the subscriber's
	// wire position is still its subscribe-time baseline (seq 0).
	if st.Subscribers != 1 || len(st.Lags) != 1 || st.MaxLag != 10 {
		t.Errorf("lag accounting: %+v", st)
	}

	// An oversized event is dropped, not buffered, not sequenced.
	h.Publish(Event{Kind: KindUpdate, Key: "/" + strings.Repeat("x", MaxFrameLen)})
	if st := h.Stats(); st.Oversized != 1 || st.Seq != 10 {
		t.Errorf("oversized accounting: %+v", st)
	}
}

func TestHubRejectsNonGET(t *testing.T) {
	h := NewHub(HubConfig{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	for _, method := range []string{http.MethodPost, http.MethodHead, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s = %d, want 405", method, resp.StatusCode)
		}
	}
	if n := h.Subscribers(); n != 0 {
		t.Errorf("%d subscriptions leaked by non-GET requests", n)
	}
}

// TestHubPayloadNegotiationPerStream: one hub, three subscriber
// profiles — full payload cap, tiny cap, no negotiation at all — must
// each receive every event, the first with the body, the others
// degraded to invalidation-only frames at write time. No stream may
// ever have to skip a frame the hub itself emitted (the satellite
// regression alongside PR 4's oversized-line fix).
func TestHubPayloadNegotiationPerStream(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 4096})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	full, tiny, plain := &hubSink{}, &hubSink{}, &hubSink{}
	fullSub := startHubSubscriberCap(t, ts.URL, full, 4096)
	tinySub := startHubSubscriberCap(t, ts.URL, tiny, 64)
	plainSub := startHubSubscriber(t, ts.URL, plain)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 3 }) {
		t.Fatal("subscribers never registered")
	}

	body := bytes.Repeat([]byte("v"), 512)
	h.Publish(Event{Kind: KindUpdate, Key: "/a", ContentType: "text/plain",
		Body: body, HasBody: true, Digest: DigestOf(body)})

	for _, c := range []struct {
		name     string
		sink     *hubSink
		wantBody bool
	}{{"full", full, true}, {"tiny", tiny, false}, {"plain", plain, false}} {
		if !waitCond(t, 2*time.Second, func() bool {
			evs, _, _ := c.sink.snapshot()
			return len(evs) == 1
		}) {
			t.Fatalf("%s: event never arrived", c.name)
		}
		evs, hellos, _ := c.sink.snapshot()
		ev := evs[0]
		if ev.Key != "/a" || ev.Seq != 1 {
			t.Errorf("%s: event = %+v", c.name, ev)
		}
		if ev.HasBody != c.wantBody {
			t.Errorf("%s: HasBody = %v, want %v", c.name, ev.HasBody, c.wantBody)
		}
		if c.wantBody && (!bytes.Equal(ev.Body, body) || ev.Digest != DigestOf(body) ||
			ev.ContentType != "text/plain") {
			t.Errorf("%s: payload did not survive the wire: %+v", c.name, ev)
		}
		if len(hellos) != 1 {
			t.Fatalf("%s: %d hellos", c.name, len(hellos))
		}
	}
	// The hello echoes the negotiated cap: the full profile gets what it
	// asked for, the tiny one its own smaller cap, the plain one zero.
	if _, hellos, _ := full.snapshot(); hellos[0].PayloadCap != 4096 {
		t.Errorf("full hello cap = %d", hellos[0].PayloadCap)
	}
	if _, hellos, _ := tiny.snapshot(); hellos[0].PayloadCap != 64 {
		t.Errorf("tiny hello cap = %d", hellos[0].PayloadCap)
	}
	if _, hellos, _ := plain.snapshot(); hellos[0].PayloadCap != 0 {
		t.Errorf("plain hello cap = %d", hellos[0].PayloadCap)
	}
	// No stream skipped or client-stripped anything: the degrade
	// happened hub-side, at encode time.
	for name, sub := range map[string]*Subscriber{"full": fullSub, "tiny": tinySub, "plain": plainSub} {
		if sub.SkippedFrames() != 0 || sub.OverCapPayloads() != 0 {
			t.Errorf("%s: skipped=%d overcap=%d; the hub emitted a frame it should have degraded",
				name, sub.SkippedFrames(), sub.OverCapPayloads())
		}
	}
}

// TestHubPublishDegradesOverCapPayload: a payload beyond the hub's own
// cap must not drop the event (that would un-announce a real update) —
// it degrades to an invalidation-only frame at publish time and still
// consumes a sequence number.
func TestHubPublishDegradesOverCapPayload(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 256})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	sink := &hubSink{}
	startHubSubscriberCap(t, ts.URL, sink, 256)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	h.Publish(Event{Kind: KindUpdate, Key: "/fat", Body: make([]byte, 1024), HasBody: true})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("degraded event never arrived")
	}
	evs, _, _ := sink.snapshot()
	if evs[0].Key != "/fat" || evs[0].HasBody || evs[0].Seq != 1 {
		t.Errorf("event = %+v, want invalidation-only seq 1", evs[0])
	}
	st := h.Stats()
	if st.Degraded != 1 || st.Oversized != 0 {
		t.Errorf("Degraded=%d Oversized=%d, want 1/0", st.Degraded, st.Oversized)
	}
	// A hub with no payload cap at all (the pre-v2 default) degrades
	// every payload.
	h2 := NewHub(HubConfig{})
	h2.Publish(Event{Kind: KindUpdate, Key: "/x", Body: []byte("b"), HasBody: true})
	if st := h2.Stats(); st.Degraded != 1 || st.Seq != 1 {
		t.Errorf("capless hub: %+v", st)
	}
}

// TestHubDegradesOverlongV2Envelope: a near-limit key whose bare
// invalidation fits but whose v2 envelope (ctype+digest fields) does
// not must be degraded to the v1 form at publish — never dropped (the
// update is real) and never emitted as a frame subscribers must reject
// (the reconnect livelock the envelope bound exists to prevent).
func TestHubDegradesOverlongV2Envelope(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 4096})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	sink := &hubSink{}
	sub := startHubSubscriberCap(t, ts.URL, sink, 4096)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	key := "/" + strings.Repeat("k", MaxFrameLen-20)
	body := []byte("165.38\n")
	h.Publish(Event{Kind: KindUpdate, Key: key, Body: body, HasBody: true,
		ContentType: "text/plain; charset=utf-8", Digest: DigestOf(body)})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatalf("event never arrived (stats %+v, sub disconnects %d)", h.Stats(), sub.Disconnects())
	}
	evs, _, _ := sink.snapshot()
	if evs[0].Key != key || evs[0].HasBody || evs[0].Seq != 1 {
		t.Errorf("event = {Key len %d, HasBody %v, Seq %d}; want the degraded invalidation",
			len(evs[0].Key), evs[0].HasBody, evs[0].Seq)
	}
	st := h.Stats()
	if st.Degraded != 1 || st.Oversized != 0 {
		t.Errorf("Degraded=%d Oversized=%d, want 1/0", st.Degraded, st.Oversized)
	}
	if sub.Disconnects() != 0 || sub.SkippedFrames() != 0 {
		t.Errorf("stream suffered (disconnects=%d skipped=%d); the hub emitted a rejectable frame",
			sub.Disconnects(), sub.SkippedFrames())
	}
}

// TestHubSanitizesUnframeableDigest: a publisher-supplied digest that
// Encode cannot frame (spaces shift the field count, non-hex fails the
// decoder) must be stripped at publish — it would otherwise sit in the
// replay ring as a frame every subscriber rejects, the poison-frame
// reconnect livelock.
func TestHubSanitizesUnframeableDigest(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 4096})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	sink := &hubSink{}
	sub := startHubSubscriberCap(t, ts.URL, sink, 4096)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	for _, digest := range []string{"bad digest", "zz", strings.Repeat("a", 65)} {
		h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: []byte("b"), HasBody: true, Digest: digest})
	}
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 3
	}) {
		t.Fatalf("sanitized events never arrived (stats %+v, disconnects %d)", h.Stats(), sub.Disconnects())
	}
	evs, _, _ := sink.snapshot()
	for i, ev := range evs {
		if ev.Digest != "" || ev.HasBody || ev.Key != "/obj" {
			t.Errorf("event %d = %+v, want a digest-less invalidation", i, ev)
		}
	}
	if st := h.Stats(); st.Degraded != 3 || st.Oversized != 0 {
		t.Errorf("Degraded=%d Oversized=%d, want 3/0", st.Degraded, st.Oversized)
	}
	if sub.Disconnects() != 0 {
		t.Errorf("stream died %d times on sanitized frames", sub.Disconnects())
	}
}

// TestHubDropCountsOversizedNotDegraded: an event that is both over the
// payload cap and, stripped, over the envelope limit is one DROPPED
// event — it must count in Oversized only, not also in Degraded
// ("degraded" promises the event survived as an invalidation).
func TestHubDropCountsOversizedNotDegraded(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 16})
	h.Publish(Event{
		Kind:    KindUpdate,
		Key:     "/" + strings.Repeat("k", MaxFrameLen+16),
		Body:    make([]byte, 64),
		HasBody: true,
	})
	st := h.Stats()
	if st.Oversized != 1 || st.Degraded != 0 || st.Seq != 0 {
		t.Errorf("Oversized=%d Degraded=%d Seq=%d, want 1/0/0", st.Oversized, st.Degraded, st.Seq)
	}
}

// TestHubStripsEmptyPayloadForPlainStreams: an empty-body payload
// (HasBody, len 0) must still be degraded for streams that negotiated
// no payloads — a v1-only consumer cannot parse a 'p'-flagged frame.
func TestHubStripsEmptyPayloadForPlainStreams(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 4096})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	plain, value := &hubSink{}, &hubSink{}
	startHubSubscriber(t, ts.URL, plain)
	startHubSubscriberCap(t, ts.URL, value, 4096)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 2 }) {
		t.Fatal("never connected")
	}

	h.Publish(Event{Kind: KindUpdate, Key: "/cleared", Body: []byte{}, HasBody: true,
		Digest: DigestOf(nil)})
	for name, sink := range map[string]*hubSink{"plain": plain, "value": value} {
		if !waitCond(t, 2*time.Second, func() bool {
			evs, _, _ := sink.snapshot()
			return len(evs) == 1
		}) {
			t.Fatalf("%s: event never arrived", name)
		}
	}
	if evs, _, _ := plain.snapshot(); evs[0].HasBody {
		t.Errorf("plain stream received a payload frame: %+v", evs[0])
	}
	if evs, _, _ := value.snapshot(); !evs[0].HasBody || len(evs[0].Body) != 0 {
		t.Errorf("value stream lost the empty-body payload: %+v", evs[0])
	}
}

// TestHubReplayRingByteBudget: the replay ring must be bounded by bytes
// as well as count — a burst of fat payloads trims history instead of
// growing the hub — and what stays in the ring replays payloads
// faithfully.
func TestHubReplayRingByteBudget(t *testing.T) {
	// ~1KB per event (body + envelope overhead); budget fits ~4.
	h := NewHub(HubConfig{PayloadCap: 4096, ReplayLen: 1024, ReplayBytes: 4096})
	bodyFor := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 900) }
	for i := 0; i < 12; i++ {
		b := bodyFor(i)
		h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: b, HasBody: true, Digest: DigestOf(b)})
	}
	st := h.Stats()
	if st.ReplayBytes > st.ReplayByteCap {
		t.Errorf("ring over budget: %d > %d", st.ReplayBytes, st.ReplayByteCap)
	}
	if st.ReplayLen >= 12 || st.ReplayLen < 1 {
		t.Errorf("ReplayLen = %d; the byte budget did not trim the ring", st.ReplayLen)
	}

	// A resume within the surviving window replays payloads verbatim
	// (the ring holds pre-rendered wire forms; decode the full form to
	// check what a payload-negotiated stream would receive).
	hello, sub, ok := h.subscribe(uint64(12-st.ReplayLen), 4096, InterestAll(), nil)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)
	if hello.Reset {
		t.Fatal("in-window resume got a Reset")
	}
	backlog := fetchAll(h, sub)
	if len(backlog) != st.ReplayLen {
		t.Fatalf("backlog %d events, want %d", len(backlog), st.ReplayLen)
	}
	for i, re := range backlog {
		want := bodyFor(12 - st.ReplayLen + i)
		ev, err := Decode(re.WireFor(4096))
		if err != nil {
			t.Fatalf("backlog[%d] does not decode: %v", i, err)
		}
		if !ev.HasBody || !bytes.Equal(ev.Body, want) || ev.Digest != DigestOf(want) {
			t.Fatalf("backlog[%d] payload not replayed faithfully: %+v", i, ev)
		}
	}

	// A resume from before the trimmed-off history must Reset: the ring
	// cannot prove contiguity it no longer holds.
	hello2, sub2, _ := h.subscribe(1, 4096, InterestAll(), nil)
	defer h.unsubscribe(sub2)
	if !hello2.Reset {
		t.Error("out-of-window resume not Reset")
	}
	if h.Stats().ResumeHoles == 0 {
		t.Error("ResumeHoles not counted")
	}
}

// fetchAll pulls every frame the hub currently holds for sub, advancing
// its cursor — the test-side analogue of one serve-loop catch-up sweep.
func fetchAll(h *Hub, sub *hubSub) []RenderedEvent {
	var out []RenderedEvent
	for {
		batch, boundary, gen, killed := h.fetch(sub, nil)
		if killed {
			return out
		}
		out = append(out, batch...)
		progressed := len(batch) > 0 || boundary > sub.cursor.Load()
		sub.cursor.Store(boundary)
		sub.resetGen = gen
		if !progressed {
			return out
		}
	}
}

// drainSub runs the pull loop a serve goroutine would: wait for the
// publish notification, fetch a batch, advance the cursor, repeat until
// the subscriber is terminated.
func drainSub(h *Hub, sub *hubSub, wg *sync.WaitGroup) {
	defer wg.Done()
	scratch := make([]RenderedEvent, 0, fetchBatchLimit+1)
	for {
		ch := h.getNotify()
		batch, boundary, gen, killed := h.fetch(sub, scratch[:0])
		if killed {
			return
		}
		if len(batch) > 0 || boundary > sub.cursor.Load() {
			sub.cursor.Store(boundary)
			sub.resetGen = gen
			continue
		}
		select {
		case <-ch:
		case <-sub.done:
			return
		}
	}
}

// drainHubFleet registers fleet subscribers with the given interest and
// pull-drains them until KillAll; it returns a wait func for the drain
// goroutines.
func drainHubFleet(b *testing.B, h *Hub, fleet int, interest InterestSet) func() {
	b.Helper()
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		_, sub, ok := h.subscribe(0, 0, interest, nil)
		if !ok {
			b.Fatal("subscribe failed")
		}
		wg.Add(1)
		go drainSub(h, sub, &wg)
		b.Cleanup(func() { h.unsubscribe(sub) })
	}
	return wg.Wait
}

// BenchmarkHubPublishFanout measures the push fan-out hot path: one
// publisher broadcasting to fleets of draining subscribers. The
// allocation count must be INDEPENDENT of the fleet size — the event is
// rendered once at publish into the partitioned ring, and subscribers
// pull batches on their own goroutines
// (TestPublishAllocsIndependentOfFanout pins this).
func BenchmarkHubPublishFanout(b *testing.B) {
	for _, fleet := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs=%d", fleet), func(b *testing.B) {
			h := NewHub(HubConfig{})
			wait := drainHubFleet(b, h, fleet, InterestAll())
			ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish(ev)
			}
			b.StopTimer()
			h.KillAll()
			wait()
		})
	}
}

// BenchmarkHubPublishFanoutFiltered measures fan-out through interest
// filtering: a fleet of subscribers that declared a disjoint prefix, so
// every published frame lands in a partition none of them walk — the
// publish cost is one render plus the ring append, with zero wire
// writes. (The serve-side skip itself is exercised by the HTTP-path
// tests; here the subscribers never drain through ServeHTTP, so this
// bounds the publish half of the filtered path.)
func BenchmarkHubPublishFanoutFiltered(b *testing.B) {
	h := NewHub(HubConfig{})
	wait := drainHubFleet(b, h, 16, NewInterest([]string{"/other"}, nil))
	ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(ev)
	}
	b.StopTimer()
	h.KillAll()
	wait()
}

// TestPublishAllocsIndependentOfFanout pins the render-once contract:
// the allocations of one Publish must not grow with the subscriber
// count, because Publish does zero per-subscriber work — subscribers
// pull from the ring on their own goroutines.
func TestPublishAllocsIndependentOfFanout(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation perturbs process-wide allocation counts")
	}
	allocsWith := func(fleet int) float64 {
		// A large SubscriberBuffer keeps the amortized slow-consumer
		// scan from killing the idle subscribers mid-measurement.
		h := NewHub(HubConfig{SubscriberBuffer: 1 << 20})
		subs := make([]*hubSub, fleet)
		for i := range subs {
			// No drain goroutines: nothing concurrent disturbs the
			// allocation count; the idle cursors just fall behind.
			_, sub, ok := h.subscribe(0, 0, InterestAll(), nil)
			if !ok {
				t.Fatal("subscribe failed")
			}
			subs[i] = sub
		}
		defer func() {
			for _, sub := range subs {
				h.unsubscribe(sub)
			}
		}()
		ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g"}
		return testing.AllocsPerRun(50, func() {
			h.Publish(ev)
		})
	}
	one, many := allocsWith(1), allocsWith(128)
	if many > one {
		t.Errorf("Publish allocates %.1f/op with 128 subscribers vs %.1f/op with 1: fan-out is re-encoding per subscriber", many, one)
	}
}

// BenchmarkHubPublishFanoutPayload is the value-carrying variant: the
// same fan-out with a 512-byte body riding every event, through the
// byte-budgeted replay ring.
func BenchmarkHubPublishFanoutPayload(b *testing.B) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap})
	const fleet = 16
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		_, sub, ok := h.subscribe(0, DefaultPayloadCap, InterestAll(), nil)
		if !ok {
			b.Fatal("subscribe failed")
		}
		wg.Add(1)
		go drainSub(h, sub, &wg)
		defer h.unsubscribe(sub)
	}
	body := bytes.Repeat([]byte("v"), 512)
	ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g",
		Body: body, HasBody: true, Digest: DigestOf(body)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(ev)
	}
	b.StopTimer()
	if st := h.Stats(); st.Degraded != 0 {
		b.Fatalf("payloads degraded: %+v", st)
	}
	h.KillAll()
	wg.Wait()
}
