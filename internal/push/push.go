// Package push defines the origin-driven invalidation channel that turns
// the paper's pure-pull Δt/mutual-consistency machinery into a hybrid
// push–pull system. The paper's proxy learns about updates only by
// polling on its TTR schedule, so consistency costs poll traffic even
// when nothing changes; with a push channel the origin streams per-object
// update notifications and the proxy polls lazily, falling back to pure
// paper-mode polling the moment the channel degrades.
//
// The package has three parts:
//
//   - The wire protocol: a versioned, single-line event encoding
//     (Event, Encode, Decode) deliberately shaped for fuzzing — Decode
//     accepts arbitrary bytes and must never panic. Events are carried
//     over an SSE-style HTTP stream (text/event-stream).
//   - The Hub: the server half (hub.go) — one sequence space, a bounded
//     replay ring, slow-subscriber termination, per-subscriber lag
//     accounting, deadline-bounded frame writes, and mid-stream Reset
//     announcement. The origin's /events endpoint and every relaying
//     proxy's downstream endpoint are the same Hub.
//   - The Subscriber: a client that consumes the stream, survives
//     disconnects with capped exponential backoff, resumes from the last
//     processed sequence number, detects dead connections via a
//     heartbeat timeout, skips oversized lines instead of dying on
//     them, and treats a mid-stream hello/Reset as a reconnect-grade
//     reconciliation without dropping the stream.
//
// Delivery semantics are at-least-once with ordered sequence numbers:
// the origin assigns every update event a monotonically increasing Seq,
// keeps a bounded replay buffer, and a reconnecting subscriber passes
// ?since=<seq> to receive the events it missed. When the gap exceeds the
// buffer the server's hello frame carries Reset=true, telling the
// consumer its view is no longer contiguous and it must revalidate by
// polling (the proxy runs its staleness-bounded catch-up sweep).
package push

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// ProtocolVersion is the wire-format version emitted by Encode. Decode
// rejects frames with any other version so incompatible future formats
// fail loudly instead of being half-parsed.
const ProtocolVersion = 1

// MaxFrameLen bounds the encoded frame size Decode accepts. Keys and
// group names are URL paths and tokens; anything larger is hostile.
const MaxFrameLen = 4096

// Kind discriminates event frames.
type Kind uint8

const (
	// KindHello is the first frame of every stream: Seq carries the
	// server's current (last assigned) sequence number and Reset reports
	// whether the requested resume point fell outside the replay buffer.
	KindHello Kind = 1
	// KindUpdate announces that the object at Key was modified at
	// ModTime. Seq is the event's position in the origin's stream.
	KindUpdate Kind = 2
	// KindHeartbeat is a liveness frame carrying the current Seq; it
	// lets subscribers distinguish a quiet origin from a dead connection.
	KindHeartbeat Kind = 3
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindUpdate:
		return "update"
	case KindHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one frame of the invalidation stream.
type Event struct {
	// Kind discriminates the frame.
	Kind Kind
	// Seq is the origin-assigned sequence number. Update events carry
	// their own strictly increasing Seq; hello and heartbeat frames
	// carry the last assigned Seq at the time they were written.
	Seq uint64
	// Key is the object's path (plus query, if any) at the origin.
	// Meaningful for update events only.
	Key string
	// Group is the object's mutual-consistency group, when it has one.
	Group string
	// ModTime is the modification instant announced by an update event.
	ModTime time.Time
	// Reset is set on a hello frame when the subscriber's resume point
	// is older than the replay buffer: events were irrecoverably missed
	// and the consumer must revalidate by polling.
	Reset bool
}

// Errors returned by Decode.
var (
	ErrFrameTooLong = errors.New("push: frame exceeds MaxFrameLen")
	ErrBadFrame     = errors.New("push: malformed frame")
	ErrBadVersion   = errors.New("push: unsupported protocol version")
)

// Encode renders the event as a single line:
//
//	v1 <kind> <seq> <modtime-unixnano> <flags> <key> <group>
//
// Key and group are query-escaped so they can never contain the space
// separator; empty fields encode as "-". The format is
// newline-free by construction, which is what lets one frame travel as
// one SSE data line.
func (e Event) Encode() string {
	key, group := "-", "-"
	if e.Key != "" {
		key = escapeField(e.Key)
	}
	if e.Group != "" {
		group = escapeField(e.Group)
	}
	var mod int64
	if !e.ModTime.IsZero() {
		mod = e.ModTime.UnixNano()
	}
	flags := "-"
	if e.Reset {
		flags = "r"
	}
	return fmt.Sprintf("v%d %d %d %d %s %s %s",
		ProtocolVersion, uint8(e.Kind), e.Seq, mod, flags, key, group)
}

// escapeField query-escapes a key or group for the wire. A literal "-"
// survives QueryEscape unchanged but collides with the empty-field
// sentinel, so it is forced into escaped form (QueryEscape itself never
// emits "%2D", so decoding stays unambiguous).
func escapeField(s string) string {
	esc := url.QueryEscape(s)
	if esc == "-" {
		return "%2D"
	}
	return esc
}

// Oversized reports whether the event's encoded frame exceeds
// MaxFrameLen. An oversized update must never enter a stream or replay
// buffer — subscribers reject such frames, so one poisonous buffered
// frame would livelock every reconnect — and a proxy caching an object
// whose key cannot ride the channel must keep pure-polling freshness
// for it (no TTR stretch) because its updates will never be announced.
func (e Event) Oversized() bool { return len(e.Encode()) > MaxFrameLen }

// Decode parses a frame produced by Encode. It never panics on malformed
// input: any deviation from the format yields an error. The ModTime of a
// frame encoding nanos 0 is the zero time.
func Decode(s string) (Event, error) {
	if len(s) > MaxFrameLen {
		return Event{}, ErrFrameTooLong
	}
	fields := strings.Split(s, " ")
	if len(fields) != 7 {
		return Event{}, fmt.Errorf("%w: %d fields, want 7", ErrBadFrame, len(fields))
	}
	if !strings.HasPrefix(fields[0], "v") {
		return Event{}, fmt.Errorf("%w: missing version tag", ErrBadFrame)
	}
	ver, err := strconv.ParseUint(fields[0][1:], 10, 16)
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad version %q", ErrBadFrame, fields[0])
	}
	if ver != ProtocolVersion {
		return Event{}, fmt.Errorf("%w: v%d", ErrBadVersion, ver)
	}

	var e Event
	kind, err := strconv.ParseUint(fields[1], 10, 8)
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad kind %q", ErrBadFrame, fields[1])
	}
	switch Kind(kind) {
	case KindHello, KindUpdate, KindHeartbeat:
		e.Kind = Kind(kind)
	default:
		return Event{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, kind)
	}
	if e.Seq, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
		return Event{}, fmt.Errorf("%w: bad seq %q", ErrBadFrame, fields[2])
	}
	nanos, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad modtime %q", ErrBadFrame, fields[3])
	}
	if nanos != 0 {
		e.ModTime = time.Unix(0, nanos)
	}
	switch fields[4] {
	case "-":
	case "r":
		e.Reset = true
	default:
		return Event{}, fmt.Errorf("%w: bad flags %q", ErrBadFrame, fields[4])
	}
	if fields[5] != "-" {
		if e.Key, err = url.QueryUnescape(fields[5]); err != nil {
			return Event{}, fmt.Errorf("%w: bad key %q", ErrBadFrame, fields[5])
		}
	}
	if fields[6] != "-" {
		if e.Group, err = url.QueryUnescape(fields[6]); err != nil {
			return Event{}, fmt.Errorf("%w: bad group %q", ErrBadFrame, fields[6])
		}
	}
	// Escaped fields round-trip through QueryUnescape, but an unescaped
	// space or newline smuggled through %-encoding is fine — the field
	// boundary was already fixed by the split above. What must not pass
	// is an empty key masquerading as present.
	if e.Kind == KindUpdate && e.Key == "" {
		return Event{}, fmt.Errorf("%w: update without key", ErrBadFrame)
	}
	return e, nil
}
