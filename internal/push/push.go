// Package push defines the origin-driven invalidation channel that turns
// the paper's pure-pull Δt/mutual-consistency machinery into a hybrid
// push–pull system. The paper's proxy learns about updates only by
// polling on its TTR schedule, so consistency costs poll traffic even
// when nothing changes; with a push channel the origin streams per-object
// update notifications and the proxy polls lazily, falling back to pure
// paper-mode polling the moment the channel degrades.
//
// The package has three parts:
//
//   - The wire protocol: a versioned, single-line event encoding
//     (Event, Encode, Decode) deliberately shaped for fuzzing — Decode
//     accepts arbitrary bytes and must never panic. Events are carried
//     over an SSE-style HTTP stream (text/event-stream). Version 1
//     frames carry only the modification instant (pure invalidation);
//     version 2 frames can additionally carry the object's new body
//     (base64-framed), its content type, a content digest, and — on
//     hello frames — the stream's negotiated payload size cap.
//   - The Hub: the server half (hub.go) — one sequence space, a
//     byte-budgeted replay ring, slow-subscriber termination,
//     per-subscriber lag accounting, deadline-bounded frame writes,
//     per-stream payload-cap negotiation, and mid-stream Reset
//     announcement. The origin's /events endpoint and every relaying
//     proxy's downstream endpoint are the same Hub.
//   - The Subscriber: a client that consumes the stream, survives
//     disconnects with capped exponential backoff, resumes from the last
//     processed sequence number, detects dead connections via a
//     heartbeat timeout, skips oversized lines instead of dying on
//     them, and treats a mid-stream hello/Reset as a reconnect-grade
//     reconciliation without dropping the stream.
//
// Delivery semantics are at-least-once with ordered sequence numbers:
// the origin assigns every update event a monotonically increasing Seq,
// keeps a bounded replay buffer, and a reconnecting subscriber passes
// ?since=<seq> to receive the events it missed. When the gap exceeds the
// buffer the server's hello frame carries Reset=true, telling the
// consumer its view is no longer contiguous and it must revalidate by
// polling (the proxy runs its staleness-bounded catch-up sweep).
//
// Payload delivery (v2) is negotiated per stream: a subscriber passes
// ?maxpayload=<bytes>, the hub clamps it to its own cap and echoes the
// result on the hello frame, and any update whose body exceeds the
// stream's cap is degraded to an invalidation-only frame at write time —
// never dropped, never skipped. The degradation ladder is therefore
// value push → invalidation push → pure pull, each rung keeping the
// paper's Δ guarantee intact.
package push

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Protocol versions. Encode emits the lowest version able to carry the
// event — v1 when only invalidation fields are set, v2 when a payload,
// digest, content type, or payload cap rides along, v3 when the payload
// is a delta against a held base or one chunk of a larger body — so
// pure invalidation streams are byte-identical to what pre-v2 hubs
// emitted and plain payload streams to what pre-v3 hubs emitted.
// Decode accepts all three and rejects anything else so incompatible
// future formats fail loudly instead of being half-parsed.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	ProtocolV3 = 3
	// ProtocolVersion is the highest version this package speaks.
	ProtocolVersion = ProtocolV3
)

// MaxFrameLen bounds the encoded size of a frame's envelope — everything
// except the base64 payload field. Keys and group names are URL paths
// and tokens; anything larger is hostile. The payload field is bounded
// separately by the negotiated per-stream cap (never above
// MaxPayloadCap).
const MaxFrameLen = 4096

// DefaultPayloadCap is the per-stream payload size (pre-base64 bytes) a
// hub or subscriber uses when payload delivery is enabled without an
// explicit cap.
const DefaultPayloadCap = 64 << 10

// MaxPayloadCap is the absolute payload ceiling any hub will negotiate;
// Decode rejects frames whose decoded payload exceeds it regardless of
// what a hostile stream claims was negotiated.
const MaxPayloadCap = 1 << 20

// maxPayloadFieldLen bounds the base64 payload field on the wire.
var maxPayloadFieldLen = base64.StdEncoding.EncodedLen(MaxPayloadCap)

// Kind discriminates event frames.
type Kind uint8

const (
	// KindHello is the first frame of every stream: Seq carries the
	// server's current (last assigned) sequence number, Reset reports
	// whether the requested resume point fell outside the replay buffer,
	// and PayloadCap carries the negotiated per-stream payload cap.
	KindHello Kind = 1
	// KindUpdate announces that the object at Key was modified at
	// ModTime. Seq is the event's position in the origin's stream. When
	// HasBody is set the frame also carries the object's new body.
	KindUpdate Kind = 2
	// KindHeartbeat is a liveness frame carrying the current Seq; it
	// lets subscribers distinguish a quiet origin from a dead connection.
	KindHeartbeat Kind = 3
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindUpdate:
		return "update"
	case KindHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one frame of the invalidation stream.
type Event struct {
	// Kind discriminates the frame.
	Kind Kind
	// Seq is the origin-assigned sequence number. Update events carry
	// their own strictly increasing Seq; hello and heartbeat frames
	// carry the last assigned Seq at the time they were written.
	Seq uint64
	// Key is the object's path (plus query, if any) at the origin.
	// Meaningful for update events only.
	Key string
	// Group is the object's mutual-consistency group, when it has one.
	Group string
	// ModTime is the modification instant announced by an update event.
	ModTime time.Time
	// Reset is set on a hello frame when the subscriber's resume point
	// is older than the replay buffer: events were irrecoverably missed
	// and the consumer must revalidate by polling.
	Reset bool

	// Body is the object's new body, carried end to end so a consumer
	// can install the update without a confirmation poll. HasBody
	// distinguishes an empty body from no payload at all.
	Body    []byte
	HasBody bool
	// ContentType is the body's media type (payload frames only).
	ContentType string
	// Digest is the publisher-announced content digest of Body (see
	// DigestOf). A consumer verifies it before installing the body and
	// falls back to polling on mismatch; it is never verified at decode
	// time so a corrupt frame degrades to a poll instead of killing the
	// stream.
	Digest string
	// PayloadCap is the negotiated per-stream payload size in bytes,
	// echoed on hello frames (0 = the stream carries no payloads).
	PayloadCap uint64

	// BaseDigest, when set, marks Body as a delta rather than the full
	// body: it addresses the base body (by DigestOf) the delta was
	// computed against, DeltaCodec names the encoding, and Digest names
	// the RESULT of applying the delta — the terminal check a consumer
	// verifies before install. BaseDigest and DeltaCodec travel
	// together; Decode rejects one without the other.
	BaseDigest string
	DeltaCodec uint8
	// ChunkIndex and ChunkTotal mark one chunk of a body too large for
	// a single frame: chunk ChunkIndex of ChunkTotal (zero-based). All
	// chunks of one logical update share one Seq and ModTime, each
	// carries a contiguous slice of the body, and Digest names the
	// digest of the COMPLETE body — the terminal check a reassembling
	// consumer verifies. ChunkTotal 0 means unchunked.
	ChunkIndex, ChunkTotal uint32

	// DeltaBody is a publish-time sidecar, never encoded on the wire:
	// a publisher hands Publish the full Body plus, optionally, a
	// precomputed delta here (with BaseDigest/DeltaCodec describing
	// it), and the hub renders both forms — full frames carry Body,
	// the delta frame carries DeltaBody. Decode never populates it.
	DeltaBody []byte
}

// DigestOf returns the content digest announced with a payload: the
// first eight bytes of the body's SHA-256, hex-encoded. Collisions only
// cost a missed corruption (the consumer installs what the publisher
// hashed); sixteen characters keep the envelope small.
func DigestOf(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// StripPayload returns the event with its payload fields cleared: the
// degradation from a value-carrying frame to the invalidation-only
// frame every v1 consumer understands. Key, group, sequence, and
// modification instant survive, so the Δ guarantee is untouched — the
// consumer confirms by polling instead of installing directly.
func (e Event) StripPayload() Event {
	e.Body = nil
	e.HasBody = false
	e.ContentType = ""
	e.Digest = ""
	e.BaseDigest = ""
	e.DeltaCodec = 0
	e.ChunkIndex = 0
	e.ChunkTotal = 0
	e.DeltaBody = nil
	return e
}

// Errors returned by Decode.
var (
	ErrFrameTooLong = errors.New("push: frame exceeds MaxFrameLen")
	ErrBadFrame     = errors.New("push: malformed frame")
	ErrBadVersion   = errors.New("push: unsupported protocol version")
)

// Encode renders the event as a single line. Events carrying only
// invalidation state use the v1 layout:
//
//	v1 <kind> <seq> <modtime-unixnano> <flags> <key> <group>
//
// Events carrying a payload, digest, content type, or payload cap use
// the v2 layout:
//
//	v2 <kind> <seq> <modtime-unixnano> <flags> <key> <group> <ctype> <digest> <cap> <payload-b64>
//
// Events whose payload is a delta (base digest + codec) or one chunk of
// a larger body (index/total) use the v3 layout:
//
//	v3 <kind> <seq> <modtime-unixnano> <flags> <key> <group> <ctype> <digest> <cap> <base> <codec> <ci> <ct> <payload-b64>
//
// Key, group, and content type are query-escaped so they can never
// contain the space separator; empty fields encode as "-". The payload
// is standard base64 ("-" when absent; the 'p' flag distinguishes an
// empty body from no payload). The format is newline-free by
// construction, which is what lets one frame travel as one SSE data
// line.
func (e Event) Encode() string {
	bp := encodePool.Get().(*[]byte)
	b := e.appendWire((*bp)[:0])
	s := string(b)
	if cap(b) <= maxPooledEncodeBuf {
		*bp = b
		encodePool.Put(bp)
	}
	return s
}

// encodePool holds Encode's scratch buffers: the wire form is built
// with append-style renderers into a pooled buffer and copied out as
// one string, so the hot publish path (RenderLadder calls Encode for
// every ladder rung) costs one allocation per rendered form instead of
// fmt's boxing and formatting state.
var encodePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// maxPooledEncodeBuf bounds the buffers returned to encodePool; a
// near-MaxPayloadCap body's base64 would otherwise pin megabytes in
// the pool long after the burst that needed them.
const maxPooledEncodeBuf = 128 << 10

// appendWire appends the event's wire form (see Encode) to b.
func (e Event) appendWire(b []byte) []byte {
	key, group := "-", "-"
	if e.Key != "" {
		key = escapeField(e.Key)
	}
	if e.Group != "" {
		group = escapeField(e.Group)
	}
	var mod int64
	if !e.ModTime.IsZero() {
		mod = e.ModTime.UnixNano()
	}
	flags := "-"
	switch {
	case e.Reset && e.HasBody:
		flags = "rp"
	case e.Reset:
		flags = "r"
	case e.HasBody:
		flags = "p"
	}
	v3 := e.BaseDigest != "" || e.DeltaCodec != 0 || e.ChunkIndex != 0 || e.ChunkTotal != 0
	version := byte('3')
	switch {
	case !v3 && !e.HasBody && e.ContentType == "" && e.Digest == "" && e.PayloadCap == 0:
		version = '1'
	case !v3:
		version = '2'
	}
	b = append(b, 'v', version, ' ')
	b = strconv.AppendUint(b, uint64(e.Kind), 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, mod, 10)
	b = append(b, ' ')
	b = append(b, flags...)
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, ' ')
	b = append(b, group...)
	if version == '1' {
		return b
	}
	b = append(b, ' ')
	if e.ContentType != "" {
		b = append(b, escapeField(e.ContentType)...)
	} else {
		b = append(b, '-')
	}
	b = append(b, ' ')
	if e.Digest != "" {
		b = append(b, e.Digest...)
	} else {
		b = append(b, '-')
	}
	b = append(b, ' ')
	b = strconv.AppendUint(b, e.PayloadCap, 10)
	if version == '3' {
		b = append(b, ' ')
		if e.BaseDigest != "" {
			b = append(b, e.BaseDigest...)
		} else {
			b = append(b, '-')
		}
		b = append(b, ' ')
		b = strconv.AppendUint(b, uint64(e.DeltaCodec), 10)
		b = append(b, ' ')
		b = strconv.AppendUint(b, uint64(e.ChunkIndex), 10)
		b = append(b, ' ')
		b = strconv.AppendUint(b, uint64(e.ChunkTotal), 10)
	}
	b = append(b, ' ')
	if e.HasBody && len(e.Body) > 0 {
		b = base64.StdEncoding.AppendEncode(b, e.Body)
	} else {
		b = append(b, '-')
	}
	return b
}

// RenderedEvent is one published event rendered to its canonical wire
// forms exactly once, at publish time. An update has a small, fixed set
// of spellings on the wire — the rungs of the delivery ladder:
//
//	delta    — v3, the body as a delta against a base the receiver holds
//	chunks   — v3, the full body split across bounded frames
//	full     — v2, the body in one frame
//	stripped — v1, the invalidation every consumer understands
//
// Which rung a given stream receives depends only on its negotiated
// payload cap and (for the delta) the digest it holds — so rendering
// every applicable form at publish makes delivery to any number of
// subscribers a byte-slice pick instead of a per-subscriber Encode.
// The decoded routing fields (Kind, Seq, Key, Group, Reset) stay
// exported so interest filters and replay bookkeeping never have to
// re-parse what they just rendered.
type RenderedEvent struct {
	Kind  Kind
	Seq   uint64
	Key   string
	Group string
	Reset bool

	// payloadLen is the byte length of the payload carried by the full
	// form, -1 when the event carries none (HasBody unset) — the
	// distinction the per-stream cap check needs, preserved across the
	// render exactly as Event.HasBody preserved it across the wire.
	payloadLen int
	// full and stripped are the two classic wire forms; for an event
	// with no payload state they are the same string rendered once.
	// full is empty when the body exceeded the hub's payload cap and
	// only chunked delivery can carry it.
	full     string
	stripped string

	// digest is the full body's digest — what a receiver holds after
	// installing this update by any payload rung.
	digest string
	// delta is the v3 delta wire form (empty when the publisher
	// supplied no delta sidecar); baseDigest addresses the base it
	// applies to and deltaLen is its payload length for the cap check.
	delta      string
	baseDigest string
	deltaLen   int
	// chunks are the v3 chunked wire forms of the full body, rendered
	// at chunkLen payload bytes per frame (the cap a stream must have
	// negotiated to receive them). Empty when the body fits the full
	// form for every possible cap or chunking is disabled on the hub.
	chunks   []string
	chunkLen int

	// cost is the event's replay-ring charge: the real wire bytes held
	// resident (every retained form).
	cost int64
}

// Render renders the event's wire forms with chunking disabled —
// exactly the two-form render pre-v3 hubs performed, plus the delta
// form when the publisher supplied a delta sidecar. The event must
// already be publishable (sanitized digest, payload within the hub
// cap, envelope within bounds) — Render is the single Encode site of
// the publish path, not a validator.
func Render(ev Event) RenderedEvent {
	return RenderLadder(ev, 0)
}

// RenderLadder renders the event's full ladder of wire forms.
// chunkPayload, when positive, is the per-frame payload size chunked
// forms are rendered at: a body larger than chunkPayload additionally
// renders as a chunk set (bounded by MaxChunkTotal and
// MaxAssembledBody), so streams whose cap cannot carry the whole body
// can still receive it. A body the full form cannot carry at all
// (publish decided it exceeds the hub cap) is marked by
// SuppressFull before rendering.
func RenderLadder(ev Event, chunkPayload int) RenderedEvent {
	re := RenderedEvent{
		Kind:       ev.Kind,
		Seq:        ev.Seq,
		Key:        ev.Key,
		Group:      ev.Group,
		Reset:      ev.Reset,
		payloadLen: -1,
		deltaLen:   -1,
	}
	if ev.HasBody {
		re.payloadLen = len(ev.Body)
	}
	if !ev.HasBody && ev.ContentType == "" && ev.Digest == "" && ev.PayloadCap == 0 &&
		ev.BaseDigest == "" && ev.DeltaCodec == 0 && ev.ChunkTotal == 0 {
		// Pure invalidation state: the full and stripped forms are the
		// same v1 line; render it once and share the backing.
		re.full = ev.Encode()
		re.stripped = re.full
		re.cost = int64(len(re.full))
		return re
	}
	re.digest = ev.Digest
	re.stripped = ev.StripPayload().Encode()
	re.cost = int64(len(re.stripped))

	if ev.HasBody && ev.BaseDigest != "" && ev.DeltaCodec != 0 && len(ev.DeltaBody) == 0 {
		// The body IS the delta (a decoded v3 frame republished by a
		// relay whose own cache missed the base): there is no full body
		// to render, so the ladder is delta → stripped only.
		re.delta = ev.Encode()
		re.baseDigest = ev.BaseDigest
		re.deltaLen = len(ev.Body)
		re.payloadLen = -1
		re.cost += int64(len(re.delta))
		return re
	}

	// The full form is a plain v2 frame: the delta sidecar describes a
	// sibling form, not this one, so it never rides the full spelling.
	fullEv := ev
	fullEv.BaseDigest, fullEv.DeltaCodec, fullEv.DeltaBody = "", 0, nil
	re.full = fullEv.Encode()
	re.cost += int64(len(re.full))

	if ev.HasBody && len(ev.DeltaBody) > 0 && ev.BaseDigest != "" && ev.DeltaCodec != 0 {
		dEv := fullEv
		dEv.Body = ev.DeltaBody
		dEv.BaseDigest = ev.BaseDigest
		dEv.DeltaCodec = ev.DeltaCodec
		re.delta = dEv.Encode()
		re.baseDigest = ev.BaseDigest
		re.deltaLen = len(ev.DeltaBody)
		re.cost += int64(len(re.delta))
	}

	if chunkPayload > 0 && ev.HasBody && len(ev.Body) > chunkPayload &&
		len(ev.Body) <= MaxAssembledBody {
		n := (len(ev.Body) + chunkPayload - 1) / chunkPayload
		if n <= MaxChunkTotal {
			cEv := fullEv
			cEv.ChunkTotal = uint32(n)
			re.chunks = make([]string, 0, n)
			for i := 0; i < n; i++ {
				lo := i * chunkPayload
				hi := lo + chunkPayload
				if hi > len(ev.Body) {
					hi = len(ev.Body)
				}
				cEv.ChunkIndex = uint32(i)
				cEv.Body = ev.Body[lo:hi]
				frame := cEv.Encode()
				re.chunks = append(re.chunks, frame)
				re.cost += int64(len(frame))
			}
			re.chunkLen = chunkPayload
		}
	}
	return re
}

// SuppressFull drops the full form (a publish decision: the body
// exceeds the hub's payload cap, so no stream's negotiated cap could
// ever receive it — holding it in the ring would charge bytes no
// subscriber can use). Delta and chunked forms survive; WireFor then
// degrades streams that can use neither to the stripped form.
func (re RenderedEvent) SuppressFull() RenderedEvent {
	if re.full != re.stripped {
		re.cost -= int64(len(re.full))
	}
	re.full = ""
	return re
}

// trimToDelta drops the full and chunked forms, keeping delta +
// stripped: the replay-ring spelling of a delta-bearing event between
// anchors (see HubConfig.AnchorEvery).
func (re RenderedEvent) trimToDelta() RenderedEvent {
	if re.full != "" && re.full != re.stripped {
		re.cost -= int64(len(re.full))
	}
	re.full = ""
	for _, c := range re.chunks {
		re.cost -= int64(len(c))
	}
	re.chunks = nil
	re.chunkLen = 0
	return re
}

// Full returns the payload-carrying wire form (identical to Stripped
// when the event carries no payload state; empty when suppressed).
func (re RenderedEvent) Full() string { return re.full }

// Stripped returns the invalidation-only wire form.
func (re RenderedEvent) Stripped() string { return re.stripped }

// Delta returns the v3 delta wire form ("" when the event has none)
// and the base digest it applies against.
func (re RenderedEvent) Delta() (frame, baseDigest string) { return re.delta, re.baseDigest }

// Chunks returns the chunked wire forms (nil when the event has none)
// and the per-frame payload size a stream must accept to receive them.
func (re RenderedEvent) Chunks() (frames []string, chunkPayload int) {
	return re.chunks, re.chunkLen
}

// Digest returns the full body's digest ("" for non-payload events):
// what a receiver holds after installing this update.
func (re RenderedEvent) Digest() string { return re.digest }

// WireFor picks the wire form for a stream with the given negotiated
// payload cap: the stripped form when the event carries a payload the
// cap cannot (including cap 0 — a stream that negotiated no payloads
// cannot parse a 'p'-flagged frame even for an empty body), the full
// form otherwise. Byte-identical to what per-subscriber
// StripPayload-then-Encode produced before rendering moved to publish
// time. Delta and chunk selection live in the hub's serve loop, which
// needs per-subscriber held-digest state WireFor deliberately knows
// nothing about.
func (re RenderedEvent) WireFor(payloadCap int) string {
	if re.full == "" || (re.payloadLen >= 0 && (payloadCap <= 0 || re.payloadLen > payloadCap)) {
		return re.stripped
	}
	return re.full
}

// helloPrefixV1 and helloPrefixV2 are the cached invariant prefixes of
// hello frames ("v<ver> <kind> "); only the seq, flags, and (v2) cap
// fields vary per connect, so the renderers below append just those.
const (
	helloPrefixV1     = "v1 1 "
	helloPrefixV2     = "v2 1 "
	heartbeatPrefixV1 = "v1 3 "
)

// renderedHello renders the hello frame opening (or, with reset,
// resynchronizing) a stream, byte-identical to Render(Event{Kind:
// KindHello, Seq: seq, PayloadCap: payloadCap, Reset: reset}) without
// the fmt round trip — hellos are built per connect, and under
// reconnect churn that path is hot.
func renderedHello(seq, payloadCap uint64, reset bool) RenderedEvent {
	re := RenderedEvent{Kind: KindHello, Seq: seq, Reset: reset, payloadLen: -1, deltaLen: -1}
	flags := byte('-')
	if reset {
		flags = 'r'
	}
	var b []byte
	if payloadCap == 0 {
		b = make([]byte, 0, 32)
		b = append(b, helloPrefixV1...)
		b = strconv.AppendUint(b, seq, 10)
		b = append(b, ' ', '0', ' ', flags)
		b = append(b, " - -"...)
	} else {
		b = make([]byte, 0, 56)
		b = append(b, helloPrefixV2...)
		b = strconv.AppendUint(b, seq, 10)
		b = append(b, ' ', '0', ' ', flags)
		b = append(b, " - - - - "...)
		b = strconv.AppendUint(b, payloadCap, 10)
		b = append(b, ' ', '-')
	}
	re.full = string(b)
	re.stripped = re.full
	re.cost = int64(len(re.full))
	return re
}

// renderedHeartbeat renders a keepalive frame carrying the stream's
// position, byte-identical to Render(Event{Kind: KindHeartbeat, Seq:
// seq}).
func renderedHeartbeat(seq uint64) RenderedEvent {
	re := RenderedEvent{Kind: KindHeartbeat, Seq: seq, payloadLen: -1, deltaLen: -1}
	b := make([]byte, 0, 32)
	b = append(b, heartbeatPrefixV1...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, " 0 - - -"...)
	re.full = string(b)
	re.stripped = re.full
	re.cost = int64(len(re.full))
	return re
}

// escapeField query-escapes a key, group, or content type for the wire.
// A literal "-" survives QueryEscape unchanged but collides with the
// empty-field sentinel, so it is forced into escaped form (QueryEscape
// itself never emits "%2D", so decoding stays unambiguous).
func escapeField(s string) string {
	esc := url.QueryEscape(s)
	if esc == "-" {
		return "%2D"
	}
	return esc
}

// Oversized reports whether the event's encoded envelope — the frame
// minus its payload field — exceeds MaxFrameLen. An oversized update
// must never enter a stream or replay buffer — subscribers reject such
// frames, so one poisonous buffered frame would livelock every
// reconnect — and a proxy caching an object whose key cannot ride the
// channel must keep pure-polling freshness for it (no TTR stretch)
// because its updates will never be announced. The payload is bounded
// separately by the negotiated per-stream cap, never by this check.
//
// The bound must hold for EVERY frame the event can emit as: the
// stripped v1 form (what a payload-less stream receives) and, when any
// v2 field is present, the v2 envelope with its ctype/digest/cap fields
// — which is what Decode actually measures. Checking only the stripped
// form would let a near-limit key slip a frame into the ring that every
// payload-negotiated subscriber must reject.
func (e Event) Oversized() bool {
	if len(e.StripPayload().Encode()) > MaxFrameLen {
		return true
	}
	if e.HasBody || e.ContentType != "" || e.Digest != "" || e.PayloadCap != 0 ||
		e.BaseDigest != "" || e.DeltaCodec != 0 || e.ChunkIndex != 0 || e.ChunkTotal != 0 {
		// Measure the v2/v3 envelope exactly as Decode does: the full
		// frame minus the payload field. With the body cleared (HasBody
		// kept) the payload field encodes as "-", so the encoded length
		// minus that one byte is the envelope plus its separating space —
		// Decode's len(s)-len(payload).
		e.Body = nil
		if len(e.Encode())-1 > MaxFrameLen {
			return true
		}
	}
	return false
}

// Decode parses a frame produced by Encode. It never panics on malformed
// input: any deviation from the format yields an error. The ModTime of a
// frame encoding nanos 0 is the zero time. Digest mismatches are NOT
// detected here — integrity is the consumer's decision (it degrades to
// a poll), not a framing error.
func Decode(s string) (Event, error) {
	if len(s) > MaxFrameLen+maxPayloadFieldLen+1 {
		return Event{}, ErrFrameTooLong
	}
	fields := strings.Split(s, " ")
	switch {
	case len(fields) == 7 && fields[0] == "v1":
		if len(s) > MaxFrameLen {
			return Event{}, ErrFrameTooLong
		}
		return decodeBounded(fields, nil, len(s))
	case len(fields) == 11 && fields[0] == "v2":
		payload := fields[10]
		if len(s)-len(payload) > MaxFrameLen {
			return Event{}, ErrFrameTooLong
		}
		if len(payload) > maxPayloadFieldLen {
			return Event{}, ErrFrameTooLong
		}
		return decodeBounded(fields[:7], fields[7:], len(s)-len(payload))
	case len(fields) == 15 && fields[0] == "v3":
		payload := fields[14]
		if len(s)-len(payload) > MaxFrameLen {
			return Event{}, ErrFrameTooLong
		}
		if len(payload) > maxPayloadFieldLen {
			return Event{}, ErrFrameTooLong
		}
		return decodeBounded(fields[:7], fields[7:], len(s)-len(payload))
	case len(fields) > 0 && strings.HasPrefix(fields[0], "v"):
		if ver, err := strconv.ParseUint(fields[0][1:], 10, 16); err == nil &&
			ver != ProtocolV1 && ver != ProtocolV2 && ver != ProtocolV3 {
			return Event{}, fmt.Errorf("%w: v%d", ErrBadVersion, ver)
		}
		return Event{}, fmt.Errorf("%w: %d fields for %s", ErrBadFrame, len(fields), fields[0])
	default:
		return Event{}, fmt.Errorf("%w: missing version tag", ErrBadFrame)
	}
}

// decodeCommon parses the seven envelope fields shared by both versions
// plus, for v2, the ctype/digest/cap/payload extension fields.
func decodeCommon(fields, ext []string) (Event, error) {
	var e Event
	kind, err := strconv.ParseUint(fields[1], 10, 8)
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad kind %q", ErrBadFrame, fields[1])
	}
	switch Kind(kind) {
	case KindHello, KindUpdate, KindHeartbeat:
		e.Kind = Kind(kind)
	default:
		return Event{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, kind)
	}
	if e.Seq, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
		return Event{}, fmt.Errorf("%w: bad seq %q", ErrBadFrame, fields[2])
	}
	nanos, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad modtime %q", ErrBadFrame, fields[3])
	}
	if nanos != 0 {
		e.ModTime = time.Unix(0, nanos)
	}
	hasBody := false
	switch fields[4] {
	case "-":
	case "r":
		e.Reset = true
	case "p":
		hasBody = true
	case "rp":
		e.Reset = true
		hasBody = true
	default:
		return Event{}, fmt.Errorf("%w: bad flags %q", ErrBadFrame, fields[4])
	}
	if fields[5] != "-" {
		if e.Key, err = url.QueryUnescape(fields[5]); err != nil {
			return Event{}, fmt.Errorf("%w: bad key %q", ErrBadFrame, fields[5])
		}
	}
	if fields[6] != "-" {
		if e.Group, err = url.QueryUnescape(fields[6]); err != nil {
			return Event{}, fmt.Errorf("%w: bad group %q", ErrBadFrame, fields[6])
		}
	}

	if ext == nil {
		if hasBody {
			return Event{}, fmt.Errorf("%w: payload flag on a v1 frame", ErrBadFrame)
		}
	} else {
		if ext[0] != "-" {
			if e.ContentType, err = url.QueryUnescape(ext[0]); err != nil {
				return Event{}, fmt.Errorf("%w: bad content type %q", ErrBadFrame, ext[0])
			}
		}
		if ext[1] != "-" {
			if !isHexDigest(ext[1]) {
				return Event{}, fmt.Errorf("%w: bad digest %q", ErrBadFrame, ext[1])
			}
			e.Digest = ext[1]
		}
		if e.PayloadCap, err = strconv.ParseUint(ext[2], 10, 64); err != nil {
			return Event{}, fmt.Errorf("%w: bad payload cap %q", ErrBadFrame, ext[2])
		}
		if len(ext) == 8 {
			// v3 extension: <base> <codec> <chunk-index> <chunk-total>.
			if ext[3] != "-" {
				if !isHexDigest(ext[3]) {
					return Event{}, fmt.Errorf("%w: bad base digest %q", ErrBadFrame, ext[3])
				}
				e.BaseDigest = ext[3]
			}
			codec, err := strconv.ParseUint(ext[4], 10, 8)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad delta codec %q", ErrBadFrame, ext[4])
			}
			e.DeltaCodec = uint8(codec)
			ci, err := strconv.ParseUint(ext[5], 10, 32)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad chunk index %q", ErrBadFrame, ext[5])
			}
			ct, err := strconv.ParseUint(ext[6], 10, 32)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad chunk total %q", ErrBadFrame, ext[6])
			}
			e.ChunkIndex, e.ChunkTotal = uint32(ci), uint32(ct)
			if e.BaseDigest == "" && e.DeltaCodec == 0 && e.ChunkIndex == 0 && e.ChunkTotal == 0 {
				// An event with no delta/chunk state encodes as v2; a v3
				// spelling of it would be a second wire form for the same
				// event (round-trip ambiguity).
				return Event{}, fmt.Errorf("%w: v3 frame without delta or chunk fields", ErrBadFrame)
			}
		}
		payload := ext[len(ext)-1]
		switch {
		case payload == "-" && hasBody:
			e.Body = []byte{}
			e.HasBody = true
		case payload == "-":
			// No payload.
		case !hasBody:
			return Event{}, fmt.Errorf("%w: payload without the p flag", ErrBadFrame)
		default:
			body, err := base64.StdEncoding.DecodeString(payload)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad payload base64", ErrBadFrame)
			}
			if len(body) == 0 {
				// Canonical form for an empty body is "-" with the p
				// flag; padding-only spellings must not create a second
				// wire form for the same event (round-trip ambiguity).
				return Event{}, fmt.Errorf("%w: empty payload must encode as -", ErrBadFrame)
			}
			if len(body) > MaxPayloadCap {
				return Event{}, ErrFrameTooLong
			}
			e.Body = body
			e.HasBody = true
		}
		if err := validateLadderFields(e); err != nil {
			return Event{}, err
		}
	}

	// Escaped fields round-trip through QueryUnescape, but an unescaped
	// space or newline smuggled through %-encoding is fine — the field
	// boundary was already fixed by the split above. What must not pass
	// is an empty key masquerading as present.
	if e.Kind == KindUpdate && e.Key == "" {
		return Event{}, fmt.Errorf("%w: update without key", ErrBadFrame)
	}
	return e, nil
}

// validateLadderFields enforces the structural rules of the v3
// delta/chunk extension (trivially true for v1/v2 events, whose fields
// are all zero): base digest and codec travel together, a delta or
// chunk is always a payload-carrying update, a chunk index sits inside
// a bounded chunk total, and delta and chunk state never combine on
// one frame.
func validateLadderFields(e Event) error {
	if (e.BaseDigest != "") != (e.DeltaCodec != 0) {
		return fmt.Errorf("%w: delta base and codec must travel together", ErrBadFrame)
	}
	if e.BaseDigest != "" {
		if !e.HasBody {
			return fmt.Errorf("%w: delta frame without payload", ErrBadFrame)
		}
		if e.Kind != KindUpdate {
			return fmt.Errorf("%w: delta on a non-update frame", ErrBadFrame)
		}
		if e.ChunkIndex != 0 || e.ChunkTotal != 0 {
			return fmt.Errorf("%w: delta and chunk state on one frame", ErrBadFrame)
		}
	}
	if e.ChunkIndex != 0 && e.ChunkTotal == 0 {
		return fmt.Errorf("%w: chunk index without chunk total", ErrBadFrame)
	}
	if e.ChunkTotal != 0 {
		if e.ChunkTotal > MaxChunkTotal {
			return fmt.Errorf("%w: chunk total %d exceeds %d", ErrBadFrame, e.ChunkTotal, MaxChunkTotal)
		}
		if e.ChunkIndex >= e.ChunkTotal {
			return fmt.Errorf("%w: chunk index %d outside total %d", ErrBadFrame, e.ChunkIndex, e.ChunkTotal)
		}
		if !e.HasBody {
			return fmt.Errorf("%w: chunk frame without payload", ErrBadFrame)
		}
		if e.Kind != KindUpdate {
			return fmt.Errorf("%w: chunk on a non-update frame", ErrBadFrame)
		}
	}
	return nil
}

// decodeBounded parses the frame fields and additionally enforces that
// the decoded event's CANONICAL envelope fits the wire limit. The
// earlier length checks bounded the frame as sent, but fields carrying
// raw characters that escaping expands (a newline is one byte on a
// hostile wire, three re-encoded) can decode to an event whose
// canonical form is over the limit — and such an event must not exist:
// everything accepted here may be re-encoded, by a relay republishing
// it or by the round-trip invariant. Escaping expands a byte to at most
// three, so the re-encode is only paid for wire envelopes that could
// possibly overflow (> MaxFrameLen/3); ordinary frames skip it.
func decodeBounded(fields, ext []string, wireEnvelope int) (Event, error) {
	e, err := decodeCommon(fields, ext)
	if err != nil {
		return Event{}, err
	}
	if wireEnvelope > MaxFrameLen/3 && e.Oversized() {
		return Event{}, ErrFrameTooLong
	}
	return e, nil
}

// validWireDigest reports whether a publisher-supplied digest can ride
// the wire: absent, or hex as DigestOf emits. Anything else would make
// Encode produce a frame Decode rejects — which must never enter a
// replay ring — so the hub strips such digests at publish time.
func validWireDigest(s string) bool {
	return s == "" || isHexDigest(s)
}

// isHexDigest reports whether s is a plausible hex digest field (what
// DigestOf emits, bounded so a hostile frame cannot smuggle a monster
// field past the envelope check).
func isHexDigest(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}
