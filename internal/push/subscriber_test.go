package push

import (
	"bufio"
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// These are the protocol-hole regression tests of ISSUE 4, driven
// through the scriptable sseServer from push_test.go: the subscriber
// must handle a mid-stream hello/Reset (a relaying upstream announcing
// a hole) and survive oversized stream lines without a reconnect
// livelock.

func TestSubscriberMidStreamResetFastForwardsAndReconciles(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var events atomic.Int64
	var connects atomic.Int64
	var lastResumed atomic.Bool
	var lastReset atomic.Bool
	sub, err := NewSubscriber(SubscriberConfig{
		URL:     ts.URL,
		OnEvent: func(Event) { events.Add(1) },
		OnConnect: func(hello Event, resumed bool) {
			connects.Add(1)
			lastResumed.Store(resumed)
			lastReset.Store(hello.Reset)
		},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	// Re-send until processed: the stream registers slightly after the
	// connection counter, and a redundant hello is just a heartbeat.
	if !waitCond(t, 2*time.Second, func() bool {
		srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
		return connects.Load() == 1
	}) {
		t.Fatal("initial hello not processed")
	}
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return events.Load() == 1 }) {
		t.Fatal("update not processed")
	}

	// The upstream resyncs mid-stream: a hello with Reset at its new
	// head. The pre-fix subscriber swallowed this as a "redundant
	// hello"; it must fast-forward and re-run the connect
	// reconciliation, on the SAME connection.
	srv.send(Event{Kind: KindHello, Seq: 41, Reset: true}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return connects.Load() == 2 }) {
		t.Fatalf("mid-stream Reset swallowed (connects=%d resets=%d)", connects.Load(), sub.Resets())
	}
	if !lastResumed.Load() || !lastReset.Load() {
		t.Errorf("reconciliation args: resumed=%v reset=%v, want true/true",
			lastResumed.Load(), lastReset.Load())
	}
	if got := sub.LastSeq(); got != 41 {
		t.Errorf("LastSeq = %d after mid-stream Reset, want 41", got)
	}
	if sub.Resets() != 1 {
		t.Errorf("Resets = %d, want 1", sub.Resets())
	}
	if srv.conns.Load() != 1 {
		t.Errorf("subscriber reconnected (%d conns); the Reset must ride the live stream", srv.conns.Load())
	}

	// A mid-stream hello WITHOUT Reset stays a heartbeat: no extra
	// reconciliation, no resume-point move.
	srv.send(Event{Kind: KindHello, Seq: 99}.Encode())
	srv.send(Event{Kind: KindUpdate, Seq: 42, Key: "/b"}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return events.Load() == 2 }) {
		t.Fatal("stream dead after non-Reset hello")
	}
	if connects.Load() != 2 {
		t.Errorf("non-Reset mid-stream hello ran OnConnect (connects=%d)", connects.Load())
	}
	if got := sub.LastSeq(); got != 42 {
		t.Errorf("LastSeq = %d, want 42", got)
	}
}

// TestSubscriberSkipsOversizedLinesWithoutReconnecting: before the fix
// an SSE line longer than the scanner buffer killed the stream with
// bufio.ErrTooLong, and since the reconnect resumed from the same
// position against an upstream replaying the same line, the subscriber
// livelocked one frame forever. The fixed reader skips just the line.
func TestSubscriberSkipsOversizedLinesWithoutReconnecting(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var events atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) { events.Add(1) },
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	// Re-send until the stream is demonstrably live (a redundant hello
	// is just a heartbeat).
	if !waitCond(t, 2*time.Second, func() bool {
		srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
		return sub.Connects() >= 1
	}) {
		t.Fatal("hello never processed")
	}

	// A line far beyond MaxFrameLen+64, as a hostile or non-broadway
	// upstream could emit, followed by a well-formed update on the same
	// stream.
	srv.send(strings.Repeat("x", MaxFrameLen*2))
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())

	if !waitCond(t, 2*time.Second, func() bool { return events.Load() == 1 }) {
		t.Fatalf("update after oversized line never arrived (skipped=%d disconnects=%d)",
			sub.SkippedFrames(), sub.Disconnects())
	}
	if sub.SkippedFrames() == 0 {
		t.Error("oversized line was not counted as skipped")
	}
	if srv.conns.Load() != 1 || sub.Disconnects() != 0 {
		t.Errorf("stream died on the oversized line (conns=%d disconnects=%d) — the reconnect livelock",
			srv.conns.Load(), sub.Disconnects())
	}
}

// TestSubscriberSkipsMalformedLinesWithoutReconnecting: a data line
// that fails to decode mid-stream (hostile bytes, an envelope over the
// limit smuggled under a payload-widened read limit, fields that
// escaping would expand past the bound) must be skipped in place, not
// kill the connection — a reconnect would resume from the same
// position, replay the same line, and livelock, exactly like the
// PR 4 oversized-line case.
func TestSubscriberSkipsMalformedLinesWithoutReconnecting(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var events, losses atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:         ts.URL,
		OnEvent:     func(Event) { events.Add(1) },
		OnFrameLoss: func() { losses.Add(1) },
		BackoffMin:  5 * time.Millisecond,
		PayloadCap:  DefaultPayloadCap, // widened read limit: the hole's precondition
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool {
		srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
		return sub.Connects() >= 1
	}) {
		t.Fatal("hello never processed")
	}

	// Three malformed shapes under the payload-widened line limit but
	// undecodable, followed by a well-formed update on the SAME stream.
	srv.send("not a frame at all")
	srv.send("v1 2 1 0 - /" + strings.Repeat("k", MaxFrameLen) + " -") // envelope over the v1 bound
	srv.send("v2 2 1 0 - /k - - - 0 !!!hostile-base64!!!")
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())

	if !waitCond(t, 2*time.Second, func() bool { return events.Load() == 1 }) {
		t.Fatalf("update after malformed lines never arrived (skipped=%d disconnects=%d)",
			sub.SkippedFrames(), sub.Disconnects())
	}
	if sub.SkippedFrames() != 3 {
		t.Errorf("SkippedFrames = %d, want 3", sub.SkippedFrames())
	}
	// Every dropped line ran the loss reconciliation: the consumer's
	// sweep is what keeps an unknown loss from hiding behind stretched
	// TTRs ("the Δt guarantee never silently widens").
	if losses.Load() != 3 {
		t.Errorf("OnFrameLoss ran %d times, want 3", losses.Load())
	}
	if srv.conns.Load() != 1 || sub.Disconnects() != 0 {
		t.Errorf("stream died on a malformed line (conns=%d disconnects=%d) — the reconnect livelock",
			srv.conns.Load(), sub.Disconnects())
	}

	// A hello-less or undecodable FIRST frame still forces a reconnect:
	// that server is not speaking the protocol at all.
	srv.kill()
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected")
	}
	srv.send("garbage before hello")
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 3 }) {
		t.Fatal("undecodable first frame did not force a reconnect")
	}
}

func TestReadFrameLine(t *testing.T) {
	input := "short\r\n" +
		strings.Repeat("y", 300) + "\n" +
		"data: after\n"
	br := bufio.NewReaderSize(strings.NewReader(input), 16) // tiny buffer: exercise ErrBufferFull stitching

	line, skipped, err := readFrameLine(br, 100)
	if err != nil || skipped || line != "short" {
		t.Fatalf("first line = %q skipped=%v err=%v", line, skipped, err)
	}
	line, skipped, err = readFrameLine(br, 100)
	if err != nil || !skipped || line != "" {
		t.Fatalf("oversized line: %q skipped=%v err=%v", line, skipped, err)
	}
	line, skipped, err = readFrameLine(br, 100)
	if err != nil || skipped || line != "data: after" {
		t.Fatalf("line after skip = %q skipped=%v err=%v", line, skipped, err)
	}
	if _, _, err = readFrameLine(br, 100); err == nil {
		t.Fatal("EOF not reported")
	}
}
