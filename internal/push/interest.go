package push

import (
	"net/url"
	"sort"
	"strings"
)

// This file defines interest sets: the subscriber-declared filter that
// turns the hub's broadcast fan-out into targeted delivery. A
// subscriber names the slices of the key space it caches — path
// prefixes (?prefix=) and consistency groups (?group=), repeatable —
// and the hub skips every update frame outside them at write time,
// advancing the stream's resume position without shipping the frame.
// Filtering is an optimization, never a correctness lever: every bound
// here fails OPEN (toward match-all), because delivering a frame nobody
// asked for costs one ignored line while suppressing a frame somebody
// needed silently widens the Δ guarantee.

// Interest-set bounds. A declaration exceeding either bound widens to
// match-all instead of being truncated: dropping a declared term would
// filter away updates the subscriber depends on.
const (
	// maxInterestTerms bounds the prefixes and the groups (each) one
	// declaration may carry, after normalization.
	maxInterestTerms = 64
	// maxInterestTermLen bounds one term's byte length. Keys are bounded
	// by the frame envelope anyway; a longer term is hostile or a bug.
	maxInterestTermLen = 1024
)

// InterestSet describes which update events a subscriber wants: keys
// under any of a set of path prefixes, or objects in any of a set of
// consistency groups. InterestAll matches every event. The zero value
// matches no update events at all — construct sets with NewInterest,
// InterestAll, or ParseInterest rather than from struct literals.
type InterestSet struct {
	prefixes []string
	groups   []string
	all      bool
}

// InterestAll returns the set matching every event — the declaration of
// a subscriber that wants the whole stream (and what every overflowing
// declaration widens to).
func InterestAll() InterestSet { return InterestSet{all: true} }

// NewInterest builds a set from raw prefix and group terms: empty terms
// are dropped, duplicates and prefix-subsumed entries are pruned, and a
// declaration exceeding the bounds widens to match-all.
func NewInterest(prefixes, groups []string) InterestSet {
	var s InterestSet
	for _, p := range prefixes {
		if p == "" {
			continue
		}
		if len(p) > maxInterestTermLen {
			return InterestAll()
		}
		s.prefixes = append(s.prefixes, p)
	}
	for _, g := range groups {
		if g == "" {
			continue
		}
		if len(g) > maxInterestTermLen {
			return InterestAll()
		}
		s.groups = append(s.groups, g)
	}
	s.normalize()
	if len(s.prefixes) > maxInterestTerms || len(s.groups) > maxInterestTerms {
		return InterestAll()
	}
	return s
}

// ParseInterest builds the set declared by a stream's query parameters
// (?prefix= and ?group=, each repeatable). A request declaring nothing
// receives everything: filtering is opt-in, and the pre-interest wire
// contract — every subscriber sees every frame — is the default.
func ParseInterest(q url.Values) InterestSet {
	if len(q["prefix"]) == 0 && len(q["group"]) == 0 {
		return InterestAll()
	}
	return NewInterest(q["prefix"], q["group"])
}

// normalize sorts, dedupes, and prunes prefix-subsumed terms ("/a"
// makes "/a/b" redundant). In sorted order every string subsumed by a
// kept prefix q sorts inside (q, q-with-continuation], so comparing
// against only the most recently kept term finds every subsumption.
func (s *InterestSet) normalize() {
	sort.Strings(s.prefixes)
	out := s.prefixes[:0]
	for _, p := range s.prefixes {
		if n := len(out); n > 0 && strings.HasPrefix(p, out[n-1]) {
			continue
		}
		out = append(out, p)
	}
	s.prefixes = out
	sort.Strings(s.groups)
	gout := s.groups[:0]
	for _, g := range s.groups {
		if n := len(gout); n > 0 && gout[n-1] == g {
			continue
		}
		gout = append(gout, g)
	}
	s.groups = gout
}

// IsAll reports whether the set matches every event.
func (s InterestSet) IsAll() bool { return s.all }

// IsEmpty reports whether the set matches no update events (the state
// of a declaration with nothing to declare — not the same as IsAll).
func (s InterestSet) IsEmpty() bool {
	return !s.all && len(s.prefixes) == 0 && len(s.groups) == 0
}

// Matches reports whether an update for key (in group, possibly empty)
// falls inside the set: the key carries one of the declared prefixes,
// or the group is one of the declared groups.
func (s InterestSet) Matches(key, group string) bool {
	if s.all {
		return true
	}
	for _, p := range s.prefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	if group != "" {
		for _, g := range s.groups {
			if g == group {
				return true
			}
		}
	}
	return false
}

// matchesFrame reports whether a rendered frame falls inside the set.
// Control frames (hello, heartbeat) always match: filtering applies to
// update content only, never to the stream's liveness or Reset
// machinery.
func (s InterestSet) matchesFrame(re RenderedEvent) bool {
	if re.Kind != KindUpdate {
		return true
	}
	return s.Matches(re.Key, re.Group)
}

// Covers reports whether every event matching o also matches s. It is
// conservative: prefixes are only covered by prefixes and groups by
// groups, so a false negative is possible but a true result is always
// sound — which is the direction that matters, since an uncovered
// downstream declaration forces the upstream subscription to widen.
func (s InterestSet) Covers(o InterestSet) bool {
	if s.all {
		return true
	}
	if o.all {
		return false
	}
	for _, op := range o.prefixes {
		covered := false
		for _, sp := range s.prefixes {
			if strings.HasPrefix(op, sp) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	for _, og := range o.groups {
		covered := false
		for _, sg := range s.groups {
			if sg == og {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Union returns the set matching everything either input matches,
// widening to match-all when the merged declaration overflows the
// bounds.
func (s InterestSet) Union(o InterestSet) InterestSet {
	if s.all || o.all {
		return InterestAll()
	}
	u := InterestSet{
		prefixes: append(append([]string(nil), s.prefixes...), o.prefixes...),
		groups:   append(append([]string(nil), s.groups...), o.groups...),
	}
	u.normalize()
	if len(u.prefixes) > maxInterestTerms || len(u.groups) > maxInterestTerms {
		return InterestAll()
	}
	return u
}

// Prefixes returns a copy of the declared path prefixes.
func (s InterestSet) Prefixes() []string {
	return append([]string(nil), s.prefixes...)
}

// Groups returns a copy of the declared consistency groups.
func (s InterestSet) Groups() []string {
	return append([]string(nil), s.groups...)
}

// EncodeQuery renders the set as URL query parameters ("prefix=...&
// group=...", escaped), empty for match-all. An empty set also encodes
// as no constraints: the wire has no way to ask for nothing, and a
// subscriber with nothing to declare tolerates extra frames — fail
// open, never narrow.
func (s InterestSet) EncodeQuery() string {
	if s.all {
		return ""
	}
	var b strings.Builder
	for _, p := range s.prefixes {
		if b.Len() > 0 {
			b.WriteByte('&')
		}
		b.WriteString("prefix=")
		b.WriteString(url.QueryEscape(p))
	}
	for _, g := range s.groups {
		if b.Len() > 0 {
			b.WriteByte('&')
		}
		b.WriteString("group=")
		b.WriteString(url.QueryEscape(g))
	}
	return b.String()
}
