package push

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindHello, Seq: 42, Reset: true},
		{Kind: KindHello, Seq: 0},
		{Kind: KindUpdate, Seq: 7, Key: "/news/story.html", Group: "frontpage",
			ModTime: time.Unix(1700000000, 0)},
		{Kind: KindUpdate, Seq: 8, Key: "/stock?sym=A B&x=ü", Group: "a b"},
		{Kind: KindUpdate, Seq: 1 << 60, Key: "/k"},
		// A literal "-" collides with the empty-field sentinel and must
		// survive the trip via forced escaping.
		{Kind: KindUpdate, Seq: 9, Key: "-", Group: "-"},
		{Kind: KindHeartbeat, Seq: 99},
	}
	for _, want := range events {
		wire := want.Encode()
		if strings.ContainsAny(wire, "\r\n") {
			t.Errorf("Encode(%+v) contains a newline: %q", want, wire)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Errorf("Decode(%q): %v", wire, err)
			continue
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Key != want.Key ||
			got.Group != want.Group || got.Reset != want.Reset ||
			!got.ModTime.Equal(want.ModTime) {
			t.Errorf("round trip: got %+v want %+v (wire %q)", got, want, wire)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"v1",
		"v1 2 3",
		"v2 2 1 0 - /k -",                    // v2 with the v1 field count
		"v3 2 1 0 - /k - - - 0 -",            // unsupported version
		"w1 2 1 0 - /k -",                    // bad version tag
		"v1 9 1 0 - /k -",                    // unknown kind
		"v1 2 x 0 - /k -",                    // bad seq
		"v1 2 1 y - /k -",                    // bad modtime
		"v1 2 1 0 z /k -",                    // bad flags
		"v1 2 1 0 p /k -",                    // payload flag on a v1 frame
		"v1 2 1 0 - %zz -",                   // bad key escape
		"v1 2 1 0 - /k %zz",                  // bad group escape
		"v1 2 1 0 - - -",                     // update without key
		"v1 2 1 0 - /k - trailing",           // too many fields
		"v1 -1 1 0 - /k -",                   // negative kind
		"v1 2 18446744073709551616 0 - /k -", // seq overflow
		strings.Repeat("x", MaxFrameLen+1),
		"v2 2 1 0 - /k - - - 0 !!!not-base64!!!", // hostile base64
		"v2 2 1 0 p /k - - - 0 " + "====",        // hostile base64 padding
		"v2 2 1 0 - /k - - zz 0 -",               // non-hex digest
		"v2 2 1 0 - /k - - " + strings.Repeat("a", 65) + " 0 -",                    // digest too long
		"v2 2 1 0 - /k - - - x -",                                                  // bad payload cap
		"v2 2 1 0 - /k - - - 0 " + b64(1),                                          // payload without the p flag
		"v2 2 1 0 p /k - - - 0 " + base64.StdEncoding.EncodeToString(nil) + "====", // empty payload spelled out
		"v1 2 1 0 - /" + strings.Repeat("k", MaxFrameLen) + " -",                   // v1 over the frame limit
		"v2 2 1 0 p /" + strings.Repeat("k", MaxFrameLen) + " - - - 0 " + b64(8),   // v2 envelope over the limit
		// Raw newlines ride one byte each on a hostile wire but re-encode
		// to three (%0A): the canonical envelope is over the limit even
		// though the frame as sent is not (fuzz-found; an accepted event
		// must always be re-encodable within bounds).
		"v1 2 1 0 - /k " + strings.Repeat("\n", MaxFrameLen/2),
	}
	for _, wire := range bad {
		if _, err := Decode(wire); err == nil {
			t.Errorf("Decode(%q) accepted malformed frame", truncateForLog(wire))
		}
	}
}

func b64(n int) string {
	return base64.StdEncoding.EncodeToString(make([]byte, n))
}

func truncateForLog(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

// TestEncodeDecodeRoundTripV2 pins the payload extension: bodies,
// digests, content types, and payload caps survive the wire, the
// envelope stays v1 when none of them is present, and cap-boundary
// payload sizes round-trip exactly.
func TestEncodeDecodeRoundTripV2(t *testing.T) {
	big := make([]byte, MaxPayloadCap)
	for i := range big {
		big[i] = byte(i)
	}
	events := []Event{
		{Kind: KindUpdate, Seq: 1, Key: "/quote/acme", Body: []byte("165.38\n"), HasBody: true,
			ContentType: "text/plain; charset=utf-8", Digest: DigestOf([]byte("165.38\n")),
			ModTime: time.Unix(1700000000, 0)},
		{Kind: KindUpdate, Seq: 2, Key: "/img", Body: []byte{0, 1, 2, 0xff}, HasBody: true,
			Digest: DigestOf([]byte{0, 1, 2, 0xff})},
		// Empty body: present, zero length — distinct from no payload.
		{Kind: KindUpdate, Seq: 3, Key: "/empty", Body: []byte{}, HasBody: true, Digest: DigestOf(nil)},
		// Digest without payload: what a stream-side strip leaves behind
		// must still parse (a consumer treats it as invalidation-only).
		{Kind: KindUpdate, Seq: 4, Key: "/stripped", Digest: "deadbeef00112233"},
		// Hello with a negotiated cap.
		{Kind: KindHello, Seq: 9, PayloadCap: 4096},
		{Kind: KindHello, Seq: 9, Reset: true, PayloadCap: DefaultPayloadCap},
		// Reset flag plus payload (not emitted today, but representable).
		{Kind: KindUpdate, Seq: 5, Key: "/rp", Reset: true, Body: []byte("x"), HasBody: true},
		// Cap-boundary body.
		{Kind: KindUpdate, Seq: 6, Key: "/big", Body: big, HasBody: true, Digest: DigestOf(big)},
	}
	for _, want := range events {
		wire := want.Encode()
		if !strings.HasPrefix(wire, "v2 ") {
			t.Errorf("Encode(%+v) did not select v2: %q", want, truncateForLog(wire))
		}
		got, err := Decode(wire)
		if err != nil {
			t.Errorf("Decode(%q): %v", truncateForLog(wire), err)
			continue
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Key != want.Key ||
			got.Group != want.Group || got.Reset != want.Reset ||
			!got.ModTime.Equal(want.ModTime) || got.HasBody != want.HasBody ||
			!bytes.Equal(got.Body, want.Body) || got.ContentType != want.ContentType ||
			got.Digest != want.Digest || got.PayloadCap != want.PayloadCap {
			t.Errorf("v2 round trip diverged for %+v", want)
		}
	}

	// Invalidation-only events must keep the v1 envelope byte for byte:
	// a pre-v2 consumer interoperates with a value-capable hub.
	plain := Event{Kind: KindUpdate, Seq: 7, Key: "/k", Group: "g", ModTime: time.Unix(1700000000, 0)}
	if wire := plain.Encode(); !strings.HasPrefix(wire, "v1 ") {
		t.Errorf("invalidation-only event encoded as %q, want a v1 frame", wire)
	}
	stripped := events[0].StripPayload()
	if wire := stripped.Encode(); !strings.HasPrefix(wire, "v1 ") {
		t.Errorf("stripped event encoded as %q, want a v1 frame", wire)
	}
}

// TestOversizedIsEnvelopeOnly: a fat payload must not trip the envelope
// bound — payloads are governed by the negotiated cap, and conflating
// the two would drop every value-carrying event over 4KB.
func TestOversizedIsEnvelopeOnly(t *testing.T) {
	ev := Event{Kind: KindUpdate, Key: "/k", Body: make([]byte, 64<<10), HasBody: true}
	if ev.Oversized() {
		t.Error("payload size tripped the envelope bound")
	}
	ev.Key = "/" + strings.Repeat("k", MaxFrameLen)
	if !ev.Oversized() {
		t.Error("oversized key not detected")
	}
}

// TestOversizedCoversV2Envelope: the envelope bound must hold for every
// frame an event can emit — the stripped v1 form AND the v2 form with
// its ctype/digest/cap fields. A near-limit key whose v1 frame fits but
// whose v2 envelope does not would otherwise pass the hub's publish
// check and then be rejected by every payload-negotiated subscriber: a
// poisonous replay-ring frame and a reconnect livelock.
func TestOversizedCoversV2Envelope(t *testing.T) {
	key := "/" + strings.Repeat("k", MaxFrameLen-20)
	plain := Event{Kind: KindUpdate, Key: key}
	if plain.Oversized() {
		t.Fatal("test premise broken: the bare invalidation form should fit")
	}
	body := []byte("165.38\n")
	rich := Event{Kind: KindUpdate, Key: key, Body: body, HasBody: true,
		ContentType: "text/plain; charset=utf-8", Digest: DigestOf(body)}
	if !rich.Oversized() {
		t.Fatal("v2 envelope over the limit not detected")
	}
	// The contract that matters downstream: any event Oversized()
	// approves emits only decodable frames, full or stripped.
	small := Event{Kind: KindUpdate, Key: "/k", Body: body, HasBody: true,
		ContentType: "text/plain", Digest: DigestOf(body)}
	if small.Oversized() {
		t.Fatal("small event misreported oversized")
	}
	for _, wire := range []string{small.Encode(), small.StripPayload().Encode()} {
		if _, err := Decode(wire); err != nil {
			t.Errorf("frame of a non-oversized event failed to decode: %v", err)
		}
	}
}

func TestDigestOf(t *testing.T) {
	d := DigestOf([]byte("165.38\n"))
	if len(d) != 16 {
		t.Errorf("digest %q length %d, want 16 hex chars", d, len(d))
	}
	if d == DigestOf([]byte("165.39\n")) {
		t.Error("distinct bodies share a digest")
	}
	if d != DigestOf([]byte("165.38\n")) {
		t.Error("digest not deterministic")
	}
}

// sseServer is a minimal scriptable event-stream endpoint.
type sseServer struct {
	mu      sync.Mutex
	streams []chan string // lines pushed to connected clients
	conns   atomic.Int64
	lastURL atomic.Value // string: most recent request URL
}

func (s *sseServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.lastURL.Store(r.URL.String())
	s.conns.Add(1)
	fl := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	ch := make(chan string, 64)
	s.mu.Lock()
	s.streams = append(s.streams, ch)
	s.mu.Unlock()
	for {
		select {
		case <-r.Context().Done():
			return
		case line, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		}
	}
}

// send pushes a raw frame to every connected stream.
func (s *sseServer) send(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		select {
		case ch <- line:
		default:
		}
	}
}

// kill closes every connected stream.
func (s *sseServer) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		close(ch)
	}
	s.streams = nil
}

func waitCond(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestSubscriberReceivesEventsAndResumes(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var mu sync.Mutex
	var got []Event
	var connects, disconnects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL: ts.URL + "/events",
		OnEvent: func(ev Event) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		},
		OnConnect:    func(Event, bool) { connects.Add(1) },
		OnDisconnect: func(error) { disconnects.Add(1) },
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("subscriber never connected")
	}
	srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return connects.Load() == 1 }) {
		t.Fatal("OnConnect never fired")
	}
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())
	srv.send(Event{Kind: KindUpdate, Seq: 2, Key: "/b"}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 2 }) {
		t.Fatalf("LastSeq = %d, want 2", sub.LastSeq())
	}

	// Kill the stream: the subscriber must report the disconnect and
	// reconnect with ?since=2.
	srv.kill()
	if !waitCond(t, 2*time.Second, func() bool { return disconnects.Load() == 1 }) {
		t.Fatal("OnDisconnect never fired")
	}
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("subscriber never reconnected")
	}
	srv.send(Event{Kind: KindHello, Seq: 2}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return connects.Load() == 2 }) {
		t.Fatal("second OnConnect never fired")
	}
	if u, _ := srv.lastURL.Load().(string); !strings.Contains(u, "since=2") {
		t.Errorf("reconnect URL %q does not resume from seq 2", u)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Key != "/a" || got[1].Key != "/b" {
		t.Errorf("events = %+v", got)
	}
}

func TestSubscriberHeartbeatTimeout(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var disconnects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:              ts.URL,
		OnEvent:          func(Event) {},
		OnDisconnect:     func(error) { disconnects.Add(1) },
		BackoffMin:       5 * time.Millisecond,
		HeartbeatTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
	// Silence follows: the watchdog must declare the stream dead.
	if !waitCond(t, 2*time.Second, func() bool { return disconnects.Load() >= 1 }) {
		t.Fatal("heartbeat watchdog never fired")
	}
	// Heartbeats keep a stream alive through a second connection.
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected")
	}
}

func TestSubscriberRejectsStreamWithoutHello(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var connects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		OnConnect:  func(Event, bool) { connects.Add(1) },
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())
	// The protocol violation forces a reconnect without OnConnect firing.
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected after protocol violation")
	}
	if connects.Load() != 0 {
		t.Errorf("OnConnect fired %d times for a hello-less stream", connects.Load())
	}
}

func TestSubscriberBackoffOnRefusedConnections(t *testing.T) {
	// A server that always 503s: the subscriber must keep retrying
	// without ever reporting a connect or disconnect.
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var transitions atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:          ts.URL,
		OnEvent:      func(Event) {},
		OnConnect:    func(Event, bool) { transitions.Add(1) },
		OnDisconnect: func(error) { transitions.Add(1) },
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return attempts.Load() >= 3 }) {
		t.Fatalf("only %d attempts; backoff retry seems broken", attempts.Load())
	}
	if transitions.Load() != 0 {
		t.Error("connect/disconnect callbacks fired for failed attempts")
	}
}

func TestSubscriberResetHelloFastForwardsResumePoint(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	// A Reset hello (server could not replay the gap) must fast-forward
	// the resume point: without it every later reconnect re-requests the
	// stale seq and re-triggers a Reset reconciliation.
	srv.send(Event{Kind: KindHello, Seq: 50, Reset: true}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 50 }) {
		t.Fatalf("LastSeq = %d after Reset hello, want 50", sub.LastSeq())
	}
	srv.kill()
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected")
	}
	if u, _ := srv.lastURL.Load().(string); !strings.Contains(u, "since=50") {
		t.Errorf("reconnect URL %q does not resume from the reset point", u)
	}
}

func TestSubscriberConfigValidation(t *testing.T) {
	if _, err := NewSubscriber(SubscriberConfig{OnEvent: func(Event) {}}); err == nil {
		t.Error("missing URL must fail")
	}
	if _, err := NewSubscriber(SubscriberConfig{URL: "http://x"}); err == nil {
		t.Error("missing OnEvent must fail")
	}
}

func TestSubscriberStopsOnContextCancel(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		BackoffMin: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sub.Run(ctx); close(done) }()
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// BenchmarkEventRender measures the render-once cost itself: producing
// both wire forms (full and payload-stripped) of a value-carrying
// event. On the publish path this price is paid exactly once per event
// regardless of fan-out; per-subscriber delivery only picks one of the
// two pre-rendered byte slices.
func BenchmarkEventRender(b *testing.B) {
	body := bytes.Repeat([]byte("v"), 512)
	ev := Event{Kind: KindUpdate, Seq: 42, Key: "/obj/path", Group: "g",
		ModTime: time.Unix(1_700_000_000, 0), Body: body, HasBody: true,
		Digest: DigestOf(body)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re := Render(ev)
		if len(re.full) == 0 || len(re.stripped) == 0 {
			b.Fatal("render produced an empty form")
		}
	}
}
