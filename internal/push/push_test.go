package push

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindHello, Seq: 42, Reset: true},
		{Kind: KindHello, Seq: 0},
		{Kind: KindUpdate, Seq: 7, Key: "/news/story.html", Group: "frontpage",
			ModTime: time.Unix(1700000000, 0)},
		{Kind: KindUpdate, Seq: 8, Key: "/stock?sym=A B&x=ü", Group: "a b"},
		{Kind: KindUpdate, Seq: 1 << 60, Key: "/k"},
		// A literal "-" collides with the empty-field sentinel and must
		// survive the trip via forced escaping.
		{Kind: KindUpdate, Seq: 9, Key: "-", Group: "-"},
		{Kind: KindHeartbeat, Seq: 99},
	}
	for _, want := range events {
		wire := want.Encode()
		if strings.ContainsAny(wire, "\r\n") {
			t.Errorf("Encode(%+v) contains a newline: %q", want, wire)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Errorf("Decode(%q): %v", wire, err)
			continue
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Key != want.Key ||
			got.Group != want.Group || got.Reset != want.Reset ||
			!got.ModTime.Equal(want.ModTime) {
			t.Errorf("round trip: got %+v want %+v (wire %q)", got, want, wire)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"v1",
		"v1 2 3",
		"v2 2 1 0 - /k -",                    // wrong version
		"w1 2 1 0 - /k -",                    // bad version tag
		"v1 9 1 0 - /k -",                    // unknown kind
		"v1 2 x 0 - /k -",                    // bad seq
		"v1 2 1 y - /k -",                    // bad modtime
		"v1 2 1 0 z /k -",                    // bad flags
		"v1 2 1 0 - %zz -",                   // bad key escape
		"v1 2 1 0 - /k %zz",                  // bad group escape
		"v1 2 1 0 - - -",                     // update without key
		"v1 2 1 0 - /k - trailing",           // too many fields
		"v1 -1 1 0 - /k -",                   // negative kind
		"v1 2 18446744073709551616 0 - /k -", // seq overflow
		strings.Repeat("x", MaxFrameLen+1),
	}
	for _, wire := range bad {
		if _, err := Decode(wire); err == nil {
			t.Errorf("Decode(%q) accepted malformed frame", wire)
		}
	}
}

// sseServer is a minimal scriptable event-stream endpoint.
type sseServer struct {
	mu      sync.Mutex
	streams []chan string // lines pushed to connected clients
	conns   atomic.Int64
	lastURL atomic.Value // string: most recent request URL
}

func (s *sseServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.lastURL.Store(r.URL.String())
	s.conns.Add(1)
	fl := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	ch := make(chan string, 64)
	s.mu.Lock()
	s.streams = append(s.streams, ch)
	s.mu.Unlock()
	for {
		select {
		case <-r.Context().Done():
			return
		case line, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		}
	}
}

// send pushes a raw frame to every connected stream.
func (s *sseServer) send(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		select {
		case ch <- line:
		default:
		}
	}
}

// kill closes every connected stream.
func (s *sseServer) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		close(ch)
	}
	s.streams = nil
}

func waitCond(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestSubscriberReceivesEventsAndResumes(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var mu sync.Mutex
	var got []Event
	var connects, disconnects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL: ts.URL + "/events",
		OnEvent: func(ev Event) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		},
		OnConnect:    func(Event, bool) { connects.Add(1) },
		OnDisconnect: func(error) { disconnects.Add(1) },
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("subscriber never connected")
	}
	srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return connects.Load() == 1 }) {
		t.Fatal("OnConnect never fired")
	}
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())
	srv.send(Event{Kind: KindUpdate, Seq: 2, Key: "/b"}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 2 }) {
		t.Fatalf("LastSeq = %d, want 2", sub.LastSeq())
	}

	// Kill the stream: the subscriber must report the disconnect and
	// reconnect with ?since=2.
	srv.kill()
	if !waitCond(t, 2*time.Second, func() bool { return disconnects.Load() == 1 }) {
		t.Fatal("OnDisconnect never fired")
	}
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("subscriber never reconnected")
	}
	srv.send(Event{Kind: KindHello, Seq: 2}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return connects.Load() == 2 }) {
		t.Fatal("second OnConnect never fired")
	}
	if u, _ := srv.lastURL.Load().(string); !strings.Contains(u, "since=2") {
		t.Errorf("reconnect URL %q does not resume from seq 2", u)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Key != "/a" || got[1].Key != "/b" {
		t.Errorf("events = %+v", got)
	}
}

func TestSubscriberHeartbeatTimeout(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var disconnects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:              ts.URL,
		OnEvent:          func(Event) {},
		OnDisconnect:     func(error) { disconnects.Add(1) },
		BackoffMin:       5 * time.Millisecond,
		HeartbeatTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	srv.send(Event{Kind: KindHello, Seq: 0}.Encode())
	// Silence follows: the watchdog must declare the stream dead.
	if !waitCond(t, 2*time.Second, func() bool { return disconnects.Load() >= 1 }) {
		t.Fatal("heartbeat watchdog never fired")
	}
	// Heartbeats keep a stream alive through a second connection.
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected")
	}
}

func TestSubscriberRejectsStreamWithoutHello(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var connects atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		OnConnect:  func(Event, bool) { connects.Add(1) },
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	srv.send(Event{Kind: KindUpdate, Seq: 1, Key: "/a"}.Encode())
	// The protocol violation forces a reconnect without OnConnect firing.
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected after protocol violation")
	}
	if connects.Load() != 0 {
		t.Errorf("OnConnect fired %d times for a hello-less stream", connects.Load())
	}
}

func TestSubscriberBackoffOnRefusedConnections(t *testing.T) {
	// A server that always 503s: the subscriber must keep retrying
	// without ever reporting a connect or disconnect.
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var transitions atomic.Int64
	sub, err := NewSubscriber(SubscriberConfig{
		URL:          ts.URL,
		OnEvent:      func(Event) {},
		OnConnect:    func(Event, bool) { transitions.Add(1) },
		OnDisconnect: func(error) { transitions.Add(1) },
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return attempts.Load() >= 3 }) {
		t.Fatalf("only %d attempts; backoff retry seems broken", attempts.Load())
	}
	if transitions.Load() != 0 {
		t.Error("connect/disconnect callbacks fired for failed attempts")
	}
}

func TestSubscriberResetHelloFastForwardsResumePoint(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)

	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	// A Reset hello (server could not replay the gap) must fast-forward
	// the resume point: without it every later reconnect re-requests the
	// stale seq and re-triggers a Reset reconciliation.
	srv.send(Event{Kind: KindHello, Seq: 50, Reset: true}.Encode())
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 50 }) {
		t.Fatalf("LastSeq = %d after Reset hello, want 50", sub.LastSeq())
	}
	srv.kill()
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 2 }) {
		t.Fatal("never reconnected")
	}
	if u, _ := srv.lastURL.Load().(string); !strings.Contains(u, "since=50") {
		t.Errorf("reconnect URL %q does not resume from the reset point", u)
	}
}

func TestSubscriberConfigValidation(t *testing.T) {
	if _, err := NewSubscriber(SubscriberConfig{OnEvent: func(Event) {}}); err == nil {
		t.Error("missing URL must fail")
	}
	if _, err := NewSubscriber(SubscriberConfig{URL: "http://x"}); err == nil {
		t.Error("missing OnEvent must fail")
	}
}

func TestSubscriberStopsOnContextCancel(t *testing.T) {
	srv := &sseServer{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    func(Event) {},
		BackoffMin: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sub.Run(ctx); close(done) }()
	if !waitCond(t, 2*time.Second, func() bool { return srv.conns.Load() >= 1 }) {
		t.Fatal("never connected")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}
