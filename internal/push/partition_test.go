package push

// This file pins the prefix-partitioned replay ring: partition naming,
// the partition-scoped resume-hole rule (a gap made only of foreign-
// partition frames is no hole), the byte budget's fattest-first trim
// (a narrow subtree's replay window survives bursts elsewhere), the
// partition-local anchor cadence for the delta ladder, and the
// contention benchmarks the ISSUE's publish-latency bound is gated on.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPartitionName(t *testing.T) {
	cases := []struct{ key, want string }{
		{"/news/politics/1", "/news/"},
		{"/news/", "/news/"},
		{"/news", "/news"},
		{"/", "/"},
		{"/a/b?x=1", "/a/"},
		{"/page?x=1", "/page"},
		{"", ""},
		{"relative/key", ""},
		{"urn:object:7", ""},
	}
	for _, c := range cases {
		if got := partitionName(c.key); got != c.want {
			t.Errorf("partitionName(%q) = %q, want %q", c.key, got, c.want)
		}
	}
	// The name must be a prefix of its key — that is what makes
	// interest-to-partition relevance sound.
	for _, c := range cases {
		if p := partitionName(c.key); p != "" && !bytes.HasPrefix([]byte(c.key), []byte(p)) {
			t.Errorf("partition %q is not a prefix of its key %q", p, c.key)
		}
	}
}

// fillTwoPartitions interleaves a narrow subtree of plain invalidations
// with a wide subtree of fat payloads until the wide partition blows
// the hub's byte budget and gets trimmed. Narrow frames land on odd
// sequence numbers (1, 3, ... 23), wide on even.
func fillTwoPartitions(t testing.TB) *Hub {
	t.Helper()
	h := NewHub(HubConfig{PayloadCap: 4096, ReplayLen: 1024, ReplayBytes: 8192})
	for i := 0; i < 12; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: fmt.Sprintf("/narrow/%d", i)})
		body := bytes.Repeat([]byte{byte('a' + i)}, 900)
		h.Publish(Event{Kind: KindUpdate, Key: fmt.Sprintf("/wide/%d", i),
			Body: body, HasBody: true, Digest: DigestOf(body)})
	}
	return h
}

// TestHubPartitionedResumeForeignHole: after the byte budget trims the
// fat /wide/ partition, a /narrow/-interested resumer crossing the gap
// gets a clean replay (the pruned frames are foreign to it), while a
// /wide/-interested or unfiltered resumer over the same gap still
// Resets — the hole is real inside a partition they declared.
func TestHubPartitionedResumeForeignHole(t *testing.T) {
	h := fillTwoPartitions(t)
	if st := h.Stats(); st.ReplayLen >= 24 {
		t.Fatalf("byte budget did not trim: ReplayLen=%d", st.ReplayLen)
	}

	hello, sub, ok := h.subscribe(1, 0, NewInterest([]string{"/narrow/"}, nil), nil)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)
	if hello.Reset {
		t.Fatal("narrow resumer Reset over a hole made only of foreign-partition frames")
	}
	backlog := fetchAll(h, sub)
	if len(backlog) != 11 {
		t.Fatalf("narrow replay delivered %d frames, want 11", len(backlog))
	}
	for i, re := range backlog {
		ev, err := Decode(re.WireFor(0))
		if err != nil {
			t.Fatalf("backlog[%d] does not decode: %v", i, err)
		}
		if want := fmt.Sprintf("/narrow/%d", i+1); ev.Key != want {
			t.Fatalf("backlog[%d] = %q, want %q", i, ev.Key, want)
		}
	}
	// The position proven by the walk must be the stream head, not the
	// last narrow frame: the foreign gap is jumped, so a reconnect from
	// here never re-crosses it.
	if cur := sub.cursor.Load(); cur != h.LastSeq() {
		t.Errorf("narrow walk proved position %d, want head %d", cur, h.LastSeq())
	}
	if h.Stats().ResumeHoles != 0 {
		t.Error("a foreign-partition gap was counted as a resume hole")
	}

	hello2, sub2, _ := h.subscribe(1, 4096, NewInterest([]string{"/wide/"}, nil), nil)
	defer h.unsubscribe(sub2)
	if !hello2.Reset {
		t.Error("wide resumer not Reset over a genuine gap in its own partition")
	}
	hello3, sub3, _ := h.subscribe(1, 0, InterestAll(), nil)
	defer h.unsubscribe(sub3)
	if !hello3.Reset {
		t.Error("unfiltered resumer not Reset over a pruned partition")
	}
	if holes := h.Stats().ResumeHoles; holes != 2 {
		t.Errorf("ResumeHoles = %d, want 2", holes)
	}
}

// TestHubPartitionBudgetProtectsNarrowSubtree pins the acceptance
// behavior: the ring's byte budget trims the fattest partition first,
// so a narrow subtree's residency is bounded by ITS OWN traffic — the
// wide partition's burst cannot evict the narrow history — and the
// per-partition split is visible in Stats (and through /metrics).
func TestHubPartitionBudgetProtectsNarrowSubtree(t *testing.T) {
	h := fillTwoPartitions(t)
	st := h.Stats()
	if st.ReplayBytes > st.ReplayByteCap {
		t.Fatalf("ring over budget: %d > %d", st.ReplayBytes, st.ReplayByteCap)
	}
	if len(st.Partitions) != 2 {
		t.Fatalf("Partitions = %+v, want a /narrow/ and a /wide/ entry", st.Partitions)
	}
	var narrow, wide *HubPartitionStats
	for i := range st.Partitions {
		switch st.Partitions[i].Name {
		case "/narrow/":
			narrow = &st.Partitions[i]
		case "/wide/":
			wide = &st.Partitions[i]
		}
	}
	if narrow == nil || wide == nil {
		t.Fatalf("Partitions = %+v", st.Partitions)
	}
	// All 12 narrow invalidations cost well under a single wide body;
	// every one of them must still be resident.
	if narrow.Bytes >= 900 {
		t.Errorf("narrow partition holds %d bytes — foreign traffic charged to it?", narrow.Bytes)
	}
	if wide.Bytes+narrow.Bytes != st.ReplayBytes {
		t.Errorf("partition bytes %d+%d do not sum to ReplayBytes %d",
			narrow.Bytes, wide.Bytes, st.ReplayBytes)
	}
	_, sub, ok := h.subscribe(1, 0, NewInterest([]string{"/narrow/"}, nil), nil)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)
	if got := len(fetchAll(h, sub)); got != 11 {
		t.Errorf("narrow history trimmed to %d frames by the wide burst, want 11", got)
	}
}

// TestHubHeldDeltaReplayPartitionLocalAnchors re-proves the PR 9 anchor
// ladder over the partitioned ring: the thinning cadence is counted per
// partition, not per global sequence number. /narrow/obj revisions ride
// even sequence numbers (foreign traffic interleaves on odd ones), so a
// global-seq cadence would anchor the wrong frames; the partition-local
// count anchors revisions 4 and 8 exactly as an unshared hub would.
func TestHubHeldDeltaReplayPartitionLocalAnchors(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap, AnchorEvery: 4})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	bodies := make([][]byte, 9)
	bodies[0] = bytes.Repeat([]byte("revision zero body line\n"), 20)
	for i := 1; i <= 8; i++ {
		// Foreign-partition traffic interleaves: revision i lands on
		// global seq 2i while its partition-local publish count is i.
		h.Publish(Event{Kind: KindUpdate, Key: fmt.Sprintf("/noise/%d", i)})
		bodies[i] = append(append([]byte(nil), bodies[i-1]...),
			[]byte(fmt.Sprintf("line added at revision %d\n", i))...)
		delta, ok := MakeDelta(bodies[i-1], bodies[i])
		if !ok {
			t.Fatalf("no delta at revision %d", i)
		}
		h.Publish(Event{Kind: KindUpdate, Key: "/narrow/obj", Body: bodies[i], HasBody: true,
			Digest: DigestOf(bodies[i]), BaseDigest: DigestOf(bodies[i-1]),
			DeltaCodec: DeltaCodecBlock, DeltaBody: delta})
	}

	start := func(sink *hubSink, held func() []HeldDigest) {
		sub, err := NewSubscriber(SubscriberConfig{
			URL:        ts.URL,
			OnEvent:    sink.onEvent,
			OnConnect:  sink.onConnect,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 50 * time.Millisecond,
			PayloadCap: DefaultPayloadCap,
			Interest:   func() InterestSet { return NewInterest([]string{"/narrow/"}, nil) },
			Held:       held,
		})
		if err != nil {
			t.Fatal(err)
		}
		sub.lastSeq.Store(2) // resume holding revision 1 (global seq 2)
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		go sub.Run(ctx)
	}

	// A resumer holding revision 1: the partition-local replay (revisions
	// 2..8) must arrive entirely on the delta rung — and never a /noise/
	// frame, which its interest excludes.
	held := &hubSink{}
	start(held, func() []HeldDigest {
		return []HeldDigest{{Key: "/narrow/obj", Digest: DigestOf(bodies[1])}}
	})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := held.snapshot()
		return len(evs) == 7
	}) {
		evs, _, _ := held.snapshot()
		t.Fatalf("held replay delivered %d events, want 7", len(evs))
	}
	evs, _, _ := held.snapshot()
	for _, ev := range evs {
		if ev.Key != "/narrow/obj" {
			t.Fatalf("interest-filtered replay leaked a foreign frame: %+v", ev)
		}
		if ev.BaseDigest == "" {
			t.Fatalf("a held resumer fell off the delta rung: %+v", ev)
		}
	}
	cur, _ := applyLadderChain(t, evs, bodies[1], true)
	if !bytes.Equal(cur, bodies[8]) {
		t.Fatal("held replay did not converge on the final body")
	}

	// A blank resumer rides stripped frames until the partition-LOCAL
	// anchor at revision 4 (global seq 8 — a global-seq cadence of 4
	// would have anchored revision 2 instead), then chains deltas.
	blank := &hubSink{}
	start(blank, nil)
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := blank.snapshot()
		return len(evs) == 7
	}) {
		evs, _, _ := blank.snapshot()
		t.Fatalf("blank replay delivered %d events, want 7", len(evs))
	}
	bevs, _, _ := blank.snapshot()
	for i, ev := range bevs[:2] { // revisions 2 and 3: thinned, no base held
		if ev.HasBody || ev.BaseDigest != "" {
			t.Fatalf("pre-anchor frame %d should be stripped for a blank resumer: %+v", i, ev)
		}
	}
	if !bevs[2].HasBody || bevs[2].BaseDigest != "" {
		t.Fatalf("revision 4 is the partition-local anchor and must replay full: %+v", bevs[2])
	}
	cur, sawAnchor := applyLadderChain(t, bevs, nil, false)
	if !sawAnchor {
		t.Fatal("no full anchor in the thinned partition-local replay")
	}
	if !bytes.Equal(cur, bodies[8]) {
		t.Fatal("blank replay did not converge on the final body")
	}
}

// BenchmarkHubPublishContended is the ISSUE's publish-latency gate: one
// publisher against fleets of concurrently pulling subscribers PLUS an
// equal count of stalled ones that never drain. Publish takes the ring
// write lock only — it does zero per-subscriber work — so ns/op must
// stay flat (≤1.3x) from subs=1 to subs=256 and allocations must not
// grow with the fleet.
func BenchmarkHubPublishContended(b *testing.B) {
	for _, fleet := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("subs=%d", fleet), func(b *testing.B) {
			// A huge SubscriberBuffer keeps the slow-consumer scan from
			// reaping the deliberately stalled half of the fleet.
			h := NewHub(HubConfig{SubscriberBuffer: 1 << 30})
			wait := drainHubFleet(b, h, fleet, InterestAll())
			for i := 0; i < fleet; i++ {
				_, sub, ok := h.subscribe(0, 0, InterestAll(), nil)
				if !ok {
					b.Fatal("subscribe failed")
				}
				b.Cleanup(func() { h.unsubscribe(sub) })
			}
			ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish(ev)
			}
			b.StopTimer()
			h.KillAll()
			wait()
		})
	}
}

// BenchmarkHubReplayPartitioned measures a narrow-interest resume
// against a ring filled by eight subtrees: the walk merges only the
// declared partition's frames and jumps the foreign seven-eighths of
// the sequence space without touching them.
func BenchmarkHubReplayPartitioned(b *testing.B) {
	h := NewHub(HubConfig{ReplayLen: 1024})
	for i := 0; i < 1024; i++ {
		h.Publish(Event{Kind: KindUpdate, Key: fmt.Sprintf("/p%d/obj/%d", i%8, i)})
	}
	interest := NewInterest([]string{"/p3/"}, nil)
	scratch := make([]RenderedEvent, 0, fetchBatchLimit+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sub, ok := h.subscribe(1, 0, interest, nil)
		if !ok {
			b.Fatal("subscribe failed")
		}
		n := 0
		for {
			batch, boundary, gen, killed := h.fetch(sub, scratch[:0])
			if killed {
				b.Fatal("replay walk killed")
			}
			progressed := len(batch) > 0 || boundary > sub.cursor.Load()
			n += len(batch)
			sub.cursor.Store(boundary)
			sub.resetGen = gen
			if !progressed {
				break
			}
		}
		if n != 128 {
			b.Fatalf("replayed %d frames, want 128", n)
		}
		h.unsubscribe(sub)
	}
}
