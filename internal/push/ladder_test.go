package push

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file tests the v3 value-delivery ladder end to end inside the
// package: the delta codec, the v3 wire frames, the publish-time form
// set (RenderLadder), the hub's per-stream rung selection (delta when
// the stream holds the base, chunks when only per-chunk frames fit),
// and the subscriber's chunk reassembly. The cross-process halves —
// the proxy applying deltas against its cache and the relay re-basing
// them — live in internal/webproxy.

// --- delta codec ---

func TestMakeApplyDeltaRoundTrip(t *testing.T) {
	long := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	cases := []struct {
		name         string
		base, target []byte
	}{
		{"append", long, append(append([]byte(nil), long...), []byte("tail line\n")...)},
		{"prepend", long, append([]byte("head line\n"), long...)},
		{"edit middle", long, bytes.Replace(long, []byte("lazy"), []byte("busy"), 3)},
		{"moved block", append(long[4096:], long[:4096]...), long},
		{"identical", long, long},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			delta, ok := MakeDelta(c.base, c.target)
			if !ok {
				t.Fatalf("MakeDelta found no delta smaller than %d bytes", len(c.target))
			}
			if len(delta) >= len(c.target) {
				t.Fatalf("delta of %d bytes for a %d-byte target", len(delta), len(c.target))
			}
			got, err := ApplyDelta(DeltaCodecBlock, c.base, delta, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, c.target) {
				t.Fatalf("round trip diverged: %d bytes, want %d", len(got), len(c.target))
			}
		})
	}
}

func TestMakeDeltaRefusesWhenNotSmaller(t *testing.T) {
	cases := []struct {
		name         string
		base, target []byte
	}{
		{"empty base", nil, []byte("body")},
		{"empty target", []byte("body"), nil},
		{"disjoint content", []byte(strings.Repeat("a", 256)), []byte(strings.Repeat("z", 48))},
	}
	for _, c := range cases {
		if delta, ok := MakeDelta(c.base, c.target); ok {
			t.Errorf("%s: MakeDelta returned a %d-byte delta, want refusal", c.name, len(delta))
		}
	}
}

// TestApplyDeltaHostile drives the decoder with the streams a hostile
// upstream could craft. Every case must error — never panic, never
// return bytes — and the output bound must hold even when the stream
// itself is tiny (a small COPY loop amplifying the base).
func TestApplyDeltaHostile(t *testing.T) {
	base := []byte("0123456789abcdef")
	uv := func(vals ...byte) []byte { return vals } // readable literals below
	cases := []struct {
		name  string
		delta []byte
	}{
		{"unknown op", uv(0xff)},
		{"truncated add header", uv(opAdd)},
		{"add length past stream", uv(opAdd, 0x10, 'x')},
		{"truncated copy offset", uv(opCopy)},
		{"truncated copy length", uv(opCopy, 0x00)},
		{"copy offset out of base", uv(opCopy, 0x7f, 0x01)},
		{"copy length out of base", uv(opCopy, 0x08, 0x7f)},
		// 11 continuation bytes: an offset the uvarint decoder rejects
		// as overflow instead of silently truncating.
		{"monster varint", append([]byte{opCopy}, bytes.Repeat([]byte{0xff}, 11)...)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := ApplyDelta(DeltaCodecBlock, base, c.delta, 0)
			if err == nil {
				t.Fatalf("hostile stream accepted, %d bytes out", len(out))
			}
			if !errors.Is(err, ErrBadDelta) {
				t.Fatalf("error %v is not ErrBadDelta", err)
			}
		})
	}

	// Output amplification: a few bytes of COPY ops reference the whole
	// base repeatedly; maxSize must stop the build mid-way.
	var amplifier []byte
	for i := 0; i < 64; i++ {
		amplifier = append(amplifier, opCopy, 0x00, 0x10) // copy base[0:16]
	}
	if _, err := ApplyDelta(DeltaCodecBlock, base, amplifier, 100); err == nil {
		t.Fatal("amplified output exceeded maxSize without error")
	}
	if _, err := ApplyDelta(0, base, uv(opAdd, 0x01, 'x'), 0); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// --- v3 wire frames ---

func TestV3EncodeDecodeRoundTrip(t *testing.T) {
	body := []byte("delta-or-chunk-bytes")
	cases := []Event{
		{Kind: KindUpdate, Seq: 9, Key: "/obj", Body: body, HasBody: true,
			Digest: DigestOf([]byte("full")), BaseDigest: DigestOf([]byte("base")),
			DeltaCodec: DeltaCodecBlock, ModTime: time.Unix(1700000000, 0)},
		{Kind: KindUpdate, Seq: 10, Key: "/obj", Body: body, HasBody: true,
			Digest: DigestOf([]byte("full")), ChunkIndex: 2, ChunkTotal: 5,
			ContentType: "text/html", Group: "frontpage"},
		{Kind: KindUpdate, Seq: 11, Key: "/obj", Body: body, HasBody: true,
			Digest: DigestOf([]byte("full")), ChunkIndex: 0, ChunkTotal: 1},
	}
	for i, ev := range cases {
		wire := ev.Encode()
		if !strings.HasPrefix(wire, "v3 ") {
			t.Fatalf("case %d encoded as %q, want a v3 frame", i, wire)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.BaseDigest != ev.BaseDigest || got.DeltaCodec != ev.DeltaCodec ||
			got.ChunkIndex != ev.ChunkIndex || got.ChunkTotal != ev.ChunkTotal ||
			!bytes.Equal(got.Body, ev.Body) || got.Digest != ev.Digest ||
			got.Key != ev.Key || got.Seq != ev.Seq {
			t.Fatalf("case %d diverged: %+v vs %+v", i, ev, got)
		}
	}
}

// TestDecodeV3Rejections pins the structural rules of the delta/chunk
// extension: Decode must refuse (not half-parse) every frame whose
// ladder fields cannot describe a deliverable update.
func TestDecodeV3Rejections(t *testing.T) {
	frame := func(flags, digest, base, codec, ci, ct, payload string) string {
		return fmt.Sprintf("v3 2 1 0 %s /k - - %s 0 %s %s %s %s %s",
			flags, digest, base, codec, ci, ct, payload)
	}
	d := DigestOf([]byte("x"))
	cases := []struct {
		name, wire string
	}{
		{"base without codec", frame("p", d, d, "0", "0", "0", "aGk=")},
		{"codec without base", frame("p", d, "-", "1", "0", "0", "aGk=")},
		{"delta without payload", frame("-", d, d, "1", "0", "0", "-")},
		{"delta plus chunk state", frame("p", d, d, "1", "0", "2", "aGk=")},
		{"chunk index at total", frame("p", d, "-", "0", "2", "2", "aGk=")},
		{"chunk index past total", frame("p", d, "-", "0", "7", "2", "aGk=")},
		{"chunk index without total", frame("p", d, "-", "0", "3", "0", "aGk=")},
		{"chunk total over bound", frame("p", d, "-", "0", "0", "1025", "aGk=")},
		{"chunk without payload", frame("-", d, "-", "0", "0", "2", "-")},
		{"hostile base digest", frame("p", d, "nothex!!", "1", "0", "0", "aGk=")},
		{"v3 with no v3 fields", frame("p", d, "-", "0", "0", "0", "aGk=")},
		{"delta on a hello", "v3 1 1 0 p - - - " + d + " 0 " + d + " 1 0 0 aGk="},
	}
	for _, c := range cases {
		if ev, err := Decode(c.wire); err == nil {
			t.Errorf("%s: accepted as %+v", c.name, ev)
		}
	}
}

// --- publish-time form set ---

func TestRenderLadderSidecarForms(t *testing.T) {
	base := bytes.Repeat([]byte("base content line\n"), 40)
	body := append(append([]byte(nil), base...), []byte("new tail\n")...)
	delta, ok := MakeDelta(base, body)
	if !ok {
		t.Fatal("no delta")
	}
	ev := Event{Kind: KindUpdate, Seq: 3, Key: "/obj", Body: body, HasBody: true,
		Digest: DigestOf(body), BaseDigest: DigestOf(base), DeltaCodec: DeltaCodecBlock,
		DeltaBody: delta}
	re := RenderLadder(ev, 256)

	full, err := Decode(re.Full())
	if err != nil {
		t.Fatal(err)
	}
	if full.BaseDigest != "" || full.DeltaCodec != 0 || !bytes.Equal(full.Body, body) {
		t.Fatalf("full form carries delta state or the wrong body: %+v", full)
	}
	dFrame, dBase := re.Delta()
	if dBase != DigestOf(base) {
		t.Fatalf("delta base = %q", dBase)
	}
	dec, err := Decode(dFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Body, delta) || dec.BaseDigest != DigestOf(base) || dec.Digest != DigestOf(body) {
		t.Fatalf("delta form diverged: %+v", dec)
	}
	chunks, chunkLen := re.Chunks()
	if chunkLen != 256 || len(chunks) != (len(body)+255)/256 {
		t.Fatalf("chunk set: %d frames at %d bytes for a %d-byte body", len(chunks), chunkLen, len(body))
	}
	// Reassemble the chunk frames; they must rebuild the exact body.
	var joined []byte
	for i, c := range chunks {
		cev, err := Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		if cev.ChunkIndex != uint32(i) || int(cev.ChunkTotal) != len(chunks) || cev.Digest != DigestOf(body) {
			t.Fatalf("chunk %d framing: %+v", i, cev)
		}
		joined = append(joined, cev.Body...)
	}
	if !bytes.Equal(joined, body) {
		t.Fatal("chunk frames do not reassemble the body")
	}
	if st, err := Decode(re.Stripped()); err != nil || st.HasBody {
		t.Fatalf("stripped form: %+v err=%v", st, err)
	}
}

// TestRenderLadderPureDelta pins the relay republication shape: a
// decoded v3 delta frame (Body IS the delta, no sidecar) renders as
// delta + stripped only — there is no full body to spell out, so a
// stream without the base degrades to the invalidation.
func TestRenderLadderPureDelta(t *testing.T) {
	ev := Event{Kind: KindUpdate, Seq: 4, Key: "/obj", Body: []byte{opAdd, 0x01, 'x'},
		HasBody: true, Digest: DigestOf([]byte("x")), BaseDigest: DigestOf([]byte("b")),
		DeltaCodec: DeltaCodecBlock}
	re := RenderLadder(ev, 128)
	if re.Full() != "" {
		t.Fatalf("pure delta rendered a full form: %q", re.Full())
	}
	if d, base := re.Delta(); d == "" || base != ev.BaseDigest {
		t.Fatalf("delta form missing: %q base %q", d, base)
	}
	if chunks, _ := re.Chunks(); len(chunks) != 0 {
		t.Fatalf("chunked a delta body: %d frames", len(chunks))
	}
	if got := re.WireFor(1 << 20); got != re.Stripped() {
		t.Fatalf("WireFor fell to %q, want the stripped form", got)
	}
}

// --- hub rung selection ---

// startHeldSubscriber runs a Subscriber that resumes from since and
// advertises held digests, until test cleanup.
func startHeldSubscriber(t *testing.T, url string, sink *hubSink, payloadCap int, since uint64, held func() []HeldDigest) *Subscriber {
	t.Helper()
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        url,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		PayloadCap: payloadCap,
		Held:       held,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.lastSeq.Store(since)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sub.Run(ctx)
	return sub
}

// TestHubDeltaRung drives the delta rung end to end over HTTP: the
// first update delivers the full body (nothing held yet), advancing the
// hub's per-stream held digest; the second update's frame must then be
// the delta, and the subscriber must see the raw v3 delta event.
func TestHubDeltaRung(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	sink := &hubSink{}
	startHubSubscriberCap(t, ts.URL, sink, DefaultPayloadCap)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	v1 := bytes.Repeat([]byte("first revision of the body\n"), 30)
	v2 := append(append([]byte(nil), v1...), []byte("and one more line\n")...)
	delta, ok := MakeDelta(v1, v2)
	if !ok {
		t.Fatal("no delta")
	}
	h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: v1, HasBody: true, Digest: DigestOf(v1)})
	h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: v2, HasBody: true, Digest: DigestOf(v2),
		BaseDigest: DigestOf(v1), DeltaCodec: DeltaCodecBlock, DeltaBody: delta})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 2
	}) {
		t.Fatal("events never arrived")
	}
	evs, _, _ := sink.snapshot()
	if evs[0].BaseDigest != "" || !bytes.Equal(evs[0].Body, v1) {
		t.Fatalf("first delivery not the full body: %+v", evs[0])
	}
	if evs[1].BaseDigest != DigestOf(v1) || evs[1].DeltaCodec != DeltaCodecBlock {
		t.Fatalf("second delivery not a delta frame: %+v", evs[1])
	}
	got, err := ApplyDelta(evs[1].DeltaCodec, v1, evs[1].Body, 0)
	if err != nil || DigestOf(got) != evs[1].Digest {
		t.Fatalf("delivered delta does not rebuild v2: %v", err)
	}
	if st := h.Stats(); st.DeltaFrames != 1 {
		t.Fatalf("DeltaFrames = %d, want 1 (stats %+v)", st.DeltaFrames, st)
	}
}

// TestHubDeltaRungFromConnectHeld seeds the held digest through the
// ?held= connect parameter instead of a prior delivery: a subscriber
// that advertises the base it holds receives its very first update as
// a delta.
func TestHubDeltaRungFromConnectHeld(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	v1 := bytes.Repeat([]byte("held base body\n"), 30)
	v2 := append(append([]byte(nil), v1...), []byte("tail\n")...)
	delta, ok := MakeDelta(v1, v2)
	if !ok {
		t.Fatal("no delta")
	}

	sink := &hubSink{}
	startHeldSubscriber(t, ts.URL, sink, DefaultPayloadCap, 0, func() []HeldDigest {
		return []HeldDigest{
			{Key: "/obj", Digest: DigestOf(v1)},
			{Key: "", Digest: DigestOf(v1)},    // malformed: dropped client-side
			{Key: "/bad", Digest: "not a hex"}, // malformed: dropped client-side
		}
	})
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: v2, HasBody: true, Digest: DigestOf(v2),
		BaseDigest: DigestOf(v1), DeltaCodec: DeltaCodecBlock, DeltaBody: delta})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("event never arrived")
	}
	evs, _, _ := sink.snapshot()
	if evs[0].BaseDigest != DigestOf(v1) {
		t.Fatalf("first delivery not a delta despite the held advertisement: %+v", evs[0])
	}
	if st := h.Stats(); st.DeltaFrames != 1 {
		t.Fatalf("DeltaFrames = %d, want 1", st.DeltaFrames)
	}
}

// TestHubChunkedDelivery proves a body beyond both the hub cap and the
// stream cap still arrives whole: published as a chunk-only event
// (full form suppressed), delivered as a chunk set, reassembled by the
// subscriber with the terminal digest check.
func TestHubChunkedDelivery(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: 1024, ChunkPayload: 256})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	sink := &hubSink{}
	sub := startHubSubscriberCap(t, ts.URL, sink, 1024)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	body := bytes.Repeat([]byte("0123456789abcdef"), 200) // 3200 bytes > hub cap
	h.Publish(Event{Kind: KindUpdate, Key: "/big", Body: body, HasBody: true,
		Digest: DigestOf(body), ContentType: "text/plain"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("chunked update never assembled")
	}
	evs, _, _ := sink.snapshot()
	got := evs[0]
	if !bytes.Equal(got.Body, body) || got.ChunkTotal != 0 || got.Digest != DigestOf(body) {
		t.Fatalf("assembled event diverged: %d bytes, chunk total %d", len(got.Body), got.ChunkTotal)
	}
	if sub.ChunksAssembled() != 1 || sub.ChunksBroken() != 0 {
		t.Fatalf("assembled=%d broken=%d", sub.ChunksAssembled(), sub.ChunksBroken())
	}
	st := h.Stats()
	if st.ChunkFrames != 1 {
		t.Fatalf("ChunkFrames = %d, want 1", st.ChunkFrames)
	}
	if st.Degraded != 0 {
		t.Fatalf("a chunkable body was degraded: %+v", st)
	}

	// A pure-invalidation stream on the same hub must receive the
	// stripped form of the same event, never a chunk frame it cannot use.
	bare := &hubSink{}
	startHubSubscriber(t, ts.URL, bare)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 2 }) {
		t.Fatal("bare stream never connected")
	}
	h.Publish(Event{Kind: KindUpdate, Key: "/big", Body: body, HasBody: true, Digest: DigestOf(body)})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := bare.snapshot()
		return len(evs) == 1
	}) {
		t.Fatal("stripped update never arrived")
	}
	bevs, _, _ := bare.snapshot()
	if bevs[0].HasBody || bevs[0].ChunkTotal != 0 {
		t.Fatalf("bare stream received payload state: %+v", bevs[0])
	}
}

// applyLadderChain walks a delivered frame sequence the way a consumer
// would: installing full bodies, applying deltas against the current
// body, and treating stripped frames as "poll here" (the base is no
// longer known). A delta that arrives when no base is held, or whose
// base does not match the held body, is a protocol violation. Returns
// the final body and whether any full body arrived.
func applyLadderChain(t *testing.T, evs []Event, cur []byte, haveBase bool) ([]byte, bool) {
	t.Helper()
	sawFull := false
	for _, ev := range evs {
		switch {
		case ev.BaseDigest != "":
			if !haveBase {
				t.Fatalf("delta frame for a stream holding no base: %+v", ev)
			}
			if ev.BaseDigest != DigestOf(cur) {
				t.Fatalf("delta base %q does not chain from held %q", ev.BaseDigest, DigestOf(cur))
			}
			next, err := ApplyDelta(ev.DeltaCodec, cur, ev.Body, 0)
			if err != nil {
				t.Fatalf("delivered delta failed to apply: %v", err)
			}
			if DigestOf(next) != ev.Digest {
				t.Fatal("delivered delta built the wrong body")
			}
			cur = next
		case ev.HasBody:
			cur = ev.Body
			haveBase = true
			sawFull = true
		default:
			haveBase = false // stripped: the consumer confirms by polling
		}
	}
	return cur, sawFull
}

// TestHubAnchorReplay pins the thinned replay ring: non-anchor ring
// entries keep only their delta and stripped forms, every
// AnchorEvery-th sequence keeps the full body. A resumer holding the
// chain's base replays pure deltas; a resumer holding nothing gets
// stripped frames until the first full anchor re-bases its stream,
// then rides deltas — and is never handed a delta it cannot apply.
func TestHubAnchorReplay(t *testing.T) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap, AnchorEvery: 4})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	// A chain of 8 delta-bearing revisions: seq i carries bodies[i]
	// based on bodies[i-1].
	bodies := make([][]byte, 9)
	bodies[0] = bytes.Repeat([]byte("revision zero body line\n"), 20)
	for i := 1; i <= 8; i++ {
		bodies[i] = append(append([]byte(nil), bodies[i-1]...),
			[]byte(fmt.Sprintf("line added at revision %d\n", i))...)
		delta, ok := MakeDelta(bodies[i-1], bodies[i])
		if !ok {
			t.Fatalf("no delta at revision %d", i)
		}
		h.Publish(Event{Kind: KindUpdate, Key: "/obj", Body: bodies[i], HasBody: true,
			Digest: DigestOf(bodies[i]), BaseDigest: DigestOf(bodies[i-1]),
			DeltaCodec: DeltaCodecBlock, DeltaBody: delta})
	}

	// Resumer holding bodies[1], resuming from seq 1: the replay (seqs
	// 2..8) must arrive entirely on the delta rung, in base order.
	held := &hubSink{}
	startHeldSubscriber(t, ts.URL, held, DefaultPayloadCap, 1, func() []HeldDigest {
		return []HeldDigest{{Key: "/obj", Digest: DigestOf(bodies[1])}}
	})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := held.snapshot()
		return len(evs) == 7
	}) {
		evs, _, _ := held.snapshot()
		t.Fatalf("replay delivered %d events, want 7", len(evs))
	}
	evs, _, _ := held.snapshot()
	for _, ev := range evs {
		if ev.BaseDigest == "" {
			t.Fatalf("a held resumer fell off the delta rung: %+v", ev)
		}
	}
	cur, _ := applyLadderChain(t, evs, bodies[1], true)
	if !bytes.Equal(cur, bodies[8]) {
		t.Fatal("held replay did not converge on the final body")
	}
	if st := h.Stats(); st.DeltaFrames != 7 {
		t.Fatalf("DeltaFrames = %d, want 7", st.DeltaFrames)
	}

	// Resumer holding NOTHING: thinned entries degrade to stripped for
	// it until a full anchor (seq 4) re-bases the stream; from there
	// the deltas chain. The invariant is not "no deltas" — it is
	// "never an inapplicable delta".
	blank := &hubSink{}
	startHeldSubscriber(t, ts.URL, blank, DefaultPayloadCap, 1, nil)
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := blank.snapshot()
		return len(evs) == 7
	}) {
		evs, _, _ := blank.snapshot()
		t.Fatalf("blank replay delivered %d events, want 7", len(evs))
	}
	bevs, _, _ := blank.snapshot()
	if bevs[0].HasBody || bevs[0].BaseDigest != "" {
		t.Fatalf("first thinned frame should be stripped for a blank resumer: %+v", bevs[0])
	}
	cur, sawAnchor := applyLadderChain(t, bevs, nil, false)
	if !sawAnchor {
		t.Fatal("no full anchor in the thinned replay")
	}
	if !bytes.Equal(cur, bodies[8]) {
		t.Fatal("blank replay did not converge on the final body")
	}
}

// --- subscriber chunk assembly (unit level) ---

func chunkSet(t *testing.T, key string, seq uint64, body []byte, n int) []Event {
	t.Helper()
	if len(body)%n != 0 {
		t.Fatalf("test body %d not divisible by %d", len(body), n)
	}
	size := len(body) / n
	evs := make([]Event, n)
	for i := 0; i < n; i++ {
		evs[i] = Event{Kind: KindUpdate, Seq: seq, Key: key,
			Body: body[i*size : (i+1)*size], HasBody: true,
			Digest: DigestOf(body), ChunkIndex: uint32(i), ChunkTotal: uint32(n)}
	}
	return evs
}

func TestAssembleUpdateInOrder(t *testing.T) {
	s := &Subscriber{}
	var asm chunkAssembly
	body := bytes.Repeat([]byte("abcd"), 30)
	var out []Event
	for _, ev := range chunkSet(t, "/k", 7, body, 3) {
		out = append(out, s.assembleUpdate(&asm, ev)...)
	}
	if len(out) != 1 {
		t.Fatalf("delivered %d events, want 1", len(out))
	}
	if !bytes.Equal(out[0].Body, body) || out[0].ChunkTotal != 0 || out[0].Seq != 7 {
		t.Fatalf("assembled event: %+v", out[0])
	}
	if s.chunksAssembled.Load() != 1 || s.chunksBroken.Load() != 0 {
		t.Fatalf("counters: assembled=%d broken=%d", s.chunksAssembled.Load(), s.chunksBroken.Load())
	}
}

func TestAssembleUpdateHoleDegrades(t *testing.T) {
	s := &Subscriber{}
	var asm chunkAssembly
	body := bytes.Repeat([]byte("abcd"), 30)
	set := chunkSet(t, "/k", 7, body, 3)
	out := s.assembleUpdate(&asm, set[0])
	out = append(out, s.assembleUpdate(&asm, set[2])...) // hole: chunk 1 lost
	if len(out) == 0 {
		t.Fatal("a holed set delivered nothing — the update would be silently dropped")
	}
	for _, ev := range out {
		if ev.HasBody {
			t.Fatalf("a holed set delivered payload bytes: %+v", ev)
		}
		if ev.Key != "/k" || ev.Seq != 7 {
			t.Fatalf("degraded event lost its identity: %+v", ev)
		}
	}
	if s.chunksBroken.Load() == 0 {
		t.Fatal("broken counter never moved")
	}
}

func TestAssembleUpdateJoinMidSet(t *testing.T) {
	s := &Subscriber{}
	var asm chunkAssembly
	body := bytes.Repeat([]byte("abcd"), 30)
	set := chunkSet(t, "/k", 7, body, 3)
	out := s.assembleUpdate(&asm, set[1]) // first frame seen is mid-set
	if len(out) != 1 || out[0].HasBody {
		t.Fatalf("mid-set join: %+v", out)
	}
	if s.chunksBroken.Load() != 1 {
		t.Fatalf("broken = %d", s.chunksBroken.Load())
	}
}

func TestAssembleUpdateTerminalDigestMismatch(t *testing.T) {
	s := &Subscriber{}
	var asm chunkAssembly
	body := bytes.Repeat([]byte("abcd"), 30)
	set := chunkSet(t, "/k", 7, body, 3)
	for i := range set {
		set[i].Digest = DigestOf([]byte("someone else's body"))
	}
	var out []Event
	for _, ev := range set {
		out = append(out, s.assembleUpdate(&asm, ev)...)
	}
	if len(out) != 1 || out[0].HasBody {
		t.Fatalf("digest mismatch delivered: %+v", out)
	}
	if s.chunksBroken.Load() != 1 || s.chunksAssembled.Load() != 0 {
		t.Fatalf("counters: assembled=%d broken=%d", s.chunksAssembled.Load(), s.chunksBroken.Load())
	}
}

func TestAssembleUpdateInterleavedUpdateAbandons(t *testing.T) {
	s := &Subscriber{}
	var asm chunkAssembly
	body := bytes.Repeat([]byte("abcd"), 30)
	set := chunkSet(t, "/k", 7, body, 3)
	out := s.assembleUpdate(&asm, set[0])
	plain := Event{Kind: KindUpdate, Seq: 8, Key: "/other"}
	out = append(out, s.assembleUpdate(&asm, plain)...)
	if len(out) != 2 {
		t.Fatalf("delivered %d events, want abandoned-stripped + plain", len(out))
	}
	if out[0].HasBody || out[0].Key != "/k" || out[0].Seq != 7 {
		t.Fatalf("abandonment event: %+v", out[0])
	}
	if out[1].Key != "/other" {
		t.Fatalf("interleaved update lost: %+v", out[1])
	}
}

func TestAssembleUpdateOverBudgetAbandons(t *testing.T) {
	s := &Subscriber{}
	// Pre-position an assembly one byte under the budget; the next
	// chunk must abandon rather than buffer past MaxAssembledBody.
	asm := chunkAssembly{
		active: true,
		ev:     Event{Kind: KindUpdate, Seq: 7, Key: "/k", Digest: DigestOf(nil), ChunkTotal: 4},
		next:   1,
		buf:    make([]byte, MaxAssembledBody-1),
	}
	ev := Event{Kind: KindUpdate, Seq: 7, Key: "/k", Digest: DigestOf(nil),
		Body: []byte("xx"), HasBody: true, ChunkIndex: 1, ChunkTotal: 4}
	out := s.assembleUpdate(&asm, ev)
	if len(out) != 1 || out[0].HasBody || asm.active {
		t.Fatalf("over-budget chunk: out=%+v active=%v", out, asm.active)
	}
	if s.chunksBroken.Load() != 1 {
		t.Fatalf("broken = %d", s.chunksBroken.Load())
	}
}

// --- benchmarks (wired into scripts/bench-hotpath.sh) ---

// BenchmarkDeltaApply measures the proxy-side hot path of the delta
// rung: reconstructing a ~64KiB body from a small edit delta.
func BenchmarkDeltaApply(b *testing.B) {
	base := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog.\n"), 1456)
	target := bytes.Replace(base, []byte("lazy"), []byte("busy"), 10)
	delta, ok := MakeDelta(base, target)
	if !ok {
		b.Fatal("no delta")
	}
	b.SetBytes(int64(len(target)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyDelta(DeltaCodecBlock, base, delta, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubPublishFanoutDelta measures the ladder's publish cost: a
// delta-sidecar event rendered once (full + delta + stripped forms) and
// fanned out to a draining fleet — the delta rung must not reintroduce
// per-subscriber rendering.
func BenchmarkHubPublishFanoutDelta(b *testing.B) {
	h := NewHub(HubConfig{PayloadCap: DefaultPayloadCap})
	const fleet = 16
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		_, sub, ok := h.subscribe(0, DefaultPayloadCap, InterestAll(), nil)
		if !ok {
			b.Fatal("subscribe failed")
		}
		wg.Add(1)
		go drainSub(h, sub, &wg)
		defer h.unsubscribe(sub)
	}
	base := bytes.Repeat([]byte("v"), 4096)
	body := append(append([]byte(nil), base...), []byte("tail")...)
	delta, ok := MakeDelta(base, body)
	if !ok {
		b.Fatal("no delta")
	}
	ev := Event{Kind: KindUpdate, Key: "/obj/path", Group: "g",
		Body: body, HasBody: true, Digest: DigestOf(body),
		BaseDigest: DigestOf(base), DeltaCodec: DeltaCodecBlock, DeltaBody: delta}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(ev)
	}
	b.StopTimer()
	h.KillAll()
	wg.Wait()
}
