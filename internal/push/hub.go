package push

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server half of the invalidation channel: a reusable
// broadcast hub owning one sequence space. It started life inside
// internal/webserver (the origin's /events endpoint) and was extracted
// so a relaying proxy can run the exact same machinery downstream: the
// origin publishes into its hub, a parent proxy republishes into its
// own hub with its own sequence space, and leaf proxies subscribe to a
// parent exactly as a parent subscribes to the origin.
//
// The hub guarantees:
//
//   - Update events get monotonically increasing sequence numbers and
//     enter a replay ring bounded by count AND bytes (payload-carrying
//     events are charged their body size), so a reconnecting subscriber
//     (?since=<seq>) receives exactly the events it missed — payloads
//     included, replayed faithfully. The ring is PARTITIONED by key
//     prefix: residency and replay walks are charged per declared
//     subtree, so a subscriber interested in one narrow prefix holds
//     and replays only that partition's frames, and the byte budget
//     trims the fattest partition first (a burst in one subtree cannot
//     evict another subtree's replay history).
//   - A subscriber too slow to drain its stream is terminated rather
//     than ever blocking the publisher's write path; it reconnects and
//     catches up from the replay ring.
//   - Publish does no per-subscriber work: subscribers PULL batches
//     from the partitioned ring under a read lock, and a publish wakes
//     waiters by closing one channel. Publish latency is therefore
//     independent of subscriber count and of any stalled serve loop.
//   - An event whose encoded envelope exceeds the wire limit is dropped
//     before it can enter the ring (one poisonous buffered frame would
//     otherwise kill every reconnecting stream at the same replay
//     position forever). A payload that exceeds the hub's own cap is
//     NOT dropped: it is degraded to an invalidation-only event at
//     publish time, so the hub can never emit a frame its own
//     subscribers would have to skip.
//   - Payload delivery is negotiated per stream (?maxpayload=<bytes>,
//     clamped to the hub's cap, echoed on the hello frame): an update
//     whose body exceeds a stream's cap is degraded to invalidation for
//     that stream at write time, while richer streams still receive the
//     payload.
//   - Reset marks the stream's content as holed (the hub's owner lost
//     its own upstream): every live subscriber receives a mid-stream
//     hello/Reset frame, and any subscriber later resuming from at or
//     before the hole is told to Reset too (the replay ring cannot
//     prove contiguity across a hole it never saw).

// DefaultReplayLen bounds the events kept for reconnect catch-up.
const DefaultReplayLen = 1024

// DefaultReplayBytes bounds the payload bytes held by the replay ring.
// Value-carrying events are charged their body size, so a burst of fat
// updates trims the ring's history instead of growing the hub without
// bound; invalidation-only events cost only their envelope.
const DefaultReplayBytes = 8 << 20

// DefaultHeartbeat is the interval between keepalive frames.
const DefaultHeartbeat = 15 * time.Second

// DefaultWriteTimeout is the per-frame write deadline of served
// streams. A client that stops reading would otherwise pin its handler
// goroutine inside the frame write on kernel-buffer timescales, long
// after the hub terminated the subscription.
const DefaultWriteTimeout = 10 * time.Second

// DefaultSubscriberBuffer is the default slow-consumer allowance: a
// subscriber lagging more than this many sequence numbers behind live
// publishes is terminated. See HubConfig.SubscriberBuffer.
const DefaultSubscriberBuffer = 256

// maxRingPartitions bounds the replay ring's partition count; keys
// whose prefix would open a partition beyond the bound land in the
// catch-all partition instead (which every interest set treats as
// relevant, so overflow costs precision, never correctness).
const maxRingPartitions = 64

// registryShards is the subscriber registry's shard count: streams
// register against per-shard locks, never a hub-wide one, so
// connect/disconnect churn and the amortized slow-consumer scan cannot
// contend with the ring lock.
const registryShards = 16

// slowScanEvery is the amortization stride of the slow-consumer scan:
// every N-th publish walks the registry for subscribers lagging past
// the buffer allowance. Between scans a slow subscriber costs the
// publisher nothing at all.
const slowScanEvery = 64

// fetchBatchLimit bounds the frames one ring walk hands a serve loop:
// it caps the read-lock hold time and the coalesced write size while
// letting a lagging subscriber catch up in few syscalls.
const fetchBatchLimit = 64

// HubConfig parameterizes a Hub. The zero value is usable.
type HubConfig struct {
	// Heartbeat is the keepalive interval of served streams. Defaults
	// to DefaultHeartbeat.
	Heartbeat time.Duration
	// ReplayLen bounds the replay ring's event count (summed across
	// partitions). Defaults to DefaultReplayLen.
	ReplayLen int
	// ReplayBytes bounds the replay ring's resident bytes (payload
	// bodies plus envelope overhead, summed across partitions; over
	// budget the fattest partition is trimmed first). Defaults to
	// DefaultReplayBytes; negative disables the byte budget.
	ReplayBytes int64
	// WriteTimeout is the per-frame write deadline of served streams.
	// Defaults to DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// PayloadCap is the largest update body (bytes, pre-base64) the hub
	// will carry in a single frame; larger payloads are degraded to
	// invalidation-only events at publish time unless ChunkPayload
	// enables chunked delivery. Zero (the default) carries no payloads
	// at all — the pre-v2 pure-invalidation hub. Clamped to
	// MaxPayloadCap.
	PayloadCap int
	// ChunkPayload, when positive, enables chunked delivery (wire v3):
	// a body too large for one frame is additionally rendered as a
	// chunk set at this payload size per frame — so streams whose
	// negotiated cap cannot carry the whole body still receive it,
	// bounded by MaxChunkTotal frames and MaxAssembledBody bytes —
	// and bodies beyond PayloadCap survive publish as chunk-only
	// events instead of degrading to invalidation. Clamped to
	// PayloadCap (a chunk frame must fit the caps streams can
	// negotiate). Zero disables chunking (the pre-v3 hub).
	ChunkPayload int
	// AnchorEvery thins the replay ring when delta forms flow: once a
	// newer publish supersedes it, an update carrying a delta keeps
	// only its delta + stripped forms in the ring, except every
	// AnchorEvery-th publish INTO ITS PARTITION, which keeps its
	// full/chunked forms as an anchor a resuming subscriber without a
	// matching base can still install (per-partition cadence, so a
	// narrow subtree's anchor chain is never starved by traffic
	// elsewhere). The partition's newest frame always carries every
	// form — live delivery reads the ring, and the first payload a
	// stream receives is what seeds its delta chain. Zero defaults to
	// 4; negative disables thinning (every ring event keeps all
	// forms).
	AnchorEvery int
	// SubscriberBuffer is the slow-consumer allowance: a subscriber
	// whose stream position lags live publishes by more than this many
	// sequence numbers is terminated (it reconnects and catches up from
	// the replay ring). The effective allowance is also bounded by the
	// ring itself — a subscriber whose next frame was pruned before it
	// could be delivered is terminated regardless, since its stream can
	// no longer be proven contiguous. Zero defaults to
	// DefaultSubscriberBuffer.
	SubscriberBuffer int
	// OnSubscribe, when set, is invoked from ServeHTTP for every stream
	// that successfully registers, with the interest set it declared. A
	// relaying proxy uses it to learn that a downstream subscriber wants
	// more than the relay's own upstream subscription currently covers
	// (and to widen it). Called outside the hub's lock.
	OnSubscribe func(InterestSet)
}

// ringPartition is one prefix's slice of the replay ring: the rendered
// update frames whose keys share the partition's prefix, in sequence
// order, plus the pruning high-water mark that decides resume holes for
// subscribers interested in this partition.
type ringPartition struct {
	name string // key prefix ("" is the catch-all partition)
	buf  []RenderedEvent
	// bytes is the partition's resident wire cost (the ring's byte
	// budget trims the fattest partition first).
	bytes int64
	// prunedTo is the highest sequence number ever trimmed from this
	// partition: a subscriber interested in it resuming from below
	// prunedTo has a genuine hole, while gaps made only of other
	// partitions' frames prove nothing was missed.
	prunedTo uint64
	// pubs counts publishes into this partition — the per-partition
	// anchor cadence (AnchorEvery).
	pubs uint64
	// thinTail marks the newest buf entry as a non-anchor delta frame
	// whose full/chunked forms thin away on the next publish into the
	// partition: the tail stays whole while it is the live head (pull
	// delivery reads the ring), then keeps only delta + stripped for
	// replay. The tail only leaves buf by becoming its last element and
	// being pruned, so a set flag always refers to the current tail.
	thinTail bool
}

// partitionName maps an update key to its ring partition: the key's
// first path segment including both slashes ("/news/politics/1" →
// "/news/"), the whole path when it has one segment ("/page" →
// "/page"), query stripped, and the catch-all "" for keys that are not
// rooted paths. The name is by construction a prefix of every key it
// claims, which is what makes interest-to-partition relevance sound:
// an interest prefix matching a key is always comparable (one a prefix
// of the other) with that key's partition name.
func partitionName(key string) string {
	if len(key) == 0 || key[0] != '/' {
		return ""
	}
	if i := strings.IndexByte(key, '?'); i >= 0 {
		key = key[:i]
	}
	if i := strings.IndexByte(key[1:], '/'); i >= 0 {
		return key[:i+2]
	}
	return key
}

// relevantToPartition reports whether a partition can hold frames the
// set matches. Group terms make every partition relevant (group
// membership is orthogonal to key shape), as does the catch-all
// partition (its keys have no usable prefix). For prefix terms the
// partition name and the term are both prefixes of any key they share,
// so they must be comparable — either direction of containment means
// the partition may hold matching keys.
func (s InterestSet) relevantToPartition(name string) bool {
	if s.all || len(s.groups) > 0 || name == "" {
		return true
	}
	for _, p := range s.prefixes {
		if strings.HasPrefix(name, p) || strings.HasPrefix(p, name) {
			return true
		}
	}
	return false
}

// subShard is one shard of the subscriber registry.
type subShard struct {
	mu   sync.Mutex
	subs map[*hubSub]struct{}
}

// Hub is a broadcast fan-out with one sequence space: events published
// into it stream to every subscriber over the SSE /events protocol.
// It is safe for concurrent use. The zero value is not usable; call
// NewHub.
type Hub struct {
	cfg HubConfig

	// active counts ServeHTTP handlers currently streaming (including
	// terminated ones that have not yet unwound — the gap between
	// Subscribers and ActiveStreams is write-pinned handlers).
	active atomic.Int64

	// filtered counts update frames withheld by interest filtering
	// (position advanced, frame never written); incremented from serve
	// loops, hence atomic.
	filtered atomic.Uint64

	// deltaFrames and chunkFrames count ladder deliveries: update
	// events written as a delta against the stream's held digest, and
	// update events written as chunk sets (counted once per event, not
	// per frame); incremented from serve loops, hence atomic.
	deltaFrames atomic.Uint64
	chunkFrames atomic.Uint64

	// slowKills counts subscribers terminated for not draining —
	// incremented by the publish-side lag scan and by ring walks that
	// find the subscriber's next frame already pruned.
	slowKills atomic.Uint64

	// publishWait accumulates the nanoseconds publishers spent waiting
	// to acquire the ring lock — the contention a stalled serve loop or
	// a storm of replay walks would inflict on the publish path, and
	// the number the contended benchmark holds flat.
	publishWait atomic.Int64

	// mu guards the sequence space and the partitioned ring. Publish
	// and Reset take it exclusively; ring walks (fetch), subscribe's
	// hole check, and Stats share it. Subscriber delivery state lives
	// outside it entirely.
	mu          sync.RWMutex
	seq         uint64 // last assigned sequence number
	resetSeq    uint64 // hole barrier: resumes at or before it must Reset
	resets      uint64 // Reset announcements made; doubles as the reset generation
	parts       []*ringPartition
	partIdx     map[string]*ringPartition
	bufBytes    int64 // resident wire bytes across all partitions
	available   bool
	oversized   uint64 // events dropped because their envelope exceeds MaxFrameLen
	degraded    uint64 // payloads stripped at publish for exceeding the hub's cap
	resumeHoles uint64 // Reset hellos served to resuming subscribers
	pubCount    uint64 // publishes since birth, for the amortized slow scan
	// notify is the publish wake-up: closed and nilled by every publish
	// and Reset, lazily re-armed by the first serve loop that finds the
	// ring drained. Publishing never allocates for it.
	notify chan struct{}

	nextShard atomic.Uint32
	shards    [registryShards]subShard
}

// hubSub is one connected subscriber stream. Delivery state belongs to
// the serve goroutine; the hub only ever reads cursor (atomically) and
// closes done.
type hubSub struct {
	done chan struct{} // closed to terminate the stream server-side
	once sync.Once
	// payloadCap is the stream's negotiated payload cap: updates with
	// larger bodies are degraded to invalidation frames for this stream.
	payloadCap int
	// interest is the stream's declared interest set: it prunes which
	// ring partitions the serve loop walks at all, and update frames
	// inside a walked partition that still fall outside it are skipped
	// (position advances, frame never written).
	interest InterestSet
	// shard is the registry shard the subscriber lives in.
	shard int
	// cursor is the stream's position: the sequence number up to which
	// every frame has been written, skipped as uninteresting, or
	// jumped over as foreign-partition. Heartbeats carry it (so the
	// subscriber's resume point tracks it), Stats reads it for lag,
	// and the publish-side scan kills on it.
	cursor atomic.Uint64
	// resetGen is the hub reset generation this stream has seen; when
	// the hub's generation moves past it the serve loop owes the
	// stream a mid-stream hello/Reset frame. Serve-goroutine state.
	resetGen uint64
	// held maps object key → body digest this stream is known to hold:
	// seeded from the connect-time ?held= declaration, advanced on
	// every payload-form delivery, and dropped on any delivery the
	// stream must confirm by polling (the hub then no longer knows what
	// the poll installed). Touched ONLY by the stream's serve
	// goroutine, so it needs no lock; nil until something populates it,
	// so invalidation-only workloads never allocate it.
	held map[string]string
}

func (s *hubSub) terminate() { s.once.Do(func() { close(s.done) }) }

// NewHub returns an available hub with an empty sequence space.
func NewHub(cfg HubConfig) *Hub {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.ReplayLen <= 0 {
		cfg.ReplayLen = DefaultReplayLen
	}
	if cfg.ReplayBytes == 0 {
		cfg.ReplayBytes = DefaultReplayBytes
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.PayloadCap > MaxPayloadCap {
		cfg.PayloadCap = MaxPayloadCap
	}
	if cfg.ChunkPayload > cfg.PayloadCap {
		cfg.ChunkPayload = cfg.PayloadCap
	}
	if cfg.AnchorEvery == 0 {
		cfg.AnchorEvery = 4
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = DefaultSubscriberBuffer
	}
	h := &Hub{
		cfg:       cfg,
		partIdx:   make(map[string]*ringPartition),
		available: true,
	}
	for i := range h.shards {
		h.shards[i].subs = make(map[*hubSub]struct{})
	}
	return h
}

// partitionLocked returns (creating if needed) the ring partition for
// name. Beyond maxRingPartitions new prefixes fold into the catch-all
// partition. Callers hold h.mu exclusively.
func (h *Hub) partitionLocked(name string) *ringPartition {
	if p := h.partIdx[name]; p != nil {
		return p
	}
	if name != "" && len(h.parts) >= maxRingPartitions {
		name = ""
		if p := h.partIdx[name]; p != nil {
			return p
		}
	}
	p := &ringPartition{name: name}
	h.partIdx[name] = p
	h.parts = append(h.parts, p)
	return p
}

// Publish assigns the next sequence number, buffers the event in its
// key's ring partition, and wakes every waiting serve loop, returning
// the assigned number. Publish does NO per-subscriber work: delivery is
// pulled by serve loops from the ring, so a stalled or slow consumer
// cannot block or even slow the publisher (it is terminated by the
// amortized lag scan instead, reconnects, and catches up from the
// ring).
//
// An event whose encoded envelope exceeds the wire limit is dropped
// before it can enter the ring: subscribers reject oversized frames, so
// one poisonous buffered frame would kill every reconnecting stream at
// the same replay position forever. The owning object simply goes
// unannounced (proxies keep pure-polling freshness for it). A payload
// exceeding the hub's cap is different — the event still matters, only
// its body cannot ride — so it is degraded to an invalidation-only
// event instead: the hub never emits a frame its own subscribers must
// skip, and consumers confirm by polling (the next rung of the
// degradation ladder).
func (h *Hub) Publish(ev Event) uint64 {
	lockStart := time.Now()
	h.mu.Lock()
	if wait := time.Since(lockStart); wait > 0 {
		h.publishWait.Add(int64(wait))
	}
	in := ev
	// Chunk fields are a render-time artifact of THIS hub's chunk size:
	// they never survive republication (a consumer reassembles chunks
	// into one full-bodied event before handing it on).
	ev.ChunkIndex, ev.ChunkTotal = 0, 0
	if !validWireDigest(ev.Digest) {
		// A digest Encode cannot frame (spaces, non-hex) would produce a
		// ring-buffered frame every subscriber rejects — the poison-frame
		// livelock. The digest is advisory (consumers without it poll),
		// so dropping it is strictly safer than trusting the publisher.
		// With the digest gone the payload is uninstallable; strip it too
		// rather than ship bytes no consumer may use.
		ev = ev.StripPayload()
	}
	// Delta state must arrive whole — base digest and codec paired, the
	// base frameable, and (for a sidecar) a full-body digest to verify
	// the application against. Anything less drops to the next rung:
	// a sidecar is discarded (the full body still rides), a pure delta
	// body is stripped (undeliverable without its base).
	if ev.BaseDigest != "" || ev.DeltaCodec != 0 || len(ev.DeltaBody) > 0 {
		ok := ev.HasBody && ev.BaseDigest != "" && ev.DeltaCodec != 0 &&
			isHexDigest(ev.BaseDigest) && ev.Digest != "" && ev.Kind == KindUpdate
		if !ok {
			if len(ev.DeltaBody) > 0 {
				ev.BaseDigest, ev.DeltaCodec, ev.DeltaBody = "", 0, nil
			} else if ev.BaseDigest != "" || ev.DeltaCodec != 0 {
				ev = ev.StripPayload()
			}
		}
	}
	chunkPayload := h.cfg.ChunkPayload
	suppressFull := false
	if ev.HasBody && (h.cfg.PayloadCap <= 0 || len(ev.Body) > h.cfg.PayloadCap) {
		if h.chunkableLocked(ev, chunkPayload) {
			// The body cannot ride one frame, but it can ride a chunk
			// set: keep it, suppress the (undeliverable) full form.
			suppressFull = true
		} else {
			ev = ev.StripPayload()
		}
	}
	if len(ev.DeltaBody) > 0 && len(ev.DeltaBody) > h.cfg.PayloadCap {
		// A delta no stream's cap could carry saves nothing; drop the
		// sidecar, the full/chunked forms still deliver.
		ev.BaseDigest, ev.DeltaCodec, ev.DeltaBody = "", 0, nil
	}
	if ev.Oversized() {
		// An envelope over the limit (fat content type, near-limit key)
		// may still fit as a bare invalidation — degrading keeps the
		// update announced; only an envelope that cannot fit either way
		// is dropped (and only then does Oversized count: a dropped event
		// is not also a degraded one).
		stripped := ev.StripPayload()
		if stripped.Oversized() {
			h.oversized++
			seq := h.seq
			h.mu.Unlock()
			return seq
		}
		ev = stripped
		suppressFull = false
	}
	if ev.HasBody != in.HasBody || ev.Digest != in.Digest || ev.ContentType != in.ContentType {
		h.degraded++
	}
	h.seq++
	ev.Seq = h.seq
	// The single Encode site of the publish path: every wire form is
	// rendered here, once, and every delivery — live fan-out now, replay
	// later — is a pre-rendered byte-slice pick.
	re := RenderLadder(ev, chunkPayload)
	if suppressFull {
		re = re.SuppressFull()
	}
	part := h.partitionLocked(partitionName(ev.Key))
	part.pubs++
	if part.thinTail && len(part.buf) > 0 {
		// The frame this one supersedes stops being the partition's live
		// head: thin it to delta + stripped. Live subscribers fetched its
		// full forms while it led the partition (they are notified per
		// publish, so only a reader lagging a whole publish behind loses
		// the full form — and such a reader confirms by polling, never
		// silently); from here on it serves replay, where the delta chain
		// against a held base plus the periodic full anchor suffice.
		i := len(part.buf) - 1
		old := part.buf[i]
		thinned := old.trimToDelta()
		part.buf[i] = thinned
		part.bytes += thinned.cost - old.cost
		h.bufBytes += thinned.cost - old.cost
	}
	// Delta-bearing events between anchors thin once superseded; every
	// AnchorEvery-th publish INTO THIS PARTITION keeps its full/chunked
	// forms for resuming subscribers holding no base.
	part.thinTail = h.cfg.AnchorEvery > 1 && re.delta != "" && part.pubs%uint64(h.cfg.AnchorEvery) != 0
	part.buf = append(part.buf, re)
	part.bytes += re.cost
	h.bufBytes += re.cost
	h.trimLocked()
	if h.notify != nil {
		close(h.notify)
		h.notify = nil
	}
	h.pubCount++
	scan := h.pubCount%slowScanEvery == 0
	seq := h.seq
	h.mu.Unlock()
	if scan {
		h.scanSlowSubscribers(seq)
	}
	return seq
}

// trimLocked enforces the ring budgets. The event-count bound drops the
// globally oldest frame (count is a hub-wide resource); the byte bound
// drops the oldest frame of the FATTEST partition, so a burst of heavy
// bodies in one subtree trims that subtree's own history instead of
// evicting a narrow subtree's replay window — ring residency tracks
// each subtree's traffic. Callers hold h.mu exclusively.
func (h *Hub) trimLocked() {
	totalLen := 0
	for _, p := range h.parts {
		totalLen += len(p.buf)
	}
	for totalLen > h.cfg.ReplayLen {
		var victim *ringPartition
		for _, p := range h.parts {
			if len(p.buf) == 0 {
				continue
			}
			if victim == nil || p.buf[0].Seq < victim.buf[0].Seq {
				victim = p
			}
		}
		if victim == nil {
			break
		}
		h.dropHeadLocked(victim)
		totalLen--
	}
	for h.cfg.ReplayBytes >= 0 && h.bufBytes > h.cfg.ReplayBytes && totalLen > 1 {
		var victim *ringPartition
		for _, p := range h.parts {
			if len(p.buf) == 0 {
				continue
			}
			if victim == nil || p.bytes > victim.bytes {
				victim = p
			}
		}
		if victim == nil {
			break
		}
		h.dropHeadLocked(victim)
		totalLen--
	}
}

// dropHeadLocked prunes the partition's oldest frame, recording the
// pruning high-water mark that decides resume holes.
func (h *Hub) dropHeadLocked(p *ringPartition) {
	head := p.buf[0]
	p.bytes -= head.cost
	h.bufBytes -= head.cost
	if head.Seq > p.prunedTo {
		p.prunedTo = head.Seq
	}
	p.buf[0] = RenderedEvent{} // release the rendered forms
	p.buf = p.buf[1:]
}

// scanSlowSubscribers terminates every subscriber lagging past the
// buffer allowance. It runs every slowScanEvery-th publish, outside the
// ring lock, walking only the registry shards — the entire cost a slow
// or stalled consumer can ever impose on the publish path.
func (h *Hub) scanSlowSubscribers(seq uint64) {
	allow := uint64(h.cfg.SubscriberBuffer)
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for s := range sh.subs {
			if c := s.cursor.Load(); c < seq && seq-c > allow {
				s.terminate()
				delete(sh.subs, s)
				h.slowKills.Add(1)
			}
		}
		sh.mu.Unlock()
	}
}

// chunkableLocked reports whether ev's body, too large for a single
// frame, can ride a chunk set instead: chunking enabled, the chunk
// count within bounds, and the per-chunk envelope (index/total fields
// at their widest) within the wire limit — a chunk frame the
// subscriber must reject would poison the stream for nothing.
func (h *Hub) chunkableLocked(ev Event, chunkPayload int) bool {
	if chunkPayload <= 0 || !ev.HasBody || ev.Kind != KindUpdate {
		return false
	}
	if len(ev.DeltaBody) == 0 && ev.BaseDigest != "" {
		return false // the body IS a delta; chunking it is meaningless
	}
	if ev.Digest == "" {
		return false // no terminal check — nothing could verify reassembly
	}
	if len(ev.Body) > MaxAssembledBody {
		return false
	}
	n := (len(ev.Body) + chunkPayload - 1) / chunkPayload
	if n > MaxChunkTotal {
		return false
	}
	probe := ev
	probe.Body = nil
	probe.DeltaBody = nil
	probe.BaseDigest, probe.DeltaCodec = "", 0
	probe.ChunkIndex, probe.ChunkTotal = MaxChunkTotal-1, MaxChunkTotal
	return !probe.Oversized()
}

// Reset announces a mid-stream resynchronization: the hub's owner lost
// its own upstream (a relaying proxy's parent stream died or came back
// with a Reset hello), so the content of this stream has a hole even
// though its sequence numbers stay contiguous. Every live subscriber
// receives a mid-stream hello/Reset frame — driving its fallback sweep
// without dropping the connection — and the hole instant is recorded so
// a subscriber that was disconnected across it is told to Reset when it
// resumes (the replay ring cannot prove contiguity across the hole).
func (h *Hub) Reset() {
	h.mu.Lock()
	h.resets++
	h.resetSeq = h.seq
	if h.notify != nil {
		close(h.notify)
		h.notify = nil
	}
	h.mu.Unlock()
}

// getNotify returns the channel the next publish (or Reset) will close.
// The channel is lazily re-armed here, by waiters, so the publish path
// itself never allocates to wake anyone. The protocol is sound because
// a serve loop always fetches AFTER obtaining the channel: a publish
// landing after that fetch closes either this exact channel or one
// armed after this one was already closed — either way the waiter
// wakes.
func (h *Hub) getNotify() <-chan struct{} {
	h.mu.RLock()
	ch := h.notify
	h.mu.RUnlock()
	if ch != nil {
		return ch
	}
	h.mu.Lock()
	if h.notify == nil {
		h.notify = make(chan struct{})
	}
	ch = h.notify
	h.mu.Unlock()
	return ch
}

// subscribe registers a stream resuming from since and returns its
// hello frame. payloadCap is the stream's negotiated payload cap
// (already clamped by the caller); interest is its declared filter,
// which also decides which ring partitions can hole its resume: a gap
// made only of frames in partitions the stream never declared is NOT a
// hole, while a pruned frame inside a declared partition forces a
// Reset. Replay is not materialized here — the serve loop pulls it
// from the ring through the same batch path live frames use.
func (h *Hub) subscribe(since uint64, payloadCap int, interest InterestSet, held map[string]string) (hello RenderedEvent, sub *hubSub, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.available {
		return RenderedEvent{}, nil, false
	}
	reset := false
	switch {
	case since == 0:
		// A fresh subscriber has no state to reconcile.
	case since > h.seq:
		// The subscriber claims a future position (e.g. the hub's owner
		// restarted and its sequence space reset): resync from scratch.
		reset = true
	case since <= h.resetSeq:
		// The resume point predates (or is exactly) the last announced
		// hole: events were irrecoverably missed upstream of this hub,
		// so a contiguous replay of the hub's own ring proves nothing.
		reset = true
	default:
		// The ring must cover every RELEVANT partition back to the
		// resume point: a partition pruned past since has lost a frame
		// the stream may have needed, while prunes confined to foreign
		// partitions prove nothing was missed. (An interest-filtered
		// subscriber that kept up heard its position in every heartbeat,
		// so only a gap in REAL wall-clock disconnection lands here.)
		for _, p := range h.parts {
			if p.prunedTo > since && interest.relevantToPartition(p.name) {
				reset = true
				break
			}
		}
	}
	hello = renderedHello(h.seq, uint64(payloadCap), reset)
	if reset && since > 0 {
		h.resumeHoles++
	}
	sub = &hubSub{
		done:       make(chan struct{}),
		payloadCap: payloadCap,
		interest:   interest,
		held:       held,
		resetGen:   h.resets,
	}
	// Seed the stream position: a resuming subscriber replays from
	// since, everyone else (fresh, reset) is handed the stream head by
	// the hello frame.
	if reset || since == 0 {
		sub.cursor.Store(h.seq)
	} else {
		sub.cursor.Store(since)
	}
	sub.shard = int(h.nextShard.Add(1) % registryShards)
	sh := &h.shards[sub.shard]
	sh.mu.Lock()
	sh.subs[sub] = struct{}{}
	sh.mu.Unlock()
	return hello, sub, true
}

// fetch pulls the next batch of frames for sub from the partitioned
// ring, appending deliverable frames to dst (a caller-owned scratch
// slice, reused across calls). It walks only the partitions relevant to
// the stream's interest, merging them in sequence order, and returns:
// the batch; the walk boundary (the position the stream has now proven
// up to — foreign-partition and non-matching frames are jumped, not
// delivered); the reset generation after the batch (a pending hub
// Reset appends a mid-stream hello/Reset frame once the walk reaches
// the hole barrier); and killed, set when a relevant partition pruned
// past the stream's position while it was connected — the stream can
// no longer be proven contiguous and must reconnect (counted as a slow
// kill: only a subscriber outrun by the ring lands here).
func (h *Hub) fetch(sub *hubSub, dst []RenderedEvent) (batch []RenderedEvent, boundary uint64, gen uint64, killed bool) {
	cursor := sub.cursor.Load()
	gen = sub.resetGen
	h.mu.RLock()
	defer h.mu.RUnlock()
	limit := h.seq
	pendingReset := h.resets != gen
	if pendingReset && h.resetSeq < limit {
		// Frames past the hole barrier are delivered only after the
		// stream has been handed the mid-stream Reset, preserving wire
		// order around the hole announcement.
		limit = h.resetSeq
	}
	var rel [maxRingPartitions + 1]*ringPartition
	var idx [maxRingPartitions + 1]int
	n := 0
	for _, p := range h.parts {
		if !sub.interest.relevantToPartition(p.name) {
			continue
		}
		if !pendingReset && p.prunedTo > cursor {
			// The ring outran this stream mid-connection: a frame it may
			// have needed is gone, so its stream cannot be proven
			// contiguous. (Under a pending Reset the hole announcement
			// itself covers anything pruned at or before the barrier.)
			h.slowKills.Add(1)
			return dst, cursor, gen, true
		}
		if len(p.buf) == 0 || p.buf[len(p.buf)-1].Seq <= cursor {
			continue
		}
		if n < len(rel) {
			rel[n] = p
			idx[n] = sort.Search(len(p.buf), func(i int) bool { return p.buf[i].Seq > cursor })
			n++
		}
	}
	boundary = cursor
	for examined := 0; examined < fetchBatchLimit; examined++ {
		best := -1
		var bestSeq uint64
		for k := 0; k < n; k++ {
			if idx[k] >= len(rel[k].buf) {
				continue
			}
			if s := rel[k].buf[idx[k]].Seq; s <= limit && (best == -1 || s < bestSeq) {
				best, bestSeq = k, s
			}
		}
		if best == -1 {
			// Every relevant partition is drained up to the limit: the
			// remaining gap is foreign-partition frames, jumped whole.
			boundary = limit
			break
		}
		re := rel[best].buf[idx[best]]
		idx[best]++
		boundary = re.Seq
		if sub.interest.matchesFrame(re) {
			dst = append(dst, re)
		}
	}
	if pendingReset && boundary == limit {
		dst = append(dst, renderedHello(h.resetSeq, 0, true))
		gen = h.resets
	}
	return dst, boundary, gen, false
}

// maxHeldTerms bounds the connect-time ?held= declaration, mirroring
// maxInterestTerms: beyond it a hostile client is just burning its own
// delta eligibility.
const maxHeldTerms = 64

// parseHeld decodes the repeatable ?held=<key>:<digest> connect
// parameters into the stream's initial held-digest map. Each value is
// an object key (which may itself contain ':') and the DigestOf-style
// hex digest of the body the subscriber holds, split at the LAST
// colon. Malformed terms are silently ignored — held state is an
// optimization (it unlocks the delta rung), so parsing fails open to
// "holds nothing", never closed.
func parseHeld(terms []string) map[string]string {
	var held map[string]string
	for _, t := range terms {
		if len(held) >= maxHeldTerms {
			break
		}
		i := strings.LastIndexByte(t, ':')
		if i <= 0 || i == len(t)-1 {
			continue
		}
		key, digest := t[:i], t[i+1:]
		if len(key) > MaxFrameLen || !isHexDigest(digest) {
			continue
		}
		if held == nil {
			held = make(map[string]string, len(terms))
		}
		held[key] = digest
	}
	return held
}

func (h *Hub) unsubscribe(sub *hubSub) {
	sh := &h.shards[sub.shard]
	sh.mu.Lock()
	delete(sh.subs, sub)
	sh.mu.Unlock()
	sub.terminate()
}

// killAllLocked terminates and deregisters every stream. Callers hold
// h.mu exclusively (shard locks nest inside it).
func (h *Hub) killAllLocked() {
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for s := range sh.subs {
			s.terminate()
			delete(sh.subs, s)
		}
		sh.mu.Unlock()
	}
}

// KillAll terminates every connected stream (subscribers may reconnect
// immediately); it models a transient network cut.
func (h *Hub) KillAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.killAllLocked()
}

// SetAvailable toggles the endpoint; disabling also drops live streams
// and 503s new connections. Events published while down still enter the
// replay ring, so re-enabled subscribers catch up.
func (h *Hub) SetAvailable(up bool) {
	h.mu.Lock()
	h.available = up
	if !up {
		h.killAllLocked()
	}
	h.mu.Unlock()
}

// LastSeq returns the last assigned sequence number.
func (h *Hub) LastSeq() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.seq
}

// Subscribers returns the number of registered streams.
func (h *Hub) Subscribers() int {
	n := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		n += len(sh.subs)
		sh.mu.Unlock()
	}
	return n
}

// Oversized returns the number of update events dropped because their
// encoded envelope exceeded the wire limit.
func (h *Hub) Oversized() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.oversized
}

// HubPartitionStats is one replay-ring partition's residency snapshot.
type HubPartitionStats struct {
	// Name is the partition's key prefix ("" is the catch-all).
	Name string
	// Bytes is the partition's resident wire bytes.
	Bytes int64
}

// HubStats is a point-in-time snapshot of a hub's backpressure state:
// how full the replay ring is and how far each subscriber trails the
// head of the stream. An operator watching MaxLag climb toward
// ReplayCap sees a proxy falling behind before it hits a Reset.
type HubStats struct {
	// Seq is the last assigned sequence number.
	Seq uint64
	// Subscribers is the number of registered streams; ActiveStreams
	// counts their handler goroutines (a surplus of handlers over
	// subscribers is streams terminated but still unwinding).
	Subscribers   int
	ActiveStreams int
	// ReplayLen and ReplayCap are the replay ring's occupancy and
	// capacity in events; ReplayBytes and ReplayByteCap are the same in
	// resident bytes (payload bodies are what dominate). Both are
	// totals across partitions; Partitions breaks residency down per
	// key prefix. A subscriber whose lag exceeds the ring at reconnect
	// time gets a Reset instead of a replay.
	ReplayLen     int
	ReplayCap     int
	ReplayBytes   int64
	ReplayByteCap int64
	// Partitions lists each replay-ring partition's resident bytes:
	// the per-subtree residency the byte budget apportions (the
	// fattest partition is trimmed first, so a narrow subtree's replay
	// window survives bursts elsewhere).
	Partitions []HubPartitionStats
	// Oversized counts update events dropped for exceeding the wire
	// envelope limit; Degraded counts payloads stripped at publish time
	// for exceeding the hub's payload cap (the event itself survived as
	// an invalidation); Resets counts hole announcements; ResumeHoles
	// counts Reset hellos served to resuming subscribers (each one is a
	// leaf that must run its fallback sweep); SlowKills counts
	// subscribers terminated for not draining their stream; Filtered
	// counts update frames skipped (never written) because they fell
	// outside a stream's declared interest set.
	Oversized   uint64
	Degraded    uint64
	Resets      uint64
	ResumeHoles uint64
	SlowKills   uint64
	Filtered    uint64
	// DeltaFrames counts updates delivered as a delta against the
	// stream's held digest; ChunkFrames counts updates delivered as a
	// chunk set (once per update, not per chunk). Both are the ladder's
	// savings ledger: frames that would otherwise have been a full body
	// or a degradation to invalidation.
	DeltaFrames uint64
	ChunkFrames uint64
	// PublishWait is the cumulative time publishers spent waiting to
	// acquire the ring lock — the contention serve-side load inflicts
	// on the publish path (flat when the contention-free design holds).
	PublishWait time.Duration
	// Available reports whether the endpoint is accepting streams (see
	// SetAvailable; a disabled hub 503s new connections).
	Available bool
	// MaxLag is the largest per-subscriber lag (sequence distance
	// between the stream head and that subscriber's proven position);
	// Lags lists every subscriber's.
	MaxLag uint64
	Lags   []uint64
}

// Stats snapshots the hub's backpressure state. The ring snapshot rides
// a read lock (never contending another reader) and the per-subscriber
// lag walk runs outside the ring lock entirely — subscriber cursors are
// atomic and the registry is sharded — so a metrics scraper polling
// Stats cannot stall Publish for the duration of the walk.
func (h *Hub) Stats() HubStats {
	h.mu.RLock()
	st := HubStats{
		Seq:           h.seq,
		ReplayCap:     h.cfg.ReplayLen,
		ReplayBytes:   h.bufBytes,
		ReplayByteCap: h.cfg.ReplayBytes,
		Oversized:     h.oversized,
		Degraded:      h.degraded,
		Resets:        h.resets,
		ResumeHoles:   h.resumeHoles,
		Available:     h.available,
	}
	if len(h.parts) > 0 {
		st.Partitions = make([]HubPartitionStats, 0, len(h.parts))
		for _, p := range h.parts {
			st.ReplayLen += len(p.buf)
			st.Partitions = append(st.Partitions, HubPartitionStats{Name: p.name, Bytes: p.bytes})
		}
	}
	h.mu.RUnlock()
	st.ActiveStreams = int(h.active.Load())
	st.SlowKills = h.slowKills.Load()
	st.Filtered = h.filtered.Load()
	st.DeltaFrames = h.deltaFrames.Load()
	st.ChunkFrames = h.chunkFrames.Load()
	st.PublishWait = time.Duration(h.publishWait.Load())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for s := range sh.subs {
			st.Subscribers++
			var lag uint64
			if c := s.cursor.Load(); c < st.Seq {
				lag = st.Seq - c
			}
			st.Lags = append(st.Lags, lag)
			if lag > st.MaxLag {
				st.MaxLag = lag
			}
		}
		sh.mu.Unlock()
	}
	return st
}

// frameBufPool holds the serve loops' coalescing write buffers: each
// batch of frames (plus its trailing heartbeat) is assembled in one
// pooled buffer and hits the connection as one deadline-bounded write
// and one flush, instead of a write+flush per frame.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledFrameBuf bounds the buffers returned to frameBufPool; a
// batch that ballooned past it (huge chunked bodies) is left for the
// collector rather than pinned in the pool.
const maxPooledFrameBuf = 256 << 10

// appendFrame appends one SSE frame ("id: <seq>\ndata: <wire>\n\n").
func appendFrame(b []byte, seq uint64, wire string) []byte {
	b = append(b, "id: "...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, "\ndata: "...)
	b = append(b, wire...)
	b = append(b, '\n', '\n')
	return b
}

// ServeHTTP streams invalidation events over SSE until the client
// disconnects or the hub terminates the stream. Streams are GET-only; a
// reconnecting subscriber resumes with ?since=<seq>, payload delivery
// is requested with ?maxpayload=<bytes> (clamped to the hub's cap; the
// hello frame echoes the negotiated value), and an interest set is
// declared with repeatable ?prefix= and ?group= parameters (declaring
// none receives everything). Update frames outside the declared
// interest are skipped — never written — while the stream's resume
// position still advances past them: heartbeats carry the per-stream
// position (not the hub head), so a filtered subscriber that kept up
// resumes cleanly across holes it never wanted, and a Reset is earned
// only by a gap inside a partition the stream declared. Frames are
// delivered in batches coalesced into a single buffered write per ring
// walk; every batch write carries a deadline (HubConfig.WriteTimeout),
// so a client that stops reading is abandoned on that timescale instead
// of pinning the handler goroutine inside the write until the kernel
// buffer drains.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	query := r.URL.Query()
	var since uint64
	if raw := query.Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	payloadCap := 0
	if raw := query.Get("maxpayload"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 31)
		if err != nil {
			http.Error(w, "bad maxpayload parameter", http.StatusBadRequest)
			return
		}
		payloadCap = int(v)
		if payloadCap > h.cfg.PayloadCap {
			payloadCap = h.cfg.PayloadCap
		}
	}
	interest := ParseInterest(query)
	var held map[string]string
	if payloadCap > 0 {
		held = parseHeld(query["held"])
	}
	hello, sub, ok := h.subscribe(since, payloadCap, interest, held)
	if !ok {
		http.Error(w, "event stream unavailable", http.StatusServiceUnavailable)
		return
	}
	defer h.unsubscribe(sub)
	h.active.Add(1)
	defer h.active.Add(-1)
	if h.cfg.OnSubscribe != nil {
		h.cfg.OnSubscribe(interest)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	deadline := h.cfg.WriteTimeout > 0
	bufp := frameBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bufp) <= maxPooledFrameBuf {
			*bufp = (*bufp)[:0]
			frameBufPool.Put(bufp)
		}
	}()
	// flush lands one assembled batch on the wire: one deadline, one
	// write, one flush.
	flush := func(b []byte) bool {
		if deadline {
			if err := rc.SetWriteDeadline(time.Now().Add(h.cfg.WriteTimeout)); err != nil {
				// The connection cannot carry deadlines (an exotic
				// wrapper); stop asking and stream without them.
				deadline = false
			}
		}
		if _, err := w.Write(b); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	// holdSet advances (or voids) the hub's knowledge of what body this
	// stream holds for key — the state the delta rung selects against.
	holdSet := func(key, digest string) {
		if digest == "" {
			delete(sub.held, key)
			return
		}
		if sub.held == nil {
			sub.held = make(map[string]string)
		}
		sub.held[key] = digest
	}
	// appendUpdate renders one update on the cheapest ladder rung this
	// stream can use: delta when the stream holds the delta's base, the
	// full body in one frame when the cap carries it, the chunk set when
	// only per-chunk frames fit, and the stripped invalidation otherwise
	// (the stream then confirms by polling — the next rung down, never a
	// dropped update). Every pick is a pre-rendered byte-slice; the only
	// per-subscriber work is the cap compare and, when deltas flow, one
	// map probe.
	appendUpdate := func(b []byte, re RenderedEvent) []byte {
		if re.delta != "" && re.deltaLen >= 0 && re.deltaLen <= sub.payloadCap && len(sub.held) > 0 {
			if d, ok := sub.held[re.Key]; ok && d == re.baseDigest {
				holdSet(re.Key, re.digest)
				h.deltaFrames.Add(1)
				return appendFrame(b, re.Seq, re.delta)
			}
		}
		if re.full != "" && re.payloadLen >= 0 && sub.payloadCap > 0 && re.payloadLen <= sub.payloadCap {
			holdSet(re.Key, re.digest)
			return appendFrame(b, re.Seq, re.full)
		}
		if len(re.chunks) > 0 && re.chunkLen > 0 && re.chunkLen <= sub.payloadCap {
			// All chunk frames ride back to back under one sequence
			// number; the position advances once, past the whole set, so
			// a disconnect mid-set resumes before the set and replays it
			// whole.
			for _, c := range re.chunks {
				b = appendFrame(b, re.Seq, c)
			}
			holdSet(re.Key, re.digest)
			h.chunkFrames.Add(1)
			return b
		}
		wire := re.WireFor(sub.payloadCap)
		if sub.held != nil && (re.digest != "" || re.payloadLen >= 0 || wire == re.stripped) {
			// The stream confirms this update by polling; the hub no
			// longer knows which body that poll will install.
			delete(sub.held, re.Key)
		}
		return appendFrame(b, re.Seq, wire)
	}
	// writeBatch coalesces one fetched batch — frames, a mid-stream
	// Reset if one is due, and the position-bearing heartbeat that
	// covers any skipped tail — into a single buffered write. The
	// stream position advances to the walk boundary: frames the walk
	// jumped (foreign-partition or interest-filtered) are proven
	// positions the stream simply never needed on the wire.
	writeBatch := func(batch []RenderedEvent, boundary uint64) bool {
		b := (*bufp)[:0]
		prev := sub.cursor.Load()
		updates := 0
		lastSeq := prev
		for _, re := range batch {
			if re.Kind == KindUpdate {
				b = appendUpdate(b, re)
				updates++
				lastSeq = re.Seq
				continue
			}
			b = appendFrame(b, re.Seq, re.WireFor(sub.payloadCap))
			if re.Kind == KindHello && re.Reset {
				// The stream's owner now revalidates by polling; every
				// held digest is stale knowledge.
				sub.held = nil
				lastSeq = re.Seq
			}
		}
		if boundary > lastSeq {
			// The walk ended past the last written frame (a skipped
			// tail): hand the subscriber its advanced position in the
			// same write instead of waiting a heartbeat interval, so a
			// reconnect in that window resumes past the skipped frames.
			b = appendFrame(b, boundary, renderedHeartbeat(boundary).full)
		}
		if skipped := boundary - prev - uint64(updates); skipped > 0 && boundary > prev {
			h.filtered.Add(skipped)
		}
		sub.cursor.Store(boundary)
		*bufp = b
		return flush(b)
	}
	b := appendFrame((*bufp)[:0], hello.Seq, hello.WireFor(sub.payloadCap))
	*bufp = b
	if !flush(b) {
		return
	}

	scratch := make([]RenderedEvent, 0, fetchBatchLimit+1)
	ticker := time.NewTicker(h.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		// Arm the wake-up BEFORE walking the ring: a publish landing
		// after the walk closes this exact channel (or one armed after
		// it was closed), so no frame can slip between an empty walk and
		// the wait.
		ch := h.getNotify()
		batch, boundary, gen, killed := h.fetch(sub, scratch[:0])
		if killed {
			return
		}
		if len(batch) > 0 || boundary > sub.cursor.Load() {
			sub.resetGen = gen
			if !writeBatch(batch, boundary) {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.done:
			return
		case <-ch:
		case <-ticker.C:
			hb := renderedHeartbeat(sub.cursor.Load())
			b := appendFrame((*bufp)[:0], hb.Seq, hb.full)
			*bufp = b
			if !flush(b) {
				return
			}
		}
	}
}
