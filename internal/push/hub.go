package push

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server half of the invalidation channel: a reusable
// broadcast hub owning one sequence space. It started life inside
// internal/webserver (the origin's /events endpoint) and was extracted
// so a relaying proxy can run the exact same machinery downstream: the
// origin publishes into its hub, a parent proxy republishes into its
// own hub with its own sequence space, and leaf proxies subscribe to a
// parent exactly as a parent subscribes to the origin.
//
// The hub guarantees:
//
//   - Update events get monotonically increasing sequence numbers and
//     enter a replay ring bounded by count AND bytes (payload-carrying
//     events are charged their body size), so a reconnecting subscriber
//     (?since=<seq>) receives exactly the events it missed — payloads
//     included, replayed faithfully.
//   - A subscriber too slow to drain its stream is terminated rather
//     than ever blocking the publisher's write path; it reconnects and
//     catches up from the replay ring.
//   - An event whose encoded envelope exceeds the wire limit is dropped
//     before it can enter the ring (one poisonous buffered frame would
//     otherwise kill every reconnecting stream at the same replay
//     position forever). A payload that exceeds the hub's own cap is
//     NOT dropped: it is degraded to an invalidation-only event at
//     publish time, so the hub can never emit a frame its own
//     subscribers would have to skip.
//   - Payload delivery is negotiated per stream (?maxpayload=<bytes>,
//     clamped to the hub's cap, echoed on the hello frame): an update
//     whose body exceeds a stream's cap is degraded to invalidation for
//     that stream at write time, while richer streams still receive the
//     payload.
//   - Reset marks the stream's content as holed (the hub's owner lost
//     its own upstream): every live subscriber receives a mid-stream
//     hello/Reset frame, and any subscriber later resuming from at or
//     before the hole is told to Reset too (the replay ring cannot
//     prove contiguity across a hole it never saw).

// DefaultReplayLen bounds the events kept for reconnect catch-up.
const DefaultReplayLen = 1024

// DefaultReplayBytes bounds the payload bytes held by the replay ring.
// Value-carrying events are charged their body size, so a burst of fat
// updates trims the ring's history instead of growing the hub without
// bound; invalidation-only events cost only their envelope.
const DefaultReplayBytes = 8 << 20

// DefaultHeartbeat is the interval between keepalive frames.
const DefaultHeartbeat = 15 * time.Second

// DefaultWriteTimeout is the per-frame write deadline of served
// streams. A client that stops reading would otherwise pin its handler
// goroutine inside the frame write on kernel-buffer timescales, long
// after the hub terminated the subscription.
const DefaultWriteTimeout = 10 * time.Second

// defaultSubscriberBuffer is the per-subscriber frame queue; a
// subscriber lagging further than this behind live publishes is
// terminated.
const defaultSubscriberBuffer = 256

// HubConfig parameterizes a Hub. The zero value is usable.
type HubConfig struct {
	// Heartbeat is the keepalive interval of served streams. Defaults
	// to DefaultHeartbeat.
	Heartbeat time.Duration
	// ReplayLen bounds the replay ring's event count. Defaults to
	// DefaultReplayLen.
	ReplayLen int
	// ReplayBytes bounds the replay ring's resident bytes (payload
	// bodies plus envelope overhead). Defaults to DefaultReplayBytes;
	// negative disables the byte budget.
	ReplayBytes int64
	// WriteTimeout is the per-frame write deadline of served streams.
	// Defaults to DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// PayloadCap is the largest update body (bytes, pre-base64) the hub
	// will carry in a single frame; larger payloads are degraded to
	// invalidation-only events at publish time unless ChunkPayload
	// enables chunked delivery. Zero (the default) carries no payloads
	// at all — the pre-v2 pure-invalidation hub. Clamped to
	// MaxPayloadCap.
	PayloadCap int
	// ChunkPayload, when positive, enables chunked delivery (wire v3):
	// a body too large for one frame is additionally rendered as a
	// chunk set at this payload size per frame — so streams whose
	// negotiated cap cannot carry the whole body still receive it,
	// bounded by MaxChunkTotal frames and MaxAssembledBody bytes —
	// and bodies beyond PayloadCap survive publish as chunk-only
	// events instead of degrading to invalidation. Clamped to
	// PayloadCap (a chunk frame must fit the caps streams can
	// negotiate). Zero disables chunking (the pre-v3 hub).
	ChunkPayload int
	// AnchorEvery thins the replay ring when delta forms flow: an
	// update carrying a delta stores only its delta + stripped forms
	// in the ring, except every AnchorEvery-th sequence number, which
	// keeps its full/chunked forms as an anchor a resuming subscriber
	// without a matching base can still install. Live fan-out always
	// carries every form. Zero defaults to 4; negative disables
	// thinning (every ring event keeps all forms).
	AnchorEvery int
	// OnSubscribe, when set, is invoked from ServeHTTP for every stream
	// that successfully registers, with the interest set it declared. A
	// relaying proxy uses it to learn that a downstream subscriber wants
	// more than the relay's own upstream subscription currently covers
	// (and to widen it). Called outside the hub's lock.
	OnSubscribe func(InterestSet)
}

// Hub is a broadcast fan-out with one sequence space: events published
// into it stream to every subscriber over the SSE /events protocol.
// It is safe for concurrent use. The zero value is not usable; call
// NewHub.
type Hub struct {
	cfg HubConfig

	// active counts ServeHTTP handlers currently streaming (including
	// terminated ones that have not yet unwound — the gap between
	// Subscribers and ActiveStreams is write-pinned handlers).
	active atomic.Int64

	// filtered counts update frames skipped (not written) because they
	// fell outside a stream's declared interest set; incremented from
	// serve loops, hence atomic.
	filtered atomic.Uint64

	// deltaFrames and chunkFrames count ladder deliveries: update
	// events written as a delta against the stream's held digest, and
	// update events written as chunk sets (counted once per event, not
	// per frame); incremented from serve loops, hence atomic.
	deltaFrames atomic.Uint64
	chunkFrames atomic.Uint64

	mu          sync.Mutex
	seq         uint64          // last assigned sequence number
	resetSeq    uint64          // hole barrier: resumes at or before it must Reset
	buf         []RenderedEvent // ring of the most recent update events, pre-rendered
	bufBytes    int64           // resident wire bytes of buf
	subs        map[*hubSub]struct{}
	available   bool
	oversized   uint64 // events dropped because their envelope exceeds MaxFrameLen
	degraded    uint64 // payloads stripped at publish for exceeding the hub's cap
	resets      uint64 // Reset announcements made
	resumeHoles uint64 // Reset hellos served to resuming subscribers
	slowKills   uint64 // subscribers terminated for not draining
}

// hubSub is one connected subscriber stream.
type hubSub struct {
	ch   chan RenderedEvent
	done chan struct{} // closed to terminate the stream server-side
	once sync.Once
	// payloadCap is the stream's negotiated payload cap: updates with
	// larger bodies are degraded to invalidation frames for this stream.
	payloadCap int
	// interest is the stream's declared interest set: update frames
	// outside it are skipped at write time (position still advances).
	interest InterestSet
	// lastSent is the stream's resume position: the sequence number of
	// the last frame written to the wire OR skipped as uninteresting.
	// Heartbeats carry it (so the subscriber's resume point tracks it),
	// and Stats reads it to compute per-subscriber lag.
	lastSent atomic.Uint64
	// held maps object key → body digest this stream is known to hold:
	// seeded from the connect-time ?held= declaration, advanced on
	// every payload-form delivery, and dropped on any delivery the
	// stream must confirm by polling (the hub then no longer knows what
	// the poll installed). Touched ONLY by the stream's serve
	// goroutine, so it needs no lock; nil until something populates it,
	// so invalidation-only workloads never allocate it.
	held map[string]string
}

func (s *hubSub) terminate() { s.once.Do(func() { close(s.done) }) }

// NewHub returns an available hub with an empty sequence space.
func NewHub(cfg HubConfig) *Hub {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.ReplayLen <= 0 {
		cfg.ReplayLen = DefaultReplayLen
	}
	if cfg.ReplayBytes == 0 {
		cfg.ReplayBytes = DefaultReplayBytes
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.PayloadCap > MaxPayloadCap {
		cfg.PayloadCap = MaxPayloadCap
	}
	if cfg.ChunkPayload > cfg.PayloadCap {
		cfg.ChunkPayload = cfg.PayloadCap
	}
	if cfg.AnchorEvery == 0 {
		cfg.AnchorEvery = 4
	}
	return &Hub{
		cfg:       cfg,
		subs:      make(map[*hubSub]struct{}),
		available: true,
	}
}

// Publish assigns the next sequence number, buffers the event, and fans
// it out, returning the assigned number. A subscriber too slow to drain
// its channel is terminated (it reconnects and catches up from the
// replay ring) — a stalled consumer must never block the publisher.
//
// An event whose encoded envelope exceeds the wire limit is dropped
// before it can enter the ring: subscribers reject oversized frames, so
// one poisonous buffered frame would kill every reconnecting stream at
// the same replay position forever. The owning object simply goes
// unannounced (proxies keep pure-polling freshness for it). A payload
// exceeding the hub's cap is different — the event still matters, only
// its body cannot ride — so it is degraded to an invalidation-only
// event instead: the hub never emits a frame its own subscribers must
// skip, and consumers confirm by polling (the next rung of the
// degradation ladder).
func (h *Hub) Publish(ev Event) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	in := ev
	// Chunk fields are a render-time artifact of THIS hub's chunk size:
	// they never survive republication (a consumer reassembles chunks
	// into one full-bodied event before handing it on).
	ev.ChunkIndex, ev.ChunkTotal = 0, 0
	if !validWireDigest(ev.Digest) {
		// A digest Encode cannot frame (spaces, non-hex) would produce a
		// ring-buffered frame every subscriber rejects — the poison-frame
		// livelock. The digest is advisory (consumers without it poll),
		// so dropping it is strictly safer than trusting the publisher.
		// With the digest gone the payload is uninstallable; strip it too
		// rather than ship bytes no consumer may use.
		ev = ev.StripPayload()
	}
	// Delta state must arrive whole — base digest and codec paired, the
	// base frameable, and (for a sidecar) a full-body digest to verify
	// the application against. Anything less drops to the next rung:
	// a sidecar is discarded (the full body still rides), a pure delta
	// body is stripped (undeliverable without its base).
	if ev.BaseDigest != "" || ev.DeltaCodec != 0 || len(ev.DeltaBody) > 0 {
		ok := ev.HasBody && ev.BaseDigest != "" && ev.DeltaCodec != 0 &&
			isHexDigest(ev.BaseDigest) && ev.Digest != "" && ev.Kind == KindUpdate
		if !ok {
			if len(ev.DeltaBody) > 0 {
				ev.BaseDigest, ev.DeltaCodec, ev.DeltaBody = "", 0, nil
			} else if ev.BaseDigest != "" || ev.DeltaCodec != 0 {
				ev = ev.StripPayload()
			}
		}
	}
	chunkPayload := h.cfg.ChunkPayload
	suppressFull := false
	if ev.HasBody && (h.cfg.PayloadCap <= 0 || len(ev.Body) > h.cfg.PayloadCap) {
		if h.chunkableLocked(ev, chunkPayload) {
			// The body cannot ride one frame, but it can ride a chunk
			// set: keep it, suppress the (undeliverable) full form.
			suppressFull = true
		} else {
			ev = ev.StripPayload()
		}
	}
	if len(ev.DeltaBody) > 0 && len(ev.DeltaBody) > h.cfg.PayloadCap {
		// A delta no stream's cap could carry saves nothing; drop the
		// sidecar, the full/chunked forms still deliver.
		ev.BaseDigest, ev.DeltaCodec, ev.DeltaBody = "", 0, nil
	}
	if ev.Oversized() {
		// An envelope over the limit (fat content type, near-limit key)
		// may still fit as a bare invalidation — degrading keeps the
		// update announced; only an envelope that cannot fit either way
		// is dropped (and only then does Oversized count: a dropped event
		// is not also a degraded one).
		stripped := ev.StripPayload()
		if stripped.Oversized() {
			h.oversized++
			return h.seq
		}
		ev = stripped
		suppressFull = false
	}
	if ev.HasBody != in.HasBody || ev.Digest != in.Digest || ev.ContentType != in.ContentType {
		h.degraded++
	}
	h.seq++
	ev.Seq = h.seq
	// The single Encode site of the publish path: every wire form is
	// rendered here, once, and every delivery — live fan-out now, replay
	// later — is a pre-rendered byte-slice pick.
	re := RenderLadder(ev, chunkPayload)
	if suppressFull {
		re = re.SuppressFull()
	}
	ring := re
	if h.cfg.AnchorEvery > 1 && ring.delta != "" && ev.Seq%uint64(h.cfg.AnchorEvery) != 0 {
		// Delta-bearing events thin to delta + stripped in the ring: a
		// resuming subscriber replays the delta chain against the base
		// it holds, and the periodic full anchor (plus live fan-out,
		// which keeps every form) covers the ones that hold nothing.
		ring = ring.trimToDelta()
	}
	h.buf = append(h.buf, ring)
	h.bufBytes += ring.cost
	for len(h.buf) > h.cfg.ReplayLen ||
		(h.cfg.ReplayBytes >= 0 && h.bufBytes > h.cfg.ReplayBytes && len(h.buf) > 1) {
		h.bufBytes -= h.buf[0].cost
		h.buf[0] = RenderedEvent{} // release the rendered forms
		h.buf = h.buf[1:]
	}
	h.broadcastLocked(re)
	return h.seq
}

// chunkableLocked reports whether ev's body, too large for a single
// frame, can ride a chunk set instead: chunking enabled, the chunk
// count within bounds, and the per-chunk envelope (index/total fields
// at their widest) within the wire limit — a chunk frame the
// subscriber must reject would poison the stream for nothing.
func (h *Hub) chunkableLocked(ev Event, chunkPayload int) bool {
	if chunkPayload <= 0 || !ev.HasBody || ev.Kind != KindUpdate {
		return false
	}
	if len(ev.DeltaBody) == 0 && ev.BaseDigest != "" {
		return false // the body IS a delta; chunking it is meaningless
	}
	if ev.Digest == "" {
		return false // no terminal check — nothing could verify reassembly
	}
	if len(ev.Body) > MaxAssembledBody {
		return false
	}
	n := (len(ev.Body) + chunkPayload - 1) / chunkPayload
	if n > MaxChunkTotal {
		return false
	}
	probe := ev
	probe.Body = nil
	probe.DeltaBody = nil
	probe.BaseDigest, probe.DeltaCodec = "", 0
	probe.ChunkIndex, probe.ChunkTotal = MaxChunkTotal-1, MaxChunkTotal
	return !probe.Oversized()
}

// Reset announces a mid-stream resynchronization: the hub's owner lost
// its own upstream (a relaying proxy's parent stream died or came back
// with a Reset hello), so the content of this stream has a hole even
// though its sequence numbers stay contiguous. Every live subscriber
// receives a mid-stream hello/Reset frame — driving its fallback sweep
// without dropping the connection — and the hole instant is recorded so
// a subscriber that was disconnected across it is told to Reset when it
// resumes (the replay ring cannot prove contiguity across the hole).
func (h *Hub) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.resets++
	h.resetSeq = h.seq
	h.broadcastLocked(renderedHello(h.seq, 0, true))
}

// broadcastLocked fans re out to every live subscriber, terminating the
// ones that cannot take it. Callers hold h.mu. Interest filtering does
// NOT happen here: a frame skipped at broadcast would let a later
// heartbeat advance the subscriber's resume position past matching
// frames still queued in its channel — the serve loop is the only place
// that sees frames in wire order, so it is the only safe filter point.
func (h *Hub) broadcastLocked(re RenderedEvent) {
	for s := range h.subs {
		select {
		case s.ch <- re:
		default:
			s.terminate()
			delete(h.subs, s)
			h.slowKills++
		}
	}
}

// subscribe returns the hello frame and replay backlog for a subscriber
// resuming from since, and registers its stream. payloadCap is the
// stream's negotiated payload cap (already clamped by the caller);
// interest is its declared filter. The backlog is returned unfiltered —
// the serve loop skips uninteresting frames while advancing the resume
// position, keeping the filter logic in exactly one place.
func (h *Hub) subscribe(since uint64, payloadCap int, interest InterestSet, held map[string]string) (hello RenderedEvent, backlog []RenderedEvent, sub *hubSub, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.available {
		return RenderedEvent{}, nil, nil, false
	}
	reset := false
	switch {
	case since == 0:
		// A fresh subscriber has no state to reconcile.
	case since > h.seq:
		// The subscriber claims a future position (e.g. the hub's owner
		// restarted and its sequence space reset): resync from scratch.
		reset = true
	case since <= h.resetSeq:
		// The resume point predates (or is exactly) the last announced
		// hole: events were irrecoverably missed upstream of this hub,
		// so a contiguous replay of the hub's own ring proves nothing.
		reset = true
	case since < h.seq:
		oldest := h.seq - uint64(len(h.buf)) + 1
		if len(h.buf) == 0 || since+1 < oldest {
			// The gap outruns the ring: the subscriber's view is no
			// longer contiguous. (An interest-filtered subscriber that
			// kept up heard its position in every heartbeat, so only a
			// gap in REAL wall-clock disconnection lands here.)
			reset = true
		} else {
			backlog = append(backlog, h.buf[since-oldest+1:]...)
		}
	}
	hello = renderedHello(h.seq, uint64(payloadCap), reset)
	if reset && since > 0 {
		h.resumeHoles++
	}
	sub = &hubSub{
		ch:         make(chan RenderedEvent, defaultSubscriberBuffer),
		done:       make(chan struct{}),
		payloadCap: payloadCap,
		interest:   interest,
		held:       held,
	}
	// Seed the lag baseline: a resuming subscriber starts its replay at
	// since, everyone else (fresh, reset, already caught up) is about to
	// be handed the stream head by the hello frame.
	if backlog != nil {
		sub.lastSent.Store(since)
	} else {
		sub.lastSent.Store(h.seq)
	}
	h.subs[sub] = struct{}{}
	return hello, backlog, sub, true
}

// maxHeldTerms bounds the connect-time ?held= declaration, mirroring
// maxInterestTerms: beyond it a hostile client is just burning its own
// delta eligibility.
const maxHeldTerms = 64

// parseHeld decodes the repeatable ?held=<key>:<digest> connect
// parameters into the stream's initial held-digest map. Each value is
// an object key (which may itself contain ':') and the DigestOf-style
// hex digest of the body the subscriber holds, split at the LAST
// colon. Malformed terms are silently ignored — held state is an
// optimization (it unlocks the delta rung), so parsing fails open to
// "holds nothing", never closed.
func parseHeld(terms []string) map[string]string {
	var held map[string]string
	for _, t := range terms {
		if len(held) >= maxHeldTerms {
			break
		}
		i := strings.LastIndexByte(t, ':')
		if i <= 0 || i == len(t)-1 {
			continue
		}
		key, digest := t[:i], t[i+1:]
		if len(key) > MaxFrameLen || !isHexDigest(digest) {
			continue
		}
		if held == nil {
			held = make(map[string]string, len(terms))
		}
		held[key] = digest
	}
	return held
}

func (h *Hub) unsubscribe(sub *hubSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	sub.terminate()
}

// KillAll terminates every connected stream (subscribers may reconnect
// immediately); it models a transient network cut.
func (h *Hub) KillAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		s.terminate()
		delete(h.subs, s)
	}
}

// SetAvailable toggles the endpoint; disabling also drops live streams
// and 503s new connections. Events published while down still enter the
// replay ring, so re-enabled subscribers catch up.
func (h *Hub) SetAvailable(up bool) {
	h.mu.Lock()
	h.available = up
	if !up {
		for s := range h.subs {
			s.terminate()
			delete(h.subs, s)
		}
	}
	h.mu.Unlock()
}

// LastSeq returns the last assigned sequence number.
func (h *Hub) LastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Subscribers returns the number of registered streams.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Oversized returns the number of update events dropped because their
// encoded envelope exceeded the wire limit.
func (h *Hub) Oversized() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.oversized
}

// HubStats is a point-in-time snapshot of a hub's backpressure state:
// how full the replay ring is and how far each subscriber trails the
// head of the stream. An operator watching MaxLag climb toward
// ReplayCap sees a proxy falling behind before it hits a Reset.
type HubStats struct {
	// Seq is the last assigned sequence number.
	Seq uint64
	// Subscribers is the number of registered streams; ActiveStreams
	// counts their handler goroutines (a surplus of handlers over
	// subscribers is streams terminated but still unwinding).
	Subscribers   int
	ActiveStreams int
	// ReplayLen and ReplayCap are the replay ring's occupancy and
	// capacity in events; ReplayBytes and ReplayByteCap are the same in
	// resident bytes (payload bodies are what dominate). A subscriber
	// whose lag exceeds the ring at reconnect time gets a Reset instead
	// of a replay.
	ReplayLen     int
	ReplayCap     int
	ReplayBytes   int64
	ReplayByteCap int64
	// Oversized counts update events dropped for exceeding the wire
	// envelope limit; Degraded counts payloads stripped at publish time
	// for exceeding the hub's payload cap (the event itself survived as
	// an invalidation); Resets counts hole announcements; ResumeHoles
	// counts Reset hellos served to resuming subscribers (each one is a
	// leaf that must run its fallback sweep); SlowKills counts
	// subscribers terminated for not draining their stream; Filtered
	// counts update frames skipped (never written) because they fell
	// outside a stream's declared interest set.
	Oversized   uint64
	Degraded    uint64
	Resets      uint64
	ResumeHoles uint64
	SlowKills   uint64
	Filtered    uint64
	// DeltaFrames counts updates delivered as a delta against the
	// stream's held digest; ChunkFrames counts updates delivered as a
	// chunk set (once per update, not per chunk). Both are the ladder's
	// savings ledger: frames that would otherwise have been a full body
	// or a degradation to invalidation.
	DeltaFrames uint64
	ChunkFrames uint64
	// Available reports whether the endpoint is accepting streams (see
	// SetAvailable; a disabled hub 503s new connections).
	Available bool
	// MaxLag is the largest per-subscriber lag (sequence distance
	// between the stream head and the last frame written to that
	// subscriber's wire); Lags lists every subscriber's.
	MaxLag uint64
	Lags   []uint64
}

// Stats snapshots the hub's backpressure state. The per-subscriber lag
// walk runs OUTSIDE the hub lock — subscriber pointers are snapshotted
// under it, lastSent is atomic — so a metrics scraper polling Stats can
// never contend with Publish for the duration of the walk.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	st := HubStats{
		Seq:           h.seq,
		Subscribers:   len(h.subs),
		ActiveStreams: int(h.active.Load()),
		ReplayLen:     len(h.buf),
		ReplayCap:     h.cfg.ReplayLen,
		ReplayBytes:   h.bufBytes,
		ReplayByteCap: h.cfg.ReplayBytes,
		Oversized:     h.oversized,
		Degraded:      h.degraded,
		Resets:        h.resets,
		ResumeHoles:   h.resumeHoles,
		SlowKills:     h.slowKills,
		Filtered:      h.filtered.Load(),
		DeltaFrames:   h.deltaFrames.Load(),
		ChunkFrames:   h.chunkFrames.Load(),
		Available:     h.available,
	}
	subs := make([]*hubSub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	st.Lags = make([]uint64, 0, len(subs))
	for _, s := range subs {
		var lag uint64
		if sent := s.lastSent.Load(); sent < st.Seq {
			lag = st.Seq - sent
		}
		st.Lags = append(st.Lags, lag)
		if lag > st.MaxLag {
			st.MaxLag = lag
		}
	}
	return st
}

// ServeHTTP streams invalidation events over SSE until the client
// disconnects or the hub terminates the stream. Streams are GET-only; a
// reconnecting subscriber resumes with ?since=<seq>, payload delivery
// is requested with ?maxpayload=<bytes> (clamped to the hub's cap; the
// hello frame echoes the negotiated value), and an interest set is
// declared with repeatable ?prefix= and ?group= parameters (declaring
// none receives everything). Update frames outside the declared
// interest are skipped — never written — while the stream's resume
// position still advances past them: heartbeats carry the per-stream
// position (not the hub head), so a filtered subscriber that kept up
// resumes cleanly across holes it never wanted, and a Reset is earned
// only by a gap the ring genuinely cannot replay. Every frame write
// carries a deadline (HubConfig.WriteTimeout): a client that stops
// reading is abandoned on that timescale instead of pinning the handler
// goroutine inside the write until the kernel buffer drains.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	query := r.URL.Query()
	var since uint64
	if raw := query.Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	payloadCap := 0
	if raw := query.Get("maxpayload"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 31)
		if err != nil {
			http.Error(w, "bad maxpayload parameter", http.StatusBadRequest)
			return
		}
		payloadCap = int(v)
		if payloadCap > h.cfg.PayloadCap {
			payloadCap = h.cfg.PayloadCap
		}
	}
	interest := ParseInterest(query)
	var held map[string]string
	if payloadCap > 0 {
		held = parseHeld(query["held"])
	}
	hello, backlog, sub, ok := h.subscribe(since, payloadCap, interest, held)
	if !ok {
		http.Error(w, "event stream unavailable", http.StatusServiceUnavailable)
		return
	}
	defer h.unsubscribe(sub)
	h.active.Add(1)
	defer h.active.Add(-1)
	if h.cfg.OnSubscribe != nil {
		h.cfg.OnSubscribe(interest)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	deadline := h.cfg.WriteTimeout > 0
	writeFrame := func(seq uint64, wire string) bool {
		if deadline {
			if err := rc.SetWriteDeadline(time.Now().Add(h.cfg.WriteTimeout)); err != nil {
				// The connection cannot carry deadlines (an exotic
				// wrapper); stop asking and stream without them.
				deadline = false
			}
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, wire); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	// holdSet advances (or voids) the hub's knowledge of what body this
	// stream holds for key — the state the delta rung selects against.
	holdSet := func(key, digest string) {
		if digest == "" {
			delete(sub.held, key)
			return
		}
		if sub.held == nil {
			sub.held = make(map[string]string)
		}
		sub.held[key] = digest
	}
	// write delivers one event on the cheapest ladder rung this stream
	// can use: delta when the stream holds the delta's base, the full
	// body in one frame when the cap carries it, the chunk set when
	// only per-chunk frames fit, and the stripped invalidation
	// otherwise (the stream then confirms by polling — the next rung
	// down, never a dropped update). Every pick is a pre-rendered
	// byte-slice; the only per-subscriber work is the cap compare and,
	// when deltas flow, one map probe.
	write := func(re RenderedEvent) bool {
		if re.Kind == KindUpdate {
			if re.delta != "" && re.deltaLen >= 0 && re.deltaLen <= sub.payloadCap && len(sub.held) > 0 {
				if d, ok := sub.held[re.Key]; ok && d == re.baseDigest {
					if !writeFrame(re.Seq, re.delta) {
						return false
					}
					holdSet(re.Key, re.digest)
					h.deltaFrames.Add(1)
					sub.lastSent.Store(re.Seq)
					return true
				}
			}
			if re.full != "" && re.payloadLen >= 0 && sub.payloadCap > 0 && re.payloadLen <= sub.payloadCap {
				if !writeFrame(re.Seq, re.full) {
					return false
				}
				holdSet(re.Key, re.digest)
				sub.lastSent.Store(re.Seq)
				return true
			}
			if len(re.chunks) > 0 && re.chunkLen > 0 && re.chunkLen <= sub.payloadCap {
				// All chunk frames ride back to back under one sequence
				// number; the position advances once, after the terminal
				// chunk, so a disconnect mid-set resumes before the set
				// and replays it whole.
				for _, c := range re.chunks {
					if !writeFrame(re.Seq, c) {
						return false
					}
				}
				holdSet(re.Key, re.digest)
				h.chunkFrames.Add(1)
				sub.lastSent.Store(re.Seq)
				return true
			}
			wire := re.WireFor(sub.payloadCap)
			if !writeFrame(re.Seq, wire) {
				return false
			}
			if sub.held != nil && (re.digest != "" || re.payloadLen >= 0 || wire == re.stripped) {
				// The stream confirms this update by polling; the hub no
				// longer knows which body that poll will install.
				delete(sub.held, re.Key)
			}
			sub.lastSent.Store(re.Seq)
			return true
		}
		if !writeFrame(re.Seq, re.WireFor(sub.payloadCap)) {
			return false
		}
		// Frames that advance the subscriber's position feed the resume
		// point and the lag metric: update events (above) and Reset
		// hellos (the subscriber fast-forwards to their Seq). Plain
		// hellos and heartbeats carry a position the stream already
		// holds.
		if re.Kind == KindHello && re.Reset {
			sub.lastSent.Store(re.Seq)
			// The stream's owner now revalidates by polling; every held
			// digest is stale knowledge.
			sub.held = nil
		}
		return true
	}
	// skip records a frame withheld by the interest filter: the stream's
	// position advances exactly as if the frame had been written, so the
	// subscriber's resume point (fed by the next heartbeat) never asks
	// the ring to replay a hole it chose not to hear.
	skip := func(re RenderedEvent) {
		sub.lastSent.Store(re.Seq)
		if sub.held != nil && re.Kind == KindUpdate {
			delete(sub.held, re.Key)
		}
		h.filtered.Add(1)
	}
	if !write(hello) {
		return
	}
	skipped := false
	for _, re := range backlog {
		if !sub.interest.matchesFrame(re) {
			skip(re)
			skipped = true
			continue
		}
		if !write(re) {
			return
		}
		skipped = false
	}
	if skipped {
		// The replay ended on filtered frames: hand the subscriber its
		// advanced position now instead of waiting a heartbeat interval,
		// so a reconnect in that window resumes past the skipped tail.
		if !write(renderedHeartbeat(sub.lastSent.Load())) {
			return
		}
	}

	ticker := time.NewTicker(h.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.done:
			return
		case re := <-sub.ch:
			if !sub.interest.matchesFrame(re) {
				skip(re)
				if len(sub.ch) == 0 {
					// Quiet after a filtered frame: flush the advanced
					// position immediately (a queued frame would carry
					// it anyway).
					if !write(renderedHeartbeat(sub.lastSent.Load())) {
						return
					}
				}
				continue
			}
			if !write(re) {
				return
			}
		case <-ticker.C:
			if !write(renderedHeartbeat(sub.lastSent.Load())) {
				return
			}
		}
	}
}
