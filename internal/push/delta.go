package push

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Delta codec. A v3 frame can carry the object's new body as a delta
// against a base body the subscriber already holds (addressed by the
// base body's digest). The encoding is deliberately tiny and
// self-contained — no external compression dependency — because the
// decoder runs on hostile input from the wire and must be cheap to
// bound: an opcode stream of ADD (literal bytes) and COPY (a range of
// the base), applied left to right to build the target.
//
//	0x01 <uvarint n> <n bytes>      ADD  — append n literal bytes
//	0x02 <uvarint off> <uvarint n>  COPY — append base[off : off+n]
//
// The result's digest rides the frame's <digest> field, so a corrupt or
// mis-based application is always caught before install (the terminal
// check), and ApplyDelta additionally bounds every offset, length, and
// the output size before doing any work.
const (
	// DeltaCodecBlock identifies the block-match codec above. Zero means
	// "no delta" on the wire.
	DeltaCodecBlock = 1

	opAdd  = 0x01
	opCopy = 0x02

	// deltaBlockSize is the encoder's match granularity: base offsets
	// are indexed at this stride, and matches extend greedily from a
	// seed of this length. Small enough to find moved paragraphs, large
	// enough that the index stays cheap.
	deltaBlockSize = 32

	// MaxChunkTotal bounds the chunk count of a chunked body; with the
	// protocol's MaxPayloadCap per chunk this admits bodies well beyond
	// the proxy's own 32 MiB fetch limit.
	MaxChunkTotal = 1024

	// MaxAssembledBody bounds the body a subscriber will reassemble
	// from chunks (mirrors the proxy's origin-fetch limit): a hostile
	// chunk total cannot make the client buffer unbounded data.
	MaxAssembledBody = 32 << 20
)

// ErrBadDelta reports a malformed or hostile delta stream.
var ErrBadDelta = errors.New("push: bad delta")

// MakeDelta encodes target as a delta against base, reporting ok=false
// when no delta smaller than the target exists (callers then send the
// full body instead — a delta that saves nothing only adds a failure
// mode). Both inputs are read-only.
func MakeDelta(base, target []byte) ([]byte, bool) {
	if len(base) == 0 || len(target) == 0 {
		return nil, false
	}
	// Index base block start offsets by content hash. Later blocks win
	// collisions; fine — any match is a valid COPY source.
	index := make(map[uint64]int, len(base)/deltaBlockSize+1)
	for off := 0; off+deltaBlockSize <= len(base); off += deltaBlockSize {
		index[blockHash(base[off:off+deltaBlockSize])] = off
	}

	var out []byte
	var lit []byte // pending ADD literals
	flushLit := func() {
		if len(lit) == 0 {
			return
		}
		out = append(out, opAdd)
		out = binary.AppendUvarint(out, uint64(len(lit)))
		out = append(out, lit...)
		lit = lit[:0]
	}

	i := 0
	for i < len(target) {
		if i+deltaBlockSize <= len(target) {
			if off, ok := index[blockHash(target[i:i+deltaBlockSize])]; ok &&
				bytes.Equal(base[off:off+deltaBlockSize], target[i:i+deltaBlockSize]) {
				// Extend the match greedily in both the base and target.
				n := deltaBlockSize
				for off+n < len(base) && i+n < len(target) && base[off+n] == target[i+n] {
					n++
				}
				flushLit()
				out = append(out, opCopy)
				out = binary.AppendUvarint(out, uint64(off))
				out = binary.AppendUvarint(out, uint64(n))
				i += n
				continue
			}
		}
		lit = append(lit, target[i])
		i++
	}
	flushLit()

	if len(out) >= len(target) {
		return nil, false
	}
	return out, true
}

// ApplyDelta reconstructs a target body from base and a delta stream of
// the given codec. It is safe on hostile input: every offset and length
// is bounds-checked, the output never exceeds maxSize (≤0 selects
// MaxAssembledBody), and no error path panics. Callers must still
// verify the result's digest against the frame's — ApplyDelta proves
// the stream was well-formed, not that it was based correctly.
func ApplyDelta(codec uint8, base, delta []byte, maxSize int) ([]byte, error) {
	if codec != DeltaCodecBlock {
		return nil, fmt.Errorf("%w: unknown codec %d", ErrBadDelta, codec)
	}
	if maxSize <= 0 {
		maxSize = MaxAssembledBody
	}
	var out []byte
	i := 0
	for i < len(delta) {
		op := delta[i]
		i++
		switch op {
		case opAdd:
			n, w := binary.Uvarint(delta[i:])
			if w <= 0 || n > uint64(len(delta)-i-w) {
				return nil, fmt.Errorf("%w: truncated add", ErrBadDelta)
			}
			i += w
			if uint64(len(out))+n > uint64(maxSize) {
				return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrBadDelta, maxSize)
			}
			out = append(out, delta[i:i+int(n)]...)
			i += int(n)
		case opCopy:
			off, w := binary.Uvarint(delta[i:])
			if w <= 0 {
				return nil, fmt.Errorf("%w: truncated copy offset", ErrBadDelta)
			}
			i += w
			n, w := binary.Uvarint(delta[i:])
			if w <= 0 {
				return nil, fmt.Errorf("%w: truncated copy length", ErrBadDelta)
			}
			i += w
			if off > uint64(len(base)) || n > uint64(len(base))-off {
				return nil, fmt.Errorf("%w: copy out of base bounds", ErrBadDelta)
			}
			if uint64(len(out))+n > uint64(maxSize) {
				return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrBadDelta, maxSize)
			}
			out = append(out, base[off:off+n]...)
		default:
			return nil, fmt.Errorf("%w: unknown op 0x%02x", ErrBadDelta, op)
		}
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// blockHash is FNV-1a over one encoder block — cheap, and collisions
// are re-verified byte-for-byte before a COPY is emitted.
func blockHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
