package push

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SubscriberConfig parameterizes a Subscriber.
type SubscriberConfig struct {
	// URL is the event-stream endpoint (e.g. http://origin/events).
	// Required.
	URL string
	// Client performs the streaming requests. It must not carry a global
	// Timeout (that would kill a healthy long-lived stream); liveness is
	// enforced by HeartbeatTimeout instead. Defaults to a fresh client.
	Client *http.Client
	// OnEvent is invoked for every update event, in stream order, from
	// the subscriber's goroutine. Required.
	OnEvent func(Event)
	// OnConnect is invoked after the server's hello frame on every
	// successful (re)connect. resumed reports whether the subscriber
	// asked to resume from a previous position; hello.Reset reports
	// whether the server could not replay the gap. It is also invoked
	// (with resumed=true) for a mid-stream hello carrying Reset — a
	// relaying upstream announcing a hole in its stream without
	// dropping the connection — so the consumer runs the same
	// reconciliation either way.
	OnConnect func(hello Event, resumed bool)
	// OnDisconnect is invoked when an established stream dies (never for
	// a connection attempt that failed outright, and never on context
	// cancellation).
	OnDisconnect func(err error)
	// OnFrameLoss is invoked (from the subscriber's goroutine) each time
	// an established stream's line is dropped instead of processed — an
	// oversized line, or a data line that fails to decode. The frame's
	// content is unknown, so the consumer must treat it as a potential
	// missed update or missed Reset: the proxy runs its staleness-
	// bounded catch-up sweep, keeping the Δ guarantee from silently
	// widening while the stream itself stays up.
	OnFrameLoss func()
	// BackoffMin and BackoffMax bound the exponential reconnect backoff.
	// Defaults: 100ms and 10s.
	BackoffMin, BackoffMax time.Duration
	// PayloadCap requests payload-carrying (v2) update frames with
	// bodies up to this many bytes; the server clamps it to its own cap
	// and echoes the negotiated value on the hello frame. Zero (the
	// default) requests a pure invalidation stream — the server strips
	// every payload before it reaches the wire. Clamped to
	// MaxPayloadCap.
	PayloadCap int
	// Interest, when set, is evaluated at every connection attempt and
	// declares the subscriber's interest set upstream (?prefix= and
	// ?group= parameters): the server skips update frames outside it.
	// Nil declares interest in everything. A consumer whose interest
	// widened mid-stream calls Bounce to reconnect and re-declare.
	Interest func() InterestSet
	// Held, when set, is evaluated at every connection attempt and
	// declares the body digests this subscriber already holds
	// (repeatable ?held=<key>:<digest> parameters, capped server-side
	// at maxHeldTerms): the server may then open matching updates on
	// the delta rung — a delta against the held body instead of the
	// full payload. Purely an optimization; meaningless (and not sent)
	// without PayloadCap.
	Held func() []HeldDigest
	// HeartbeatTimeout declares the stream dead when no frame (of any
	// kind) arrives for this long. It must exceed the server's heartbeat
	// interval. Defaults to 30s; negative disables the check.
	HeartbeatTimeout time.Duration
}

// Subscriber consumes an origin's invalidation stream, reconnecting with
// capped exponential backoff and resuming from the last processed
// sequence number.
type Subscriber struct {
	cfg     SubscriberConfig
	lastSeq atomic.Uint64

	// lastFrame is the wall-clock instant (unix nanoseconds) the last
	// stream frame of any kind arrived; 0 before the first. Together
	// with HeartbeatTimeout it bounds how stale a "connected" reading
	// can be — the liveness signal a health endpoint reports.
	lastFrame atomic.Int64

	// declared is the interest set sent with the current (or most
	// recent) connection attempt — what the upstream is actually
	// filtering by, as opposed to what Interest would return now.
	declared atomic.Pointer[InterestSet]
	// bounceMu guards bounceFn, the cancel function of the in-flight
	// connection attempt; Bounce calls it to force a reconnect (which
	// re-evaluates Interest) without cancelling the subscriber itself.
	bounceMu sync.Mutex
	bounceFn context.CancelFunc

	// connects and disconnects count stream lifecycle transitions.
	connects    atomic.Uint64
	disconnects atomic.Uint64
	// resets counts mid-stream hello/Reset frames (a relaying upstream
	// lost its own upstream); skipped counts oversized stream lines
	// dropped without killing the connection; overCap counts payloads
	// stripped client-side because they exceeded the negotiated cap (a
	// server honoring the negotiation never causes one); bounces counts
	// deliberate reconnects forced by Bounce.
	resets  atomic.Uint64
	skipped atomic.Uint64
	overCap atomic.Uint64
	bounces atomic.Uint64
	// chunksAssembled counts chunked bodies reassembled and delivered
	// whole; chunksBroken counts chunk sets abandoned (mid-set hole,
	// out-of-order frame, oversized reassembly, or terminal digest
	// mismatch) and degraded to a stripped invalidation.
	chunksAssembled atomic.Uint64
	chunksBroken    atomic.Uint64
}

// HeldDigest names one body a subscriber holds: the object's key and
// the DigestOf of the body. See SubscriberConfig.Held.
type HeldDigest struct {
	Key    string
	Digest string
}

// NewSubscriber validates cfg and returns a subscriber. Call Run to
// start consuming.
func NewSubscriber(cfg SubscriberConfig) (*Subscriber, error) {
	if cfg.URL == "" {
		return nil, errors.New("push: SubscriberConfig.URL is required")
	}
	if cfg.OnEvent == nil {
		return nil, errors.New("push: SubscriberConfig.OnEvent is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.PayloadCap < 0 {
		cfg.PayloadCap = 0
	}
	if cfg.PayloadCap > MaxPayloadCap {
		cfg.PayloadCap = MaxPayloadCap
	}
	return &Subscriber{cfg: cfg}, nil
}

// LastSeq returns the sequence number of the last update event handed to
// OnEvent (0 before any).
func (s *Subscriber) LastSeq() uint64 { return s.lastSeq.Load() }

// LastFrameAt returns the wall-clock instant the last stream frame of
// any kind (update, hello, heartbeat) arrived, or the zero time before
// the first. A connected stream whose LastFrameAt trails now by more
// than HeartbeatTimeout is about to be declared dead by the watchdog.
func (s *Subscriber) LastFrameAt() time.Time {
	n := s.lastFrame.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// HeartbeatTimeout returns the resolved watchdog interval (the
// configured value with defaults applied; <= 0 means disabled).
func (s *Subscriber) HeartbeatTimeout() time.Duration { return s.cfg.HeartbeatTimeout }

// Connects returns the number of successfully established streams.
func (s *Subscriber) Connects() uint64 { return s.connects.Load() }

// Disconnects returns the number of established streams that died.
func (s *Subscriber) Disconnects() uint64 { return s.disconnects.Load() }

// Resets returns the number of mid-stream hello/Reset frames processed:
// each one is an upstream announcing a hole in its stream content and
// re-ran the OnConnect reconciliation without dropping the connection.
func (s *Subscriber) Resets() uint64 { return s.resets.Load() }

// SkippedFrames returns the number of stream lines dropped without
// killing the connection: lines exceeding the frame size limit, and
// established-stream data lines that fail to decode. A hostile or
// non-broadway upstream can emit either; reconnecting on them would
// replay the same line from the upstream's ring and livelock, so each
// is skipped in place (consumed to its newline) and counted here.
func (s *Subscriber) SkippedFrames() uint64 { return s.skipped.Load() }

// OverCapPayloads returns the number of update payloads stripped
// client-side for exceeding the negotiated cap. A server honoring the
// negotiation degrades such frames itself; a non-zero count means the
// upstream ignored the cap, and the affected updates were handled as
// plain invalidations (the consumer polls to confirm).
func (s *Subscriber) OverCapPayloads() uint64 { return s.overCap.Load() }

// Bounces returns the number of deliberate reconnects forced by Bounce.
func (s *Subscriber) Bounces() uint64 { return s.bounces.Load() }

// ChunksAssembled returns the number of chunked bodies reassembled and
// delivered whole to OnEvent.
func (s *Subscriber) ChunksAssembled() uint64 { return s.chunksAssembled.Load() }

// ChunksBroken returns the number of chunk sets abandoned (hole,
// out-of-order frame, oversized reassembly, terminal digest mismatch);
// each one was degraded to a stripped invalidation, so the consumer
// confirmed by polling.
func (s *Subscriber) ChunksBroken() uint64 { return s.chunksBroken.Load() }

// DeclaredInterest returns the interest set sent with the current (or
// most recent) connection attempt — what the upstream is actually
// filtering by. Before the first attempt it is match-all: nothing has
// been narrowed yet, so nothing can have been missed.
func (s *Subscriber) DeclaredInterest() InterestSet {
	if p := s.declared.Load(); p != nil {
		return *p
	}
	return InterestAll()
}

// Bounce terminates the in-flight connection attempt (if any) so Run
// reconnects, re-evaluating Interest and re-declaring it upstream. The
// consumer sees a full disconnect/reconnect cycle — OnDisconnect, then
// OnConnect — which is deliberate: a widened interest means frames
// matching the new terms may already have been filtered away upstream,
// and only the disconnect reconciliation (the consumer's catch-up
// sweep) bounds what that hole could hide. A no-op between attempts:
// the next connect re-evaluates Interest anyway.
func (s *Subscriber) Bounce() {
	s.bounceMu.Lock()
	fn := s.bounceFn
	s.bounceMu.Unlock()
	if fn != nil {
		s.bounces.Add(1)
		fn()
	}
}

// Run consumes the stream until ctx is cancelled, reconnecting on every
// failure with capped exponential backoff. The backoff resets only
// after a stream that proved stable (lived at least BackoffMax): a
// hello followed by an immediate death — an intermediary that answers
// but cannot stream, a crash-looping origin — must climb the ladder
// like any other failure, not hammer the origin at BackoffMin forever
// (each such flap also costs the consumer a disconnect reconciliation).
// Run blocks; run it on its own goroutine.
func (s *Subscriber) Run(ctx context.Context) {
	backoff := s.cfg.BackoffMin
	for {
		start := time.Now()
		connected, err := s.stream(ctx)
		if ctx.Err() != nil {
			return
		}
		if connected {
			s.disconnects.Add(1)
			if s.cfg.OnDisconnect != nil {
				s.cfg.OnDisconnect(err)
			}
			if time.Since(start) >= s.cfg.BackoffMax {
				backoff = s.cfg.BackoffMin
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// readFrameLine reads one newline-terminated line of at most limit
// bytes from br. A longer line is consumed through its newline and
// reported skipped=true with no content: the caller loses only that
// line, never the stream's framing. The final newline (and a preceding
// carriage return) are stripped from returned lines.
func readFrameLine(br *bufio.Reader, limit int) (line string, skipped bool, err error) {
	var buf []byte
	over := false
	for {
		chunk, err := br.ReadSlice('\n')
		if !over {
			buf = append(buf, chunk...)
			if len(buf) > limit+1 { // +1: the newline itself is not frame data
				over, buf = true, nil
			}
		}
		switch err {
		case nil:
			if over {
				return "", true, nil
			}
			return strings.TrimRight(string(buf), "\r\n"), false, nil
		case bufio.ErrBufferFull:
			continue
		default:
			// EOF or a transport error; a partial final line (no
			// newline) dies with the stream either way.
			return "", over, err
		}
	}
}

// frameLost is the in-process sentinel the frame pump hands the
// consumer for a line it had to drop unread (oversized). A hostile
// stream emitting the literal sentinel converges on the same handling:
// its line would fail to decode and be counted as lost anyway.
const frameLost = "\x00frame-lost"

// chunkAssembly is the single-slot reassembly buffer for chunked
// updates. One slot suffices: the server writes a chunk set
// contiguously on the stream, so an interleaved frame is itself proof
// the set is broken.
type chunkAssembly struct {
	active bool
	// ev is the first chunk's event — the update's identity (key,
	// seq, modtime, digest, chunk total) with the body dropped.
	ev   Event
	next uint32
	buf  []byte
}

// assembleUpdate routes one decoded update through the chunk
// reassembler and returns the events to hand the consumer, in order:
// possibly a stripped event for an assembly this frame proved broken,
// then the current delivery. A mid-set chunk returns nothing — the
// update is delivered (and the resume position advanced) only by its
// terminal chunk, so a disconnect mid-set replays the whole set.
func (s *Subscriber) assembleUpdate(asm *chunkAssembly, ev Event) []Event {
	var out []Event
	if ev.ChunkTotal == 0 {
		if asm.active {
			out = append(out, s.abandonAssembly(asm))
		}
		return append(out, ev)
	}
	if asm.active && (ev.Seq != asm.ev.Seq || ev.Key != asm.ev.Key ||
		ev.Digest != asm.ev.Digest || ev.ChunkTotal != asm.ev.ChunkTotal ||
		ev.ChunkIndex != asm.next) {
		out = append(out, s.abandonAssembly(asm))
	}
	if !asm.active {
		if ev.ChunkIndex != 0 {
			// Joining mid-set (the opening chunks were lost): nothing to
			// assemble against — degrade this update to an invalidation.
			s.chunksBroken.Add(1)
			return append(out, ev.StripPayload())
		}
		asm.active = true
		asm.ev = ev
		asm.ev.Body = nil
		asm.next = 0
		asm.buf = asm.buf[:0]
	}
	if len(asm.buf)+len(ev.Body) > MaxAssembledBody {
		out = append(out, s.abandonAssembly(asm))
		return out
	}
	asm.buf = append(asm.buf, ev.Body...)
	asm.next++
	if asm.next < ev.ChunkTotal {
		return out
	}
	// Terminal chunk: the digest every chunk carried names the complete
	// body — the end-to-end check that catches both corruption and a
	// mis-framed set.
	full := asm.ev
	body := asm.buf
	asm.active, asm.buf = false, nil
	if DigestOf(body) != full.Digest {
		s.chunksBroken.Add(1)
		return append(out, full.StripPayload())
	}
	full.Body = body
	full.HasBody = true
	full.ChunkIndex, full.ChunkTotal = 0, 0
	s.chunksAssembled.Add(1)
	return append(out, full)
}

// abandonAssembly drops the in-flight chunk set and returns its update
// as a stripped invalidation: the consumer confirms by polling — the
// established degradation, never a dropped update.
func (s *Subscriber) abandonAssembly(asm *chunkAssembly) Event {
	s.chunksBroken.Add(1)
	st := asm.ev.StripPayload()
	asm.active, asm.buf = false, nil
	return st
}

// stream performs one connection attempt and consumes it until it dies.
// connected reports whether the hello frame was received (and OnConnect
// invoked); err is the reason the stream ended.
func (s *Subscriber) stream(ctx context.Context) (connected bool, err error) {
	// The attempt gets its own cancellation so Bounce can kill just this
	// stream (forcing a reconnect that re-declares interest) without
	// touching the subscriber's own context.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.bounceMu.Lock()
	s.bounceFn = cancel
	s.bounceMu.Unlock()

	u := s.cfg.URL
	since := s.lastSeq.Load()
	addQuery := func(kv string) {
		sep := "?"
		if strings.Contains(u, "?") {
			sep = "&"
		}
		u += sep + kv
	}
	addParam := func(k string, v uint64) {
		addQuery(fmt.Sprintf("%s=%d", k, v))
	}
	if since > 0 {
		addParam("since", since)
	}
	if s.cfg.PayloadCap > 0 {
		addParam("maxpayload", uint64(s.cfg.PayloadCap))
	}
	interest := InterestAll()
	if s.cfg.Interest != nil {
		interest = s.cfg.Interest()
		if interest.IsEmpty() {
			// The wire cannot ask for nothing (an empty set encodes as no
			// constraints — fail open), so the declaration must record
			// what the upstream will actually deliver: everything. A
			// consumer comparing coverage against DeclaredInterest then
			// sees the truth, not a narrower set nobody is filtering by.
			interest = InterestAll()
		}
	}
	// Publish the declaration BEFORE the request goes out: by the time
	// the stream is established (and any consumer starts trusting push
	// coverage), DeclaredInterest already reports what this attempt
	// asked for — never a stale, wider set.
	s.declared.Store(&interest)
	if q := interest.EncodeQuery(); q != "" {
		addQuery(q)
	}
	if s.cfg.PayloadCap > 0 && s.cfg.Held != nil {
		// Advertise held digests so the server can open on the delta
		// rung. Malformed terms are dropped here for the same reason the
		// server ignores them: held state is an optimization, and a bad
		// term must cost a full payload, not the connection.
		for i, hd := range s.cfg.Held() {
			if i >= maxHeldTerms {
				break
			}
			if hd.Key == "" || !isHexDigest(hd.Digest) {
				continue
			}
			addQuery("held=" + url.QueryEscape(hd.Key+":"+hd.Digest))
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("push: event stream returned %s", resp.Status)
	}

	// Pump frames on a separate goroutine so the consumer loop can race
	// them against the heartbeat timeout; closing the body unblocks a
	// pump blocked in Scan, and streamDone unblocks one parked on the
	// channel send after the consumer abandoned the stream (watchdog
	// fire, decode error, protocol violation) — without it every such
	// exit would leak the pump until the subscriber's context died.
	frames := make(chan string)
	readErr := make(chan error, 1)
	streamDone := make(chan struct{})
	defer close(streamDone)
	// The line limit covers the envelope plus the base64 expansion of
	// the largest payload this stream negotiated for; anything longer is
	// either hostile or a protocol violation and is skipped in place.
	lineLimit := MaxFrameLen + 64
	if s.cfg.PayloadCap > 0 {
		lineLimit += base64.StdEncoding.EncodedLen(s.cfg.PayloadCap)
	}
	go func() {
		defer close(frames)
		br := bufio.NewReaderSize(resp.Body, 4096)
		for {
			line, skipped, err := readFrameLine(br, lineLimit)
			if err != nil {
				if err == io.EOF {
					err = nil // clean stream end, reported as io.EOF by the consumer
				}
				readErr <- err
				return
			}
			if skipped {
				// An oversized line would have killed the stream under
				// bufio.Scanner (ErrTooLong), and the reconnect would
				// replay the same position and die on the same line
				// forever — a one-frame livelock against any upstream
				// that does not police its frame sizes. Drop just the
				// line and keep the stream's framing intact; the consumer
				// reconciles the unknown loss via OnFrameLoss.
				s.skipped.Add(1)
				select {
				case frames <- frameLost:
				case <-streamDone:
					return
				case <-ctx.Done():
					readErr <- ctx.Err()
					return
				}
				continue
			}
			payload, ok := strings.CutPrefix(line, "data:")
			if !ok {
				continue // SSE comment, id:, event:, or blank separator
			}
			select {
			case frames <- strings.TrimSpace(payload):
			case <-streamDone:
				return
			case <-ctx.Done():
				readErr <- ctx.Err()
				return
			}
		}
	}()

	var watchdog *time.Timer
	var timeoutC <-chan time.Time
	if s.cfg.HeartbeatTimeout > 0 {
		watchdog = time.NewTimer(s.cfg.HeartbeatTimeout)
		defer watchdog.Stop()
		timeoutC = watchdog.C
	}
	// asm is the chunk-reassembly slot; it dies with the stream (a set
	// split across connections replays whole, because non-terminal
	// chunks never advance the resume position).
	var asm chunkAssembly
	for {
		select {
		case <-ctx.Done():
			resp.Body.Close()
			return connected, ctx.Err()
		case <-timeoutC:
			resp.Body.Close()
			return connected, fmt.Errorf("push: no frame within %v", s.cfg.HeartbeatTimeout)
		case payload, ok := <-frames:
			if !ok {
				err := <-readErr
				if err == nil {
					err = io.EOF
				}
				return connected, err
			}
			s.lastFrame.Store(time.Now().UnixNano())
			if watchdog != nil {
				if !watchdog.Stop() {
					<-watchdog.C
				}
				watchdog.Reset(s.cfg.HeartbeatTimeout)
			}
			if payload == frameLost {
				// The pump dropped an oversized line unread. Its content
				// is unknown — possibly an update or a Reset — so an
				// established consumer must reconcile (sweep) rather
				// than stay confidently stretched over it. Any chunk set in
				// flight dies with it (the lost line may have been one of
				// its frames); the same sweep reconciles that update.
				asm.active, asm.buf = false, nil
				if connected && s.cfg.OnFrameLoss != nil {
					s.cfg.OnFrameLoss()
				}
				continue
			}
			ev, decodeErr := Decode(payload)
			if decodeErr != nil {
				if !connected {
					// The very first frame must be a hello; a server whose
					// opening frame does not even decode is not speaking
					// this protocol — reconnect and say why.
					resp.Body.Close()
					return false, decodeErr
				}
				// Mid-stream, a malformed data line cannot poison the
				// framing (SSE frames are self-delimiting lines), but
				// dropping the connection on it would: the reconnect
				// resumes from the same position, an upstream replaying
				// the frame from its ring serves it again, and the
				// subscriber livelocks on one line forever — the same
				// failure class as PR 4's oversized-line kill, reachable
				// again through the payload-widened read limit (a 6KB
				// malformed line is under a 91KB limit but over the
				// envelope bound). Skip just the frame — and reconcile
				// via OnFrameLoss, because whatever it announced (an
				// update, a Reset) is now an unknown loss that must not
				// hide behind stretched TTRs.
				s.skipped.Add(1)
				asm.active, asm.buf = false, nil
				if s.cfg.OnFrameLoss != nil {
					s.cfg.OnFrameLoss()
				}
				continue
			}
			if ev.HasBody && (s.cfg.PayloadCap <= 0 || len(ev.Body) > s.cfg.PayloadCap) {
				// The upstream ignored the negotiated cap: degrade the
				// frame to the invalidation it should have been — the
				// consumer confirms by polling, the stream survives.
				ev = ev.StripPayload()
				s.overCap.Add(1)
			}
			switch {
			case !connected:
				if ev.Kind != KindHello {
					resp.Body.Close()
					return false, fmt.Errorf("push: first frame was %v, want hello", ev.Kind)
				}
				connected = true
				s.connects.Add(1)
				if ev.Reset {
					// The gap is unrecoverable: fast-forward to the
					// server's position so the next reconnect does not
					// re-request (and re-Reset on) the same stale seq —
					// the consumer reconciles the loss once, via
					// OnConnect, not once per reconnect.
					s.lastSeq.Store(ev.Seq)
				}
				if s.cfg.OnConnect != nil {
					s.cfg.OnConnect(ev, since > 0)
				}
			case ev.Kind == KindUpdate:
				for _, out := range s.assembleUpdate(&asm, ev) {
					s.cfg.OnEvent(out)
					s.lastSeq.Store(out.Seq)
				}
			case ev.Kind == KindHello && ev.Reset:
				// A mid-stream Reset: a relaying upstream lost ITS
				// upstream, so this stream's content has a hole even
				// though the connection never dropped. Fast-forward the
				// resume point and re-run the connect reconciliation
				// (the consumer's fallback sweep) exactly as for a
				// Reset at connect time — swallowing it as a heartbeat
				// would leave the consumer confidently stretched over
				// events that no longer exist.
				s.resets.Add(1)
				asm.active, asm.buf = false, nil
				s.lastSeq.Store(ev.Seq)
				if s.cfg.OnConnect != nil {
					s.cfg.OnConnect(ev, true)
				}
			case ev.Kind == KindHeartbeat:
				// Heartbeats carry the stream's per-subscriber position:
				// with interest filtering the upstream advances it past
				// frames it withheld, and adopting it (forward-only —
				// a regressing position is a confused upstream, never a
				// reason to re-request frames already processed) is what
				// keeps a filtered subscriber's resume point from
				// drifting behind holes it never wanted to hear.
				for {
					cur := s.lastSeq.Load()
					if ev.Seq <= cur || s.lastSeq.CompareAndSwap(cur, ev.Seq) {
						break
					}
				}
			default:
				// Redundant non-Reset hellos only feed the watchdog.
			}
		}
	}
}
