package push

import (
	"context"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// contextWithTestCleanup returns a context cancelled at test cleanup.
func contextWithTestCleanup(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx, cancel
}

func TestInterestSetMatching(t *testing.T) {
	cases := []struct {
		name             string
		prefixes, groups []string
		key, group       string
		want             bool
	}{
		{"prefix hit", []string{"/news/"}, nil, "/news/a.html", "", true},
		{"prefix miss", []string{"/news/"}, nil, "/stock/a", "", false},
		{"exact key as prefix", []string{"/a"}, nil, "/a", "", true},
		{"string prefix, not path segment", []string{"/a"}, nil, "/ab", "", true},
		{"group hit", nil, []string{"frontpage"}, "/anything", "frontpage", true},
		{"group miss", nil, []string{"frontpage"}, "/anything", "sports", false},
		{"group empty never matches declared groups", nil, []string{"g"}, "/k", "", false},
		{"either dimension suffices", []string{"/a/"}, []string{"g"}, "/b", "g", true},
		{"literal dash key", []string{"-"}, nil, "-x", "", true},
		{"query in key", []string{"/stock?sym="}, nil, "/stock?sym=A", "", true},
	}
	for _, c := range cases {
		s := NewInterest(c.prefixes, c.groups)
		if got := s.Matches(c.key, c.group); got != c.want {
			t.Errorf("%s: NewInterest(%v,%v).Matches(%q,%q) = %v, want %v",
				c.name, c.prefixes, c.groups, c.key, c.group, got, c.want)
		}
	}
	if !InterestAll().Matches("/anything", "") {
		t.Error("InterestAll must match everything")
	}
	if (InterestSet{}).Matches("/anything", "") {
		t.Error("zero-value set must match nothing")
	}
}

func TestInterestSetNormalization(t *testing.T) {
	s := NewInterest([]string{"/a/b", "/a", "/ab", "/c", "/a/b/c", "/c"}, []string{"g", "g", "h"})
	// "/a" subsumes "/a/b", "/ab", "/a/b/c" (string prefixes); "/c" dedupes.
	if got := s.Prefixes(); len(got) != 2 || got[0] != "/a" || got[1] != "/c" {
		t.Errorf("Prefixes() = %v, want [/a /c]", got)
	}
	if got := s.Groups(); len(got) != 2 || got[0] != "g" || got[1] != "h" {
		t.Errorf("Groups() = %v, want [g h]", got)
	}
}

func TestInterestSetFailsOpen(t *testing.T) {
	// Over-length term: the whole declaration widens to match-all, never
	// silently drops the term (that would filter away wanted updates).
	long := NewInterest([]string{strings.Repeat("k", maxInterestTermLen+1)}, nil)
	if !long.IsAll() {
		t.Error("over-length prefix did not widen to match-all")
	}
	// Over-count after normalization widens too.
	var many []string
	for i := 0; i <= maxInterestTerms; i++ {
		many = append(many, fmt.Sprintf("/p%04d", i))
	}
	if s := NewInterest(many, nil); !s.IsAll() {
		t.Error("over-count declaration did not widen to match-all")
	}
	// Union overflow widens.
	a := NewInterest(many[:maxInterestTerms], nil)
	b := NewInterest([]string{"/zzz"}, nil)
	if u := a.Union(b); !u.IsAll() {
		t.Error("overflowing union did not widen to match-all")
	}
}

func TestInterestSetCovers(t *testing.T) {
	wide := NewInterest([]string{"/a/"}, []string{"g"})
	narrow := NewInterest([]string{"/a/b/"}, []string{"g"})
	if !wide.Covers(narrow) {
		t.Error("/a/ should cover /a/b/")
	}
	if narrow.Covers(wide) {
		t.Error("/a/b/ must not cover /a/")
	}
	if !InterestAll().Covers(wide) || wide.Covers(InterestAll()) {
		t.Error("match-all coverage asymmetry violated")
	}
	// Groups are only covered by groups: a group term can match keys
	// outside every declared prefix.
	if NewInterest([]string{"/"}, nil).Covers(NewInterest(nil, []string{"g"})) {
		t.Error("a prefix must not claim to cover a group")
	}
	// The empty set is covered by anything.
	if !narrow.Covers(NewInterest(nil, nil)) {
		t.Error("empty set not covered")
	}
}

func TestInterestQueryRoundTrip(t *testing.T) {
	s := NewInterest([]string{"/stock?sym=A&x= b", "/news/", "-"}, []string{"front page"})
	q, err := url.ParseQuery(s.EncodeQuery())
	if err != nil {
		t.Fatalf("EncodeQuery produced an unparsable query: %v", err)
	}
	s2 := ParseInterest(q)
	for _, probe := range []struct{ key, group string }{
		{"/stock?sym=A&x= bcd", ""}, {"/news/x", ""}, {"-y", ""},
		{"/k", "front page"}, {"/other", "other"},
	} {
		if s.Matches(probe.key, probe.group) != s2.Matches(probe.key, probe.group) {
			t.Errorf("round trip diverged on (%q,%q)", probe.key, probe.group)
		}
	}
	// Declaring nothing is match-all (filtering is opt-in)...
	if !ParseInterest(url.Values{}).IsAll() {
		t.Error("no declaration must mean match-all")
	}
	// ...and the match-all set encodes as no parameters.
	if q := InterestAll().EncodeQuery(); q != "" {
		t.Errorf("InterestAll().EncodeQuery() = %q, want empty", q)
	}
}

// TestRenderedFormsByteIdentical pins the render-once refactor to the
// old wire bytes: the pre-rendered full and stripped forms must be
// exactly what per-subscriber Encode (with the per-stream StripPayload
// degrade) used to produce.
func TestRenderedFormsByteIdentical(t *testing.T) {
	body := []byte("165.38\n")
	events := []Event{
		{Kind: KindUpdate, Seq: 7, Key: "/quote/acme", Group: "tickers",
			ModTime: time.Unix(1700000000, 123)},
		{Kind: KindUpdate, Seq: 8, Key: "/quote/acme", Group: "tickers", Body: body,
			HasBody: true, ContentType: "text/plain", Digest: DigestOf(body)},
		{Kind: KindUpdate, Seq: 9, Key: "/e", Body: []byte{}, HasBody: true},
		{Kind: KindHello, Seq: 10, Reset: true},
		{Kind: KindHello, Seq: 11, PayloadCap: 4096},
		{Kind: KindHeartbeat, Seq: 12},
	}
	for _, ev := range events {
		re := Render(ev)
		if re.Full() != ev.Encode() {
			t.Errorf("Full() = %q, want Encode() = %q", re.Full(), ev.Encode())
		}
		if re.Stripped() != ev.StripPayload().Encode() {
			t.Errorf("Stripped() = %q, want %q", re.Stripped(), ev.StripPayload().Encode())
		}
		for _, cap := range []int{0, 1, len(body), MaxPayloadCap} {
			want := ev.Encode()
			if ev.HasBody && (cap <= 0 || len(ev.Body) > cap) {
				want = ev.StripPayload().Encode()
			}
			if got := re.WireFor(cap); got != want {
				t.Errorf("WireFor(%d) = %q, want %q (ev %+v)", cap, got, want, ev)
			}
		}
	}
}

// TestRenderedHelloHeartbeatByteIdentical pins the cached-prefix
// renderers to the Encode output they replaced.
func TestRenderedHelloHeartbeatByteIdentical(t *testing.T) {
	for _, seq := range []uint64{0, 1, 42, 1<<64 - 1} {
		for _, cap := range []uint64{0, 64, DefaultPayloadCap} {
			for _, reset := range []bool{false, true} {
				want := Event{Kind: KindHello, Seq: seq, PayloadCap: cap, Reset: reset}.Encode()
				if got := renderedHello(seq, cap, reset).Full(); got != want {
					t.Errorf("renderedHello(%d,%d,%v) = %q, want %q", seq, cap, reset, got, want)
				}
			}
		}
		want := Event{Kind: KindHeartbeat, Seq: seq}.Encode()
		if got := renderedHeartbeat(seq).Full(); got != want {
			t.Errorf("renderedHeartbeat(%d) = %q, want %q", seq, got, want)
		}
	}
}

// TestHubInterestFiltering: a subscriber that declared an interest set
// receives exactly the matching updates — and its resume position still
// advances past the frames it never heard, so reconnecting across a
// non-matching hole is NOT answered with a Reset (the fleet acceptance
// criterion, at hub scope).
func TestHubInterestFiltering(t *testing.T) {
	h := NewHub(HubConfig{Heartbeat: 25 * time.Millisecond})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	sink := &hubSink{}
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Interest:   func() InterestSet { return NewInterest([]string{"/news/"}, []string{"g"}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTestCleanup(t)
	go sub.Run(ctx)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}

	h.Publish(Event{Kind: KindUpdate, Key: "/news/a"})        // 1: matches (prefix)
	h.Publish(Event{Kind: KindUpdate, Key: "/stock/x"})       // 2: filtered
	h.Publish(Event{Kind: KindUpdate, Key: "/o", Group: "g"}) // 3: matches (group)
	h.Publish(Event{Kind: KindUpdate, Key: "/stock/y"})       // 4: filtered

	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 2
	}) {
		t.Fatal("matching events never arrived")
	}
	evs, _, _ := sink.snapshot()
	if evs[0].Key != "/news/a" || evs[1].Key != "/o" {
		t.Errorf("received %q,%q; want the two matching keys", evs[0].Key, evs[1].Key)
	}
	if st := h.Stats(); st.Filtered != 2 {
		t.Errorf("Stats().Filtered = %d, want 2", st.Filtered)
	}

	// The position heartbeat advances the subscriber past the filtered
	// tail (frame 4): its resume point reaches the stream head even
	// though the last frame it received was seq 3.
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 4 }) {
		t.Fatalf("LastSeq = %d; the filtered hole never advanced the resume point", sub.LastSeq())
	}

	// Kill the stream, publish more non-matching frames across the
	// disconnect, and let it resume: the hole (5,6) is entirely outside
	// the filter, the ring can prove it, and the resume must NOT Reset.
	h.KillAll()
	h.Publish(Event{Kind: KindUpdate, Key: "/stock/z1"}) // 5: filtered
	h.Publish(Event{Kind: KindUpdate, Key: "/stock/z2"}) // 6: filtered
	if !waitCond(t, 2*time.Second, func() bool { return sub.Connects() == 2 }) {
		t.Fatal("never reconnected")
	}
	if !waitCond(t, 2*time.Second, func() bool { return sub.LastSeq() == 6 }) {
		t.Fatalf("LastSeq = %d after resume, want 6", sub.LastSeq())
	}
	_, hellos, _ := sink.snapshot()
	for i, hello := range hellos {
		if hello.Reset {
			t.Errorf("hello %d carried Reset; a non-matching hole must not force one", i)
		}
	}
	if st := h.Stats(); st.ResumeHoles != 0 {
		t.Errorf("ResumeHoles = %d, want 0", st.ResumeHoles)
	}

	// A matching frame published after the resume still arrives: the
	// filtered stream is live, not wedged.
	h.Publish(Event{Kind: KindUpdate, Key: "/news/b"}) // 7: matches
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 3 && evs[2].Key == "/news/b"
	}) {
		t.Fatal("post-resume matching frame never arrived")
	}
	cancel()
}

// TestSubscriberBounceRedeclaresInterest: Bounce must drop just the
// in-flight stream, reconnect through the full disconnect/connect
// reconciliation, and re-evaluate the Interest callback — the mechanism
// a relay uses to widen its upstream declaration when a new downstream
// subscriber wants more than it covers.
func TestSubscriberBounceRedeclaresInterest(t *testing.T) {
	h := NewHub(HubConfig{})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var interest atomicInterest
	interest.store(NewInterest([]string{"/a/"}, nil))
	sink := &hubSink{}
	sub, err := NewSubscriber(SubscriberConfig{
		URL:        ts.URL,
		OnEvent:    sink.onEvent,
		OnConnect:  sink.onConnect,
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Interest:   interest.load,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTestCleanup(t)
	go sub.Run(ctx)
	if !waitCond(t, 2*time.Second, func() bool { return h.Subscribers() == 1 }) {
		t.Fatal("never connected")
	}
	if d := sub.DeclaredInterest(); !d.Matches("/a/x", "") || d.Matches("/b/x", "") {
		t.Fatalf("declared interest %v does not reflect the Interest callback", d.Prefixes())
	}

	// Widen and bounce: the reconnected stream must carry the new set.
	interest.store(NewInterest([]string{"/a/", "/b/"}, nil))
	sub.Bounce()
	if !waitCond(t, 2*time.Second, func() bool { return sub.Connects() == 2 }) {
		t.Fatal("bounce never reconnected")
	}
	if sub.Bounces() != 1 {
		t.Errorf("Bounces() = %d, want 1", sub.Bounces())
	}
	if sub.Disconnects() != 1 {
		t.Errorf("Disconnects() = %d; a bounce must be a full disconnect reconciliation", sub.Disconnects())
	}
	if d := sub.DeclaredInterest(); !d.Matches("/b/x", "") {
		t.Error("bounced stream did not re-declare the widened interest")
	}
	h.Publish(Event{Kind: KindUpdate, Key: "/b/x"})
	if !waitCond(t, 2*time.Second, func() bool {
		evs, _, _ := sink.snapshot()
		return len(evs) == 1 && evs[0].Key == "/b/x"
	}) {
		t.Fatal("widened interest never took effect upstream")
	}
	cancel()
}

// atomicInterest is a tiny test helper: a mutex-guarded InterestSet a
// test swaps while a subscriber's Interest callback reads it.
type atomicInterest struct {
	mu sync.Mutex
	s  InterestSet
}

func (a *atomicInterest) store(s InterestSet) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *atomicInterest) load() InterestSet   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }
