//go:build !race

package push

// raceEnabled reports whether the race detector is compiled in; alloc
// -count assertions skip under it because its instrumentation perturbs
// process-wide allocation counters.
const raceEnabled = false
