package depgraph

import "testing"

// FuzzExtractEmbedded throws arbitrary bytes at the HTML scanner: it
// parses untrusted documents in the live proxy, so it must never panic or
// hang.
func FuzzExtractEmbedded(f *testing.F) {
	f.Add("<html><img src='/a.png'></html>")
	f.Add("<!-- <img src=x> -->")
	f.Add("<img src=")
	f.Add("<<<>>><img  src = unquoted>")
	f.Fuzz(func(t *testing.T, html string) {
		urls := ExtractEmbedded(html)
		for _, u := range urls {
			if u == "" {
				t.Fatal("extracted an empty URL")
			}
		}
	})
}
