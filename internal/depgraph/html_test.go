package depgraph

import (
	"strings"
	"testing"
)

const newsPage = `<!DOCTYPE html>
<html>
<head>
  <title>Breaking News</title>
  <link rel="stylesheet" href="/styles/news.css">
  <link rel="alternate" href="/rss.xml">
  <script src="/js/ticker.js"></script>
</head>
<body>
  <!-- lead photo: <img src="/img/ignored-in-comment.jpg"> -->
  <h1>Market turmoil</h1>
  <img src="/img/chart.png" alt="chart">
  <IMG SRC='/img/floor.jpg'>
  <video src=/media/report.mp4 controls></video>
  <a href="/story/2">Related story</a>
  <img src="/img/chart.png">
</body>
</html>`

func TestExtractEmbedded(t *testing.T) {
	got := ExtractEmbedded(newsPage)
	want := []string{
		"/styles/news.css",
		"/js/ticker.js",
		"/img/chart.png",
		"/img/floor.jpg",
		"/media/report.mp4",
	}
	if len(got) != len(want) {
		t.Fatalf("ExtractEmbedded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("url %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestExtractEmbeddedExclusions(t *testing.T) {
	tests := []struct {
		name string
		html string
	}{
		{"anchor", `<a href="/x">link</a>`},
		{"alternate link", `<link rel="alternate" href="/rss">`},
		{"comment", `<!-- <img src="/x.png"> -->`},
		{"img without src", `<img alt="no source">`},
		{"empty src", `<img src="">`},
		{"closing tags", `</img></body>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExtractEmbedded(tt.html); len(got) != 0 {
				t.Errorf("ExtractEmbedded = %v, want none", got)
			}
		})
	}
}

func TestExtractEmbeddedVariants(t *testing.T) {
	tests := []struct {
		name string
		html string
		want string
	}{
		{"unquoted", `<img src=/a.png>`, "/a.png"},
		{"single quotes", `<img src='/a.png'>`, "/a.png"},
		{"uppercase", `<IMG SRC="/a.png">`, "/a.png"},
		{"spaces around =", `<img src = "/a.png">`, "/a.png"},
		{"self closing", `<img src="/a.png"/>`, "/a.png"},
		{"boolean attrs", `<video muted src="/v.mp4" autoplay>`, "/v.mp4"},
		{"icon link", `<link rel="icon" href="/fav.ico">`, "/fav.ico"},
		{"object data", `<object data="/movie.swf"></object>`, "/movie.swf"},
		{"newlines", "<img\n  src=\"/a.png\"\n>", "/a.png"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ExtractEmbedded(tt.html)
			if len(got) != 1 || got[0] != tt.want {
				t.Errorf("ExtractEmbedded = %v, want [%s]", got, tt.want)
			}
		})
	}
}

func TestExtractEmbeddedMalformed(t *testing.T) {
	// Truncated and pathological inputs must not panic and not hang.
	for _, html := range []string{
		"<", "<img", `<img src="unterminated`, "<img src=", "<!--", "<>", "< img>",
		strings.Repeat("<x ", 1000),
	} {
		ExtractEmbedded(html) // must simply not panic
	}
}

func TestRelateDocument(t *testing.T) {
	g := New()
	urls := g.RelateDocument("/news/story1.html", newsPage)
	if len(urls) != 5 {
		t.Fatalf("urls = %v", urls)
	}
	if !g.Related("/news/story1.html", "/img/chart.png") {
		t.Error("page must relate to its embedded image")
	}
	if !g.Related("/img/chart.png", "/js/ticker.js") {
		t.Error("embedded objects must relate to each other (clique)")
	}
	group := g.GroupOf("/news/story1.html")
	if len(group) != 6 {
		t.Errorf("group = %v", group)
	}
}

func TestRelateDocumentNoEmbeds(t *testing.T) {
	g := New()
	urls := g.RelateDocument("/plain.html", "<html><body>text only</body></html>")
	if len(urls) != 0 {
		t.Errorf("urls = %v", urls)
	}
	if len(g.Groups()) != 0 {
		t.Error("a page with no embeds forms no group")
	}
}
