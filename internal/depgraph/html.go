package depgraph

import (
	"strings"

	"broadway/internal/core"
)

// embeddedAttrs maps HTML elements to the attribute that references an
// embedded object. Per §5.2, syntactic relationships are deduced "by
// parsing html documents for embedded links and objects": a page and the
// objects it embeds render together, so they must stay mutually
// consistent (the breaking-news story and its images, in the paper's
// motivating example).
var embeddedAttrs = map[string]string{
	"img":    "src",
	"script": "src",
	"iframe": "src",
	"frame":  "src",
	"embed":  "src",
	"audio":  "src",
	"video":  "src",
	"source": "src",
	"track":  "src",
	"input":  "src", // <input type=image>
	"link":   "href",
	"object": "data",
}

// ExtractEmbedded scans an HTML document and returns the URLs of embedded
// objects (images, scripts, stylesheets, media, sub-documents), in
// document order with duplicates removed. Anchor hrefs are not embedded
// content and are excluded.
//
// The scanner is a small hand-rolled tokenizer: it understands comments,
// quoted attribute values, and case-insensitive names — ample for
// deducing syntactic relationships without pulling a full HTML5 parse
// tree into the repository.
func ExtractEmbedded(html string) []string {
	var out []string
	seen := make(map[string]bool)
	i := 0
	n := len(html)
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		// Comments: skip to -->.
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		tag, attrs, next := scanTag(html, i)
		i = next
		if tag == "" {
			continue
		}
		attrName, ok := embeddedAttrs[tag]
		if !ok {
			continue
		}
		val, ok := attrs[attrName]
		if !ok || val == "" {
			continue
		}
		// Stylesheet/preload links embed; alternate/canonical links do
		// not.
		if tag == "link" {
			rel := strings.ToLower(attrs["rel"])
			if rel != "stylesheet" && rel != "preload" && rel != "icon" {
				continue
			}
		}
		if !seen[val] {
			seen[val] = true
			out = append(out, val)
		}
	}
	return out
}

// scanTag parses the tag starting at html[start] (which is '<'). It
// returns the lowercase tag name (empty for closing/declaration tags),
// its attributes, and the index just past the closing '>'.
func scanTag(html string, start int) (string, map[string]string, int) {
	i := start + 1
	n := len(html)
	if i >= n {
		return "", nil, n
	}
	if html[i] == '/' || html[i] == '!' || html[i] == '?' {
		// Closing tag or declaration: skip to '>'.
		gt := strings.IndexByte(html[i:], '>')
		if gt < 0 {
			return "", nil, n
		}
		return "", nil, i + gt + 1
	}
	// Tag name.
	j := i
	for j < n && isNameByte(html[j]) {
		j++
	}
	if j == i {
		return "", nil, i
	}
	tag := strings.ToLower(html[i:j])
	attrs := make(map[string]string)
	i = j
	for i < n {
		// Skip whitespace and slashes.
		for i < n && (html[i] == ' ' || html[i] == '\t' || html[i] == '\n' || html[i] == '\r' || html[i] == '/') {
			i++
		}
		if i >= n {
			return tag, attrs, n
		}
		if html[i] == '>' {
			return tag, attrs, i + 1
		}
		// Attribute name.
		j = i
		for j < n && isNameByte(html[j]) {
			j++
		}
		if j == i {
			i++ // stray character; skip it
			continue
		}
		name := strings.ToLower(html[i:j])
		i = j
		for i < n && (html[i] == ' ' || html[i] == '\t' || html[i] == '\n' || html[i] == '\r') {
			i++
		}
		if i >= n || html[i] != '=' {
			attrs[name] = "" // boolean attribute
			continue
		}
		i++ // consume '='
		for i < n && (html[i] == ' ' || html[i] == '\t' || html[i] == '\n' || html[i] == '\r') {
			i++
		}
		if i >= n {
			return tag, attrs, n
		}
		var val string
		if html[i] == '"' || html[i] == '\'' {
			quote := html[i]
			i++
			end := strings.IndexByte(html[i:], quote)
			if end < 0 {
				return tag, attrs, n
			}
			val = html[i : i+end]
			i += end + 1
		} else {
			j = i
			for j < n && html[j] != ' ' && html[j] != '\t' && html[j] != '\n' &&
				html[j] != '\r' && html[j] != '>' {
				j++
			}
			val = html[i:j]
			i = j
		}
		attrs[name] = val
	}
	return tag, attrs, n
}

func isNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '-' || b == '_' || b == ':':
		return true
	}
	return false
}

// RelateDocument adds the syntactic relationships of one HTML document to
// the graph: the page and every object it embeds become one clique. It
// returns the embedded URLs found.
func (g *Graph) RelateDocument(page core.ObjectID, html string) []string {
	urls := ExtractEmbedded(html)
	ids := make([]core.ObjectID, 0, len(urls)+1)
	ids = append(ids, page)
	for _, u := range urls {
		ids = append(ids, core.ObjectID(u))
	}
	g.RelateAll(ids)
	return urls
}
