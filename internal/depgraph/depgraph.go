// Package depgraph determines groups of related web objects (paper §5.2).
// Relationships can be declared explicitly (semantic relationships require
// domain knowledge) or deduced syntactically by scanning HTML documents
// for embedded objects. Related objects form a dependency graph whose
// connected components are the groups a mutual-consistency mechanism
// operates on.
//
// As the paper notes, the graph itself does not maintain consistency — it
// only identifies which objects must be kept mutually consistent; the
// algorithms in internal/core do the rest.
package depgraph

import (
	"sort"

	"broadway/internal/core"
)

// Graph is an undirected dependency graph over object IDs. The zero value
// is not usable; construct with New. Graph is not safe for concurrent
// use.
type Graph struct {
	adj map[core.ObjectID]map[core.ObjectID]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[core.ObjectID]map[core.ObjectID]bool)}
}

// AddObject ensures the object exists in the graph, with or without
// relations.
func (g *Graph) AddObject(id core.ObjectID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[core.ObjectID]bool)
	}
}

// Relate records that a and b are related (symmetric). Self-relations are
// ignored.
func (g *Graph) Relate(a, b core.ObjectID) {
	if a == b {
		g.AddObject(a)
		return
	}
	g.AddObject(a)
	g.AddObject(b)
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// RelateAll relates every pair drawn from ids (a clique): the typical
// outcome of parsing one HTML page with several embedded objects.
func (g *Graph) RelateAll(ids []core.ObjectID) {
	for i := range ids {
		g.AddObject(ids[i])
		for j := i + 1; j < len(ids); j++ {
			g.Relate(ids[i], ids[j])
		}
	}
}

// Related reports whether a and b are directly related.
func (g *Graph) Related(a, b core.ObjectID) bool {
	return g.adj[a][b]
}

// Neighbors returns the objects directly related to id, sorted.
func (g *Graph) Neighbors(id core.ObjectID) []core.ObjectID {
	out := make([]core.ObjectID, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sortIDs(out)
	return out
}

// Objects returns all objects in the graph, sorted.
func (g *Graph) Objects() []core.ObjectID {
	out := make([]core.ObjectID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Groups returns the connected components with at least two members —
// the related-object groups mutual consistency applies to. Components
// and members are sorted for determinism.
func (g *Graph) Groups() [][]core.ObjectID {
	visited := make(map[core.ObjectID]bool, len(g.adj))
	var groups [][]core.ObjectID
	for _, start := range g.Objects() {
		if visited[start] {
			continue
		}
		// Iterative DFS.
		var comp []core.ObjectID
		stack := []core.ObjectID{start}
		visited[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for n := range g.adj[cur] {
				if !visited[n] {
					visited[n] = true
					stack = append(stack, n)
				}
			}
		}
		if len(comp) >= 2 {
			sortIDs(comp)
			groups = append(groups, comp)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// GroupOf returns the connected component containing id (including id),
// or nil if the object is unknown. Members are sorted.
func (g *Graph) GroupOf(id core.ObjectID) []core.ObjectID {
	if _, ok := g.adj[id]; !ok {
		return nil
	}
	visited := map[core.ObjectID]bool{id: true}
	comp := []core.ObjectID{id}
	stack := []core.ObjectID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range g.adj[cur] {
			if !visited[n] {
				visited[n] = true
				comp = append(comp, n)
				stack = append(stack, n)
			}
		}
	}
	sortIDs(comp)
	return comp
}

func sortIDs(ids []core.ObjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
