package depgraph

import (
	"testing"

	"broadway/internal/core"
)

func TestRelateAndRelated(t *testing.T) {
	g := New()
	g.Relate("a", "b")
	if !g.Related("a", "b") || !g.Related("b", "a") {
		t.Error("relation must be symmetric")
	}
	if g.Related("a", "c") {
		t.Error("unrelated objects reported related")
	}
}

func TestSelfRelationIgnored(t *testing.T) {
	g := New()
	g.Relate("a", "a")
	if g.Related("a", "a") {
		t.Error("self-relation must be ignored")
	}
	if len(g.Objects()) != 1 {
		t.Error("object must still be added")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	g.Relate("m", "z")
	g.Relate("m", "a")
	g.Relate("m", "k")
	got := g.Neighbors("m")
	want := []core.ObjectID{"a", "k", "z"}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", got, want)
		}
	}
}

func TestRelateAllClique(t *testing.T) {
	g := New()
	g.RelateAll([]core.ObjectID{"x", "y", "z"})
	for _, pair := range [][2]core.ObjectID{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		if !g.Related(pair[0], pair[1]) {
			t.Errorf("%v not related", pair)
		}
	}
}

func TestGroups(t *testing.T) {
	g := New()
	g.Relate("a", "b")
	g.Relate("b", "c") // component {a,b,c}
	g.Relate("x", "y") // component {x,y}
	g.AddObject("lone")

	groups := g.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != "a" || groups[0][2] != "c" {
		t.Errorf("first group = %v", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != "x" {
		t.Errorf("second group = %v", groups[1])
	}
}

func TestGroupsExcludesSingletons(t *testing.T) {
	g := New()
	g.AddObject("solo")
	if len(g.Groups()) != 0 {
		t.Error("singleton components are not groups")
	}
}

func TestGroupOf(t *testing.T) {
	g := New()
	g.Relate("a", "b")
	g.Relate("b", "c")
	got := g.GroupOf("c")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("GroupOf = %v", got)
	}
	if g.GroupOf("missing") != nil {
		t.Error("unknown object must return nil")
	}
	solo := New()
	solo.AddObject("s")
	if got := solo.GroupOf("s"); len(got) != 1 || got[0] != "s" {
		t.Errorf("GroupOf singleton = %v", got)
	}
}

func TestGroupsDeterministic(t *testing.T) {
	build := func() [][]core.ObjectID {
		g := New()
		g.Relate("n2", "n1")
		g.Relate("n3", "n2")
		g.Relate("m1", "m9")
		return g.Groups()
	}
	a, b := build(), build()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Groups not deterministic")
			}
		}
	}
}
